(* The adversary layer: soak-invariant exit contract (the chaos binary's
   regression surface), strategy compilation and tap behaviour, targeted
   campaign builders, and plan-sampling determinism. *)

module Chaos = Concilium_netsim.Chaos
module Protocol = Concilium_core.Protocol
module World = Concilium_core.World
module Prng = Concilium_util.Prng
module Strategy = Concilium_adversary.Strategy
module Soak = Concilium_adversary.Soak_invariants

let check = Alcotest.check

let world_fixture = lazy (World.build (World.tiny_config ~seed:77L))

(* ---------- Soak invariants: the exit-status contract ---------- *)

let test_soak_benign_passes () =
  check Alcotest.bool "benign passes" true (Soak.pass Soak.benign);
  check (Alcotest.list Alcotest.string) "no failures" [] (Soak.failures Soak.benign)

let test_soak_each_violation_fails () =
  let cases =
    [
      ("runtime-exception", { Soak.benign with Soak.failure = Some "boom" });
      ("missing-outcomes", { Soak.benign with Soak.missing_outcomes = 1 });
      ("unresolved-episodes", { Soak.benign with Soak.unresolved = 2 });
      ("honest-node-accused", { Soak.benign with Soak.honest_accusations = 1 });
    ]
  in
  List.iter
    (fun (label, inputs) ->
      check Alcotest.bool (label ^ " fails") false (Soak.pass inputs);
      check Alcotest.bool
        (label ^ " labelled")
        true
        (List.mem label (Soak.failures inputs)))
    cases

let test_soak_detection_contract () =
  (* A detection scenario fails when its adversary never acted (inert) or
     acted without being caught (undetected)... *)
  let armed =
    {
      Soak.benign with
      Soak.adversary_present = true;
      adversary_fired = false;
      adversary_detected = false;
      require_detection = true;
    }
  in
  check (Alcotest.list Alcotest.string) "inert label" [ "adversary-inert" ]
    (Soak.failures armed);
  let fired = { armed with Soak.adversary_fired = true } in
  check (Alcotest.list Alcotest.string) "undetected label" [ "adversary-undetected" ]
    (Soak.failures fired);
  let caught = { fired with Soak.adversary_detected = true } in
  check Alcotest.bool "fired and detected passes" true (Soak.pass caught);
  (* ...but a background-pressure scenario only demands survival. *)
  let pressure = { armed with Soak.require_detection = false } in
  check Alcotest.bool "pressure scenario passes" true (Soak.pass pressure)

let test_soak_exit_code () =
  check Alcotest.int "all passed -> 0" 0 (Soak.exit_code ~pass_all:true);
  check Alcotest.int "any failure -> 1" 1 (Soak.exit_code ~pass_all:false)

(* ---------- Strategy compilation ---------- *)

let compile ?(forge_copies = 3) ?(seed = 5L) plan =
  let world = Lazy.force world_fixture in
  Strategy.compile ~world ~rng:(Prng.of_seed seed) ~forge_copies plan

let test_empty_plan_is_identity () =
  let s = compile [] in
  check (Alcotest.array Alcotest.int) "nobody compromised" [||] (Strategy.compromised s);
  let taps = Strategy.taps s in
  check Alcotest.bool "forward defers" true
    (taps.Protocol.tap_forward ~time:100. ~node:1 ~sender:0 ~next:2 = None);
  check Alcotest.bool "observation untouched" true
    (taps.Protocol.tap_observation ~time:100. ~prober:3 ~link:7 ~up:true);
  check Alcotest.bool "no forgeries" true
    (taps.Protocol.tap_forged_reports ~time:100. ~prober:3 = [])

let collusion_plan ~members ~start ~duration =
  [
    Chaos.Collusion
      { members; drop_probability = 1.; corroboration = 1.; start; duration };
  ]

let test_collusion_membership_and_window () =
  let members = [| 1; 4; 9 |] in
  let s = compile (collusion_plan ~members ~start:100. ~duration:500.) in
  check (Alcotest.array Alcotest.int) "members compromised" members
    (Strategy.compromised s);
  Array.iter
    (fun m -> check Alcotest.bool "is_compromised" true (Strategy.is_compromised s m))
    members;
  check Alcotest.bool "outsider not compromised" false (Strategy.is_compromised s 0);
  let taps = Strategy.taps s in
  (* drop_probability 1.0: inside the window a member always eats the
     message; outside the window, and for non-members, the tap defers. *)
  check Alcotest.bool "member drops in window" true
    (taps.Protocol.tap_forward ~time:300. ~node:4 ~sender:0 ~next:2
    = Some Protocol.Tap_drop);
  check Alcotest.bool "member inert before start" true
    (taps.Protocol.tap_forward ~time:50. ~node:4 ~sender:0 ~next:2 = None);
  check Alcotest.bool "member inert after stop" true
    (taps.Protocol.tap_forward ~time:700. ~node:4 ~sender:0 ~next:2 = None);
  check Alcotest.bool "honest node untouched" true
    (taps.Protocol.tap_forward ~time:300. ~node:2 ~sender:0 ~next:3 = None)

let test_forged_reports_bounded_by_forest () =
  let world = Lazy.force world_fixture in
  let members = [| 1; 4; 9 |] in
  let s = compile (collusion_plan ~members ~start:0. ~duration:1000.) in
  let taps = Strategy.taps s in
  let in_forest prober link =
    Array.exists (fun l -> l = link) (World.forest_links world prober)
  in
  Array.iter
    (fun m ->
      let forged = taps.Protocol.tap_forged_reports ~time:500. ~prober:m in
      List.iter
        (fun (link, _) ->
          check Alcotest.bool
            (Printf.sprintf "member %d forges only inside its forest (link %d)" m link)
            true (in_forest m link))
        forged)
    members;
  check Alcotest.bool "honest prober forges nothing" true
    (taps.Protocol.tap_forged_reports ~time:500. ~prober:0 = [])

let test_compile_deterministic () =
  (* Same seed, same plan: every tap decision replays identically. *)
  let plan = collusion_plan ~members:[| 1; 4 |] ~start:0. ~duration:1000. in
  let a = Strategy.taps (compile ~seed:5L plan) in
  let b = Strategy.taps (compile ~seed:5L plan) in
  for i = 0 to 49 do
    let time = 10. *. float_of_int i in
    check Alcotest.bool
      (Printf.sprintf "forward decision %d replays" i)
      true
      (a.Protocol.tap_forward ~time ~node:4 ~sender:0 ~next:2
      = b.Protocol.tap_forward ~time ~node:4 ~sender:0 ~next:2)
  done;
  check Alcotest.bool "forgeries replay" true
    (a.Protocol.tap_forged_reports ~time:500. ~prober:1
    = b.Protocol.tap_forged_reports ~time:500. ~prober:1)

let test_lying_victim_never_compromised () =
  let plan =
    [
      Chaos.Lying_reporters
        { reporters = [| 2; 5 |]; victim = 7; corroboration = 1.; start = 0.; duration = 1000. };
    ]
  in
  let s = compile plan in
  check (Alcotest.array Alcotest.int) "victims recorded" [| 7 |] (Strategy.victims s);
  check Alcotest.bool "victim is not compromised" false (Strategy.is_compromised s 7);
  check Alcotest.bool "reporters are" true
    (Strategy.is_compromised s 2 && Strategy.is_compromised s 5)

let test_biased_samplers_exposed () =
  let plan =
    [ Chaos.Biased_sampling { samplers = [| 3; 8 |]; favored = 1; start = 0.; duration = 1000. } ]
  in
  let s = compile plan in
  check (Alcotest.array Alcotest.int) "samplers listed" [| 3; 8 |]
    (Strategy.biased_samplers s);
  let taps = Strategy.taps s in
  (* A sampler's advertised peer set is rewritten toward the favored node;
     an honest node's is left alone. *)
  let honest = taps.Protocol.tap_advertised_peers ~time:500. ~node:0 [| 1; 2; 3 |] in
  check Alcotest.bool "honest advert untouched" true (honest = None);
  match taps.Protocol.tap_advertised_peers ~time:500. ~node:3 [| 0; 2; 5 |] with
  | Some rewritten ->
      check Alcotest.bool "favored injected" true (Array.exists (fun p -> p = 1) rewritten)
  | None -> Alcotest.fail "sampler advert not rewritten"

(* ---------- Targeted builders ---------- *)

let test_targeted_route_and_collusion () =
  let world = Lazy.force world_fixture in
  match Strategy.targeted_route ~world ~rng:(Prng.of_seed 11L) ~min_hops:3 with
  | None -> Alcotest.fail "tiny world should yield a 3-hop route"
  | Some (sender, _dest, route) -> (
      check Alcotest.bool "route starts at sender" true (List.hd route = sender);
      check Alcotest.bool "route long enough" true (List.length route >= 3);
      match
        Strategy.collusion_against_route ~world ~route ~size:3 ~drop_probability:1.
          ~corroboration:1. ~start:0. ~duration:1000.
      with
      | Some (Chaos.Collusion { members; _ }) ->
          let dropper = List.nth route 1 in
          check Alcotest.bool "dropper leads the coalition" true
            (Array.exists (fun m -> m = dropper) members)
      | Some _ -> Alcotest.fail "expected a collusion clause"
      | None -> Alcotest.fail "no coalition built")

let test_gap_and_coverage_probes_total () =
  (* The route probes are total over sampled routes (never raise) and
     coverage is non-negative; a too-short route has neither. *)
  let world = Lazy.force world_fixture in
  check Alcotest.bool "short route has no gap" false
    (Strategy.self_exculpation_gap ~world ~route:[ 0; 1 ]);
  check Alcotest.int "short route covers nothing" 0
    (Strategy.coalition_coverage ~world ~route:[ 0; 1 ]);
  match Strategy.targeted_route ~world ~rng:(Prng.of_seed 13L) ~min_hops:3 with
  | None -> Alcotest.fail "tiny world should yield a route"
  | Some (_, _, route) ->
      ignore (Strategy.self_exculpation_gap ~world ~route);
      check Alcotest.bool "coverage non-negative" true
        (Strategy.coalition_coverage ~world ~route >= 0)

(* ---------- Plan sampling ---------- *)

let test_sample_adversaries_deterministic () =
  let sample () =
    Chaos.sample_adversaries ~rng:(Prng.of_seed 21L)
      ~config:Chaos.default_adversary_config ~nodes:50 ~horizon:7200. ()
  in
  let a = sample () and b = sample () in
  check Alcotest.bool "equal seeds, equal plans" true (a = b);
  check Alcotest.bool "pressure config yields campaigns" true (List.length a > 0);
  let counted = List.fold_left (fun acc (_, n) -> acc + n) 0 (Chaos.adversary_counts a) in
  check Alcotest.int "histogram accounts for every campaign" (List.length a) counted

let test_no_adversaries_config_is_empty () =
  let plan =
    Chaos.sample_adversaries ~rng:(Prng.of_seed 22L) ~config:Chaos.no_adversaries
      ~nodes:50 ~horizon:7200. ()
  in
  check (Alcotest.list Alcotest.string) "empty plan" []
    (List.map (fun _ -> "campaign") plan)

let suites =
  [
    ( "adversary.soak_invariants",
      [
        Alcotest.test_case "benign passes" `Quick test_soak_benign_passes;
        Alcotest.test_case "each violation fails" `Quick test_soak_each_violation_fails;
        Alcotest.test_case "detection contract" `Quick test_soak_detection_contract;
        Alcotest.test_case "exit code" `Quick test_soak_exit_code;
      ] );
    ( "adversary.strategy",
      [
        Alcotest.test_case "empty plan is identity" `Quick test_empty_plan_is_identity;
        Alcotest.test_case "collusion membership and window" `Quick
          test_collusion_membership_and_window;
        Alcotest.test_case "forgeries bounded by forest" `Quick
          test_forged_reports_bounded_by_forest;
        Alcotest.test_case "compilation deterministic" `Quick test_compile_deterministic;
        Alcotest.test_case "lying victim never compromised" `Quick
          test_lying_victim_never_compromised;
        Alcotest.test_case "biased samplers exposed" `Quick test_biased_samplers_exposed;
      ] );
    ( "adversary.targeted",
      [
        Alcotest.test_case "route-aimed coalition" `Quick test_targeted_route_and_collusion;
        Alcotest.test_case "gap and coverage probes" `Quick
          test_gap_and_coverage_probes_total;
      ] );
    ( "adversary.sampling",
      [
        Alcotest.test_case "deterministic plans" `Quick test_sample_adversaries_deterministic;
        Alcotest.test_case "zero config, empty plan" `Quick
          test_no_adversaries_config_is_empty;
      ] );
  ]
