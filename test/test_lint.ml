open Alcotest
module Lexer = Concilium_lint.Lexer
module Rules = Concilium_lint.Rules
module Engine = Concilium_lint.Engine
module Report = Concilium_lint.Report

(* Fixtures are assembled from pieces so this file itself never contains a
   bannable construct (or trailing whitespace) outside a string literal. *)

let lint ?(path = "lib/fixture/fake.ml") source = Engine.lint_ml ~path source

let rule_ids diagnostics =
  List.sort_uniq String.compare (List.map (fun (d : Rules.diagnostic) -> d.Rules.rule) diagnostics)

let fired rule diagnostics = List.mem rule (rule_ids diagnostics)

let check_fires rule source =
  check bool (Printf.sprintf "%s fires" rule) true (fired rule (lint source))

let check_clean ?path rule source =
  check bool (Printf.sprintf "%s silent" rule) false (fired rule (lint ?path source))

(* ---------- Lexer ---------- *)

let test_lexer_blanks_comments_and_strings () =
  let source = "let x = 1 (* List.hd inside comment *)\nlet s = \"List.hd inside string\"\n" in
  let scrubbed = Lexer.scrub source in
  Array.iter
    (fun line ->
      check bool "no List.hd survives scrubbing" false
        (let re = Str.regexp_string "List.hd" in
         match Str.search_forward re line 0 with exception Not_found -> false | _ -> true))
    scrubbed.Lexer.code_lines;
  check int "one comment collected" 1 (List.length scrubbed.Lexer.comments)

let test_lexer_nested_comments () =
  let source = "(* outer (* inner *) still outer *)\nlet x = 1\n" in
  let scrubbed = Lexer.scrub source in
  (match scrubbed.Lexer.comments with
  | [ c ] ->
      check int "starts on line 1" 1 c.Lexer.start_line;
      check bool "nested body kept" true
        (match Str.search_forward (Str.regexp_string "inner") c.Lexer.text 0 with
        | exception Not_found -> false
        | _ -> true)
  | comments -> failf "expected one comment, got %d" (List.length comments));
  check string "code preserved" "let x = 1" (String.trim scrubbed.Lexer.code_lines.(1))

let test_lexer_char_literal_vs_type_var () =
  (* A 'a type variable must not open a character literal and swallow code. *)
  let source = "let f (x : 'a list) = x\nlet c = 'x'\nlet y = 1\n" in
  let scrubbed = Lexer.scrub source in
  check bool "type variable kept as code" true
    (String.length scrubbed.Lexer.code_lines.(0) > 10);
  check string "later lines intact" "let y = 1" (String.trim scrubbed.Lexer.code_lines.(2))

let test_lexer_quoted_string () =
  let source = "let s = {ext|Obj.magic here|ext}\nlet z = 2\n" in
  let scrubbed = Lexer.scrub source in
  check bool "quoted literal scrubbed" false
    (match Str.search_forward (Str.regexp_string "Obj.magic") scrubbed.Lexer.code_lines.(0) 0 with
    | exception Not_found -> false
    | _ -> true);
  check string "following code intact" "let z = 2" (String.trim scrubbed.Lexer.code_lines.(1))

(* Literals inside comments are themselves lexed: a string or quoted string
   containing a close-comment sequence must not terminate the comment, and
   a double-quote character literal must not open a phantom string. *)
let test_lexer_string_in_comment () =
  let source = "(* a string: " ^ "\"*)\"" ^ " still comment *)\nlet x = 1\n" in
  let scrubbed = Lexer.scrub source in
  (match scrubbed.Lexer.comments with
  | [ c ] ->
      check bool "comment spans past the quoted close" true
        (match Str.search_forward (Str.regexp_string "still comment") c.Lexer.text 0 with
        | exception Not_found -> false
        | _ -> true)
  | comments -> failf "expected one comment, got %d" (List.length comments));
  check string "code after the comment kept" "let x = 1" (String.trim scrubbed.Lexer.code_lines.(1))

let test_lexer_quoted_string_in_comment () =
  let source = "(* quoted: {q|*)|q} still comment *)\nlet y = 2\n" in
  let scrubbed = Lexer.scrub source in
  (match scrubbed.Lexer.comments with
  | [ c ] ->
      check bool "comment spans past {q|*)|q}" true
        (match Str.search_forward (Str.regexp_string "still comment") c.Lexer.text 0 with
        | exception Not_found -> false
        | _ -> true)
  | comments -> failf "expected one comment, got %d" (List.length comments));
  check string "code after the comment kept" "let y = 2" (String.trim scrubbed.Lexer.code_lines.(1))

let test_lexer_char_literal_in_comment () =
  (* '"' inside a comment must not toggle the in-string flag; if it did,
     the comment close would be swallowed and `let z = 3` lost. *)
  let source = "(* quote char: " ^ "'\"'" ^ " end *)\nlet z = 3\n" in
  let scrubbed = Lexer.scrub source in
  check int "one comment" 1 (List.length scrubbed.Lexer.comments);
  check string "code after the comment kept" "let z = 3" (String.trim scrubbed.Lexer.code_lines.(1))

let test_lexer_escaped_quote_in_string () =
  (* "\"" — the escaped quote must not close the literal early. *)
  let source = "let s = \"a\\\"b\" in List.hd s\n" in
  let scrubbed = Lexer.scrub source in
  check bool "string fully blanked including escape" false
    (match Str.search_forward (Str.regexp_string "a\\") scrubbed.Lexer.code_lines.(0) 0 with
    | exception Not_found -> false
    | _ -> true);
  check bool "code after the literal survives" true
    (match Str.search_forward (Str.regexp_string "List.hd") scrubbed.Lexer.code_lines.(0) 0 with
    | exception Not_found -> false
    | _ -> true)

(* ---------- Determinism rules ---------- *)

let test_random_rule () =
  check_fires "random" "let x = Random.int 10\n";
  check_fires "random" "let x = Stdlib.Random.bool ()\n";
  (* The PRNG module itself is the one place allowed to mention randomness. *)
  check_clean ~path:"lib/util/prng.ml" "random" "let x = Random.int 10\n";
  (* Strings and comments never trip the rule. *)
  check_clean "random" "let x = \"Random.int\"\n";
  check_clean "random" "(* Random.int *) let x = 1\n"

let test_wall_clock_rule () =
  check_fires "wall-clock" "let t = Sys.time ()\n";
  check_fires "wall-clock" "let t = Unix.gettimeofday ()\n";
  check_clean "wall-clock" "let t = Engine.now engine\n"

let test_hashtbl_hash_rule () =
  check_fires "hashtbl-hash" "let h = Hashtbl.hash x\n";
  check_fires "hashtbl-hash" "let t = Hashtbl.create ~random:true 16\n";
  check_clean "hashtbl-hash" "let t = Hashtbl.create 16\n"

let test_hashtbl_order_rule () =
  let unsorted = "let keys t =\n  Hashtbl.fold (fun k _ acc -> k :: acc) t []\n" in
  check_fires "hashtbl-order" unsorted;
  let sorted =
    "let keys t =\n  Hashtbl.fold (fun k _ acc -> k :: acc) t []\n  |> List.sort Int.compare\n"
  in
  check_clean "hashtbl-order" sorted;
  let suppressed =
    "let bump t =\n  (* order-independent mutation; lint: allow hashtbl-order *)\n  Hashtbl.iter (fun _ cell -> incr cell) t\n"
  in
  check_clean "hashtbl-order" suppressed;
  (* Only lib/ and bin/ are in scope for the ordering rule. *)
  check_clean ~path:"test/fake.ml" "hashtbl-order" unsorted

(* ---------- Polymorphic-compare rules ---------- *)

let test_poly_compare_rule () =
  check_fires "poly-compare" "let xs = List.sort compare xs\n";
  check_fires "poly-compare" ("let () = Array.sort" ^ " compare a\n");
  check_fires "poly-compare" "let xs = List.sort_uniq compare xs\n";
  check_fires "poly-compare" "let c = Stdlib.compare a b\n";
  check_fires "poly-compare" "let m = Array.fold_left min x a\n";
  check_clean "poly-compare" "let xs = List.sort Int.compare xs\n";
  check_clean "poly-compare" "let xs = List.sort Id.compare xs\n";
  check_clean "poly-compare" "let m = Array.fold_left Float.min x a\n";
  (* Direct scalar uses of min/max are fine. *)
  check_clean "poly-compare" "let m = max 0 (x - 1)\n"

let test_physical_equality_rule () =
  check_fires "physical-equality" "let same = a == b\n";
  check_fires "physical-equality" "let diff = a != b\n";
  check_clean "physical-equality" "let same = a = b\n";
  check_clean ~path:"test/fake.ml" "physical-equality" "let same = a == b\n"

(* ---------- Partiality rules ---------- *)

let test_partiality_rules () =
  check_fires "list-partial" "let x = List.hd xs\n";
  check_fires "list-partial" "let x = List.nth xs 3\n";
  check_fires "option-get" "let x = Option.get o\n";
  check_fires "obj-magic" "let x = Obj.magic y\n";
  check_fires "assert-false" "let f () = assert false\n";
  check_fires "array-get" "let x = Array.get a i\n";
  check_clean "list-partial" "let x = match xs with [] -> 0 | x :: _ -> x\n";
  (* Partiality rules stop at the library/binary boundary. *)
  check_clean ~path:"test/fake.ml" "list-partial" "let x = List.hd xs\n"

let test_suppression_scope () =
  (* An allow comment covers its own line and the next one only. *)
  let suppressed = "(* lint: allow list-partial *)\nlet x = List.hd xs\n" in
  check_clean "list-partial" suppressed;
  let out_of_scope = "(* lint: allow list-partial *)\nlet a = 1\nlet x = List.hd xs\n" in
  check_fires "list-partial" out_of_scope;
  (* allow-file covers the whole file; [all] covers every rule. *)
  let file_wide = "(* lint: allow-file list-partial *)\nlet a = 1\nlet x = List.hd xs\n" in
  check_clean "list-partial" file_wide;
  let wildcard = "(* lint: allow all *)\nlet x = List.hd (List.sort compare xs)\n" in
  let diagnostics = lint wildcard in
  check int "all suppresses everything" 0 (List.length diagnostics);
  (* A suppression for one rule does not silence another. *)
  let wrong_rule = "(* lint: allow option-get *)\nlet x = List.hd xs\n" in
  check_fires "list-partial" wrong_rule

let test_raw_parallelism_rule () =
  check_fires "raw-parallelism" "let d = Domain.spawn work\n";
  check_fires "raw-parallelism" "let m = Mutex.create ()\n";
  check_fires "raw-parallelism" "let c = Condition.create ()\n";
  (* The pool is the one module allowed to build on the raw primitives. *)
  check_clean ~path:"lib/util/pool.ml" "raw-parallelism" "let d = Domain.spawn work\n";
  (* Reading domain metadata is fine; only spawning is fenced. *)
  check_clean "raw-parallelism" "let n = Domain.recommended_domain_count ()\n";
  check_clean "raw-parallelism" "let r = Pool.parallel_map ~pool xs ~f\n"

let test_stdout_printf_rule () =
  let printf_line = "let () = Printf." ^ "printf \"hi %d\" 3\n" in
  let endline_line = "let () = print_" ^ "endline \"hi\"\n" in
  let format_line = "let () = Format." ^ "printf \"hi\"\n" in
  check_fires "stdout-printf" printf_line;
  check_fires "stdout-printf" endline_line;
  check_fires "stdout-printf" format_line;
  (* Rendering to a string and deferring the write is the sanctioned shape. *)
  check_clean "stdout-printf" "let s = Printf.sprintf \"hi %d\" 3\n";
  check_clean "stdout-printf" "let () = Format.fprintf fmt \"hi\"\n";
  (* The lint driver and the observability exporters own their stdout. *)
  check_clean ~path:"lib/lint/report.ml" "stdout-printf" printf_line;
  check_clean ~path:"lib/obs/export.ml" "stdout-printf" printf_line;
  (* Binaries are the edge where printing belongs. *)
  check_clean ~path:"bin/experiments.ml" "stdout-printf" printf_line

let test_formatting_rules () =
  check_fires "trailing-whitespace" ("let x = 1" ^ "  " ^ "\nlet y = 2\n");
  check_fires "tab-indent" ("let x =\n" ^ "\t1\n");
  check_clean "trailing-whitespace" "let x = 1\nlet y = 2\n"

(* ---------- Project-level rules ---------- *)

let test_dune_flags_rule () =
  let bare = "(library\n (name fixture))\n" in
  (match Engine.lint_dune ~path:"lib/fixture/dune" bare with
  | [ d ] ->
      check string "rule id" "dune-flags" d.Rules.rule;
      check int "points at the stanza" 1 d.Rules.line
  | ds -> failf "expected one diagnostic, got %d" (List.length ds));
  let hardened =
    "(library\n (name fixture)\n (flags (:standard -w +a-4-9-40-41-42-44-45-70 -warn-error +a)))\n"
  in
  check int "hardened is clean" 0 (List.length (Engine.lint_dune ~path:"lib/fixture/dune" hardened));
  check int "no stanza, no complaint" 0
    (List.length (Engine.lint_dune ~path:"lib/fixture/dune" "(rule (alias x) (action (echo hi)))\n"))

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let test_missing_mli_detection () =
  (* Build a tiny on-disk tree: lib/covered.{ml,mli} and lib/naked.ml. *)
  let root = Filename.concat (Filename.get_temp_dir_name ()) "concilium_lint_fixture" in
  let lib = Filename.concat root "lib" in
  if not (Sys.file_exists lib) then begin
    if not (Sys.file_exists root) then Sys.mkdir root 0o755;
    Sys.mkdir lib 0o755
  end;
  write_file (Filename.concat lib "covered.ml") "let x = 1\n";
  write_file (Filename.concat lib "covered.mli") "val x : int\n";
  write_file (Filename.concat lib "naked.ml") "let y = 2\n";
  let diagnostics = Engine.lint_paths [ root ] in
  let missing =
    List.filter (fun (d : Rules.diagnostic) -> d.Rules.rule = "missing-mli") diagnostics
  in
  (match missing with
  | [ d ] ->
      check bool "flags the uncovered module" true
        (Filename.basename d.Rules.file = "naked.ml")
  | ds -> failf "expected one missing-mli, got %d" (List.length ds));
  List.iter (fun f -> Sys.remove (Filename.concat lib f)) [ "covered.ml"; "covered.mli"; "naked.ml" ]

(* ---------- Reporting ---------- *)

let test_json_output () =
  let diagnostics = lint "let x = List.hd xs\n" in
  let json = Report.to_json diagnostics in
  let contains needle =
    match Str.search_forward (Str.regexp_string needle) json 0 with
    | exception Not_found -> false
    | _ -> true
  in
  check bool "has rule field" true (contains "\"rule\": \"list-partial\"");
  check bool "has file field" true (contains "\"file\": \"lib/fixture/fake.ml\"");
  check bool "has severity" true (contains "\"severity\": \"error\"");
  check bool "escapes quotes" true (contains "\\\"" || not (contains "\"msg"))

let test_catalog_covers_families () =
  let families =
    List.sort_uniq String.compare
      (List.map (fun (_, family, _) -> Rules.family_to_string family) Rules.catalog)
  in
  check (list string) "all four families represented"
    [ "determinism"; "hygiene"; "partiality"; "polymorphic-compare" ]
    families

let test_errors_filter () =
  let diagnostics = lint "let x = Option.get o\n" in
  check bool "errors subset non-empty" true (Engine.errors diagnostics <> [])

let suites =
  [
    ( "lint.lexer",
      [
        test_case "comments and strings scrubbed" `Quick test_lexer_blanks_comments_and_strings;
        test_case "nested comments" `Quick test_lexer_nested_comments;
        test_case "char literal vs type variable" `Quick test_lexer_char_literal_vs_type_var;
        test_case "quoted string literals" `Quick test_lexer_quoted_string;
        test_case "string containing *) inside comment" `Quick test_lexer_string_in_comment;
        test_case "quoted string inside comment" `Quick test_lexer_quoted_string_in_comment;
        test_case "char literal inside comment" `Quick test_lexer_char_literal_in_comment;
        test_case "escaped quote inside string" `Quick test_lexer_escaped_quote_in_string;
      ] );
    ( "lint.determinism",
      [
        test_case "random banned outside prng" `Quick test_random_rule;
        test_case "wall clock banned" `Quick test_wall_clock_rule;
        test_case "hashtbl hash banned" `Quick test_hashtbl_hash_rule;
        test_case "hashtbl iteration order" `Quick test_hashtbl_order_rule;
      ] );
    ( "lint.poly_compare",
      [
        test_case "bare compare in sorts" `Quick test_poly_compare_rule;
        test_case "physical equality" `Quick test_physical_equality_rule;
      ] );
    ( "lint.partiality",
      [
        test_case "partial accessors" `Quick test_partiality_rules;
        test_case "suppression scoping" `Quick test_suppression_scope;
      ] );
    ( "lint.hygiene",
      [
        test_case "raw parallelism fenced into the pool" `Quick test_raw_parallelism_rule;
        test_case "stdout printing fenced out of lib" `Quick test_stdout_printf_rule;
        test_case "formatting rules" `Quick test_formatting_rules;
        test_case "dune hardened flags" `Quick test_dune_flags_rule;
        test_case "mli coverage" `Quick test_missing_mli_detection;
      ] );
    ( "lint.report",
      [
        test_case "json output" `Quick test_json_output;
        test_case "catalog families" `Quick test_catalog_covers_families;
        test_case "errors filter" `Quick test_errors_filter;
      ] );
  ]
