(* Provenance layer: arena construction, shard merging, JSONL/tap-stream
   byte stability, the flight recorder, the metrics time series, the
   histogram bucket-boundary fix — and the replay contract: verdicts the
   full protocol records must reproduce bit-for-bit when their evidence is
   replayed through the Blame calculus (the lib-level half of what
   bin/explain.exe --validate-all enforces on artifacts). *)

module Graph = Concilium_provenance.Graph
module Collector = Concilium_obs.Collector
module Trace = Concilium_obs.Trace
module Metrics = Concilium_obs.Metrics
module Flight = Concilium_obs.Flight
module Timeseries = Concilium_obs.Timeseries
module Json = Concilium_check.Json
module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Blame = Concilium_core.Blame
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Topology = Concilium_topology.Graph
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng

let check = Alcotest.check

(* ---------- Arena ---------- *)

let test_arena_construction () =
  let g = Graph.create () in
  check Alcotest.bool "recording" true (Graph.enabled g);
  Graph.set_param g "accuracy" 0.8;
  Graph.set_param g "accuracy" 0.9;
  check (Alcotest.option (Alcotest.float 0.)) "last param write wins" (Some 0.9)
    (Graph.param g "accuracy");
  let p1 = Graph.probe g ~prober:3 ~link:7 ~time:10. ~up:true ~tapped:false ~forged:false in
  let p2 = Graph.probe g ~prober:4 ~link:7 ~time:11. ~up:false ~tapped:true ~forged:false in
  let d = Graph.defense g ~kind:Graph.Vote_dedup ~removed:2 ~judge:1 ~suspect:2 in
  let v =
    Graph.verdict g ~judge:1 ~suspect:2 ~kind:Graph.Guilty ~exonerated:false ~usable_rounds:5
      ~blame:0.9 ~drop_time:42.
  in
  Graph.edge g ~parent:v ~child:d;
  Graph.edge g ~parent:v ~child:p1;
  Graph.edge g ~parent:v ~child:p2;
  let a = Graph.accusation g ~accuser:1 ~accused:2 ~blame:0.9 ~time:42. in
  Graph.edge g ~parent:a ~child:v;
  check Alcotest.int "node count" 5 (Graph.node_count g);
  check Alcotest.int "edge count" 4 (Graph.edge_count g);
  check (Alcotest.list Alcotest.int) "children in edge order" [ d; p1; p2 ]
    (Graph.children g v);
  check (Alcotest.list Alcotest.int) "accusation cites verdict" [ v ] (Graph.children g a);
  check Alcotest.string "verdict kind name" "verdict" (Graph.kind_of g v);
  check (Alcotest.list Alcotest.int) "verdict listing" [ v ] (Graph.verdicts g);
  check (Alcotest.list Alcotest.int) "leaf has no children" [] (Graph.children g p1)

let test_noop_graph_records_nothing () =
  let g = Graph.noop in
  check Alcotest.bool "disabled" false (Graph.enabled g);
  let p = Graph.probe g ~prober:0 ~link:0 ~time:0. ~up:true ~tapped:false ~forged:false in
  check Alcotest.int "constructor returns none" Graph.none p;
  Graph.edge g ~parent:p ~child:p;
  Graph.set_param g "accuracy" 0.9;
  check Alcotest.int "no nodes" 0 (Graph.node_count g);
  check Alcotest.int "no edges" 0 (Graph.edge_count g);
  check (Alcotest.option (Alcotest.float 0.)) "no params" None (Graph.param g "accuracy");
  check (Alcotest.list Alcotest.int) "none has no children" [] (Graph.children g Graph.none)

let sample_graph () =
  let g = Graph.create () in
  Graph.set_param g "guilt_threshold" 0.4;
  let p = Graph.probe g ~prober:1 ~link:2 ~time:3.5 ~up:false ~tapped:false ~forged:true in
  let c = Graph.consolidation g ~link:2 ~up:false ~up_votes:1 ~down_votes:2 in
  Graph.edge g ~parent:c ~child:p;
  let f = Graph.failover g ~kind:Graph.Steward ~node:9 ~time:7. in
  let t = Graph.tap_firing g ~kind:Graph.Forced_drop ~node:4 ~time:6. in
  let r = Graph.rebuttal g ~accuser:1 ~accused:2 ~outcome:Graph.Shifted in
  ignore (f, t, r);
  g

let test_jsonl_stable_and_tap_streams_everything () =
  let streamed = ref [] in
  let g = Graph.create () in
  Graph.set_tap g (fun line -> streamed := line :: !streamed);
  Graph.set_param g "guilt_threshold" 0.4;
  let p = Graph.probe g ~prober:1 ~link:2 ~time:3.5 ~up:false ~tapped:false ~forged:true in
  let c = Graph.consolidation g ~link:2 ~up:false ~up_votes:1 ~down_votes:2 in
  Graph.edge g ~parent:c ~child:p;
  check Alcotest.int "one line per param, node and edge" 4 (List.length !streamed);
  (* The streamed node lines are exactly the node_line renderings, and the
     full dump is byte-stable across calls. *)
  check Alcotest.string "tap emits node_line bytes" (Graph.node_line g 0)
    (List.nth (List.rev !streamed) 1);
  check Alcotest.string "jsonl is reproducible" (Graph.jsonl g) (Graph.jsonl g);
  let reference = sample_graph () in
  check Alcotest.string "jsonl is a pure function of the calls"
    (Graph.jsonl (sample_graph ()))
    (Graph.jsonl reference)

let test_merge_rebases_shards () =
  let shard0 = Graph.create () in
  Graph.set_param shard0 "accuracy" 0.8;
  let a0 = Graph.probe shard0 ~prober:1 ~link:1 ~time:1. ~up:true ~tapped:false ~forged:false in
  let v0 =
    Graph.verdict shard0 ~judge:1 ~suspect:2 ~kind:Graph.Innocent ~exonerated:false
      ~usable_rounds:3 ~blame:0.1 ~drop_time:5.
  in
  Graph.edge shard0 ~parent:v0 ~child:a0;
  let shard1 = Graph.create () in
  Graph.set_param shard1 "accuracy" 0.9;
  let a1 = Graph.probe shard1 ~prober:7 ~link:9 ~time:2. ~up:false ~tapped:true ~forged:false in
  let v1 =
    Graph.verdict shard1 ~judge:7 ~suspect:8 ~kind:Graph.Guilty ~exonerated:false
      ~usable_rounds:4 ~blame:0.8 ~drop_time:6.
  in
  Graph.edge shard1 ~parent:v1 ~child:a1;
  let merged = Graph.merge [| shard0; shard1 |] in
  check Alcotest.int "nodes add" 4 (Graph.node_count merged);
  check Alcotest.int "edges add" 2 (Graph.edge_count merged);
  (* Shard 1's ids are rebased past shard 0's arena. *)
  check (Alcotest.list Alcotest.int) "rebased children" [ a1 + 2 ]
    (Graph.children merged (v1 + 2));
  check (Alcotest.list Alcotest.int) "verdicts in id order" [ v0; v1 + 2 ]
    (Graph.verdicts merged);
  check (Alcotest.option (Alcotest.float 0.)) "later shard wins params" (Some 0.9)
    (Graph.param merged "accuracy");
  check Alcotest.string "merge is byte-reproducible"
    (Graph.jsonl (Graph.merge [| shard0; shard1 |]))
    (Graph.jsonl merged);
  let solo = Graph.merge [| shard0 |] in
  check Alcotest.string "singleton merge preserves bytes" (Graph.jsonl shard0)
    (Graph.jsonl solo)

let test_collector_merge_carries_provenance () =
  let shards = Collector.shards 2 in
  Array.iteri
    (fun i shard ->
      let g = shard.Collector.prov in
      ignore
        (Graph.probe g ~prober:i ~link:i ~time:0. ~up:true ~tapped:false ~forged:false
          : Graph.node);
      let span = Trace.span_open shard.Collector.trace ~time:0. "work" in
      Trace.span_close shard.Collector.trace ~time:1. span)
    shards;
  let merged = Collector.merge shards in
  check Alcotest.int "provenance nodes survive collector merge" 2
    (Graph.node_count merged.Collector.prov);
  check Alcotest.int "trace records survive collector merge" 4
    (Trace.length merged.Collector.trace)

(* ---------- Replay: the protocol's own verdicts ---------- *)

(* Group a verdict's probe children into per-link vote runs, exactly as
   bin/explain.exe does: votes were recorded link by link, so consecutive
   same-link probes form one evidence group. *)
let grouped_votes graph vnode =
  let votes =
    List.filter_map
      (fun child ->
        if Graph.kind_of graph child <> "probe" then None
        else
          match Json.parse (Graph.node_line graph (child - 1)) with
          | Error e -> Alcotest.failf "bad probe line: %s" e
          | Ok json ->
              let get name to_ = Option.get (Option.bind (Json.member name json) to_) in
              Some (get "link" Json.to_int, (get "prober" Json.to_int, get "up" Json.to_bool)))
      (Graph.children graph vnode)
  in
  let runs =
    List.fold_left
      (fun acc (link, vote) ->
        match acc with
        | (l, votes) :: rest when l = link -> (l, vote :: votes) :: rest
        | _ -> (link, [ vote ]) :: acc)
      [] votes
  in
  Array.of_list (List.rev_map (fun (_, votes) -> List.rev votes) runs)

let verdict_fields graph vnode =
  match Json.parse (Graph.node_line graph (vnode - 1)) with
  | Error e -> Alcotest.failf "bad verdict line: %s" e
  | Ok json ->
      let get name to_ = Option.get (Option.bind (Json.member name json) to_) in
      ( get "verdict" Json.string_value,
        get "exonerated" Json.to_bool,
        get "blame" Json.to_float )

let test_protocol_verdicts_replay_bit_exactly () =
  let world = World.build (World.tiny_config ~seed:321L) in
  let engine = Engine.create () in
  let graph = world.World.generated.World.Generate.graph in
  let link_state =
    Link_state.create ~link_count:(Topology.link_count graph) ~good_loss:0. ~bad_loss:1.
  in
  let obs = Collector.create () in
  (* Aim every message down one multi-hop route whose middle hop drops,
     with an observation tap lying about one link: adversarial pressure on
     the evidence the provenance graph must still replay. *)
  let rng = Prng.of_seed 17L in
  let n = World.node_count world in
  let rec find_route attempts =
    if attempts = 0 then Alcotest.fail "no multi-hop route found"
    else begin
      let from = Prng.int rng n in
      let dest = Id.random rng in
      match World.overlay_route world ~from ~dest with
      | route when List.length route >= 3 -> (from, dest, List.nth route 1)
      | _ -> find_route (attempts - 1)
    end
  in
  let from, dest, culprit = find_route 5000 in
  let taps =
    {
      Protocol.no_taps with
      Protocol.tap_observation =
        (fun ~time:_ ~prober ~link ~up -> if prober = 1 && link = 0 then not up else up);
    }
  in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.of_seed 5L) ~obs ~taps
      Protocol.default_config
      ~behavior:(fun v -> if v = culprit then Protocol.Message_dropper 1.0 else Protocol.Honest)
  in
  Protocol.start_probing protocol ~horizon:600.;
  Engine.run_until engine 600.;
  for _ = 1 to 5 do
    Protocol.send_message protocol ~from ~dest ~payload:"prov" ~on_outcome:(fun _ -> ())
  done;
  Engine.run_until engine 1800.;
  let prov = obs.Collector.prov in
  let config =
    {
      Blame.accuracy = Option.get (Graph.param prov "accuracy");
      delta = Option.get (Graph.param prov "delta");
      guilt_threshold = Option.get (Graph.param prov "guilt_threshold");
    }
  in
  let verdicts = Graph.verdicts prov in
  check Alcotest.bool "run produced verdicts" true (verdicts <> []);
  List.iter
    (fun vnode ->
      let kind, exonerated, recorded = verdict_fields prov vnode in
      let replayed = Blame.blame_of_observations config ~grouped:(grouped_votes prov vnode) in
      check Alcotest.bool
        (Printf.sprintf "verdict %d blame replays bit-exactly" vnode)
        true
        (Int64.bits_of_float replayed = Int64.bits_of_float recorded);
      if kind <> "insufficient" then begin
        let expected = if kind = "guilty" || exonerated then Blame.Guilty else Blame.Innocent in
        check Alcotest.bool
          (Printf.sprintf "verdict %d verdict replays" vnode)
          true
          (Blame.verdict_of_blame config replayed = expected)
      end)
    verdicts;
  (* The trace stays well-formed with taps firing mid-episode, and the
     graph's dump is stable. *)
  (match Trace.validate obs.Collector.trace with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason);
  check Alcotest.string "provenance dump reproducible" (Graph.jsonl prov) (Graph.jsonl prov)

(* ---------- Flight recorder ---------- *)

let test_flight_ring_evicts_oldest () =
  let flight = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.note flight (Printf.sprintf "line-%d" i)
  done;
  check Alcotest.int "held" 4 (Flight.length flight);
  check Alcotest.int "dropped" 6 (Flight.dropped flight);
  check Alcotest.int "recorded" 10 (Flight.recorded flight);
  let dump = Flight.dump ~reason:"test" flight in
  let lines = String.split_on_char '\n' dump |> List.filter (fun l -> l <> "") in
  check Alcotest.int "header plus held lines" 5 (List.length lines);
  check Alcotest.bool "header carries reason and counts" true
    (match Json.parse (List.hd lines) with
    | Ok json -> (
        match Json.member "flight_recorder" json with
        | Some header ->
            Option.bind (Json.member "reason" header) Json.string_value = Some "test"
            && Option.bind (Json.member "dropped" header) Json.to_int = Some 6
        | None -> false)
    | Error _ -> false);
  check (Alcotest.list Alcotest.string) "oldest first"
    [ "line-7"; "line-8"; "line-9"; "line-10" ]
    (List.tl lines)

let test_flight_attach_taps_trace_and_provenance () =
  let obs = Collector.create () in
  let flight = Flight.create () in
  Flight.attach flight obs;
  let span = Trace.span_open obs.Collector.trace ~time:1. "episode" in
  ignore
    (Graph.probe obs.Collector.prov ~prober:1 ~link:2 ~time:1.5 ~up:true ~tapped:false
       ~forged:false
      : Graph.node);
  Trace.span_close obs.Collector.trace ~time:2. span;
  check Alcotest.int "both streams feed the ring" 3 (Flight.length flight);
  (* The streamed lines are the sinks' own JSONL bytes. *)
  let dump = Flight.dump ~reason:"r" flight in
  check Alcotest.bool "ring holds the probe's node line" true
    (let needle = Graph.node_line obs.Collector.prov 0 in
     let re = Str.regexp_string needle in
     match Str.search_forward re dump 0 with exception Not_found -> false | _ -> true)

(* ---------- Time series ---------- *)

let test_timeseries_epochs_and_merge () =
  let shards = Collector.shards 2 in
  let series = Array.init 2 (fun _ -> Timeseries.create ~cadence:10.) in
  Metrics.incr shards.(0).Collector.metrics ~by:3 "c";
  Timeseries.sample series.(0) ~time:5. shards.(0).Collector.metrics;
  Metrics.incr shards.(0).Collector.metrics ~by:2 "c";
  Timeseries.sample series.(0) ~time:15. shards.(0).Collector.metrics;
  Metrics.incr shards.(1).Collector.metrics ~by:10 "c";
  Timeseries.sample series.(1) ~time:7. shards.(1).Collector.metrics;
  (* Snapshots are deep copies: mutating the live registry after sampling
     must not rewrite history. *)
  Metrics.incr shards.(1).Collector.metrics ~by:100 "c";
  let merged = Timeseries.merge series in
  (match Timeseries.samples merged with
  | [ (0, epoch0); (1, epoch1) ] ->
      check Alcotest.int "epoch 0 folds both shards" 13 (Metrics.counter epoch0 "c");
      check Alcotest.int "epoch 1 holds shard 0's later sample" 5 (Metrics.counter epoch1 "c")
  | samples -> Alcotest.failf "unexpected sample count (%d)" (List.length samples));
  let lines =
    String.split_on_char '\n' (Timeseries.jsonl merged) |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per epoch" 2 (List.length lines);
  check Alcotest.bool "lines carry epoch and counters" true
    (match Json.parse (List.hd lines) with
    | Ok json ->
        Option.bind (Json.member "epoch" json) Json.to_int = Some 0
        && Json.member "counters" json <> None
    | Error _ -> false);
  check Alcotest.string "merge is reproducible"
    (Timeseries.jsonl (Timeseries.merge series))
    (Timeseries.jsonl merged);
  check Alcotest.bool "cadence mismatch rejected" true
    (match Timeseries.merge [| Timeseries.create ~cadence:10.; Timeseries.create ~cadence:20. |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check Alcotest.bool "empty merge rejected" true
    (match Timeseries.merge [||] with exception Invalid_argument _ -> true | _ -> false)

(* ---------- Metrics: bucket boundaries and hot-path allocation ---------- *)

let bucket_count snapshot label =
  (* Extract {"<label>": N} from the snapshot's histogram rendering. *)
  let re = Str.regexp (Printf.sprintf {|"%s": \([0-9]+\)|} (Str.quote label)) in
  match Str.search_forward re snapshot 0 with
  | exception Not_found -> 0
  | _ -> int_of_string (Str.matched_group 1 snapshot)

let test_histogram_power_of_two_boundaries () =
  let m = Metrics.create () in
  (* Exact powers of two belong to the bucket they open: [2^k, 2^k+1).
     The old libm-log2 bucketing misfiled them one bucket down whenever
     log2 rounded below the integer. *)
  List.iter (Metrics.observe m "h") [ 0.5; 1.; 1.999999; 2.; 3.999999; 4.; 1024. ];
  let snapshot = Metrics.snapshot_json m in
  check Alcotest.int "sub-2 values clamp to 2^0" 3 (bucket_count snapshot "2^0");
  check Alcotest.int "[2,4) fills 2^1" 2 (bucket_count snapshot "2^1");
  check Alcotest.int "4.0 opens 2^2" 1 (bucket_count snapshot "2^2");
  check Alcotest.int "1024 lands in 2^10" 1 (bucket_count snapshot "2^10")

let test_incr_allocates_nothing_on_hot_path () =
  let m = Metrics.create () in
  Metrics.incr m "hot";
  (* Binding pass done; the steady-state increment must not allocate. *)
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Metrics.incr m "hot"
  done;
  let allocated = Gc.minor_words () -. before in
  check Alcotest.bool
    (Printf.sprintf "no minor allocation in steady-state incr (%.0f words)" allocated)
    true (allocated < 64.);
  check Alcotest.int "counts kept" 10_001 (Metrics.counter m "hot")

let suites =
  [
    ( "provenance.graph",
      [
        Alcotest.test_case "arena construction" `Quick test_arena_construction;
        Alcotest.test_case "noop graph records nothing" `Quick test_noop_graph_records_nothing;
        Alcotest.test_case "jsonl stable, tap streams everything" `Quick
          test_jsonl_stable_and_tap_streams_everything;
        Alcotest.test_case "merge rebases shards" `Quick test_merge_rebases_shards;
        Alcotest.test_case "collector merge carries provenance" `Quick
          test_collector_merge_carries_provenance;
      ] );
    ( "provenance.replay",
      [
        Alcotest.test_case "protocol verdicts replay bit-exactly" `Quick
          test_protocol_verdicts_replay_bit_exactly;
      ] );
    ( "obs.flight",
      [
        Alcotest.test_case "ring evicts oldest" `Quick test_flight_ring_evicts_oldest;
        Alcotest.test_case "attach taps trace and provenance" `Quick
          test_flight_attach_taps_trace_and_provenance;
      ] );
    ( "obs.timeseries",
      [
        Alcotest.test_case "epochs and merge" `Quick test_timeseries_epochs_and_merge;
      ] );
    ( "obs.metrics_regressions",
      [
        Alcotest.test_case "power-of-two bucket boundaries" `Quick
          test_histogram_power_of_two_boundaries;
        Alcotest.test_case "incr hot path allocates nothing" `Quick
          test_incr_allocates_nothing_on_hot_path;
      ] );
  ]
