(* Conformance checker: JSON round-trips, ddmin minimality, clean lockstep
   runs over generated schedules, injected-mutation canaries shrunk to
   replayable counterexamples, and obs byte reconciliation. *)

module Json = Concilium_check.Json
module Schedule = Concilium_check.Schedule
module Lockstep = Concilium_check.Lockstep
module Shrink = Concilium_check.Shrink
module Harness = Concilium_check.Harness

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- JSON ---------- *)

let test_json_roundtrip_values () =
  let value =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("count", Json.Int (-42));
        ("exact", Json.Float 2716.0676158666021);
        ("text", Json.String "quote \" slash \\ newline \n tab \t");
        ("items", Json.List [ Json.Int 1; Json.Float 0.1; Json.String "x" ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  let compact = Json.to_string value in
  let pretty = Json.to_string_pretty value in
  (match Json.parse compact with
  | Ok parsed -> check Alcotest.bool "compact round-trips" true (parsed = value)
  | Error message -> Alcotest.fail message);
  match Json.parse pretty with
  | Ok parsed -> check Alcotest.bool "pretty round-trips" true (parsed = value)
  | Error message -> Alcotest.fail message

let test_json_rejects_malformed () =
  List.iter
    (fun text ->
      check Alcotest.bool (Printf.sprintf "rejects %s" text) true
        (Result.is_error (Json.parse text)))
    [ "{"; "[1,"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated"; "{\"a\":}" ]

let prop_json_float_roundtrip =
  QCheck.Test.make ~name:"every finite float survives the JSON round-trip" ~count:500
    QCheck.(float_range (-1e12) 1e12)
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) -> Float.equal f g
      | Ok (Json.Int i) -> Float.equal f (float_of_int i)
      | _ -> false)

(* ---------- ddmin ---------- *)

let test_ddmin_minimizes_to_culprits () =
  let items = List.init 50 (fun i -> i) in
  let reproduces l = List.mem 17 l && List.mem 31 l in
  let minimized = Shrink.ddmin ~reproduces items in
  check (Alcotest.list Alcotest.int) "exactly the two culprits, in order" [ 17; 31 ]
    minimized

let test_ddmin_single_culprit () =
  let items = List.init 100 (fun i -> i) in
  let minimized = Shrink.ddmin ~reproduces:(fun l -> List.mem 63 l) items in
  check (Alcotest.list Alcotest.int) "one culprit" [ 63 ] minimized

let test_ddmin_non_reproducing_input_unchanged () =
  let items = [ 1; 2; 3 ] in
  check (Alcotest.list Alcotest.int) "unchanged" items
    (Shrink.ddmin ~reproduces:(fun _ -> false) items)

let prop_ddmin_result_is_one_minimal =
  QCheck.Test.make ~name:"ddmin results are 1-minimal" ~count:30
    QCheck.(pair (int_bound 40) (list_of_size (Gen.int_range 1 4) (int_bound 39)))
    (fun (size, culprit_seeds) ->
      let items = List.init (size + 2) (fun i -> i) in
      let culprits = List.sort_uniq Int.compare (List.map (fun c -> c mod (size + 2)) culprit_seeds) in
      let reproduces l = List.for_all (fun c -> List.mem c l) culprits in
      let minimized = Shrink.ddmin ~reproduces items in
      minimized = culprits)

(* ---------- Schedules ---------- *)

let test_schedule_generation_is_deterministic () =
  let a = Schedule.generate ~seed:9 in
  let b = Schedule.generate ~seed:9 in
  check Alcotest.bool "equal JSON encodings" true
    (String.equal (Json.to_string (Schedule.encode a)) (Json.to_string (Schedule.encode b)));
  check Alcotest.bool "non-trivial" true (Schedule.op_count a > 10)

let test_schedule_json_roundtrip () =
  let schedule = Schedule.generate ~seed:5 in
  match Json.parse (Json.to_string (Schedule.encode schedule)) with
  | Error message -> Alcotest.fail message
  | Ok json -> (
      match Schedule.decode json with
      | Error message -> Alcotest.fail message
      | Ok decoded ->
          check Alcotest.bool "round-trips byte-for-byte" true
            (String.equal
               (Json.to_string (Schedule.encode schedule))
               (Json.to_string (Schedule.encode decoded))))

(* ---------- Lockstep ---------- *)

let test_lockstep_clean_on_generated_schedules () =
  List.iter
    (fun seed ->
      let schedule = Schedule.generate ~seed in
      match Lockstep.run schedule with
      | None -> ()
      | Some d ->
          Alcotest.failf "seed %d diverged: %s" seed
            (Format.asprintf "%a" Lockstep.pp_divergence d))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let find_caught_mutation mutation =
  (* Small deterministic search: some seeds do not exercise every boundary,
     but a handful always does (the CLI canary uses a 20-schedule budget). *)
  let rec search seed =
    if seed > 40 then Alcotest.failf "mutation %s never caught" (Lockstep.mutation_name mutation)
    else
      let schedule = Schedule.generate ~seed in
      match Lockstep.run ~mutation schedule with
      | Some divergence -> (schedule, divergence)
      | None -> search (seed + 1)
  in
  search 1

let test_mutations_caught_and_shrunk () =
  List.iter
    (fun mutation ->
      let schedule, _ = find_caught_mutation mutation in
      let reproduces ops =
        Option.is_some (Lockstep.run ~mutation (Schedule.with_ops schedule ops))
      in
      let minimized_ops = Shrink.ddmin ~reproduces schedule.Schedule.ops in
      check Alcotest.bool
        (Printf.sprintf "%s: minimized reproducer is small" (Lockstep.mutation_name mutation))
        true
        (List.length minimized_ops <= 4 && minimized_ops <> []);
      (* 1-minimality: removing any single op loses the divergence. *)
      List.iteri
        (fun i _ ->
          let without = List.filteri (fun j _ -> j <> i) minimized_ops in
          check Alcotest.bool
            (Printf.sprintf "%s: op %d is essential" (Lockstep.mutation_name mutation) i)
            false
            (without <> [] && reproduces without))
        minimized_ops;
      (* The clean implementation passes the minimized schedule. *)
      check Alcotest.bool
        (Printf.sprintf "%s: clean implementation passes reproducer"
           (Lockstep.mutation_name mutation))
        true
        (Lockstep.run (Schedule.with_ops schedule minimized_ops) = None))
    Lockstep.all_mutations

let test_artifact_replay_roundtrip () =
  let mutation = Lockstep.Window_expire_exclusive in
  let schedule, divergence = find_caught_mutation mutation in
  let text =
    Json.to_string_pretty (Harness.artifact ~schedule ~mutation:(Some mutation) ~divergence)
  in
  match Harness.replay text with
  | Error message -> Alcotest.fail message
  | Ok result ->
      check Alcotest.bool "mutation preserved" true
        (result.Harness.mutation = Some mutation);
      check Alcotest.bool "divergence reproduces" true
        (Option.is_some result.Harness.replay_divergence)

let test_run_budget_reports_and_minimizes () =
  let clean = Harness.run_budget ~domains:1 ~base_seed:1 ~budget:4 () in
  check Alcotest.int "clean budget has no divergences" 0 clean.Harness.divergent;
  check Alcotest.int "all outcomes reported" 4 (List.length clean.Harness.outcomes);
  let canary =
    Harness.run_budget ~domains:1 ~mutation:Lockstep.Window_expire_exclusive ~base_seed:1
      ~budget:10 ()
  in
  check Alcotest.bool "canary diverges" true (canary.Harness.divergent > 0);
  match canary.Harness.counterexample with
  | None -> Alcotest.fail "no counterexample minimized"
  | Some (schedule, _) ->
      check Alcotest.bool "counterexample is small" true (Schedule.op_count schedule <= 4)

let test_byte_reconciliation_exact () =
  let r = Harness.reconcile_bytes ~seed:11 in
  check Alcotest.bool "bytes flowed" true (r.Harness.charged > 0);
  check Alcotest.int "obs counters reconcile with control bytes" r.Harness.charged
    r.Harness.metered

let suites =
  [
    ( "check.json",
      [
        Alcotest.test_case "value round-trip" `Quick test_json_roundtrip_values;
        Alcotest.test_case "malformed rejected" `Quick test_json_rejects_malformed;
        qtest prop_json_float_roundtrip;
      ] );
    ( "check.shrink",
      [
        Alcotest.test_case "two culprits" `Quick test_ddmin_minimizes_to_culprits;
        Alcotest.test_case "single culprit" `Quick test_ddmin_single_culprit;
        Alcotest.test_case "non-reproducing unchanged" `Quick
          test_ddmin_non_reproducing_input_unchanged;
        qtest prop_ddmin_result_is_one_minimal;
      ] );
    ( "check.schedule",
      [
        Alcotest.test_case "deterministic generation" `Quick
          test_schedule_generation_is_deterministic;
        Alcotest.test_case "JSON round-trip" `Quick test_schedule_json_roundtrip;
      ] );
    ( "check.lockstep",
      [
        Alcotest.test_case "clean schedules agree" `Slow
          test_lockstep_clean_on_generated_schedules;
        Alcotest.test_case "mutations caught and shrunk" `Slow
          test_mutations_caught_and_shrunk;
        Alcotest.test_case "artifact replay round-trip" `Quick test_artifact_replay_roundtrip;
        Alcotest.test_case "budget run minimizes" `Slow test_run_budget_reports_and_minimizes;
        Alcotest.test_case "byte reconciliation exact" `Slow test_byte_reconciliation_exact;
      ] );
  ]
