(* Integration tests: the full protocol stack over a tiny world. *)

module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Stewardship = Concilium_core.Stewardship
module Accusation = Concilium_core.Accusation
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Graph = Concilium_topology.Graph
module Id = Concilium_overlay.Id
module Signed = Concilium_crypto.Signed
module Prng = Concilium_util.Prng

let check = Alcotest.check

let world_fixture = lazy (World.build (World.tiny_config ~seed:321L))

type session = {
  world : World.t;
  engine : Engine.t;
  link_state : Link_state.t;
  protocol : Protocol.t;
}

let make_session ?(behavior = fun _ -> Protocol.Honest) ?(seed = 5L) () =
  let world = Lazy.force world_fixture in
  let engine = Engine.create () in
  let graph = world.World.generated.World.Generate.graph in
  let link_state =
    Link_state.create ~link_count:(Graph.link_count graph) ~good_loss:0. ~bad_loss:1.
  in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.of_seed seed)
      Protocol.default_config ~behavior
  in
  { world; engine; link_state; protocol }

let warm_up session =
  Protocol.start_probing session.protocol ~horizon:600.;
  Engine.run_until session.engine 600.

let route_with_intermediate session =
  (* Find a sender and destination whose overlay route has >= 3 hops so a
     middle forwarder exists. *)
  let world = session.world in
  let n = World.node_count world in
  let rng = Prng.of_seed 17L in
  let rec search attempts =
    if attempts = 0 then Alcotest.fail "no multi-hop route found"
    else begin
      let from = Prng.int rng n in
      let dest = Id.random rng in
      let route = World.overlay_route world ~from ~dest in
      if List.length route >= 3 then (from, dest, route) else search (attempts - 1)
    end
  in
  search 5000

let test_healthy_delivery () =
  let session = make_session () in
  warm_up session;
  let from, dest, _ = route_with_intermediate session in
  let delivered = ref false in
  Protocol.send_message session.protocol ~from ~dest ~payload:"hello"
    ~on_outcome:(fun outcome ->
      delivered := outcome.Protocol.delivered;
      check Alcotest.bool "no diagnosis when delivered" true
        (outcome.Protocol.diagnosis = None));
  Engine.run_until session.engine 1200.;
  check Alcotest.bool "delivered" true !delivered

let test_dropper_blamed () =
  let world = Lazy.force world_fixture in
  ignore world;
  let session0 = make_session () in
  let from, dest, route = route_with_intermediate session0 in
  let culprit = List.nth route 1 in
  let behavior v =
    if v = culprit then Protocol.Message_dropper 1.0 else Protocol.Honest
  in
  let session = make_session ~behavior () in
  warm_up session;
  let outcome_seen = ref None in
  Protocol.send_message session.protocol ~from ~dest ~payload:"x"
    ~on_outcome:(fun outcome -> outcome_seen := Some outcome);
  Engine.run_until session.engine 1200.;
  match !outcome_seen with
  | None -> Alcotest.fail "no outcome"
  | Some outcome ->
      check Alcotest.bool "not delivered" false outcome.Protocol.delivered;
      check Alcotest.bool "ground truth is the dropper" true
        (outcome.Protocol.drop = Some (Protocol.Dropped_by_overlay culprit));
      check Alcotest.bool "all retransmits consumed" true
        (outcome.Protocol.attempts = Protocol.default_config.Protocol.retry_limit + 1);
      (match outcome.Protocol.diagnosis with
      | Some (Protocol.Diagnosed { Stewardship.final = Some (Stewardship.Next_hop blamed); _ })
        ->
          check Alcotest.int "dropper blamed" culprit blamed
      | _ -> Alcotest.fail "expected a node-level diagnosis")

let test_bad_link_blames_network () =
  let session0 = make_session () in
  let from, dest, route = route_with_intermediate session0 in
  let hop1 = List.nth route 1 and hop2 = List.nth route 2 in
  let session = make_session () in
  (* Fail every link of the hop1 -> hop2 IP path for the whole run, well
     before probing starts, so tomography sees it consistently down. *)
  let path = Option.get (World.ip_path session.world ~from_node:hop1 ~to_node:hop2) in
  Array.iter (fun link -> Link_state.set_bad session.link_state link) path.World.Routes.links;
  warm_up session;
  let outcome_seen = ref None in
  Protocol.send_message session.protocol ~from ~dest ~payload:"x"
    ~on_outcome:(fun outcome -> outcome_seen := Some outcome);
  Engine.run_until session.engine 1200.;
  match !outcome_seen with
  | None -> Alcotest.fail "no outcome"
  | Some outcome ->
      check Alcotest.bool "not delivered" false outcome.Protocol.delivered;
      (match outcome.Protocol.diagnosis with
      | Some (Protocol.Diagnosed { Stewardship.final = Some Stewardship.Network; _ }) -> ()
      | Some (Protocol.Diagnosed { Stewardship.final = Some (Stewardship.Next_hop blamed); _ })
        ->
          Alcotest.failf "blamed node %d instead of the network" blamed
      | _ -> Alcotest.fail "expected a diagnosis")

let test_repeated_drops_trigger_accusation () =
  let session0 = make_session () in
  let from, dest, route = route_with_intermediate session0 in
  let culprit = List.nth route 1 in
  let behavior v =
    if v = culprit then Protocol.Message_dropper 1.0 else Protocol.Honest
  in
  let session = make_session ~behavior () in
  Protocol.start_probing session.protocol ~horizon:4000.;
  Engine.run_until session.engine 600.;
  (* The judge (previous hop) needs accusation_m guilty verdicts. *)
  let judge = List.hd route in
  for i = 1 to 8 do
    Engine.schedule_at session.engine
      ~time:(600. +. (200. *. float_of_int i))
      (fun _ ->
        Protocol.send_message session.protocol ~from ~dest ~payload:"x"
          ~on_outcome:(fun _ -> ()))
  done;
  Engine.run_until session.engine 4000.;
  check Alcotest.bool "guilty verdicts accumulated" true
    (Protocol.guilty_count session.protocol ~judge ~suspect:culprit >= 6);
  let accusations = Protocol.fetch_accusations session.protocol ~from:judge ~accused:culprit in
  check Alcotest.bool "formal accusation in DHT" true (List.length accusations >= 1);
  List.iter
    (fun accusation ->
      check Alcotest.bool "self-verifying" true
        (Accusation.verify session.world.World.pki accusation = Ok ());
      check Alcotest.string "names the culprit"
        (Id.to_hex (World.id_of session.world culprit))
        (Id.to_hex (Signed.payload accusation).Accusation.accused))
    accusations

let test_commitment_refuser_flagged () =
  (* A Section 3.6 adversary: receives the message, issues no commitment,
     and drops it. Concilium cannot prove culpability, but it flags the
     hop for the complementary reputation system. *)
  let session0 = make_session () in
  let from, dest, route = route_with_intermediate session0 in
  let refuser = List.nth route 1 in
  let behavior v = if v = refuser then Protocol.Silent_dropper else Protocol.Honest in
  let session = make_session ~behavior () in
  warm_up session;
  let outcome_seen = ref None in
  Protocol.send_message session.protocol ~from ~dest ~payload:"x"
    ~on_outcome:(fun outcome -> outcome_seen := Some outcome);
  Engine.run_until session.engine 1200.;
  match !outcome_seen with
  | None -> Alcotest.fail "no outcome"
  | Some outcome ->
      check Alcotest.bool "not delivered" false outcome.Protocol.delivered;
      check (Alcotest.option Alcotest.int) "refuser flagged for the reputation system"
        (Some refuser) outcome.Protocol.no_commitment_from;
      (* Without a commitment no formal accusation may name the refuser. *)
      check Alcotest.int "no accusation possible" 0
        (List.length
           (Protocol.fetch_accusations session.protocol ~from:(List.hd route)
              ~accused:refuser))


let test_churned_hop_flagged_not_accused () =
  (* The middle hop is offline for the whole run: it issues no commitment,
     so Concilium cannot formally accuse it -- exactly the Section 3.6
     boundary -- but the sender learns which hop to distrust. *)
  let session0 = make_session () in
  let from, dest, route = route_with_intermediate session0 in
  let offline = List.nth route 1 in
  let world = Lazy.force world_fixture in
  let engine = Engine.create () in
  let graph = world.World.generated.World.Generate.graph in
  let link_state =
    Link_state.create ~link_count:(Graph.link_count graph) ~good_loss:0. ~bad_loss:1.
  in
  let availability ~time:_ v = v <> offline in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.of_seed 5L) ~availability
      Protocol.default_config
      ~behavior:(fun _ -> Protocol.Honest)
  in
  Protocol.start_probing protocol ~horizon:600.;
  Engine.run_until engine 600.;
  let outcome_seen = ref None in
  Protocol.send_message protocol ~from ~dest ~payload:"x"
    ~on_outcome:(fun outcome -> outcome_seen := Some outcome);
  Engine.run_until engine 1200.;
  match !outcome_seen with
  | None -> Alcotest.fail "no outcome"
  | Some outcome ->
      check Alcotest.bool "not delivered" false outcome.Protocol.delivered;
      check Alcotest.bool "ground truth: hop offline" true
        (outcome.Protocol.drop = Some (Protocol.Hop_offline offline));
      check (Alcotest.option Alcotest.int) "flagged without commitment" (Some offline)
        outcome.Protocol.no_commitment_from;
      (match outcome.Protocol.diagnosis with
      | Some (Protocol.Diagnosed { Stewardship.final = Some (Stewardship.Offline v); _ }) ->
          check Alcotest.int "offline hop identified, nobody blamed" offline v
      | _ -> Alcotest.fail "expected an Offline diagnosis");
      (* Absence is not misbehaviour: the judge's window for the offline
         hop must stay empty. *)
      check Alcotest.int "no verdict window charged" 0
        (Protocol.guilty_count protocol ~judge:from ~suspect:offline)


let test_control_bandwidth_accounted () =
  let session = make_session () in
  check Alcotest.int "no traffic before probing" 0
    (Protocol.control_bytes_sent session.protocol 0);
  warm_up session;
  check Alcotest.bool "probing consumed bandwidth" true
    (Protocol.control_bytes_sent session.protocol 0 > 0);
  let rate = Protocol.mean_control_bytes_per_second session.protocol ~horizon:600. in
  (* Lightweight probing + diffs should stay modest: well under the cost of
     re-advertising a full table each minute. *)
  check Alcotest.bool (Printf.sprintf "mean control rate %.0f B/s sane" rate) true
    (rate > 0. && rate < 100_000.)

let test_heavyweight_burst_improves_evidence () =
  (* With lightweight probing disabled-ish (very slow), the heavyweight
     burst triggered by the drop is the only source of evidence -- the
     diagnosis must still exonerate the forwarder when its egress path is
     genuinely dead. *)
  let session0 = make_session () in
  let from, dest, route = route_with_intermediate session0 in
  let hop1 = List.nth route 1 and hop2 = List.nth route 2 in
  let world = Lazy.force world_fixture in
  let engine = Engine.create () in
  let graph = world.World.generated.World.Generate.graph in
  let link_state =
    Link_state.create ~link_count:(Graph.link_count graph) ~good_loss:0. ~bad_loss:1.
  in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.of_seed 5L)
      { Protocol.default_config with Protocol.max_probe_time = 100_000. }
      ~behavior:(fun _ -> Protocol.Honest)
  in
  let path = Option.get (World.ip_path world ~from_node:hop1 ~to_node:hop2) in
  Array.iter (fun link -> Link_state.set_bad link_state link) path.World.Routes.links;
  let outcome_seen = ref None in
  Protocol.send_message protocol ~from ~dest ~payload:"x"
    ~on_outcome:(fun outcome -> outcome_seen := Some outcome);
  Engine.run_until engine 600.;
  match !outcome_seen with
  | None -> Alcotest.fail "no outcome"
  | Some outcome -> (
      check Alcotest.bool "not delivered" false outcome.Protocol.delivered;
      match outcome.Protocol.diagnosis with
      | Some (Protocol.Diagnosed { Stewardship.final = Some Stewardship.Network; _ }) -> ()
      | Some (Protocol.Diagnosed { Stewardship.final = Some (Stewardship.Next_hop blamed); _ })
        ->
          Alcotest.failf "blamed node %d despite heavyweight evidence" blamed
      | _ -> Alcotest.fail "expected a diagnosis")


let test_sparse_advertiser_caught () =
  (* Section 3.1 in the runtime: an attacker advertising half its routing
     state is flagged by its peers' density tests; honest advertisements
     pass. *)
  let session0 = make_session () in
  let _, _, route = route_with_intermediate session0 in
  let attacker = List.nth route 1 in
  let behavior v =
    if v = attacker then Protocol.Sparse_advertiser 0.35 else Protocol.Honest
  in
  let session = make_session ~behavior () in
  let reports = Protocol.exchange_advertisements session.protocol in
  let flagged =
    List.sort_uniq Int.compare
      (List.map (fun r -> r.Protocol.advertiser) reports)
  in
  check Alcotest.bool
    (Printf.sprintf "attacker %d among flagged %s" attacker
       (String.concat "," (List.map string_of_int flagged)))
    true (List.mem attacker flagged);
  (* The density tests have false positives by design, but the attacker
     must be flagged by (nearly) every validating peer, unlike honest
     nodes. *)
  let flags_for v =
    List.length (List.filter (fun r -> r.Protocol.advertiser = v) reports)
  in
  let honest_max =
    List.fold_left
      (fun acc v -> if v = attacker then acc else max acc (flags_for v))
      0
      (List.init (World.node_count session.world) Fun.id)
  in
  check Alcotest.bool
    (Printf.sprintf "attacker flagged %d times > any honest node (%d)" (flags_for attacker)
       honest_max)
    true
    (flags_for attacker > honest_max)

let suites =
  [
    ( "protocol.integration",
      [
        Alcotest.test_case "healthy delivery" `Quick test_healthy_delivery;
        Alcotest.test_case "dropper identified by stewardship" `Quick test_dropper_blamed;
        Alcotest.test_case "bad IP link exonerates the forwarder" `Quick
          test_bad_link_blames_network;
        Alcotest.test_case "repeated drops escalate to a DHT accusation" `Quick
          test_repeated_drops_trigger_accusation;
        Alcotest.test_case "commitment refuser flagged" `Quick test_commitment_refuser_flagged;
        Alcotest.test_case "churned-out hop flagged, not accused" `Quick
          test_churned_hop_flagged_not_accused;
        Alcotest.test_case "control bandwidth accounted" `Quick
          test_control_bandwidth_accounted;
        Alcotest.test_case "heavyweight burst carries the diagnosis" `Quick
          test_heavyweight_burst_improves_evidence;
        Alcotest.test_case "sparse advertiser caught by density tests" `Quick
          test_sparse_advertiser_caught;
      ] );
  ]
