module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Chaos = Concilium_netsim.Chaos
module Prng = Concilium_util.Prng

let check = Alcotest.check

let busy_config =
  {
    Chaos.link_flaps_per_hour = 6.;
    flap_mean_duration = 120.;
    bursts_per_hour = 2.;
    burst_width = 3;
    burst_mean_duration = 200.;
    partitions_per_hour = 1.;
    partition_mean_duration = 300.;
    crashes_per_hour = 3.;
    crash_mean_duration = 240.;
    replica_losses_per_hour = 1.;
    delays_per_hour = 2.;
    delay_mean_duration = 400.;
    delay_extra = 5.;
    duplications_per_hour = 2.;
    duplication_mean_duration = 300.;
    duplication_copies = 3;
  }

let sample_fixture seed =
  Chaos.sample ~rng:(Prng.of_seed seed) ~config:busy_config
    ~links:(Array.init 40 Fun.id) ~nodes:20
    ~cuts:[| [| 1; 2 |]; [| 7; 8; 9 |] |]
    ~horizon:7200.

let fault_start = function
  | Chaos.Link_flap { start; _ }
  | Chaos.Burst_loss { start; _ }
  | Chaos.Partition { start; _ }
  | Chaos.Node_crash { start; _ }
  | Chaos.Control_delay { start; _ }
  | Chaos.Control_duplication { start; _ } -> start
  | Chaos.Replica_loss { time; _ } -> time

let test_sample_deterministic_and_sorted () =
  let a = sample_fixture 7L and b = sample_fixture 7L in
  check Alcotest.bool "equal seeds, equal plans" true (a = b);
  check Alcotest.bool "different seed differs" true (a <> sample_fixture 8L);
  check Alcotest.bool "nonempty fixture" true (a <> []);
  let starts = List.map fault_start a in
  check (Alcotest.list (Alcotest.float 1e-9)) "sorted by start"
    (List.sort Float.compare starts) starts;
  List.iter
    (fun start -> check Alcotest.bool "within horizon" true (start >= 0. && start < 7200.))
    starts

let test_quiet_samples_empty () =
  let plan =
    Chaos.sample ~rng:(Prng.of_seed 1L) ~config:Chaos.quiet ~links:(Array.init 10 Fun.id)
      ~nodes:5 ~cuts:[||] ~horizon:3600.
  in
  check Alcotest.int "empty plan" 0 (List.length plan)

let test_compile_restores_link_state () =
  let engine = Engine.create () in
  let link_state = Link_state.create ~link_count:10 ~good_loss:0.01 ~bad_loss:1. in
  (* Link 3 is bad before chaos touches it: chaos must not repair it. Link 5
     suffers two overlapping faults and must stay bad until the later end. *)
  Link_state.set_bad link_state 3;
  let plan =
    [
      Chaos.Link_flap { link = 3; start = 10.; duration = 20. };
      Chaos.Link_flap { link = 5; start = 10.; duration = 30. };
      Chaos.Burst_loss { links = [| 5; 6 |]; start = 20.; duration = 40. };
    ]
  in
  let (_ : Chaos.t) = Chaos.compile ~engine ~link_state plan in
  Engine.run_until engine 15.;
  check Alcotest.bool "5 bad at 15" true (Link_state.is_bad link_state 5);
  Engine.run_until engine 45.;
  (* First fault on 5 ended at 40, burst still holds it. *)
  check Alcotest.bool "5 still bad at 45 (refcount)" true (Link_state.is_bad link_state 5);
  check Alcotest.bool "6 bad at 45" true (Link_state.is_bad link_state 6);
  Engine.run_until engine 100.;
  check Alcotest.bool "5 repaired" false (Link_state.is_bad link_state 5);
  check Alcotest.bool "6 repaired" false (Link_state.is_bad link_state 6);
  check Alcotest.bool "pre-chaos bad state preserved" true (Link_state.is_bad link_state 3)

let test_compile_queries_and_hooks () =
  let engine = Engine.create () in
  let link_state = Link_state.create ~link_count:4 ~good_loss:0. ~bad_loss:1. in
  let lost = ref [] in
  let plan =
    [
      Chaos.Node_crash { node = 2; start = 100.; duration = 50. };
      Chaos.Replica_loss { node = 1; time = 120. };
      Chaos.Control_delay { start = 100.; duration = 100.; extra = 4. };
      Chaos.Control_delay { start = 150.; duration = 100.; extra = 2. };
      Chaos.Control_duplication { start = 100.; duration = 50.; copies = 3 };
    ]
  in
  let chaos =
    Chaos.compile
      ~on_replica_loss:(fun ~node ~time -> lost := (node, time) :: !lost)
      ~engine ~link_state plan
  in
  check Alcotest.bool "online before crash" true (Chaos.node_online chaos ~time:99. 2);
  check Alcotest.bool "offline during crash" false (Chaos.node_online chaos ~time:120. 2);
  check Alcotest.bool "online after restart" true (Chaos.node_online chaos ~time:151. 2);
  check Alcotest.bool "other node unaffected" true (Chaos.node_online chaos ~time:120. 0);
  check (Alcotest.float 1e-9) "no delay outside windows" 0.
    (Chaos.control_latency chaos ~time:50.);
  check (Alcotest.float 1e-9) "single window" 4. (Chaos.control_latency chaos ~time:120.);
  check (Alcotest.float 1e-9) "overlapping windows sum" 6.
    (Chaos.control_latency chaos ~time:160.);
  check Alcotest.int "no duplication outside" 1 (Chaos.put_copies chaos ~time:99.);
  check Alcotest.int "duplication inside" 3 (Chaos.put_copies chaos ~time:120.);
  Engine.run_until engine 200.;
  check (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "replica loss delivered" [ (1, 120.) ] !lost

let test_cut_of_paths () =
  (* Cross-side paths use links 2 and 3; link 3 also carries a same-side
     path, so only link 2 realises the cut. *)
  let paths =
    [
      (true, false, [| 1; 2 |]);
      (false, true, [| 3; 4 |]);
      (true, true, [| 3; 5 |]);
      (false, false, [| 4 |]);
    ]
  in
  check (Alcotest.array Alcotest.int) "cut links" [| 1; 2 |] (Chaos.cut_of_paths ~paths)

let test_fault_counts () =
  let counts = Chaos.fault_counts (sample_fixture 7L) in
  check
    (Alcotest.list Alcotest.string)
    "fixed family order"
    [
      "link_flap"; "burst_loss"; "partition"; "node_crash"; "replica_loss"; "control_delay";
      "control_duplication";
    ]
    (List.map fst counts);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  check Alcotest.int "histogram covers the plan" (List.length (sample_fixture 7L)) total

let suites =
  [
    ( "netsim.chaos",
      [
        Alcotest.test_case "sample deterministic and sorted" `Quick
          test_sample_deterministic_and_sorted;
        Alcotest.test_case "quiet config samples empty" `Quick test_quiet_samples_empty;
        Alcotest.test_case "compile restores link state" `Quick
          test_compile_restores_link_state;
        Alcotest.test_case "queries and hooks" `Quick test_compile_queries_and_hooks;
        Alcotest.test_case "cut of paths" `Quick test_cut_of_paths;
        Alcotest.test_case "fault counts" `Quick test_fault_counts;
      ] );
  ]
