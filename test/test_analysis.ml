open Alcotest
module Driver = Concilium_analysis.Driver
module Effects = Concilium_analysis.Effects
module Callgraph = Concilium_analysis.Callgraph
module Finding = Concilium_analysis.Finding
module Layering = Concilium_analysis.Layering
module Inject = Concilium_analysis.Inject

let qtest = QCheck_alcotest.to_alcotest

(* Fixture sources below are data for the analysis, never compiled; the
   runtime stubs only have to parse, and the deliberately racy ones are
   what the detector must catch. *)

let pool_stub =
  {|let parallel_init ?pool n ~f = ignore pool; Array.init n f
let parallel_map ?pool xs ~f = ignore pool; Array.map f xs
|}

let prng_stub =
  {|let of_seed seed = seed
let of_string_seed s = String.length s
let split rng = rng
let split_n rng n = Array.make n rng
let int rng bound = ignore rng; bound
let float rng x = ignore rng; x
|}

let base_files = [ ("lib/util/pool.ml", pool_stub); ("lib/util/prng.ml", prng_stub) ]
let base_layers = "util\ncore\nexperiments\nbin\n"

let analyze ?(layers = base_layers) files =
  Driver.analyze_sources ~layers_path:"analysis/layers.txt" ~layers_text:layers ~dunes:[]
    ~files:(base_files @ files)

let finding_rules report =
  List.sort_uniq String.compare
    (List.map (fun (f : Finding.t) -> f.Finding.rule) report.Driver.r_findings)

let fired rule report = List.mem rule (finding_rules report)

let summary report ~m ~fn =
  Effects.find report.Driver.r_effects
    { Callgraph.k_lib = "concilium_experiments"; k_mod = m; k_fn = fn }

let get_summary report ~m ~fn =
  match summary report ~m ~fn with
  | Some s -> s
  | None -> failf "no summary for %s.%s" m fn

(* ---------- Effect inference ---------- *)

let test_intrinsic_global_write () =
  let src =
    {|let totals : (int, int) Hashtbl.t = Hashtbl.create 16

let bump key = Hashtbl.replace totals key 1
|}
  in
  let report = analyze [ ("lib/experiments/acc.ml", src) ] in
  let s = get_summary report ~m:"Acc" ~fn:"bump" in
  check bool "bump writes global" true (Effects.has s.Effects.s_mask Effects.Writes_global);
  let v = get_summary report ~m:"Acc" ~fn:"totals" in
  check bool "the table binding itself is a value" true v.Effects.s_def.Concilium_analysis.Source.d_is_value

let test_transitive_effects_and_trail () =
  let src =
    {|module Pool = Concilium_util.Pool

let totals : (int, int) Hashtbl.t = Hashtbl.create 16

let note key = Hashtbl.replace totals key 1

let middle key = note (key + 1)

let run ?pool () = Pool.parallel_init ?pool 4 ~f:(fun i -> middle i)
|}
  in
  let report = analyze [ ("lib/experiments/deep.ml", src) ] in
  let s = get_summary report ~m:"Deep" ~fn:"middle" in
  check bool "middle inherits writes-global" true
    (Effects.has s.Effects.s_mask Effects.Writes_global);
  (match List.assoc_opt Effects.Writes_global s.Effects.s_origins with
  | Some (Effects.Via (callee, _)) -> check string "via note" "note" callee.Callgraph.k_fn
  | _ -> fail "expected a Via origin on middle");
  (match report.Driver.r_findings with
  | [ f ] ->
      check string "rule" "pool-shared-write" f.Finding.rule;
      check bool "trail walks root -> middle -> note" true (List.length f.Finding.trail >= 3)
  | findings -> failf "expected exactly one finding, got %d" (List.length findings))

let test_prng_param_fixpoint () =
  let src =
    {|module Prng = Concilium_util.Prng

let sample rng bound = Prng.int rng bound

let wrapper rng bound = sample rng (bound + 1)
|}
  in
  let report = analyze [ ("lib/experiments/draws.ml", src) ] in
  let s = get_summary report ~m:"Draws" ~fn:"sample" in
  check bool "sample has randomness" true (Effects.has s.Effects.s_mask Effects.Randomness);
  check (list string) "sample prng params" [ "rng" ] s.Effects.s_prng_params;
  let w = get_summary report ~m:"Draws" ~fn:"wrapper" in
  check (list string) "wrapper prng params (transitive)" [ "rng" ] w.Effects.s_prng_params

let test_presplit_pattern_clean () =
  let src =
    {|module Pool = Concilium_util.Pool
module Prng = Concilium_util.Prng

let run ?pool ~seed n =
  let master = Prng.of_seed seed in
  let rngs = Prng.split_n master n in
  Pool.parallel_init ?pool n ~f:(fun i ->
      let rng = rngs.(i) in
      Prng.float rng 1.0)
|}
  in
  let report = analyze [ ("lib/experiments/presplit.ml", src) ] in
  check (list string) "pre-split per-task slots are clean" [] (finding_rules report)

(* ---------- Canary catches (mirrors test_check's divergence canaries) ---------- *)

let test_canaries_detected () =
  let core_stub = ("lib/core/scenario.ml", "let default = 1\n") in
  List.iter
    (fun (c : Inject.canary) ->
      let report = analyze [ core_stub; (c.Inject.c_path, c.Inject.c_source) ] in
      check bool (c.Inject.c_name ^ " detected") true (fired c.Inject.c_rule report);
      if String.length c.Inject.c_rule >= 4 && String.sub c.Inject.c_rule 0 4 = "pool" then
        List.iter
          (fun (f : Finding.t) ->
            if f.Finding.rule = c.Inject.c_rule then
              check bool (c.Inject.c_name ^ " has a call-graph trail") true (f.Finding.trail <> []))
          report.Driver.r_findings)
    Inject.canaries

let test_canary_count () =
  check bool "at least three canaries" true (List.length Inject.canaries >= 3)

(* ---------- Suppressions ---------- *)

let shared_write_src ~directive =
  String.concat "\n"
    [
      "module Pool = Concilium_util.Pool";
      "";
      "let shared : (int, int) Hashtbl.t = Hashtbl.create 8";
      "";
      "let run ?pool () =";
      "  Pool.parallel_init ?pool 2 ~f:(fun i ->";
      "      " ^ directive;
      "      Hashtbl.replace shared i i;";
      "      i)";
      "";
    ]

let test_suppression_with_reason () =
  let src =
    shared_write_src
      ~directive:"(* analysis: allow pool-shared-write -- single writer per key, validated *)"
  in
  let report = analyze [ ("lib/experiments/sup.ml", src) ] in
  check (list string) "suppressed" [] (finding_rules report);
  check int "counted as suppressed" 1 report.Driver.r_suppressed

let test_suppression_missing_reason () =
  let src = shared_write_src ~directive:"(* analysis: allow pool-shared-write *)" in
  let report = analyze [ ("lib/experiments/sup.ml", src) ] in
  check bool "reasonless directive suppresses nothing" true (fired "pool-shared-write" report);
  check bool "and is itself reported" true (fired "suppression-missing-reason" report)

let test_allow_file () =
  let src =
    "(* analysis: allow-file pool-shared-write -- fixture exercises the whole file *)\n"
    ^ shared_write_src ~directive:"(* just a comment *)"
  in
  let report = analyze [ ("lib/experiments/sup.ml", src) ] in
  check (list string) "allow-file covers distant lines" [] (finding_rules report)

(* ---------- Layering ---------- *)

let edge e_from e_to =
  { Layering.e_from; e_to; e_file = "test"; e_line = 1; e_what = "synthetic" }

let test_layering_units () =
  match Layering.parse "util\ncore\n" with
  | Error message -> failf "parse failed: %s" message
  | Ok spec ->
      check (list string) "downward edge accepted" []
        (List.map
           (fun (f : Finding.t) -> f.Finding.rule)
           (Layering.check spec [ edge "concilium_core" "concilium_util" ]));
      (match Layering.check spec [ edge "concilium_util" "concilium_core" ] with
      | [ f ] -> check string "upward edge rejected" "layer-back-edge" f.Finding.rule
      | fs -> failf "expected one finding, got %d" (List.length fs));
      (match Layering.check spec [ edge "concilium_util" "concilium_mystery" ] with
      | [ f ] -> check string "unknown library reported" "layer-unknown" f.Finding.rule
      | fs -> failf "expected one finding, got %d" (List.length fs))

let test_dune_back_edge_fixture () =
  (* A synthetic dune back-edge: util depending on core must fail. *)
  match Layering.parse base_layers with
  | Error message -> failf "parse failed: %s" message
  | Ok spec ->
      let edges =
        Layering.dune_edges ~path:"lib/util/dune"
          "(library\n (name concilium_util)\n (libraries concilium_core))\n"
      in
      check int "one dependency edge extracted" 1 (List.length edges);
      (match Layering.check spec edges with
      | [ f ] ->
          check string "back-edge caught" "layer-back-edge" f.Finding.rule;
          check string "reported against the dune file" "lib/util/dune" f.Finding.file
      | fs -> failf "expected one finding, got %d" (List.length fs))

(* The layering check accepts exactly the DAG-respecting edge sets: with
   every library known, findings correspond one-to-one to edges whose
   target layer is not strictly lower. *)
let layering_qcheck =
  let libs = [| "a"; "b"; "c"; "d"; "e" |] in
  let gen =
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.return 5) (int_bound 4))
        (small_list (pair (int_bound 4) (int_bound 4))))
  in
  QCheck.Test.make ~name:"layering accepts exactly DAG-respecting edge sets" ~count:300 gen
    (fun (buckets, pairs) ->
      (* libs.(i) lives in bucket buckets.(i); non-empty buckets become
         layers bottom-up, so a lib's layer is its bucket's rank. *)
      let used = List.sort_uniq Int.compare (Array.to_list buckets) in
      let rank bucket =
        let rec go index = function
          | [] -> 0
          | b :: rest -> if b = bucket then index else go (index + 1) rest
        in
        go 0 used
      in
      let text =
        String.concat "\n"
          (List.map
             (fun bucket ->
               String.concat " "
                 (List.filteri (fun i _ -> buckets.(i) = bucket) (Array.to_list libs)))
             used)
        ^ "\n"
      in
      let edges =
        List.map (fun (i, j) -> edge ("concilium_" ^ libs.(i)) ("concilium_" ^ libs.(j))) pairs
      in
      let violating =
        List.length
          (List.filter
             (fun (i, j) -> i <> j && rank buckets.(j) >= rank buckets.(i))
             pairs)
      in
      match Layering.parse text with
      | Error _ -> false
      | Ok spec ->
          let findings = Layering.check spec edges in
          List.length findings = violating
          && List.for_all (fun (f : Finding.t) -> f.Finding.rule = "layer-back-edge") findings)

(* ---------- Report metrics ---------- *)

let test_metrics_counters () =
  let report = analyze [] in
  let counter = Concilium_obs.Metrics.counter report.Driver.r_metrics in
  check int "modules scanned" 2 (counter "analysis:modules-scanned");
  check bool "functions resolved" true (counter "analysis:functions-resolved" >= 8)

let suites =
  [
    ( "analysis.effects",
      [
        test_case "intrinsic global write" `Quick test_intrinsic_global_write;
        test_case "transitive effects and witness trail" `Quick test_transitive_effects_and_trail;
        test_case "prng parameter fixpoint" `Quick test_prng_param_fixpoint;
        test_case "pre-split pattern is clean" `Quick test_presplit_pattern_clean;
      ] );
    ( "analysis.races",
      [
        test_case "canary mutations detected" `Quick test_canaries_detected;
        test_case "enough canaries" `Quick test_canary_count;
      ] );
    ( "analysis.suppressions",
      [
        test_case "allow with reason" `Quick test_suppression_with_reason;
        test_case "allow without reason" `Quick test_suppression_missing_reason;
        test_case "allow-file" `Quick test_allow_file;
      ] );
    ( "analysis.layering",
      [
        test_case "units" `Quick test_layering_units;
        test_case "synthetic dune back-edge fails" `Quick test_dune_back_edge_fixture;
        qtest layering_qcheck;
      ] );
    ("analysis.metrics", [ test_case "coverage counters" `Quick test_metrics_counters ]);
  ]
