(* Smoke and invariant tests over the experiment drivers, at tiny scale. *)

module E = Concilium_experiments
module World = Concilium_core.World
module Prng = Concilium_util.Prng

let check = Alcotest.check

let world_fixture = lazy (World.build (World.tiny_config ~seed:77L))

let test_fig1_model_tracks_monte_carlo () =
  let points = E.Fig1.run ~seed:1L ~sizes:[| 256; 1024 |] ~trials:12 () in
  check Alcotest.int "two points" 2 (List.length points);
  List.iter
    (fun p ->
      let gap = abs_float (p.E.Fig1.analytic_mean -. p.E.Fig1.monte_carlo_mean) in
      check Alcotest.bool
        (Printf.sprintf "N=%d gap %.4f small" p.E.Fig1.n gap)
        true (gap < 0.02))
    points

let test_fig1_occupancy_grows_with_n () =
  let points = E.Fig1.run ~seed:2L ~sizes:[| 128; 2048 |] ~trials:8 () in
  match points with
  | [ small; large ] ->
      check Alcotest.bool "more nodes, denser tables" true
        (large.E.Fig1.analytic_mean > small.E.Fig1.analytic_mean)
  | _ -> Alcotest.fail "expected two points"

let test_fig2_rates_shape () =
  let result =
    E.Fig2_fig3.run ~n:20_000 ~suppression:false ~gammas:[| 1.0; 1.3; 1.6 |]
      ~colluding_fractions:[| 0.1; 0.3 |] ()
  in
  (* False negatives increase with both gamma and c. *)
  let fn gamma_index c_index =
    let row = List.nth result.E.Fig2_fig3.sweep gamma_index in
    (snd (List.nth row.E.Fig2_fig3.per_c c_index)).Concilium_overlay.Density_test.false_negative
  in
  check Alcotest.bool "fn grows with gamma" true (fn 0 0 <= fn 2 0);
  check Alcotest.bool "fn grows with c" true (fn 1 0 <= fn 1 1);
  check Alcotest.int "optimal per c" 2 (List.length result.E.Fig2_fig3.optimal)

let test_fig3_worse_than_fig2 () =
  let run suppression =
    E.Fig2_fig3.run ~n:20_000 ~suppression ~gammas:[| 1.2 |] ~colluding_fractions:[| 0.2 |] ()
  in
  let total result =
    let o = List.hd result.E.Fig2_fig3.optimal in
    o.E.Fig2_fig3.rates.Concilium_overlay.Density_test.false_positive
    +. o.E.Fig2_fig3.rates.Concilium_overlay.Density_test.false_negative
  in
  check Alcotest.bool "suppression strictly worse" true (total (run true) > total (run false))

let test_fig4_coverage_monotone () =
  let world = Lazy.force world_fixture in
  let rng = Prng.of_seed 3L in
  let points = E.Fig4.run ~world ~rng ~host_sample:10 () in
  check Alcotest.bool "has points" true (List.length points > 2);
  let coverages = List.map (fun p -> p.E.Fig4.mean_coverage) points in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "coverage non-decreasing in trees" true (non_decreasing coverages);
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  check Alcotest.bool "own tree covers a strict subset" true
    (first.E.Fig4.mean_coverage < last.E.Fig4.mean_coverage);
  check (Alcotest.float 1e-6) "all trees cover the whole forest" 1. last.E.Fig4.mean_coverage

let test_fig4_vouchers_grow () =
  let world = Lazy.force world_fixture in
  let rng = Prng.of_seed 4L in
  let points = E.Fig4.run ~world ~rng ~host_sample:10 () in
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  check Alcotest.bool "vouching peers increase" true
    (last.E.Fig4.mean_vouchers > first.E.Fig4.mean_vouchers)

let blame_fixture colluding_fraction =
  let world = Lazy.force world_fixture in
  E.Blame_world.create ~world
    {
      (E.Blame_world.paper_config ~colluding_fraction ~seed:9L) with
      E.Blame_world.duration = 1800.;
    }

let test_fig5_separates_populations () =
  let bw = blame_fixture 0. in
  let result = E.Blame_world.run bw ~samples:1500 ~bins:10 in
  check Alcotest.bool "faulty population present" true (result.E.Blame_world.faulty_samples > 50);
  check Alcotest.bool "nonfaulty population present" true
    (result.E.Blame_world.nonfaulty_samples > 50);
  check Alcotest.bool
    (Printf.sprintf "p_faulty %.2f >> p_good %.2f" result.E.Blame_world.p_faulty
       result.E.Blame_world.p_good)
    true
    (result.E.Blame_world.p_faulty > 0.7 && result.E.Blame_world.p_good < 0.25)

let test_fig5_failure_process_on_target () =
  let bw = blame_fixture 0. in
  let fraction = E.Blame_world.mean_bad_fraction bw in
  check Alcotest.bool (Printf.sprintf "bad fraction %.3f near 0.05" fraction) true
    (fraction > 0.02 && fraction < 0.09)

let test_fig5_collusion_degrades () =
  let honest = E.Blame_world.run (blame_fixture 0.) ~samples:1500 ~bins:10 in
  let collusion = E.Blame_world.run (blame_fixture 0.2) ~samples:1500 ~bins:10 in
  check Alcotest.bool "collusion raises false accusations" true
    (collusion.E.Blame_world.p_good > honest.E.Blame_world.p_good);
  check Alcotest.bool "collusion shields droppers" true
    (collusion.E.Blame_world.p_faulty < honest.E.Blame_world.p_faulty)

let test_fig5_judgments_deterministic () =
  let bw = blame_fixture 0. in
  let sample seed =
    let rng = Prng.of_seed seed in
    let rec first () =
      match E.Blame_world.sample_judgment bw ~rng with Some j -> j | None -> first ()
    in
    first ()
  in
  let a = sample 42L and b = sample 42L in
  check (Alcotest.float 1e-12) "same seed, same blame" a.E.Blame_world.blame
    b.E.Blame_world.blame

let test_collusion_curves_zero_point_is_baseline () =
  let world = Lazy.force world_fixture in
  let result =
    E.Collusion_curves.run ~world ~samples:600 ~bins:10 ~seed:9L ~fractions:[| 0.; 0.2 |]
      ~corroborations:[| 0.5; 1.0 |] ()
  in
  (* The fraction-0 cells are recomputed with the corroboration knob at
     0.5 and 1.0; exact equality with the honest baseline is the
     no-adversary-no-effect guarantee the curves rest on. *)
  check Alcotest.bool "zero-adversary rows equal the honest baseline exactly" true
    (E.Collusion_curves.zero_adversary_consistent result);
  check Alcotest.int "grid complete" 4 (Array.length result.E.Collusion_curves.points);
  (* Full corroboration at 20% colluders must visibly degrade verdicts
     relative to the honest world (the Figure 5(b) effect). *)
  let cell ~fraction ~corroboration =
    Array.to_list result.E.Collusion_curves.points
    |> List.find (fun p ->
           p.E.Collusion_curves.fraction = fraction
           && p.E.Collusion_curves.corroboration = corroboration)
  in
  let honest = cell ~fraction:0. ~corroboration:1.0 in
  let full = cell ~fraction:0.2 ~corroboration:1.0 in
  check Alcotest.bool "collusion raises false blame" true
    (full.E.Collusion_curves.false_blame > honest.E.Collusion_curves.false_blame);
  check Alcotest.bool "collusion raises missed blame" true
    (full.E.Collusion_curves.missed_blame > honest.E.Collusion_curves.missed_blame)

let test_collusion_corroboration_scales_attack () =
  let world = Lazy.force world_fixture in
  let bw corroboration =
    E.Blame_world.create ~world
      {
        (E.Blame_world.paper_config ~colluding_fraction:0.2 ~seed:9L) with
        E.Blame_world.duration = 1800.;
        corroboration;
      }
  in
  let half = E.Blame_world.run (bw 0.5) ~samples:1500 ~bins:10 in
  let full = E.Blame_world.run (bw 1.0) ~samples:1500 ~bins:10 in
  check Alcotest.bool "half-hearted liars frame fewer innocents" true
    (half.E.Blame_world.p_good <= full.E.Blame_world.p_good);
  check Alcotest.bool "half-hearted liars shield fewer droppers" true
    (half.E.Blame_world.p_faulty >= full.E.Blame_world.p_faulty)

let test_fig6_recommends_m () =
  let result = E.Fig6.run ~w:100 ~max_m:30 { E.Fig6.label = "h"; p_good = 0.018; p_faulty = 0.938 } in
  check (Alcotest.option Alcotest.int) "paper honest m=6" (Some 6) result.E.Fig6.recommended_m;
  let worse = E.Fig6.run ~w:100 ~max_m:30 { E.Fig6.label = "c"; p_good = 0.084; p_faulty = 0.713 } in
  check (Alcotest.option Alcotest.int) "paper collusion m=16" (Some 16)
    worse.E.Fig6.recommended_m

let test_bandwidth_tables () =
  let tables = E.Bandwidth_exp.run ~sizes:[| 1000; 100_000 |] () in
  check Alcotest.int "two tables" 2 (List.length tables);
  check Alcotest.bool "sweep has rows" true
    (List.length (List.nth tables 1).E.Output.rows = 2)


let test_baselines_concilium_wins () =
  let bw = blame_fixture 0. in
  let result = E.Baselines.run bw ~samples:2000 in
  match result.E.Baselines.rows with
  | [ concilium; ron; naive ] ->
      check Alcotest.bool "beats RON" true
        (concilium.E.Baselines.overall_accuracy > ron.E.Baselines.overall_accuracy);
      check Alcotest.bool "beats naive" true
        (concilium.E.Baselines.overall_accuracy > naive.E.Baselines.overall_accuracy);
      check (Alcotest.float 1e-9) "RON perfect on network faults" 1.
        ron.E.Baselines.network_fault_accuracy;
      check (Alcotest.float 1e-9) "naive perfect on node faults" 1.
        naive.E.Baselines.node_fault_accuracy
  | _ -> Alcotest.fail "expected three rows"

let test_chord_exp_model_tracks_mc () =
  let points = E.Chord_exp.run ~seed:5L ~sizes:[| 256; 1024 |] ~trials:8 () in
  List.iter
    (fun p ->
      let gap = abs_float (p.E.Chord_exp.analytic_mean -. p.E.Chord_exp.monte_carlo_mean) in
      check Alcotest.bool (Printf.sprintf "N=%d gap %.4f" p.E.Chord_exp.n gap) true (gap < 0.02))
    points

let test_ablation_self_exclusion_matters () =
  let world = Lazy.force world_fixture in
  let table = E.Ablations.self_exclusion ~world ~samples:1200 ~seed:31L () in
  (* Row format: [label; innocent guilty; faulty guilty; ...]. The rule-ON
     faulty-guilty rate must exceed rule-OFF (liars dodge blame). *)
  match table.E.Output.rows with
  | [ [ _; _; on_faulty; _; _ ]; [ _; _; off_faulty; _; _ ] ] ->
      let pct s = float_of_string (String.sub s 0 (String.length s - 1)) in
      check Alcotest.bool
        (Printf.sprintf "rule ON %s > rule OFF %s" on_faulty off_faulty)
        true
        (pct on_faulty > pct off_faulty)
  | _ -> Alcotest.fail "unexpected table shape"

let suites =
  [
    ( "experiments.fig1",
      [
        Alcotest.test_case "model tracks Monte Carlo" `Quick test_fig1_model_tracks_monte_carlo;
        Alcotest.test_case "occupancy grows with N" `Quick test_fig1_occupancy_grows_with_n;
      ] );
    ( "experiments.fig2_fig3",
      [
        Alcotest.test_case "rate shapes" `Quick test_fig2_rates_shape;
        Alcotest.test_case "suppression worse" `Quick test_fig3_worse_than_fig2;
      ] );
    ( "experiments.fig4",
      [
        Alcotest.test_case "coverage monotone to 100%" `Quick test_fig4_coverage_monotone;
        Alcotest.test_case "vouchers grow" `Quick test_fig4_vouchers_grow;
      ] );
    ( "experiments.fig5",
      [
        Alcotest.test_case "separates faulty from non-faulty" `Slow
          test_fig5_separates_populations;
        Alcotest.test_case "failure process on target" `Quick
          test_fig5_failure_process_on_target;
        Alcotest.test_case "collusion degrades verdicts" `Slow test_fig5_collusion_degrades;
        Alcotest.test_case "judgments deterministic" `Quick test_fig5_judgments_deterministic;
      ] );
    ( "experiments.collusion_curves",
      [
        Alcotest.test_case "zero-adversary point is the baseline" `Slow
          test_collusion_curves_zero_point_is_baseline;
        Alcotest.test_case "corroboration scales the attack" `Slow
          test_collusion_corroboration_scales_attack;
      ] );
    ( "experiments.fig6",
      [ Alcotest.test_case "recommends the paper's m" `Quick test_fig6_recommends_m ] );
    ( "experiments.baselines",
      [ Alcotest.test_case "Concilium beats both priors" `Slow test_baselines_concilium_wins ]
    );
    ( "experiments.chord",
      [ Alcotest.test_case "model tracks Monte Carlo" `Quick test_chord_exp_model_tracks_mc ] );
    ( "experiments.ablations",
      [
        Alcotest.test_case "self-exclusion rule matters" `Slow
          test_ablation_self_exclusion_matters;
      ] );
    ( "experiments.bandwidth",
      [ Alcotest.test_case "tables render" `Quick test_bandwidth_tables ] );
  ]
