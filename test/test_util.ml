module Prng = Concilium_util.Prng
module Heap = Concilium_util.Heap
module Bitset = Concilium_util.Bitset
module Fenwick = Concilium_util.Fenwick
module Sorted = Concilium_util.Sorted
module Ring_buffer = Concilium_util.Ring_buffer
module Hashing = Concilium_util.Hashing

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Prng ---------- *)

let test_prng_determinism () =
  let a = Prng.of_seed 42L and b = Prng.of_seed 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.of_seed 1L and b = Prng.of_seed 2L in
  let distinct = ref false in
  for _ = 1 to 8 do
    if not (Int64.equal (Prng.int64 a) (Prng.int64 b)) then distinct := true
  done;
  check Alcotest.bool "streams differ" true !distinct

let test_prng_split_independent () =
  let parent = Prng.of_seed 7L in
  let child = Prng.split parent in
  let child_values = List.init 16 (fun _ -> Prng.int64 child) in
  let parent_values = List.init 16 (fun _ -> Prng.int64 parent) in
  check Alcotest.bool "no overlap" true (child_values <> parent_values)

let test_prng_int_bounds () =
  let rng = Prng.of_seed 3L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    check Alcotest.bool "in range" true (v >= 0 && v < 7)
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Prng.of_seed 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_uniform_range () =
  let rng = Prng.of_seed 4L in
  for _ = 1 to 1000 do
    let u = Prng.uniform rng in
    check Alcotest.bool "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_prng_uniform_mean () =
  let rng = Prng.of_seed 5L in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Prng.uniform rng
  done;
  let mean = !total /. float_of_int n in
  check (Alcotest.float 0.01) "mean near 1/2" 0.5 mean

let test_prng_gaussian_moments () =
  let rng = Prng.of_seed 6L in
  let n = 50_000 in
  let sum = ref 0. and sum_sq = ref 0. in
  for _ = 1 to n do
    let x = Prng.gaussian rng ~mu:3. ~sigma:2. in
    sum := !sum +. x;
    sum_sq := !sum_sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let variance = (!sum_sq /. float_of_int n) -. (mean *. mean) in
  check (Alcotest.float 0.05) "mean" 3. mean;
  check (Alcotest.float 0.15) "variance" 4. variance

let test_prng_exponential_mean () =
  let rng = Prng.of_seed 8L in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Prng.exponential rng ~rate:0.5
  done;
  check (Alcotest.float 0.05) "mean 1/rate" 2. (!total /. float_of_int n)

let test_sample_without_replacement () =
  let rng = Prng.of_seed 9L in
  let sample = Prng.sample_without_replacement rng 50 100 in
  check Alcotest.int "size" 50 (Array.length sample);
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      check Alcotest.bool "in range" true (x >= 0 && x < 100);
      check Alcotest.bool "distinct" false (Hashtbl.mem seen x);
      Hashtbl.replace seen x ())
    sample

let test_sample_full_population () =
  let rng = Prng.of_seed 10L in
  let sample = Prng.sample_without_replacement rng 10 10 in
  let sorted = Array.copy sample in
  Array.sort Int.compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 10 Fun.id) sorted

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, list) ->
      let rng = Prng.of_seed (Int64.of_int seed) in
      let array = Array.of_list list in
      Prng.shuffle rng array;
      List.sort Int.compare (Array.to_list array) = List.sort Int.compare list)

(* ---------- Heap ---------- *)

module Int_heap = Heap.Make (Int)

let test_heap_basic () =
  let h = Int_heap.create () in
  check Alcotest.bool "empty" true (Int_heap.is_empty h);
  List.iter (Int_heap.add h) [ 5; 1; 4; 2; 3 ];
  check Alcotest.int "length" 5 (Int_heap.length h);
  check (Alcotest.option Alcotest.int) "peek" (Some 1) (Int_heap.peek_min h);
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 2; 3; 4; 5 ] (Int_heap.to_sorted_list h);
  check Alcotest.int "non-destructive" 5 (Int_heap.length h)

let test_heap_pop_empty () =
  let h = Int_heap.create () in
  check (Alcotest.option Alcotest.int) "pop empty" None (Int_heap.pop_min h);
  Alcotest.check_raises "pop_min_exn" (Invalid_argument "Heap.pop_min_exn: empty heap")
    (fun () -> ignore (Int_heap.pop_min_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun list ->
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) list;
      let drained = ref [] in
      let rec drain () =
        match Int_heap.pop_min h with
        | Some x ->
            drained := x :: !drained;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !drained = List.sort Int.compare list)

let test_heap_capacity_shrinks () =
  let h = Int_heap.create () in
  for i = 1 to 4096 do
    Int_heap.add h i
  done;
  let full = Int_heap.capacity h in
  check Alcotest.bool "grew" true (full >= 4096);
  for _ = 1 to 4000 do
    ignore (Int_heap.pop_min h)
  done;
  check Alcotest.bool "shrank after draining"
    true
    (Int_heap.capacity h < full / 4);
  (* Draining completely releases the backing array. *)
  for _ = 1 to 96 do
    ignore (Int_heap.pop_min h)
  done;
  check Alcotest.int "empty heap holds nothing" 0 (Int_heap.capacity h)

let prop_heap_filter_in_place =
  QCheck.Test.make ~name:"filter_in_place keeps exactly the survivors, sorted" ~count:200
    QCheck.(pair (list int) (int_bound 7))
    (fun (list, modulus) ->
      let keep x = x mod (modulus + 2) <> 0 in
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) list;
      Int_heap.filter_in_place h ~keep;
      let expected = List.sort Int.compare (List.filter keep list) in
      Int_heap.to_sorted_list h = expected)

(* ---------- Bitset ---------- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check Alcotest.bool "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  check Alcotest.int "cardinal" 3 (Bitset.cardinal s);
  check Alcotest.bool "mem 63" true (Bitset.mem s 63);
  check Alcotest.bool "not mem 50" false (Bitset.mem s 50);
  Bitset.remove s 63;
  check Alcotest.bool "removed" false (Bitset.mem s 63);
  check (Alcotest.list Alcotest.int) "to_list" [ 0; 99 ] (Bitset.to_list s)

let test_bitset_union_inter () =
  let a = Bitset.of_list 32 [ 1; 2; 3 ] in
  let b = Bitset.of_list 32 [ 3; 4 ] in
  check Alcotest.int "intersection" 1 (Bitset.inter_cardinal a b);
  Bitset.union_into ~dst:a b;
  check (Alcotest.list Alcotest.int) "union" [ 1; 2; 3; 4 ] (Bitset.to_list a)

let test_bitset_out_of_range () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 8)

let prop_bitset_matches_list_set =
  QCheck.Test.make ~name:"bitset agrees with list-set semantics" ~count:200
    QCheck.(small_list (int_bound 63))
    (fun members ->
      let s = Bitset.of_list 64 members in
      Bitset.to_list s = List.sort_uniq Int.compare members
      && Bitset.cardinal s = List.length (List.sort_uniq Int.compare members))

let prop_bitset_directional_scans =
  QCheck.Test.make ~name:"next_member/prev_member match linear scans" ~count:300
    QCheck.(pair (small_list (int_bound 99)) (int_bound 99))
    (fun (members, i) ->
      let s = Bitset.of_list 100 members in
      let next_ref =
        let rec scan j = if j > 99 then -1 else if Bitset.mem s j then j else scan (j + 1) in
        scan i
      and prev_ref =
        let rec scan j = if j < 0 then -1 else if Bitset.mem s j then j else scan (j - 1) in
        scan i
      in
      Bitset.next_member s i = next_ref && Bitset.prev_member s i = prev_ref)

(* ---------- Fenwick ---------- *)

let test_fenwick_prefix_sums () =
  let t = Fenwick.create 5 in
  List.iteri (fun i w -> Fenwick.set t i w) [ 1.; 2.; 3.; 4.; 5. ];
  check (Alcotest.float 1e-9) "prefix 0" 1. (Fenwick.prefix_sum t 0);
  check (Alcotest.float 1e-9) "prefix 2" 6. (Fenwick.prefix_sum t 2);
  check (Alcotest.float 1e-9) "total" 15. (Fenwick.total t);
  Fenwick.set t 2 0.;
  check (Alcotest.float 1e-9) "after update" 12. (Fenwick.total t)

let test_fenwick_find_by_weight () =
  let t = Fenwick.create 4 in
  List.iteri (fun i w -> Fenwick.set t i w) [ 1.; 0.; 2.; 1. ];
  check Alcotest.int "x=0.5" 0 (Fenwick.find_by_weight t 0.5);
  check Alcotest.int "x=1.5" 2 (Fenwick.find_by_weight t 1.5);
  check Alcotest.int "x=2.9" 2 (Fenwick.find_by_weight t 2.9);
  check Alcotest.int "x=3.5" 3 (Fenwick.find_by_weight t 3.5)

let prop_fenwick_sampling_hits_positive_weights =
  QCheck.Test.make ~name:"weighted find never lands on zero weight" ~count:200
    QCheck.(pair (small_list (float_bound_inclusive 5.)) (float_bound_exclusive 1.))
    (fun (weights, u) ->
      QCheck.assume (List.exists (fun w -> w > 0.) weights);
      let t = Fenwick.create (List.length weights) in
      List.iteri (fun i w -> Fenwick.set t i w) weights;
      let index = Fenwick.find_by_weight t (u *. Fenwick.total t) in
      Fenwick.get t index > 0.)

(* Linear-scan reference for [find_by_weight]'s documented contract: the
   smallest index whose prefix sum exceeds x, clamped to the last
   positive-weight index (0 when all weights are zero) once x reaches the
   total. *)
let find_by_weight_reference weights x =
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n then None
    else
      let acc = acc +. weights.(i) in
      if acc > x then Some i else scan (i + 1) acc
  in
  match scan 0 0. with
  | Some i -> i
  | None ->
      let last = ref 0 in
      Array.iteri (fun i w -> if w > 0. then last := i) weights;
      !last

let test_fenwick_boundary_clamps () =
  let t = Fenwick.create 4 in
  List.iteri (fun i w -> Fenwick.set t i w) [ 1.; 0.; 2.; 0. ];
  (* x = total: no index has prefix sum > total, so the contract clamps to
     the last positive-weight index (2, not the zero-weight tail). *)
  check Alcotest.int "x = total" 2 (Fenwick.find_by_weight t (Fenwick.total t));
  check Alcotest.int "x just above total" 2 (Fenwick.find_by_weight t (Fenwick.total t +. 0.5));
  let zeros = Fenwick.create 3 in
  check Alcotest.int "all-zero tree" 0 (Fenwick.find_by_weight zeros 0.);
  Alcotest.check_raises "negative target"
    (Invalid_argument "Fenwick.find_by_weight: negative target") (fun () ->
      ignore (Fenwick.find_by_weight t (-1.)));
  Alcotest.check_raises "empty tree"
    (Invalid_argument "Fenwick.find_by_weight: empty tree") (fun () ->
      ignore (Fenwick.find_by_weight (Fenwick.create 0) 0.))

let test_fenwick_fp_accumulation_at_boundary () =
  (* 1000 x 0.1 accumulates differently in the tree's internal nodes than
     in a flat sum; u *. total at u -> 1 historically tripped the
     "target exceeds total" guard. The clamp must return the last positive
     index for x = total and anything the sampler can produce near it. *)
  let n = 1000 in
  let t = Fenwick.create n in
  for i = 0 to n - 1 do
    Fenwick.set t i 0.1
  done;
  let total = Fenwick.total t in
  check Alcotest.int "x = total" (n - 1) (Fenwick.find_by_weight t total);
  check Alcotest.int "x = pred total" (n - 1) (Fenwick.find_by_weight t (Float.pred total));
  (* A trailing zero run must never be sampled, even at the boundary. *)
  Fenwick.set t (n - 1) 0.;
  Fenwick.set t (n - 2) 0.;
  check Alcotest.int "trailing zeros skipped" (n - 3)
    (Fenwick.find_by_weight t (Fenwick.total t))

let prop_fenwick_matches_reference =
  (* Weights are quarter-integers, so flat and tree prefix sums are both
     exact and the reference comparison cannot drift by an ulp; the
     dedicated FP test above covers inexact accumulation. u = 1 drives x
     exactly onto the total: the boundary case. *)
  QCheck.Test.make ~name:"find_by_weight matches linear-scan reference" ~count:500
    QCheck.(pair (small_list (int_bound 12)) (float_bound_inclusive 1.))
    (fun (quarters, u) ->
      QCheck.assume (quarters <> []);
      let weights = Array.of_list (List.map (fun k -> 0.25 *. float_of_int k) quarters) in
      let t = Fenwick.create (Array.length weights) in
      Array.iteri (fun i w -> Fenwick.set t i w) weights;
      let x = u *. Fenwick.total t in
      Fenwick.find_by_weight t x = find_by_weight_reference weights x)

(* ---------- Sorted ---------- *)

let test_sorted_bounds () =
  let a = [| 1; 3; 3; 5; 9 |] in
  check Alcotest.int "lower 3" 1 (Sorted.lower_bound compare a 3);
  check Alcotest.int "upper 3" 3 (Sorted.upper_bound compare a 3);
  check Alcotest.int "lower 0" 0 (Sorted.lower_bound compare a 0);
  check Alcotest.int "lower 10" 5 (Sorted.lower_bound compare a 10);
  check Alcotest.bool "mem 5" true (Sorted.mem compare a 5);
  check Alcotest.bool "mem 4" false (Sorted.mem compare a 4);
  check (Alcotest.pair Alcotest.int Alcotest.int) "range" (1, 3) (Sorted.equal_range compare a 3)

let prop_sorted_bounds_bracket =
  QCheck.Test.make ~name:"lower/upper bound bracket all equal elements" ~count:200
    QCheck.(pair (small_list (int_bound 20)) (int_bound 20))
    (fun (list, x) ->
      let a = Array.of_list (List.sort Int.compare list) in
      let lo = Sorted.lower_bound Int.compare a x and hi = Sorted.upper_bound Int.compare a x in
      lo <= hi
      && Array.for_all (fun y -> y = x) (Array.sub a lo (hi - lo))
      && (lo = 0 || a.(lo - 1) < x)
      && (hi = Array.length a || a.(hi) > x))

(* Linear references for the binary searches: first index >= / > x. *)
let lower_bound_reference a x =
  let n = Array.length a in
  let rec scan i = if i >= n || a.(i) >= x then i else scan (i + 1) in
  scan 0

let upper_bound_reference a x =
  let n = Array.length a in
  let rec scan i = if i >= n || a.(i) > x then i else scan (i + 1) in
  scan 0

let test_sorted_empty_array () =
  let a = [||] in
  check Alcotest.int "lower on empty" 0 (Sorted.lower_bound Int.compare a 5);
  check Alcotest.int "upper on empty" 0 (Sorted.upper_bound Int.compare a 5);
  check Alcotest.bool "mem on empty" false (Sorted.mem Int.compare a 5);
  check (Alcotest.pair Alcotest.int Alcotest.int) "range on empty" (0, 0)
    (Sorted.equal_range Int.compare a 5)

let test_sorted_all_equal () =
  let a = Array.make 7 4 in
  check Alcotest.int "lower below" 0 (Sorted.lower_bound Int.compare a 3);
  check Alcotest.int "upper below" 0 (Sorted.upper_bound Int.compare a 3);
  check Alcotest.int "lower at" 0 (Sorted.lower_bound Int.compare a 4);
  check Alcotest.int "upper at" 7 (Sorted.upper_bound Int.compare a 4);
  check Alcotest.int "lower above" 7 (Sorted.lower_bound Int.compare a 5);
  check (Alcotest.pair Alcotest.int Alcotest.int) "full range" (0, 7)
    (Sorted.equal_range Int.compare a 4)

let prop_sorted_matches_reference_on_duplicate_runs =
  (* Values drawn from a tiny alphabet force long duplicate runs; probes
     include absent values on both flanks of every run. *)
  QCheck.Test.make ~name:"bounds match linear reference on duplicate-run arrays" ~count:500
    QCheck.(pair (list_of_size Gen.(0 -- 40) (int_bound 5)) (int_range (-1) 6))
    (fun (list, x) ->
      let a = Array.of_list (List.sort Int.compare list) in
      Sorted.lower_bound Int.compare a x = lower_bound_reference a x
      && Sorted.upper_bound Int.compare a x = upper_bound_reference a x
      && Sorted.mem Int.compare a x = Array.exists (fun y -> y = x) a
      && Sorted.equal_range Int.compare a x
         = (lower_bound_reference a x, upper_bound_reference a x))

(* ---------- Ring_buffer ---------- *)

let test_ring_buffer_eviction () =
  let r = Ring_buffer.create 3 in
  check (Alcotest.option Alcotest.int) "push 1" None (Ring_buffer.push r 1);
  check (Alcotest.option Alcotest.int) "push 2" None (Ring_buffer.push r 2);
  check (Alcotest.option Alcotest.int) "push 3" None (Ring_buffer.push r 3);
  check Alcotest.bool "full" true (Ring_buffer.is_full r);
  check (Alcotest.option Alcotest.int) "evicts oldest" (Some 1) (Ring_buffer.push r 4);
  check (Alcotest.list Alcotest.int) "window" [ 2; 3; 4 ] (Ring_buffer.to_list r);
  check Alcotest.int "count even" 2 (Ring_buffer.count (fun x -> x mod 2 = 0) r)

let test_ring_buffer_clear () =
  let r = Ring_buffer.create 2 in
  ignore (Ring_buffer.push r 1);
  Ring_buffer.clear r;
  check Alcotest.int "cleared" 0 (Ring_buffer.length r)

let prop_ring_buffer_keeps_newest =
  QCheck.Test.make ~name:"ring buffer holds the w newest elements" ~count:200
    QCheck.(pair (int_range 1 10) (small_list int))
    (fun (capacity, pushes) ->
      let r = Ring_buffer.create capacity in
      List.iter (fun x -> ignore (Ring_buffer.push r x)) pushes;
      let n = List.length pushes in
      let expected = List.filteri (fun i _ -> i >= n - capacity) pushes in
      Ring_buffer.to_list r = expected)

(* List-model conformance: replay a random Push/Clear script against both
   the ring buffer and a plain list of the newest [capacity] elements,
   comparing contents, length, fullness and the evicted element after every
   step. Scripts long enough to wrap the buffer several times exercise the
   start-index arithmetic across wraparound. *)
let prop_ring_buffer_matches_list_model =
  let op_gen = QCheck.Gen.(frequency [ (9, map (fun x -> `Push x) small_int); (1, pure `Clear) ]) in
  QCheck.Test.make ~name:"ring buffer matches list model under push/clear scripts" ~count:300
    QCheck.(pair (int_range 1 5) (make ~print:(fun ops -> string_of_int (List.length ops))
                                    Gen.(list_size (0 -- 60) op_gen)))
    (fun (capacity, ops) ->
      let r = Ring_buffer.create capacity in
      let model = ref [] (* oldest first, length <= capacity *) in
      List.for_all
        (fun op ->
          (match op with
          | `Push x ->
              let evicted = Ring_buffer.push r x in
              let expected_evicted =
                if List.length !model >= capacity then (
                  match !model with
                  | oldest :: rest ->
                      model := rest;
                      Some oldest
                  | [] -> None)
                else None
              in
              model := !model @ [ x ];
              evicted = expected_evicted
          | `Clear ->
              Ring_buffer.clear r;
              model := [];
              true)
          && Ring_buffer.to_list r = !model
          && Ring_buffer.length r = List.length !model
          && Ring_buffer.is_full r = (List.length !model = capacity)
          && Ring_buffer.count (fun x -> x mod 2 = 0) r
             = List.length (List.filter (fun x -> x mod 2 = 0) !model))
        ops)

(* ---------- Hashing ---------- *)

let test_fnv_known_values () =
  (* FNV-1a 64-bit reference values. *)
  check Alcotest.int64 "empty" 0xCBF29CE484222325L (Hashing.fnv1a "");
  check Alcotest.int64 "'a'" 0xAF63DC4C8601EC8CL (Hashing.fnv1a "a")

let test_fnv_int_distinct () =
  let h1 = Hashing.fnv1a_int Hashing.offset 1L in
  let h2 = Hashing.fnv1a_int Hashing.offset 2L in
  check Alcotest.bool "distinct" true (not (Int64.equal h1 h2));
  check Alcotest.bool "positive int" true (Hashing.to_positive_int h1 >= 0)

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int rejects non-positive" `Quick test_prng_int_rejects_nonpositive;
        Alcotest.test_case "uniform range" `Quick test_prng_uniform_range;
        Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
        Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        Alcotest.test_case "sample full population" `Quick test_sample_full_population;
        qtest prop_shuffle_is_permutation;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "basic operations" `Quick test_heap_basic;
        Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
        Alcotest.test_case "capacity shrinks" `Quick test_heap_capacity_shrinks;
        qtest prop_heap_sorts;
        qtest prop_heap_filter_in_place;
      ] );
    ( "util.bitset",
      [
        Alcotest.test_case "basic operations" `Quick test_bitset_basic;
        Alcotest.test_case "union and intersection" `Quick test_bitset_union_inter;
        Alcotest.test_case "bounds checking" `Quick test_bitset_out_of_range;
        qtest prop_bitset_matches_list_set;
        qtest prop_bitset_directional_scans;
      ] );
    ( "util.fenwick",
      [
        Alcotest.test_case "prefix sums" `Quick test_fenwick_prefix_sums;
        Alcotest.test_case "find by weight" `Quick test_fenwick_find_by_weight;
        Alcotest.test_case "boundary clamps" `Quick test_fenwick_boundary_clamps;
        Alcotest.test_case "fp accumulation at boundary" `Quick
          test_fenwick_fp_accumulation_at_boundary;
        qtest prop_fenwick_sampling_hits_positive_weights;
        qtest prop_fenwick_matches_reference;
      ] );
    ( "util.sorted",
      [
        Alcotest.test_case "bounds" `Quick test_sorted_bounds;
        Alcotest.test_case "empty array" `Quick test_sorted_empty_array;
        Alcotest.test_case "all-equal array" `Quick test_sorted_all_equal;
        qtest prop_sorted_bounds_bracket;
        qtest prop_sorted_matches_reference_on_duplicate_runs;
      ] );
    ( "util.ring_buffer",
      [
        Alcotest.test_case "eviction" `Quick test_ring_buffer_eviction;
        Alcotest.test_case "clear" `Quick test_ring_buffer_clear;
        qtest prop_ring_buffer_keeps_newest;
        qtest prop_ring_buffer_matches_list_model;
      ] );
    ( "util.hashing",
      [
        Alcotest.test_case "fnv known values" `Quick test_fnv_known_values;
        Alcotest.test_case "fnv int folding" `Quick test_fnv_int_distinct;
      ] );
  ]
