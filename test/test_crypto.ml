module Sha256 = Concilium_crypto.Sha256
module Hmac = Concilium_crypto.Hmac
module Pki = Concilium_crypto.Pki
module Signed = Concilium_crypto.Signed
module Nonce = Concilium_crypto.Nonce

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- SHA-256: FIPS 180-4 / NIST test vectors ---------- *)

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ]
  in
  List.iter
    (fun (input, expected) -> check Alcotest.string input expected (Sha256.hex_digest input))
    cases

let test_sha256_million_a () =
  check Alcotest.string "million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_digest (String.make 1_000_000 'a'))

let test_sha256_length_boundaries () =
  (* Exercise every padding branch: message lengths around the 55/56/64
     byte boundaries all hash without error and distinctly. *)
  let digests =
    List.map (fun n -> Sha256.hex_digest (String.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65 ]
  in
  check Alcotest.int "all distinct" (List.length digests)
    (List.length (List.sort_uniq String.compare digests))

let test_digest_list_unambiguous () =
  check Alcotest.bool "field boundaries matter" false
    (String.equal (Sha256.digest_list [ "ab"; "c" ]) (Sha256.digest_list [ "a"; "bc" ]))

(* ---------- HMAC-SHA256: RFC 4231 vectors ---------- *)

let test_hmac_rfc4231 () =
  let case1 = Hmac.sha256_hex ~key:(String.make 20 '\x0b') "Hi There" in
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" case1;
  let case2 = Hmac.sha256_hex ~key:"Jefe" "what do ya want for nothing?" in
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" case2;
  let case6 =
    Hmac.sha256_hex ~key:(String.make 131 '\xaa')
      "Test Using Larger Than Block-Size Key - Hash Key First"
  in
  check Alcotest.string "case 6 (key > block)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" case6

(* ---------- PKI ---------- *)

let test_pki_sign_verify () =
  let pki = Pki.create ~seed:99L in
  let cert, secret = Pki.issue pki ~address:"10.0.0.1" ~node_id:"abc" in
  let signature = Pki.sign secret "hello" in
  check Alcotest.bool "verifies" true (Pki.verify pki cert.Pki.subject_key "hello" signature);
  check Alcotest.bool "wrong message" false
    (Pki.verify pki cert.Pki.subject_key "hellp" signature);
  let other_cert, _ = Pki.issue pki ~address:"10.0.0.2" ~node_id:"def" in
  check Alcotest.bool "wrong key" false
    (Pki.verify pki other_cert.Pki.subject_key "hello" signature)

let test_pki_unknown_key () =
  let pki = Pki.create ~seed:99L in
  let _, secret = Pki.issue pki ~address:"10.0.0.1" ~node_id:"abc" in
  let signature = Pki.sign secret "hello" in
  check Alcotest.bool "unknown key rejected" false
    (Pki.verify pki (Pki.public_key_of_string "deadbeef") "hello" signature)

let test_pki_certificates () =
  let pki = Pki.create ~seed:5L in
  let cert, _ = Pki.issue pki ~address:"10.1.2.3" ~node_id:"node-7" in
  check Alcotest.bool "certificate verifies" true (Pki.verify_certificate pki cert);
  let tampered = { cert with Pki.subject_address = "10.9.9.9" } in
  check Alcotest.bool "tampered rejected" false (Pki.verify_certificate pki tampered)

(* ---------- Signed envelopes ---------- *)

let serialize s = s

let test_signed_roundtrip () =
  let pki = Pki.create ~seed:5L in
  let cert, secret = Pki.issue pki ~address:"a" ~node_id:"n" in
  let envelope = Signed.make ~serialize ~signer:cert.Pki.subject_key ~secret "payload" in
  check Alcotest.bool "checks" true (Signed.check ~serialize pki envelope);
  check Alcotest.string "payload" "payload" (Signed.payload envelope)

let test_signed_forgery_rejected () =
  let pki = Pki.create ~seed:5L in
  let cert, _ = Pki.issue pki ~address:"a" ~node_id:"n" in
  let forged =
    Signed.forge ~signer:cert.Pki.subject_key
      ~fake_signature:(Pki.signature_of_string "0000") "payload"
  in
  check Alcotest.bool "forged rejected" false (Signed.check ~serialize pki forged)

let prop_signed_any_payload =
  QCheck.Test.make ~name:"signed envelopes verify for arbitrary payloads" ~count:100
    QCheck.(string_of_size Gen.small_nat)
    (fun payload ->
      let pki = Pki.create ~seed:17L in
      let cert, secret = Pki.issue pki ~address:"a" ~node_id:"n" in
      let envelope = Signed.make ~serialize ~signer:cert.Pki.subject_key ~secret payload in
      Signed.check ~serialize pki envelope)

(* ---------- Nonces ---------- *)

let test_nonce_uniqueness () =
  let generate = Nonce.generator ~seed:4L in
  let nonces = List.init 1000 (fun _ -> Nonce.to_string (generate ())) in
  check Alcotest.int "all distinct" 1000 (List.length (List.sort_uniq String.compare nonces))

let suites =
  [
    ( "crypto.sha256",
      [
        Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "million a" `Slow test_sha256_million_a;
        Alcotest.test_case "padding boundaries" `Quick test_sha256_length_boundaries;
        Alcotest.test_case "digest_list unambiguous" `Quick test_digest_list_unambiguous;
      ] );
    ("crypto.hmac", [ Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231 ]);
    ( "crypto.pki",
      [
        Alcotest.test_case "sign/verify" `Quick test_pki_sign_verify;
        Alcotest.test_case "unknown key" `Quick test_pki_unknown_key;
        Alcotest.test_case "certificates" `Quick test_pki_certificates;
      ] );
    ( "crypto.signed",
      [
        Alcotest.test_case "roundtrip" `Quick test_signed_roundtrip;
        Alcotest.test_case "forgery rejected" `Quick test_signed_forgery_rejected;
        qtest prop_signed_any_payload;
      ] );
    ("crypto.nonce", [ Alcotest.test_case "uniqueness" `Quick test_nonce_uniqueness ]);
  ]
