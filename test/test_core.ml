module Blame = Concilium_core.Blame
module Verdict_window = Concilium_core.Verdict_window
module Accusation_model = Concilium_core.Accusation_model
module Commitment = Concilium_core.Commitment
module Accusation = Concilium_core.Accusation
module Dht = Concilium_core.Dht
module Stewardship = Concilium_core.Stewardship
module Bandwidth = Concilium_core.Bandwidth
module Validation = Concilium_core.Validation
module Sanction = Concilium_core.Sanction
module World = Concilium_core.World
module Observation = Concilium_tomography.Observation
module Snapshot = Concilium_tomography.Snapshot
module Id = Concilium_overlay.Id
module Leaf_set = Concilium_overlay.Leaf_set
module Pastry = Concilium_overlay.Pastry
module Freshness = Concilium_overlay.Freshness
module Pki = Concilium_crypto.Pki
module Signed = Concilium_crypto.Signed
module Prng = Concilium_util.Prng

let check = Alcotest.check
let checkf tolerance = Alcotest.check (Alcotest.float tolerance)
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Blame ---------- *)

let test_blame_paper_worked_example () =
  (* Section 3.4: Q and R probe a link down, S probes it up, a = 0.8:
     confidence the link was bad = (0.8 + 0.8 + 0.2)/3 = 0.6. *)
  checkf 1e-9 "worked example" 0.6
    (Blame.link_bad_confidence ~accuracy:0.8 ~up_votes:1 ~down_votes:2)

let test_blame_no_votes () =
  checkf 1e-9 "no votes -> no network evidence" 0.
    (Blame.link_bad_confidence ~accuracy:0.9 ~up_votes:0 ~down_votes:0)

let blame_config = Blame.paper_config

let store_with observations =
  let store = Observation.create () in
  List.iter
    (fun (time, prober, link, up) ->
      Observation.record store { Observation.time; prober; link; up })
    observations;
  store

let test_blame_excludes_judged_node () =
  (* Only the suspect (prober 7) claims the link was down; its vote must be
     ignored, leaving an all-up view and full blame. *)
  let store = store_with [ (100., 7, 1, false); (100., 3, 1, true); (101., 4, 1, true) ] in
  let blame =
    Blame.blame blame_config ~observations:store ~links:[| 1 |] ~drop_time:100.
      ~exclude_prober:7 ()
  in
  checkf 1e-9 "self-exculpation ignored" 0.9 blame

let test_blame_window_filtering () =
  let store = store_with [ (10., 1, 2, false); (500., 2, 2, false) ] in
  (* At drop time 500 only the second observation is in [440, 560]. *)
  let blame =
    Blame.blame blame_config ~observations:store ~links:[| 2 |] ~drop_time:500.
      ~exclude_prober:(-1) ()
  in
  checkf 1e-9 "one down vote" (1. -. 0.9) blame

let test_blame_fuzzy_or_takes_worst_link () =
  let store =
    store_with [ (100., 1, 0, true); (100., 2, 1, false); (100., 3, 2, true) ]
  in
  let confidence =
    Blame.path_bad_confidence blame_config ~observations:store ~links:[| 0; 1; 2 |]
      ~drop_time:100. ~exclude_prober:(-1) ()
  in
  checkf 1e-9 "max over links" 0.9 confidence

let test_blame_visibility_filter () =
  let store = store_with [ (100., 5, 1, false) ] in
  let blame =
    Blame.blame blame_config ~observations:store ~links:[| 1 |] ~drop_time:100.
      ~exclude_prober:(-1) ~visible:(fun prober -> prober <> 5) ()
  in
  checkf 1e-9 "invisible prober ignored" 1. blame

let test_verdict_threshold () =
  check Alcotest.bool "guilty" true
    (Blame.verdict_of_blame blame_config 0.41 = Blame.Guilty);
  check Alcotest.bool "innocent" true
    (Blame.verdict_of_blame blame_config 0.39 = Blame.Innocent)

let prop_blame_in_unit_interval =
  QCheck.Test.make ~name:"blame always lies in [0,1]" ~count:200
    QCheck.(small_list (triple (int_bound 5) (int_bound 3) bool))
    (fun raw ->
      let store =
        store_with (List.map (fun (prober, link, up) -> (100., prober, link, up)) raw)
      in
      let blame =
        Blame.blame blame_config ~observations:store ~links:[| 0; 1; 2; 3 |] ~drop_time:100.
          ~exclude_prober:0 ()
      in
      blame >= 0. && blame <= 1.)

(* ---------- Verdict window ---------- *)

let entry verdict blame =
  { Verdict_window.verdict; blame; drop_time = 0.; evidence = () }

let test_verdict_window_counting () =
  let w = Verdict_window.create ~window_size:3 in
  Verdict_window.record w (entry Blame.Guilty 0.9);
  Verdict_window.record w (entry Blame.Innocent 0.1);
  Verdict_window.record w (entry Blame.Guilty 0.8);
  check Alcotest.int "guilty count" 2 (Verdict_window.guilty_count w);
  check Alcotest.bool "accuse at m=2" true (Verdict_window.should_accuse w ~m:2);
  check Alcotest.bool "not at m=3" false (Verdict_window.should_accuse w ~m:3);
  (* Sliding: a fourth verdict evicts the first guilty one. *)
  Verdict_window.record w (entry Blame.Innocent 0.2);
  check Alcotest.int "slid" 1 (Verdict_window.guilty_count w);
  check Alcotest.int "length capped" 3 (Verdict_window.length w)

let test_verdict_window_expire_exact_edge () =
  (* Off-by-one regression at the window horizon: expire's contract is
     inclusive-keep, so an entry with drop_time exactly equal to [before]
     must survive while anything strictly older goes. *)
  let w = Verdict_window.create ~window_size:4 in
  let at drop_time verdict = { Verdict_window.verdict; blame = 0.5; drop_time; evidence = () } in
  Verdict_window.record w (at 10. Blame.Guilty);
  Verdict_window.record w (at 20. Blame.Guilty);
  Verdict_window.record w (at 30. Blame.Innocent);
  Verdict_window.expire w ~before:20.;
  check Alcotest.int "entry at the horizon survives" 2 (Verdict_window.length w);
  check (Alcotest.list (Alcotest.float 0.))
    "survivors keep order" [ 20.; 30. ]
    (List.map (fun e -> e.Verdict_window.drop_time) (Verdict_window.entries w));
  check Alcotest.int "guilty count tracks the boundary" 1 (Verdict_window.guilty_count w);
  (* The next representable instant past the horizon expires it. *)
  Verdict_window.expire w ~before:(Float.succ 20.);
  check (Alcotest.list (Alcotest.float 0.))
    "strictly-older entry expired" [ 30. ]
    (List.map (fun e -> e.Verdict_window.drop_time) (Verdict_window.entries w));
  (* Expiring with an older horizon is a no-op, including across eviction
     wraparound. *)
  Verdict_window.record w (at 40. Blame.Guilty);
  Verdict_window.record w (at 50. Blame.Guilty);
  Verdict_window.record w (at 60. Blame.Guilty);
  Verdict_window.record w (at 70. Blame.Guilty);
  Verdict_window.expire w ~before:0.;
  check Alcotest.int "no-op expire after wraparound" 4 (Verdict_window.length w)

(* Reference model for the window: a plain list of (verdict, drop_time),
   oldest first, truncated to the last [window_size] on push and filtered on
   expire. The real structure must agree after any operation sequence. *)
let prop_verdict_window_matches_list_model =
  QCheck.Test.make ~name:"window matches naive list model under push/expire" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (small_list (triple bool bool (int_bound 50))))
    (fun (window_size, ops) ->
      let w = Verdict_window.create ~window_size in
      let model = ref [] in
      List.iter
        (fun (is_push, guilty, t) ->
          let time = float_of_int t in
          if is_push then begin
            let verdict = if guilty then Blame.Guilty else Blame.Innocent in
            Verdict_window.record w
              { Verdict_window.verdict; blame = 0.5; drop_time = time; evidence = () };
            model := !model @ [ (verdict, time) ];
            let excess = List.length !model - window_size in
            if excess > 0 then model := List.filteri (fun i _ -> i >= excess) !model
          end
          else begin
            Verdict_window.expire w ~before:time;
            model := List.filter (fun (_, drop_time) -> drop_time >= time) !model
          end)
        ops;
      let actual =
        List.map
          (fun e -> (e.Verdict_window.verdict, e.Verdict_window.drop_time))
          (Verdict_window.entries w)
      in
      let model_guilty =
        List.length (List.filter (fun (v, _) -> v = Blame.Guilty) !model)
      in
      actual = !model
      && Verdict_window.length w = List.length !model
      && Verdict_window.guilty_count w = model_guilty
      && List.for_all
           (fun m -> Verdict_window.should_accuse w ~m = (model_guilty >= m))
           [ 1; 2; 3 ])

(* ---------- Accusation model ---------- *)

let test_accusation_model_paper_values () =
  (* Paper Section 4.3: honest probing (p_good=0.018, p_faulty=0.938), w=100
     -> m=6 drives both error rates below 1%. With 20% collusion
     (0.084/0.713) -> m=16. *)
  check (Alcotest.option Alcotest.int) "honest m" (Some 6)
    (Accusation_model.smallest_m_below ~w:100 ~p_good:0.018 ~p_faulty:0.938 ~target:0.01);
  check (Alcotest.option Alcotest.int) "collusion m" (Some 16)
    (Accusation_model.smallest_m_below ~w:100 ~p_good:0.084 ~p_faulty:0.713 ~target:0.01)

let test_accusation_model_monotonicity () =
  let fp m = Accusation_model.false_positive ~w:50 ~m ~p_good:0.1 in
  let fn m = Accusation_model.false_negative ~w:50 ~m ~p_faulty:0.7 in
  check Alcotest.bool "fp decreasing in m" true (fp 5 >= fp 10 && fp 10 >= fp 20);
  check Alcotest.bool "fn increasing in m" true (fn 5 <= fn 10 && fn 10 <= fn 20)

let prop_accusation_model_complementary =
  QCheck.Test.make ~name:"Pr(W>=m) + Pr(W<m) = 1" ~count:100
    QCheck.(triple (int_range 1 60) (int_range 1 60) (float_bound_inclusive 1.))
    (fun (w, m, p) ->
      QCheck.assume (m <= w);
      let total =
        Accusation_model.false_positive ~w ~m ~p_good:p
        +. Accusation_model.false_negative ~w ~m ~p_faulty:p
      in
      abs_float (total -. 1.) < 1e-9)

(* ---------- Commitment & Accusation ---------- *)

type principal = { id : Id.t; key : Pki.public_key; secret : Pki.secret_key }

let principal pki seed name =
  let id = Id.random (Prng.of_seed seed) in
  let cert, secret = Pki.issue pki ~address:name ~node_id:(Id.to_hex id) in
  { id; key = cert.Pki.subject_key; secret }

let accusation_fixture () =
  let pki = Pki.create ~seed:90L in
  let alice = principal pki 91L "alice" in
  let bob = principal pki 92L "bob" in
  let carol = principal pki 93L "carol" in
  let zed = principal pki 94L "zed" in
  let commitment =
    Commitment.issue ~forwarder:bob.id ~secret:bob.secret ~public:bob.key ~sender:alice.id
      ~destination:zed.id ~message_id:"m1" ~now:99.
  in
  (* Two probers vouch the path links were up: the network is clean, so the
     blame for the drop lands on Bob. *)
  let vote link prober =
    Accusation.make_vote ~prober:prober.id ~secret:prober.secret ~public:prober.key ~link
      ~time:100. ~up:true
  in
  let evidence =
    {
      Accusation.path_links = [| 4; 9 |];
      link_votes =
        [
          { Accusation.link = 4; votes = [ vote 4 carol; vote 4 zed ] };
          { Accusation.link = 9; votes = [ vote 9 carol ] };
        ];
      drop_time = 100.;
      commitment;
    }
  in
  (pki, alice, bob, evidence)

let test_commitment_verify_and_covers () =
  let pki, alice, bob, evidence = accusation_fixture () in
  let commitment = evidence.Accusation.commitment in
  check Alcotest.bool "verifies" true (Commitment.verify pki commitment);
  check Alcotest.bool "covers" true
    (Commitment.covers commitment ~forwarder:bob.id ~sender:alice.id
       ~destination:(Signed.payload commitment).Commitment.destination ~message_id:"m1");
  check Alcotest.bool "wrong message id" false
    (Commitment.covers commitment ~forwarder:bob.id ~sender:alice.id
       ~destination:(Signed.payload commitment).Commitment.destination ~message_id:"m2")

let test_accusation_roundtrip () =
  let pki, alice, bob, evidence = accusation_fixture () in
  let accusation =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key ~accused:bob.id
      ~config:Blame.paper_config ~evidence ~supporting:[] ~now:101.
  in
  (* All votes say "up": blame = 1 - (1 - a) = 0.9. *)
  checkf 1e-9 "blame" 0.9 (Signed.payload accusation).Accusation.blame;
  check Alcotest.bool "third-party verification" true
    (Accusation.verify pki accusation = Ok ())

let test_accusation_rejects_tampered_blame () =
  let pki, alice, bob, evidence = accusation_fixture () in
  let accusation =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key ~accused:bob.id
      ~config:Blame.paper_config ~evidence ~supporting:[] ~now:101.
  in
  let body = Signed.payload accusation in
  (* Inflate the claimed blame but forge the signature: caught at step 1. *)
  let forged =
    Signed.forge ~signer:(Signed.signer accusation)
      ~fake_signature:(Pki.signature_of_string "xx")
      { body with Accusation.blame = 1.0 }
  in
  check Alcotest.bool "bad signature" true
    (Accusation.verify pki forged = Error Accusation.Bad_signature)

let test_accusation_requires_matching_commitment () =
  let pki, alice, bob, evidence = accusation_fixture () in
  ignore bob;
  let mallory = principal pki 95L "mallory" in
  (* Mallory reuses Bob's commitment to accuse... herself as the accuser is
     fine, but naming a different accused must fail the commitment check. *)
  let accusation =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key
      ~accused:mallory.id ~config:Blame.paper_config ~evidence ~supporting:[] ~now:101.
  in
  check Alcotest.bool "commitment mismatch" true
    (Accusation.verify pki accusation = Error Accusation.Commitment_mismatch)

let test_accusation_rejects_unsupported_evidence () =
  let _, alice, bob, evidence = accusation_fixture () in
  (* Erase the votes: blame over no evidence is 1.0 -- wait, no votes means
     no network evidence, i.e. full blame. Instead flip the votes to all
     "down": blame 0.1 < threshold, so making the accusation must fail. *)
  let flipped =
    {
      evidence with
      Accusation.link_votes =
        List.map
          (fun le ->
            {
              le with
              Accusation.votes =
                List.map (fun v -> { v with Accusation.up = false }) le.Accusation.votes;
            })
          evidence.Accusation.link_votes;
    }
  in
  Alcotest.check_raises "below threshold"
    (Invalid_argument "Accusation.make: evidence does not support a guilty verdict") (fun () ->
      ignore
        (Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key
           ~accused:bob.id ~config:Blame.paper_config ~evidence:flipped ~supporting:[] ~now:101.))

let test_accusation_rejects_tampered_votes () =
  let pki, alice, bob, evidence = accusation_fixture () in
  let accusation =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key ~accused:bob.id
      ~config:Blame.paper_config ~evidence ~supporting:[] ~now:101.
  in
  let body = Signed.payload accusation in
  (* Flip a vote inside otherwise-valid evidence and re-sign the accusation
     honestly: the vote's own signature no longer matches. *)
  let tampered_evidence =
    {
      body.Accusation.evidence with
      Accusation.link_votes =
        List.map
          (fun le ->
            {
              le with
              Accusation.votes =
                List.map (fun v -> { v with Accusation.up = false }) le.Accusation.votes;
            })
          body.Accusation.evidence.Accusation.link_votes;
    }
  in
  let reissued =
    Signed.make ~serialize:Accusation.serialize_body ~signer:alice.key ~secret:alice.secret
      { body with Accusation.evidence = tampered_evidence; blame = 0.9 }
  in
  check Alcotest.bool "vote signatures catch tampering" true
    (Accusation.verify pki reissued = Error Accusation.Bad_vote_signature)

(* ---------- DHT ---------- *)

let dht_fixture () =
  let rng = Prng.of_seed 96L in
  let ids = Array.init 64 (fun _ -> Id.random rng) in
  let pastry = Pastry.build ~leaf_half_size:4 ids in
  Dht.create ~pastry ~replication:3

let test_dht_put_get () =
  let dht = dht_fixture () in
  let pki, alice, bob, evidence = accusation_fixture () in
  ignore pki;
  let accusation =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key ~accused:bob.id
      ~config:Blame.paper_config ~evidence ~supporting:[] ~now:101.
  in
  let accused_key = Pki.public_key_of_string "bobs-public-key" in
  let hops = ref 0 in
  let put_report = Dht.put dht ~from:0 ~accused_key accusation ~hops in
  check Alcotest.int "replicated" 3 (Dht.total_records dht);
  check Alcotest.int "report counts replicas" 3 put_report.Dht.replicas_written;
  check Alcotest.bool "no failover with everyone alive" false put_report.Dht.put_failed_over;
  (* Idempotent: same record again. *)
  let (_ : Dht.put_report) = Dht.put dht ~from:5 ~accused_key accusation ~hops in
  check Alcotest.int "idempotent" 3 (Dht.total_records dht);
  let fetched = Dht.get dht ~from:9 ~accused_key ~hops () in
  check Alcotest.int "fetched" 1 (List.length fetched.Dht.accusations);
  check Alcotest.bool "read saw no failover" false fetched.Dht.get_failed_over;
  check Alcotest.bool "hops consumed" true (!hops >= 0);
  let other = Dht.get dht ~from:9 ~accused_key:(Pki.public_key_of_string "nobody") ~hops () in
  check Alcotest.int "other key empty" 0 (List.length other.Dht.accusations)

let test_dht_replicas_distinct () =
  let dht = dht_fixture () in
  let key = Id.random (Prng.of_seed 97L) in
  let replicas = Dht.replica_nodes dht ~key in
  check Alcotest.int "replication factor" 3 (List.length replicas);
  check Alcotest.int "distinct" 3 (List.length (List.sort_uniq Int.compare replicas))

(* ---------- Stewardship ---------- *)

let judgment ?(valid = true) ?(pushed = true) judge target =
  { Stewardship.judge; target; blame = 0.9; evidence_valid = valid; pushed }

let resolve judgments first =
  let table = Hashtbl.create 8 in
  List.iter (fun j -> Hashtbl.replace table j.Stewardship.judge j) judgments;
  Stewardship.resolve ~first_judge:first ~judgment_of:(Hashtbl.find_opt table)

let test_stewardship_full_revision_chain () =
  (* A(0) blames B(1), B blames C(2), C blames D(3); D has nothing to push:
     D is the culprit, B and C exonerated. *)
  let r =
    resolve
      [
        judgment 0 (Stewardship.Next_hop 1);
        judgment 1 (Stewardship.Next_hop 2);
        judgment 2 (Stewardship.Next_hop 3);
      ]
      0
  in
  check Alcotest.bool "final is D" true (r.Stewardship.final = Some (Stewardship.Next_hop 3));
  check (Alcotest.list Alcotest.int) "exonerated" [ 1; 2 ] r.Stewardship.exonerated

let test_stewardship_withheld_verdict_self_incriminates () =
  (* C refuses to push its verdict: blame stops at C. *)
  let r =
    resolve
      [
        judgment 0 (Stewardship.Next_hop 1);
        judgment 1 (Stewardship.Next_hop 2);
        judgment ~pushed:false 2 (Stewardship.Next_hop 3);
      ]
      0
  in
  check Alcotest.bool "final is C" true (r.Stewardship.final = Some (Stewardship.Next_hop 2))

let test_stewardship_invalid_evidence_rejected () =
  let r =
    resolve
      [
        judgment 0 (Stewardship.Next_hop 1);
        judgment ~valid:false 1 (Stewardship.Next_hop 2);
      ]
      0
  in
  check Alcotest.bool "unverifiable revision ignored" true
    (r.Stewardship.final = Some (Stewardship.Next_hop 1))

let test_stewardship_network_verdict_terminates () =
  let r =
    resolve
      [ judgment 0 (Stewardship.Next_hop 1); judgment 1 Stewardship.Network ]
      0
  in
  check Alcotest.bool "network blamed" true (r.Stewardship.final = Some Stewardship.Network);
  check (Alcotest.list Alcotest.int) "B exonerated" [ 1 ] r.Stewardship.exonerated

let test_stewardship_no_judgment () =
  let r = resolve [] 0 in
  check Alcotest.bool "nothing to diagnose" true (r.Stewardship.final = None)

let test_stewardship_cycle_guard () =
  let r =
    resolve
      [ judgment 0 (Stewardship.Next_hop 1); judgment 1 (Stewardship.Next_hop 0) ]
      0
  in
  (* 1 pushes blame back to 0, which is already visited: stop at 0 rather
     than loop. *)
  check Alcotest.bool "terminates" true (r.Stewardship.final <> None)

let test_chain_of_route () =
  let judgments = ref [] in
  let judge ~judge:j ~suspect:s =
    judgments := (j, s) :: !judgments;
    Some (judgment j (Stewardship.Next_hop s))
  in
  let chain =
    Stewardship.chain_of_route ~hops:[ 0; 1; 2; 3 ] ~faulty:(fun v -> v = 2) ~judge
  in
  (* Hops 0 and 1 saw the message (2 dropped it); hop 2 judges nobody
     downstream because nothing left it. *)
  check Alcotest.int "two judgments" 2 (List.length chain);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "judge pairs"
    [ (0, 1); (1, 2) ] (List.rev !judgments)

(* ---------- Bandwidth ---------- *)

let test_bandwidth_paper_numbers () =
  let p = Bandwidth.paper_params in
  let entries = Bandwidth.expected_routing_entries p in
  check Alcotest.bool (Printf.sprintf "entries %.1f ~ 77" entries) true
    (entries > 74. && entries < 80.);
  let state_kib = Bandwidth.advertised_state_bytes p /. 1024. in
  check Alcotest.bool (Printf.sprintf "state %.2f KiB ~ 11.5" state_kib) true
    (state_kib > 10. && state_kib < 12.5);
  let probe_mib = Bandwidth.heavyweight_probe_bytes p /. (1024. *. 1024.) in
  check Alcotest.bool (Printf.sprintf "probing %.2f MiB ~ 16.7" probe_mib) true
    (probe_mib > 15.5 && probe_mib < 18.5);
  checkf 1e-9 "lightweight free" 0. (Bandwidth.lightweight_extra_bytes p)

(* ---------- Validation ---------- *)

let validation_fixture () =
  let rng = Prng.of_seed 98L in
  let pki = Pki.create ~seed:99L in
  let sorted = Array.init 256 (fun _ -> Id.random rng) in
  Array.sort Id.compare sorted;
  let local_leaf = Leaf_set.build ~owner:sorted.(0) ~sorted_ids:sorted ~half_size:8 in
  let peer_id = sorted.(100) in
  let peer_cert, peer_secret = Pki.issue pki ~address:"peer" ~node_id:(Id.to_hex peer_id) in
  let peer_leaf = Leaf_set.build ~owner:peer_id ~sorted_ids:sorted ~half_size:8 in
  let target_id = sorted.(101) in
  let target_cert, target_secret =
    Pki.issue pki ~address:"target" ~node_id:(Id.to_hex target_id)
  in
  let stamp =
    Freshness.issue ~holder:target_id ~secret:target_secret
      ~public:target_cert.Pki.subject_key ~now:95.
  in
  let summary =
    { Snapshot.peer = target_id; loss_level = 0; freshness = stamp }
  in
  let snapshot =
    Snapshot.make ~origin:peer_id ~secret:peer_secret ~public:peer_cert.Pki.subject_key
      ~now:100. ~summaries:[ summary ]
  in
  let local = { Validation.own_jump_occupancy = 40; own_leaf_set = local_leaf } in
  let advertisement =
    { Validation.snapshot; jump_table_occupancy = 38; leaf_set = peer_leaf }
  in
  (pki, local, advertisement)

let test_validation_accepts_honest () =
  let pki, local, advertisement = validation_fixture () in
  check Alcotest.int "no failures" 0
    (List.length (Validation.check pki ~now:100. Validation.default_config ~local advertisement))

let test_validation_flags_sparse_table () =
  let pki, local, advertisement = validation_fixture () in
  let sparse = { advertisement with Validation.jump_table_occupancy = 10 } in
  let failures = Validation.check pki ~now:100. Validation.default_config ~local sparse in
  check Alcotest.bool "sparse table flagged" true
    (List.exists
       (function Validation.Sparse_jump_table _ -> true | _ -> false)
       failures)

let test_validation_flags_stale_stamp () =
  let pki, local, advertisement = validation_fixture () in
  let failures =
    Validation.check pki ~now:5_000. Validation.default_config ~local advertisement
  in
  check Alcotest.bool "stale stamp flagged" true
    (List.exists
       (function Validation.Stale_or_invalid_stamp _ -> true | _ -> false)
       failures)

(* ---------- Sanction ---------- *)

let test_sanction_policies () =
  let clean = { Sanction.verified_accusations = 0; observation_hours = 10. } in
  let dirty = { Sanction.verified_accusations = 25; observation_hours = 10. } in
  check Alcotest.bool "clean untouched" true
    (Sanction.evaluate Sanction.Distrust_sensitive clean = Sanction.No_action);
  check Alcotest.bool "distrust" true
    (Sanction.evaluate Sanction.Distrust_sensitive dirty = Sanction.Distrust);
  check Alcotest.bool "blacklist above rate" true
    (Sanction.evaluate (Sanction.Universal_blacklist { accusations_per_hour = 2. }) dirty
    = Sanction.Blacklist);
  check Alcotest.bool "below rate" true
    (Sanction.evaluate (Sanction.Universal_blacklist { accusations_per_hour = 3. }) dirty
    = Sanction.No_action);
  check Alcotest.bool "leaf-set eviction forbidden" false
    (Sanction.allows_leaf_set_eviction Sanction.Distrust_sensitive)

(* ---------- World ---------- *)

let world_fixture = lazy (World.build (World.tiny_config ~seed:123L))

let test_world_invariants () =
  let world = Lazy.force world_fixture in
  let n = World.node_count world in
  check Alcotest.bool "nontrivial" true (n >= 10);
  for v = 0 to n - 1 do
    (* Every peer path starts at v's router and ends at the peer's router. *)
    Array.iteri
      (fun i path ->
        match path with
        | None -> ()
        | Some path ->
            let peer = world.World.peers.(v).(i) in
            let nodes = path.World.Routes.nodes in
            check Alcotest.int "starts at host" world.World.host_router.(v) nodes.(0);
            check Alcotest.int "ends at peer" world.World.host_router.(peer)
              nodes.(Array.length nodes - 1))
      world.World.peer_paths.(v)
  done

let test_world_tree_roots () =
  let world = Lazy.force world_fixture in
  for v = 0 to World.node_count world - 1 do
    check Alcotest.int "tree rooted at host" world.World.host_router.(v)
      (World.Tree.root world.World.trees.(v))
  done

let test_world_vouchers_are_tree_members () =
  let world = Lazy.force world_fixture in
  let some_link = (World.Tree.physical_links world.World.trees.(0)).(0) in
  let vouchers = World.vouchers world ~link:some_link in
  check Alcotest.bool "node 0 vouches for its own tree" true (List.mem 0 vouchers);
  List.iter
    (fun v ->
      check Alcotest.bool "voucher's tree covers the link" true
        (Array.exists (( = ) some_link) (World.Tree.physical_links world.World.trees.(v))))
    vouchers

let test_world_certificates_valid () =
  let world = Lazy.force world_fixture in
  Array.iter
    (fun certificate ->
      check Alcotest.bool "CA-signed" true
        (Pki.verify_certificate world.World.pki certificate))
    world.World.certificates

let test_world_forest_includes_own_tree () =
  let world = Lazy.force world_fixture in
  let forest = World.forest_links world 0 in
  Array.iter
    (fun link -> check Alcotest.bool "own tree in forest" true (Array.exists (( = ) link) forest))
    (World.Tree.physical_links world.World.trees.(0))


(* ---------- Ack batching (Section 3.7) ---------- *)

module Ack_batch = Concilium_core.Ack_batch

let test_ack_batch_counter () =
  let batch = Ack_batch.create () in
  List.iter (fun id -> Ack_batch.record_received batch ~message_id:id) [ "a"; "b"; "b" ];
  check Alcotest.int "dedup" 2 (Ack_batch.received_count batch);
  let summary = Ack_batch.flush batch ~encoding:`Counter in
  check Alcotest.int "counter bytes" (128 + 4) (Ack_batch.wire_bytes summary);
  (* All sent arrived: the counter can certify it. *)
  check
    (Alcotest.option (Alcotest.list Alcotest.string))
    "counter matches" (Some []) (Ack_batch.missing ~sent:[ "a"; "b" ] summary);
  (* A counter mismatch proves loss but cannot name the victim. *)
  check
    (Alcotest.option (Alcotest.list Alcotest.string))
    "counter cannot localise" None
    (Ack_batch.missing ~sent:[ "a"; "b"; "c" ] summary);
  check Alcotest.int "flushed" 0 (Ack_batch.received_count batch)

let test_ack_batch_hashes () =
  let batch = Ack_batch.create () in
  List.iter (fun id -> Ack_batch.record_received batch ~message_id:id) [ "a"; "c" ];
  let summary = Ack_batch.flush batch ~encoding:`Hashes in
  check
    (Alcotest.option (Alcotest.list Alcotest.string))
    "hashes localise the loss" (Some [ "b" ])
    (Ack_batch.missing ~sent:[ "a"; "b"; "c" ] summary);
  check Alcotest.int "hash bytes" (128 + 64) (Ack_batch.wire_bytes summary)


(* ---------- Rebuttal (Section 3.5) ---------- *)

module Rebuttal = Concilium_core.Rebuttal

let rebuttal_fixture () =
  (* A accuses B; B holds an archived onward verdict against C for the same
     drop. *)
  let pki = Pki.create ~seed:150L in
  let alice = principal pki 151L "alice" in
  let bob = principal pki 152L "bob" in
  let carol = principal pki 153L "carol" in
  let dave = principal pki 154L "dave" in
  let zed = principal pki 155L "zed" in
  let vote link prober =
    Accusation.make_vote ~prober:prober.id ~secret:prober.secret ~public:prober.key ~link
      ~time:100. ~up:true
  in
  let commitment_for forwarder sender =
    Commitment.issue ~forwarder:forwarder.id ~secret:forwarder.secret ~public:forwarder.key
      ~sender:sender.id ~destination:zed.id ~message_id:"m9" ~now:99.
  in
  let evidence ~links ~commitment =
    {
      Accusation.path_links = links;
      link_votes =
        Array.to_list links
        |> List.map (fun link -> { Accusation.link; votes = [ vote link dave; vote link zed ] });
      drop_time = 100.;
      commitment;
    }
  in
  let accusation_against_bob =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key ~accused:bob.id
      ~config:Blame.paper_config
      ~evidence:(evidence ~links:[| 1; 2 |] ~commitment:(commitment_for bob alice))
      ~supporting:[] ~now:101.
  in
  let bobs_onward_verdict =
    Accusation.make ~accuser:bob.id ~secret:bob.secret ~public:bob.key ~accused:carol.id
      ~config:Blame.paper_config
      ~evidence:(evidence ~links:[| 3; 4 |] ~commitment:(commitment_for carol bob))
      ~supporting:[] ~now:101.
  in
  (pki, carol, accusation_against_bob, bobs_onward_verdict)

let test_rebuttal_shifts_blame () =
  let pki, carol, accusation, onward = rebuttal_fixture () in
  let archive = Rebuttal.create_archive () in
  Rebuttal.record archive onward;
  check Alcotest.int "archived" 1 (Rebuttal.archive_size archive);
  let rebuttal = Rebuttal.defend archive ~against:accusation in
  check Alcotest.bool "defense found" true (rebuttal <> None);
  (match Rebuttal.adjudicate pki ~accusation ~rebuttal with
  | Rebuttal.Blame_shifted culprit ->
      check Alcotest.string "shifted to C" (Id.to_hex carol.id) (Id.to_hex culprit)
  | Rebuttal.Accusation_stands -> Alcotest.fail "rebuttal ignored"
  | Rebuttal.Accusation_invalid _ -> Alcotest.fail "accusation should verify")

let test_rebuttal_absent_accusation_stands () =
  let pki, _, accusation, _ = rebuttal_fixture () in
  check Alcotest.bool "stands" true
    (Rebuttal.adjudicate pki ~accusation ~rebuttal:None = Rebuttal.Accusation_stands)

let test_rebuttal_from_wrong_node_rejected () =
  let pki, _, accusation, _ = rebuttal_fixture () in
  (* A rebuttal must be authored by the accused; reusing the accusation
     itself (authored by Alice) must not shift blame. *)
  check Alcotest.bool "foreign rebuttal rejected" true
    (Rebuttal.adjudicate pki ~accusation ~rebuttal:(Some accusation)
    = Rebuttal.Accusation_stands)

let test_rebuttal_stale_drop_time_rejected () =
  let pki, _, accusation, onward = rebuttal_fixture () in
  ignore pki;
  let archive = Rebuttal.create_archive () in
  Rebuttal.record archive onward;
  (* An accusation whose drop happened an hour later finds no covering
     onward verdict in the archive. *)
  let later_body = Signed.payload accusation in
  let later_evidence =
    { later_body.Accusation.evidence with Accusation.drop_time = 3700. }
  in
  let later =
    Signed.forge
      ~signer:(Signed.signer accusation)
      ~fake_signature:(Pki.signature_of_string "n/a")
      { later_body with Accusation.evidence = later_evidence }
  in
  check Alcotest.bool "no covering verdict" true (Rebuttal.defend archive ~against:later = None)


let test_accusation_supporting_evidence () =
  let pki, alice, bob, evidence = accusation_fixture () in
  (* A second drop's archived evidence travels with the accusation. *)
  let accusation =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key ~accused:bob.id
      ~config:Blame.paper_config ~evidence
      ~supporting:[ { evidence with Accusation.drop_time = 220. } ]
      ~now:230.
  in
  check Alcotest.bool "verifies with supporting evidence" true
    (Accusation.verify pki accusation = Ok ());
  (* Supporting evidence that does not clear the threshold is rejected. *)
  let weak =
    {
      evidence with
      Accusation.link_votes =
        List.map
          (fun le ->
            {
              le with
              Accusation.votes =
                List.map (fun v -> { v with Accusation.up = false }) le.Accusation.votes;
            })
          evidence.Accusation.link_votes;
    }
  in
  let body = Signed.payload accusation in
  let reissued =
    Signed.make ~serialize:Accusation.serialize_body ~signer:alice.key ~secret:alice.secret
      { body with Accusation.supporting = [ weak ] }
  in
  check Alcotest.bool "weak supporting evidence rejected" true
    (Accusation.verify pki reissued = Error Accusation.Weak_supporting_evidence)

let suites =
  [
    ( "core.blame",
      [
        Alcotest.test_case "paper worked example (0.6)" `Quick test_blame_paper_worked_example;
        Alcotest.test_case "no votes" `Quick test_blame_no_votes;
        Alcotest.test_case "judged node excluded" `Quick test_blame_excludes_judged_node;
        Alcotest.test_case "time window" `Quick test_blame_window_filtering;
        Alcotest.test_case "fuzzy OR over links" `Quick test_blame_fuzzy_or_takes_worst_link;
        Alcotest.test_case "visibility filter" `Quick test_blame_visibility_filter;
        Alcotest.test_case "verdict threshold" `Quick test_verdict_threshold;
        qtest prop_blame_in_unit_interval;
      ] );
    ( "core.verdict_window",
      [
        Alcotest.test_case "sliding window counting" `Quick test_verdict_window_counting;
        Alcotest.test_case "expire at the exact window edge" `Quick
          test_verdict_window_expire_exact_edge;
        qtest prop_verdict_window_matches_list_model;
      ] );
    ( "core.accusation_model",
      [
        Alcotest.test_case "paper's m=6 and m=16" `Quick test_accusation_model_paper_values;
        Alcotest.test_case "monotonicity" `Quick test_accusation_model_monotonicity;
        qtest prop_accusation_model_complementary;
      ] );
    ( "core.accusation",
      [
        Alcotest.test_case "commitment verify/covers" `Quick test_commitment_verify_and_covers;
        Alcotest.test_case "make and verify" `Quick test_accusation_roundtrip;
        Alcotest.test_case "tampered blame rejected" `Quick test_accusation_rejects_tampered_blame;
        Alcotest.test_case "commitment must name accused" `Quick
          test_accusation_requires_matching_commitment;
        Alcotest.test_case "unsupported evidence unmakeable" `Quick
          test_accusation_rejects_unsupported_evidence;
        Alcotest.test_case "tampered votes rejected" `Quick test_accusation_rejects_tampered_votes;
        Alcotest.test_case "supporting evidence verified" `Quick
          test_accusation_supporting_evidence;
      ] );
    ( "core.dht",
      [
        Alcotest.test_case "put/get with replication" `Quick test_dht_put_get;
        Alcotest.test_case "distinct replicas" `Quick test_dht_replicas_distinct;
      ] );
    ( "core.stewardship",
      [
        Alcotest.test_case "full revision chain" `Quick test_stewardship_full_revision_chain;
        Alcotest.test_case "withheld verdict self-incriminates" `Quick
          test_stewardship_withheld_verdict_self_incriminates;
        Alcotest.test_case "invalid evidence rejected" `Quick
          test_stewardship_invalid_evidence_rejected;
        Alcotest.test_case "network verdict terminates" `Quick
          test_stewardship_network_verdict_terminates;
        Alcotest.test_case "no judgment" `Quick test_stewardship_no_judgment;
        Alcotest.test_case "cycle guard" `Quick test_stewardship_cycle_guard;
        Alcotest.test_case "chain_of_route" `Quick test_chain_of_route;
      ] );
    ( "core.bandwidth",
      [ Alcotest.test_case "Section 4.4 numbers" `Quick test_bandwidth_paper_numbers ] );
    ( "core.validation",
      [
        Alcotest.test_case "accepts honest advertisement" `Quick test_validation_accepts_honest;
        Alcotest.test_case "flags sparse jump table" `Quick test_validation_flags_sparse_table;
        Alcotest.test_case "flags stale stamps" `Quick test_validation_flags_stale_stamp;
      ] );
    ("core.sanction", [ Alcotest.test_case "policies" `Quick test_sanction_policies ]);
    ( "core.rebuttal",
      [
        Alcotest.test_case "verified rebuttal shifts blame" `Quick test_rebuttal_shifts_blame;
        Alcotest.test_case "no rebuttal: accusation stands" `Quick
          test_rebuttal_absent_accusation_stands;
        Alcotest.test_case "foreign rebuttal rejected" `Quick
          test_rebuttal_from_wrong_node_rejected;
        Alcotest.test_case "stale verdicts do not cover" `Quick
          test_rebuttal_stale_drop_time_rejected;
      ] );
    ( "core.ack_batch",
      [
        Alcotest.test_case "counter encoding" `Quick test_ack_batch_counter;
        Alcotest.test_case "hash encoding" `Quick test_ack_batch_hashes;
      ] );
    ( "core.world",
      [
        Alcotest.test_case "route invariants" `Quick test_world_invariants;
        Alcotest.test_case "tree roots" `Quick test_world_tree_roots;
        Alcotest.test_case "voucher index" `Quick test_world_vouchers_are_tree_members;
        Alcotest.test_case "certificates" `Quick test_world_certificates_valid;
        Alcotest.test_case "forest contains own tree" `Quick test_world_forest_includes_own_tree;
      ] );
  ]
