(* Observability layer: trace well-formedness, deterministic shard merging,
   export formats, and the instrumented protocol's accounting. *)

module Trace = Concilium_obs.Trace
module Metrics = Concilium_obs.Metrics
module Collector = Concilium_obs.Collector
module Export = Concilium_obs.Export
module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Dht = Concilium_core.Dht
module Blame = Concilium_core.Blame
module Commitment = Concilium_core.Commitment
module Accusation = Concilium_core.Accusation
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Graph = Concilium_topology.Graph
module Id = Concilium_overlay.Id
module Pastry = Concilium_overlay.Pastry
module Pki = Concilium_crypto.Pki
module Prng = Concilium_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Trace sink ---------- *)

let test_span_nesting_validates () =
  let t = Trace.create () in
  let episode = Trace.span_open t ~time:1. ~cat:"episode" "episode" in
  Trace.instant t ~time:1. ~span:episode "episode.detect";
  let burst = Trace.span_open t ~time:2. ~parent:episode "probe.heavy_burst" in
  Trace.span_close t ~time:3. burst;
  Trace.span_close t ~time:4. episode;
  (match Trace.validate t with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason);
  check Alcotest.int "records" 5 (Trace.length t);
  match Trace.completed_spans t with
  | [ ("probe.heavy_burst", 2., 1.); ("episode", 1., 3.) ] -> ()
  | spans -> Alcotest.failf "unexpected spans (%d)" (List.length spans)

let test_validate_rejects_malformed () =
  let unclosed = Trace.create () in
  let (_ : Trace.span) = Trace.span_open unclosed ~time:0. "dangling" in
  check Alcotest.bool "unclosed span rejected" true
    (Result.is_error (Trace.validate unclosed));
  let inverted = Trace.create () in
  let parent = Trace.span_open inverted ~time:0. "parent" in
  let child = Trace.span_open inverted ~time:1. ~parent "child" in
  Trace.span_close inverted ~time:2. parent;
  Trace.span_close inverted ~time:3. child;
  check Alcotest.bool "parent closed over open child rejected" true
    (Result.is_error (Trace.validate inverted))

let test_noop_sinks_record_nothing () =
  check Alcotest.bool "trace noop disabled" false (Trace.enabled Trace.noop);
  let span = Trace.span_open Trace.noop ~time:0. "ignored" in
  Trace.span_close Trace.noop ~time:1. span;
  Trace.instant Trace.noop ~time:0. "ignored";
  check Alcotest.int "trace noop empty" 0 (Trace.length Trace.noop);
  Metrics.incr Metrics.noop "c";
  Metrics.observe Metrics.noop "h" 3.;
  check Alcotest.int "metrics noop counter" 0 (Metrics.counter Metrics.noop "c");
  check Alcotest.bool "collector noop disabled" false (Collector.enabled Collector.noop)

let test_trace_merge_concatenates_in_shard_order () =
  let shards = Collector.shards 3 in
  Array.iteri
    (fun i shard ->
      let span =
        Trace.span_open shard.Collector.trace ~time:(float_of_int i) "shard.work"
      in
      Trace.span_close shard.Collector.trace ~time:(float_of_int i +. 0.5) span)
    shards;
  let merged = Collector.merge shards in
  (match Trace.validate merged.Collector.trace with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason);
  check Alcotest.int "record counts add" 6 (Trace.length merged.Collector.trace);
  let again = Collector.merge shards in
  check Alcotest.string "merge is reproducible"
    (Trace.jsonl merged.Collector.trace)
    (Trace.jsonl again.Collector.trace)

(* ---------- Export formats ---------- *)

let sample_trace () =
  let t = Trace.create () in
  let span = Trace.span_open t ~time:1. ~cat:"episode" ~args:[ ("n", Trace.Int 2) ] "episode" in
  Trace.instant t ~time:1.5 ~cat:"probe" "probe.round";
  Trace.span_close t ~time:2. ~args:[ ("ok", Trace.Bool true) ] span;
  t

let test_jsonl_and_chrome_shapes () =
  let t = sample_trace () in
  let lines = String.split_on_char '\n' (Trace.jsonl t) |> List.filter (fun l -> l <> "") in
  check Alcotest.int "one line per record" (Trace.length t) (List.length lines);
  List.iter
    (fun line ->
      check Alcotest.bool "line is a json object" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}'))
    lines;
  let chrome = Trace.chrome t in
  check Alcotest.bool "chrome document shape" true
    (String.length chrome > 15 && String.sub chrome 0 15 = {|{"traceEvents":|})

let test_export_helpers () =
  (match Export.format_of_path "out/trace.json" with
  | Export.Chrome -> ()
  | Export.Jsonl -> Alcotest.fail ".json must select chrome format");
  (match Export.format_of_path "out/trace.jsonl" with
  | Export.Jsonl -> ()
  | Export.Chrome -> Alcotest.fail "non-.json must select jsonl");
  check Alcotest.bool "empty spec means no filter" true
    (Export.filter_of_spec None = None && Export.filter_of_spec (Some "") = None);
  match Export.filter_of_spec (Some "episode,probe") with
  | None -> Alcotest.fail "spec must build a filter"
  | Some keep ->
      check Alcotest.bool "keeps listed categories" true (keep "episode" && keep "probe");
      check Alcotest.bool "drops others" false (keep "dht");
      let t = sample_trace () in
      let filtered = Trace.jsonl ~filter:(fun cat -> cat = "probe") t in
      let lines =
        String.split_on_char '\n' filtered |> List.filter (fun l -> l <> "")
      in
      check Alcotest.int "filter keeps only probe records" 1 (List.length lines)

(* ---------- Metrics: merging shards equals one collector ---------- *)

(* An operation is (kind, name index, magnitude); the name pool is disjoint
   per kind so no generated sequence can rebind a name to another kind. *)
let apply_op metrics (kind, name, value) =
  match kind mod 3 with
  | 0 -> Metrics.incr metrics ~by:((value mod 7) + 1) ("c" ^ string_of_int (name mod 3))
  | 1 -> Metrics.set metrics ("g" ^ string_of_int (name mod 3)) (float_of_int value)
  | _ -> Metrics.observe metrics ("h" ^ string_of_int (name mod 3)) (float_of_int value)

let merge_equals_single_collector =
  QCheck.Test.make ~name:"merging shard collectors in order equals one collector"
    ~count:200
    QCheck.(small_list (small_list (triple (int_bound 2) (int_bound 2) (int_bound 4096))))
    (fun per_shard_ops ->
      let shard_count = List.length per_shard_ops in
      let shards = Collector.shards shard_count in
      List.iteri
        (fun i ops -> List.iter (apply_op shards.(i).Collector.metrics) ops)
        per_shard_ops;
      let single = Collector.create () in
      List.iter
        (fun ops -> List.iter (apply_op single.Collector.metrics) ops)
        per_shard_ops;
      let merged = Collector.merge shards in
      Metrics.snapshot_json merged.Collector.metrics
      = Metrics.snapshot_json single.Collector.metrics)

let test_metrics_snapshot_shape () =
  let m = Metrics.create () in
  Metrics.incr m "b.counter";
  Metrics.incr m ~by:4 "a.counter";
  Metrics.set m "gauge" 2.5;
  List.iter (Metrics.observe m "latency") [ 1.; 2.; 4.; 4. ];
  check Alcotest.int "counter reads back" 4 (Metrics.counter m "a.counter");
  check Alcotest.int "unbound counter is zero" 0 (Metrics.counter m "absent");
  (match Metrics.counters m with
  | [ ("a.counter", 4); ("b.counter", 1) ] -> ()
  | counters -> Alcotest.failf "unexpected counters (%d)" (List.length counters));
  let snapshot = Metrics.snapshot_json ~time:10. m in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "snapshot mentions %s" needle) true
        (let re = Str.regexp_string needle in
         match Str.search_forward re snapshot 0 with
         | exception Not_found -> false
         | _ -> true))
    [ {|"time": 10|}; {|"counters"|}; {|"gauges"|}; {|"histograms"|}; {|"2^0"|}; {|"2^2"|} ]

(* ---------- DHT failover reporting ---------- *)

type principal = { id : Id.t; key : Pki.public_key; secret : Pki.secret_key }

let principal pki seed name =
  let id = Id.random (Prng.of_seed seed) in
  let cert, secret = Pki.issue pki ~address:name ~node_id:(Id.to_hex id) in
  { id; key = cert.Pki.subject_key; secret }

let test_dht_dead_root_reports_failover () =
  let rng = Prng.of_seed 96L in
  let ids = Array.init 64 (fun _ -> Id.random rng) in
  let pastry = Pastry.build ~leaf_half_size:4 ids in
  let dht = Dht.create ~pastry ~replication:3 in
  let pki = Pki.create ~seed:90L in
  let alice = principal pki 91L "alice" in
  let bob = principal pki 92L "bob" in
  let carol = principal pki 93L "carol" in
  let commitment =
    Commitment.issue ~forwarder:bob.id ~secret:bob.secret ~public:bob.key ~sender:alice.id
      ~destination:carol.id ~message_id:"m1" ~now:99.
  in
  let evidence =
    {
      Accusation.path_links = [| 4 |];
      link_votes =
        [
          {
            Accusation.link = 4;
            votes =
              [
                Accusation.make_vote ~prober:carol.id ~secret:carol.secret ~public:carol.key
                  ~link:4 ~time:100. ~up:true;
              ];
          };
        ];
      drop_time = 100.;
      commitment;
    }
  in
  let accusation =
    Accusation.make ~accuser:alice.id ~secret:alice.secret ~public:alice.key ~accused:bob.id
      ~config:Blame.paper_config ~evidence ~supporting:[] ~now:101.
  in
  let accused_key = Pki.public_key_of_string "bobs-public-key" in
  let key = Dht.key_of_public_key accused_key in
  let root =
    match Dht.replica_nodes dht ~key with
    | root :: _ -> root
    | [] -> Alcotest.fail "no replicas for key"
  in
  let alive v = v <> root in
  let hops = ref 0 in
  let put = Dht.put dht ~from:0 ~alive ~accused_key accusation ~hops in
  check Alcotest.bool "put failed over past the dead root" true put.Dht.put_failed_over;
  check Alcotest.int "still three live replicas" 3 put.Dht.replicas_written;
  let read = Dht.get dht ~from:9 ~alive ~accused_key ~hops () in
  check Alcotest.bool "get failed over too" true read.Dht.get_failed_over;
  check Alcotest.int "record survives the failover" 1 (List.length read.Dht.accusations);
  check Alcotest.int "live replicas answered" 3 read.Dht.replicas_read

(* ---------- Instrumented protocol runs ---------- *)

let world_fixture = lazy (World.build (World.tiny_config ~seed:321L))

let make_session ?(behavior = fun _ -> Protocol.Honest) ?(seed = 5L) () =
  let world = Lazy.force world_fixture in
  let engine = Engine.create () in
  let graph = world.World.generated.World.Generate.graph in
  let link_state =
    Link_state.create ~link_count:(Graph.link_count graph) ~good_loss:0. ~bad_loss:1.
  in
  let obs = Collector.create () in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.of_seed seed) ~obs
      Protocol.default_config ~behavior
  in
  (world, engine, protocol, obs)

let route_with_intermediate world =
  let n = World.node_count world in
  let rng = Prng.of_seed 17L in
  let rec search attempts =
    if attempts = 0 then Alcotest.fail "no multi-hop route found"
    else begin
      let from = Prng.int rng n in
      let dest = Id.random rng in
      let route = World.overlay_route world ~from ~dest in
      if List.length route >= 3 then (from, dest, route) else search (attempts - 1)
    end
  in
  search 5000

(* One dropped message diagnosed end to end, with the collector watching. *)
let dropper_run ?(seed = 5L) () =
  let world = Lazy.force world_fixture in
  let from, dest, route = route_with_intermediate world in
  let culprit = match route with _ :: hop :: _ -> hop | _ -> Alcotest.fail "short route" in
  let behavior v = if v = culprit then Protocol.Message_dropper 1.0 else Protocol.Honest in
  let _, engine, protocol, obs = make_session ~behavior ~seed () in
  Protocol.start_probing protocol ~horizon:600.;
  Engine.run_until engine 600.;
  Protocol.send_message protocol ~from ~dest ~payload:"x" ~on_outcome:(fun _ -> ());
  Engine.run_until engine 1200.;
  (protocol, obs)

let span_names trace =
  List.sort_uniq String.compare
    (List.map (fun (name, _, _) -> name) (Trace.completed_spans trace))

let test_protocol_run_traces_complete_episode () =
  let _, obs = dropper_run () in
  let trace = obs.Collector.trace in
  (match Trace.validate trace with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason);
  let names = span_names trace in
  List.iter
    (fun name ->
      check Alcotest.bool (Printf.sprintf "span %s present" name) true
        (List.mem name names))
    [ "message"; "episode"; "probe.round"; "probe.heavy_burst"; "minc.solve";
      "blame.evaluate"; "stewardship.resolve" ];
  check Alcotest.bool "detect instant recorded" true
    (Trace.instants trace ~name:"episode.detect" <> []);
  check Alcotest.bool "verdict instant recorded" true
    (Trace.instants trace ~name:"episode.verdict" <> []);
  let metrics = obs.Collector.metrics in
  check Alcotest.int "one message sent" 1 (Metrics.counter metrics "msg.sent");
  check Alcotest.int "message accounted dropped" 1 (Metrics.counter metrics "msg.dropped");
  check Alcotest.bool "episode counted" true (Metrics.counter metrics "episode.started" >= 1)

let test_protocol_bytes_reconcile_with_bandwidth_totals () =
  let protocol, obs = dropper_run () in
  let metrics = obs.Collector.metrics in
  let metered =
    List.fold_left
      (fun acc name -> acc + Metrics.counter metrics name)
      0
      [ "bytes.probe_stripe"; "bytes.advert_diff"; "bytes.snapshot_exchange";
        "bytes.heavy_probe" ]
  in
  let world = Protocol.world protocol in
  let charged = ref 0 in
  for v = 0 to World.node_count world - 1 do
    charged := !charged + Protocol.control_bytes_sent protocol v
  done;
  check Alcotest.bool "some control bytes were charged" true (metered > 0);
  check Alcotest.int "byte counters reconcile with Bandwidth totals" !charged metered

let seeded_runs_stay_well_formed =
  QCheck.Test.make ~name:"instrumented runs stay well-formed across seeds" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let _, obs = dropper_run ~seed:(Int64.of_int seed) () in
      let metrics = obs.Collector.metrics in
      Result.is_ok (Trace.validate obs.Collector.trace)
      && Metrics.counter metrics "msg.sent"
         = Metrics.counter metrics "msg.delivered" + Metrics.counter metrics "msg.dropped")

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "span nesting validates" `Quick test_span_nesting_validates;
        Alcotest.test_case "malformed traces rejected" `Quick test_validate_rejects_malformed;
        Alcotest.test_case "noop sinks record nothing" `Quick test_noop_sinks_record_nothing;
        Alcotest.test_case "shard merge order" `Quick test_trace_merge_concatenates_in_shard_order;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "jsonl and chrome shapes" `Quick test_jsonl_and_chrome_shapes;
        Alcotest.test_case "path formats and filters" `Quick test_export_helpers;
      ] );
    ( "obs.metrics",
      [
        qtest merge_equals_single_collector;
        Alcotest.test_case "snapshot shape" `Quick test_metrics_snapshot_shape;
      ] );
    ( "obs.dht",
      [
        Alcotest.test_case "dead root reports failover" `Quick
          test_dht_dead_root_reports_failover;
      ] );
    ( "obs.protocol",
      [
        Alcotest.test_case "complete episode traced" `Quick
          test_protocol_run_traces_complete_episode;
        Alcotest.test_case "byte counters reconcile" `Quick
          test_protocol_bytes_reconcile_with_bandwidth_totals;
        qtest seeded_runs_stay_well_formed;
      ] );
  ]
