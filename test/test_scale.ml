module Scale_world = Concilium_scale.Scale_world
module Ring = Concilium_overlay.Ring
module Inc_table = Concilium_overlay.Inc_table
module Pool = Concilium_util.Pool

let check = Alcotest.check

let build ?(nodes = 400) ?(seed = 42L) protocol =
  Scale_world.build (Scale_world.config ~protocol ~nodes ~seed ())

(* Everything in a scale world is deterministic in (config, seed), and the
   episode fan-out must be bit-identical for every domain count: the CI
   scale-smoke job diffs --domains 1 vs 2 transcripts byte-for-byte. *)
let transcript protocol ~domains =
  let buf = Buffer.create 1024 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let with_pool f =
    if domains = 1 then f None
    else begin
      let pool = Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f (Some pool))
    end
  in
  with_pool (fun pool ->
      (* The pooled path must cover the sweep-build too, not just the
         episode fan-out: both feed the diffed transcript checksums. *)
      let world =
        Scale_world.build ?pool (Scale_world.config ~protocol ~nodes:400 ~seed:42L ())
      in
      line (Scale_world.header_line world);
      for episode = 1 to 3 do
        let stepped = ref 0 in
        while !stepped < 40 && Scale_world.step_event world do
          incr stepped
        done;
        line (Scale_world.state_line world);
        let result = Scale_world.run_episode ?pool world ~episode ~routes:50 in
        line (Scale_world.episode_line ~episode result)
      done;
      line (Scale_world.maintenance_line world));
  Buffer.contents buf

let test_transcript_domain_invariant () =
  List.iter
    (fun protocol ->
      let d1 = transcript protocol ~domains:1 in
      let d2 = transcript protocol ~domains:2 in
      check Alcotest.string
        (Scale_world.protocol_name protocol ^ " transcript is domain-invariant")
        d1 d2;
      (* And re-running with the same seed reproduces it exactly. *)
      check Alcotest.string "rerun reproduces" d1 (transcript protocol ~domains:1))
    [ Scale_world.Pastry; Scale_world.Chord ]

let test_routes_deliver_under_churn () =
  let world = build Scale_world.Pastry in
  let applied = Scale_world.advance_to world 1800. in
  check Alcotest.bool "churn happened" true (applied > 0);
  let result = Scale_world.run_episode world ~episode:1 ~routes:100 in
  check Alcotest.int "every route reaches the key's root" 100
    result.Scale_world.delivered;
  (* The maintained tables still agree with from-scratch recomputation. *)
  (match Scale_world.table world with
  | Some table ->
      let ring = Scale_world.ring world in
      for owner = 0 to Ring.size ring - 1 do
        check Alcotest.int "no stale slots" 0 (Inc_table.rebuild_owner table owner)
      done
  | None -> Alcotest.fail "pastry world has a table");
  let chord_world = build Scale_world.Chord in
  ignore (Scale_world.advance_to chord_world 1800.);
  let chord_result = Scale_world.run_episode chord_world ~episode:1 ~routes:100 in
  check Alcotest.int "chord routes reach the owner" 100 chord_result.Scale_world.delivered

let test_event_accounting () =
  let world = build ~nodes:300 Scale_world.Pastry in
  let total = Scale_world.events_total world in
  let stepped = ref 0 in
  while Scale_world.step_event world do
    incr stepped
  done;
  check Alcotest.int "every event consumed" total !stepped;
  check Alcotest.int "applied + skipped = consumed" total
    (Scale_world.events_applied world + Scale_world.events_skipped world);
  check Alcotest.int "none pending" 0 (Scale_world.events_pending world);
  check Alcotest.bool "clock advanced" true (Scale_world.clock world > 0.)

let test_config_validation () =
  Alcotest.check_raises "one node rejected"
    (Invalid_argument "Scale_world.config: need at least two nodes") (fun () ->
      ignore (Scale_world.config ~protocol:Scale_world.Pastry ~nodes:1 ~seed:1L ()))

let suites =
  [
    ( "scale.world",
      [
        Alcotest.test_case "transcripts domain-invariant and reproducible" `Quick
          test_transcript_domain_invariant;
        Alcotest.test_case "delivery and table consistency under churn" `Quick
          test_routes_deliver_under_churn;
        Alcotest.test_case "event accounting" `Quick test_event_accounting;
        Alcotest.test_case "config validation" `Quick test_config_validation;
      ] );
  ]
