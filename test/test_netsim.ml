module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Link_history = Concilium_netsim.Link_history
module Failures = Concilium_netsim.Failures
module Net = Concilium_netsim.Net
module Graph = Concilium_topology.Graph
module Generate = Concilium_topology.Generate
module Routes = Concilium_topology.Routes
module Prng = Concilium_util.Prng

let check = Alcotest.check

(* ---------- Engine ---------- *)

let test_engine_time_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule_at engine ~time:3. (fun _ -> log := 3 :: !log);
  Engine.schedule_at engine ~time:1. (fun _ -> log := 1 :: !log);
  Engine.schedule_at engine ~time:2. (fun _ -> log := 2 :: !log);
  Engine.run engine;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3. (Engine.now engine)

let test_engine_fifo_same_time () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule_at engine ~time:1. (fun _ -> log := i :: !log)
  done;
  Engine.run engine;
  check (Alcotest.list Alcotest.int) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_run_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  Engine.schedule_at engine ~time:1. (fun _ -> incr fired);
  Engine.schedule_at engine ~time:5. (fun _ -> incr fired);
  Engine.run_until engine 2.;
  check Alcotest.int "only early event" 1 !fired;
  check (Alcotest.float 1e-9) "clock at horizon" 2. (Engine.now engine);
  check Alcotest.int "late event queued" 1 (Engine.pending engine);
  Engine.run_until engine 10.;
  check Alcotest.int "late event fired" 2 !fired

let test_engine_nested_scheduling () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule_at engine ~time:1. (fun engine ->
      log := "outer" :: !log;
      Engine.schedule engine ~delay:0.5 (fun _ -> log := "inner" :: !log));
  Engine.run engine;
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_engine_rejects_past () =
  let engine = Engine.create ~start:10. () in
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time is in the past")
    (fun () -> Engine.schedule_at engine ~time:5. (fun _ -> ()))

let test_engine_rejects_nan_and_negative () =
  let engine = Engine.create () in
  Alcotest.check_raises "NaN time" (Invalid_argument "Engine.schedule_at: NaN time") (fun () ->
      Engine.schedule_at engine ~time:Float.nan (fun _ -> ()));
  Alcotest.check_raises "NaN delay" (Invalid_argument "Engine.schedule: NaN delay") (fun () ->
      Engine.schedule engine ~delay:Float.nan (fun _ -> ()));
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule engine ~delay:(-1.) (fun _ -> ()));
  (* A rejected event must not corrupt the heap for later valid ones. *)
  let fired = ref 0 in
  Engine.schedule engine ~delay:1. (fun _ -> incr fired);
  Engine.run engine;
  check Alcotest.int "heap intact after rejections" 1 !fired

(* ---------- Link_state ---------- *)

let test_link_state_transitions () =
  let s = Link_state.create ~link_count:4 ~good_loss:0.01 ~bad_loss:0.9 in
  check Alcotest.int "initially good" 0 (Link_state.bad_count s);
  Link_state.set_bad s 2;
  Link_state.set_bad s 2;
  check Alcotest.int "idempotent set_bad" 1 (Link_state.bad_count s);
  check (Alcotest.float 1e-9) "bad loss" 0.9 (Link_state.loss_rate s 2);
  check (Alcotest.float 1e-9) "good loss" 0.01 (Link_state.loss_rate s 0);
  check Alcotest.bool "path check" false (Link_state.path_is_good s [| 0; 2 |]);
  Link_state.set_good s 2;
  check Alcotest.int "repaired" 0 (Link_state.bad_count s);
  check Alcotest.bool "path good" true (Link_state.path_is_good s [| 0; 2 |])

(* ---------- Link_history ---------- *)

let test_history_queries () =
  let h = Link_history.create ~link_count:3 in
  Link_history.add_interval h ~link:1 ~start:10. ~finish:20.;
  Link_history.add_interval h ~link:1 ~start:15. ~finish:30.;
  check Alcotest.bool "inside" true (Link_history.is_bad_at h ~link:1 ~time:12.);
  check Alcotest.bool "overlap region" true (Link_history.is_bad_at h ~link:1 ~time:25.);
  check Alcotest.bool "before" false (Link_history.is_bad_at h ~link:1 ~time:9.9);
  check Alcotest.bool "after (half-open)" false (Link_history.is_bad_at h ~link:1 ~time:30.);
  check Alcotest.bool "other link" false (Link_history.is_bad_at h ~link:0 ~time:12.);
  check (Alcotest.float 1e-9) "merged bad time" 20. (Link_history.total_bad_time h ~link:1 ~horizon:100.);
  check (Alcotest.float 1e-9) "clipped" 5. (Link_history.total_bad_time h ~link:1 ~horizon:15.);
  check (Alcotest.list Alcotest.int) "bad at 12" [ 1 ] (Link_history.bad_links_at h ~time:12.);
  check (Alcotest.float 1e-9) "fraction" 0.5
    (Link_history.bad_fraction_at h ~time:12. ~relevant:[| 0; 1 |])

let test_history_replay () =
  let h = Link_history.create ~link_count:2 in
  Link_history.add_interval h ~link:0 ~start:5. ~finish:10.;
  Link_history.add_interval h ~link:1 ~start:8. ~finish:12.;
  let engine = Engine.create () in
  let state = Link_state.create ~link_count:2 ~good_loss:0. ~bad_loss:1. in
  Link_history.replay h ~engine ~state ~horizon:100.;
  Engine.run_until engine 6.;
  check Alcotest.bool "link 0 down at 6" true (Link_state.is_bad state 0);
  check Alcotest.bool "link 1 up at 6" false (Link_state.is_bad state 1);
  Engine.run_until engine 11.;
  check Alcotest.bool "link 0 repaired" false (Link_state.is_bad state 0);
  check Alcotest.bool "link 1 down" true (Link_state.is_bad state 1);
  Engine.run_until engine 20.;
  check Alcotest.int "all repaired" 0 (Link_state.bad_count state)

(* ---------- Failures ---------- *)

let failure_fixture seed =
  let world = Generate.generate (Generate.tiny ~seed) in
  let g = world.Generate.graph in
  let hosts = Graph.end_hosts g in
  let rng = Prng.of_seed seed in
  let routes =
    Array.init 40 (fun _ ->
        let source = hosts.(Prng.int rng (Array.length hosts)) in
        let target = hosts.(Prng.int rng (Array.length hosts)) in
        Routes.shortest_path g ~source ~target)
    |> Array.to_list |> List.filter_map Fun.id
    |> List.filter (fun p -> Routes.hop_count p > 0)
    |> Array.of_list
  in
  (g, routes)

let test_failures_steady_state () =
  let g, routes = failure_fixture 11L in
  let rng = Prng.of_seed 12L in
  let duration = 36_000. in
  let failures =
    Failures.generate ~rng ~config:Failures.paper_config ~link_count:(Graph.link_count g)
      ~routes ~duration
  in
  let mean = Failures.mean_bad_fraction failures ~duration ~samples:100 in
  check Alcotest.bool
    (Printf.sprintf "mean bad fraction %.3f within [0.02, 0.09]" mean)
    true
    (mean > 0.02 && mean < 0.09);
  check Alcotest.bool "produced failures" true (failures.Failures.failure_events > 0)

let test_failures_only_touch_relevant_links () =
  let g, routes = failure_fixture 13L in
  let rng = Prng.of_seed 14L in
  let failures =
    Failures.generate ~rng ~config:Failures.paper_config ~link_count:(Graph.link_count g)
      ~routes ~duration:7200.
  in
  let relevant = failures.Failures.relevant_links in
  let is_relevant link = Array.exists (( = ) link) relevant in
  for link = 0 to Graph.link_count g - 1 do
    if not (is_relevant link) then
      check Alcotest.bool "irrelevant link untouched" true
        (Link_history.intervals failures.Failures.history ~link = [])
  done

let test_failures_edge_bias () =
  (* Beta(0.9, 0.6) puts most mass near the ends of a route. On DISJOINT
     paths (no link sharing to confound per-link counts), the mean per-link
     failure count at the route ends must exceed the interior's. *)
  let chains = 12 and chain_length = 10 in
  let b = Graph.Builder.create (chains * (chain_length + 1)) in
  for chain = 0 to chains - 1 do
    let base = chain * (chain_length + 1) in
    for i = 0 to chain_length - 1 do
      Graph.Builder.add_link b (base + i) (base + i + 1)
    done
  done;
  let g = Graph.build b in
  let routes =
    Array.init chains (fun chain ->
        let base = chain * (chain_length + 1) in
        Option.get (Routes.shortest_path g ~source:base ~target:(base + chain_length)))
  in
  let rng = Prng.of_seed 16L in
  let failures =
    Failures.generate ~rng ~config:Failures.paper_config ~link_count:(Graph.link_count g)
      ~routes ~duration:144_000.
  in
  let count link = List.length (Link_history.intervals failures.Failures.history ~link) in
  let edge = ref 0 and interior = ref 0 in
  Array.iter
    (fun path ->
      let links = path.Routes.links in
      let n = Array.length links in
      edge := !edge + count links.(0) + count links.(n - 1);
      for i = 1 to n - 2 do
        interior := !interior + count links.(i)
      done)
    routes;
  let edge_rate = float_of_int !edge /. float_of_int (2 * chains) in
  let interior_rate = float_of_int !interior /. float_of_int ((chain_length - 2) * chains) in
  check Alcotest.bool
    (Printf.sprintf "edge rate %.2f exceeds interior rate %.2f" edge_rate interior_rate)
    true
    (edge_rate > interior_rate)

(* ---------- Net ---------- *)

let test_net_delivery_and_loss () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_link b 0 1;
  Graph.Builder.add_link b 1 2;
  let g = Graph.build b in
  let path = Option.get (Routes.shortest_path g ~source:0 ~target:2) in
  let engine = Engine.create () in
  let state = Link_state.create ~link_count:2 ~good_loss:0. ~bad_loss:1. in
  let net = Net.create ~engine ~state ~rng:(Prng.of_seed 1L) ~node_count:3 () in
  let delivered = ref 0 and dropped_on = ref (-1) in
  Net.send net ~path ~size_bytes:100 ~on_delivered:(fun _ -> incr delivered) ();
  Engine.run engine;
  check Alcotest.int "delivered" 1 !delivered;
  check Alcotest.int "bytes sent" 100 (Net.bytes_sent net 0);
  check Alcotest.int "bytes received" 100 (Net.bytes_received net 2);
  (* Break the middle link: the drop callback must name it. *)
  Link_state.set_bad state 1;
  Net.send net ~path ~size_bytes:50
    ~on_delivered:(fun _ -> incr delivered)
    ~on_dropped:(fun _ ~link -> dropped_on := link)
    ();
  Engine.run engine;
  check Alcotest.int "not delivered" 1 !delivered;
  check Alcotest.int "dropped on bad link" 1 !dropped_on;
  check Alcotest.int "receiver unchanged" 100 (Net.bytes_received net 2)


(* ---------- Churn ---------- *)

module Churn = Concilium_netsim.Churn

let test_churn_steady_state () =
  let rng = Prng.of_seed 50L in
  let config = { Churn.mean_uptime = 1000.; mean_downtime = 1000.; initial_online_fraction = 0.5 } in
  let churn = Churn.generate ~rng ~config ~hosts:300 ~duration:20_000. in
  (* Symmetric on/off periods: steady state is 50% online. *)
  let mean = Churn.mean_online_fraction churn ~duration:20_000. ~samples:40 in
  check Alcotest.bool (Printf.sprintf "mean online %.2f near 0.5" mean) true
    (mean > 0.4 && mean < 0.6)

let test_churn_transitions_consistent () =
  let rng = Prng.of_seed 51L in
  let churn =
    Churn.generate ~rng ~config:Churn.default_config ~hosts:10 ~duration:50_000.
  in
  for host = 0 to 9 do
    List.iter
      (fun (time, became_online) ->
        (* Just after a transition the queried state matches the event. *)
        check Alcotest.bool "state after transition" became_online
          (Churn.is_online churn ~host ~time:(time +. 0.001)))
      (Churn.transitions churn ~host)
  done

let test_churn_transitions_chronological_and_alternating () =
  let rng = Prng.of_seed 53L in
  let duration = 40_000. in
  let churn = Churn.generate ~rng ~config:Churn.default_config ~hosts:20 ~duration in
  let any = ref false in
  for host = 0 to 19 do
    let transitions = Churn.transitions churn ~host in
    if transitions <> [] then any := true;
    (* Chronological and clipped to the horizon. *)
    let times = List.map fst transitions in
    check (Alcotest.list (Alcotest.float 1e-9)) "sorted times"
      (List.sort Float.compare times) times;
    List.iter
      (fun time ->
        check Alcotest.bool "within horizon" true (time >= 0. && time <= duration))
      times;
    (* Strictly alternating on/off: two consecutive same-direction events
       would mean a lost interval boundary. *)
    ignore
      (List.fold_left
         (fun previous (_, became_online) ->
           (match previous with
           | Some p -> check Alcotest.bool "alternates" (not p) became_online
           | None -> ());
           Some became_online)
         None transitions)
  done;
  check Alcotest.bool "fixture produced transitions" true !any

let test_failures_target_across_seeds () =
  (* Steady-state validation: the time-averaged bad fraction stays within
     20% of the configured target for several independent seeds. *)
  let target = Failures.paper_config.Failures.target_bad_fraction in
  List.iter
    (fun seed ->
      let g, routes = failure_fixture seed in
      let rng = Prng.of_seed (Int64.add seed 1000L) in
      let duration = 72_000. in
      let failures =
        Failures.generate ~rng ~config:Failures.paper_config
          ~link_count:(Graph.link_count g) ~routes ~duration
      in
      let mean = Failures.mean_bad_fraction failures ~duration ~samples:400 in
      check Alcotest.bool
        (Printf.sprintf "seed %Ld: mean %.4f within 20%% of %.2f" seed mean target)
        true
        (Float.abs (mean -. target) <= 0.2 *. target))
    [ 21L; 22L; 23L; 24L; 25L ]

let test_churn_mostly_online_default () =
  let rng = Prng.of_seed 52L in
  let churn =
    Churn.generate ~rng ~config:Churn.default_config ~hosts:200 ~duration:36_000.
  in
  let mean = Churn.mean_online_fraction churn ~duration:36_000. ~samples:30 in
  (* 2h up / 10min down: steady state ~92% online. *)
  check Alcotest.bool (Printf.sprintf "mean online %.2f > 0.85" mean) true (mean > 0.85)


(* ---------- epoch-bucketed link history vs the old list model ---------- *)

(* The reference model the epoch rewrite must agree with: a bare list of
   recorded (start, finish) intervals per link. *)
let model_is_bad intervals time =
  List.exists (fun (s, f) -> s <= time && time < f) intervals

let model_merged intervals =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) intervals in
  let rec merge = function
    | (s1, f1) :: (s2, f2) :: rest when s2 <= f1 -> merge ((s1, Float.max f1 f2) :: rest)
    | pair :: rest -> pair :: merge rest
    | [] -> []
  in
  merge sorted

let arbitrary_intervals =
  QCheck.(
    small_list
      (triple (int_bound 2) (float_bound_inclusive 500.) (float_bound_inclusive 90.)))

let prop_link_history_matches_list_model =
  QCheck.Test.make
    ~name:"epoch-bucketed history = interval-list model (queries and merges)" ~count:300
    QCheck.(pair arbitrary_intervals (small_list (float_bound_inclusive 600.)))
    (fun (recorded, probes) ->
      let history = Link_history.create_with ~epoch_length:50. ~link_count:3 in
      let model = Array.make 3 [] in
      List.iter
        (fun (link, start, length) ->
          Link_history.add_interval history ~link ~start ~finish:(start +. length);
          if length > 0. then model.(link) <- (start, start +. length) :: model.(link))
        recorded;
      let queries_agree =
        List.for_all
          (fun time ->
            let bad_links =
              List.filter (fun l -> model_is_bad model.(l) time) [ 0; 1; 2 ]
            in
            Link_history.bad_links_at history ~time = bad_links
            && List.for_all
                 (fun link ->
                   Link_history.is_bad_at history ~link ~time = model_is_bad model.(link) time)
                 [ 0; 1; 2 ])
          probes
      in
      let intervals_agree =
        List.for_all
          (fun link ->
            Link_history.intervals history ~link = model_merged model.(link))
          [ 0; 1; 2 ]
      in
      queries_agree && intervals_agree)

let prop_link_history_memory_bounded =
  QCheck.Test.make ~name:"expire_before frees old epochs; recent queries survive" ~count:200
    arbitrary_intervals
    (fun recorded ->
      let history = Link_history.create_with ~epoch_length:50. ~link_count:3 in
      List.iter
        (fun (link, start, length) ->
          Link_history.add_interval history ~link ~start ~finish:(start +. length))
        recorded;
      let before = Link_history.resident_pieces history in
      let cutoff = 300. in
      Link_history.expire_before history ~time:cutoff;
      let after = Link_history.resident_pieces history in
      (* Memory never grows, and queries at-or-after the cutoff still agree
         with the list model (expiry only drops epochs strictly below the
         cutoff's epoch). *)
      let model = Array.make 3 [] in
      List.iter
        (fun (link, start, length) ->
          if length > 0. then model.(link) <- (start, start +. length) :: model.(link))
        recorded;
      let recent_ok =
        List.for_all
          (fun time ->
            List.for_all
              (fun link ->
                Link_history.is_bad_at history ~link ~time = model_is_bad model.(link) time)
              [ 0; 1; 2 ])
          [ 300.; 333.; 407.; 575. ]
      in
      after <= before && recent_ok)

let test_link_history_expire_drops_pieces () =
  let history = Link_history.create_with ~epoch_length:10. ~link_count:1 in
  Link_history.add_interval history ~link:0 ~start:1. ~finish:4.;
  Link_history.add_interval history ~link:0 ~start:12. ~finish:14.;
  Link_history.add_interval history ~link:0 ~start:95. ~finish:99.;
  check Alcotest.int "three pieces resident" 3 (Link_history.resident_pieces history);
  Link_history.expire_before history ~time:20.;
  check Alcotest.int "old epochs dropped" 1 (Link_history.resident_pieces history);
  check Alcotest.bool "old instant forgotten" false
    (Link_history.is_bad_at history ~link:0 ~time:2.);
  check Alcotest.bool "recent instant kept" true
    (Link_history.is_bad_at history ~link:0 ~time:96.)

(* ---------- churn event stream ---------- *)

let test_churn_events_stream_matches_transitions () =
  let rng = Prng.of_seed 54L in
  let churn = Churn.generate ~rng ~config:Churn.default_config ~hosts:25 ~duration:30_000. in
  let events = Churn.events churn in
  (* Chronological, ties by host. *)
  Array.iteri
    (fun i (time, host) ->
      if i > 0 then begin
        let pt, ph = events.(i - 1) in
        check Alcotest.bool "ordered" true (pt < time || (pt = time && ph <= host))
      end)
    events;
  check Alcotest.int "one event per toggle" (Churn.toggle_count churn) (Array.length events);
  (* The stream replayed per host equals the per-host transition list, and
     parity starts from the initial flag. *)
  for host = 0 to 24 do
    let mine = Array.to_list events |> List.filter (fun (_, h) -> h = host) in
    let expected = Churn.transitions churn ~host in
    check Alcotest.int "count" (List.length expected) (List.length mine);
    List.iter2
      (fun (t_stream, _) (t_trans, became) ->
        check (Alcotest.float 1e-9) "time" t_trans t_stream;
        (* Toggles alternate, so direction is derivable from the initial
           state; just sanity-check the first one. *)
        ignore became)
      mine expected;
    (match expected with
    | (_, first_direction) :: _ ->
        check Alcotest.bool "first toggle leaves the initial state"
          (not (Churn.initially_online churn ~host))
          first_direction
    | [] -> ())
  done

let test_engine_capacity_shrinks () =
  let engine = Engine.create () in
  for i = 1 to 2048 do
    Engine.schedule_at engine ~time:(float_of_int i) (fun _ -> ())
  done;
  let full = Engine.capacity engine in
  Engine.run engine;
  check Alcotest.bool "released event storage" true (Engine.capacity engine < full / 4)

let prop_engine_fires_in_time_order =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"events fire in non-decreasing time order" ~count:100
       QCheck.(small_list (float_bound_inclusive 1000.))
       (fun times ->
         let engine = Engine.create () in
         let fired = ref [] in
         List.iter
           (fun time -> Engine.schedule_at engine ~time (fun e -> fired := Engine.now e :: !fired))
           times;
         Engine.run engine;
         let fired = List.rev !fired in
         List.length fired = List.length times
         && List.sort Float.compare fired = fired))

let suites =
  [
    ( "netsim.engine",
      [
        Alcotest.test_case "time order" `Quick test_engine_time_order;
        Alcotest.test_case "FIFO on ties" `Quick test_engine_fifo_same_time;
        Alcotest.test_case "run_until" `Quick test_engine_run_until;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        Alcotest.test_case "rejects NaN and negative" `Quick
          test_engine_rejects_nan_and_negative;
        prop_engine_fires_in_time_order;
      ] );
    ("netsim.link_state", [ Alcotest.test_case "transitions" `Quick test_link_state_transitions ]);
    ( "netsim.link_history",
      [
        Alcotest.test_case "interval queries" `Quick test_history_queries;
        Alcotest.test_case "replay onto engine" `Quick test_history_replay;
        Alcotest.test_case "expire_before drops old epochs" `Quick
          test_link_history_expire_drops_pieces;
        QCheck_alcotest.to_alcotest prop_link_history_matches_list_model;
        QCheck_alcotest.to_alcotest prop_link_history_memory_bounded;
      ] );
    ( "netsim.failures",
      [
        Alcotest.test_case "steady-state fraction" `Quick test_failures_steady_state;
        Alcotest.test_case "only relevant links fail" `Quick
          test_failures_only_touch_relevant_links;
        Alcotest.test_case "edge bias" `Quick test_failures_edge_bias;
        Alcotest.test_case "target fraction across seeds" `Quick
          test_failures_target_across_seeds;
      ] );
    ("netsim.net", [ Alcotest.test_case "delivery and loss" `Quick test_net_delivery_and_loss ]);
    ( "netsim.churn",
      [
        Alcotest.test_case "steady state" `Quick test_churn_steady_state;
        Alcotest.test_case "transition consistency" `Quick test_churn_transitions_consistent;
        Alcotest.test_case "transitions chronological and alternating" `Quick
          test_churn_transitions_chronological_and_alternating;
        Alcotest.test_case "default config mostly online" `Quick
          test_churn_mostly_online_default;
        Alcotest.test_case "events stream matches transitions" `Quick
          test_churn_events_stream_matches_transitions;
      ] );
    ( "netsim.capacity",
      [ Alcotest.test_case "engine storage shrinks" `Quick test_engine_capacity_shrinks ] );
  ]
