module Id = Concilium_overlay.Id
module Leaf_set = Concilium_overlay.Leaf_set
module Routing_table = Concilium_overlay.Routing_table
module Jump_table_model = Concilium_overlay.Jump_table_model
module Density_test = Concilium_overlay.Density_test
module Pastry = Concilium_overlay.Pastry
module Freshness = Concilium_overlay.Freshness
module Pki = Concilium_crypto.Pki
module Poisson_binomial = Concilium_stats.Poisson_binomial
module Descriptive = Concilium_stats.Descriptive
module Prng = Concilium_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let id_gen =
  QCheck.Gen.(map (fun n -> Id.random (Prng.of_seed (Int64.of_int n))) big_nat)

let arbitrary_id = QCheck.make ~print:Id.to_hex id_gen

(* ---------- Id ---------- *)

let test_id_hex_roundtrip () =
  let hex = "0123456789abcdef0123456789abcdef" in
  check Alcotest.string "roundtrip" hex (Id.to_hex (Id.of_hex hex));
  Alcotest.check_raises "short" (Invalid_argument "Id.of_hex: expected 32 hex digits") (fun () ->
      ignore (Id.of_hex "abc"))

let test_id_digits () =
  let id = Id.of_hex "f0000000000000000000000000000001" in
  check Alcotest.int "digit 0" 15 (Id.digit id 0);
  check Alcotest.int "digit 1" 0 (Id.digit id 1);
  check Alcotest.int "digit 31" 1 (Id.digit id 31);
  let swapped = Id.with_digit id 1 10 in
  check Alcotest.string "with_digit" "fa000000000000000000000000000001" (Id.to_hex swapped);
  check Alcotest.int "original untouched" 0 (Id.digit id 1)

let test_id_prefix () =
  let a = Id.of_hex "aabbcc00000000000000000000000000" in
  let b = Id.of_hex "aabbcd00000000000000000000000000" in
  check Alcotest.int "shared prefix" 5 (Id.shared_prefix_length a b);
  check Alcotest.int "self prefix" 32 (Id.shared_prefix_length a a)

let test_id_ring_distance () =
  let zero = Id.zero in
  let one = Id.of_hex "00000000000000000000000000000001" in
  let max_id = Id.of_hex "ffffffffffffffffffffffffffffffff" in
  check Alcotest.string "clockwise 0->1" (Id.to_hex one)
    (Id.to_hex (Id.clockwise_distance zero one));
  (* max -> 0 wraps: distance 1. *)
  check Alcotest.string "wraparound" (Id.to_hex one)
    (Id.to_hex (Id.clockwise_distance max_id zero));
  check Alcotest.string "ring distance symmetric-min" (Id.to_hex one)
    (Id.to_hex (Id.ring_distance zero max_id))

let test_id_succ () =
  let max_id = Id.of_hex "ffffffffffffffffffffffffffffffff" in
  check Alcotest.string "wrap" (Id.to_hex Id.zero) (Id.to_hex (Id.succ max_id));
  check Alcotest.string "carry" "00000000000000000000000000000100"
    (Id.to_hex (Id.succ (Id.of_hex "000000000000000000000000000000ff")))

let prop_ring_distance_symmetric =
  QCheck.Test.make ~name:"ring distance is symmetric" ~count:200
    QCheck.(pair arbitrary_id arbitrary_id)
    (fun (a, b) -> Id.equal (Id.ring_distance a b) (Id.ring_distance b a))

let prop_clockwise_sum_is_zero =
  QCheck.Test.make ~name:"cw(a,b) + cw(b,a) = ring size (mod 2^128)" ~count:200
    QCheck.(pair arbitrary_id arbitrary_id)
    (fun (a, b) ->
      QCheck.assume (not (Id.equal a b));
      let ab = Id.to_float (Id.clockwise_distance a b) in
      let ba = Id.to_float (Id.clockwise_distance b a) in
      abs_float (ab +. ba -. Id.ring_size_float) /. Id.ring_size_float < 1e-9)

let prop_with_digit_sets_digit =
  QCheck.Test.make ~name:"with_digit sets exactly one digit" ~count:200
    QCheck.(triple arbitrary_id (int_bound 31) (int_bound 15))
    (fun (id, position, value) ->
      let updated = Id.with_digit id position value in
      Id.digit updated position = value
      && List.for_all
           (fun i -> i = position || Id.digit updated i = Id.digit id i)
           (List.init 32 Fun.id))

(* ---------- Leaf set ---------- *)

let ring_fixture n seed =
  let rng = Prng.of_seed seed in
  let ids = Array.init n (fun _ -> Id.random rng) in
  let sorted = Array.copy ids in
  Array.sort Id.compare sorted;
  (ids, sorted)

let test_leaf_set_members () =
  let _, sorted = ring_fixture 64 21L in
  let owner = sorted.(10) in
  let ls = Leaf_set.build ~owner ~sorted_ids:sorted ~half_size:4 in
  check Alcotest.int "size" 8 (Leaf_set.size ls);
  check Alcotest.bool "owner not member" false
    (List.exists (Id.equal owner) (Leaf_set.members ls));
  (* Clockwise members are exactly the next 4 ids on the ring. *)
  let expected = Array.to_list (Array.sub sorted 11 4) in
  check (Alcotest.list Alcotest.string) "clockwise" (List.map Id.to_hex expected)
    (List.map Id.to_hex (Array.to_list (Leaf_set.clockwise ls)))

let test_leaf_set_wraparound () =
  let _, sorted = ring_fixture 16 22L in
  let owner = sorted.(15) in
  let ls = Leaf_set.build ~owner ~sorted_ids:sorted ~half_size:3 in
  check Alcotest.string "wraps to ring start" (Id.to_hex sorted.(0))
    (Id.to_hex (Leaf_set.clockwise ls).(0))

let test_leaf_set_estimates_network_size () =
  let _, sorted = ring_fixture 4096 23L in
  let estimates =
    Array.init 20 (fun i ->
        let ls = Leaf_set.build ~owner:sorted.(i * 100) ~sorted_ids:sorted ~half_size:8 in
        Leaf_set.estimate_network_size ls)
  in
  let mean = Descriptive.mean estimates in
  check Alcotest.bool
    (Printf.sprintf "estimate %.0f within 2x of 4096" mean)
    true
    (mean > 2048. && mean < 8192.)

let test_leaf_set_spacing_check () =
  let _, sorted = ring_fixture 4096 24L in
  let local = Leaf_set.build ~owner:sorted.(0) ~sorted_ids:sorted ~half_size:8 in
  let honest = Leaf_set.build ~owner:sorted.(2000) ~sorted_ids:sorted ~half_size:8 in
  check Alcotest.bool "honest accepted" true
    (Leaf_set.spacing_check ~gamma:2. ~local ~peer:honest = `Acceptable);
  (* An attacker advertising every 8th identifier: ~8x the honest spacing. *)
  let sparse_sorted = Array.init 512 (fun i -> sorted.(8 * i)) in
  let sparse = Leaf_set.build ~owner:sparse_sorted.(100) ~sorted_ids:sparse_sorted ~half_size:8 in
  check Alcotest.bool "sparse flagged" true
    (Leaf_set.spacing_check ~gamma:2. ~local ~peer:sparse = `Suspicious)

let test_leaf_set_covers_and_closest () =
  let _, sorted = ring_fixture 64 25L in
  let owner = sorted.(30) in
  let ls = Leaf_set.build ~owner ~sorted_ids:sorted ~half_size:4 in
  check Alcotest.bool "covers a near id" true (Leaf_set.covers ls sorted.(31));
  check Alcotest.string "closest to member is member" (Id.to_hex sorted.(31))
    (Id.to_hex (Leaf_set.closest_member ls sorted.(31)))

(* ---------- Routing table ---------- *)

let sorted_with_indices sorted = Array.mapi (fun _ id -> id) sorted |> Array.mapi (fun i id -> (id, i))

let test_secure_table_prefix_constraint () =
  let _, sorted = ring_fixture 256 26L in
  let pairs = sorted_with_indices sorted in
  let owner = sorted.(77) in
  let table = Routing_table.build_secure ~owner ~sorted:pairs in
  Routing_table.iter
    (fun ~row ~col entry ->
      match entry with
      | None -> ()
      | Some { Routing_table.peer; _ } ->
          check Alcotest.bool "never the owner" false (Id.equal peer owner);
          check Alcotest.int
            (Printf.sprintf "row %d prefix" row)
            row
            (min row (Id.shared_prefix_length owner peer));
          check Alcotest.int (Printf.sprintf "row %d col" row) col (Id.digit peer row))
    table

let test_secure_table_picks_closest_to_point () =
  let _, sorted = ring_fixture 256 27L in
  let pairs = sorted_with_indices sorted in
  let owner = sorted.(42) in
  let table = Routing_table.build_secure ~owner ~sorted:pairs in
  Routing_table.iter
    (fun ~row ~col entry ->
      match entry with
      | None -> ()
      | Some { Routing_table.peer; _ } ->
          let point = Id.with_digit owner row col in
          let peer_distance = Id.ring_distance peer point in
          (* No other qualifying node may be strictly closer to the point. *)
          Array.iter
            (fun other ->
              if
                (not (Id.equal other owner))
                && Id.shared_prefix_length other owner >= row
                && Id.digit other row = col
              then
                check Alcotest.bool "constrained choice is closest" false
                  (Id.compare (Id.ring_distance other point) peer_distance < 0))
            sorted)
    table

let test_standard_table_prefix_constraint () =
  let _, sorted = ring_fixture 128 28L in
  let pairs = sorted_with_indices sorted in
  let owner = sorted.(5) in
  let rng = Prng.of_seed 1L in
  let table = Routing_table.build_standard ~owner ~sorted:pairs ~rng in
  Routing_table.iter
    (fun ~row ~col entry ->
      match entry with
      | None -> ()
      | Some { Routing_table.peer; _ } ->
          check Alcotest.bool "prefix" true (Id.shared_prefix_length owner peer >= row);
          check Alcotest.int "col digit" col (Id.digit peer row))
    table

let test_next_hop_improves_prefix () =
  let _, sorted = ring_fixture 128 29L in
  let pairs = sorted_with_indices sorted in
  let owner = sorted.(0) in
  let table = Routing_table.build_secure ~owner ~sorted:pairs in
  let dest = sorted.(100) in
  match Routing_table.next_hop table ~dest with
  | None -> () (* possible when the needed slot is empty *)
  | Some { Routing_table.peer; _ } ->
      check Alcotest.bool "longer shared prefix" true
        (Id.shared_prefix_length peer dest > Id.shared_prefix_length owner dest)

(* ---------- Jump table model ---------- *)

let test_fill_probability_monotone () =
  let n = 10_000 in
  let previous = ref 2. in
  for row = 0 to Routing_table.rows - 1 do
    let p = Jump_table_model.fill_probability ~n ~row in
    check Alcotest.bool "decreasing in row" true (p <= !previous +. 1e-12);
    check Alcotest.bool "probability" true (p >= 0. && p <= 1.);
    previous := p
  done

let test_fill_probability_small_world () =
  (* N=2: the only other node fills a row-0 slot with probability 1/16 per
     column... equivalently Pr(filled) = (1/16)^1 for the matching column;
     Equation 1 gives 1 - (1 - 1/16)^1 = 1/16 for row 0. *)
  check (Alcotest.float 1e-12) "n=2 row 0" (1. /. 16.)
    (Jump_table_model.fill_probability ~n:2 ~row:0);
  check (Alcotest.float 1e-12) "n=1 empty" 0. (Jump_table_model.fill_probability ~n:1 ~row:0)

let test_expected_entries_paper_value () =
  (* Section 4.4: ~77 entries at 100k nodes with 16 leaves. *)
  let entries = Jump_table_model.expected_routing_entries ~n:100_000 ~leaf_set_size:16 in
  check Alcotest.bool (Printf.sprintf "entries %.1f in [74, 80]" entries) true
    (entries > 74. && entries < 80.)

let test_model_matches_monte_carlo () =
  let n = 1500 in
  let rng = Prng.of_seed 30L in
  let model = Jump_table_model.model ~n in
  let samples = Jump_table_model.monte_carlo_occupancy ~rng ~n ~trials:30 in
  let slots = float_of_int (Routing_table.rows * Routing_table.columns) in
  let mc_mean = Descriptive.mean samples in
  let model_mean = model.Poisson_binomial.mu_phi /. slots in
  check (Alcotest.float 0.01) "analytic ~ empirical" model_mean mc_mean

(* ---------- Density test ---------- *)

let test_density_check_rule () =
  check Alcotest.bool "sparse flagged" true
    (Density_test.check ~gamma:1.2 ~local_occupancy:60 ~peer_occupancy:40 = `Suspicious);
  check Alcotest.bool "similar accepted" true
    (Density_test.check ~gamma:1.2 ~local_occupancy:60 ~peer_occupancy:55 = `Acceptable)

let test_density_error_rates_paper_band () =
  (* Paper Section 4.1: at c=20% without suppression the false negative is
     ~3.5%; our analytic pipeline must land in the same band. *)
  let gammas = Array.init 101 (fun i -> 1.0 +. (0.01 *. float_of_int i)) in
  let _, rates =
    Density_test.optimal_gamma ~gammas
      { Density_test.n = 100_000; colluding_fraction = 0.2; suppression = false }
  in
  check Alcotest.bool
    (Printf.sprintf "FN %.3f < 0.10" rates.Density_test.false_negative)
    true
    (rates.Density_test.false_negative < 0.10);
  check Alcotest.bool
    (Printf.sprintf "FP %.3f < 0.10" rates.Density_test.false_positive)
    true
    (rates.Density_test.false_positive < 0.10)

let test_density_suppression_hurts () =
  let scenario suppression =
    { Density_test.n = 100_000; colluding_fraction = 0.2; suppression }
  in
  let gammas = Array.init 51 (fun i -> 1.0 +. (0.02 *. float_of_int i)) in
  let _, plain = Density_test.optimal_gamma ~gammas (scenario false) in
  let _, attacked = Density_test.optimal_gamma ~gammas (scenario true) in
  check Alcotest.bool "suppression raises total error" true
    (attacked.Density_test.false_positive +. attacked.Density_test.false_negative
    > plain.Density_test.false_positive +. plain.Density_test.false_negative)

let prop_false_positive_decreases_in_gamma =
  QCheck.Test.make ~name:"false positives fall as gamma grows" ~count:20
    QCheck.(int_range 1_000 50_000)
    (fun n ->
      let model = Jump_table_model.model ~n in
      let fp gamma = Density_test.false_positive_rate ~gamma ~local:model ~peer:model in
      fp 1.0 >= fp 1.3 && fp 1.3 >= fp 1.8)

(* ---------- Pastry ---------- *)

let pastry_fixture n seed =
  let rng = Prng.of_seed seed in
  let ids = Array.init n (fun _ -> Id.random rng) in
  (ids, Pastry.build ~leaf_half_size:4 ids)

let test_pastry_route_reaches_root () =
  let ids, overlay = pastry_fixture 200 40L in
  let rng = Prng.of_seed 41L in
  for _ = 1 to 50 do
    let from = Prng.int rng 200 in
    let dest = Id.random rng in
    let route = Pastry.route overlay ~from ~dest in
    let last = List.nth route (List.length route - 1) in
    check Alcotest.int "terminates at the key's root" (Pastry.numerically_closest overlay dest)
      last;
    check Alcotest.int "starts at source" from (List.hd route)
  done;
  ignore ids

let test_pastry_route_to_member_id () =
  let ids, overlay = pastry_fixture 100 42L in
  let route = Pastry.route overlay ~from:3 ~dest:ids.(42) in
  check Alcotest.int "exact member is its own root" 42 (List.nth route (List.length route - 1))

let test_pastry_hop_count_logarithmic () =
  let _, overlay = pastry_fixture 512 43L in
  let rng = Prng.of_seed 44L in
  let total = ref 0 and count = 60 in
  for _ = 1 to count do
    let from = Prng.int rng 512 in
    let dest = Id.random rng in
    total := !total + (List.length (Pastry.route overlay ~from ~dest) - 1)
  done;
  let mean = float_of_int !total /. float_of_int count in
  (* log_16(512) ~ 2.25; leaf-set hops add a little. *)
  check Alcotest.bool (Printf.sprintf "mean hops %.2f < 5" mean) true (mean < 5.)

let test_pastry_routing_peers () =
  let _, overlay = pastry_fixture 128 45L in
  let peers = Pastry.routing_peers overlay 0 in
  check Alcotest.bool "has peers" true (Array.length peers > 8);
  check Alcotest.bool "self not a peer" false (Array.exists (( = ) 0) peers);
  let sorted = Array.copy peers in
  Array.sort Int.compare sorted;
  check Alcotest.bool "deduplicated" true (sorted = peers)

let prop_pastry_routes_converge =
  QCheck.Test.make
    ~name:"routing always terminates at the key's root without revisiting a node" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (seed, key_seed) ->
      let _, overlay = pastry_fixture 150 (Int64.of_int seed) in
      let dest = Id.random (Prng.of_seed (Int64.of_int key_seed)) in
      let route = Pastry.route overlay ~from:0 ~dest in
      let last = List.nth route (List.length route - 1) in
      last = Pastry.numerically_closest overlay dest
      && List.length (List.sort_uniq Int.compare route) = List.length route)

(* ---------- Freshness ---------- *)

let test_freshness_validate () =
  let pki = Pki.create ~seed:50L in
  let holder = Id.random (Prng.of_seed 51L) in
  let cert, secret = Pki.issue pki ~address:"10.0.0.1" ~node_id:(Id.to_hex holder) in
  let stamp = Freshness.issue ~holder ~secret ~public:cert.Pki.subject_key ~now:100. in
  check Alcotest.bool "fresh now" true
    (Freshness.validate pki ~now:150. ~max_age:600. ~expected_holder:holder stamp);
  check Alcotest.bool "stale" false
    (Freshness.validate pki ~now:800. ~max_age:600. ~expected_holder:holder stamp);
  check Alcotest.bool "future-dated rejected" false
    (Freshness.is_fresh ~now:50. ~max_age:600. stamp);
  let other = Id.random (Prng.of_seed 52L) in
  check Alcotest.bool "wrong holder (inflation attack)" false
    (Freshness.validate pki ~now:150. ~max_age:600. ~expected_holder:other stamp)


(* ---------- Chord ---------- *)

module Chord = Concilium_overlay.Chord

let test_id_add_power_of_two () =
  let zero = Id.zero in
  check Alcotest.string "2^0" "00000000000000000000000000000001"
    (Id.to_hex (Id.add_power_of_two zero 0));
  check Alcotest.string "2^8" "00000000000000000000000000000100"
    (Id.to_hex (Id.add_power_of_two zero 8));
  check Alcotest.string "2^127" "80000000000000000000000000000000"
    (Id.to_hex (Id.add_power_of_two zero 127));
  (* Carry propagation and wraparound. *)
  let all_f = Id.of_hex "ffffffffffffffffffffffffffffffff" in
  check Alcotest.string "wrap" "00000000000000000000000000000000"
    (Id.to_hex (Id.add_power_of_two all_f 0))

let test_id_clockwise_interval () =
  let at hex = Id.of_hex hex in
  let lo = at "10000000000000000000000000000000" in
  let hi = at "20000000000000000000000000000000" in
  check Alcotest.bool "inside" true
    (Id.in_clockwise_interval (at "18000000000000000000000000000000") ~lo ~hi);
  check Alcotest.bool "lo inclusive" true (Id.in_clockwise_interval lo ~lo ~hi);
  check Alcotest.bool "hi exclusive" false (Id.in_clockwise_interval hi ~lo ~hi);
  check Alcotest.bool "outside" false (Id.in_clockwise_interval Id.zero ~lo ~hi);
  (* Wrapping interval: [hi, lo) contains zero. *)
  check Alcotest.bool "wrapping" true (Id.in_clockwise_interval Id.zero ~lo:hi ~hi:lo);
  check Alcotest.bool "empty" false (Id.in_clockwise_interval lo ~lo ~hi:lo)

let chord_fixture n seed =
  let rng = Prng.of_seed seed in
  let ids = Array.init n (fun _ -> Id.random rng) in
  (ids, Chord.build ids)

let test_chord_successors_ascend () =
  let _, overlay = chord_fixture 64 140L in
  for v = 0 to 63 do
    let node = Chord.node overlay v in
    let previous = ref node.Chord.id in
    Array.iter
      (fun entry ->
        (* Each successor is strictly clockwise of the previous one. *)
        let step = Id.clockwise_distance !previous entry.Chord.peer in
        check Alcotest.bool "strict clockwise order" true (Id.compare step Id.zero > 0);
        previous := entry.Chord.peer)
      node.Chord.successors
  done

let test_chord_route_reaches_owner () =
  let _, overlay = chord_fixture 200 141L in
  let rng = Prng.of_seed 142L in
  for _ = 1 to 50 do
    let from = Prng.int rng 200 in
    let dest = Id.random rng in
    let route = Chord.route overlay ~from ~dest in
    check Alcotest.int "terminates at the key's successor"
      (Chord.successor_of_key overlay dest)
      (List.nth route (List.length route - 1))
  done

let test_chord_logarithmic_routing () =
  let _, overlay = chord_fixture 1024 143L in
  let mean = Chord.mean_route_length overlay ~trials:100 ~rng:(Prng.of_seed 144L) in
  (* Chord averages ~(1/2) log2 N = 5 hops; allow generous slack. *)
  check Alcotest.bool (Printf.sprintf "mean hops %.2f in [2.5, 8]" mean) true
    (mean > 2.5 && mean < 8.)

let test_chord_secure_fingers_are_first_successors () =
  let _, overlay = chord_fixture 128 145L in
  let node = Chord.node overlay 0 in
  Array.iteri
    (fun k finger ->
      match finger with
      | None -> ()
      | Some entry ->
          let target = Id.add_power_of_two node.Chord.id k in
          (* No member may lie strictly between the target and the finger. *)
          check Alcotest.int "finger is the target's successor"
            (Chord.successor_of_key overlay target)
            entry.Chord.node)
    node.Chord.fingers

let test_chord_standard_fingers_stay_in_interval () =
  let rng = Prng.of_seed 146L in
  let ids = Array.init 128 (fun _ -> Id.random rng) in
  let overlay = Chord.build ~style:(Chord.Standard (Prng.of_seed 147L)) ids in
  let node = Chord.node overlay 5 in
  Array.iteri
    (fun k finger ->
      match finger with
      | None -> ()
      | Some entry ->
          let target = Id.add_power_of_two node.Chord.id k in
          let upper =
            if k = Chord.finger_count - 1 then node.Chord.id
            else Id.add_power_of_two node.Chord.id (k + 1)
          in
          check Alcotest.bool "inside the finger interval" true
            (Id.in_clockwise_interval entry.Chord.peer ~lo:target ~hi:upper))
    node.Chord.fingers

let test_chord_occupancy_model_tracks_mc () =
  let rng = Prng.of_seed 148L in
  let n = 700 in
  let model_mean =
    Chord.Model.expected_occupancy ~n /. float_of_int Chord.finger_count
  in
  let samples = Chord.Model.monte_carlo_occupancy ~rng ~n ~trials:20 in
  let mc_mean = Array.fold_left ( +. ) 0. samples /. 20. in
  check (Alcotest.float 0.012) "model ~ MC" model_mean mc_mean;
  (* Expected distinct intervals is ~log2 N. *)
  check (Alcotest.float 2.) "~log2 N" (log (float_of_int n) /. log 2.)
    (Chord.Model.expected_occupancy ~n)


(* ---------- Secure routing ---------- *)

module Secure_routing = Concilium_overlay.Secure_routing

let test_secure_routing_no_faults () =
  let _, overlay = pastry_fixture 150 160L in
  let rng = Prng.of_seed 161L in
  let dest = Id.random rng in
  let attempt = Secure_routing.standard_delivery overlay ~from:0 ~dest ~faulty:(fun _ -> false) in
  check Alcotest.bool "clean network delivers" true attempt.Secure_routing.delivered;
  let result = Secure_routing.redundant_route overlay ~from:0 ~dest ~faulty:(fun _ -> false) in
  check Alcotest.bool "redundant too" true result.Secure_routing.delivered;
  check Alcotest.int "direct copy suffices" 1 result.Secure_routing.copies_sent

let test_secure_routing_routes_around_faulty_hop () =
  let _, overlay = pastry_fixture 150 162L in
  let rng = Prng.of_seed 163L in
  (* Find a key whose direct route has a faulty interior hop. *)
  let rec search attempts =
    if attempts = 0 then None
    else begin
      let dest = Id.random rng in
      let hops = Pastry.route overlay ~from:0 ~dest in
      if List.length hops >= 3 then Some (dest, List.nth hops 1) else search (attempts - 1)
    end
  in
  match search 2000 with
  | None -> Alcotest.fail "no multi-hop key found"
  | Some (dest, bad_hop) ->
      let faulty v = v = bad_hop in
      let direct = Secure_routing.standard_delivery overlay ~from:0 ~dest ~faulty in
      check Alcotest.bool "standard route fails" false direct.Secure_routing.delivered;
      let redundant = Secure_routing.redundant_route overlay ~from:0 ~dest ~faulty in
      check Alcotest.bool "redundant route survives" true redundant.Secure_routing.delivered;
      check Alcotest.bool "used extra copies" true (redundant.Secure_routing.copies_sent > 1)

let test_secure_routing_castro_threshold () =
  let _, overlay = pastry_fixture 200 164L in
  let rng = Prng.of_seed 165L in
  let rate mode fraction =
    Secure_routing.delivery_probability overlay ~rng ~faulty_fraction:fraction ~trials:120 ~mode
  in
  (* Castro: redundant routing delivers w.h.p. with >= 75% honest nodes. *)
  let redundant_at_25 = rate `Redundant 0.25 in
  check Alcotest.bool
    (Printf.sprintf "redundant at 25%% faulty: %.3f > 0.97" redundant_at_25)
    true (redundant_at_25 > 0.97);
  let standard_at_25 = rate `Standard 0.25 in
  check Alcotest.bool
    (Printf.sprintf "standard at 25%% faulty: %.3f markedly worse" standard_at_25)
    true
    (standard_at_25 < redundant_at_25 -. 0.05)


(* ---------- Dynamic membership ---------- *)

let overlay_equal a b =
  let same = ref (Pastry.node_count a = Pastry.node_count b) in
  if !same then
    for v = 0 to Pastry.node_count a - 1 do
      let na = Pastry.node a v and nb = Pastry.node b v in
      if not (Id.equal na.Pastry.id nb.Pastry.id) then same := false;
      if
        not
          (List.equal Id.equal
             (Leaf_set.members na.Pastry.leaf_set)
             (Leaf_set.members nb.Pastry.leaf_set))
      then same := false;
      Routing_table.iter
        (fun ~row ~col entry ->
          let other = Routing_table.get nb.Pastry.table ~row ~col in
          match (entry, other) with
          | None, None -> ()
          | Some x, Some y ->
              if
                not
                  (Id.equal x.Routing_table.peer y.Routing_table.peer
                  && x.Routing_table.node = y.Routing_table.node)
              then same := false
          | None, Some _ | Some _, None -> same := false)
        na.Pastry.table
    done;
  !same

let prop_join_equals_rebuild =
  QCheck.Test.make ~name:"incremental join equals a fresh build" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (seed, join_seed) ->
      let rng = Prng.of_seed (Int64.of_int seed) in
      let ids = Array.init 60 (fun _ -> Id.random rng) in
      let overlay = Pastry.build ~leaf_half_size:4 ids in
      let newcomer = Id.random (Prng.of_seed (Int64.of_int join_seed)) in
      (* seed = join_seed regenerates ids.(0): a legitimate duplicate. *)
      QCheck.assume (Pastry.index_of_id overlay newcomer = None);
      let incremental = Pastry.add_node overlay newcomer in
      let fresh = Pastry.build ~leaf_half_size:4 (Array.append ids [| newcomer |]) in
      overlay_equal incremental fresh)

let prop_leave_equals_rebuild =
  QCheck.Test.make ~name:"incremental departure equals a fresh build" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_bound 59))
    (fun (seed, victim) ->
      let rng = Prng.of_seed (Int64.of_int seed) in
      let ids = Array.init 60 (fun _ -> Id.random rng) in
      let overlay = Pastry.build ~leaf_half_size:4 ids in
      let incremental = Pastry.remove_node overlay ids.(victim) in
      let survivors =
        Array.of_list
          (List.filteri (fun i _ -> i <> victim) (Array.to_list ids))
      in
      let fresh = Pastry.build ~leaf_half_size:4 survivors in
      overlay_equal incremental fresh)

let test_add_node_rejects_duplicates () =
  let ids, overlay = pastry_fixture 50 170L in
  Alcotest.check_raises "duplicate" (Invalid_argument "Pastry.add_node: duplicate identifier")
    (fun () -> ignore (Pastry.add_node overlay ids.(7)))

let test_route_avoiding () =
  let _, overlay = pastry_fixture 200 171L in
  let rng = Prng.of_seed 172L in
  (* Find a key whose plain route passes through an intermediate node. *)
  let rec search attempts =
    if attempts = 0 then None
    else begin
      let dest = Id.random rng in
      let hops = Pastry.route overlay ~from:0 ~dest in
      if List.length hops >= 3 then Some (dest, hops) else search (attempts - 1)
    end
  in
  match search 3000 with
  | None -> Alcotest.fail "no multi-hop key"
  | Some (dest, hops) ->
      let shunned = List.nth hops 1 in
      let root = List.nth hops (List.length hops - 1) in
      (match Pastry.route_avoiding overlay ~from:0 ~dest ~avoid:(fun v -> v = shunned) with
      | None -> Alcotest.fail "expected a detour"
      | Some detour ->
          check Alcotest.bool "detour skips the shunned node" false (List.mem shunned detour);
          check Alcotest.int "still reaches the root" root
            (List.nth detour (List.length detour - 1)));
      (* Avoiding everyone but the endpoints leaves no route. *)
      check Alcotest.bool "fully blocked" true
        (Pastry.route_avoiding overlay ~from:0 ~dest ~avoid:(fun v -> v <> 0 && v <> root)
         = None
        ||
        (* unless the root is a direct peer of the sender *)
        List.length (Pastry.route overlay ~from:0 ~dest) <= 2)


let test_add_node_preserves_original () =
  let ids, overlay = pastry_fixture 60 175L in
  ignore ids;
  let before =
    List.init (Pastry.node_count overlay) (fun v ->
        Routing_table.entries (Pastry.node overlay v).Pastry.table)
  in
  let newcomer = Id.random (Prng.of_seed 176L) in
  ignore (Pastry.add_node overlay newcomer);
  let after =
    List.init (Pastry.node_count overlay) (fun v ->
        Routing_table.entries (Pastry.node overlay v).Pastry.table)
  in
  check Alcotest.bool "original untouched" true
    (List.for_all2
       (fun b a ->
         List.length b = List.length a
         && List.for_all2
              (fun (r1, c1, e1) (r2, c2, e2) ->
                r1 = r2 && c1 = c2
                && Id.equal e1.Routing_table.peer e2.Routing_table.peer)
              b a)
       before after)

(* ---------- Id helpers for the flat core ---------- *)

let prop_midpoint_orders =
  QCheck.Test.make ~name:"midpoint lies between its arguments" ~count:300
    QCheck.(pair arbitrary_id arbitrary_id)
    (fun (a, b) ->
      let lo, hi = if Id.compare a b <= 0 then (a, b) else (b, a) in
      let m = Id.midpoint lo hi in
      Id.compare lo m <= 0 && Id.compare m hi <= 0)

let prop_compare_substituted_agrees =
  QCheck.Test.make ~name:"compare_substituted = compare of with_digit" ~count:300
    QCheck.(quad arbitrary_id (int_bound 31) (int_bound 15) arbitrary_id)
    (fun (a, index, digit, b) ->
      Id.compare_substituted a ~index ~digit b = Id.compare (Id.with_digit a index digit) b)

let prop_prefix_bounds_bracket =
  QCheck.Test.make ~name:"prefix_bounds bracket exactly the shared-prefix ids" ~count:300
    QCheck.(triple arbitrary_id (int_bound 32) arbitrary_id)
    (fun (anchor, digits_shared, probe) ->
      let lo, hi = Id.prefix_bounds anchor ~digits_shared in
      let inside = Id.compare lo probe <= 0 && Id.compare probe hi <= 0 in
      let shares = Id.shared_prefix_length anchor probe >= digits_shared in
      (* shares prefix => inside the bounds, and the bounds themselves
         share the prefix *)
      ((not shares) || inside)
      && Id.shared_prefix_length anchor lo >= digits_shared
      && Id.shared_prefix_length anchor hi >= digits_shared)

let test_id_floor_log2 () =
  check Alcotest.int "zero" (-1) (Id.floor_log2 Id.zero);
  check Alcotest.int "one" 0 (Id.floor_log2 (Id.of_hex "00000000000000000000000000000001"));
  check Alcotest.int "top bit" 127 (Id.floor_log2 (Id.of_hex "80000000000000000000000000000000"));
  check Alcotest.int "mixed" 68 (Id.floor_log2 (Id.of_hex "00000000000000130000000000000000"))

(* ---------- Incremental secure tables vs the full-rebuild oracle ---------- *)

module Ring = Concilium_overlay.Ring
module Inc_table = Concilium_overlay.Inc_table
module Flat_chord = Concilium_overlay.Flat_chord
module Chaos = Concilium_netsim.Chaos

let distinct_ids ~rng n =
  let rec draw acc k =
    if k = 0 then acc
    else begin
      let id = Id.random rng in
      if List.exists (Id.equal id) acc then draw acc k else draw (id :: acc) (k - 1)
    end
  in
  Array.of_list (draw [] n)

let alive_pairs ring =
  let acc = ref [] in
  for i = Ring.size ring - 1 downto 0 do
    if Ring.is_alive ring i then acc := (Ring.id ring i, i) :: !acc
  done;
  Array.of_list !acc

(* Byte-equivalence of the maintained table against build_secure over the
   current alive membership, for every owner (dead ones included) and every
   slot — materialised rows and on-demand deep rows alike. *)
let assert_tables_match tbl context =
  let ring = Inc_table.ring tbl in
  let sorted = alive_pairs ring in
  for owner = 0 to Ring.size ring - 1 do
    let oracle = Routing_table.build_secure ~owner:(Ring.id ring owner) ~sorted in
    for row = 0 to Id.digits - 1 do
      for col = 0 to Id.base - 1 do
        let expect =
          match Routing_table.get oracle ~row ~col with
          | None -> -1
          | Some e -> e.Routing_table.node
        in
        let got = Inc_table.entry tbl ~owner ~row ~col in
        if got <> expect then
          Alcotest.failf "%s: owner %d row %d col %d: oracle %d, incremental %d" context owner
            row col expect got
      done
    done
  done

(* A churn schedule derived from the chaos DSL: sample a crash-only plan
   and read each Node_crash as leave-at-start / rejoin-at-end. *)
let chaos_churn_schedule ~seed ~nodes ~horizon =
  let rng = Prng.of_seed seed in
  let config = { Chaos.quiet with Chaos.crashes_per_hour = 60.; crash_mean_duration = 120. } in
  let plan = Chaos.sample ~rng ~config ~links:[||] ~nodes ~cuts:[||] ~horizon in
  let events =
    List.concat_map
      (fun fault ->
        match fault with
        | Chaos.Node_crash { node; start; duration } ->
            [ (start, `Leave, node); (start +. duration, `Join, node) ]
        | _ -> [])
      plan
  in
  List.sort
    (fun (ta, _, na) (tb, _, nb) ->
      match Float.compare ta tb with 0 -> Int.compare na nb | c -> c)
    events

let prop_incremental_matches_oracle =
  QCheck.Test.make ~name:"incremental table = rebuild oracle under chaos churn" ~count:8
    QCheck.(pair (int_range 4 28) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Prng.of_seed (Int64.of_int (77 + seed)) in
      let ring = Ring.of_ids (distinct_ids ~rng n) in
      let tbl = Inc_table.build ring in
      assert_tables_match tbl "initial build";
      let schedule = chaos_churn_schedule ~seed:(Int64.of_int (13 + seed)) ~nodes:n ~horizon:900. in
      let applied = ref 0 in
      List.iter
        (fun (_, kind, node) ->
          let acted =
            !applied < 24
            &&
            match kind with
            | `Leave ->
                if Ring.is_alive ring node && Ring.alive_count ring > 1 then begin
                  ignore (Inc_table.apply_leave tbl node);
                  true
                end
                else false
            | `Join ->
                if not (Ring.is_alive ring node) then begin
                  ignore (Inc_table.apply_join tbl node);
                  true
                end
                else false
          in
          if acted then begin
            incr applied;
            assert_tables_match tbl (Printf.sprintf "after event %d" !applied)
          end)
        schedule;
      (* The materialised rows must also agree with the from-scratch path. *)
      for owner = 0 to Ring.size ring - 1 do
        let disagreed = Inc_table.rebuild_owner tbl owner in
        if disagreed <> 0 then
          Alcotest.failf "rebuild_owner %d found %d stale slots" owner disagreed
      done;
      !applied >= 0)

(* The parallel sweep-build must be byte-identical to the sequential one:
   slot values are pure functions of the ring, and the (row, group, class)
   task decomposition writes disjoint regions for any domain count. *)
let prop_parallel_build_matches_sequential =
  QCheck.Test.make ~name:"parallel sweep-build = sequential build, any domain count" ~count:4
    QCheck.(pair (int_range 2 300) (int_bound 1000))
    (fun (n, seed) ->
      let make_ring () =
        let rng = Prng.of_seed (Int64.of_int (6100 + seed)) in
        let ring = Ring.of_ids (distinct_ids ~rng n) in
        let kill = Prng.of_seed (Int64.of_int (6200 + seed)) in
        for _ = 1 to n / 5 do
          let v = Prng.int kill n in
          if Ring.alive_count ring > 2 then Ring.set_dead ring v
        done;
        ring
      in
      let reference = Inc_table.checksum (Inc_table.build (make_ring ())) in
      List.for_all
        (fun domains ->
          Concilium_util.Pool.with_pool ~domains (fun pool ->
              Inc_table.checksum (Inc_table.build ~pool (make_ring ())) = reference))
        [ 2; 3; 8 ])

(* ---------- Flat (universe-indexed) routing ---------- *)

let prop_flat_pastry_routes_to_root =
  QCheck.Test.make ~name:"flat pastry route delivers to the numerically closest node"
    ~count:6
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (seed, churn_seed) ->
      let rng = Prng.of_seed (Int64.of_int (3000 + seed)) in
      let n = 600 in
      let ring = Ring.of_ids (distinct_ids ~rng n) in
      let tbl = Inc_table.build ring in
      (* Kill a handful of nodes through the incremental path first. *)
      let churn_rng = Prng.of_seed (Int64.of_int (4000 + churn_seed)) in
      for _ = 1 to 25 do
        let v = Prng.int churn_rng n in
        if Ring.is_alive ring v then ignore (Inc_table.apply_leave tbl v)
      done;
      let ok = ref 0 and total = 20 in
      for _ = 1 to total do
        let dest = Id.random rng in
        let src = ref (Prng.int rng n) in
        while not (Ring.is_alive ring !src) do
          src := Prng.int rng n
        done;
        let root = Inc_table.numerically_closest tbl dest in
        let final, hops, _ = Inc_table.route tbl ~leaf_half:8 ~src:!src ~dest in
        if final = root && hops <= (2 * Id.digits) + 32 then incr ok
      done;
      !ok = total)

let prop_flat_chord_routes_to_owner =
  QCheck.Test.make ~name:"flat chord route reaches the key's owner in O(log n) hops" ~count:6
    QCheck.(pair (int_bound 1000) (int_range 64 800))
    (fun (seed, n) ->
      let rng = Prng.of_seed (Int64.of_int (5000 + seed)) in
      let ring = Ring.of_ids (distinct_ids ~rng n) in
      (* Random dead minority. *)
      for _ = 1 to n / 5 do
        let v = Prng.int rng n in
        if Ring.alive_count ring > 2 then Ring.set_dead ring v
      done;
      let chord = Flat_chord.create ring in
      let ok = ref true in
      for _ = 1 to 30 do
        let dest = Id.random rng in
        let src = ref (Prng.int rng n) in
        while not (Ring.is_alive ring !src) do
          src := Prng.int rng n
        done;
        let owner = Flat_chord.owner_of_key chord dest in
        let final, hops, _ = Flat_chord.route chord ~src:!src ~dest in
        if final <> owner || hops > 64 then ok := false
      done;
      !ok)

(* ---------- Chord O(log n) forwarding vs the linear reference ---------- *)

let prop_chord_next_hop_matches_reference =
  QCheck.Test.make ~name:"chord next_hop = linear-scan reference" ~count:12
    QCheck.(pair (int_bound 1000) (int_range 2 120))
    (fun (seed, n) ->
      let rng = Prng.of_seed (Int64.of_int (6000 + seed)) in
      let ids = distinct_ids ~rng n in
      let overlay = Chord.build ids in
      let ok = ref true in
      for _ = 1 to 60 do
        let from = Prng.int rng n in
        let dest =
          (* Mix arbitrary keys with exact member ids (boundary cases). *)
          if Prng.bool rng then Id.random rng else ids.(Prng.int rng n)
        in
        let fast = Chord.next_hop overlay ~from ~dest in
        let slow = Chord.next_hop_reference overlay ~from ~dest in
        if not (Option.equal Int.equal fast slow) then ok := false
      done;
      !ok)

let suites =
  [
    ( "overlay.id",
      [
        Alcotest.test_case "hex roundtrip" `Quick test_id_hex_roundtrip;
        Alcotest.test_case "digit access" `Quick test_id_digits;
        Alcotest.test_case "shared prefix" `Quick test_id_prefix;
        Alcotest.test_case "ring distance" `Quick test_id_ring_distance;
        Alcotest.test_case "succ" `Quick test_id_succ;
        qtest prop_ring_distance_symmetric;
        qtest prop_clockwise_sum_is_zero;
        qtest prop_with_digit_sets_digit;
      ] );
    ( "overlay.leaf_set",
      [
        Alcotest.test_case "members" `Quick test_leaf_set_members;
        Alcotest.test_case "wraparound" `Quick test_leaf_set_wraparound;
        Alcotest.test_case "network size estimate" `Quick test_leaf_set_estimates_network_size;
        Alcotest.test_case "Castro spacing check" `Quick test_leaf_set_spacing_check;
        Alcotest.test_case "covers and closest" `Quick test_leaf_set_covers_and_closest;
      ] );
    ( "overlay.routing_table",
      [
        Alcotest.test_case "secure prefix constraint" `Quick test_secure_table_prefix_constraint;
        Alcotest.test_case "secure closest-to-point" `Quick
          test_secure_table_picks_closest_to_point;
        Alcotest.test_case "standard prefix constraint" `Quick
          test_standard_table_prefix_constraint;
        Alcotest.test_case "next hop improves prefix" `Quick test_next_hop_improves_prefix;
      ] );
    ( "overlay.jump_table_model",
      [
        Alcotest.test_case "fill probability monotone" `Quick test_fill_probability_monotone;
        Alcotest.test_case "tiny-world closed forms" `Quick test_fill_probability_small_world;
        Alcotest.test_case "paper's 77-entry table" `Quick test_expected_entries_paper_value;
        Alcotest.test_case "model matches Monte Carlo" `Quick test_model_matches_monte_carlo;
      ] );
    ( "overlay.density_test",
      [
        Alcotest.test_case "gamma rule" `Quick test_density_check_rule;
        Alcotest.test_case "paper error band at c=20%" `Quick test_density_error_rates_paper_band;
        Alcotest.test_case "suppression attacks hurt" `Quick test_density_suppression_hurts;
        qtest prop_false_positive_decreases_in_gamma;
      ] );
    ( "overlay.pastry",
      [
        Alcotest.test_case "routes reach the root" `Quick test_pastry_route_reaches_root;
        Alcotest.test_case "routes to member ids" `Quick test_pastry_route_to_member_id;
        Alcotest.test_case "logarithmic hop count" `Quick test_pastry_hop_count_logarithmic;
        Alcotest.test_case "routing peers" `Quick test_pastry_routing_peers;
        qtest prop_pastry_routes_converge;
      ] );
    ("overlay.freshness", [ Alcotest.test_case "stamp validation" `Quick test_freshness_validate ]);
    ( "overlay.membership",
      [
        qtest prop_join_equals_rebuild;
        qtest prop_leave_equals_rebuild;
        Alcotest.test_case "duplicate join rejected" `Quick test_add_node_rejects_duplicates;
        Alcotest.test_case "join leaves the original intact" `Quick
          test_add_node_preserves_original;
        Alcotest.test_case "route around accused nodes" `Quick test_route_avoiding;
      ] );
    ( "overlay.secure_routing",
      [
        Alcotest.test_case "clean network" `Quick test_secure_routing_no_faults;
        Alcotest.test_case "routes around a faulty hop" `Quick
          test_secure_routing_routes_around_faulty_hop;
        Alcotest.test_case "Castro 75%-honest threshold" `Slow
          test_secure_routing_castro_threshold;
      ] );
    ( "overlay.chord",
      [
        Alcotest.test_case "id add_power_of_two" `Quick test_id_add_power_of_two;
        Alcotest.test_case "clockwise intervals" `Quick test_id_clockwise_interval;
        Alcotest.test_case "successor lists ascend" `Quick test_chord_successors_ascend;
        Alcotest.test_case "routes reach the owner" `Quick test_chord_route_reaches_owner;
        Alcotest.test_case "logarithmic routing" `Quick test_chord_logarithmic_routing;
        Alcotest.test_case "secure fingers unique" `Quick
          test_chord_secure_fingers_are_first_successors;
        Alcotest.test_case "standard fingers in interval" `Quick
          test_chord_standard_fingers_stay_in_interval;
        Alcotest.test_case "occupancy model vs MC" `Quick test_chord_occupancy_model_tracks_mc;
        qtest prop_chord_next_hop_matches_reference;
      ] );
    ( "overlay.flat",
      [
        qtest prop_midpoint_orders;
        qtest prop_compare_substituted_agrees;
        qtest prop_prefix_bounds_bracket;
        Alcotest.test_case "floor_log2" `Quick test_id_floor_log2;
        qtest prop_incremental_matches_oracle;
        qtest prop_parallel_build_matches_sequential;
        qtest prop_flat_pastry_routes_to_root;
        qtest prop_flat_chord_routes_to_owner;
      ] );
  ]
