(* The domain pool: order preservation, failure propagation, nesting, and
   the end-to-end guarantee the experiments rely on — identical output for
   any domain count. *)

module Pool = Concilium_util.Pool
module Prng = Concilium_util.Prng
module World = Concilium_core.World
module E = Concilium_experiments

let check = Alcotest.check

let test_map_preserves_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 1000 (fun i -> i) in
      let doubled = Pool.parallel_map ~pool xs ~f:(fun x -> 2 * x) in
      check (Alcotest.array Alcotest.int) "slot i holds f xs.(i)"
        (Array.map (fun x -> 2 * x) xs)
        doubled)

let test_init_matches_sequential () =
  let f i = (i * 7919) mod 104729 in
  let sequential = Array.init 500 f in
  Pool.with_pool ~domains:3 (fun pool ->
      check (Alcotest.array Alcotest.int) "parallel_init = Array.init" sequential
        (Pool.parallel_init ~pool 500 ~f));
  (* Without a pool the inline path must agree too. *)
  check (Alcotest.array Alcotest.int) "no pool = Array.init" sequential
    (Pool.parallel_init 500 ~f)

let test_empty_and_singleton () =
  Pool.with_pool ~domains:2 (fun pool ->
      check Alcotest.int "empty" 0 (Array.length (Pool.parallel_init ~pool 0 ~f:(fun i -> i)));
      check (Alcotest.array Alcotest.int) "singleton" [| 42 |]
        (Pool.parallel_init ~pool 1 ~f:(fun _ -> 42)))

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "task failure surfaces to the submitter"
        (Invalid_argument "task 137") (fun () ->
          ignore
            (Pool.parallel_init ~pool 400 ~f:(fun i ->
                 if i = 137 then invalid_arg "task 137" else i)));
      (* The pool survives a failed job and accepts the next one. *)
      check Alcotest.int "pool still works" 100
        (Array.length (Pool.parallel_init ~pool 100 ~f:(fun i -> i))))

let test_nested_submission_runs_inline () =
  Pool.with_pool ~domains:4 (fun pool ->
      let rows =
        Pool.parallel_init ~pool 8 ~f:(fun i ->
            (* Fanning out from inside a task must not deadlock; it runs
               inline on the submitting domain. *)
            Pool.parallel_init ~pool 8 ~f:(fun j -> (8 * i) + j))
      in
      let flat = Array.concat (Array.to_list rows) in
      check (Alcotest.array Alcotest.int) "nested results correct"
        (Array.init 64 (fun k -> k))
        flat)

let test_shutdown_rejects_new_work () =
  let pool = Pool.create ~domains:2 () in
  check Alcotest.int "accepts work while live" 10
    (Array.length (Pool.parallel_init ~pool 10 ~f:(fun i -> i)));
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.parallel_init: pool is shut down") (fun () ->
      ignore (Pool.parallel_init ~pool 10 ~f:(fun i -> i)))

(* ---------- Determinism across domain counts ---------- *)

(* The experiments' contract: pre-split PRNGs mean the SAME numbers come out
   however many domains execute the tasks. Run real experiment drivers under
   1 and 4 domains and demand exact equality. *)

let fig1_points ~domains =
  Pool.with_pool ~domains (fun pool ->
      E.Fig1.run ~pool ~seed:7L ~sizes:[| 128; 512 |] ~trials:6 ())

let test_fig1_domain_count_invariant () =
  let one = fig1_points ~domains:1 and four = fig1_points ~domains:4 in
  List.iter2
    (fun (a : E.Fig1.point) (b : E.Fig1.point) ->
      check Alcotest.int "size" a.E.Fig1.n b.E.Fig1.n;
      check (Alcotest.float 0.) "mc mean" a.E.Fig1.monte_carlo_mean b.E.Fig1.monte_carlo_mean;
      check (Alcotest.float 0.) "mc std" a.E.Fig1.monte_carlo_std b.E.Fig1.monte_carlo_std)
    one four

let world_fixture = lazy (World.build (World.tiny_config ~seed:88L))

let fig4_points ~domains =
  let world = Lazy.force world_fixture in
  Pool.with_pool ~domains (fun pool ->
      E.Fig4.run ~pool ~world ~rng:(Prng.of_seed 11L) ~host_sample:8 ())

let test_fig4_domain_count_invariant () =
  let one = fig4_points ~domains:1 and four = fig4_points ~domains:4 in
  check Alcotest.int "same point count" (List.length one) (List.length four);
  List.iter2
    (fun (a : E.Fig4.point) (b : E.Fig4.point) ->
      check Alcotest.int "k" a.E.Fig4.trees_included b.E.Fig4.trees_included;
      check (Alcotest.float 0.) "coverage" a.E.Fig4.mean_coverage b.E.Fig4.mean_coverage;
      check (Alcotest.float 0.) "vouchers" a.E.Fig4.mean_vouchers b.E.Fig4.mean_vouchers;
      check Alcotest.int "hosts" a.E.Fig4.hosts b.E.Fig4.hosts)
    one four

(* Any steal interleaving must merge byte-identically: random task counts
   with skewed per-task work (so the per-domain blocks drain at different
   rates and cross-block steals actually happen), compared against the
   sequential reference for several domain counts — including more domains
   than tasks. *)
let prop_stealing_merges_byte_identical =
  QCheck.Test.make ~count:10 ~name:"parallel_map byte-identical for any domain count"
    QCheck.(pair (int_range 0 500) (int_range 0 1000))
    (fun (n, salt) ->
      let xs = Array.init n (fun i -> ((i * 31) + salt) land 0xffff) in
      let f x =
        (* Work skew of up to 64x across tasks forces steals. *)
        let rounds = 1 + (x land 63) in
        let acc = ref x in
        for i = 1 to rounds do
          acc := ((!acc * 1103515245) + i) land 0x3fffffff
        done;
        !acc
      in
      let reference = Array.map f xs in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun pool -> Pool.parallel_map ~pool xs ~f = reference))
        [ 2; 3; 8 ])

(* Regression: a fan-out with fewer tasks than domains must neither deadlock
   (the starved workers park and the submitter completes the job) nor
   busy-spin (each woken worker gives up after a single failed victim scan
   — bounded by its wakeup count, which is at most one per job). *)
let test_single_task_many_domains () =
  Pool.with_pool ~domains:8 (fun pool ->
      let result = Pool.parallel_init ~pool 1 ~f:(fun i -> i + 41) in
      check (Alcotest.array Alcotest.int) "result" [| 41 |] result;
      List.iter
        (fun { Pool.worker; empty_scans; wakeups; _ } ->
          check Alcotest.bool
            (Printf.sprintf "worker %d: at most one wakeup for the one job" worker)
            true (wakeups <= 1);
          check Alcotest.bool
            (Printf.sprintf "worker %d: at most one empty scan per wakeup" worker)
            true
            (empty_scans <= wakeups))
        (Pool.stats pool);
      (* The pool is still healthy for a full-width job afterwards. *)
      check (Alcotest.array Alcotest.int) "subsequent wide job"
        (Array.init 64 (fun i -> i * i))
        (Pool.parallel_init ~pool 64 ~f:(fun i -> i * i)))

(* The scheduling granularity: positive, never wider than a task range that
   exists, and fine enough that every domain's block holds work when there
   are at least [domains] tasks. *)
let prop_chunk_size_sane =
  QCheck.Test.make ~count:500 ~name:"chunk_size bounds"
    QCheck.(pair (int_range 0 100_000) (int_range 1 64))
    (fun (tasks, domains) ->
      let c = Pool.chunk_size ~tasks ~domains in
      c >= 1
      && (tasks = 0 || domains <= 1 || c <= max 1 ((tasks + domains - 1) / domains)))

let test_split_n_is_prefix_stable () =
  (* split_n must be the explicit in-order split sequence: drawing more
     streams never perturbs the ones already drawn. *)
  let streams n = Array.map Prng.int64 (Prng.split_n (Prng.of_seed 123L) n) in
  let five = streams 5 and nine = streams 9 in
  check (Alcotest.array Alcotest.int64) "first five agree" five (Array.sub nine 0 5)

let suites =
  [
    ( "util.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "init matches sequential" `Quick test_init_matches_sequential;
        Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
        Alcotest.test_case "nested submission runs inline" `Quick
          test_nested_submission_runs_inline;
        Alcotest.test_case "shutdown rejects new work" `Quick test_shutdown_rejects_new_work;
        Alcotest.test_case "single task on many domains" `Quick test_single_task_many_domains;
        QCheck_alcotest.to_alcotest prop_stealing_merges_byte_identical;
        QCheck_alcotest.to_alcotest prop_chunk_size_sane;
      ] );
    ( "util.pool.determinism",
      [
        Alcotest.test_case "fig1 invariant under domain count" `Quick
          test_fig1_domain_count_invariant;
        Alcotest.test_case "fig4 invariant under domain count" `Slow
          test_fig4_domain_count_invariant;
        Alcotest.test_case "split_n prefix-stable" `Quick test_split_n_is_prefix_stable;
      ] );
  ]
