let () =
  Alcotest.run "concilium"
    (Test_util.suites @ Test_pool.suites @ Test_crypto.suites @ Test_stats.suites @ Test_topology.suites
   @ Test_netsim.suites @ Test_chaos.suites @ Test_overlay.suites @ Test_tomography.suites @ Test_core.suites
   @ Test_protocol.suites @ Test_reputation.suites @ Test_adversary.suites
   @ Test_experiments.suites
   @ Test_lint.suites @ Test_obs.suites @ Test_provenance.suites @ Test_check.suites
   @ Test_analysis.suites @ Test_scale.suites)
