module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Tree = Concilium_tomography.Tree
module Logical_tree = Concilium_tomography.Logical_tree
module Probing = Concilium_tomography.Probing
module Minc = Concilium_tomography.Minc
module Observation = Concilium_tomography.Observation
module Snapshot = Concilium_tomography.Snapshot
module Feedback_verify = Concilium_tomography.Feedback_verify
module Freshness = Concilium_overlay.Freshness
module Id = Concilium_overlay.Id
module Pki = Concilium_crypto.Pki
module Signed = Concilium_crypto.Signed
module Prng = Concilium_util.Prng

let check = Alcotest.check

(* A fixed binary-ish probe tree:
          0
          |        link 0
          1
        /   \      links 1, 2
       2     3
      / \     \    links 3, 4, 5
     4   5     6
   Leaves: 4, 5, 6 (routers). *)
let fixture_tree () =
  let b = Graph.Builder.create 7 in
  let links =
    [ (0, 1); (1, 2); (1, 3); (2, 4); (2, 5); (3, 6) ]
  in
  List.iter (fun (u, v) -> Graph.Builder.add_link b u v) links;
  let g = Graph.build b in
  let path target = Option.get (Routes.shortest_path g ~source:0 ~target) in
  let tree = Tree.of_paths ~root:0 ~paths:[| path 4; path 5; path 6 |] in
  (g, tree)

(* ---------- Tree ---------- *)

let test_tree_structure () =
  let _, tree = fixture_tree () in
  check Alcotest.int "nodes" 7 (Tree.node_count tree);
  check Alcotest.int "root" 0 (Tree.root tree);
  check Alcotest.int "leaf count" 3 (Array.length (Tree.leaves tree));
  let leaf_routers = Array.map (Tree.router_of tree) (Tree.leaves tree) in
  check (Alcotest.array Alcotest.int) "leaf routers" [| 4; 5; 6 |] leaf_routers;
  check Alcotest.int "six links" 6 (Array.length (Tree.physical_links tree))

let test_tree_paths_to_leaves () =
  let g, tree = fixture_tree () in
  let leaf4 = Option.get (Tree.leaf_of_router tree 4) in
  let links = Tree.path_links_to tree leaf4 in
  check Alcotest.int "three hops" 3 (Array.length links);
  let expected =
    [|
      Option.get (Graph.link_between g 0 1);
      Option.get (Graph.link_between g 1 2);
      Option.get (Graph.link_between g 2 4);
    |]
  in
  check (Alcotest.array Alcotest.int) "root-down order" expected links

let test_tree_shared_prefix_dedup () =
  let _, tree = fixture_tree () in
  (* Routers 0,1,2 are shared by the paths to 4 and 5 but appear once. *)
  let routers = List.init (Tree.node_count tree) (Tree.router_of tree) in
  check Alcotest.int "no duplicates" (List.length routers)
    (List.length (List.sort_uniq Int.compare routers))

let test_tree_rejects_foreign_path () =
  let g, _ = fixture_tree () in
  let path = Option.get (Routes.shortest_path g ~source:1 ~target:4) in
  Alcotest.check_raises "wrong root" (Invalid_argument "Tree.of_paths: path does not start at root")
    (fun () -> ignore (Tree.of_paths ~root:0 ~paths:[| path |]))

(* ---------- Logical tree ---------- *)

let test_logical_collapse () =
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  (* Kept: root(0), branch router 1, branch router 2, leaves 4,5,6.
     Router 3 is a pass-through and collapses into leaf 6's chain. *)
  check Alcotest.int "logical nodes" 6 (Logical_tree.node_count logical);
  check Alcotest.int "leaves" 3 (Logical_tree.leaf_count logical);
  let leaf6 = (Logical_tree.leaves logical).(2) in
  check Alcotest.int "collapsed chain length" 2 (Array.length (Logical_tree.chain logical leaf6))

let test_logical_descendants () =
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  check (Alcotest.array Alcotest.int) "root sees all leaves" [| 0; 1; 2 |]
    (Logical_tree.descendant_leaves logical 0);
  let leaf0 = (Logical_tree.leaves logical).(0) in
  check (Alcotest.array Alcotest.int) "leaf sees itself" [| 0 |]
    (Logical_tree.descendant_leaves logical leaf0)

(* ---------- Probing ---------- *)

let test_probe_round_shared_fate () =
  let _, tree = fixture_tree () in
  let rng = Prng.of_seed 60L in
  (* Kill the shared root link: nobody can receive, ever. *)
  let loss_of_link link = if link = 0 then 1. else 0. in
  let round = Probing.probe_round ~rng ~loss_of_link ~tree () in
  check (Alcotest.array Alcotest.bool) "all lost" [| false; false; false |]
    round.Probing.received

let test_probe_round_perfect_network () =
  let _, tree = fixture_tree () in
  let rng = Prng.of_seed 61L in
  let round = Probing.probe_round ~rng ~loss_of_link:(fun _ -> 0.) ~tree () in
  check (Alcotest.array Alcotest.bool) "all received" [| true; true; true |]
    round.Probing.received;
  check (Alcotest.array Alcotest.bool) "all acked" [| true; true; true |] round.Probing.acked

let test_suppressing_leaf () =
  let _, tree = fixture_tree () in
  let rng = Prng.of_seed 62L in
  let behavior i = if i = 0 then Probing.Suppress_acks 1.0 else Probing.Honest in
  let round = Probing.probe_round ~rng ~loss_of_link:(fun _ -> 0.) ~tree ~behavior () in
  check Alcotest.bool "received" true round.Probing.received.(0);
  check Alcotest.bool "ack suppressed" false round.Probing.acked.(0)

let test_spurious_leaf_caught_by_nonce () =
  let _, tree = fixture_tree () in
  let rng = Prng.of_seed 63L in
  let behavior i = if i = 2 then Probing.Spurious_acks 1.0 else Probing.Honest in
  (* Cut leaf 6's last link so leaf index 2 never receives. *)
  let g, _ = fixture_tree () in
  let cut = Option.get (Graph.link_between g 3 6) in
  let loss_of_link link = if link = cut then 1. else 0. in
  let caught = ref 0 and sneaked = ref 0 in
  for _ = 1 to 50 do
    let round = Probing.probe_round ~rng ~loss_of_link ~tree ~behavior () in
    if List.mem 2 round.Probing.forged_detected then incr caught;
    if round.Probing.acked.(2) then incr sneaked
  done;
  (* Guessing a 16-bit nonce succeeds ~1/65536 of the time. *)
  check Alcotest.bool (Printf.sprintf "caught %d, sneaked %d" !caught !sneaked) true
    (!caught >= 48 && !sneaked <= 2)

let test_classify_round () =
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  (* Leaves 4 and 5 acked; leaf 6 silent: the chain to 6 is Probed_down,
     everything on the acked paths is Probed_up. *)
  let verdicts = Probing.classify_round logical [| true; true; false |] in
  let leaf6 = (Logical_tree.leaves logical).(2) in
  check Alcotest.bool "chain to 6 down" true (verdicts.(leaf6) = Probing.Probed_down);
  let leaf4 = (Logical_tree.leaves logical).(0) in
  check Alcotest.bool "chain to 4 up" true (verdicts.(leaf4) = Probing.Probed_up);
  (* Nothing acked: everything indeterminate (can't tell first bad link). *)
  let silent = Probing.classify_round logical [| false; false; false |] in
  Array.iteri
    (fun node verdict ->
      if node > 0 then check Alcotest.bool "indeterminate" true (verdict = Probing.Indeterminate))
    silent

(* ---------- MINC ---------- *)

let minc_fixture ~loss_of_link ~rounds ~seed =
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  let rng = Prng.of_seed seed in
  let observed = Probing.probe_rounds ~rng ~loss_of_link ~tree ~count:rounds () in
  (logical, Minc.infer_from_rounds logical observed)

let test_minc_lossless () =
  let _, estimate = minc_fixture ~loss_of_link:(fun _ -> 0.) ~rounds:200 ~seed:64L in
  Array.iteri
    (fun node success ->
      check (Alcotest.float 1e-9) (Printf.sprintf "node %d" node) 1. success)
    estimate.Minc.link_success

let test_minc_recovers_lossy_link () =
  let g, _ = fixture_tree () in
  let lossy = Option.get (Graph.link_between g 1 2) in
  let loss_of_link link = if link = lossy then 0.3 else 0.01 in
  let logical, estimate = minc_fixture ~loss_of_link ~rounds:4000 ~seed:65L in
  (* Find the logical node whose chain contains the lossy link. *)
  let found = ref false in
  for node = 1 to Logical_tree.node_count logical - 1 do
    if Array.exists (( = ) lossy) (Logical_tree.chain logical node) then begin
      found := true;
      check (Alcotest.float 0.05)
        (Printf.sprintf "inferred loss on node %d" node)
        0.3 (Minc.link_loss estimate node)
    end
  done;
  check Alcotest.bool "lossy link located" true !found

let test_minc_suspect_links () =
  let g, _ = fixture_tree () in
  let dead = Option.get (Graph.link_between g 2 5) in
  let loss_of_link link = if link = dead then 0.95 else 0.005 in
  let _, estimate = minc_fixture ~loss_of_link ~rounds:1500 ~seed:66L in
  let suspects = Minc.suspect_physical_links estimate ~loss_threshold:0.5 in
  check (Alcotest.list Alcotest.int) "exactly the dead link" [ dead ] suspects

let test_minc_rejects_empty () =
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  Alcotest.check_raises "no rounds" (Invalid_argument "Minc.infer: no rounds") (fun () ->
      ignore (Minc.infer logical ~acked:[||]))

(* ---------- Observation ---------- *)

let test_observation_window_queries () =
  let store = Observation.create () in
  List.iter
    (fun (time, prober, link, up) -> Observation.record store { Observation.time; prober; link; up })
    [ (10., 1, 5, true); (20., 2, 5, false); (30., 1, 5, true); (20., 1, 6, true) ];
  check Alcotest.int "count" 4 (Observation.count store);
  let window = Observation.on_link store ~link:5 ~lo:15. ~hi:30. in
  check Alcotest.int "windowed" 2 (List.length window);
  check (Alcotest.float 1e-9) "oldest first" 20. (List.hd window).Observation.time;
  (match Observation.latest_on_link store ~link:5 with
  | Some obs -> check (Alcotest.float 1e-9) "latest" 30. obs.Observation.time
  | None -> Alcotest.fail "expected latest");
  Observation.prune_before store 25.;
  check Alcotest.int "pruned" 1 (Observation.count store)

(* ---------- Snapshot ---------- *)

let snapshot_fixture () =
  let pki = Pki.create ~seed:70L in
  let origin = Id.random (Prng.of_seed 71L) in
  let peer = Id.random (Prng.of_seed 72L) in
  let origin_cert, origin_secret = Pki.issue pki ~address:"o" ~node_id:(Id.to_hex origin) in
  let peer_cert, peer_secret = Pki.issue pki ~address:"p" ~node_id:(Id.to_hex peer) in
  let stamp = Freshness.issue ~holder:peer ~secret:peer_secret ~public:peer_cert.Pki.subject_key ~now:99. in
  let summary = { Snapshot.peer; loss_level = Snapshot.quantize_loss 0.05; freshness = stamp } in
  let snapshot =
    Snapshot.make ~origin ~secret:origin_secret ~public:origin_cert.Pki.subject_key ~now:100.
      ~summaries:[ summary ]
  in
  (pki, snapshot)

let test_snapshot_sign_verify () =
  let pki, snapshot = snapshot_fixture () in
  check Alcotest.bool "verifies" true (Snapshot.verify pki snapshot);
  let body = Signed.payload snapshot in
  let tampered =
    Signed.forge ~signer:(Signed.signer snapshot)
      ~fake_signature:(Pki.signature_of_string "bogus")
      { body with Snapshot.issued_at = 500. }
  in
  check Alcotest.bool "tampered rejected" false (Snapshot.verify pki tampered)

let test_snapshot_quantization () =
  check Alcotest.int "zero" 0 (Snapshot.quantize_loss 0.);
  check Alcotest.int "one" (Array.length Snapshot.loss_levels - 1) (Snapshot.quantize_loss 1.);
  let level = Snapshot.quantize_loss 0.07 in
  check (Alcotest.float 0.03) "roundtrip near" 0.07 (Snapshot.level_to_loss level);
  (* Quantization is idempotent on the level grid. *)
  Array.iteri
    (fun level loss -> check Alcotest.int "fixed point" level (Snapshot.quantize_loss loss))
    Snapshot.loss_levels

let test_snapshot_wire_size () =
  let _, snapshot = snapshot_fixture () in
  (* 1 entry: header 20 + 145 + signature 128. *)
  check Alcotest.int "wire bytes" (20 + 145 + 128) (Snapshot.wire_bytes snapshot)

(* ---------- Feedback verification ---------- *)

let test_feedback_flags_suppressor () =
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  let rng = Prng.of_seed 80L in
  let behavior i = if i = 1 then Probing.Suppress_acks 0.5 else Probing.Honest in
  let rounds =
    Probing.probe_rounds ~rng ~loss_of_link:(fun _ -> 0.01) ~tree ~behavior ~count:800 ()
  in
  let estimate = Minc.infer_from_rounds logical rounds in
  let suspicions =
    Feedback_verify.suspect_leaves estimate
      ~expected_chain_success:(fun _ -> 0.99)
      ~significance:0.001
  in
  check (Alcotest.list Alcotest.int) "suppressor flagged" [ 1 ]
    (List.map (fun s -> s.Feedback_verify.leaf_index) suspicions)

let test_feedback_accepts_honest_world () =
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  let rng = Prng.of_seed 81L in
  let rounds = Probing.probe_rounds ~rng ~loss_of_link:(fun _ -> 0.01) ~tree ~count:800 () in
  let estimate = Minc.infer_from_rounds logical rounds in
  let suspicions =
    Feedback_verify.suspect_leaves estimate
      ~expected_chain_success:(fun _ -> 0.97)
      ~significance:0.001
  in
  check (Alcotest.list Alcotest.int) "nobody flagged" []
    (List.map (fun s -> s.Feedback_verify.leaf_index) suspicions)

let test_feedback_flags_colluding_suppressors () =
  (* Two leaves suppressing in concert corrupt the MLE they are measured
     against, yet each still falls significantly below its own predicted
     ack rate — mutual corroboration does not hide either of them. *)
  let _, tree = fixture_tree () in
  let logical = Logical_tree.of_tree tree in
  let rng = Prng.of_seed 82L in
  let behavior i = if i = 0 || i = 2 then Probing.Suppress_acks 0.5 else Probing.Honest in
  let rounds =
    Probing.probe_rounds ~rng ~loss_of_link:(fun _ -> 0.01) ~tree ~behavior ~count:800 ()
  in
  let estimate = Minc.infer_from_rounds logical rounds in
  let suspicions =
    Feedback_verify.suspect_leaves estimate
      ~expected_chain_success:(fun _ -> 0.99)
      ~significance:0.001
  in
  let flagged =
    List.sort Int.compare (List.map (fun s -> s.Feedback_verify.leaf_index) suspicions)
  in
  check (Alcotest.list Alcotest.int) "both suppressors flagged" [ 0; 2 ] flagged

(* ---------- Probe sharing (Section 3.7) ---------- *)

module Probe_sharing = Concilium_tomography.Probe_sharing

let test_probe_sharing_amortization () =
  (* Two identical trees: consolidation halves the cost. Disjoint trees:
     no saving. *)
  let trees = [| [| 1; 2; 3 |]; [| 1; 2; 3 |]; [| 7; 8 |] |] in
  let same = Probe_sharing.plan ~trees ~members:[| 0; 1 |] in
  check Alcotest.int "individual" 6 same.Probe_sharing.individual_links;
  check Alcotest.int "consolidated" 3 same.Probe_sharing.consolidated_links;
  check (Alcotest.float 1e-9) "half" 0.5 same.Probe_sharing.amortization;
  let disjoint = Probe_sharing.plan ~trees ~members:[| 0; 2 |] in
  check (Alcotest.float 1e-9) "no saving" 1. disjoint.Probe_sharing.amortization;
  check (Alcotest.float 1e-9) "bytes scale" 100.
    (Probe_sharing.individual_bytes disjoint ~per_tree_bytes:50.);
  check (Alcotest.float 1e-9) "consolidated bytes" 50.
    (Probe_sharing.consolidated_bytes same ~per_tree_bytes:50.)

(* ---------- Report consolidation under corruption ---------- *)

let consolidate_fixture ~links ~honest ~liars ~truth =
  (* Every member reports every link; liars invert the truth, which is the
     strongest per-link corruption (mutually-corroborating by
     construction: all liars tell the same lie). *)
  List.concat_map
    (fun link ->
      List.map (fun member -> { Probe_sharing.member; link; up = truth link }) honest
      @ List.map (fun member -> { Probe_sharing.member; link; up = not (truth link) }) liars)
    links

let test_consolidate_zero_adversary_perfect () =
  (* Sanity: with zero adversaries the consolidated verdict is the truth
     on every link — accuracy exactly 1.0, all links unanimous. *)
  let truth link = link mod 3 <> 0 in
  let links = [ 0; 1; 2; 3; 4; 5 ] in
  let reports = consolidate_fixture ~links ~honest:[ 10; 11; 12 ] ~liars:[] ~truth in
  let consensus = Probe_sharing.consolidate reports in
  check Alcotest.int "every link judged" (List.length links) (List.length consensus);
  List.iter
    (fun c ->
      check Alcotest.bool
        (Printf.sprintf "link %d verdict is truth" c.Probe_sharing.link)
        (truth c.Probe_sharing.link) c.Probe_sharing.up;
      check Alcotest.bool "unanimous" true c.Probe_sharing.unanimous)
    consensus

let test_consolidate_single_liar_cannot_flip () =
  (* Regression: one liar among three members never flips any verdict,
     whichever way it lies. *)
  let truth link = link mod 2 = 0 in
  let links = [ 0; 1; 2; 3 ] in
  let reports = consolidate_fixture ~links ~honest:[ 0; 1 ] ~liars:[ 2 ] ~truth in
  List.iter
    (fun c ->
      check Alcotest.bool
        (Printf.sprintf "link %d verdict survives the liar" c.Probe_sharing.link)
        (truth c.Probe_sharing.link) c.Probe_sharing.up;
      check Alcotest.bool "dissent recorded" false c.Probe_sharing.unanimous)
    (Probe_sharing.consolidate reports)

let test_consolidate_stuffed_duplicates_collapse () =
  (* A liar stuffing corroborating copies of its lie still counts once:
     the verdict and the vote tally match the single-report case. *)
  let honest_reports =
    [
      { Probe_sharing.member = 0; link = 7; up = true };
      { Probe_sharing.member = 1; link = 7; up = true };
    ]
  in
  let stuffed =
    List.init 10 (fun _ -> { Probe_sharing.member = 2; link = 7; up = false })
  in
  match Probe_sharing.consolidate (honest_reports @ stuffed) with
  | [ c ] ->
      check Alcotest.bool "link stays up" true c.Probe_sharing.up;
      check Alcotest.int "one down vote" 1 c.Probe_sharing.down_votes;
      check Alcotest.int "two up votes" 2 c.Probe_sharing.up_votes
  | other -> Alcotest.failf "expected one consensus, got %d" (List.length other)

let test_consolidate_latest_report_wins () =
  (* A member that re-reports replaces its earlier vote instead of adding
     a second one. *)
  let reports =
    [
      { Probe_sharing.member = 0; link = 3; up = false };
      { Probe_sharing.member = 1; link = 3; up = true };
      { Probe_sharing.member = 0; link = 3; up = true };
    ]
  in
  match Probe_sharing.consolidate reports with
  | [ c ] ->
      check Alcotest.int "two up votes" 2 c.Probe_sharing.up_votes;
      check Alcotest.int "no down votes" 0 c.Probe_sharing.down_votes;
      check Alcotest.bool "unanimous after revision" true c.Probe_sharing.unanimous
  | other -> Alcotest.failf "expected one consensus, got %d" (List.length other)

let test_consolidate_tie_resolves_down () =
  let reports =
    [
      { Probe_sharing.member = 0; link = 9; up = true };
      { Probe_sharing.member = 1; link = 9; up = false };
    ]
  in
  match Probe_sharing.consolidate reports with
  | [ c ] -> check Alcotest.bool "tied link treated as suspect" false c.Probe_sharing.up
  | other -> Alcotest.failf "expected one consensus, got %d" (List.length other)

(* Property: with an honest majority, consolidation recovers the ground
   truth on every link for arbitrary member counts, liar minorities and
   truth assignments — even though the liars mutually corroborate. *)
let prop_consolidate_honest_majority_recovers =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"honest majority recovers truth" ~count:100
       QCheck.(int_range 0 1_000_000)
       (fun seed ->
         let rng = Prng.of_seed (Int64.of_int seed) in
         let members = 3 + Prng.int rng 7 in
         (* Strict minority of liars: liars <= (members - 1) / 2. *)
         let liar_count = Prng.int rng (((members - 1) / 2) + 1) in
         let liars = List.init liar_count (fun i -> i) in
         let honest = List.init (members - liar_count) (fun i -> liar_count + i) in
         let link_count = 1 + Prng.int rng 12 in
         let truth_bits = Array.init link_count (fun _ -> Prng.bool rng) in
         let truth link = truth_bits.(link) in
         let links = List.init link_count (fun i -> i) in
         let reports = consolidate_fixture ~links ~honest ~liars ~truth in
         List.for_all
           (fun c -> c.Probe_sharing.up = truth c.Probe_sharing.link)
           (Probe_sharing.consolidate reports)))

(* ---------- Snapshot diffs (Section 4.4) ---------- *)

let diff_fixture () =
  let pki = Pki.create ~seed:170L in
  let origin = Id.random (Prng.of_seed 171L) in
  let origin_cert, origin_secret = Pki.issue pki ~address:"o" ~node_id:(Id.to_hex origin) in
  let make_peer seed =
    let peer = Id.random (Prng.of_seed seed) in
    let cert, secret = Pki.issue pki ~address:"p" ~node_id:(Id.to_hex peer) in
    (peer, cert, secret)
  in
  let summary (peer, cert, secret) level now =
    {
      Snapshot.peer;
      loss_level = level;
      freshness = Freshness.issue ~holder:peer ~secret ~public:cert.Pki.subject_key ~now;
    }
  in
  let p1 = make_peer 172L and p2 = make_peer 173L and p3 = make_peer 174L in
  let snap summaries now =
    Snapshot.make ~origin ~secret:origin_secret ~public:origin_cert.Pki.subject_key ~now
      ~summaries
  in
  let before = snap [ summary p1 0 100.; summary p2 3 100. ] 100. in
  (* p1 unchanged (fresh stamp only), p2's loss level changed, p3 is new. *)
  let after = snap [ summary p1 0 200.; summary p2 7 200.; summary p3 1 200. ] 200. in
  (before, after)

let test_snapshot_diff () =
  let before, after = diff_fixture () in
  let changed = Snapshot.diff_entries ~previous:before ~current:after in
  check Alcotest.int "two changed entries" 2 (List.length changed);
  check Alcotest.bool "diff smaller than full" true
    (Snapshot.diff_wire_bytes ~previous:before ~current:after < Snapshot.wire_bytes after);
  (* Diff against itself carries no entries. *)
  check Alcotest.int "self diff empty" 0
    (List.length (Snapshot.diff_entries ~previous:after ~current:after))


(* Property: MINC recovers random per-chain loss rates on the fixture tree
   within sampling error, for arbitrary loss assignments. *)
let prop_minc_recovers_random_losses =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"MINC recovers random loss assignments" ~count:8
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let _, tree = fixture_tree () in
         let logical = Logical_tree.of_tree tree in
         let loss_rng = Prng.of_seed (Int64.of_int seed) in
         let losses = Hashtbl.create 8 in
         Array.iter
           (fun link -> Hashtbl.replace losses link (Prng.float loss_rng 0.25))
           (Tree.physical_links tree)
         |> ignore;
         let loss_of_link link = Hashtbl.find losses link in
         let rng = Prng.of_seed (Int64.of_int (seed + 1)) in
         let rounds = Probing.probe_rounds ~rng ~loss_of_link ~tree ~count:5000 () in
         let estimate = Minc.infer_from_rounds logical rounds in
         let ok = ref true in
         for node = 1 to Logical_tree.node_count logical - 1 do
           let chain = Logical_tree.chain logical node in
           let true_loss =
             1. -. Array.fold_left (fun acc l -> acc *. (1. -. loss_of_link l)) 1. chain
           in
           if abs_float (Minc.link_loss estimate node -. true_loss) > 0.06 then ok := false
         done;
         !ok))

(* Property: the single-sweep [Minc.infer] and the retained
   O(rounds * nodes * leaves) reference produce identical estimates on
   arbitrary random trees and ack matrices. Gamma comes from integer hit
   counts in both, so equality is exact, not approximate. *)
let prop_minc_matches_reference =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"MINC sweep matches reference oracle" ~count:40
       QCheck.(int_range 0 1_000_000)
       (fun seed ->
         let rng = Prng.of_seed (Int64.of_int seed) in
         (* Random rooted tree: router i > 0 hangs off a random earlier
            router, so parent indices always precede children. *)
         let n = 4 + Prng.int rng 37 in
         let b = Graph.Builder.create n in
         let has_child = Array.make n false in
         for i = 1 to n - 1 do
           let parent = Prng.int rng i in
           has_child.(parent) <- true;
           Graph.Builder.add_link b parent i
         done;
         let g = Graph.build b in
         let leaves =
           Array.of_list
             (List.filter (fun i -> not has_child.(i)) (List.init n (fun i -> i)))
         in
         let path target =
           match Routes.shortest_path g ~source:0 ~target with
           | Some p -> p
           | None -> invalid_arg "random tree is connected by construction"
         in
         let tree = Tree.of_paths ~root:0 ~paths:(Array.map path leaves) in
         let logical = Logical_tree.of_tree tree in
         let leaf_count = Logical_tree.leaf_count logical in
         let rounds = 1 + Prng.int rng 50 in
         let acked =
           Array.init rounds (fun _ -> Array.init leaf_count (fun _ -> Prng.bool rng))
         in
         let fast = Minc.infer logical ~acked in
         let reference = Minc.infer_reference logical ~acked in
         fast.Minc.gamma = reference.Minc.gamma
         && fast.Minc.path_success = reference.Minc.path_success
         && fast.Minc.link_success = reference.Minc.link_success))

let suites =
  [
    ( "tomography.tree",
      [
        Alcotest.test_case "structure" `Quick test_tree_structure;
        Alcotest.test_case "paths to leaves" `Quick test_tree_paths_to_leaves;
        Alcotest.test_case "shared prefixes deduplicated" `Quick test_tree_shared_prefix_dedup;
        Alcotest.test_case "rejects foreign paths" `Quick test_tree_rejects_foreign_path;
      ] );
    ( "tomography.logical_tree",
      [
        Alcotest.test_case "chain collapse" `Quick test_logical_collapse;
        Alcotest.test_case "descendant leaves" `Quick test_logical_descendants;
      ] );
    ( "tomography.probing",
      [
        Alcotest.test_case "striping shares fate" `Quick test_probe_round_shared_fate;
        Alcotest.test_case "perfect network" `Quick test_probe_round_perfect_network;
        Alcotest.test_case "ack suppression" `Quick test_suppressing_leaf;
        Alcotest.test_case "nonce catches forged acks" `Quick test_spurious_leaf_caught_by_nonce;
        Alcotest.test_case "lightweight classification" `Quick test_classify_round;
      ] );
    ( "tomography.minc",
      [
        prop_minc_recovers_random_losses;
        prop_minc_matches_reference;
        Alcotest.test_case "lossless tree" `Quick test_minc_lossless;
        Alcotest.test_case "recovers a lossy interior link" `Quick test_minc_recovers_lossy_link;
        Alcotest.test_case "suspect link extraction" `Quick test_minc_suspect_links;
        Alcotest.test_case "rejects empty input" `Quick test_minc_rejects_empty;
      ] );
    ( "tomography.observation",
      [ Alcotest.test_case "window queries and pruning" `Quick test_observation_window_queries ]
    );
    ( "tomography.snapshot",
      [
        Alcotest.test_case "sign and verify" `Quick test_snapshot_sign_verify;
        Alcotest.test_case "loss quantization" `Quick test_snapshot_quantization;
        Alcotest.test_case "wire size model" `Quick test_snapshot_wire_size;
      ] );
    ( "tomography.probe_sharing",
      [
        Alcotest.test_case "amortization" `Quick test_probe_sharing_amortization;
        Alcotest.test_case "zero adversaries: verdicts exact" `Quick
          test_consolidate_zero_adversary_perfect;
        Alcotest.test_case "single liar cannot flip" `Quick
          test_consolidate_single_liar_cannot_flip;
        Alcotest.test_case "stuffed duplicates collapse" `Quick
          test_consolidate_stuffed_duplicates_collapse;
        Alcotest.test_case "latest report wins" `Quick test_consolidate_latest_report_wins;
        Alcotest.test_case "ties resolve down" `Quick test_consolidate_tie_resolves_down;
        prop_consolidate_honest_majority_recovers;
      ] );
    ( "tomography.snapshot_diff",
      [ Alcotest.test_case "incremental advertisements" `Quick test_snapshot_diff ] );
    ( "tomography.feedback_verify",
      [
        Alcotest.test_case "flags a suppressing leaf" `Quick test_feedback_flags_suppressor;
        Alcotest.test_case "flags colluding suppressors" `Quick
          test_feedback_flags_colluding_suppressors;
        Alcotest.test_case "accepts honest leaves" `Quick test_feedback_accepts_honest_world;
      ] );
  ]

