module Bitset = Concilium_util.Bitset
module Sorted = Concilium_util.Sorted

(* A fixed identifier universe with a mutable alive set.

   Million-node worlds keep the full sorted id universe immutable for a
   whole run; churn only flips alive bits. Universe positions are therefore
   stable dense ints — the node ids of the flat-array simulator core — and
   neighbour lookups are bitset byte-scans instead of ordered-set surgery. *)

type t = { ids : Id.t array; alive : Bitset.t; mutable alive_count : int }

let validate_sorted ids =
  for i = 1 to Array.length ids - 1 do
    if Id.compare ids.(i - 1) ids.(i) >= 0 then
      invalid_arg "Ring: ids must be strictly ascending"
  done

let of_sorted_ids ids =
  validate_sorted ids;
  let n = Array.length ids in
  let alive = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.add alive i
  done;
  { ids; alive; alive_count = n }

let of_ids ids =
  let sorted = Array.copy ids in
  Array.sort Id.compare sorted;
  of_sorted_ids sorted

let size t = Array.length t.ids
let alive_count t = t.alive_count
let id t i = t.ids.(i)
let is_alive t i = Bitset.mem t.alive i

let position_of_id t target =
  let i = Sorted.lower_bound Id.compare t.ids target in
  if i < size t && Id.equal t.ids.(i) target then Some i else None

let insertion_point t target = Sorted.lower_bound Id.compare t.ids target

let set_alive t i =
  if not (Bitset.mem t.alive i) then begin
    Bitset.add t.alive i;
    t.alive_count <- t.alive_count + 1
  end

let set_dead t i =
  if Bitset.mem t.alive i then begin
    Bitset.remove t.alive i;
    t.alive_count <- t.alive_count - 1
  end

(* ---------- Alive scans ---------- *)

(* First alive position in [lo, hi], or -1. *)
let next_alive_in t lo hi =
  if lo > hi then -1
  else begin
    let p = Bitset.next_member t.alive (max lo 0) in
    if p >= 0 && p <= hi then p else -1
  end

(* Last alive position in [lo, hi], or -1. *)
let prev_alive_in t lo hi =
  if lo > hi then -1
  else begin
    let p = Bitset.prev_member t.alive (min hi (size t - 1)) in
    if p >= lo then p else -1
  end

(* First alive position at or after [i], wrapping; -1 when nothing alive. *)
let next_alive_cyclic_from t i =
  let n = size t in
  if n = 0 || t.alive_count = 0 then -1
  else begin
    let i = if i >= n then 0 else max i 0 in
    let p = next_alive_in t i (n - 1) in
    if p >= 0 then p else next_alive_in t 0 (i - 1)
  end

(* First alive position strictly after [i] on the ring, excluding [i]
   itself; -1 when [i] is the only alive node (or none are). *)
let next_alive_cyclic t i =
  let n = size t in
  let p = next_alive_in t (i + 1) (n - 1) in
  if p >= 0 then p
  else begin
    let p = next_alive_in t 0 (i - 1) in
    p
  end

let prev_alive_cyclic t i =
  let n = size t in
  let p = prev_alive_in t 0 (i - 1) in
  if p >= 0 then p else prev_alive_in t (i + 1) (n - 1)

(* ---------- Prefix subranges ---------- *)

(* Positions whose ids share the first [digits_shared] digits of [anchor]:
   a half-open [lo, hi) slice of the sorted universe. *)
let prefix_range t anchor ~digits_shared =
  if digits_shared = 0 then (0, size t)
  else begin
    let lo_id, hi_id = Id.prefix_bounds anchor ~digits_shared in
    let lo = Sorted.lower_bound Id.compare t.ids lo_id in
    let hi = Sorted.upper_bound Id.compare t.ids hi_id in
    (lo, hi)
  end
