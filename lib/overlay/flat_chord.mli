(** Chord routing over a {!Ring} universe with no per-node stored state:
    successors and fingers are derived on demand from the sorted universe
    and the alive bitset, so churn maintenance is a bitset flip and routes
    still take O(log n) hops. *)

type t

val create : Ring.t -> t
val ring : t -> Ring.t

val owner_of_key : t -> Id.t -> int
(** First alive position at or after the key clockwise (the key's owner),
    or -1 when nothing is alive. *)

val successor : t -> int -> int
(** First alive position strictly after the argument, or -1. *)

val next_hop : t -> here:int -> dest:Id.t -> int option
(** Greedy Chord forwarding: the largest power-of-two finger jump that
    stays within (here, dest], else the successor. [None] on arrival. *)

val route : t -> src:int -> dest:Id.t -> int * int * int64
(** (final position, hop count, FNV digest of the hop sequence). *)
