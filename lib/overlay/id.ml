module Prng = Concilium_util.Prng

(* Representation: 16-byte big-endian string; each byte holds two hex
   digits. Immutability of [string] makes identifiers safely shareable. *)
type t = string

let bytes_len = 16
let digits = 32
let base = 16
let zero = String.make bytes_len '\000'

let random rng =
  String.init bytes_len (fun _ -> Char.chr (Prng.int rng 256))

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Id.of_hex: invalid hex character"

let of_hex s =
  if String.length s <> digits then invalid_arg "Id.of_hex: expected 32 hex digits";
  String.init bytes_len (fun i ->
      Char.chr ((hex_value s.[2 * i] lsl 4) lor hex_value s.[(2 * i) + 1]))

let to_hex t =
  let buffer = Buffer.create digits in
  String.iter (fun c -> Buffer.add_string buffer (Printf.sprintf "%02x" (Char.code c))) t;
  Buffer.contents buffer

let of_name name = String.sub (Concilium_crypto.Sha256.digest ("id|" ^ name)) 0 bytes_len

let compare = String.compare
let equal = String.equal

let digit t i =
  if i < 0 || i >= digits then invalid_arg "Id.digit: index out of range";
  let byte = Char.code t.[i / 2] in
  if i mod 2 = 0 then byte lsr 4 else byte land 0xF

let with_digit t i d =
  if i < 0 || i >= digits then invalid_arg "Id.with_digit: index out of range";
  if d < 0 || d >= base then invalid_arg "Id.with_digit: digit out of range";
  let bytes = Bytes.of_string t in
  let byte = Char.code t.[i / 2] in
  let updated = if i mod 2 = 0 then (d lsl 4) lor (byte land 0xF) else (byte land 0xF0) lor d in
  Bytes.set bytes (i / 2) (Char.chr updated);
  Bytes.to_string bytes

let shared_prefix_length a b =
  let rec loop i = if i >= digits || digit a i <> digit b i then i else loop (i + 1) in
  loop 0

(* (b - a) mod 2^128, byte-wise subtraction with borrow. *)
let clockwise_distance a b =
  let out = Bytes.create bytes_len in
  let borrow = ref 0 in
  for i = bytes_len - 1 downto 0 do
    let diff = Char.code b.[i] - Char.code a.[i] - !borrow in
    if diff < 0 then begin
      Bytes.set out i (Char.chr (diff + 256));
      borrow := 1
    end
    else begin
      Bytes.set out i (Char.chr diff);
      borrow := 0
    end
  done;
  Bytes.to_string out

let ring_distance a b =
  let forward = clockwise_distance a b in
  let backward = clockwise_distance b a in
  if String.compare forward backward <= 0 then forward else backward

let to_float t =
  let acc = ref 0. in
  String.iter (fun c -> acc := (!acc *. 256.) +. float_of_int (Char.code c)) t;
  !acc

let ring_size_float = 2. ** 128.

let succ t =
  let bytes = Bytes.of_string t in
  let rec carry i =
    if i < 0 then ()
    else begin
      let v = Char.code (Bytes.get bytes i) + 1 in
      if v = 256 then begin
        Bytes.set bytes i '\000';
        carry (i - 1)
      end
      else Bytes.set bytes i (Char.chr v)
    end
  in
  carry (bytes_len - 1);
  Bytes.to_string bytes

let add_power_of_two t k =
  if k < 0 || k >= 128 then invalid_arg "Id.add_power_of_two: exponent out of range";
  let byte_index = bytes_len - 1 - (k / 8) in
  let increment = 1 lsl (k mod 8) in
  let bytes = Bytes.of_string t in
  let rec carry i add =
    if i < 0 || add = 0 then ()
    else begin
      let v = Char.code (Bytes.get bytes i) + add in
      Bytes.set bytes i (Char.chr (v land 0xFF));
      carry (i - 1) (v lsr 8)
    end
  in
  carry byte_index increment;
  Bytes.to_string bytes

(* floor((a + b) / 2) over the plain 128-bit integers (no ring wrap): the
   129-bit sum is formed byte-wise, then shifted right one bit. Used as the
   Voronoi boundary between adjacent routing-table candidates: for x <= y
   a point p prefers x exactly when p <= midpoint x y. *)
let midpoint a b =
  let sum = Array.make (bytes_len + 1) 0 in
  let carry = ref 0 in
  for i = bytes_len - 1 downto 0 do
    let s = Char.code a.[i] + Char.code b.[i] + !carry in
    sum.(i + 1) <- s land 0xFF;
    carry := s lsr 8
  done;
  sum.(0) <- !carry;
  String.init bytes_len (fun i ->
      Char.chr (((sum.(i) land 1) lsl 7) lor (sum.(i + 1) lsr 1)))

(* compare (with_digit a index d) b without materialising the substituted
   identifier — the routing-table sweep calls this in an O(n * digits) inner
   loop, so it must not allocate. *)
let compare_substituted a ~index ~digit b =
  if index < 0 || index >= digits then invalid_arg "Id.compare_substituted: index out of range";
  if digit < 0 || digit >= base then invalid_arg "Id.compare_substituted: digit out of range";
  let byte_index = index / 2 in
  let rec loop i =
    if i >= bytes_len then 0
    else begin
      let av =
        let raw = Char.code a.[i] in
        if i <> byte_index then raw
        else if index land 1 = 0 then (digit lsl 4) lor (raw land 0xF)
        else (raw land 0xF0) lor digit
      in
      let bv = Char.code b.[i] in
      if av <> bv then Int.compare av bv else loop (i + 1)
    end
  in
  loop 0

(* Smallest and largest identifiers sharing the first [digits_shared] digits
   of [t]: the suffix digits are filled with 0 / base-1 respectively. *)
let prefix_bounds t ~digits_shared =
  if digits_shared < 0 || digits_shared > digits then
    invalid_arg "Id.prefix_bounds: prefix length out of range";
  let lo = Bytes.make bytes_len '\000' in
  let hi = Bytes.make bytes_len '\255' in
  let full = digits_shared / 2 in
  Bytes.blit_string t 0 lo 0 full;
  Bytes.blit_string t 0 hi 0 full;
  if digits_shared land 1 = 1 then begin
    let high_nibble = Char.code t.[full] land 0xF0 in
    Bytes.set lo full (Char.chr high_nibble);
    Bytes.set hi full (Char.chr (high_nibble lor 0xF))
  end;
  (Bytes.to_string lo, Bytes.to_string hi)

(* Index of the highest set bit (0..127), or -1 for zero. *)
let floor_log2 t =
  let rec find i = if i >= bytes_len then -1 else if t.[i] <> '\000' then i else find (i + 1) in
  match find 0 with
  | -1 -> -1
  | i ->
      let v = Char.code t.[i] in
      let rec top b = if v lsr b <> 0 then b else top (b - 1) in
      ((bytes_len - 1 - i) * 8) + top 7

let in_clockwise_interval x ~lo ~hi =
  if equal lo hi then false
  else begin
    let to_x = clockwise_distance lo x in
    let to_hi = clockwise_distance lo hi in
    String.compare to_x to_hi < 0
  end

let pp fmt t = Format.pp_print_string fmt (to_hex t)
