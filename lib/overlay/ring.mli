(** Fixed identifier universe with a mutable alive set.

    Scale worlds keep the full sorted id universe immutable for a run;
    churn only flips alive bits. Universe positions are therefore stable
    dense ints — the node ids of the flat-array simulator core — and
    neighbour lookups are bitset byte-scans. *)

type t

val of_sorted_ids : Id.t array -> t
(** All positions initially alive. @raise Invalid_argument unless the ids
    are strictly ascending. The array is owned by the ring afterwards. *)

val of_ids : Id.t array -> t
(** Sorts a copy. @raise Invalid_argument on duplicate ids. *)

val size : t -> int
val alive_count : t -> int
val id : t -> int -> Id.t
val is_alive : t -> int -> bool

val position_of_id : t -> Id.t -> int option

val insertion_point : t -> Id.t -> int
(** First position whose id is [>=] the key (= [size] when none). *)

val set_alive : t -> int -> unit
val set_dead : t -> int -> unit
(** Idempotent. *)

val next_alive_in : t -> int -> int -> int
(** [next_alive_in t lo hi]: first alive position in [lo, hi], or -1. *)

val prev_alive_in : t -> int -> int -> int
(** Last alive position in [lo, hi], or -1. *)

val next_alive_cyclic_from : t -> int -> int
(** First alive position at or after the argument, wrapping; -1 when
    nothing is alive. *)

val next_alive_cyclic : t -> int -> int
(** First alive position strictly after the argument on the ring (itself
    excluded); -1 when no other node is alive. *)

val prev_alive_cyclic : t -> int -> int

val prefix_range : t -> Id.t -> digits_shared:int -> int * int
(** Half-open [lo, hi) slice of positions whose ids share the anchor's
    first [digits_shared] digits. *)
