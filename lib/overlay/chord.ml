module Sorted = Concilium_util.Sorted
module Prng = Concilium_util.Prng
module Poisson_binomial = Concilium_stats.Poisson_binomial

type entry = { peer : Id.t; node : int }

type node = {
  index : int;
  id : Id.t;
  successors : entry array;
  fingers : entry option array;
}

type t = {
  nodes : node array;
  sorted : (Id.t * int) array;
  (* Per node: its distinct finger/successor targets sorted by clockwise
     distance from it ([jump_dists] ascending, [jump_nodes] parallel), so
     "closest preceding candidate" is a binary search, not a 136-entry
     scan. *)
  jump_nodes : int array array;
  jump_dists : Id.t array array;
}
type style = Secure | Standard of Prng.t

let finger_count = 128

let compare_fst (a, _) (b, _) = Id.compare a b

(* First node clockwise at-or-after [key] in the sorted ring. *)
let successor_position sorted key =
  let position = Sorted.lower_bound compare_fst sorted (key, 0) in
  if position >= Array.length sorted then 0 else position

let build ?(successor_count = 8) ?(style = Secure) ids =
  let n = Array.length ids in
  if n < 2 then invalid_arg "Chord.build: need at least two nodes";
  let sorted = Array.mapi (fun index id -> (id, index)) ids in
  Array.sort compare_fst sorted;
  for i = 1 to n - 1 do
    if Id.equal (fst sorted.(i - 1)) (fst sorted.(i)) then
      invalid_arg "Chord.build: duplicate identifier"
  done;
  let entry_at ring_position =
    let id, node = sorted.(((ring_position mod n) + n) mod n) in
    { peer = id; node }
  in
  let nodes =
    Array.mapi
      (fun index id ->
        let my_position = successor_position sorted id in
        (* [my_position] is this node itself (ids are unique). *)
        let successors =
          Array.init (min successor_count (n - 1)) (fun k -> entry_at (my_position + k + 1))
        in
        let fingers =
          Array.init finger_count (fun k ->
              let target = Id.add_power_of_two id k in
              let upper =
                if k = finger_count - 1 then id else Id.add_power_of_two id (k + 1)
              in
              match style with
              | Secure ->
                  (* The unique first node clockwise of the target, kept
                     only if it falls inside the finger's own interval
                     (otherwise the interval is empty). *)
                  let candidate = entry_at (successor_position sorted target) in
                  if
                    (not (Id.equal candidate.peer id))
                    && Id.in_clockwise_interval candidate.peer ~lo:target ~hi:upper
                  then Some candidate
                  else None
              | Standard rng ->
                  (* Any node inside the interval qualifies. *)
                  let lo = successor_position sorted target in
                  let in_interval position =
                    let id_at = fst sorted.(position mod n) in
                    Id.in_clockwise_interval id_at ~lo:target ~hi:upper
                  in
                  let rec count_qualifying k =
                    if k >= n then k
                    else if in_interval (lo + k) then count_qualifying (k + 1)
                    else k
                  in
                  let qualifying = count_qualifying 0 in
                  if qualifying = 0 then None
                  else begin
                    let candidate = entry_at (lo + Prng.int rng qualifying) in
                    if Id.equal candidate.peer id then None else Some candidate
                  end)
        in
        { index; id; successors; fingers })
      ids
  in
  let jumps_of node =
    let acc = ref [] in
    let consider (e : entry) =
      if not (Id.equal e.peer node.id) then
        acc := (Id.clockwise_distance node.id e.peer, e.node) :: !acc
    in
    Array.iter consider node.successors;
    Array.iter (fun finger -> Option.iter consider finger) node.fingers;
    let ordered = List.sort (fun (a, _) (b, _) -> Id.compare a b) !acc in
    (* Equal distance = same peer (ids are unique): drop duplicates. *)
    let rec dedup = function
      | (a, x) :: (b, _) :: rest when Id.equal a b -> dedup ((a, x) :: rest)
      | pair :: rest -> pair :: dedup rest
      | [] -> []
    in
    let deduped = dedup ordered in
    (Array.of_list (List.map snd deduped), Array.of_list (List.map fst deduped))
  in
  let jump_nodes = Array.make n [||] and jump_dists = Array.make n [||] in
  Array.iteri
    (fun i node ->
      let nodes, dists = jumps_of node in
      jump_nodes.(i) <- nodes;
      jump_dists.(i) <- dists)
    nodes;
  { nodes; sorted; jump_nodes; jump_dists }

let node_count t = Array.length t.nodes
let node t i = t.nodes.(i)

let successor_of_key t key = snd t.sorted.(successor_position t.sorted key)

(* Retained linear-scan forwarding: the reference the O(log n) [next_hop]
   is property-tested (and benchmarked) against. *)
let next_hop_reference t ~from ~dest =
  let here = t.nodes.(from) in
  if Id.equal here.id dest then None
  else begin
    let immediate = here.successors.(0) in
    (* dest in (here, successor]: the successor owns it. *)
    if
      Id.in_clockwise_interval dest ~lo:(Id.succ here.id) ~hi:(Id.succ immediate.peer)
      || Id.equal dest immediate.peer
    then if immediate.node = from then None else Some immediate.node
    else begin
      (* Closest preceding finger or successor: maximise clockwise distance
         from here while staying strictly before dest. *)
      let best = ref None in
      let consider (candidate : entry) =
        if
          (not (Id.equal candidate.peer here.id))
          && Id.in_clockwise_interval candidate.peer ~lo:(Id.succ here.id) ~hi:dest
        then begin
          let progress = Id.clockwise_distance here.id candidate.peer in
          match !best with
          | Some (_, best_progress) when Id.compare progress best_progress <= 0 -> ()
          | _ -> best := Some (candidate.node, progress)
        end
      in
      Array.iter (fun finger -> Option.iter consider finger) here.fingers;
      Array.iter consider here.successors;
      match !best with
      | Some (node, _) -> Some node
      | None ->
          (* Fall back on the immediate successor: guaranteed progress. *)
          if immediate.node = from then None else Some immediate.node
    end
  end

let next_hop t ~from ~dest =
  let here = t.nodes.(from) in
  if Id.equal here.id dest then None
  else begin
    let immediate = here.successors.(0) in
    if
      Id.in_clockwise_interval dest ~lo:(Id.succ here.id) ~hi:(Id.succ immediate.peer)
      || Id.equal dest immediate.peer
    then if immediate.node = from then None else Some immediate.node
    else begin
      (* A candidate qualifies iff its clockwise distance from here is
         strictly below dest's, and the winner maximises that distance —
         i.e. the last jump-table entry below [d_dest], found by binary
         search. Big-endian distance strings compare as unsigned ints, so
         Id.compare is the right order. *)
      let dists = t.jump_dists.(from) and nodes = t.jump_nodes.(from) in
      let d_dest = Id.clockwise_distance here.id dest in
      let a = ref 0 and b = ref (Array.length dists) in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if Id.compare dists.(mid) d_dest >= 0 then b := mid else a := mid + 1
      done;
      if !a > 0 then Some nodes.(!a - 1)
      else if immediate.node = from then None
      else Some immediate.node
    end
  end

let route t ~from ~dest =
  let owner = successor_of_key t dest in
  let limit = (2 * finger_count) + Array.length t.nodes in
  let rec loop current acc remaining =
    if current = owner then List.rev (current :: acc)
    else if remaining = 0 then failwith "Chord.route: forwarding did not converge"
    else begin
      match next_hop t ~from:current ~dest with
      | None -> List.rev (current :: acc)
      | Some next -> loop next (current :: acc) (remaining - 1)
    end
  in
  loop from [] limit

let interval_occupancy node =
  Array.fold_left (fun acc f -> match f with Some _ -> acc + 1 | None -> acc) 0 node.fingers

let mean_route_length t ~trials ~rng =
  let total = ref 0 in
  for _ = 1 to trials do
    let from = Prng.int rng (node_count t) in
    let dest = Id.random rng in
    total := !total + (List.length (route t ~from ~dest) - 1)
  done;
  float_of_int !total /. float_of_int trials

module Model = struct
  let interval_probability ~n ~index =
    if n < 1 then invalid_arg "Chord.Model.interval_probability: n must be >= 1";
    if index < 0 || index >= finger_count then
      invalid_arg "Chord.Model.interval_probability: index out of range";
    (* Interval k spans 2^k of the 2^128 ring: a uniformly random other node
       lands in it with probability 2^(k-128). *)
    let p_interval = 2. ** float_of_int (index - finger_count) in
    -.Float.expm1 (float_of_int (n - 1) *. Float.log1p (-.p_interval))

  let occupancy_model ~n =
    Poisson_binomial.of_probabilities
      (Array.init finger_count (fun index -> interval_probability ~n ~index))

  let expected_occupancy ~n = (occupancy_model ~n).Poisson_binomial.mu_phi

  let monte_carlo_occupancy ~rng ~n ~trials =
    Array.init trials (fun _ ->
        let ids = Array.init n (fun _ -> Id.random rng) in
        let overlay = build ~successor_count:4 ids in
        let sample = node overlay (Prng.int rng n) in
        float_of_int (interval_occupancy sample) /. float_of_int finger_count)
end
