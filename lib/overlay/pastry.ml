module Sorted = Concilium_util.Sorted
module Prng = Concilium_util.Prng

type node = {
  index : int;
  id : Id.t;
  leaf_set : Leaf_set.t;
  table : Routing_table.t;
}

type t = { nodes : node array; sorted : (Id.t * int) array; leaf_half : int }
type table_style = Secure | Standard of Prng.t

let compare_fst (a, _) (b, _) = Id.compare a b

let build ?(leaf_half_size = 8) ?(style = Secure) ids =
  let n = Array.length ids in
  if n < 2 then invalid_arg "Pastry.build: need at least two nodes";
  let sorted = Array.mapi (fun index id -> (id, index)) ids in
  Array.sort compare_fst sorted;
  for i = 1 to n - 1 do
    if Id.equal (fst sorted.(i - 1)) (fst sorted.(i)) then
      invalid_arg "Pastry.build: duplicate identifier"
  done;
  let sorted_ids = Array.map fst sorted in
  let nodes =
    Array.mapi
      (fun index id ->
        let leaf_set = Leaf_set.build ~owner:id ~sorted_ids ~half_size:leaf_half_size in
        let table =
          match style with
          | Secure -> Routing_table.build_secure ~owner:id ~sorted
          | Standard rng -> Routing_table.build_standard ~owner:id ~sorted ~rng
        in
        { index; id; leaf_set; table })
      ids
  in
  { nodes; sorted; leaf_half = leaf_half_size }

let node_count t = Array.length t.nodes
let node t i = t.nodes.(i)
let leaf_half_size t = t.leaf_half

let index_of_id t id =
  let position = Sorted.lower_bound compare_fst t.sorted (id, 0) in
  if position < Array.length t.sorted && Id.equal (fst t.sorted.(position)) id then
    Some (snd t.sorted.(position))
  else None

let index_of_id_exn t id =
  match index_of_id t id with
  | Some i -> i
  | None -> invalid_arg "Pastry: unknown identifier"

let numerically_closest t key =
  let n = Array.length t.sorted in
  let position = Sorted.lower_bound compare_fst t.sorted (key, 0) in
  let best = ref None in
  let consider raw =
    let index = ((raw mod n) + n) mod n in
    let id, node_index = t.sorted.(index) in
    let d = Id.ring_distance id key in
    match !best with
    | Some (_, best_d) when Id.compare d best_d >= 0 -> ()
    | _ -> best := Some (node_index, d)
  in
  consider position;
  consider (position - 1);
  consider (position + 1);
  (* [t.sorted] is non-empty (create rejects empty rings), so at least one
     candidate was considered.  lint: allow assert-false *)
  match !best with Some (i, _) -> i | None -> assert false

let next_hop t ~from ~dest =
  let here = t.nodes.(from) in
  if Id.equal here.id dest then None
  else if Leaf_set.covers here.leaf_set dest then begin
    let closest = Leaf_set.closest_member here.leaf_set dest in
    if Id.equal closest here.id then None else Some (index_of_id_exn t closest)
  end
  else begin
    match Routing_table.next_hop here.table ~dest with
    | Some entry -> Some entry.Routing_table.node
    | None ->
        (* Rare fallback: any known peer that is strictly closer to the key
           and shares at least as long a prefix (standard Pastry rule). *)
        let here_shared = Id.shared_prefix_length here.id dest in
        let here_distance = Id.ring_distance here.id dest in
        let best = ref None in
        let consider id =
          if (not (Id.equal id here.id))
             && Id.shared_prefix_length id dest >= here_shared
             && Id.compare (Id.ring_distance id dest) here_distance < 0
          then begin
            let d = Id.ring_distance id dest in
            match !best with
            | Some (_, best_d) when Id.compare d best_d >= 0 -> ()
            | _ -> best := Some (id, d)
          end
        in
        List.iter consider (Leaf_set.members here.leaf_set);
        Routing_table.iter
          (fun ~row:_ ~col:_ entry ->
            match entry with Some e -> consider e.Routing_table.peer | None -> ())
          here.table;
        Option.map (fun (id, _) -> index_of_id_exn t id) !best
  end

let route t ~from ~dest =
  let limit = (2 * Id.digits) + (4 * t.leaf_half) in
  let rec loop current acc remaining =
    if remaining = 0 then failwith "Pastry.route: forwarding did not converge"
    else begin
      match next_hop t ~from:current ~dest with
      | None -> List.rev (current :: acc)
      | Some next -> loop next (current :: acc) (remaining - 1)
    end
  in
  loop from [] limit

let routing_peers t index =
  let here = t.nodes.(index) in
  let seen = Concilium_util.Bitset.create (Array.length t.nodes) in
  let add node_index = if node_index <> index then Concilium_util.Bitset.add seen node_index in
  Routing_table.iter
    (fun ~row:_ ~col:_ entry ->
      match entry with Some e -> add e.Routing_table.node | None -> ())
    here.table;
  List.iter (fun id -> add (index_of_id_exn t id)) (Leaf_set.members here.leaf_set);
  let out = Array.make (Concilium_util.Bitset.cardinal seen) 0 in
  let k = ref 0 in
  (* Bitset iteration is ascending: the output arrives sorted. *)
  Concilium_util.Bitset.iter
    (fun peer ->
      out.(!k) <- peer;
      incr k)
    seen;
  out

let mean_routing_peer_count t =
  let total = ref 0 in
  for i = 0 to node_count t - 1 do
    total := !total + Array.length (routing_peers t i)
  done;
  float_of_int !total /. float_of_int (node_count t)

(* ---------- Dynamic membership ---------- *)

let refresh_leaf_sets_near t nodes sorted ~ring_position =
  (* Only nodes within a leaf-set radius of the touched ring position can
     see their membership change; rebuild theirs from the new ring. *)
  let n = Array.length sorted in
  let sorted_ids = Array.map fst sorted in
  let radius = t.leaf_half + 1 in
  for offset = -radius to radius do
    let index = (((ring_position + offset) mod n) + n) mod n in
    let _, node_index = sorted.(index) in
    let node = nodes.(node_index) in
    nodes.(node_index) <-
      {
        node with
        leaf_set = Leaf_set.build ~owner:node.id ~sorted_ids ~half_size:t.leaf_half;
      }
  done

let add_node t id =
  if index_of_id t id <> None then invalid_arg "Pastry.add_node: duplicate identifier";
  let n = node_count t in
  let sorted = Array.make (n + 1) (id, n) in
  Array.blit t.sorted 0 sorted 0 n;
  Array.sort compare_fst sorted;
  let sorted_ids = Array.map fst sorted in
  (* The newcomer builds its own full state. *)
  let newcomer =
    {
      index = n;
      id;
      leaf_set = Leaf_set.build ~owner:id ~sorted_ids ~half_size:t.leaf_half;
      table = Routing_table.build_secure ~owner:id ~sorted;
    }
  in
  (* Copy node records and tables so the original overlay stays intact. *)
  let nodes =
    Array.append
      (Array.map (fun node -> { node with table = Routing_table.copy node.table }) t.nodes)
      [| newcomer |]
  in
  (* Each existing node checks every constrained slot the newcomer
     qualifies for: in each row up to the shared prefix length, the column
     of the newcomer's digit there (the owner's own digit for rows below
     the first differing one). *)
  for v = 0 to n - 1 do
    let node = nodes.(v) in
    let shared = Id.shared_prefix_length node.id id in
    for row = 0 to min shared (Routing_table.rows - 1) do
      let col = Id.digit id row in
      let point = Id.with_digit node.id row col in
      let replace =
        match Routing_table.get node.table ~row ~col with
        | None -> true
        | Some current ->
            let challenger = Id.ring_distance id point in
            let incumbent = Id.ring_distance current.Routing_table.peer point in
            let c = Id.compare challenger incumbent in
            c < 0 || (c = 0 && Id.compare id current.Routing_table.peer < 0)
      in
      if replace then
        Routing_table.set node.table ~row ~col (Some { Routing_table.peer = id; node = n })
    done
  done;
  let updated = { t with nodes; sorted } in
  let ring_position = Sorted.lower_bound compare_fst sorted (id, 0) in
  refresh_leaf_sets_near updated nodes sorted ~ring_position;
  updated

let remove_node t id =
  let departed =
    match index_of_id t id with
    | Some index -> index
    | None -> invalid_arg "Pastry.remove_node: unknown identifier"
  in
  let n = node_count t in
  if n <= 2 then invalid_arg "Pastry.remove_node: overlay would collapse";
  (* Surviving nodes keep their relative order; indices above shift down. *)
  let remap v = if v < departed then v else v - 1 in
  let survivors =
    Array.of_list
      (List.filteri (fun v _ -> v <> departed) (Array.to_list t.nodes))
  in
  let sorted =
    Array.of_list
      (List.filter_map
         (fun (node_id, v) -> if v = departed then None else Some (node_id, remap v))
         (Array.to_list t.sorted))
  in
  let sorted_ids = Array.map fst sorted in
  let nodes =
    Array.map
      (fun node ->
        let table = Routing_table.create_empty ~owner:node.id in
        (* Copy entries, re-resolving any slot that referenced the departed
           node against the surviving ring. *)
        Routing_table.iter
          (fun ~row ~col entry ->
            match entry with
            | None -> ()
            | Some e when Id.equal e.Routing_table.peer id ->
                let point = Id.with_digit node.id row col in
                let lo =
                  let rec fill p i =
                    if i >= Id.digits then p else fill (Id.with_digit p i 0) (i + 1)
                  in
                  fill point (row + 1)
                in
                let hi =
                  let rec fill p i =
                    if i >= Id.digits then p else fill (Id.with_digit p i (Id.base - 1)) (i + 1)
                  in
                  fill point (row + 1)
                in
                let lo_pos = Sorted.lower_bound compare_fst sorted (lo, 0) in
                let hi_pos = Sorted.upper_bound compare_fst sorted (hi, 0) in
                let best = ref None in
                for position = lo_pos to hi_pos - 1 do
                  let candidate_id, candidate_index = sorted.(position) in
                  if not (Id.equal candidate_id node.id) then begin
                    let d = Id.ring_distance candidate_id point in
                    match !best with
                    | Some (_, _, best_d)
                      when Id.compare d best_d > 0
                           || (Id.compare d best_d = 0
                              &&
                              match !best with
                              | Some (b_id, _, _) -> Id.compare candidate_id b_id >= 0
                              | None -> false) ->
                        ()
                    | _ -> best := Some (candidate_id, candidate_index, d)
                  end
                done;
                Routing_table.set table ~row ~col
                  (Option.map
                     (fun (peer, node_index, _) -> { Routing_table.peer; node = node_index })
                     !best)
            | Some e ->
                Routing_table.set table ~row ~col
                  (Some { e with Routing_table.node = remap e.Routing_table.node }))
          node.table;
        {
          index = remap node.index;
          id = node.id;
          leaf_set = node.leaf_set;
          table;
        })
      survivors
  in
  let updated = { t with nodes; sorted } in
  (* Leaf sets around the vacated ring position must be rebuilt. *)
  let ring_position = Sorted.lower_bound compare_fst sorted (id, 0) in
  let m = Array.length sorted in
  let sorted_ids = sorted_ids in
  let radius = t.leaf_half + 1 in
  for offset = -radius to radius do
    let index = (((ring_position + offset) mod m) + m) mod m in
    let _, node_index = sorted.(index) in
    let node = nodes.(node_index) in
    nodes.(node_index) <-
      {
        node with
        leaf_set = Leaf_set.build ~owner:node.id ~sorted_ids ~half_size:t.leaf_half;
      }
  done;
  updated

(* ---------- Sanctioned routing ---------- *)

let route_avoiding t ~from ~dest ~avoid =
  let root = numerically_closest t dest in
  let limit = (4 * Id.digits) + (8 * t.leaf_half) in
  let next_allowed current =
    let here = t.nodes.(current) in
    let here_distance = Id.ring_distance here.id dest in
    (* Best known peer strictly closer to the key and not avoided; prefer
       longer shared prefixes, then smaller ring distance (standard Pastry
       progress metric, restricted to the allowed set). *)
    let best = ref None in
    let consider id =
      match index_of_id t id with
      | None -> ()
      | Some index ->
          if (not (Id.equal id here.id)) && (index = root || not (avoid index)) then begin
            let d = Id.ring_distance id dest in
            if Id.compare d here_distance < 0 then begin
              let shared = Id.shared_prefix_length id dest in
              match !best with
              | Some (_, best_shared, best_d)
                when best_shared > shared
                     || (best_shared = shared && Id.compare best_d d <= 0) ->
                  ()
              | _ -> best := Some (index, shared, d)
            end
          end
    in
    List.iter consider (Leaf_set.members here.leaf_set);
    Routing_table.iter
      (fun ~row:_ ~col:_ entry ->
        match entry with Some e -> consider e.Routing_table.peer | None -> ())
      here.table;
    Option.map (fun (index, _, _) -> index) !best
  in
  let rec loop current acc remaining =
    if current = root then Some (List.rev (current :: acc))
    else if remaining = 0 then None
    else begin
      match next_allowed current with
      | None -> None
      | Some next -> loop next (current :: acc) (remaining - 1)
    end
  in
  loop from [] limit
