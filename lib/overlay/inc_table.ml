(* Incrementally maintained constrained ("secure") routing tables over a
   ring universe.

   [Routing_table.build_secure] recomputes all l*v slots of one owner from
   the full sorted membership — 1.6 ms per table at 500 nodes, and under
   churn every member's table goes stale at once, so the rebuild model costs
   O(n * l * v) work per membership event. This module maintains the same
   tables for *every* universe position at once and applies single-node
   deltas on join/leave.

   Two observations make the deltas exact and cheap:

   - Slot (row, col) of owner [o] holds the alive node (excluding [o])
     closest on the ring to the point p = with_digit(o, row, col), among
     nodes sharing p's (row+1)-digit prefix. All candidates and p live in
     one prefix subrange (width <= ring/base), where ring distance equals
     linear distance, so "closest to p" is a 1-D Voronoi choice between p's
     sorted alive neighbours: for adjacent candidates x < y, p prefers x
     exactly when p <= floor((x + y) / 2) — which also encodes the
     smaller-id tie-break of [Routing_table.closest_in_range].

   - When node [d] joins or leaves, only two kinds of slots change: the
     own-digit slots of positions between d's surviving alive neighbours
     [prev, next] in its subrange, and, in every other digit class of the
     same row, the owners whose point falls in d's Voronoi cell
     (mid(prev, d), mid(d, next)] — a contiguous run of universe positions
     found by binary search. Everything else keeps its previous winner.

   Tables are maintained for dead owners too (their candidate set is just
   "alive \ {owner}" like everyone else's), so a node that rejoins needs no
   own-table rebuild. Only the first [rows] rows — ceil(log_base n) + 1 by
   default, the rows that are ever occupied at density n plus margin — are
   materialised as one flat int array; deeper rows are computed on demand
   with identical semantics. *)

type maintenance = { writes : int; changed : int; owners : int }

type t = {
  ring : Ring.t;
  rows : int;
  slots : int array;  (* (owner * rows + row) * base + col -> position or -1 *)
  stamp : int array;  (* generation marks: distinct-owner counting per event *)
  mutable generation : int;
  mutable events : int;
  mutable total_writes : int;
  mutable total_changed : int;
  mutable total_owners : int;
}

let ring t = t.ring
let materialized_rows t = t.rows
let events t = t.events
let total_writes t = t.total_writes
let total_changed t = t.total_changed
let total_owners t = t.total_owners

(* Smallest row count that covers every slot occupied at density n, plus
   one row of margin: row r is occupied only when some other node shares an
   r-digit prefix, which dies out around log_base n. *)
let default_rows n =
  let r = ref 0 and cap = ref 1 in
  while !cap < n && !r < Id.digits do
    incr r;
    cap := !cap * Id.base
  done;
  min Id.digits (max 1 (!r + 1))

let slot_index t ~owner ~row ~col = (((owner * t.rows) + row) * Id.base) + col

(* Voronoi choice: the alive neighbour of [point] that wins slot ownership.
   [below] < point <= [above] as ring positions (-1 = absent). *)
let pick ring point below above =
  if below < 0 then above
  else if above < 0 then below
  else if Id.compare point (Id.midpoint (Ring.id ring below) (Ring.id ring above)) <= 0 then below
  else above

(* ---------- From-scratch slot computation (deep rows + reference) ---------- *)

let compute_entry t ~owner ~row ~col =
  if row < 0 || row >= Id.digits then invalid_arg "Inc_table.compute_entry: row out of range";
  if col < 0 || col >= Id.base then invalid_arg "Inc_table.compute_entry: column out of range";
  let ring = t.ring in
  let owner_id = Ring.id ring owner in
  let point = Id.with_digit owner_id row col in
  let lo, hi = Ring.prefix_range ring point ~digits_shared:(row + 1) in
  if hi <= lo then -1
  else begin
    let x = Ring.insertion_point ring point in
    let below =
      let b = Ring.prev_alive_in ring lo (x - 1) in
      if b = owner then Ring.prev_alive_in ring lo (b - 1) else b
    in
    let above =
      let a = Ring.next_alive_in ring x (hi - 1) in
      if a = owner then Ring.next_alive_in ring (a + 1) (hi - 1) else a
    in
    pick ring point below above
  end

(* Own-digit slots have point = the owner's own id, so the entry is just
   the nearest alive neighbour within the subrange, self excluded. *)
let own_digit_entry t ~s_lo ~s_hi o =
  let ring = t.ring in
  let below = Ring.prev_alive_in ring s_lo (o - 1) in
  let above = Ring.next_alive_in ring (o + 1) (s_hi - 1) in
  pick ring (Ring.id ring o) below above

let entry t ~owner ~row ~col =
  if row < t.rows then t.slots.(slot_index t ~owner ~row ~col)
  else compute_entry t ~owner ~row ~col

let entry_id t ~owner ~row ~col =
  let e = entry t ~owner ~row ~col in
  if e < 0 then None else Some (Ring.id t.ring e)

(* ---------- Bulk build: one sweep per (row, digit class) ---------- *)

(* Reusable sweep scratch: candidate positions and midpoints sized to the
   widest subrange seen so far, class boundaries fixed at base + 1. One
   record per builder (sequential) or per pool task (parallel). *)
type scratch = {
  mutable cands : int array;
  mutable mids : Id.t array;
  bounds : int array;
}

let make_scratch () =
  { cands = [||]; mids = [||]; bounds = Array.make (Id.base + 1) 0 }

let ensure_scratch s width =
  if Array.length s.cands < width then begin
    let cap = max 16 width in
    s.cands <- Array.make cap 0;
    s.mids <- Array.make cap Id.zero
  end

(* One (group, class-range) unit of the bulk build: digit classes
   [c_lo, c_hi) of the group [g_lo, g_hi) at [row]. Writes only slots
   (owner, row, col) with the owner inside the group and col inside the
   class range — disjoint across units — so units run sequentially or as
   pool tasks interchangeably, producing identical bytes either way.

   O(group) per class (plus sweep-pointer restarts): within one prefix
   subrange the candidate list and its midpoints are shared by every owner
   of the enclosing group, so each class is a merge-style walk with the
   allocation-free [Id.compare_substituted] as the comparison. *)
let build_group t scratch ~row ~g_lo ~g_hi ~c_lo ~c_hi =
  let ring = t.ring in
  let bounds = scratch.bounds in
  (* bounds.(c) = first position in the group whose digit at [row] is
     >= c; the digit is non-decreasing across the sorted group. *)
  bounds.(0) <- g_lo;
  bounds.(Id.base) <- g_hi;
  for c = 1 to Id.base - 1 do
    let a = ref bounds.(c - 1) and b = ref g_hi in
    while !a < !b do
      let mid = (!a + !b) / 2 in
      if Id.digit (Ring.id ring mid) row >= c then b := mid else a := mid + 1
    done;
    bounds.(c) <- !a
  done;
  for c = c_lo to c_hi - 1 do
    let s_lo = bounds.(c) and s_hi = bounds.(c + 1) in
    ensure_scratch scratch (s_hi - s_lo);
    let cands = scratch.cands and mids = scratch.mids in
    (* Alive candidates of the subrange, shared by all 16 classes. *)
    let k = ref 0 in
    let p = ref (Ring.next_alive_in ring s_lo (s_hi - 1)) in
    while !p >= 0 do
      cands.(!k) <- !p;
      incr k;
      p := Ring.next_alive_in ring (!p + 1) (s_hi - 1)
    done;
    let k = !k in
    for i = 0 to k - 2 do
      mids.(i) <- Id.midpoint (Ring.id ring cands.(i)) (Ring.id ring cands.(i + 1))
    done;
    (* Own-digit class: each owner's point is its own id, so the entry
       follows the sweep pointer directly. *)
    let ci = ref 0 in
    for o = s_lo to s_hi - 1 do
      while !ci < k && cands.(!ci) < o do incr ci done;
      let below, above =
        if !ci < k && cands.(!ci) = o then
          ((if !ci > 0 then cands.(!ci - 1) else -1), if !ci + 1 < k then cands.(!ci + 1) else -1)
        else ((if !ci > 0 then cands.(!ci - 1) else -1), if !ci < k then cands.(!ci) else -1)
      in
      t.slots.(slot_index t ~owner:o ~row ~col:c) <- pick ring (Ring.id ring o) below above
    done;
    (* Other digit classes: owner points are order-preserving digit
       substitutions, so each class is one monotone walk over the
       shared midpoints. *)
    if k > 0 then
      for g = 0 to Id.base - 1 do
        if g <> c then begin
          let cls_lo = bounds.(g) and cls_hi = bounds.(g + 1) in
          let ci = ref 0 in
          for o = cls_lo to cls_hi - 1 do
            let oid = Ring.id ring o in
            while
              !ci < k - 1 && Id.compare_substituted oid ~index:row ~digit:c mids.(!ci) > 0
            do
              incr ci
            done;
            t.slots.(slot_index t ~owner:o ~row ~col:c) <- cands.(!ci)
          done
        end
      done
  done

(* Run every group whose start position falls in [p_lo, p_hi) at [row]
   through [build_group] (all classes). Group boundaries are rediscovered
   from the ring, so any position partition that aligns task edges to
   multiples of [n / tasks] covers each group exactly once. *)
let build_groups_in t scratch ~row ~p_lo ~p_hi =
  let ring = t.ring in
  let g_lo =
    ref
      (let lo, hi = Ring.prefix_range ring (Ring.id ring p_lo) ~digits_shared:row in
       if lo < p_lo then hi else lo)
  in
  while !g_lo < p_hi do
    let _, g_hi = Ring.prefix_range ring (Ring.id ring !g_lo) ~digits_shared:row in
    build_group t scratch ~row ~g_lo:!g_lo ~g_hi ~c_lo:0 ~c_hi:Id.base;
    g_lo := g_hi
  done

(* Task plan for one parallel build. Both shapes write disjoint slot
   regions: position ranges partition each row's groups by start position,
   and class slices of one group write disjoint columns. *)
type build_task =
  | Range of { row : int; p_lo : int; p_hi : int }
      (** every group starting in [p_lo, p_hi), all classes *)
  | Classes of { row : int; g_lo : int; g_hi : int; c_lo : int; c_hi : int }
      (** one group, classes [c_lo, c_hi) *)

(* Decompose the build into tasks. Slot values are pure functions of the
   ring, so — unlike the experiment drivers' shard counts — the task shape
   here MAY depend on the domain count without breaking byte-identity:
   every decomposition writes the same values to the same cells. Rows with
   at least a few groups per domain split by position (group-aligned);
   shallow rows (row 0 has one group spanning the whole ring) split each
   group by digit class so they parallelize too. *)
let plan_tasks ring ~rows ~domains =
  let n = Ring.size ring in
  let target = 2 * domains in
  let tasks = ref [] in
  for row = 0 to rows - 1 do
    (* Upper bound on this row's group count: base^row, saturating. *)
    let groups_cap = ref 1 in
    for _ = 1 to row do
      if !groups_cap <= target then groups_cap := !groups_cap * Id.base
    done;
    if !groups_cap > target && n > target then begin
      let pieces = 2 * target in
      for k = pieces - 1 downto 0 do
        let p_lo = k * n / pieces and p_hi = (k + 1) * n / pieces in
        if p_hi > p_lo then tasks := Range { row; p_lo; p_hi } :: !tasks
      done
    end
    else begin
      (* Few groups: enumerate them and slice each by digit class. *)
      let g_lo = ref 0 in
      while !g_lo < n do
        let _, g_hi = Ring.prefix_range ring (Ring.id ring !g_lo) ~digits_shared:row in
        for c = Id.base - 1 downto 0 do
          tasks := Classes { row; g_lo = !g_lo; g_hi; c_lo = c; c_hi = c + 1 } :: !tasks
        done;
        g_lo := g_hi
      done
    end
  done;
  Array.of_list !tasks

let run_task t scratch = function
  | Range { row; p_lo; p_hi } -> build_groups_in t scratch ~row ~p_lo ~p_hi
  | Classes { row; g_lo; g_hi; c_lo; c_hi } ->
      build_group t scratch ~row ~g_lo ~g_hi ~c_lo ~c_hi

let build ?pool ?rows ring =
  let module Pool = Concilium_util.Pool in
  let n = Ring.size ring in
  let rows =
    match rows with
    | None -> default_rows n
    | Some r ->
        if r < 1 || r > Id.digits then invalid_arg "Inc_table.build: rows out of range";
        r
  in
  let t =
    {
      ring;
      rows;
      slots = Array.make (max 1 (n * rows * Id.base)) (-1);
      stamp = Array.make (max 1 n) (-1);
      generation = 0;
      events = 0;
      total_writes = 0;
      total_changed = 0;
      total_owners = 0;
    }
  in
  let domains = match pool with None -> 1 | Some p -> Pool.domain_count p in
  if n = 0 then t
  else if domains <= 1 then begin
    let scratch = make_scratch () in
    for row = 0 to rows - 1 do
      build_groups_in t scratch ~row ~p_lo:0 ~p_hi:n
    done;
    t
  end
  else begin
    let tasks = plan_tasks ring ~rows ~domains in
    ignore
      (Pool.parallel_map ?pool tasks ~f:(fun task ->
           let scratch = make_scratch () in
           (* analysis: allow pool-shared-write — build tasks write disjoint
              (owner, row, col) slot regions of the fresh table (see
              [build_task]); no cell is ever written by two tasks. *)
           run_task t scratch task));
    t
  end

(* ---------- Incremental maintenance ---------- *)

(* Shared delta driver. [node] has just changed liveness (the ring bit is
   already flipped). Per materialised row: recompute the own-digit slots of
   the neighbourhood [prev..next] (the only positions whose nearest alive
   neighbour can have changed), then reassign node's Voronoi cell
   (mid(prev, node), mid(node, next)] in each other digit class — to [node]
   on join, to the surviving neighbour on leave. *)
let update_for_node t node ~joined =
  let ring = t.ring in
  let node_id = Ring.id ring node in
  let writes = ref 0 and changed = ref 0 and owners = ref 0 in
  t.generation <- t.generation + 1;
  let generation = t.generation in
  let write ~owner ~row ~col value =
    let i = slot_index t ~owner ~row ~col in
    incr writes;
    if t.slots.(i) <> value then begin
      t.slots.(i) <- value;
      incr changed;
      if t.stamp.(owner) <> generation then begin
        t.stamp.(owner) <- generation;
        incr owners
      end
    end
  in
  for row = 0 to t.rows - 1 do
    let c = Id.digit node_id row in
    let s_lo, s_hi = Ring.prefix_range ring node_id ~digits_shared:(row + 1) in
    let prev = Ring.prev_alive_in ring s_lo (node - 1) in
    let next = Ring.next_alive_in ring (node + 1) (s_hi - 1) in
    (* (a) own-digit class. *)
    let a_lo = if prev >= 0 then prev else s_lo in
    let a_hi = if next >= 0 then next else s_hi - 1 in
    for o = a_lo to a_hi do
      write ~owner:o ~row ~col:c (own_digit_entry t ~s_lo ~s_hi o)
    done;
    (* (b) every other digit class of the enclosing group. *)
    let g_lo, g_hi = Ring.prefix_range ring node_id ~digits_shared:row in
    let lo_key = if prev >= 0 then Id.midpoint (Ring.id ring prev) node_id else Id.zero in
    let hi_key = if next >= 0 then Id.midpoint node_id (Ring.id ring next) else Id.zero in
    let mid_pn =
      if prev >= 0 && next >= 0 then Id.midpoint (Ring.id ring prev) (Ring.id ring next)
      else Id.zero
    in
    (* First position in [lo, hi) whose digit at [row] is >= d. *)
    let digit_bound lo hi d =
      let a = ref lo and b = ref hi in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if Id.digit (Ring.id ring mid) row >= d then b := mid else a := mid + 1
      done;
      !a
    in
    (* First position in [lo, hi) whose id is > key. *)
    let id_upper lo hi key =
      let a = ref lo and b = ref hi in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if Id.compare (Ring.id ring mid) key <= 0 then a := mid + 1 else b := mid
      done;
      !a
    in
    for g = 0 to Id.base - 1 do
      if g <> c then begin
        let cls_lo = digit_bound g_lo g_hi g in
        let cls_hi = digit_bound cls_lo g_hi (g + 1) in
        if cls_hi > cls_lo then begin
          let o_start =
            if prev < 0 then cls_lo else id_upper cls_lo cls_hi (Id.with_digit lo_key row g)
          in
          let o_end =
            if next < 0 then cls_hi else id_upper cls_lo cls_hi (Id.with_digit hi_key row g)
          in
          for o = o_start to o_end - 1 do
            let value =
              if joined then node
              else if prev < 0 then next
              else if next < 0 then prev
              else if
                Id.compare_substituted (Ring.id ring o) ~index:row ~digit:c mid_pn <= 0
              then prev
              else next
            in
            write ~owner:o ~row ~col:c value
          done
        end
      end
    done
  done;
  t.events <- t.events + 1;
  t.total_writes <- t.total_writes + !writes;
  t.total_changed <- t.total_changed + !changed;
  t.total_owners <- t.total_owners + !owners;
  { writes = !writes; changed = !changed; owners = !owners }

let apply_leave t node =
  if not (Ring.is_alive t.ring node) then invalid_arg "Inc_table.apply_leave: node is dead";
  Ring.set_dead t.ring node;
  update_for_node t node ~joined:false

let apply_join t node =
  if Ring.is_alive t.ring node then invalid_arg "Inc_table.apply_join: node is alive";
  Ring.set_alive t.ring node;
  update_for_node t node ~joined:true

(* Per-owner rebuild through the from-scratch path — the comparator the
   scale bench prices incremental maintenance against, and a repair tool.
   Returns how many slots disagreed (0 when the table was consistent). *)
let rebuild_owner t owner =
  let disagreed = ref 0 in
  for row = 0 to t.rows - 1 do
    for col = 0 to Id.base - 1 do
      let v = compute_entry t ~owner ~row ~col in
      let i = slot_index t ~owner ~row ~col in
      if t.slots.(i) <> v then begin
        incr disagreed;
        t.slots.(i) <- v
      end
    done
  done;
  !disagreed

let checksum t =
  let h = ref (Concilium_util.Hashing.fnv1a "inc-table") in
  Array.iter (fun v -> h := Concilium_util.Hashing.fnv1a_int !h (Int64.of_int v)) t.slots;
  !h

(* ---------- Pastry-style routing over the flat table ---------- *)

let numerically_closest t key =
  let ring = t.ring in
  let n = Ring.size ring in
  if Ring.alive_count ring = 0 then -1
  else begin
    let x = Ring.insertion_point ring key in
    let above = Ring.next_alive_cyclic_from ring (if x >= n then 0 else x) in
    let below =
      let b = Ring.prev_alive_in ring 0 (x - 1) in
      if b >= 0 then b else Ring.prev_alive_in ring x (n - 1)
    in
    if above < 0 then below
    else if below < 0 || above = below then above
    else begin
      let da = Id.ring_distance (Ring.id ring above) key in
      let db = Id.ring_distance (Ring.id ring below) key in
      let cmp = Id.compare db da in
      if cmp < 0 then below
      else if cmp > 0 then above
      else if Id.compare (Ring.id ring below) (Ring.id ring above) <= 0 then below
      else above
    end
  end

(* Leaf-set view of an alive node: scan up to [leaf_half] alive neighbours
   on each side. Returns the closest member to [dest] (self included) and
   whether the leaf set covers [dest]'s ring segment. *)
let leaf_decision t ~leaf_half here dest =
  let ring = t.ring in
  let here_id = Ring.id ring here in
  let best = ref here and best_d = ref (Id.ring_distance here_id dest) in
  let consider p =
    let d = Id.ring_distance (Ring.id ring p) dest in
    let cmp = Id.compare d !best_d in
    if cmp < 0 || (cmp = 0 && Id.compare (Ring.id ring p) (Ring.id ring !best) < 0) then begin
      best := p;
      best_d := d
    end
  in
  let cw_far = ref here and ccw_far = ref here in
  let p = ref here and steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < leaf_half do
    let q = Ring.next_alive_cyclic ring !p in
    if q < 0 || q = here then continue := false
    else begin
      consider q;
      cw_far := q;
      p := q;
      incr steps
    end
  done;
  let p = ref here and steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < leaf_half do
    let q = Ring.prev_alive_cyclic ring !p in
    if q < 0 || q = here then continue := false
    else begin
      consider q;
      ccw_far := q;
      p := q;
      incr steps
    end
  done;
  let covers =
    let lo = Ring.id ring !ccw_far and hi = Ring.id ring !cw_far in
    Id.equal dest hi || Id.equal dest lo || Id.in_clockwise_interval dest ~lo ~hi
    || Id.equal lo hi
  in
  (covers, !best)

let next_hop t ~leaf_half ~here ~dest =
  let ring = t.ring in
  let here_id = Ring.id ring here in
  if Id.equal here_id dest then None
  else begin
    let covers, closest = leaf_decision t ~leaf_half here dest in
    if covers then if closest = here then None else Some closest
    else begin
      let row = Id.shared_prefix_length here_id dest in
      let col = Id.digit dest row in
      let e = entry t ~owner:here ~row ~col in
      if e >= 0 then Some e
      else begin
        (* Fallback (paper Section 2's "rare case"): any known node — the
           closest leaf member or a materialised table entry — that shares
           at least as long a prefix with the key and makes strict
           numerical progress. *)
        let d_here = Id.ring_distance here_id dest in
        let best = ref (-1) and best_d = ref d_here in
        let consider p =
          if p >= 0 && p <> here then begin
            let pid = Ring.id ring p in
            if Id.shared_prefix_length pid dest >= row then begin
              let d = Id.ring_distance pid dest in
              if Id.compare d !best_d < 0 then begin
                best := p;
                best_d := d
              end
            end
          end
        in
        consider closest;
        for r = 0 to t.rows - 1 do
          for cc = 0 to Id.base - 1 do
            consider t.slots.(slot_index t ~owner:here ~row:r ~col:cc)
          done
        done;
        if !best >= 0 then Some !best else None
      end
    end
  end

(* Greedy route from [src] toward [dest]'s root. Returns (final position,
   hop count); the hop digest lets transcripts compare runs exactly. *)
let route t ~leaf_half ~src ~dest =
  let limit = (2 * Id.digits) + (4 * leaf_half) in
  let here = ref src and hops = ref 0 in
  let digest = ref (Concilium_util.Hashing.fnv1a_int (Concilium_util.Hashing.fnv1a "route") (Int64.of_int src)) in
  let continue = ref true in
  while !continue && !hops < limit do
    match next_hop t ~leaf_half ~here:!here ~dest with
    | None -> continue := false
    | Some p ->
        here := p;
        incr hops;
        digest := Concilium_util.Hashing.fnv1a_int !digest (Int64.of_int p)
  done;
  (!here, !hops, !digest)
