(** Incrementally maintained constrained ("secure") routing tables over a
    {!Ring} universe — the million-node replacement for rebuilding
    {!Routing_table.build_secure} on every membership change.

    Semantics: for every universe position [owner] (alive or dead), slot
    [(row, col)] holds the universe position of the alive node closest on
    the ring to the point [with_digit owner_id row col] among alive nodes
    sharing the point's (row+1)-digit prefix, excluding the owner itself —
    byte-for-byte the slot contents of [Routing_table.build_secure] over
    the current alive membership (ties to the smaller id). Join/leave apply
    single-node deltas instead of rebuilds; dead owners keep maintained
    tables so rejoining needs no rebuild. Only the first [rows] rows are
    materialised; deeper rows are computed on demand with identical
    semantics. *)

type t

type maintenance = { writes : int; changed : int; owners : int }
(** Per-event accounting: slots written, slots whose value actually
    changed, and distinct owners whose table changed. *)

val build : ?pool:Concilium_util.Pool.t -> ?rows:int -> Ring.t -> t
(** Sweep-build all tables over the ring's current alive set, O(n) per
    materialised row per digit class. [rows] defaults to
    ceil(log_base n) + 1. The table keeps (and mutates through
    [apply_join]/[apply_leave]) the ring.

    With [?pool] the sweep fans out over the pool as (row, group,
    class-range) units that write disjoint slot regions. Slot values are
    pure functions of the ring, so the resulting table is byte-identical
    to the sequential build for any domain count (unlike experiment shard
    counts, the task decomposition here may depend on the pool size). *)

val ring : t -> Ring.t
val materialized_rows : t -> int

val entry : t -> owner:int -> row:int -> col:int -> int
(** Universe position of the slot's peer, or -1. Any [row < Id.digits];
    rows beyond [materialized_rows] are computed on demand. *)

val entry_id : t -> owner:int -> row:int -> col:int -> Id.t option

val compute_entry : t -> owner:int -> row:int -> col:int -> int
(** From-scratch slot computation (ignores the materialised value). *)

val apply_leave : t -> int -> maintenance
(** Mark the node dead and apply the delta. @raise Invalid_argument if it
    is already dead. *)

val apply_join : t -> int -> maintenance
(** Mark the node alive and apply the delta. @raise Invalid_argument if it
    is already alive. *)

val rebuild_owner : t -> int -> int
(** Recompute one owner's materialised slots from scratch (the comparator
    the scale bench prices deltas against); returns how many slots
    disagreed with the maintained values — 0 when consistent. *)

val events : t -> int
val total_writes : t -> int
val total_changed : t -> int
val total_owners : t -> int
(** Cumulative maintenance counters across all join/leave events. *)

val checksum : t -> int64
(** FNV-1a over all materialised slots; transcript fodder. *)

val numerically_closest : t -> Id.t -> int
(** Alive position minimising ring distance to the key (ties to the
    smaller id), or -1 when nothing is alive — the key's root. *)

val next_hop : t -> leaf_half:int -> here:int -> dest:Id.t -> int option
(** Pastry-style forwarding: leaf-set coverage first, then the table slot
    for the first differing digit, then the numerical-progress fallback. *)

val route : t -> leaf_half:int -> src:int -> dest:Id.t -> int * int * int64
(** Greedy route toward the key's root: (final position, hop count, FNV
    digest of the hop sequence). *)
