module Sorted = Concilium_util.Sorted

type t = { owner : Id.t; clockwise : Id.t array; counter_clockwise : Id.t array }

let build ~owner ~sorted_ids ~half_size =
  if half_size <= 0 then invalid_arg "Leaf_set.build: half_size must be positive";
  let n = Array.length sorted_ids in
  let position = Sorted.lower_bound Id.compare sorted_ids owner in
  (* Walk outwards from the owner's ring position on each side, skipping the
     owner itself. *)
  let take direction count =
    let out = ref [] and found = ref 0 and step = ref 1 in
    while !found < count && !step <= n do
      let index =
        let raw = if direction > 0 then position + !step - 1 else position - !step in
        ((raw mod n) + n) mod n
      in
      let candidate = sorted_ids.(index) in
      if not (Id.equal candidate owner) then begin
        out := candidate :: !out;
        incr found
      end;
      incr step
    done;
    Array.of_list (List.rev !out)
  in
  let available = max 0 (n - 1) in
  let per_side = min half_size ((available + 1) / 2) in
  let clockwise = take 1 (min per_side available) in
  (* Counter-clockwise must not duplicate clockwise picks in tiny rings. *)
  let counter_raw = take (-1) available in
  let counter =
    Array.of_list
      (List.filteri
         (fun i id -> i < per_side && not (Array.exists (Id.equal id) clockwise))
         (Array.to_list counter_raw))
  in
  { owner; clockwise; counter_clockwise = counter }

let of_members ~owner ~clockwise ~counter_clockwise = { owner; clockwise; counter_clockwise }

let owner t = t.owner
let clockwise t = Array.copy t.clockwise
let counter_clockwise t = Array.copy t.counter_clockwise
let members t = Array.to_list t.counter_clockwise @ Array.to_list t.clockwise
let size t = Array.length t.clockwise + Array.length t.counter_clockwise
let half_size t = max (Array.length t.clockwise) (Array.length t.counter_clockwise)

let mean_spacing t =
  let count = size t in
  if count = 0 then Id.ring_size_float
  else begin
    (* Span from the farthest counter-clockwise member, through the owner,
       to the farthest clockwise member, divided by the hop count. *)
    let last array fallback =
      if Array.length array = 0 then fallback else array.(Array.length array - 1)
    in
    let start = last t.counter_clockwise t.owner in
    let stop = last t.clockwise t.owner in
    let span = Id.to_float (Id.clockwise_distance start stop) in
    let span = if span = 0. then Id.ring_size_float else span in
    span /. float_of_int count
  end

let density t = 1. /. mean_spacing t
let estimate_network_size t = Id.ring_size_float /. mean_spacing t

let covers t dest =
  let last array fallback =
    if Array.length array = 0 then fallback else array.(Array.length array - 1)
  in
  let start = last t.counter_clockwise t.owner in
  let stop = last t.clockwise t.owner in
  (* dest in [start, stop] going clockwise. *)
  let to_dest = Id.to_float (Id.clockwise_distance start dest) in
  let to_stop = Id.to_float (Id.clockwise_distance start stop) in
  to_dest <= to_stop

let closest_member t dest =
  let best = ref t.owner in
  let best_distance = ref (Id.ring_distance t.owner dest) in
  let consider id =
    let d = Id.ring_distance id dest in
    let c = Id.compare d !best_distance in
    if c < 0 || (c = 0 && Id.compare id !best < 0) then begin
      best := id;
      best_distance := d
    end
  in
  Array.iter consider t.clockwise;
  Array.iter consider t.counter_clockwise;
  !best

let spacing_check ~gamma ~local ~peer =
  if gamma < 1. then invalid_arg "Leaf_set.spacing_check: gamma must be >= 1";
  if mean_spacing peer > gamma *. mean_spacing local then `Suspicious else `Acceptable
