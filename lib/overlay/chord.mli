(** A Chord overlay (Stoica et al.), the paper's other canonical structured
    overlay, with the Concilium density test generalised to finger tables.

    Each node keeps a successor list (the leaf-set analogue) and 128
    fingers; finger k targets the point id + 2^k. In the [Secure] variant a
    finger must be the *first* node clockwise of its target — the unique,
    verifiable choice analogous to Castro's constrained tables. The
    [Standard] variant may pick any node in the finger's interval
    [id + 2^k, id + 2^(k+1)), modelling proximity-driven freedom an
    adversary can exploit.

    The occupancy measure for the density test is the number of non-empty
    finger intervals: interval k contains another node with probability
    1 - (1 - 2^k / 2^128)^(N-1), so occupancy is again Poisson-binomial and
    the Section 3.1 machinery applies unchanged — the "straightforward
    extension to other overlays" the paper claims. *)

module Poisson_binomial = Concilium_stats.Poisson_binomial

type entry = { peer : Id.t; node : int }

type node = {
  index : int;
  id : Id.t;
  successors : entry array;  (** ascending clockwise from the node *)
  fingers : entry option array;  (** 128 slots; [None] = empty interval *)
}

type t

type style = Secure | Standard of Concilium_util.Prng.t

val finger_count : int
(** 128. *)

val build : ?successor_count:int -> ?style:style -> Id.t array -> t
(** Default 8 successors, [Secure] fingers. Duplicate ids rejected. *)

val node_count : t -> int
val node : t -> int -> node

val successor_of_key : t -> Id.t -> int
(** The key's owner: the first node clockwise at-or-after the key. *)

val next_hop : t -> from:int -> dest:Id.t -> int option
(** Chord forwarding: the destination's owner if it is the immediate
    successor, otherwise the closest finger/successor preceding [dest].
    [None] when [from] already owns the key. O(log n) via a per-node jump
    table sorted by clockwise distance. *)

val next_hop_reference : t -> from:int -> dest:Id.t -> int option
(** The retained linear-scan implementation; agrees with {!next_hop} on
    every input (property-tested) and exists as its oracle/bench
    baseline. *)

val route : t -> from:int -> dest:Id.t -> int list
(** Hops from [from] to the key's owner.
    @raise Failure on livelock (guarded; cannot occur on well-formed
    rings). *)

val interval_occupancy : node -> int
(** Number of finger intervals [id + 2^k, id + 2^(k+1)) that contain a
    peer — the quantity the generalised density test compares. *)

val mean_route_length : t -> trials:int -> rng:Concilium_util.Prng.t -> float

module Model : sig
  val interval_probability : n:int -> index:int -> float
  (** Probability interval k is non-empty in an N-node ring. *)

  val occupancy_model : n:int -> Poisson_binomial.t
  val expected_occupancy : n:int -> float

  val monte_carlo_occupancy :
    rng:Concilium_util.Prng.t -> n:int -> trials:int -> float array
  (** Sampled occupancy fractions (of the 128 intervals), for validating
      the analytic model exactly as Figure 1 does for Pastry. *)
end
