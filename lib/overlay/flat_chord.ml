(* Chord routing over a {!Ring} universe without per-node stored state.

   A Chord node's successors are "the next k alive positions clockwise" and
   its finger [k] is "the first alive node at or after id + 2^k" — both
   answerable directly from the sorted universe plus the alive bitset, in
   O(log n) per question. Materialising them per node would cost O(n log n)
   memory and need repair on every churn event; deriving them on demand
   makes churn maintenance free (a bitset flip) while routing stays the
   textbook greedy descent: jump to the closest known predecessor of the
   key, halving the remaining clockwise distance each hop. *)

type t = { ring : Ring.t }

let create ring = { ring }
let ring t = t.ring

(* First alive node at or after [key] clockwise — the key's owner. *)
let owner_of_key t key =
  let ring = t.ring in
  Ring.next_alive_cyclic_from ring (Ring.insertion_point ring key)

let successor t here = Ring.next_alive_cyclic t.ring here

let next_hop t ~here ~dest =
  let ring = t.ring in
  let owner = owner_of_key t dest in
  if owner < 0 || owner = here then None
  else begin
    let here_id = Ring.id ring here in
    let succ = Ring.next_alive_cyclic ring here in
    if succ < 0 then None
    else if succ = owner then Some succ
    else begin
      (* Finger descent: the highest power-of-two jump that stays within
         (here, dest] clockwise. Each hop at least halves the remaining
         clockwise distance, so routes take O(log n) hops. *)
      let to_dest = Id.clockwise_distance here_id dest in
      let hop = ref (-1) in
      let k = ref (Id.floor_log2 to_dest) in
      while !hop < 0 && !k >= 0 do
        let target = Id.add_power_of_two here_id !k in
        let cand = Ring.next_alive_cyclic_from ring (Ring.insertion_point ring target) in
        if cand >= 0 && cand <> here then begin
          let to_cand = Id.clockwise_distance here_id (Ring.id ring cand) in
          if Id.compare to_cand to_dest <= 0 && Id.compare to_cand Id.zero > 0 then hop := cand
        end;
        decr k
      done;
      if !hop >= 0 then Some !hop else Some succ
    end
  end

(* Greedy route from [src] to the key's owner. Returns (final position,
   hop count, FNV digest of the hop sequence). *)
let route t ~src ~dest =
  let limit = 192 in
  let here = ref src and hops = ref 0 in
  let digest =
    ref
      (Concilium_util.Hashing.fnv1a_int
         (Concilium_util.Hashing.fnv1a "chord-route")
         (Int64.of_int src))
  in
  let continue = ref true in
  while !continue && !hops < limit do
    match next_hop t ~here:!here ~dest with
    | None -> continue := false
    | Some p ->
        here := p;
        incr hops;
        digest := Concilium_util.Hashing.fnv1a_int !digest (Int64.of_int p)
  done;
  (!here, !hops, !digest)
