(** 128-bit overlay identifiers, viewed as [digits] base-[base] characters
    (l = 32 hex digits, v = 16 — the paper's parameters). Identifiers are
    points on a ring of size 2^128; all ring arithmetic is exact. *)

type t

val digits : int
(** Identifier length l in digits (32). *)

val base : int
(** Digit alphabet size v (16). *)

val zero : t
val random : Concilium_util.Prng.t -> t

val of_hex : string -> t
(** Parse exactly [digits] hex characters. @raise Invalid_argument otherwise. *)

val to_hex : t -> string

val of_name : string -> t
(** Deterministic identifier derived by hashing an arbitrary name — how the
    certificate authority assigns random, unforgeable identifiers. *)

val compare : t -> t -> int
(** Numeric order (equivalently lexicographic on the hex form). *)

val equal : t -> t -> bool

val digit : t -> int -> int
(** [digit id i] is the i-th most significant digit, [0 <= i < digits]. *)

val with_digit : t -> int -> int -> t
(** [with_digit id i d] substitutes digit [i] with [d] — the point "p" of the
    secure-routing constraint (paper Section 2). *)

val shared_prefix_length : t -> t -> int
(** Number of leading digits on which the two identifiers agree. *)

val clockwise_distance : t -> t -> t
(** [clockwise_distance a b] = (b - a) mod 2^128. *)

val ring_distance : t -> t -> t
(** min(clockwise, counter-clockwise) distance. *)

val to_float : t -> float
(** Approximate magnitude as a float in [0, 2^128); used for spacing
    statistics and network-size estimation where exactness is not needed. *)

val ring_size_float : float
(** 2^128 as a float. *)

val succ : t -> t
(** Successor on the ring (wraps). *)

val add_power_of_two : t -> int -> t
(** [add_power_of_two id k] = (id + 2^k) mod 2^128, for 0 <= k < 128 — the
    finger targets of a Chord node. *)

val midpoint : t -> t -> t
(** [midpoint a b] = floor((a + b) / 2) over the plain 128-bit integers (no
    ring wrap). For adjacent candidates x <= y, a point p prefers x exactly
    when p <= midpoint x y — the Voronoi boundary used by the incremental
    routing-table maintenance. *)

val compare_substituted : t -> index:int -> digit:int -> t -> int
(** [compare_substituted a ~index ~digit b] compares
    [with_digit a index digit] against [b] without allocating — the
    routing-table sweep's inner-loop comparison. *)

val prefix_bounds : t -> digits_shared:int -> t * t
(** Smallest and largest identifiers sharing the first [digits_shared]
    digits of the argument. *)

val floor_log2 : t -> int
(** Index of the highest set bit (0..127), or -1 for zero — the finger
    level of a Chord hop. *)

val in_clockwise_interval : t -> lo:t -> hi:t -> bool
(** Whether [x] lies in the half-open clockwise interval [lo, hi) of the
    ring (empty when lo = hi). *)

val pp : Format.formatter -> t -> unit
