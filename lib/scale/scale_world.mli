(** Million-node worlds: the flat-array core (sorted id universe + alive
    bitset + incrementally maintained tables) wired to a churn timeline and
    an episode routing workload.

    Everything is deterministic in (config, seed). No wall-clock timing
    happens here — bin/scale.ml owns measurement — and every rendered line
    is replayable content only, so two runs with different domain counts
    produce byte-identical transcripts. *)

module Churn = Concilium_netsim.Churn
module Ring = Concilium_overlay.Ring
module Inc_table = Concilium_overlay.Inc_table
module Flat_chord = Concilium_overlay.Flat_chord

type protocol = Pastry | Chord

val protocol_name : protocol -> string

type config = {
  protocol : protocol;
  nodes : int;
  seed : int64;
  leaf_half : int;
  rows : int option;  (** [None] = {!Inc_table.build}'s default depth *)
  churn : Churn.config;
  churn_duration : float;
}

val config :
  ?leaf_half:int ->
  ?rows:int ->
  ?churn:Churn.config ->
  ?churn_duration:float ->
  protocol:protocol ->
  nodes:int ->
  seed:int64 ->
  unit ->
  config
(** Defaults: leaf_half 8, default churn (2h up / 10min down, 95% initially
    online), one-hour horizon. @raise Invalid_argument when [nodes < 2]. *)

type t

val build : ?pool:Concilium_util.Pool.t -> config -> t
(** Draw the id universe, align the ring with the churn timeline's initial
    state, and (for Pastry) sweep-build the incremental tables. With
    [?pool] the sweep-build fans out over the pool (byte-identical table
    for any domain count — see {!Inc_table.build}). *)

val ring : t -> Ring.t
val table : t -> Inc_table.t option
val chord : t -> Flat_chord.t option

val clock : t -> float
val events_total : t -> int
val events_applied : t -> int
val events_skipped : t -> int

val events_pending : t -> int

val step_event : t -> bool
(** Apply the next churn event (liveness toggle through the table's delta
    path when one is maintained); [false] when the timeline is exhausted.
    The last two alive nodes never leave. *)

val advance_to : t -> float -> int
(** Apply every pending event with time [<= t]; returns how many were
    applied (skips excluded). *)

type episode_result = {
  routes : int;
  delivered : int;  (** routes whose final hop was the key's root/owner *)
  total_hops : int;
  digest : int64;  (** order-sensitive FNV over per-route hop digests *)
}

val run_episode :
  ?pool:Concilium_util.Pool.t ->
  ?obs:Concilium_obs.Collector.t ->
  t ->
  episode:int ->
  routes:int ->
  episode_result
(** Route [routes] random lookups from random alive sources. PRNGs are
    pre-split per route before dispatch and task [i] writes only slot [i]:
    results are bit-identical for every domain count.

    When [obs] records, the episode is logged as one trace span (category
    ["episode"], at the world's virtual clock) plus [scale.routes] /
    [scale.delivered] counters and a [scale.route_hops] histogram — all in
    the sequential aggregation pass after the fan-out joins, so the sinks
    stay byte-identical for every domain count. *)

val membership_checksum : t -> int64
val state_checksum : t -> int64
(** Membership FNV, folded with the table checksum when one is
    maintained. *)

val header_line : t -> string
val state_line : t -> string
val episode_line : episode:int -> episode_result -> string
val maintenance_line : t -> string
(** Deterministic transcript lines (no timings). *)
