(* Million-node worlds for the scaling bench and the scale-smoke CI job.

   A scale world is the flat-array core end to end: a fixed sorted id
   universe ([Ring]), an alive bitset driven by a churn timeline, and —
   for Pastry — incrementally maintained constrained routing tables
   ([Inc_table]); Chord derives its state on demand ([Flat_chord]).
   Everything here is deterministic in (config, seed): all timing lives in
   bin/scale.ml, and transcripts contain only replayable content
   (checksums, digests, counts), so d1-vs-d2 runs diff byte-identical. *)

module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool
module Hashing = Concilium_util.Hashing
module Collector = Concilium_obs.Collector
module Trace = Concilium_obs.Trace
module Metrics = Concilium_obs.Metrics
module Churn = Concilium_netsim.Churn
module Id = Concilium_overlay.Id
module Ring = Concilium_overlay.Ring
module Inc_table = Concilium_overlay.Inc_table
module Flat_chord = Concilium_overlay.Flat_chord

type protocol = Pastry | Chord

let protocol_name = function Pastry -> "pastry" | Chord -> "chord"

type config = {
  protocol : protocol;
  nodes : int;
  seed : int64;
  leaf_half : int;
  rows : int option;
  churn : Churn.config;
  churn_duration : float;
}

let config ?(leaf_half = 8) ?rows ?(churn = Churn.default_config)
    ?(churn_duration = 3600.) ~protocol ~nodes ~seed () =
  if nodes < 2 then invalid_arg "Scale_world.config: need at least two nodes";
  { protocol; nodes; seed; leaf_half; rows; churn; churn_duration }

type t = {
  config : config;
  ring : Ring.t;
  table : Inc_table.t option;
  chord : Flat_chord.t option;
  events : (float * int) array;
  mutable cursor : int;
  mutable clock : float;
  mutable applied : int;
  mutable skipped : int;
  mutable episode_rngs : Prng.t array;  (* reseeded in place every episode *)
}

(* Draw [n] distinct ids. Collisions among 128-bit draws are vanishingly
   rare; redraw-and-resort handles them without biasing the common case. *)
let distinct_sorted_ids ~rng n =
  let ids = Array.init n (fun _ -> Id.random rng) in
  let rec fix () =
    Array.sort Id.compare ids;
    let dup = ref false in
    for i = 1 to n - 1 do
      if Id.compare ids.(i - 1) ids.(i) = 0 then begin
        ids.(i) <- Id.random rng;
        dup := true
      end
    done;
    if !dup then fix ()
  in
  fix ();
  ids

let build ?pool config =
  let rng = Prng.of_seed config.seed in
  let id_rng = Prng.split rng in
  let churn_rng = Prng.split rng in
  let ids = distinct_sorted_ids ~rng:id_rng config.nodes in
  let ring = Ring.of_sorted_ids ids in
  let churn =
    Churn.generate ~rng:churn_rng ~config:config.churn ~hosts:config.nodes
      ~duration:config.churn_duration
  in
  (* Align the ring with the timeline's initial state before building any
     tables, so the build sweeps over the real initial membership. *)
  for host = 0 to config.nodes - 1 do
    if not (Churn.initially_online churn ~host) then Ring.set_dead ring host
  done;
  (* Degenerate configs (initial_online_fraction ~ 0) still need a ring to
     route on; resurrect the lowest positions deterministically. *)
  let host = ref 0 in
  while Ring.alive_count ring < 2 do
    Ring.set_alive ring !host;
    incr host
  done;
  (* The sweep-build parallelizes safely: slot values are pure functions of
     the ring, so the table is byte-identical for any domain count. *)
  let table =
    match config.protocol with
    | Pastry -> Some (Inc_table.build ?pool ?rows:config.rows ring)
    | Chord -> None
  in
  let chord =
    match config.protocol with Chord -> Some (Flat_chord.create ring) | Pastry -> None
  in
  {
    config;
    ring;
    table;
    chord;
    events = Churn.events churn;
    cursor = 0;
    clock = 0.;
    applied = 0;
    skipped = 0;
    episode_rngs = [||];
  }

let ring t = t.ring
let table t = t.table
let chord t = t.chord
let clock t = t.clock
let events_total t = Array.length t.events
let events_applied t = t.applied
let events_skipped t = t.skipped
let events_pending t = Array.length t.events - t.cursor

(* Apply one churn event: a toggle of its host's liveness, through the
   incremental-table delta path when one is maintained. The last alive
   node never leaves (routing needs a non-empty ring). *)
let apply_event t host =
  if Ring.is_alive t.ring host then begin
    if Ring.alive_count t.ring > 2 then begin
      (match t.table with
      | Some table -> ignore (Inc_table.apply_leave table host)
      | None -> Ring.set_dead t.ring host);
      t.applied <- t.applied + 1
    end
    else t.skipped <- t.skipped + 1
  end
  else begin
    (match t.table with
    | Some table -> ignore (Inc_table.apply_join table host)
    | None -> Ring.set_alive t.ring host);
    t.applied <- t.applied + 1
  end

let step_event t =
  if t.cursor >= Array.length t.events then false
  else begin
    let time, host = t.events.(t.cursor) in
    t.cursor <- t.cursor + 1;
    t.clock <- time;
    apply_event t host;
    true
  end

let advance_to t time =
  let before = t.applied in
  let continue = ref true in
  while !continue && t.cursor < Array.length t.events do
    let event_time, _ = t.events.(t.cursor) in
    if event_time <= time then ignore (step_event t) else continue := false
  done;
  if time > t.clock then t.clock <- time;
  t.applied - before

(* ---------- episode workloads ---------- *)

type episode_result = {
  routes : int;
  delivered : int;
  total_hops : int;
  digest : int64;
}

let episode_rng t ~episode =
  Prng.of_seed
    (Hashing.fnv1a_int
       (Hashing.fnv1a_int (Hashing.fnv1a "scale-episode") t.config.seed)
       (Int64.of_int episode))

(* Deterministic alive source: first alive at-or-after a random position.
   Bounded (one bitset scan) unlike retry-until-alive. *)
let pick_source ring rng =
  Ring.next_alive_cyclic_from ring (Prng.int rng (Ring.size ring))

let route_once t rng =
  let dest = Id.random rng in
  match (t.table, t.chord) with
  | Some table, _ ->
      let src = pick_source t.ring rng in
      let root = Inc_table.numerically_closest table dest in
      let final, hops, digest =
        Inc_table.route table ~leaf_half:t.config.leaf_half ~src ~dest
      in
      (hops, final = root, digest)
  | None, Some chord ->
      let src = pick_source t.ring rng in
      let owner = Flat_chord.owner_of_key chord dest in
      let final, hops, digest = Flat_chord.route chord ~src ~dest in
      (hops, final = owner, digest)
  | None, None -> (0, false, 0L)

(* Task [i] writes only slot [i] and draws only from rngs.(i), pre-split
   before dispatch: bit-identical across domain counts. The per-route
   generators are recycled across episodes ([Prng.split_into] reseeds the
   cached array with exactly [split_n]'s streams), so a long soak allocates
   the fan-out scratch once instead of [routes] records per episode. *)
let run_episode ?pool ?(obs = Collector.noop) t ~episode ~routes =
  let base = episode_rng t ~episode in
  let rngs =
    if Array.length t.episode_rngs = routes then begin
      Prng.split_into base t.episode_rngs;
      t.episode_rngs
    end
    else begin
      let fresh = Prng.split_n base routes in
      t.episode_rngs <- fresh;
      fresh
    end
  in
  let results = Pool.parallel_init ?pool routes ~f:(fun i -> route_once t rngs.(i)) in
  (* Observability happens only in this sequential aggregation pass, after
     the fan-out has joined: workers never touch the sinks, so the trace
     and metrics stay byte-identical for every domain count. *)
  let span =
    Trace.span_open obs.Collector.trace ~time:t.clock ~cat:"episode"
      ~args:[ ("episode", Trace.Int episode); ("routes", Trace.Int routes) ]
      "scale.episode"
  in
  let metrics = obs.Collector.metrics in
  let delivered = ref 0 and total_hops = ref 0 in
  let digest = ref (Hashing.fnv1a "scale-episode-digest") in
  Array.iter
    (fun (hops, ok, route_digest) ->
      if ok then incr delivered;
      total_hops := !total_hops + hops;
      Metrics.observe metrics "scale.route_hops" (float_of_int hops);
      digest := Hashing.fnv1a_int !digest route_digest)
    results;
  Metrics.incr metrics ~by:routes "scale.routes";
  Metrics.incr metrics ~by:!delivered "scale.delivered";
  Trace.span_close obs.Collector.trace ~time:t.clock
    ~args:[ ("delivered", Trace.Int !delivered); ("hops", Trace.Int !total_hops) ]
    span;
  { routes; delivered = !delivered; total_hops = !total_hops; digest = !digest }

(* ---------- checksums and transcript lines ---------- *)

let membership_checksum t =
  let h = ref (Hashing.fnv1a "alive-set") in
  for i = 0 to Ring.size t.ring - 1 do
    if Ring.is_alive t.ring i then h := Hashing.fnv1a_int !h (Int64.of_int i)
  done;
  !h

let state_checksum t =
  match t.table with
  | Some table -> Hashing.fnv1a_int (membership_checksum t) (Inc_table.checksum table)
  | None -> membership_checksum t

let header_line t =
  Printf.sprintf "world protocol=%s nodes=%d alive=%d rows=%d events=%d"
    (protocol_name t.config.protocol)
    t.config.nodes (Ring.alive_count t.ring)
    (match t.table with Some table -> Inc_table.materialized_rows table | None -> 0)
    (Array.length t.events)

let state_line t =
  Printf.sprintf "state clock=%.3f applied=%d skipped=%d alive=%d checksum=%016Lx" t.clock
    t.applied t.skipped (Ring.alive_count t.ring) (state_checksum t)

let episode_line ~episode result =
  Printf.sprintf "episode %d routes=%d delivered=%d hops=%d digest=%016Lx" episode
    result.routes result.delivered result.total_hops result.digest

let maintenance_line t =
  match t.table with
  | None -> "maintenance none"
  | Some table ->
      Printf.sprintf "maintenance events=%d writes=%d changed=%d owners=%d"
        (Inc_table.events table) (Inc_table.total_writes table)
        (Inc_table.total_changed table) (Inc_table.total_owners table)
