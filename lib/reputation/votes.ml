type vote = { voter : int; subject : int; confident : bool; time : float }

type t = {
  by_pair : (int * int, vote) Hashtbl.t; (* (voter, subject) -> newest vote *)
  by_voter : (int, (int, vote) Hashtbl.t) Hashtbl.t;
  by_subject : (int, (int, vote) Hashtbl.t) Hashtbl.t;
}

let create () =
  { by_pair = Hashtbl.create 256; by_voter = Hashtbl.create 64; by_subject = Hashtbl.create 64 }

let secondary table key =
  match Hashtbl.find_opt table key with
  | Some inner -> inner
  | None ->
      let inner = Hashtbl.create 16 in
      Hashtbl.replace table key inner;
      inner

let cast t vote =
  Hashtbl.replace t.by_pair (vote.voter, vote.subject) vote;
  Hashtbl.replace (secondary t.by_voter vote.voter) vote.subject vote;
  Hashtbl.replace (secondary t.by_subject vote.subject) vote.voter vote

let vote_count t = Hashtbl.length t.by_pair

(* A deterministic view of a secondary table: bindings sorted by peer id, so
   float accumulations below never depend on the process hash seed. *)
let sorted_bindings table =
  List.sort (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun key vote acc -> (key, vote) :: acc) table [])

let correlation t ~a ~b =
  if a = b then 1.
  else begin
    match (Hashtbl.find_opt t.by_voter a, Hashtbl.find_opt t.by_voter b) with
    | None, _ | _, None -> 0.
    | Some votes_a, Some votes_b ->
        let shared = ref 0 and agreements = ref 0 in
        List.iter
          (fun (subject, vote_a) ->
            match Hashtbl.find_opt votes_b subject with
            | None -> ()
            | Some vote_b ->
                incr shared;
                if vote_a.confident = vote_b.confident then incr agreements)
          (sorted_bindings votes_a);
        if !shared = 0 then 0.
        else float_of_int ((2 * !agreements) - !shared) /. float_of_int !shared
  end

let score t ~observer ~subject =
  match Hashtbl.find_opt t.by_subject subject with
  | None -> 0.
  | Some votes ->
      let weighted = ref 0. and weight_total = ref 0. in
      List.iter
        (fun (voter, vote) ->
          let weight = correlation t ~a:observer ~b:voter in
          if weight <> 0. then begin
            let value = if vote.confident then 1. else -1. in
            weighted := !weighted +. (weight *. value);
            weight_total := !weight_total +. abs_float weight
          end)
        (sorted_bindings votes);
      if !weight_total = 0. then 0. else !weighted /. !weight_total

let poor_peers t ~observer ~threshold =
  let subjects = Hashtbl.fold (fun subject _ acc -> subject :: acc) t.by_subject [] in
  List.sort Int.compare
    (List.filter (fun subject -> score t ~observer ~subject < threshold) subjects)
