(** Randomized lockstep schedules.

    A schedule is a concrete, replayable sequence of operations against the
    protocol's stateful pieces — verdict windows, the accusation DHT, the
    rebuttal archives — plus the sizing parameters of the world they run
    in. Schedules are {e data}: every operand is an index or a float, so a
    schedule serializes to JSON ({!encode}/{!decode}) and any sub-sequence
    of its operations is itself a valid schedule (which is what lets
    {!Shrink.ddmin} minimize counterexamples by deleting operations).

    {!generate} draws the operation stream from the chaos DSL: a fault plan
    is sampled with {!Concilium_netsim.Chaos.sample} and each fault family
    is translated into the protocol-level operations it would provoke
    (flaps become verdicts, crashes toggle liveness, replica losses drop
    stores, control duplication re-delivers puts...). On top of that the
    generator deliberately manufactures boundary cases: window expiries
    whose horizon equals a recorded drop time exactly, and archive defenses
    at exactly [±delta] around an archived verdict — the edges where
    off-by-one bugs live. *)

type op =
  | Win_record of { win : int; guilty : bool; blame : float; drop_time : float }
  | Win_expire of { win : int; before : float }
  | Dht_put of { from_node : int; accuser : int; accused : int; drop_time : float; copies : int }
  | Dht_get of { from_node : int; accused : int }
  | Dht_crash of { node : int }
  | Dht_revive of { node : int }
  | Dht_drop_replica of { node : int }
  | Arch_record of { owner : int; accused : int; drop_time : float }
  | Arch_defend of { owner : int; accuser : int; drop_time : float }

type t = {
  seed : int;  (** generator seed, kept for provenance in artifacts *)
  nodes : int;
  window_size : int;
  m : int;  (** guilty-verdict threshold for accusation escalation *)
  replication : int;
  ops : op list;
}

val generate : seed:int -> t
(** Deterministic: equal seeds give equal schedules. Node count, window
    sizing and replication are drawn from small ranges; the operation
    stream mixes a baseline tick of routine operations with the
    translated chaos plan, in event-time order. *)

val with_ops : t -> op list -> t
(** Same world, different operation sequence (used by the shrinker). *)

val op_count : t -> int

val pp_op : Format.formatter -> op -> unit

val encode : t -> Json.t
val decode : Json.t -> (t, string) result
