type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- Writer ---------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_into buf f =
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    (* "%.17g" prints integral doubles without a decimal point; keep the
       value a JSON float so it parses back into the same constructor. *)
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec value_into buf ~indent ~level v =
  let sep, pad, pad_close =
    match indent with
    | None -> (",", "", "")
    | Some width ->
        ( ",\n" ^ String.make (width * (level + 1)) ' ',
          "\n" ^ String.make (width * (level + 1)) ' ',
          "\n" ^ String.make (width * level) ' ' )
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_into buf f
  | String s -> escape_into buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          Buffer.add_string buf (if i = 0 then pad else sep);
          value_into buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_string buf pad_close;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, field) ->
          Buffer.add_string buf (if i = 0 then pad else sep);
          escape_into buf name;
          Buffer.add_string buf (match indent with None -> ":" | Some _ -> ": ");
          value_into buf ~indent ~level:(level + 1) field)
        fields;
      Buffer.add_string buf pad_close;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  value_into buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:None v
let to_string_pretty v = render ~indent:(Some 2) v

(* ---------- Parser ---------- *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail message = raise (Parse_error (!pos, message)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, found %C" c got)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some code -> if code < 0x80 then Char.chr code else '?'
    | None -> fail "malformed \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' -> Buffer.add_char buf (parse_hex4 ())
              | c -> fail (Printf.sprintf "unknown escape \\%C" c)));
          loop ()
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_number_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "malformed number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "malformed number %S" text))
  in
  let rec parse_value depth =
    if depth > 64 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (name, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, message) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at message)

(* ---------- Accessors ---------- *)

let member name v =
  match v with
  | Obj fields -> List.find_map (fun (n, field) -> if n = name then Some field else None) fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let string_value = function String s -> Some s | _ -> None
