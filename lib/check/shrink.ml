let split_chunks items ~chunks =
  let len = List.length items in
  let base = len / chunks and extra = len mod chunks in
  (* First [extra] chunks get one more element, consuming the list exactly. *)
  let rec build index remaining =
    if index >= chunks then []
    else
      let size = base + if index < extra then 1 else 0 in
      let rec split n acc rest =
        if n = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tail -> split (n - 1) (x :: acc) tail
      in
      let chunk, rest = split size [] remaining in
      chunk :: build (index + 1) rest
  in
  build 0 items

let rec without_chunk chunks index =
  match chunks with
  | [] -> []
  | chunk :: rest ->
      if index = 0 then List.concat rest else chunk @ without_chunk rest (index - 1)

let ddmin ~reproduces items =
  if not (reproduces items) then items
  else begin
    let rec minimize items ~chunks =
      let len = List.length items in
      if len <= 1 then items
      else begin
        let chunks = min chunks len in
        let pieces = split_chunks items ~chunks in
        (* Try dropping each chunk (complement testing, the ddmin core). *)
        let rec try_drop index =
          if index >= chunks then None
          else
            let candidate = without_chunk pieces index in
            if candidate <> [] && reproduces candidate then Some candidate
            else try_drop (index + 1)
        in
        match try_drop 0 with
        | Some candidate ->
            (* A chunk was irrelevant: restart at the same granularity on
               the smaller list. *)
            minimize candidate ~chunks:(max 2 (chunks - 1))
        | None ->
            if chunks >= len then items
            else minimize items ~chunks:(min len (2 * chunks))
      end
    in
    let coarse = minimize items ~chunks:2 in
    (* Final one-at-a-time pass guarantees 1-minimality. *)
    let rec sweep kept pending =
      match pending with
      | [] -> List.rev kept
      | x :: rest ->
          let candidate = List.rev_append kept rest in
          if candidate <> [] && reproduces candidate then sweep kept rest
          else sweep (x :: kept) rest
    in
    sweep [] coarse
  end
