module Id = Concilium_overlay.Id
module Pastry = Concilium_overlay.Pastry
module Pki = Concilium_crypto.Pki
module Accusation = Concilium_core.Accusation
module Commitment = Concilium_core.Commitment
module Blame = Concilium_core.Blame
module Verdict_window = Concilium_core.Verdict_window
module Dht = Concilium_core.Dht
module Rebuttal = Concilium_core.Rebuttal
module Prng = Concilium_util.Prng

type mutation =
  | Window_expire_exclusive
  | Window_accuse_strict
  | Dht_ignore_crashes
  | Archive_widen_window

let mutation_name = function
  | Window_expire_exclusive -> "window-expire-exclusive"
  | Window_accuse_strict -> "window-accuse-strict"
  | Dht_ignore_crashes -> "dht-ignore-crashes"
  | Archive_widen_window -> "archive-widen-window"

let all_mutations =
  [ Window_expire_exclusive; Window_accuse_strict; Dht_ignore_crashes; Archive_widen_window ]

let mutation_of_name name =
  List.find_opt (fun m -> String.equal (mutation_name m) name) all_mutations

type divergence = { op_index : int; component : string; detail : string }

let pp_divergence fmt d =
  Format.fprintf fmt "op %d, %s: %s" d.op_index d.component d.detail

(* ---------- World ---------- *)

type principal = { id : Id.t; key : Pki.public_key; secret : Pki.secret_key }

type world = {
  nodes : int;
  m : int;
  principals : principal array;
  impl_windows : unit Verdict_window.t array;
  model_windows : Model.Window.t array;
  impl_dht : Dht.t;
  model_store : Model.Store.t;
  impl_archives : Rebuttal.archive array;
  model_archives : Model.Archive.t array;
  dead : bool array;
  accusations : (string, Accusation.t) Hashtbl.t;
}

let build_world (schedule : Schedule.t) =
  let nodes = schedule.Schedule.nodes in
  let rng = Prng.of_seed (Int64.of_int (0x5eed + schedule.Schedule.seed)) in
  let ids = Array.init nodes (fun _ -> Id.random rng) in
  let pki = Pki.create ~seed:(Int64.of_int (0xca + schedule.Schedule.seed)) in
  let principals =
    Array.init nodes (fun i ->
        let cert, secret =
          Pki.issue pki ~address:(Printf.sprintf "node-%d" i) ~node_id:(Id.to_hex ids.(i))
        in
        { id = ids.(i); key = cert.Pki.subject_key; secret })
  in
  let pastry = Pastry.build ~leaf_half_size:4 ids in
  {
    nodes;
    m = schedule.Schedule.m;
    principals;
    impl_windows =
      Array.init nodes (fun _ ->
          Verdict_window.create ~window_size:schedule.Schedule.window_size);
    model_windows =
      Array.init nodes (fun _ ->
          Model.Window.create ~window_size:schedule.Schedule.window_size);
    impl_dht = Dht.create ~pastry ~replication:schedule.Schedule.replication;
    model_store = Model.Store.create ~pastry ~replication:schedule.Schedule.replication;
    impl_archives = Array.init nodes (fun _ -> Rebuttal.create_archive ());
    model_archives = Array.init nodes (fun _ -> Model.Archive.create ());
    dead = Array.make nodes false;
    accusations = Hashtbl.create 64;
  }

(* Accusations are the data flowing through both sides: built once per
   (accuser, accused, drop time) triple and shared, so the comparison
   exercises the state machinery, not signature plumbing. Two probers
   vouch "up" for every path link, putting the blame (0.9, Equation 2)
   above the paper threshold. *)
let accusation_for world ~accuser ~accused ~drop_time =
  let cache_key = Printf.sprintf "%d|%d|%.17g" accuser accused drop_time in
  match Hashtbl.find_opt world.accusations cache_key with
  | Some accusation -> accusation
  | None ->
      let a = world.principals.(accuser) in
      let b = world.principals.(accused) in
      let destination = world.principals.((accused + 1) mod world.nodes) in
      let probers =
        List.filteri (fun i _ -> i <> accuser && i <> accused)
          (Array.to_list (Array.mapi (fun i p -> (i, p)) world.principals))
      in
      let p1, p2 =
        match probers with
        | (_, p1) :: (_, p2) :: _ -> (p1, p2)
        | _ -> invalid_arg "Lockstep.accusation_for: need at least four nodes"
      in
      let vote link (p : principal) =
        Accusation.make_vote ~prober:p.id ~secret:p.secret ~public:p.key ~link ~time:drop_time
          ~up:true
      in
      let commitment =
        Commitment.issue ~forwarder:b.id ~secret:b.secret ~public:b.key ~sender:a.id
          ~destination:destination.id ~message_id:cache_key ~now:(drop_time -. 1.)
      in
      let evidence =
        {
          Accusation.path_links = [| 4; 9 |];
          link_votes =
            [
              { Accusation.link = 4; votes = [ vote 4 p1; vote 4 p2 ] };
              { Accusation.link = 9; votes = [ vote 9 p1 ] };
            ];
          drop_time;
          commitment;
        }
      in
      let accusation =
        Accusation.make ~accuser:a.id ~secret:a.secret ~public:a.key ~accused:b.id
          ~config:Blame.paper_config ~evidence ~supporting:[] ~now:(drop_time +. 1.)
      in
      Hashtbl.add world.accusations cache_key accusation;
      accusation

(* ---------- Comparisons ---------- *)

let float_list_to_string times =
  String.concat "," (List.map (fun t -> Printf.sprintf "%.17g" t) times)

(* [impl_m] lets the accuse-strict mutation perturb the implementation
   side's escalation threshold while the model keeps the real [m]. *)
let check_window world ~impl_m ~win =
  let impl = world.impl_windows.(win) in
  let model = world.model_windows.(win) in
  let impl_times =
    List.map (fun e -> e.Verdict_window.drop_time) (Verdict_window.entries impl)
  in
  let model_times = Model.Window.drop_times model in
  if Verdict_window.length impl <> Model.Window.length model then
    Some
      (Printf.sprintf "window %d length: impl=%d model=%d" win (Verdict_window.length impl)
         (Model.Window.length model))
  else if Verdict_window.guilty_count impl <> Model.Window.guilty_count model then
    Some
      (Printf.sprintf "window %d guilty_count: impl=%d model=%d" win
         (Verdict_window.guilty_count impl)
         (Model.Window.guilty_count model))
  else if
    Verdict_window.should_accuse impl ~m:impl_m
    <> Model.Window.should_accuse model ~m:world.m
  then
    Some
      (Printf.sprintf "window %d should_accuse(m=%d): impl=%b model=%b" win world.m
         (Verdict_window.should_accuse impl ~m:impl_m)
         (Model.Window.should_accuse model ~m:world.m))
  else if not (List.equal Float.equal impl_times model_times) then
    Some
      (Printf.sprintf "window %d drop_times: impl=[%s] model=[%s]" win
         (float_list_to_string impl_times)
         (float_list_to_string model_times))
  else None

let check_stores world =
  let mismatch = ref None in
  for node = world.nodes - 1 downto 0 do
    let impl = Dht.stored_count world.impl_dht ~node in
    let model = Model.Store.stored_count world.model_store ~node in
    if impl <> model then
      mismatch :=
        Some (Printf.sprintf "stored_count node %d: impl=%d model=%d" node impl model)
  done;
  match !mismatch with
  | Some _ as d -> d
  | None ->
      let impl = Dht.total_records world.impl_dht in
      let model = Model.Store.total_records world.model_store in
      if impl <> model then
        Some (Printf.sprintf "total_records: impl=%d model=%d" impl model)
      else None

let check_archive world ~owner =
  let impl = Rebuttal.archive_size world.impl_archives.(owner) in
  let model = Model.Archive.size world.model_archives.(owner) in
  if impl <> model then
    Some (Printf.sprintf "archive %d size: impl=%d model=%d" owner impl model)
  else None

(* ---------- Execution ---------- *)

let apply_op world ~mutation op =
  let model_alive node = not world.dead.(node) in
  let impl_alive =
    match mutation with
    | Some Dht_ignore_crashes -> fun (_ : int) -> true
    | _ -> model_alive
  in
  let impl_m = match mutation with Some Window_accuse_strict -> world.m + 1 | _ -> world.m in
  match op with
  | Schedule.Win_record { win; guilty; blame; drop_time } ->
      let verdict = if guilty then Blame.Guilty else Blame.Innocent in
      Verdict_window.record world.impl_windows.(win)
        { Verdict_window.verdict; blame; drop_time; evidence = () };
      Model.Window.record world.model_windows.(win)
        { Model.Window.guilty; blame; drop_time };
      (match check_window world ~impl_m ~win with
      | Some detail -> Some ("window", detail)
      | None -> None)
  | Schedule.Win_expire { win; before } ->
      let impl_before =
        match mutation with Some Window_expire_exclusive -> Float.succ before | _ -> before
      in
      Verdict_window.expire world.impl_windows.(win) ~before:impl_before;
      Model.Window.expire world.model_windows.(win) ~before;
      (match check_window world ~impl_m ~win with
      | Some detail -> Some ("window", detail)
      | None -> None)
  | Schedule.Dht_put { from_node; accuser; accused; drop_time; copies } ->
      let accusation = accusation_for world ~accuser ~accused ~drop_time in
      let accused_key = world.principals.(accused).key in
      let hops = ref 0 in
      let impl_report =
        Dht.put world.impl_dht ~from:from_node ~alive:impl_alive ~copies ~accused_key
          accusation ~hops
      in
      let model_report =
        Model.Store.put world.model_store ~from:from_node ~alive:model_alive ~copies
          ~accused_key accusation
      in
      if impl_report.Dht.replicas_written <> model_report.Model.Store.replicas_written then
        Some
          ( "dht",
            Printf.sprintf "put replicas_written: impl=%d model=%d"
              impl_report.Dht.replicas_written model_report.Model.Store.replicas_written )
      else if impl_report.Dht.put_failed_over <> model_report.Model.Store.put_failed_over
      then
        Some
          ( "dht",
            Printf.sprintf "put failed_over: impl=%b model=%b"
              impl_report.Dht.put_failed_over model_report.Model.Store.put_failed_over )
      else if !hops <> model_report.Model.Store.hops then
        Some
          ( "dht",
            Printf.sprintf "put hops: impl=%d model=%d" !hops model_report.Model.Store.hops
          )
      else (
        match check_stores world with
        | Some detail -> Some ("dht", detail)
        | None -> None)
  | Schedule.Dht_get { from_node; accused } ->
      let accused_key = world.principals.(accused).key in
      let hops = ref 0 in
      let impl_report =
        Dht.get world.impl_dht ~from:from_node ~alive:impl_alive ~accused_key ~hops ()
      in
      let model_report =
        Model.Store.get world.model_store ~from:from_node ~alive:model_alive ~accused_key
      in
      let impl_keys =
        List.map Model.Store.record_key impl_report.Dht.accusations
      in
      if not (List.equal String.equal impl_keys model_report.Model.Store.record_keys) then
        Some
          ( "dht",
            Printf.sprintf "get records: impl=[%s] model=[%s]"
              (String.concat ";" impl_keys)
              (String.concat ";" model_report.Model.Store.record_keys) )
      else if impl_report.Dht.replicas_read <> model_report.Model.Store.replicas_read then
        Some
          ( "dht",
            Printf.sprintf "get replicas_read: impl=%d model=%d"
              impl_report.Dht.replicas_read model_report.Model.Store.replicas_read )
      else if impl_report.Dht.get_failed_over <> model_report.Model.Store.get_failed_over
      then
        Some
          ( "dht",
            Printf.sprintf "get failed_over: impl=%b model=%b"
              impl_report.Dht.get_failed_over model_report.Model.Store.get_failed_over )
      else if !hops <> model_report.Model.Store.hops then
        Some
          ( "dht",
            Printf.sprintf "get hops: impl=%d model=%d" !hops model_report.Model.Store.hops
          )
      else None
  | Schedule.Dht_crash { node } ->
      world.dead.(node) <- true;
      None
  | Schedule.Dht_revive { node } ->
      world.dead.(node) <- false;
      None
  | Schedule.Dht_drop_replica { node } ->
      Dht.drop_replica world.impl_dht ~node;
      Model.Store.drop_replica world.model_store ~node;
      (match check_stores world with
      | Some detail -> Some ("dht", detail)
      | None -> None)
  | Schedule.Arch_record { owner; accused; drop_time } ->
      let accusation = accusation_for world ~accuser:owner ~accused ~drop_time in
      Rebuttal.record world.impl_archives.(owner) accusation;
      Model.Archive.record world.model_archives.(owner) accusation;
      (match check_archive world ~owner with
      | Some detail -> Some ("archive", detail)
      | None -> None)
  | Schedule.Arch_defend { owner; accuser; drop_time } ->
      let against = accusation_for world ~accuser ~accused:owner ~drop_time in
      let impl_against =
        match mutation with
        | Some Archive_widen_window ->
            accusation_for world ~accuser ~accused:owner ~drop_time:(drop_time +. 1.5)
        | _ -> against
      in
      let impl = Rebuttal.defend world.impl_archives.(owner) ~against:impl_against in
      let model = Model.Archive.defend world.model_archives.(owner) ~against in
      let key = Option.map Model.Store.record_key in
      if not (Option.equal String.equal (key impl) (key model)) then
        Some
          ( "archive",
            Printf.sprintf "defend(owner=%d): impl=%s model=%s" owner
              (Option.value ~default:"none" (key impl))
              (Option.value ~default:"none" (key model)) )
      else None

let final_sweep world ~impl_m =
  let rec first_window win =
    if win >= world.nodes then None
    else
      match check_window world ~impl_m ~win with
      | Some detail -> Some detail
      | None -> first_window (win + 1)
  in
  let rec first_archive owner =
    if owner >= world.nodes then None
    else
      match check_archive world ~owner with
      | Some detail -> Some detail
      | None -> first_archive (owner + 1)
  in
  match first_window 0 with
  | Some detail -> Some detail
  | None -> (
      match check_stores world with
      | Some detail -> Some detail
      | None -> first_archive 0)

let run ?mutation (schedule : Schedule.t) =
  let world = build_world schedule in
  let impl_m =
    match mutation with Some Window_accuse_strict -> world.m + 1 | _ -> world.m
  in
  let rec step index ops =
    match ops with
    | [] -> (
        match final_sweep world ~impl_m with
        | Some detail -> Some { op_index = index; component = "final"; detail }
        | None -> None)
    | op :: rest -> (
        match apply_op world ~mutation op with
        | Some (component, detail) -> Some { op_index = index; component; detail }
        | None -> step (index + 1) rest)
  in
  step 0 schedule.Schedule.ops
