module Id = Concilium_overlay.Id
module Leaf_set = Concilium_overlay.Leaf_set
module Pastry = Concilium_overlay.Pastry
module Pki = Concilium_crypto.Pki
module Signed = Concilium_crypto.Signed
module Accusation = Concilium_core.Accusation
module Blame = Concilium_core.Blame

module Window = struct
  type entry = { guilty : bool; blame : float; drop_time : float }

  type t = { window_size : int; mutable entries : entry list (* oldest first *) }

  let create ~window_size =
    if window_size <= 0 then invalid_arg "Model.Window.create: window_size must be positive";
    { window_size; entries = [] }

  let record t entry =
    let appended = t.entries @ [ entry ] in
    let overflow = List.length appended - t.window_size in
    (* Drop the oldest verdicts one by one until the window fits: the slow,
       obvious statement of "keep the newest [window_size]". *)
    let rec drop n entries =
      match entries with _ :: rest when n > 0 -> drop (n - 1) rest | _ -> entries
    in
    t.entries <- drop overflow appended

  let length t = List.length t.entries

  let guilty_count t = List.length (List.filter (fun e -> e.guilty) t.entries)

  let should_accuse t ~m = guilty_count t >= m

  let expire t ~before =
    t.entries <- List.filter (fun e -> e.drop_time >= before) t.entries

  let drop_times t = List.map (fun e -> e.drop_time) t.entries
end

module Store = struct
  type stored = { node : int; record : string; dht_key : Id.t }

  type t = {
    pastry : Pastry.t;
    replication : int;
    mutable contents : stored list;
  }

  let create ~pastry ~replication =
    if replication < 1 then invalid_arg "Model.Store.create: replication must be >= 1";
    { pastry; replication; contents = [] }

  (* Re-derive the accused-key hash and the idempotence key from their
     documented contracts rather than calling into [Dht], so a drift in
     either derivation shows up as a divergence. *)
  let key_of_public_key public_key =
    Id.of_name ("accusation-key|" ^ Pki.public_key_to_string public_key)

  let record_key accusation =
    let body = Signed.payload accusation in
    Printf.sprintf "%s|%s|%.6f" (Id.to_hex body.Accusation.accuser)
      (Id.to_hex body.Accusation.accused)
      body.Accusation.evidence.Accusation.drop_time

  let distance_to t ~key index = Id.ring_distance (Pastry.node t.pastry index).Pastry.id key

  (* Root by exhaustive scan over every node — no reliance on the overlay's
     own [numerically_closest]. *)
  let root_of t ~key =
    let best = ref 0 in
    for index = 1 to Pastry.node_count t.pastry - 1 do
      if Id.compare (distance_to t ~key index) (distance_to t ~key !best) < 0 then best := index
    done;
    !best

  let replica_candidates t ~key =
    let root = root_of t ~key in
    let neighbors =
      List.filter_map
        (fun id -> Pastry.index_of_id t.pastry id)
        (Leaf_set.members (Pastry.node t.pastry root).Pastry.leaf_set)
    in
    let by_distance =
      List.stable_sort
        (fun a b -> Id.compare (distance_to t ~key a) (distance_to t ~key b))
        (List.filter (fun n -> n <> root) neighbors)
    in
    root :: by_distance

  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

  let live_replicas t ~key ~alive = take t.replication (List.filter alive (replica_candidates t ~key))

  let root_dead t ~key ~alive = not (alive (root_of t ~key))

  let route_hops t ~from ~target =
    let dest = (Pastry.node t.pastry target).Pastry.id in
    max 0 (List.length (Pastry.route t.pastry ~from ~dest) - 1)

  type put_report = { replicas_written : int; put_failed_over : bool; hops : int }

  let holds t ~node ~record =
    List.exists (fun s -> s.node = node && String.equal s.record record) t.contents

  let put t ~from ~alive ~copies ~accused_key accusation =
    let key = key_of_public_key accused_key in
    let record = record_key accusation in
    let replicas = live_replicas t ~key ~alive in
    let hops = ref 0 in
    for _ = 1 to max 1 copies do
      List.iter
        (fun replica ->
          hops := !hops + route_hops t ~from ~target:replica;
          if not (holds t ~node:replica ~record) then
            t.contents <- { node = replica; record; dht_key = key } :: t.contents)
        replicas
    done;
    {
      replicas_written = List.length replicas;
      put_failed_over = replicas <> [] && root_dead t ~key ~alive;
      hops = !hops;
    }

  type get_report = {
    record_keys : string list;
    replicas_read : int;
    get_failed_over : bool;
    hops : int;
  }

  let get t ~from ~alive ~accused_key =
    let key = key_of_public_key accused_key in
    match live_replicas t ~key ~alive with
    | [] -> { record_keys = []; replicas_read = 0; get_failed_over = false; hops = 0 }
    | (first :: _) as replicas ->
        let hops = route_hops t ~from ~target:first in
        let merged =
          List.filter
            (fun s -> List.mem s.node replicas && Id.equal s.dht_key key)
            t.contents
        in
        let record_keys =
          List.sort_uniq String.compare (List.map (fun s -> s.record) merged)
        in
        {
          record_keys;
          replicas_read = List.length replicas;
          get_failed_over = root_dead t ~key ~alive;
          hops;
        }

  let drop_replica t ~node = t.contents <- List.filter (fun s -> s.node <> node) t.contents

  let stored_count t ~node =
    List.length (List.filter (fun s -> s.node = node) t.contents)

  let total_records t = List.length t.contents
end

module Archive = struct
  type t = { mutable verdicts : Accusation.t list (* newest first *) }

  let create () = { verdicts = [] }

  let record t accusation = t.verdicts <- accusation :: t.verdicts

  let size t = List.length t.verdicts

  let drop_time accusation =
    (Signed.payload accusation).Accusation.evidence.Accusation.drop_time

  let defend t ~against =
    let against_body = Signed.payload against in
    List.find_opt
      (fun candidate ->
        let candidate_body = Signed.payload candidate in
        Id.equal candidate_body.Accusation.accuser against_body.Accusation.accused
        && abs_float (drop_time candidate -. drop_time against)
           <= against_body.Accusation.config.Blame.delta)
      t.verdicts
end
