(** Delta debugging for counterexample schedules (Zeller's ddmin).

    When a lockstep run diverges, the raw schedule carries hundreds of
    operations, almost all irrelevant. [ddmin] minimizes any list under a
    reproduction predicate by removing chunks at progressively finer
    granularity, finishing with an element-at-a-time pass, so the emitted
    reproducer is 1-minimal: deleting any single remaining element makes
    the divergence disappear. Pure and deterministic — the predicate is
    re-evaluated on candidate sublists only, never sampled. *)

val ddmin : reproduces:('a list -> bool) -> 'a list -> 'a list
(** [ddmin ~reproduces items] assumes [reproduces items = true] and returns
    a minimal sublist (elements in their original order) that still
    satisfies [reproduces]. Returns [items] unchanged if the assumption
    fails. *)
