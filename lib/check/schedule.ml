module Prng = Concilium_util.Prng
module Chaos = Concilium_netsim.Chaos
module Blame = Concilium_core.Blame

type op =
  | Win_record of { win : int; guilty : bool; blame : float; drop_time : float }
  | Win_expire of { win : int; before : float }
  | Dht_put of { from_node : int; accuser : int; accused : int; drop_time : float; copies : int }
  | Dht_get of { from_node : int; accused : int }
  | Dht_crash of { node : int }
  | Dht_revive of { node : int }
  | Dht_drop_replica of { node : int }
  | Arch_record of { owner : int; accused : int; drop_time : float }
  | Arch_defend of { owner : int; accuser : int; drop_time : float }

type t = {
  seed : int;
  nodes : int;
  window_size : int;
  m : int;
  replication : int;
  ops : op list;
}

let with_ops t ops = { t with ops }
let op_count t = List.length t.ops

let pp_op fmt op =
  match op with
  | Win_record { win; guilty; blame; drop_time } ->
      Format.fprintf fmt "win_record[%d] %s blame=%.3f t=%.6f" win
        (if guilty then "guilty" else "innocent")
        blame drop_time
  | Win_expire { win; before } -> Format.fprintf fmt "win_expire[%d] before=%.6f" win before
  | Dht_put { from_node; accuser; accused; drop_time; copies } ->
      Format.fprintf fmt "dht_put from=%d %d->%d t=%.6f copies=%d" from_node accuser accused
        drop_time copies
  | Dht_get { from_node; accused } -> Format.fprintf fmt "dht_get from=%d accused=%d" from_node accused
  | Dht_crash { node } -> Format.fprintf fmt "dht_crash %d" node
  | Dht_revive { node } -> Format.fprintf fmt "dht_revive %d" node
  | Dht_drop_replica { node } -> Format.fprintf fmt "dht_drop_replica %d" node
  | Arch_record { owner; accused; drop_time } ->
      Format.fprintf fmt "arch_record[%d] accused=%d t=%.6f" owner accused drop_time
  | Arch_defend { owner; accuser; drop_time } ->
      Format.fprintf fmt "arch_defend[%d] accuser=%d t=%.6f" owner accuser drop_time

(* ---------- Generation ---------- *)

(* First pass emits timed operations; expiries and defenses stay symbolic
   so the second pass can aim them at drop times that actually exist by
   then, manufacturing exact-boundary cases. *)
type proto =
  | Concrete of op
  | Expire_at of { win : int; at : float }
  | Defend_at of { owner : int; at : float }

let pick_pair rng ~nodes =
  let a = Prng.int rng nodes in
  let b = (a + 1 + Prng.int rng (nodes - 1)) mod nodes in
  (a, b)

let fresh_verdict rng ~win ~at =
  let guilty = Prng.bernoulli rng 0.6 in
  let blame =
    if guilty then 0.4 +. Prng.float rng 0.6 else Prng.float rng 0.4
  in
  Concrete (Win_record { win; guilty; blame; drop_time = at })

let baseline_tick rng ~nodes ~at =
  match Prng.int rng 6 with
  | 0 -> [ fresh_verdict rng ~win:(Prng.int rng nodes) ~at ]
  | 1 ->
      let accuser, accused = pick_pair rng ~nodes in
      [ Concrete (Dht_put { from_node = Prng.int rng nodes; accuser; accused; drop_time = at; copies = 1 }) ]
  | 2 -> [ Concrete (Dht_get { from_node = Prng.int rng nodes; accused = Prng.int rng nodes }) ]
  | 3 ->
      let owner, accused = pick_pair rng ~nodes in
      [ Concrete (Arch_record { owner; accused; drop_time = at }) ]
  | 4 -> [ Defend_at { owner = Prng.int rng nodes; at } ]
  | _ -> [ Expire_at { win = Prng.int rng nodes; at } ]

let ops_of_fault rng ~nodes fault =
  match fault with
  | Chaos.Link_flap { link; start; _ } ->
      [ (start, fresh_verdict rng ~win:(link mod nodes) ~at:start) ]
  | Chaos.Burst_loss { links; start; _ } ->
      (* A correlated incident produces a clump of near-simultaneous
         verdicts across windows. *)
      List.mapi
        (fun i link ->
          let at = start +. (0.25 *. float_of_int i) in
          (at, fresh_verdict rng ~win:(link mod nodes) ~at))
        (Array.to_list (Array.sub links 0 (min 3 (Array.length links))))
  | Chaos.Partition { start; duration; _ } ->
      (* Healing a partition triggers catch-up reads and evidence expiry. *)
      [
        (start, Concrete (Dht_get { from_node = Prng.int rng nodes; accused = Prng.int rng nodes }));
        (start +. duration, Expire_at { win = Prng.int rng nodes; at = start +. duration });
      ]
  | Chaos.Node_crash { node; start; duration } ->
      let node = node mod nodes in
      [ (start, Concrete (Dht_crash { node })); (start +. duration, Concrete (Dht_revive { node })) ]
  | Chaos.Replica_loss { node; time } ->
      [ (time, Concrete (Dht_drop_replica { node = node mod nodes })) ]
  | Chaos.Control_delay { start; duration; _ } ->
      (* Delayed control traffic: the archive fills now, the defense query
         arrives once the window has passed. *)
      let owner, accused = pick_pair rng ~nodes in
      [
        (start, Concrete (Arch_record { owner; accused; drop_time = start }));
        (start +. duration, Defend_at { owner; at = start +. duration });
      ]
  | Chaos.Control_duplication { start; copies; _ } ->
      let accuser, accused = pick_pair rng ~nodes in
      [
        ( start,
          Concrete
            (Dht_put { from_node = Prng.int rng nodes; accuser; accused; drop_time = start; copies })
        );
      ]

(* Adversary campaigns map onto the same op vocabulary: the lockstep model
   does not simulate lying probers, but the *state traffic* an adversary
   induces — contradictory verdicts crowding one window, accusation puts
   against a framed victim, replica loss around an eclipsed node, read
   storms from biased samplers — must leave model and runtime in agreement.
   The conformance checker therefore consumes adversary-bearing schedules
   with no special cases. *)
let ops_of_adversary rng ~nodes adversary =
  let wrap v = ((v mod nodes) + nodes) mod nodes in
  match adversary with
  | Chaos.Collusion { members; corroboration; start; duration; _ } ->
      (* Each colluder's window fills with a guilty verdict (the judge's
         own evidence) chased by a corroborated innocent one (the
         coalition's shield), and the coalition's target gets a formal
         accusation put; the campaign's end expires the evidence. *)
      let shielded = wrap members.(0) in
      Array.to_list members
      |> List.concat_map (fun m ->
             let m = wrap m in
             let at = start +. Prng.float rng (Float.max duration 1.) in
             let guilty =
               (at, fresh_verdict rng ~win:m ~at)
             in
             let shield =
               if Prng.bernoulli rng corroboration then
                 [
                   ( at +. 0.5,
                     Concrete
                       (Win_record
                          { win = m; guilty = false; blame = 0.1; drop_time = at +. 0.5 }) );
                 ]
               else []
             in
             let put =
               ( at +. 1.,
                 Concrete
                   (Dht_put
                      {
                        from_node = m;
                        accuser = m;
                        accused = shielded;
                        drop_time = at +. 1.;
                        copies = 1;
                      }) )
             in
             (guilty :: shield) @ [ put ])
      |> fun ops -> ops @ [ (start +. duration, Expire_at { win = shielded; at = start +. duration }) ]
  | Chaos.Lying_reporters { reporters; victim; corroboration; start; duration } ->
      (* Framing votes crowd the victim's window; the victim archives its
         own exculpatory evidence and defends once the campaign ends. *)
      let victim = wrap victim in
      let frames =
        Array.to_list reporters
        |> List.concat_map (fun r ->
               let r = wrap r in
               let at = start +. Prng.float rng (Float.max duration 1.) in
               let vote =
                 ( at,
                   Concrete
                     (Win_record
                        {
                          win = victim;
                          guilty = true;
                          blame = 0.5 +. Prng.float rng 0.5;
                          drop_time = at;
                        }) )
               in
               if Prng.bernoulli rng corroboration then
                 [
                   vote;
                   ( at +. 0.5,
                     Concrete
                       (Dht_put
                          {
                            from_node = r;
                            accuser = r;
                            accused = victim;
                            drop_time = at +. 0.5;
                            copies = 1;
                          }) );
                 ]
               else [ vote ])
      in
      frames
      @ [
          (start, Concrete (Arch_record { owner = victim; accused = victim; drop_time = start }));
          (start +. duration, Defend_at { owner = victim; at = start +. duration });
        ]
  | Chaos.Eclipse { attackers; victim; start; duration } ->
      (* Isolating a node looks like replica loss bracketed by churn, with
         the attackers hammering reads to map the victim's state. *)
      let victim = wrap victim in
      let storms =
        Array.to_list attackers
        |> List.map (fun a ->
               let at = start +. Prng.float rng (Float.max duration 1.) in
               (at, Concrete (Dht_get { from_node = wrap a; accused = victim })))
      in
      [
        (start, Concrete (Dht_crash { node = victim }));
        (start +. (0.5 *. duration), Concrete (Dht_drop_replica { node = victim }));
        (start +. duration, Concrete (Dht_revive { node = victim }));
      ]
      @ storms
  | Chaos.Biased_sampling { samplers; favored; start; duration } ->
      (* Biased samplers over-read the favored node's records. *)
      Array.to_list samplers
      |> List.concat_map (fun s ->
             let s = wrap s in
             List.init 3 (fun i ->
                 let at = start +. (float_of_int (i + 1) /. 4. *. Float.max duration 1.) in
                 (at, Concrete (Dht_get { from_node = s; accused = wrap favored }))))

(* Second pass: walk the timed stream in order, tracking what each window
   and archive holds, and resolve the symbolic operations. Half the
   expiries land exactly on a recorded drop time (the inclusive-keep
   boundary); defenses probe exactly [±delta] as well as just outside it. *)
let resolve rng ~nodes protos =
  let delta = Blame.paper_config.Blame.delta in
  let window_times = Array.make nodes [] in
  let archives = Array.make nodes [] in
  List.map
    (fun proto ->
      match proto with
      | Concrete op ->
          (match op with
          | Win_record { win; drop_time; _ } ->
              window_times.(win) <- drop_time :: window_times.(win)
          | Arch_record { owner; accused; drop_time } ->
              archives.(owner) <- (accused, drop_time) :: archives.(owner)
          | _ -> ());
          op
      | Expire_at { win; at } ->
          let before =
            match window_times.(win) with
            | _ :: _ as times when Prng.bernoulli rng 0.5 ->
                Prng.choose rng (Array.of_list times)
            | _ -> at -. Prng.float rng 600.
          in
          Win_expire { win; before }
      | Defend_at { owner; at } -> (
          match archives.(owner) with
          | [] ->
              let accuser = (owner + 1 + Prng.int rng (nodes - 1)) mod nodes in
              Arch_defend { owner; accuser; drop_time = at }
          | entries ->
              let accused, recorded_at = Prng.choose rng (Array.of_list entries) in
              let offset =
                Prng.choose rng [| -.delta; 0.0; delta; delta +. 1.0; -.delta -. 1.0 |]
              in
              Arch_defend { owner; accuser = accused; drop_time = recorded_at +. offset }))
    protos

let generate ~seed =
  let rng = Prng.of_seed (Int64.of_int seed) in
  let nodes = 16 + Prng.int rng 9 in
  let window_size = 4 + Prng.int rng 9 in
  let m = 1 + Prng.int rng window_size in
  let replication = 3 + Prng.int rng 3 in
  let horizon = 3600. in
  let plan =
    Chaos.sample ~rng:(Prng.split rng) ~config:Chaos.default_config
      ~links:(Array.init 40 (fun i -> i))
      ~nodes ~cuts:[| [| 0; 1; 2 |]; [| 10; 11 |] |] ~horizon
  in
  let adversary_plan =
    Chaos.sample_adversaries ~rng:(Prng.split rng) ~config:Chaos.default_adversary_config
      ~nodes ~horizon ()
  in
  let from_faults = List.concat_map (ops_of_fault rng ~nodes) plan in
  let from_adversaries = List.concat_map (ops_of_adversary rng ~nodes) adversary_plan in
  let baseline =
    List.concat_map
      (fun tick ->
        let at = 30. +. (60. *. float_of_int tick) in
        List.map (fun proto -> (at, proto)) (baseline_tick rng ~nodes ~at))
      (List.init (int_of_float (horizon /. 60.)) (fun i -> i))
  in
  let timed =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (baseline @ from_faults @ from_adversaries)
  in
  let ops = resolve rng ~nodes (List.map snd timed) in
  { seed; nodes; window_size; m; replication; ops }

(* ---------- JSON ---------- *)

let encode_op op =
  let open Json in
  match op with
  | Win_record { win; guilty; blame; drop_time } ->
      Obj
        [
          ("op", String "win_record");
          ("win", Int win);
          ("guilty", Bool guilty);
          ("blame", Float blame);
          ("drop_time", Float drop_time);
        ]
  | Win_expire { win; before } ->
      Obj [ ("op", String "win_expire"); ("win", Int win); ("before", Float before) ]
  | Dht_put { from_node; accuser; accused; drop_time; copies } ->
      Obj
        [
          ("op", String "dht_put");
          ("from", Int from_node);
          ("accuser", Int accuser);
          ("accused", Int accused);
          ("drop_time", Float drop_time);
          ("copies", Int copies);
        ]
  | Dht_get { from_node; accused } ->
      Obj [ ("op", String "dht_get"); ("from", Int from_node); ("accused", Int accused) ]
  | Dht_crash { node } -> Obj [ ("op", String "dht_crash"); ("node", Int node) ]
  | Dht_revive { node } -> Obj [ ("op", String "dht_revive"); ("node", Int node) ]
  | Dht_drop_replica { node } -> Obj [ ("op", String "dht_drop_replica"); ("node", Int node) ]
  | Arch_record { owner; accused; drop_time } ->
      Obj
        [
          ("op", String "arch_record");
          ("owner", Int owner);
          ("accused", Int accused);
          ("drop_time", Float drop_time);
        ]
  | Arch_defend { owner; accuser; drop_time } ->
      Obj
        [
          ("op", String "arch_defend");
          ("owner", Int owner);
          ("accuser", Int accuser);
          ("drop_time", Float drop_time);
        ]

let encode t =
  Json.Obj
    [
      ("seed", Json.Int t.seed);
      ("nodes", Json.Int t.nodes);
      ("window_size", Json.Int t.window_size);
      ("m", Json.Int t.m);
      ("replication", Json.Int t.replication);
      ("ops", Json.List (List.map encode_op t.ops));
    ]

let field_int json name =
  match Option.bind (Json.member name json) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer field %S" name)

let field_float json name =
  match Option.bind (Json.member name json) Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-float field %S" name)

let field_bool json name =
  match Option.bind (Json.member name json) Json.to_bool with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-boolean field %S" name)

let ( let* ) r f = Result.bind r f

let decode_op json =
  match Option.bind (Json.member "op" json) Json.string_value with
  | None -> Error "operation without an \"op\" tag"
  | Some "win_record" ->
      let* win = field_int json "win" in
      let* guilty = field_bool json "guilty" in
      let* blame = field_float json "blame" in
      let* drop_time = field_float json "drop_time" in
      Ok (Win_record { win; guilty; blame; drop_time })
  | Some "win_expire" ->
      let* win = field_int json "win" in
      let* before = field_float json "before" in
      Ok (Win_expire { win; before })
  | Some "dht_put" ->
      let* from_node = field_int json "from" in
      let* accuser = field_int json "accuser" in
      let* accused = field_int json "accused" in
      let* drop_time = field_float json "drop_time" in
      let* copies = field_int json "copies" in
      Ok (Dht_put { from_node; accuser; accused; drop_time; copies })
  | Some "dht_get" ->
      let* from_node = field_int json "from" in
      let* accused = field_int json "accused" in
      Ok (Dht_get { from_node; accused })
  | Some "dht_crash" ->
      let* node = field_int json "node" in
      Ok (Dht_crash { node })
  | Some "dht_revive" ->
      let* node = field_int json "node" in
      Ok (Dht_revive { node })
  | Some "dht_drop_replica" ->
      let* node = field_int json "node" in
      Ok (Dht_drop_replica { node })
  | Some "arch_record" ->
      let* owner = field_int json "owner" in
      let* accused = field_int json "accused" in
      let* drop_time = field_float json "drop_time" in
      Ok (Arch_record { owner; accused; drop_time })
  | Some "arch_defend" ->
      let* owner = field_int json "owner" in
      let* accuser = field_int json "accuser" in
      let* drop_time = field_float json "drop_time" in
      Ok (Arch_defend { owner; accuser; drop_time })
  | Some other -> Error (Printf.sprintf "unknown operation %S" other)

let rec decode_ops acc = function
  | [] -> Ok (List.rev acc)
  | json :: rest -> (
      match decode_op json with
      | Ok op -> decode_ops (op :: acc) rest
      | Error message -> Error message)

let decode json =
  let* seed = field_int json "seed" in
  let* nodes = field_int json "nodes" in
  let* window_size = field_int json "window_size" in
  let* m = field_int json "m" in
  let* replication = field_int json "replication" in
  let* op_list =
    match Option.bind (Json.member "ops" json) Json.to_list with
    | Some items -> Ok items
    | None -> Error "missing or non-list field \"ops\""
  in
  let* ops = decode_ops [] op_list in
  if nodes < 2 then Error "schedule needs at least two nodes"
  else if window_size < 1 then Error "window_size must be positive"
  else if replication < 1 then Error "replication must be positive"
  else Ok { seed; nodes; window_size; m; replication; ops }
