(** Small, obviously-correct reference models of the protocol's stateful
    pieces, in the style of [Minc.infer_reference]: each module restates a
    paper-level contract with naive lists and linear scans, and the lockstep
    driver ({!Lockstep}) executes it in step with the optimized
    implementation, comparing state at every quiescence point.

    The models deliberately share only {e inputs} with the implementations
    (the overlay under test, accusation values, key derivation — data, not
    state machinery): replication walks, window arithmetic, expiry
    boundaries and store bookkeeping are all re-derived from scratch here,
    so an off-by-one in the optimized ring-buffer or failover path cannot
    cancel out. *)

module Id = Concilium_overlay.Id
module Pastry = Concilium_overlay.Pastry
module Pki = Concilium_crypto.Pki
module Accusation = Concilium_core.Accusation

(** Reference sliding verdict window: a plain list, oldest first, truncated
    to the newest [window_size] on record and filtered on expire
    (inclusive-keep at the horizon, matching
    {!Concilium_core.Verdict_window.expire}). *)
module Window : sig
  type entry = { guilty : bool; blame : float; drop_time : float }

  type t

  val create : window_size:int -> t
  (** @raise Invalid_argument when [window_size <= 0]. *)

  val record : t -> entry -> unit
  val length : t -> int
  val guilty_count : t -> int
  val should_accuse : t -> m:int -> bool

  val expire : t -> before:float -> unit
  (** Keep entries with [drop_time >= before]. *)

  val drop_times : t -> float list
  (** Oldest first. *)
end

(** Reference accusation repository: replica placement re-derived by linear
    scan (root = node minimising ring distance to the key, then the root's
    leaf-set members by distance), contents held as one flat association
    list. Mirrors the {!Concilium_core.Dht} contract including failover
    past dead candidates, idempotent duplicate deliveries and replica
    loss. *)
module Store : sig
  type t

  val create : pastry:Pastry.t -> replication:int -> t

  val replica_candidates : t -> key:Id.t -> int list
  (** Full failover ordering: root first, then the root's leaf-set members
      by ring proximity to the key. *)

  type put_report = { replicas_written : int; put_failed_over : bool; hops : int }

  val put :
    t ->
    from:int ->
    alive:(int -> bool) ->
    copies:int ->
    accused_key:Pki.public_key ->
    Accusation.t ->
    put_report

  type get_report = {
    record_keys : string list;  (** idempotence keys of the merged result, sorted *)
    replicas_read : int;
    get_failed_over : bool;
    hops : int;
  }

  val get : t -> from:int -> alive:(int -> bool) -> accused_key:Pki.public_key -> get_report

  val drop_replica : t -> node:int -> unit
  val stored_count : t -> node:int -> int
  val total_records : t -> int

  val record_key : Accusation.t -> string
  (** The (accuser, accused, drop time) idempotence key, re-derived from the
      documented contract. *)
end

(** Reference rebuttal archive: a list of issued onward verdicts, newest
    first; [defend] scans for the first candidate whose accuser is the
    accusation's accused with a drop time within the accusation's blame
    window (boundary inclusive), the
    {!Concilium_core.Rebuttal} contract. *)
module Archive : sig
  type t

  val create : unit -> t
  val record : t -> Accusation.t -> unit
  val size : t -> int

  val defend : t -> against:Accusation.t -> Accusation.t option
end
