(** Minimal JSON tree, writer and parser for the conformance checker's
    reproducer artifacts.

    The repo deliberately carries no JSON dependency; transcripts elsewhere
    are write-only [Printf] emissions. The checker additionally needs to
    {e read} its own counterexample files back ([check.exe --replay]), so
    this module provides the round-trip: {!to_string} output is stable
    (object fields in construction order, floats via ["%.17g"] so every
    schedule timestamp survives exactly) and {!parse} accepts standard JSON
    with ASCII escapes. It is a tool for artifacts, not a general-purpose
    JSON library: deep nesting is bounded, and non-ASCII escapes decode to
    ['?']. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). [Float] uses ["%.17g"],
    which round-trips every finite double; non-finite floats render as
    [null]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering for human-facing artifacts. Same value
    encoding as {!to_string}. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing garbage
    is an error). Numbers with [.], [e] or [E] parse as [Float], others as
    [Int] (falling back to [Float] on 63-bit overflow). Errors carry a
    character offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] (first match); [None] on other constructors. *)

val to_int : t -> int option
(** [Int] payload; also accepts an integral [Float]. *)

val to_float : t -> float option
(** [Float] or [Int] payload. *)

val to_list : t -> t list option
val to_bool : t -> bool option
val string_value : t -> string option
