(** The conformance-checking harness behind [check.exe].

    {!run_budget} executes a budget of generated schedules through
    {!Lockstep.run}, fanning out over a domain pool with pre-split
    per-schedule seeds so the transcript is byte-identical for every
    [--domains] value. The first divergent schedule (in seed order) is
    minimized with {!Shrink.ddmin} into a 1-minimal reproducer.

    {!artifact} renders a counterexample as a self-contained JSON document
    — the schedule, the active mutation, the divergence — and {!replay}
    runs such a document back through the same lockstep driver, so a CI
    failure is reproducible locally from the uploaded file alone.

    {!reconcile_bytes} is the orthogonal end-to-end check: a full protocol
    run under a chaos plan whose per-message byte accounting
    ([Protocol.control_bytes_sent] summed over nodes) must equal the obs
    layer's byte counters exactly. *)

type outcome = {
  seed : int;
  ops : int;
  divergence : Lockstep.divergence option;
}

type report = {
  outcomes : outcome list;  (** in seed order *)
  divergent : int;
  counterexample : (Schedule.t * Lockstep.divergence) option;
      (** first divergent schedule, minimized *)
}

val run_budget :
  ?domains:int ->
  ?mutation:Lockstep.mutation ->
  base_seed:int ->
  budget:int ->
  unit ->
  report
(** Schedules use seeds [base_seed], [base_seed + 1], ... Deterministic in
    ([base_seed], [budget], [mutation]); independent of [domains]. *)

val render_transcript : report -> string
(** One line per schedule plus a summary line; stable across domain
    counts. *)

val artifact :
  schedule:Schedule.t ->
  mutation:Lockstep.mutation option ->
  divergence:Lockstep.divergence ->
  Json.t

type replay_result = {
  schedule : Schedule.t;
  mutation : Lockstep.mutation option;
  replay_divergence : Lockstep.divergence option;
      (** what re-running the artifact's schedule produces now *)
}

val replay : string -> (replay_result, string) result
(** Parse an {!artifact} document and re-run its schedule under its
    mutation. *)

type reconciliation = { metered : int; charged : int }
(** [metered]: sum of the obs byte counters ([bytes.probe_stripe],
    [bytes.advert_diff], [bytes.snapshot_exchange], [bytes.heavy_probe]).
    [charged]: [Protocol.control_bytes_sent] summed over all nodes. The
    two must be equal, and positive. *)

val reconcile_bytes : seed:int -> reconciliation
(** Full protocol run (probing, a few diagnosed messages, an advertisement
    exchange) under a moderate chaos plan, deterministic in [seed]. *)
