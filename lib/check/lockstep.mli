(** Twin execution of a {!Schedule} against the optimized implementations
    and the {!Model} references, with state compared after every operation.

    Each run builds one deterministic world from the schedule's seed — an
    overlay, a PKI with a principal per node, per-node verdict windows,
    rebuttal archives, and the accusation DHT next to its model store —
    then applies the operations to both sides in lockstep. Every operation
    is a quiescence point: the touched component's observable state
    (window lengths, guilty counts and drop times; DHT reports, hop
    charges, per-node stored counts; archive sizes and defense outcomes)
    must agree exactly, floats included, since both sides consume identical
    inputs and perform no arithmetic on them. A final sweep re-checks every
    component. The first disagreement is returned as a {!divergence}.

    [mutation] deliberately mis-implements one boundary on the
    {e implementation} side — the canary proving the checker can see.
    Each mutation reproduces a realistic off-by-one (flipping the window
    expiry's [>=] to [>], demanding strictly more than [m] guilty verdicts,
    ignoring crash faults in DHT liveness, widening the rebuttal matching
    window) and must be caught and shrunk to a replayable counterexample by
    the harness. *)

type mutation =
  | Window_expire_exclusive
      (** expire with [drop_time > before] instead of [>=]: the inclusive
          boundary entry is wrongly dropped *)
  | Window_accuse_strict
      (** escalate on strictly more than [m] guilty verdicts *)
  | Dht_ignore_crashes
      (** treat every replica as alive, writing to and reading from crashed
          nodes *)
  | Archive_widen_window
      (** match rebuttals against a shifted drop time, accepting stale
          verdicts and missing boundary ones *)

val mutation_name : mutation -> string
val mutation_of_name : string -> mutation option
val all_mutations : mutation list

type divergence = {
  op_index : int;  (** index into the schedule's operations; [op_count]
                       means the final full-state sweep *)
  component : string;  (** ["window"], ["dht"], ["archive"], ["final"] *)
  detail : string;
}

val pp_divergence : Format.formatter -> divergence -> unit

val run : ?mutation:mutation -> Schedule.t -> divergence option
(** [None] when implementation and model agree over the whole schedule.
    Deterministic: equal schedules (and mutation) give equal results. *)
