module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool
module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Dht = Concilium_core.Dht
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Chaos = Concilium_netsim.Chaos
module Graph = Concilium_topology.Graph
module Id = Concilium_overlay.Id
module Collector = Concilium_obs.Collector
module Metrics = Concilium_obs.Metrics

type outcome = { seed : int; ops : int; divergence : Lockstep.divergence option }

type report = {
  outcomes : outcome list;
  divergent : int;
  counterexample : (Schedule.t * Lockstep.divergence) option;
}

let minimize ?mutation schedule divergence =
  let reproduces ops =
    Option.is_some (Lockstep.run ?mutation (Schedule.with_ops schedule ops))
  in
  let minimized = Schedule.with_ops schedule (Shrink.ddmin ~reproduces schedule.Schedule.ops) in
  match Lockstep.run ?mutation minimized with
  | Some minimized_divergence -> (minimized, minimized_divergence)
  | None ->
      (* Unreachable while ddmin preserves its invariant; fall back to the
         unshrunk schedule rather than lose the counterexample. *)
      (schedule, divergence)

let run_budget ?domains ?mutation ~base_seed ~budget () =
  let seeds = Array.init budget (fun i -> base_seed + i) in
  let raw =
    Pool.with_pool ?domains (fun pool ->
        Pool.parallel_map ~pool seeds ~f:(fun seed ->
            let schedule = Schedule.generate ~seed in
            (seed, schedule, Lockstep.run ?mutation schedule)))
  in
  let outcomes =
    Array.to_list
      (Array.map
         (fun (seed, schedule, divergence) ->
           { seed; ops = Schedule.op_count schedule; divergence })
         raw)
  in
  let divergent =
    List.length (List.filter (fun o -> Option.is_some o.divergence) outcomes)
  in
  let counterexample =
    Array.to_list raw
    |> List.find_map (fun (_, schedule, divergence) ->
           Option.map (fun d -> (schedule, d)) divergence)
    |> Option.map (fun (schedule, divergence) -> minimize ?mutation schedule divergence)
  in
  { outcomes; divergent; counterexample }

let render_transcript report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun o ->
      match o.divergence with
      | None -> Buffer.add_string buf (Printf.sprintf "seed=%d ops=%d ok\n" o.seed o.ops)
      | Some d ->
          Buffer.add_string buf
            (Printf.sprintf "seed=%d ops=%d DIVERGED op=%d %s: %s\n" o.seed o.ops
               d.Lockstep.op_index d.Lockstep.component d.Lockstep.detail))
    report.outcomes;
  Buffer.add_string buf
    (Printf.sprintf "schedules=%d divergent=%d\n" (List.length report.outcomes)
       report.divergent);
  (match report.counterexample with
  | None -> ()
  | Some (schedule, divergence) ->
      Buffer.add_string buf
        (Printf.sprintf "counterexample seed=%d minimized_ops=%d op=%d %s: %s\n"
           schedule.Schedule.seed
           (Schedule.op_count schedule)
           divergence.Lockstep.op_index divergence.Lockstep.component
           divergence.Lockstep.detail));
  Buffer.contents buf

(* ---------- Artifacts & replay ---------- *)

let artifact ~schedule ~mutation ~divergence =
  Json.Obj
    [
      ("format", Json.String "concilium-check-counterexample");
      ("version", Json.Int 1);
      ( "mutation",
        match mutation with
        | None -> Json.Null
        | Some m -> Json.String (Lockstep.mutation_name m) );
      ( "divergence",
        Json.Obj
          [
            ("op_index", Json.Int divergence.Lockstep.op_index);
            ("component", Json.String divergence.Lockstep.component);
            ("detail", Json.String divergence.Lockstep.detail);
          ] );
      ("schedule", Schedule.encode schedule);
    ]

type replay_result = {
  schedule : Schedule.t;
  mutation : Lockstep.mutation option;
  replay_divergence : Lockstep.divergence option;
}

let ( let* ) r f = Result.bind r f

let replay text =
  let* json = Json.parse text in
  let* mutation =
    match Json.member "mutation" json with
    | None | Some Json.Null -> Ok None
    | Some field -> (
        match Option.bind (Some field) Json.string_value with
        | None -> Error "mutation field must be a string or null"
        | Some name -> (
            match Lockstep.mutation_of_name name with
            | Some m -> Ok (Some m)
            | None -> Error (Printf.sprintf "unknown mutation %S" name)))
  in
  let* schedule =
    match Json.member "schedule" json with
    | None -> Error "missing \"schedule\" field"
    | Some field -> Schedule.decode field
  in
  Ok { schedule; mutation; replay_divergence = Lockstep.run ?mutation schedule }

(* ---------- Byte reconciliation ---------- *)

type reconciliation = { metered : int; charged : int }

let reconcile_bytes ~seed =
  let rng = Prng.of_seed (Int64.of_int seed) in
  let world = World.build (World.tiny_config ~seed:(Int64.of_int (seed + 77))) in
  let graph = world.World.generated.World.Generate.graph in
  let node_count = World.node_count world in
  let link_count = Graph.link_count graph in
  let engine = Engine.create () in
  let link_state = Link_state.create ~link_count ~good_loss:0.001 ~bad_loss:1. in
  let obs = Collector.create () in
  let horizon = 1200. in
  let plan =
    Chaos.sample ~rng:(Prng.split rng)
      ~config:
        {
          Chaos.quiet with
          Chaos.link_flaps_per_hour = 6.;
          flap_mean_duration = 120.;
          crashes_per_hour = 2.;
          crash_mean_duration = 180.;
          replica_losses_per_hour = 2.;
          duplications_per_hour = 2.;
          duplication_mean_duration = 300.;
          duplication_copies = 2;
        }
      ~links:(Array.init link_count Fun.id) ~nodes:node_count ~cuts:[||] ~horizon
  in
  let dht_ref = ref None in
  let chaos =
    Chaos.compile
      ~on_replica_loss:(fun ~node ~time:_ ->
        match !dht_ref with Some dht -> Dht.drop_replica dht ~node | None -> ())
      ~engine ~link_state plan
  in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.split rng)
      ~availability:(fun ~time v -> Chaos.node_online chaos ~time v)
      ~control_latency:(fun ~time -> Chaos.control_latency chaos ~time)
      ~put_copies:(fun ~time -> Chaos.put_copies chaos ~time)
      ~obs Protocol.default_config
      ~behavior:(fun _ -> Protocol.Honest)
  in
  dht_ref := Some (Protocol.dht protocol);
  Protocol.start_probing protocol ~horizon;
  Engine.run_until engine (horizon /. 2.);
  for _ = 1 to 3 do
    let from = Prng.int rng node_count in
    let dest = Id.random rng in
    Protocol.send_message protocol ~from ~dest ~payload:"conformance"
      ~on_outcome:(fun _ -> ())
  done;
  Engine.run_until engine (horizon +. 600.);
  let (_ : Protocol.advertisement_report list) = Protocol.exchange_advertisements protocol in
  let metrics = obs.Collector.metrics in
  let metered =
    List.fold_left
      (fun acc name -> acc + Metrics.counter metrics name)
      0
      [
        "bytes.probe_stripe"; "bytes.advert_diff"; "bytes.snapshot_exchange";
        "bytes.heavy_probe";
      ]
  in
  let charged = ref 0 in
  for v = 0 to node_count - 1 do
    charged := !charged + Protocol.control_bytes_sent protocol v
  done;
  { metered; charged = !charged }
