module Chaos = Concilium_netsim.Chaos
module Protocol = Concilium_core.Protocol
module World = Concilium_core.World
module Prng = Concilium_util.Prng
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Id = Concilium_overlay.Id

(* Compiled campaign forms: membership as node-indexed masks, lie targets
   as link-indexed masks plus a small capped list for forged-report
   stuffing. Everything is precomputed at compile time; taps only test
   masks and draw from the strategy PRNG. *)

type collusion = {
  c_members : bool array;
  c_drop_probability : float;
  c_corroboration : float;
  c_start : float;
  c_stop : float;
  c_shield : bool array;
      (* coalition-wide lie targets: members' egress links that at least
         one NON-member's probe tree also covers. Lying only where honest
         echo exists keeps the corroboration campaign plausible — a link
         only the coalition can see is a self-evident fabrication. *)
  c_own : (int * bool array) list;
      (* member -> its own egress mask. Self-exculpation (misreporting
         your own probes about your own links) is always plausible, even
         where no honest voucher exists — exactly the Section 3.4 attack
         the exclude_suspect_probes defense answers. *)
  c_forge : (int * int array) list;
      (* member -> the capped link list it stuffs forged reports onto:
         (shield ∩ its own forest) ∪ its own egress. A probe vote for a
         link outside the prober's announced forest would not verify, so
         forging is bounded by what the member could have probed. *)
}

type lying = {
  l_reporters : bool array;
  l_corroboration : float;
  l_start : float;
  l_stop : float;
  l_frame : bool array;  (* links on the victim's egress paths *)
  l_forge : (int * int array) list;  (* reporter -> frame ∩ its forest, capped *)
}

type eclipse = {
  e_attackers : int array;  (* insertion preference order *)
  e_attacker_mask : bool array;
  e_victim : int;
  e_start : float;
  e_stop : float;
}

type biased = { b_samplers : bool array; b_favored : int; b_start : float; b_stop : float }

type t = {
  world : World.t;
  rng : Prng.t;
  forge_copies : int;
  collusions : collusion list;
  lyings : lying list;
  eclipses : eclipse list;
  biaseds : biased list;
  compromised : int array;
  compromised_mask : bool array;
  victims : int array;
  biased_samplers : int array;
}

let forge_cap = 96

(* Union of the egress-path links of every node in [nodes]: the links a
   judge inspects when one of them is the suspect. *)
let egress_links world nodes ~link_count =
  let mask = Array.make link_count false in
  Array.iter
    (fun v ->
      Array.iter
        (fun path ->
          match path with
          | Some path -> Array.iter (fun link -> mask.(link) <- true) path.Routes.links
          | None -> ())
        world.World.peer_paths.(v))
    nodes;
  mask

let capped_list_of_mask mask =
  let listed = ref [] and count = ref 0 in
  let i = ref 0 in
  while !count < forge_cap && !i < Array.length mask do
    if mask.(!i) then begin
      listed := !i :: !listed;
      incr count
    end;
    incr i
  done;
  Array.of_list (List.rev !listed)

let forest_mask world v ~link_count =
  let mask = Array.make link_count false in
  Array.iter (fun link -> if link < link_count then mask.(link) <- true) (World.forest_links world v);
  mask

let sorted_distinct nodes =
  let arr = Array.of_list nodes in
  Array.sort Int.compare arr;
  let out = ref [] in
  Array.iter
    (fun v -> match !out with x :: _ when x = v -> () | _ -> out := v :: !out)
    arr;
  Array.of_list (List.rev !out)

let mask_of node_count nodes =
  let mask = Array.make node_count false in
  Array.iter (fun v -> if v >= 0 && v < node_count then mask.(v) <- true) nodes;
  mask

let compile ~world ~rng ?(forge_copies = 3) plan =
  let node_count = World.node_count world in
  let link_count = Graph.link_count world.World.generated.World.Generate.graph in
  let collusions = ref []
  and lyings = ref []
  and eclipses = ref []
  and biaseds = ref [] in
  let all = ref [] and victim_list = ref [] and sampler_list = ref [] in
  List.iter
    (fun adversary ->
      match adversary with
      | Chaos.Collusion { members; drop_probability; corroboration; start; duration } ->
          let member_mask = mask_of node_count members in
          let egress_all = egress_links world members ~link_count in
          let shield =
            Array.mapi
              (fun link on ->
                on
                && List.exists
                     (fun v -> not (v >= 0 && v < node_count && member_mask.(v)))
                     (World.vouchers world ~link))
              egress_all
          in
          let own =
            Array.to_list members
            |> List.map (fun m -> (m, egress_links world [| m |] ~link_count))
          in
          let forge =
            List.map
              (fun (m, own_mask) ->
                let forest = forest_mask world m ~link_count in
                let covered =
                  Array.mapi (fun link c -> c && forest.(link)) shield
                in
                (* Coalition shield links first — a helper's stuffing is
                   only worth anything on links some judge inspects — then
                   the member's own egress (self-exculpation, including
                   links nobody else vouches for). *)
                let shield_list = capped_list_of_mask covered in
                let room = max 0 (forge_cap - Array.length shield_list) in
                let own_only =
                  Array.mapi (fun link o -> o && not covered.(link)) own_mask
                in
                let own_list = capped_list_of_mask own_only in
                let own_list = Array.sub own_list 0 (min room (Array.length own_list)) in
                (m, Array.append shield_list own_list))
              own
          in
          all := Array.to_list members @ !all;
          collusions :=
            {
              c_members = member_mask;
              c_drop_probability = drop_probability;
              c_corroboration = corroboration;
              c_start = start;
              c_stop = start +. duration;
              c_shield = shield;
              c_own = own;
              c_forge = forge;
            }
            :: !collusions
      | Chaos.Lying_reporters { reporters; victim; corroboration; start; duration } ->
          let frame = egress_links world [| victim |] ~link_count in
          let forge =
            Array.to_list reporters
            |> List.map (fun r ->
                   let forest = forest_mask world r ~link_count in
                   let mine = Array.mapi (fun link on -> on && forest.(link)) frame in
                   (r, capped_list_of_mask mine))
          in
          all := Array.to_list reporters @ !all;
          victim_list := victim :: !victim_list;
          lyings :=
            {
              l_reporters = mask_of node_count reporters;
              l_corroboration = corroboration;
              l_start = start;
              l_stop = start +. duration;
              l_frame = frame;
              l_forge = forge;
            }
            :: !lyings
      | Chaos.Eclipse { attackers; victim; start; duration } ->
          all := Array.to_list attackers @ !all;
          victim_list := victim :: !victim_list;
          eclipses :=
            {
              e_attackers = attackers;
              e_attacker_mask = mask_of node_count attackers;
              e_victim = victim;
              e_start = start;
              e_stop = start +. duration;
            }
            :: !eclipses
      | Chaos.Biased_sampling { samplers; favored; start; duration } ->
          all := Array.to_list samplers @ !all;
          sampler_list := Array.to_list samplers @ !sampler_list;
          biaseds :=
            {
              b_samplers = mask_of node_count samplers;
              b_favored = favored;
              b_start = start;
              b_stop = start +. duration;
            }
            :: !biaseds)
    plan;
  let compromised = sorted_distinct !all in
  {
    world;
    rng;
    forge_copies = max 1 forge_copies;
    collusions = List.rev !collusions;
    lyings = List.rev !lyings;
    eclipses = List.rev !eclipses;
    biaseds = List.rev !biaseds;
    compromised;
    compromised_mask = mask_of node_count (Array.to_list compromised |> Array.of_list);
    victims = sorted_distinct !victim_list;
    biased_samplers = sorted_distinct !sampler_list;
  }

let compromised t = t.compromised
let victims t = t.victims
let biased_samplers t = t.biased_samplers

let is_compromised t v =
  v >= 0 && v < Array.length t.compromised_mask && t.compromised_mask.(v)

let in_window ~start ~stop time = time >= start && time < stop

(* ---------- Tap implementations ---------- *)

(* Wedge the first viable attacker immediately upstream of the victim.
   Viability: the previous hop can reach the attacker over IP and the
   attacker can reach the victim, so the rewritten route stays routable;
   attackers already on the route are skipped. *)
let insert_attacker world e route =
  let rec go prefix remaining =
    match remaining with
    | prev :: v :: rest when v = e.e_victim && prev <> e.e_victim ->
        let viable a =
          a <> prev && a <> e.e_victim
          && (not (List.mem a route))
          && Option.is_some (World.ip_path world ~from_node:prev ~to_node:a)
          && Option.is_some (World.ip_path world ~from_node:a ~to_node:e.e_victim)
        in
        let chosen =
          Array.fold_left
            (fun acc a -> match acc with Some _ -> acc | None -> if viable a then Some a else None)
            None e.e_attackers
        in
        (match chosen with
        | Some a -> Some (List.rev_append prefix (prev :: a :: v :: rest))
        | None -> None)
    | hop :: rest -> go (hop :: prefix) rest
    | [] -> None
  in
  go [] route

let tap_route t ~time ~from:_ ~dest:_ route =
  List.fold_left
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None ->
          if in_window ~start:e.e_start ~stop:e.e_stop time then insert_attacker t.world e route
          else None)
    None t.eclipses

let tap_forward t ~time ~node ~sender:_ ~next =
  if
    List.exists
      (fun e ->
        in_window ~start:e.e_start ~stop:e.e_stop time
        && e.e_attacker_mask.(node) && next = e.e_victim)
      t.eclipses
  then Some Protocol.Tap_drop
  else begin
    let rec go = function
      | [] -> None
      | c :: rest ->
          if in_window ~start:c.c_start ~stop:c.c_stop time && c.c_members.(node) then
            if Prng.bernoulli t.rng c.c_drop_probability then Some Protocol.Tap_drop
            else None (* this round the colluder behaves, to stay plausible *)
          else go rest
    in
    go t.collusions
  end

let tap_observation t ~time ~prober ~link ~up =
  (* Coalition shielding first (claim "down" near a colluder), then victim
     framing (claim "up" near the victim). A prober serving both campaigns
     resolves shield-first — pleading network innocence protects the
     coalition even at the cost of one framing vote. *)
  let shields =
    List.exists
      (fun c ->
        in_window ~start:c.c_start ~stop:c.c_stop time
        && c.c_members.(prober)
        && link < Array.length c.c_shield
        && (c.c_shield.(link)
           ||
           match List.find_opt (fun (m, _) -> m = prober) c.c_own with
           | Some (_, own_mask) -> own_mask.(link)
           | None -> false)
        && Prng.bernoulli t.rng c.c_corroboration)
      t.collusions
  in
  if shields then false
  else begin
    let frames =
      List.exists
        (fun l ->
          in_window ~start:l.l_start ~stop:l.l_stop time
          && l.l_reporters.(prober)
          && link < Array.length l.l_frame
          && l.l_frame.(link)
          && Prng.bernoulli t.rng l.l_corroboration)
        t.lyings
    in
    if frames then true else up
  end

let tap_advertised_peers t ~time ~node peers =
  (* Over-represent the favored node: every other advertised slot is
     replaced, which both inflates the favored node's visibility and
     suppresses knowledge of honest peers. *)
  let rewrite =
    List.fold_left
      (fun acc b ->
        match acc with
        | Some _ -> acc
        | None ->
            if in_window ~start:b.b_start ~stop:b.b_stop time && b.b_samplers.(node) then
              Some b.b_favored
            else None)
      None t.biaseds
  in
  match rewrite with
  | None -> None
  | Some favored ->
      Some
        (Array.mapi
           (fun i peer -> if i mod 2 = 0 && peer <> favored && favored <> node then favored else peer)
           peers)

let tap_forged_reports t ~time ~prober =
  let out = ref [] in
  List.iter
    (fun c ->
      if in_window ~start:c.c_start ~stop:c.c_stop time && c.c_members.(prober) then
        match List.find_opt (fun (m, _) -> m = prober) c.c_forge with
        | Some (_, links) ->
            Array.iter
              (fun link ->
                for _ = 1 to t.forge_copies do
                  out := (link, false) :: !out
                done)
              links
        | None -> ())
    t.collusions;
  List.iter
    (fun l ->
      if in_window ~start:l.l_start ~stop:l.l_stop time && l.l_reporters.(prober) then
        match List.find_opt (fun (r, _) -> r = prober) l.l_forge with
        | Some (_, links) ->
            Array.iter
              (fun link ->
                for _ = 1 to t.forge_copies do
                  out := (link, true) :: !out
                done)
              links
        | None -> ())
    t.lyings;
  List.rev !out

let taps t =
  {
    Protocol.tap_route = (fun ~time ~from ~dest route -> tap_route t ~time ~from ~dest route);
    tap_forward = (fun ~time ~node ~sender ~next -> tap_forward t ~time ~node ~sender ~next);
    tap_observation =
      (fun ~time ~prober ~link ~up -> tap_observation t ~time ~prober ~link ~up);
    tap_advertised_peers =
      (fun ~time ~node peers -> tap_advertised_peers t ~time ~node peers);
    tap_forged_reports = (fun ~time ~prober -> tap_forged_reports t ~time ~prober);
  }

(* ---------- Targeted plan builders ---------- *)

let targeted_route ~world ~rng ~min_hops =
  let node_count = World.node_count world in
  let rec trial k =
    if k = 0 then None
    else begin
      let from = Prng.int rng node_count in
      let dest = Id.random rng in
      let route = World.overlay_route world ~from ~dest in
      if List.length route >= min_hops then Some (from, dest, route) else trial (k - 1)
    end
  in
  trial 64

(* The judge evaluates the route's first forwarder over the IP path to the
   second forwarder, one confidence per link, voteless links skipped. A
   "self-exculpation gap" is a link on that path where no prober visible
   to the judge (itself or its peers) vouches except the forwarder itself:
   with exclude_suspect_probes off, the forwarder's lone "down" vote there
   is uncontradicted and acquits it — the Section 3.4 attack in its purest
   form. Routes with a gap make the suspect-exclusion canary deterministic. *)
let self_exculpation_gap ~world ~route =
  match route with
  | sender :: dropper :: after :: _ -> (
      match World.ip_path world ~from_node:dropper ~to_node:after with
      | None -> false
      | Some path ->
          let visible v =
            v = sender || Array.exists (fun p -> p = v) world.World.peers.(sender)
          in
          Array.exists
            (fun link ->
              List.for_all
                (fun v -> v = dropper || not (visible v))
                (World.vouchers world ~link))
            path.Routes.links)
  | _ -> false

(* How many potential helpers (peers of the sender, off the route) have a
   probe forest covering at least one link of the judged path — i.e. can
   corroborate a shield campaign where it counts. *)
let coalition_coverage ~world ~route =
  match route with
  | sender :: dropper :: after :: _ -> (
      match World.ip_path world ~from_node:dropper ~to_node:after with
      | None -> 0
      | Some path ->
          let covers peer =
            let forest = World.forest_links world peer in
            Array.exists
              (fun link -> Array.exists (fun l -> l = link) path.Routes.links)
              forest
          in
          Array.fold_left
            (fun count peer ->
              if peer <> dropper && (not (List.mem peer route)) && covers peer then count + 1
              else count)
            0 world.World.peers.(sender))
  | _ -> 0

(* Peers of [anchor] that corroborating reports must be visible from:
   excluded are the route's own hops and [avoid]. *)
let visible_helpers world ~anchor ~route ~avoid ~want =
  let taken = ref [] and count = ref 0 in
  Array.iter
    (fun peer ->
      if
        !count < want && peer <> avoid
        && (not (List.mem peer route))
        && not (List.mem peer !taken)
      then begin
        taken := peer :: !taken;
        incr count
      end)
    world.World.peers.(anchor);
  List.rev !taken

let collusion_against_route ~world ~route ~size ~drop_probability ~corroboration ~start
    ~duration =
  match route with
  | sender :: dropper :: after :: _ ->
      (* Prefer helpers whose probe forest overlaps the links the judge
         actually inspects — the dropper's egress path to the next hop:
         their corroborating "down" votes (and forgeries, which are
         bounded by the forest) land exactly where the verdict is decided. *)
      let link_count = Graph.link_count world.World.generated.World.Generate.graph in
      let judged = Array.make link_count false in
      (match World.ip_path world ~from_node:dropper ~to_node:after with
      | Some path -> Array.iter (fun link -> if link < link_count then judged.(link) <- true) path.Routes.links
      | None -> ());
      let overlaps peer =
        let forest = World.forest_links world peer in
        Array.exists (fun link -> link < link_count && judged.(link)) forest
      in
      let candidates = visible_helpers world ~anchor:sender ~route ~avoid:dropper ~want:max_int in
      let preferred, rest = List.partition overlaps candidates in
      let rec take n = function
        | [] -> []
        | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs
      in
      let helpers = take (max 0 (size - 1)) (preferred @ rest) in
      Some
        (Chaos.Collusion
           {
             members = Array.of_list (dropper :: helpers);
             drop_probability;
             corroboration;
             start;
             duration;
           })
  | _ -> None

let lying_against_route ~world ~route ~size ~corroboration ~start ~duration =
  match route with
  | sender :: victim :: after :: _ ->
      (* Framing must sway two parties: the sender (whose verdict blames
         the victim) and the victim itself (whose own no-commitment
         judgment would otherwise push a Network verdict that exonerates
         it on revision). Prefer reporters visible to both — peers of the
         sender that are also peers of the victim — and among those, ones
         whose forest covers the victim's egress so their lies land. *)
      let link_count = Graph.link_count world.World.generated.World.Generate.graph in
      let victim_egress = egress_links world [| victim |] ~link_count in
      let peer_of anchor peer = Array.exists (fun p -> p = peer) world.World.peers.(anchor) in
      let covers peer =
        let forest = World.forest_links world peer in
        Array.exists (fun link -> link < link_count && victim_egress.(link)) forest
      in
      let score peer =
        (if peer_of victim peer then 2 else 0) + if covers peer then 1 else 0
      in
      let candidates = visible_helpers world ~anchor:sender ~route ~avoid:victim ~want:max_int in
      let ranked =
        List.stable_sort (fun a b -> Int.compare (score b) (score a)) candidates
      in
      let rec take n = function
        | [] -> []
        | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs
      in
      let reporters = take size ranked in
      if reporters = [] then None
      else begin
        let egress =
          match World.ip_path world ~from_node:victim ~to_node:after with
          | Some path -> path.Routes.links
          | None -> [||]
        in
        Some
          ( Chaos.Lying_reporters
              {
                reporters = Array.of_list reporters;
                victim;
                corroboration;
                start;
                duration;
              },
            egress )
      end
  | _ -> None

let eclipse_against_route ~world ~route ~size ~start ~duration =
  match route with
  | sender :: victim :: _ :: _ ->
      let viable = ref [] and count = ref 0 in
      Array.iter
        (fun peer ->
          if
            !count < size && peer <> victim
            && (not (List.mem peer route))
            && Option.is_some (World.ip_path world ~from_node:sender ~to_node:peer)
            && Option.is_some (World.ip_path world ~from_node:peer ~to_node:victim)
          then begin
            viable := peer :: !viable;
            incr count
          end)
        world.World.peers.(sender);
      if !viable = [] then None
      else
        Some
          (Chaos.Eclipse
             { attackers = Array.of_list (List.rev !viable); victim; start; duration })
  | _ -> None
