(** Stateful adversary strategies compiled onto the protocol's tap points.

    The chaos DSL samples {e who} is compromised and {e when}
    ({!Concilium_netsim.Chaos.adversary_plan}); this module supplies the
    {e behaviour}: it compiles a plan against a concrete world into the
    {!Concilium_core.Protocol.taps} record, precomputing for each campaign
    the link sets its members lie about:

    - {b Collusion}: members drop forwarded episodes with the configured
      probability while corroborating each other's innocence — their probe
      reports claim the coalition's egress links ("shield links") are down,
      so a judged colluder looks like a victim of the network. Members also
      stuff duplicate forged "down" reports into each round (the vector the
      [one_vote_per_prober] defense collapses).
    - {b Lying reporters}: reporters bias tomography inputs against a
      victim — their reports claim the victim's egress links ("frame
      links") are up even when probes saw loss, so drops caused by the
      network settle on the victim; plus forged duplicate "up" reports.
    - {b Eclipse}: attackers wedge themselves into overlay routes
      immediately upstream of the victim (only where IP reachability
      holds, so the rewrite is routable) and eat the traffic they
      intercept.
    - {b Biased sampling}: samplers rewrite their advertised peer sets to
      over-represent a favored node, skewing who gets probed and judged —
      pair with [Sparse_advertiser] behaviour so the Section 3.1 density
      test has something to catch.

    Determinism: all strategy randomness comes from the single [rng] given
    to {!compile}, which callers pre-split from the scenario seed before
    any parallel fan-out. Taps draw nothing from the protocol's own PRNG,
    and tap calls happen in engine event order, so a (seed, plan) pair
    replays byte-identically for any domain count. *)

module Chaos = Concilium_netsim.Chaos
module Protocol = Concilium_core.Protocol
module World = Concilium_core.World
module Prng = Concilium_util.Prng

type t

val compile : world:World.t -> rng:Prng.t -> ?forge_copies:int -> Chaos.adversary_plan -> t
(** Compile a plan's campaigns against [world]. [forge_copies] (default 3)
    is how many duplicate forged reports a compromised prober stuffs per
    lied-about link per lightweight round. An empty plan compiles to
    {!Protocol.no_taps} behaviour. *)

val taps : t -> Protocol.taps
(** The tap record to pass to {!Protocol.create}. *)

val compromised : t -> int array
(** Every node any campaign compromises (members, reporters, attackers,
    samplers), sorted ascending, distinct. *)

val is_compromised : t -> int -> bool

val victims : t -> int array
(** Lying-reporter and eclipse victims, sorted ascending, distinct. These
    are honest nodes the adversary works to frame or isolate; soak
    invariants check they are never formally accused. *)

val biased_samplers : t -> int array
(** Nodes running a biased-sampling campaign, sorted ascending, distinct.
    Scenario drivers give these [Sparse_advertiser] behaviour so the
    density validation has a signal to flag. *)

(* ---------- Targeted plan builders ----------

   [Chaos.sample_adversaries] draws campaigns uniformly, which is right
   for background pressure but makes detection assertions stochastic: a
   sampled coalition may never sit on a message route. The builders below
   construct campaigns aimed at a concrete route, so soak scenarios (and
   their disabled-defense canaries) exercise the attack deterministically. *)

val targeted_route :
  world:World.t ->
  rng:Prng.t ->
  min_hops:int ->
  (int * Concilium_overlay.Id.t * int list) option
(** Draw (sender, destination id, overlay route) triples until the route
    has at least [min_hops] hops (bounded trials; [None] if the world is
    too small to yield one). Deterministic per [rng]. *)

val self_exculpation_gap : world:World.t -> route:int list -> bool
(** Whether the route's first forwarder has a link on its egress path (to
    the second forwarder) that no prober visible to the sender vouches for
    except the forwarder itself. On such a route, disabling
    [exclude_suspect_probes] lets the forwarder acquit itself with a lone
    uncontradicted "down" vote (Section 3.4); scenario drivers prefer
    gap routes so the suspect-exclusion canary flips deterministically. *)

val coalition_coverage : world:World.t -> route:int list -> int
(** How many potential helpers — peers of the sender not on the route —
    have a probe forest covering at least one link of the path the judge
    inspects (first forwarder to second forwarder). Shield corroboration
    and forged-ballot stuffing only move the verdict when helpers cover
    the judged links, so scenario drivers prefer routes where this is
    at least the coalition's helper count. *)

val collusion_against_route :
  world:World.t ->
  route:int list ->
  size:int ->
  drop_probability:float ->
  corroboration:float ->
  start:float ->
  duration:float ->
  Chaos.adversary option
(** A coalition around the route's first forwarder: the forwarder drops,
    and up to [size - 1] further members are drawn from the {e sender}'s
    peers (so their corroborating reports are visible to the judge).
    [None] when the route has fewer than 3 hops. *)

val lying_against_route :
  world:World.t ->
  route:int list ->
  size:int ->
  corroboration:float ->
  start:float ->
  duration:float ->
  (Chaos.adversary * int array) option
(** A lying-reporter cell framing the route's first forwarder: reporters
    are drawn from the sender's peers (visible to the judge). Also returns
    the victim's egress links — the scenario faults these so drops the
    network caused land on the victim's watch, giving the liars something
    to flip. [None] when the route has fewer than 3 hops or no reporters
    are available. *)

val eclipse_against_route :
  world:World.t ->
  route:int list ->
  size:int ->
  start:float ->
  duration:float ->
  Chaos.adversary option
(** Attackers that can legally wedge in front of the route's first
    forwarder: peers of the sender that have an IP route to the victim and
    are not already on the route. [None] when no such node exists. *)
