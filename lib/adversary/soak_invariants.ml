type inputs = {
  failure : string option;
  missing_outcomes : int;
  unresolved : int;
  honest_accusations : int;
  adversary_present : bool;
  adversary_fired : bool;
  adversary_detected : bool;
  require_detection : bool;
}

let benign =
  {
    failure = None;
    missing_outcomes = 0;
    unresolved = 0;
    honest_accusations = 0;
    adversary_present = false;
    adversary_fired = false;
    adversary_detected = false;
    require_detection = false;
  }

let failures inputs =
  let out = ref [] in
  let flag condition label = if condition then out := label :: !out in
  flag (inputs.failure <> None) "runtime-exception";
  flag (inputs.missing_outcomes > 0) "missing-outcomes";
  flag (inputs.unresolved > 0) "unresolved-episodes";
  flag (inputs.honest_accusations > 0) "honest-node-accused";
  if inputs.adversary_present && inputs.require_detection then begin
    (* A detection scenario where the adversary never acted proves nothing:
       fail loudly rather than let a canary pass vacuously. *)
    flag (not inputs.adversary_fired) "adversary-inert";
    flag (inputs.adversary_fired && not inputs.adversary_detected) "adversary-undetected"
  end;
  List.rev !out

let pass inputs = failures inputs = []
let exit_code ~pass_all = if pass_all then 0 else 1
