(** The chaos-soak pass/fail predicate, factored out of [bin/chaos.exe] so
    the exit-status contract is unit-testable: a scenario passes only when
    it raised nothing, produced every outcome, resolved (or explicitly
    degraded) every drop, accused no honest node, and — when it is a
    detection scenario — its adversary both acted and was caught. Any
    failure makes the soak binary exit non-zero, so the CI job cannot pass
    vacuously. *)

type inputs = {
  failure : string option;  (** uncaught exception text, if any *)
  missing_outcomes : int;  (** messages that produced no outcome at all *)
  unresolved : int;  (** undelivered messages with no diagnosis *)
  honest_accusations : int;  (** formal accusations naming honest nodes *)
  adversary_present : bool;  (** the scenario's adversary plan is non-empty *)
  adversary_fired : bool;
      (** adversary taps observably acted (drops forced, lies told, routes
          rewritten, adverts biased) *)
  adversary_detected : bool;
      (** the scenario's detection criterion held (e.g. a colluder was
          blamed, the framing victim was not, a biased advertiser was
          flagged) *)
  require_detection : bool;
      (** assert fired-and-detected; off for background-pressure scenarios
          whose sampled campaigns may never touch a message route *)
}

val benign : inputs
(** All-clear baseline: no failure, no violations, no adversary. Build
    concrete inputs with [{ benign with ... }]. *)

val failures : inputs -> string list
(** Every violated invariant, in a fixed order, as stable labels:
    ["runtime-exception"], ["missing-outcomes"], ["unresolved-episodes"],
    ["honest-node-accused"], ["adversary-inert"],
    ["adversary-undetected"]. Empty means the scenario passed.
    [adversary-inert] fires when a detection scenario's adversary never
    acted — a canary must not pass because its attack failed to launch. *)

val pass : inputs -> bool

val exit_code : pass_all:bool -> int
(** 0 when every scenario passed, 1 otherwise. *)
