(* Fixed-size domain pool with deterministic, order-preserving fan-out.

   Workers are spawned once per pool and block on a condition variable until
   a job arrives. A job is a chunked index range [0, size): workers (and the
   submitting domain, which participates) repeatedly grab the next chunk
   under the mutex, run it outside the lock, and decrement the live-index
   count when done. The submitter waits until every index is accounted for,
   so all worker writes happen-before the submitter reads the results (the
   decrement and the wait synchronise on the same mutex).

   Determinism does NOT come from scheduling — chunks run in whatever order
   domains grab them — but from the contract that task [i] writes only slot
   [i] of the output and shares no mutable state with other tasks. Callers
   that need randomness must pre-split one PRNG per task *before* submitting
   (see Prng.split), which makes output bit-identical for any domain count,
   including the inline [domains = 1] path. *)

(* Per-slot activity accounting. Slot 0 is the submitting domain, slots
   1..domains-1 the spawned workers; each slot is written only by its own
   domain, so the counters need no locking. The times are wall-clock —
   they never feed back into simulation state, they only attribute where
   real time went (bench --json "pool" section; ROADMAP item 2).
   lint: allow wall-clock *)
let now () = Unix.gettimeofday ()

type slot = {
  mutable busy_s : float;  (* running task bodies *)
  mutable idle_s : float;  (* blocked waiting for a job / for completion *)
  mutable steal_wait_s : float;  (* contending on the chunk queue *)
  mutable chunks : int;  (* chunks executed *)
}

type worker_stats = { worker : int; busy_s : float; idle_s : float; steal_wait_s : float; chunks : int }

type job = {
  size : int;
  chunk : int;
  mutable next : int;  (* first undispatched index *)
  mutable live : int;  (* indices (dispatched or not) not yet completed *)
  run : int -> int -> unit;  (* run [lo, hi) — must only touch its own slots *)
  mutable failed : exn option;
}

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;  (* signalled on job install and on shutdown *)
  progress : Condition.t;  (* signalled when a job's live count reaches zero *)
  mutable job : job option;
  mutable generation : int;  (* bumped on every install; lets workers spot new jobs *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  mutable active : int list;  (* (Domain.id :> int) of domains inside a chunk *)
  domain_count : int;
  slots : slot array;  (* per-domain activity counters, index 0 = submitter *)
}

let domain_count t = t.domain_count

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* ---------- Chunk execution (shared by workers and the submitter) ---------- *)

(* Take the next chunk of [job] under [t.mutex]; [None] when exhausted. *)
let take_chunk job =
  if job.next >= job.size then None
  else begin
    let lo = job.next in
    let hi = min job.size (lo + job.chunk) in
    job.next <- hi;
    Some (lo, hi)
  end

(* Run one chunk outside the lock; record completion (or failure) inside it.
   On failure the undispatched tail is cancelled so the job still completes;
   chunks already in flight on other domains finish on their own. Only one
   job is ever in flight, so when its live count reaches zero the installed
   job is necessarily this one and can be cleared. *)
let run_chunk t ~slot job lo hi =
  let self = (Domain.self () :> int) in
  Mutex.lock t.mutex;
  t.active <- self :: t.active;
  Mutex.unlock t.mutex;
  let started = now () in
  let outcome = try Ok (job.run lo hi) with e -> Error e in
  let s = t.slots.(slot) in
  s.busy_s <- s.busy_s +. (now () -. started);
  s.chunks <- s.chunks + 1;
  Mutex.lock t.mutex;
  t.active <- List.filter (fun id -> id <> self) t.active;
  (match outcome with
  | Ok () -> job.live <- job.live - (hi - lo)
  | Error e ->
      if job.failed = None then job.failed <- Some e;
      let cancelled = job.size - job.next in
      job.next <- job.size;
      job.live <- job.live - (hi - lo) - cancelled);
  if job.live = 0 then begin
    t.job <- None;
    Condition.broadcast t.progress
  end;
  Mutex.unlock t.mutex

(* Grab and run chunks until the job's queue is exhausted. Time spent
   acquiring the queue lock is the steal-wait: with too-fine chunks many
   domains hammer the same mutex and this counter shows it. *)
let drain t ~slot job =
  let continue = ref true in
  while !continue do
    let started = now () in
    Mutex.lock t.mutex;
    let chunk = take_chunk job in
    Mutex.unlock t.mutex;
    let s = t.slots.(slot) in
    s.steal_wait_s <- s.steal_wait_s +. (now () -. started);
    match chunk with
    | Some (lo, hi) -> run_chunk t ~slot job lo hi
    | None -> continue := false
  done

let worker_loop t ~slot () =
  let seen_generation = ref 0 in
  let running = ref true in
  while !running do
    let started = now () in
    Mutex.lock t.mutex;
    while t.generation = !seen_generation && not t.shutting_down do
      Condition.wait t.work_ready t.mutex
    done;
    let s = t.slots.(slot) in
    s.idle_s <- s.idle_s +. (now () -. started);
    if t.shutting_down then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen_generation := t.generation;
      let job = t.job in
      Mutex.unlock t.mutex;
      match job with Some job -> drain t ~slot job | None -> ()
    end
  done

(* ---------- Lifecycle ---------- *)

let create ?domains () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      progress = Condition.create ();
      job = None;
      generation = 0;
      shutting_down = false;
      workers = [];
      active = [];
      domain_count = domains;
      slots =
        Array.init domains (fun _ ->
            { busy_s = 0.; idle_s = 0.; steal_wait_s = 0.; chunks = 0 });
    }
  in
  (* The submitter participates, so [domains - 1] spawned workers give
     [domains] executing domains in total. Worker i owns slot i + 1;
     slot 0 belongs to the submitting domain. *)
  t.workers <- List.init (domains - 1) (fun i -> Domain.spawn (worker_loop t ~slot:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---------- Fan-out ---------- *)

(* Is the current domain already executing a task of this pool? Submitting
   from inside a task would wait on the in-flight job that the submission
   itself is part of — a deadlock when the calling domain is the one the
   outer job is waiting for — so nested fan-out must run inline instead. *)
let in_task t =
  let self = (Domain.self () :> int) in
  Mutex.lock t.mutex;
  let inside = List.mem self t.active in
  Mutex.unlock t.mutex;
  inside

let sequential_init n ~f = Array.init n f

let raise_first_failure job =
  match job.failed with Some e -> raise e | None -> ()

let pooled_init t n ~f =
  let out = Array.make n None in
  let run lo hi =
    for i = lo to hi - 1 do
      out.(i) <- Some (f i)
    done
  in
  (* Chunks are a few times smaller than a fair share so an unlucky domain
     stuck with a slow task does not serialise the tail. *)
  let chunk = max 1 (n / (t.domain_count * 8)) in
  let job = { size = n; chunk; next = 0; live = n; run; failed = None } in
  Mutex.lock t.mutex;
  while t.job <> None && not t.shutting_down do
    Condition.wait t.progress t.mutex
  done;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.parallel_init: pool is shut down"
  end;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  drain t ~slot:0 job;
  let wait_started = now () in
  Mutex.lock t.mutex;
  while job.live > 0 do
    Condition.wait t.progress t.mutex
  done;
  Mutex.unlock t.mutex;
  let s = t.slots.(0) in
  s.idle_s <- s.idle_s +. (now () -. wait_started);
  raise_first_failure job;
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Pool.parallel_init: missing result (task did not run)")
    out

let parallel_init ?pool n ~f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative size";
  match pool with
  | None -> sequential_init n ~f
  | Some t ->
      (* A task that itself fans out must not block on the shared queue:
         nested submissions (and single-domain pools) run inline. *)
      if t.domain_count <= 1 || n <= 1 || in_task t then sequential_init n ~f
      else pooled_init t n ~f

let parallel_map ?pool xs ~f = parallel_init ?pool (Array.length xs) ~f:(fun i -> f xs.(i))

(* ---------- Activity stats ---------- *)

let stats t =
  Array.to_list
    (Array.mapi
       (fun i (s : slot) ->
         { worker = i; busy_s = s.busy_s; idle_s = s.idle_s; steal_wait_s = s.steal_wait_s; chunks = s.chunks })
       t.slots)

let reset_stats t =
  Array.iter
    (fun (s : slot) ->
      s.busy_s <- 0.;
      s.idle_s <- 0.;
      s.steal_wait_s <- 0.;
      s.chunks <- 0)
    t.slots
