(* Fixed-size domain pool with deterministic, order-preserving fan-out,
   scheduled by per-worker chunk deques with work-stealing.

   The original pool fed every domain from one mutex/condition chunk queue:
   each chunk take was a lock round-trip, and each chunk completion took the
   lock twice more to maintain an active-domain list — at experiment-sized
   chunks the domains spent their time convoying on that mutex, which is how
   the pooled fig1 run ended up *slower* than the sequential one
   (BENCH_baseline.json, ROADMAP item 2). This version has no lock on the
   hot path at all:

   - A job splits the index range [0, size) into [domains] contiguous
     blocks, one per executing domain, each subdivided into chunks of a
     deterministic size ({!chunk_size}). Block d is slot d's own deque.
   - A slot claims chunks from its own block with one [Atomic.fetch_and_add]
     per chunk. When its block is empty it *steals*: it scans the other
     blocks in a fixed cyclic victim order (slot + 1, slot + 2, ...) and
     claims a chunk from the first non-empty one. The scan order is fixed so
     scheduling behaviour is reproducible in shape; which steals actually
     happen still depends on timing, which is fine because scheduling can
     never reach the results (below).
   - Completion is one atomic countdown of accounted indices. The domain
     that accounts the last index takes the (cold) mutex once to clear the
     job and wake the submitter. Workers that find every block empty park on
     the condition variable until the next job's generation bump — an idle
     pool burns no cycles, and a 1-task job on an 8-domain pool costs each
     worker exactly one failed scan before it parks again.

   Determinism does NOT come from scheduling — chunks run wherever claiming
   and stealing land them — but from the contract that task [i] writes only
   slot [i] of the output and shares no mutable state with other tasks, so
   the merge in task-index order is a pure function of the task results.
   Callers that need randomness must pre-split one PRNG per task *before*
   submitting ({!parallel_init_rng} does it for them), which makes output
   bit-identical for any domain count, including the inline [domains = 1]
   path. *)

(* Per-slot activity accounting. Slot 0 is the submitting domain, slots
   1..domains-1 the spawned workers; each slot is written only by its own
   domain, so the counters need no locking. The times are wall-clock —
   they never feed back into simulation state, they only attribute where
   real time went (bench --json "pool" section; ROADMAP item 2).
   lint: allow wall-clock *)
let now () = Unix.gettimeofday ()

type slot = {
  mutable busy_s : float;  (* running task bodies *)
  mutable idle_s : float;  (* parked waiting for a job / for completion *)
  mutable steal_wait_s : float;  (* claiming chunks and scanning victims *)
  mutable chunks : int;  (* chunks executed *)
  mutable steals : int;  (* chunks claimed from another slot's block *)
  mutable empty_scans : int;  (* victim scans that found every block empty *)
  mutable wakeups : int;  (* times the worker left the parked state for a job *)
}

type worker_stats = {
  worker : int;
  busy_s : float;
  idle_s : float;
  steal_wait_s : float;
  chunks : int;
  steals : int;
  empty_scans : int;
  wakeups : int;
}

(* Mutable per-slot state is written from [domains] different domains at
   chunk frequency; allocating the records back to back would put several
   of them on one cache line and turn the counters into false sharing.
   The dead allocation between elements spaces consecutive records at
   least a cache line apart (OCaml's minor allocator is a bump pointer,
   so consecutive allocations are adjacent). *)
let padded_init n ~f =
  Array.init n (fun i ->
      let v = f i in
      ignore (Sys.opaque_identity (Bytes.create 128));
      v)

type job = {
  chunk : int;  (* chunk length, {!chunk_size} of (size, domains) *)
  block_hi : int array;  (* block d is [block_lo.(d), block_hi.(d)) *)
  cursors : int Atomic.t array;  (* first unclaimed index of each block *)
  remaining : int Atomic.t;  (* indices not yet accounted *)
  failed : exn option Atomic.t;  (* first task failure; cancels the tail *)
  run : int -> int -> unit;  (* run [lo, hi) — must only touch its own slots *)
}

type t = {
  mutex : Mutex.t;  (* cold path only: job install, parking, completion *)
  work_ready : Condition.t;  (* signalled on job install and on shutdown *)
  progress : Condition.t;  (* signalled when a job fully completes *)
  mutable job : job option;
  mutable generation : int;  (* bumped on every install; lets workers spot new jobs *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  stamp : int;  (* distinguishes this pool's tasks in the domain-local flag *)
  domain_count : int;
  slots : slot array;  (* per-domain activity counters, index 0 = submitter *)
}

let domain_count t = t.domain_count

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* ---------- Deterministic granularity policy ---------- *)

(* Chunks per block: small enough that claiming stays a rounding error
   against real task bodies, large enough that a slot stuck with a slow
   chunk leaves work for others to steal. Scheduling-only: the chunk size
   never influences which task computes what, so it is free to depend on
   the domain count without breaking the any-[--domains N] byte-identity
   contract (unlike shard counts inside the experiment drivers, which must
   depend only on the workload). *)
let chunks_per_block = 4

let chunk_size ~tasks ~domains =
  if tasks <= 0 then 1
  else if domains <= 1 then tasks
  else begin
    let target = chunks_per_block * domains in
    max 1 ((tasks + target - 1) / target)
  end

(* ---------- Task-context flag (nested fan-out detection) ---------- *)

(* Which pool's task body the current domain is inside, or 0. Submitting
   from inside a task would wait on the in-flight job that the submission
   itself is part of — a deadlock when the calling domain is the one the
   outer job is waiting for — so nested fan-out must run inline instead.
   A domain-local integer replaces the old mutex-guarded active list, which
   cost two lock round-trips per chunk. *)
let task_context : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let next_stamp = Atomic.make 1

let in_task t = Domain.DLS.get task_context = t.stamp

(* ---------- Chunk claiming and execution ---------- *)

(* Claim the next chunk of [block] with a single fetch-and-add; the cursor
   may run past the block end when several domains race the last chunk,
   which only makes later claims fail fast. Each index is claimed exactly
   once because fetch_and_add hands out disjoint ranges. *)
let claim job block =
  let hi = job.block_hi.(block) in
  let cursor = job.cursors.(block) in
  if Atomic.get cursor >= hi then None
  else begin
    let lo = Atomic.fetch_and_add cursor job.chunk in
    if lo >= hi then None else Some (lo, min hi (lo + job.chunk))
  end

(* Run one claimed chunk and account it. After a failure the remaining
   chunks are still claimed and accounted — just not run — so the countdown
   always reaches zero and the submitter always wakes; the first failure
   wins and is re-raised by the submitter. The domain that accounts the
   last index clears the installed job and broadcasts completion. *)
let run_chunk t ~slot job lo hi =
  let s = t.slots.(slot) in
  (match Atomic.get job.failed with
  | Some _ -> ()  (* cancelled tail: account without running *)
  | None ->
      let started = now () in
      let previous = Domain.DLS.get task_context in
      Domain.DLS.set task_context t.stamp;
      (try job.run lo hi
       with e -> ignore (Atomic.compare_and_set job.failed None (Some e)));
      Domain.DLS.set task_context previous;
      s.busy_s <- s.busy_s +. (now () -. started);
      s.chunks <- s.chunks + 1);
  if Atomic.fetch_and_add job.remaining (lo - hi) = hi - lo then begin
    Mutex.lock t.mutex;
    t.job <- None;
    Condition.broadcast t.progress;
    Mutex.unlock t.mutex
  end

(* Drain the job from [slot]'s point of view: own block first, then steal
   from the other blocks in fixed cyclic victim order. Returns when every
   block is empty. Time spent claiming and scanning is the steal-wait. *)
let drain t ~slot job =
  let domains = t.domain_count in
  let s = t.slots.(slot) in
  let continue = ref true in
  while !continue do
    let started = now () in
    match claim job slot with
    | Some (lo, hi) ->
        s.steal_wait_s <- s.steal_wait_s +. (now () -. started);
        run_chunk t ~slot job lo hi
    | None ->
        let found = ref None in
        let victim = ref ((slot + 1) mod domains) in
        while !found = None && !victim <> slot do
          (match claim job !victim with
          | Some range -> found := Some range
          | None -> victim := (!victim + 1) mod domains)
        done;
        s.steal_wait_s <- s.steal_wait_s +. (now () -. started);
        (match !found with
        | Some (lo, hi) ->
            s.steals <- s.steals + 1;
            run_chunk t ~slot job lo hi
        | None ->
            s.empty_scans <- s.empty_scans + 1;
            continue := false)
  done

let worker_loop t ~slot () =
  let seen_generation = ref 0 in
  let running = ref true in
  while !running do
    let started = now () in
    Mutex.lock t.mutex;
    while t.generation = !seen_generation && not t.shutting_down do
      Condition.wait t.work_ready t.mutex
    done;
    let stop = t.shutting_down in
    let generation = t.generation in
    let job = t.job in
    Mutex.unlock t.mutex;
    let s = t.slots.(slot) in
    s.idle_s <- s.idle_s +. (now () -. started);
    if stop then running := false
    else begin
      seen_generation := generation;
      s.wakeups <- s.wakeups + 1;
      match job with Some job -> drain t ~slot job | None -> ()
    end
  done

(* ---------- Lifecycle ---------- *)

let create ?domains () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      progress = Condition.create ();
      job = None;
      generation = 0;
      shutting_down = false;
      workers = [];
      stamp = Atomic.fetch_and_add next_stamp 1;
      domain_count = domains;
      slots =
        padded_init domains ~f:(fun _ ->
            {
              busy_s = 0.;
              idle_s = 0.;
              steal_wait_s = 0.;
              chunks = 0;
              steals = 0;
              empty_scans = 0;
              wakeups = 0;
            });
    }
  in
  (* The submitter participates, so [domains - 1] spawned workers give
     [domains] executing domains in total. Worker i owns slot i + 1;
     slot 0 belongs to the submitting domain. *)
  t.workers <- List.init (domains - 1) (fun i -> Domain.spawn (worker_loop t ~slot:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---------- Fan-out ---------- *)

let sequential_init n ~f = Array.init n f

let pooled_init t n ~f =
  let out = Array.make n None in
  let run lo hi =
    for i = lo to hi - 1 do
      out.(i) <- Some (f i)
    done
  in
  let domains = t.domain_count in
  let job =
    {
      chunk = chunk_size ~tasks:n ~domains;
      block_hi = Array.init domains (fun d -> (d + 1) * n / domains);
      cursors = padded_init domains ~f:(fun d -> Atomic.make (d * n / domains));
      remaining = Atomic.make n;
      failed = Atomic.make None;
      run;
    }
  in
  Mutex.lock t.mutex;
  while t.job <> None && not t.shutting_down do
    Condition.wait t.progress t.mutex
  done;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.parallel_init: pool is shut down"
  end;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  drain t ~slot:0 job;
  let wait_started = now () in
  Mutex.lock t.mutex;
  while Atomic.get job.remaining > 0 do
    Condition.wait t.progress t.mutex
  done;
  Mutex.unlock t.mutex;
  let s = t.slots.(0) in
  s.idle_s <- s.idle_s +. (now () -. wait_started);
  (match Atomic.get job.failed with Some e -> raise e | None -> ());
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Pool.parallel_init: missing result (task did not run)")
    out

let parallel_init ?pool n ~f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative size";
  match pool with
  | None -> sequential_init n ~f
  | Some t ->
      (* A task that itself fans out must not block on the shared job slot:
         nested submissions (and single-domain pools) run inline. *)
      if t.domain_count <= 1 || n <= 1 || in_task t then sequential_init n ~f
      else pooled_init t n ~f

let parallel_map ?pool xs ~f = parallel_init ?pool (Array.length xs) ~f:(fun i -> f xs.(i))

(* One generator per task, split in index order before dispatch — the
   pre-split idiom every experiment driver needs, packaged so call sites
   allocate one stream array and no per-task closures beyond [f] itself.
   The split happens on the submitting domain, so the streams (and hence
   all output bytes) are independent of the domain count. *)
let parallel_init_rng ?pool n ~rng ~f =
  if n < 0 then invalid_arg "Pool.parallel_init_rng: negative size";
  let rngs = Prng.split_n rng n in
  parallel_init ?pool n ~f:(fun i -> f i rngs.(i))

(* ---------- Activity stats ---------- *)

let stats t =
  Array.to_list
    (Array.mapi
       (fun i (s : slot) ->
         {
           worker = i;
           busy_s = s.busy_s;
           idle_s = s.idle_s;
           steal_wait_s = s.steal_wait_s;
           chunks = s.chunks;
           steals = s.steals;
           empty_scans = s.empty_scans;
           wakeups = s.wakeups;
         })
       t.slots)

let reset_stats t =
  Array.iter
    (fun (s : slot) ->
      s.busy_s <- 0.;
      s.idle_s <- 0.;
      s.steal_wait_s <- 0.;
      s.chunks <- 0;
      s.steals <- 0;
      s.empty_scans <- 0;
      s.wakeups <- 0)
    t.slots
