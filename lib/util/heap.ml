module type Ordered = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : Ordered) = struct
  type t = { mutable data : Elt.t array; mutable size : int }

  let create () = { data = [||]; size = 0 }
  let length t = t.size
  let is_empty t = t.size = 0
  let capacity t = Array.length t.data

  (* Backing-array compaction: once occupancy drops below a quarter the
     array is halved, so a queue that peaked early in a long run does not
     pin its high-water storage forever. Halving (not shrink-to-fit) keeps
     the amortised cost of a pop O(1). *)
  let shrink t =
    let cap = Array.length t.data in
    if t.size = 0 then t.data <- [||]
    else if cap >= 32 && t.size <= cap / 4 then
      t.data <- Array.sub t.data 0 (max 16 (cap / 2))

  let grow t x =
    let capacity = Array.length t.data in
    if t.size = capacity then begin
      let next = max 8 (2 * capacity) in
      let data = Array.make next x in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Elt.compare t.data.(i) t.data.(parent) < 0 then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        sift_up t parent
      end
    end

  let add t x =
    grow t x;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && Elt.compare t.data.(l) t.data.(!smallest) < 0 then smallest := l;
    if r < t.size && Elt.compare t.data.(r) t.data.(!smallest) < 0 then smallest := r;
    if !smallest <> i then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      sift_down t !smallest
    end

  let peek_min t = if t.size = 0 then None else Some t.data.(0)

  let pop_min t =
    if t.size = 0 then None
    else begin
      let min = t.data.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.data.(0) <- t.data.(t.size);
        (* Overwrite the vacated slot with a still-live element so the
           popped value is not pinned past [size] by the backing array. *)
        t.data.(t.size) <- t.data.(0);
        sift_down t 0
      end;
      shrink t;
      Some min
    end

  let pop_min_exn t =
    match pop_min t with
    | Some x -> x
    | None -> invalid_arg "Heap.pop_min_exn: empty heap"

  let clear t =
    t.data <- [||];
    t.size <- 0

  (* Tombstone reclamation: drop every element failing [keep] in one O(n)
     pass, then restore the heap shape bottom-up (Floyd heapify). Callers
     that mark cancelled events with a tombstone flag use this to reclaim
     their queue slots without draining the whole heap. *)
  let filter_in_place t ~keep =
    let kept = ref 0 in
    for i = 0 to t.size - 1 do
      if keep t.data.(i) then begin
        t.data.(!kept) <- t.data.(i);
        incr kept
      end
    done;
    (* Release references to dropped elements beyond the new size. *)
    if !kept > 0 then
      for i = !kept to t.size - 1 do
        t.data.(i) <- t.data.(!kept - 1)
      done;
    t.size <- !kept;
    if !kept = 0 then t.data <- [||]
    else begin
      for i = (t.size / 2) - 1 downto 0 do
        sift_down t i
      done;
      shrink t
    end

  let to_sorted_list t =
    let copy = { data = Array.sub t.data 0 t.size; size = t.size } in
    let rec drain acc =
      match pop_min copy with None -> List.rev acc | Some x -> drain (x :: acc)
    in
    drain []
end
