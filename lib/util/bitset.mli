(** Fixed-capacity bitset over integers [0, capacity).

    Used for link-coverage sets in the tomography experiments, where unions
    and cardinalities over hundreds of thousands of link ids must be cheap. *)

type t

val create : int -> t
(** [create n] is an empty set with capacity [n] (members range over
    [0, n-1]). *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit
val copy : t -> t

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst]. The two sets
    must have equal capacity. *)

val inter_cardinal : t -> t -> int
(** Number of members shared by two equal-capacity sets. *)

val next_member : t -> int -> int
(** [next_member t i] is the smallest member [>= i], or [-1] when none.
    Scans bytewise, so on dense sets the expected cost is O(1). *)

val prev_member : t -> int -> int
(** [prev_member t i] is the largest member [<= i], or [-1] when none. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
