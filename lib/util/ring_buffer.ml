type 'a t = {
  data : 'a option array;
  mutable start : int; (* index of oldest element *)
  mutable length : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity must be positive";
  { data = Array.make capacity None; start = 0; length = 0 }

let capacity t = Array.length t.data
let length t = t.length
let is_full t = t.length = capacity t

let push t x =
  let cap = capacity t in
  if t.length < cap then begin
    t.data.((t.start + t.length) mod cap) <- Some x;
    t.length <- t.length + 1;
    None
  end
  else begin
    let evicted = t.data.(t.start) in
    t.data.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap;
    evicted
  end

let fold f init t =
  let cap = capacity t in
  let acc = ref init in
  for i = 0 to t.length - 1 do
    match t.data.((t.start + i) mod cap) with
    | Some x -> acc := f !acc x
    (* Slots below [t.length] are always populated by [push].
       lint: allow assert-false *)
    | None -> assert false
  done;
  !acc

let count predicate t = fold (fun n x -> if predicate x then n + 1 else n) 0 t
let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.data 0 (capacity t) None;
  t.start <- 0;
  t.length <- 0
