(** Fenwick (binary indexed) tree over floats, supporting point updates,
    prefix sums, and weighted sampling by cumulative weight. The failure
    injector uses it to pick links proportionally to depth-bias weights. *)

type t

val create : int -> t
(** [create n] is a tree over indices [0, n-1], all weights zero. *)

val size : t -> int

val set : t -> int -> float -> unit
(** [set t i w] assigns weight [w] (not adds) to index [i]. Weights must be
    non-negative. *)

val get : t -> int -> float
val total : t -> float

val prefix_sum : t -> int -> float
(** [prefix_sum t i] is the sum of weights at indices [0..i]. *)

val find_by_weight : t -> float -> int
(** [find_by_weight t x] returns the smallest index [i] such that
    [prefix_sum t i > x]; sampling a uniform [x] in [0, total t) yields an
    index with probability proportional to its weight, and the returned
    index always carries positive weight.

    Boundary contract: the intended domain is [0 <= x < total t], but
    floating-point accumulation means a sampler computing
    [u *. total t] can legitimately produce [x = total t] (and summing
    weights in a different order can even exceed it slightly). Rather than
    raise on that edge, any [x >= total t] — including every query against
    an all-zero tree, whose total is 0 — clamps to the last index with
    positive weight (index 0 when every weight is zero). Negative [x]
    raises [Invalid_argument], as does an empty ([size t = 0]) tree. *)
