(** Imperative binary min-heap, used as the event queue of the discrete-event
    simulator and as a generic priority queue elsewhere. *)

module type Ordered = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : Ordered) : sig
  type t

  val create : unit -> t
  val length : t -> int
  val is_empty : t -> bool
  val add : t -> Elt.t -> unit

  val peek_min : t -> Elt.t option
  (** Smallest element without removing it. *)

  val pop_min : t -> Elt.t option
  (** Remove and return the smallest element. *)

  val pop_min_exn : t -> Elt.t
  (** @raise Invalid_argument on an empty heap. *)

  val clear : t -> unit

  val capacity : t -> int
  (** Current backing-array length; shrinks as elements are popped (halved
      once occupancy falls below a quarter), bounding memory on long runs. *)

  val filter_in_place : t -> keep:(Elt.t -> bool) -> unit
  (** Drop every element for which [keep] is false and re-heapify, in O(n).
      Used to reclaim tombstoned (cancelled) events without draining. *)

  val to_sorted_list : t -> Elt.t list
  (** Non-destructive ascending enumeration (costs a heap copy). *)
end
