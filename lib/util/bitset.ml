type t = { words : Bytes.t; capacity : int }

(* Bytes rather than int arrays keeps the structure compact and avoids
   boxing; popcount is done bytewise through a 256-entry table. *)

let popcount_table =
  let table = Bytes.create 256 in
  for i = 0 to 255 do
    let rec bits n = if n = 0 then 0 else (n land 1) + bits (n lsr 1) in
    Bytes.set table i (Char.chr (bits i))
  done;
  table

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7)) land 0xFF))

let cardinal t =
  let total = ref 0 in
  for b = 0 to Bytes.length t.words - 1 do
    total := !total + Char.code (Bytes.get popcount_table (Char.code (Bytes.get t.words b)))
  done;
  !total

let is_empty t =
  let rec scan b = b >= Bytes.length t.words || (Bytes.get t.words b = '\000' && scan (b + 1)) in
  scan 0

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let union_into ~dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  for b = 0 to Bytes.length dst.words - 1 do
    let merged = Char.code (Bytes.get dst.words b) lor Char.code (Bytes.get src.words b) in
    Bytes.set dst.words b (Char.chr merged)
  done

let inter_cardinal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let total = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    let shared = Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i) in
    total := !total + Char.code (Bytes.get popcount_table shared)
  done;
  !total

(* Directional scans skip empty bytes, so over mostly-full sets (the alive
   set of a ring universe) neighbour lookups are effectively O(1). *)

let next_member t i =
  if i >= t.capacity then -1
  else begin
    let i = max i 0 in
    let first_byte = i lsr 3 in
    let last_byte = Bytes.length t.words - 1 in
    let result = ref (-1) in
    let b = ref first_byte in
    while !result < 0 && !b <= last_byte do
      let byte = Char.code (Bytes.get t.words !b) in
      let masked = if !b = first_byte then byte land (0xFF lsl (i land 7)) else byte in
      if masked <> 0 then begin
        let bit = ref 0 in
        while masked land (1 lsl !bit) = 0 do incr bit done;
        result := (!b lsl 3) + !bit
      end;
      incr b
    done;
    if !result >= t.capacity then -1 else !result
  end

let prev_member t i =
  if i < 0 then -1
  else begin
    let i = min i (t.capacity - 1) in
    if i < 0 then -1
    else begin
      let first_byte = i lsr 3 in
      let result = ref (-1) in
      let b = ref first_byte in
      while !result < 0 && !b >= 0 do
        let byte = Char.code (Bytes.get t.words !b) in
        let masked =
          if !b = first_byte then byte land (0xFF lsr (7 - (i land 7))) else byte
        in
        if masked <> 0 then begin
          let bit = ref 7 in
          while masked land (1 lsl !bit) = 0 do decr bit done;
          result := (!b lsl 3) + !bit
        end;
        decr b
      done;
      !result
    end
  end

let iter f t =
  for b = 0 to Bytes.length t.words - 1 do
    let byte = Char.code (Bytes.get t.words b) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then f ((b lsl 3) + bit)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity members =
  let t = create capacity in
  List.iter (add t) members;
  t
