type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64: used only to expand seeds into full xoshiro state. *)
let splitmix_next state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let of_seed seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let of_string_seed s =
  let h = ref fnv_offset in
  String.iter (fun c -> h := (!h ^% Int64.of_int (Char.code c)) *% fnv_prime) s;
  of_seed !h

let int64 t =
  let result = rotl (t.s0 +% t.s3) 23 +% t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- t.s2 ^% t.s0;
  t.s3 <- t.s3 ^% t.s1;
  t.s1 <- t.s1 ^% t.s2;
  t.s0 <- t.s0 ^% t.s3;
  t.s2 <- t.s2 ^% tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = int64 t in
  of_seed seed

(* Index order is guaranteed by the explicit loop (Array.init's evaluation
   order is unspecified, which matters for a side-effecting [split]). *)
let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n: negative count";
  let out = Array.make n t in
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

(* Reseed an existing generator in place with the stream [split] would have
   produced, so hot loops can recycle one scratch array of generators
   instead of allocating [split_n]'s fresh records on every fan-out. *)
let split_into t out =
  Array.iter
    (fun g ->
      let state = ref (int64 t) in
      g.s0 <- splitmix_next state;
      g.s1 <- splitmix_next state;
      g.s2 <- splitmix_next state;
      g.s3 <- splitmix_next state)
    out

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec loop () =
    let raw = Int64.to_int (Int64.logand (int64 t) mask) in
    let v = raw mod n in
    if raw - v > max_int - n + 1 then loop () else v
  in
  loop ()

let uniform t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t x = uniform t *. x
let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = uniform t < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = uniform t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let rec nonzero () =
    let u = uniform t in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  if k < 0 then invalid_arg "Prng.sample_without_replacement: negative k";
  (* Partial Fisher-Yates over a lazily materialised identity permutation:
     only touched indices are stored, so cost is O(k) expected. *)
  let swapped = Hashtbl.create (2 * k) in
  let get i = match Hashtbl.find_opt swapped i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = i + int t (n - i) in
      let vi = get i and vj = get j in
      Hashtbl.replace swapped j vi;
      Hashtbl.replace swapped i vj;
      vj)
