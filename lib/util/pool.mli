(** Fixed-size domain pool with deterministic, order-preserving fan-out.

    All parallelism in Concilium flows through this module (enforced by the
    [raw-parallelism] lint rule): a pool owns a fixed set of worker domains
    fed from a mutex/condition chunk queue, and {!parallel_map} /
    {!parallel_init} return results in input order regardless of which
    domain computed what.

    Determinism contract: task [i] must write only its own result (no shared
    mutable state between tasks), and any randomness must come from a PRNG
    pre-split per task {e before} dispatch ({!Prng.split}). Under that
    contract output is bit-identical for every domain count, including the
    inline sequential path. *)

type t
(** A pool of worker domains. The creating domain participates in every
    fan-out, so a pool created with [~domains:n] runs tasks on [n] domains
    in total. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains. [domains]
    defaults to {!default_domains}. Raises [Invalid_argument] if
    [domains < 1]. *)

val shutdown : t -> unit
(** Joins all worker domains. Idempotent. Submitting to a shut-down pool
    raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down afterwards,
    also on exception. *)

val domain_count : t -> int
(** Total executing domains (workers plus the submitter). *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count ())]. *)

val parallel_init : ?pool:t -> int -> f:(int -> 'a) -> 'a array
(** [parallel_init ?pool n ~f] is [Array.init n f] with the calls fanned out
    across the pool's domains; the result array is in index order. Without
    [?pool] (or with a single-domain pool) it runs inline. The first
    exception raised by any task is re-raised after the remaining in-flight
    tasks finish; the undispatched tail is cancelled. Nested calls from
    inside a task run inline rather than deadlocking on the shared queue. *)

val parallel_map : ?pool:t -> 'a array -> f:('a -> 'b) -> 'b array
(** [parallel_map ?pool xs ~f] maps [f] over [xs] with the same semantics as
    {!parallel_init}; [f xs.(i)] lands at slot [i]. *)

type worker_stats = {
  worker : int;  (** slot index; 0 is the submitting domain *)
  busy_s : float;  (** wall seconds inside task bodies *)
  idle_s : float;  (** wall seconds parked waiting for work or completion *)
  steal_wait_s : float;  (** wall seconds contending on the chunk queue *)
  chunks : int;  (** chunks executed *)
}

val stats : t -> worker_stats list
(** Cumulative per-domain activity since creation (or {!reset_stats}), in
    slot order. The times are wall-clock and exist only to attribute where
    real time went (they never influence results); a worker's idle time is
    booked when its wait ends, so a snapshot taken while workers are parked
    under-counts their current idle stretch. Read between fan-outs for
    consistent numbers. *)

val reset_stats : t -> unit
(** Zero all counters, e.g. after warmup runs. *)
