(** Fixed-size domain pool with deterministic, order-preserving fan-out,
    scheduled by per-worker chunk deques with work-stealing.

    All parallelism in Concilium flows through this module (enforced by the
    [raw-parallelism] lint rule). A pool owns a fixed set of worker domains;
    {!parallel_map} / {!parallel_init} split the index range into one
    contiguous block per domain, each block subdivided into chunks of a
    deterministic size ({!chunk_size}). A domain claims chunks from its own
    block with one atomic fetch-and-add each and, when its block runs dry,
    steals from the other blocks in a fixed cyclic victim order — there is
    no lock anywhere on the hot path. Results land in input order regardless
    of which domain computed what, and are merged in task-index order, never
    completion order.

    Determinism contract: task [i] must write only its own result (no shared
    mutable state between tasks), and any randomness must come from a PRNG
    pre-split per task {e before} dispatch ({!parallel_init_rng}, or
    {!Prng.split_n} by hand). Under that contract output is bit-identical
    for every domain count, including the inline sequential path — the
    schedule (who stole what) can vary, the bytes cannot. *)

type t
(** A pool of worker domains. The creating domain participates in every
    fan-out, so a pool created with [~domains:n] runs tasks on [n] domains
    in total. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains. [domains]
    defaults to {!default_domains}. Raises [Invalid_argument] if
    [domains < 1]. *)

val shutdown : t -> unit
(** Joins all worker domains. Idempotent. Submitting to a shut-down pool
    raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down afterwards,
    also on exception. *)

val domain_count : t -> int
(** Total executing domains (workers plus the submitter). *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count ())]. *)

val chunk_size : tasks:int -> domains:int -> int
(** The deterministic scheduling granularity: the chunk length used when
    [tasks] indices fan out over [domains] domains (about four chunks per
    block, at least 1). Scheduling-only — the chunk size never influences
    which task computes what or in what order results merge, so it may
    depend on the domain count without breaking byte-identity. Exposed for
    tests and for callers sizing worklists. *)

val parallel_init : ?pool:t -> int -> f:(int -> 'a) -> 'a array
(** [parallel_init ?pool n ~f] is [Array.init n f] with the calls fanned out
    across the pool's domains; the result array is in index order. Without
    [?pool] (or with a single-domain pool) it runs inline. The first
    exception raised by any task is re-raised after the remaining in-flight
    tasks finish; the undispatched tail is cancelled (claimed and accounted,
    never run). Nested calls from inside a task run inline rather than
    deadlocking on the shared job slot. *)

val parallel_map : ?pool:t -> 'a array -> f:('a -> 'b) -> 'b array
(** [parallel_map ?pool xs ~f] maps [f] over [xs] with the same semantics as
    {!parallel_init}; [f xs.(i)] lands at slot [i]. *)

val parallel_init_rng : ?pool:t -> int -> rng:Prng.t -> f:(int -> Prng.t -> 'a) -> 'a array
(** [parallel_init_rng ?pool n ~rng ~f] is {!parallel_init} where task [i]
    additionally receives the [i]-th of [n] streams split from [rng] in
    index order on the submitting domain, before dispatch ({!Prng.split_n}).
    This is the sanctioned pre-split idiom: the stream a task draws from is
    a pure function of [rng] and [i], so output is bit-identical for any
    domain count and no per-task closure allocation is needed at the call
    site. [rng] itself advances by exactly [n] draws. *)

type worker_stats = {
  worker : int;  (** slot index; 0 is the submitting domain *)
  busy_s : float;  (** wall seconds inside task bodies *)
  idle_s : float;  (** wall seconds parked waiting for work or completion *)
  steal_wait_s : float;  (** wall seconds claiming chunks / scanning victims *)
  chunks : int;  (** chunks executed *)
  steals : int;  (** chunks claimed from another slot's block *)
  empty_scans : int;  (** victim scans that found every block empty *)
  wakeups : int;  (** times the worker unparked for a job *)
}

val stats : t -> worker_stats list
(** Cumulative per-domain activity since creation (or {!reset_stats}), in
    slot order. The times are wall-clock and exist only to attribute where
    real time went (they never influence results); a worker's idle time is
    booked when its wait ends, so a snapshot taken while workers are parked
    under-counts their current idle stretch. Read between fan-outs for
    consistent numbers. A healthy fan-out shows busy time dwarfing
    steal-wait; [empty_scans] close to [wakeups] means the job had too few
    chunks for the pool ({!chunk_size} bounds that at one failed scan per
    worker per job — the pool never busy-spins). *)

val reset_stats : t -> unit
(** Zero all counters, e.g. after warmup runs. *)
