(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256++ seeded through SplitMix64. Every source of
    randomness in the simulator flows from a seeded [t], so experiments are
    reproducible bit-for-bit. [split] derives an independent stream, which
    lets concurrent simulated processes draw without perturbing each other's
    sequences. *)

type t

val of_seed : int64 -> t
(** [of_seed s] creates a generator from a 64-bit seed. Equal seeds yield
    equal streams. *)

val of_string_seed : string -> t
(** [of_string_seed s] hashes [s] into a seed; convenient for naming
    experiment streams ("fig5", "failures", ...). *)

val split : t -> t
(** [split t] returns a new generator statistically independent of [t].
    Both generators advance independently afterwards. *)

val split_n : t -> int -> t array
(** [split_n t n] draws [n] independent generators from [t] in index order:
    the per-task streams for deterministic parallel fan-out (pre-split
    before dispatching to {!Pool} so output is independent of the domain
    count). Raises [Invalid_argument] on negative [n]. *)

val split_into : t -> t array -> unit
(** [split_into t out] reseeds every generator in [out], in index order,
    with exactly the streams [split_n t (Array.length out)] would have
    returned — but in place, so a hot fan-out loop can recycle one scratch
    array instead of allocating fresh generators each round. The elements
    of [out] must be distinct generators (e.g. from an initial
    {!split_n}); aliased elements would be reseeded more than once. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform over [0, n-1]. Raises [Invalid_argument] if
    [n <= 0]. *)

val uniform : t -> float
(** Uniform float in [0, 1). *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box-Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n-1], in random order. Raises [Invalid_argument] if [k > n]. *)
