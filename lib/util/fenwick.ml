type t = { tree : float array; weights : float array }

let create n =
  if n < 0 then invalid_arg "Fenwick.create: negative size";
  { tree = Array.make (n + 1) 0.; weights = Array.make n 0. }

let size t = Array.length t.weights

let add_internal t i delta =
  let i = ref (i + 1) in
  while !i < Array.length t.tree do
    t.tree.(!i) <- t.tree.(!i) +. delta;
    i := !i + (!i land - !i)
  done

let set t i w =
  if w < 0. then invalid_arg "Fenwick.set: negative weight";
  if i < 0 || i >= size t then invalid_arg "Fenwick.set: index out of range";
  let delta = w -. t.weights.(i) in
  t.weights.(i) <- w;
  add_internal t i delta

let get t i =
  if i < 0 || i >= size t then invalid_arg "Fenwick.get: index out of range";
  t.weights.(i)

let prefix_sum t i =
  let acc = ref 0. in
  let i = ref (min (i + 1) (Array.length t.tree - 1)) in
  while !i > 0 do
    acc := !acc +. t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let total t = prefix_sum t (size t - 1)

let find_by_weight t x =
  if x < 0. then invalid_arg "Fenwick.find_by_weight: negative target";
  if size t = 0 then invalid_arg "Fenwick.find_by_weight: empty tree";
  (* Descend the implicit tree: classic O(log n) cumulative-weight search. *)
  let n = Array.length t.tree - 1 in
  let log2 =
    let rec loop k acc = if k <= 1 then acc else loop (k lsr 1) (acc + 1) in
    loop n 0
  in
  let pos = ref 0 and remaining = ref x in
  let step = ref (1 lsl log2) in
  while !step > 0 do
    let next = !pos + !step in
    if next <= n && t.tree.(next) <= !remaining then begin
      remaining := !remaining -. t.tree.(next);
      pos := next
    end;
    step := !step lsr 1
  done;
  (* For x < total the descent lands on the unique index whose cumulative
     range contains x (zero-weight subtrees are consumed greedily, so it
     never rests on a weightless index). For x >= total — reachable when a
     sampler's floating-point accumulation of [total t] exceeds the tree's
     own prefix sums, or when every weight is zero — the descent walks off
     the end; clamp to the last positive-weight index, the only index the
     contract can still sensibly return. *)
  if !pos >= size t then pos := size t - 1;
  while !pos > 0 && t.weights.(!pos) = 0. do decr pos done;
  !pos
