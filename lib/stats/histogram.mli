(** Fixed-bin histogram over a closed interval; renders the empirical blame
    pdfs of paper Figure 5. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
val add : t -> float -> unit
(** Values outside [lo, hi] are clamped into the boundary bins. *)

val total : t -> int
val counts : t -> int array

val merge_into : into:t -> t -> unit
(** Add [src]'s bin counts into [into]. Counts are integers, so merging
    per-shard histograms in any grouping gives exactly the counts a single
    histogram would have accumulated. Raises [Invalid_argument] when the
    bounds or bin counts differ. *)

val bin_centers : t -> float array

val pdf : t -> float array
(** Densities normalised so the histogram integrates to 1 (each count divided
    by total * bin_width). All-zero if no samples were added. *)

val fraction_at_least : t -> float -> float
(** [fraction_at_least t x] is the fraction of samples whose *bin center* is
    >= x -- used for threshold sweeps over recorded pdfs. *)
