type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

let add t x =
  let bins = Array.length t.counts in
  let raw = int_of_float (floor ((x -. t.lo) /. bin_width t)) in
  let bin = max 0 (min (bins - 1) raw) in
  t.counts.(bin) <- t.counts.(bin) + 1;
  t.total <- t.total + 1

let total t = t.total
let counts t = Array.copy t.counts

let merge_into ~into src =
  if
    into.lo <> src.lo || into.hi <> src.hi
    || Array.length into.counts <> Array.length src.counts
  then invalid_arg "Histogram.merge_into: mismatched bounds or bin count";
  Array.iteri (fun i count -> into.counts.(i) <- into.counts.(i) + count) src.counts;
  into.total <- into.total + src.total

let bin_centers t =
  let w = bin_width t in
  Array.init (Array.length t.counts) (fun i -> t.lo +. (w *. (float_of_int i +. 0.5)))

let pdf t =
  if t.total = 0 then Array.make (Array.length t.counts) 0.
  else begin
    let scale = 1. /. (float_of_int t.total *. bin_width t) in
    Array.map (fun c -> float_of_int c *. scale) t.counts
  end

let fraction_at_least t x =
  if t.total = 0 then 0.
  else begin
    let centers = bin_centers t in
    let matching = ref 0 in
    Array.iteri (fun i center -> if center >= x then matching := !matching + t.counts.(i)) centers;
    float_of_int !matching /. float_of_int t.total
  end
