type summary = {
  count : int;
  mean : float;
  variance : float;
  stddev : float;
  minimum : float;
  maximum : float;
}

let mean samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Descriptive.mean: empty sample";
  Array.fold_left ( +. ) 0. samples /. float_of_int n

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Descriptive.summarize: empty sample";
  let mu = mean samples in
  let variance =
    Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0. samples
    /. float_of_int n
  in
  let minimum = Array.fold_left Float.min samples.(0) samples in
  let maximum = Array.fold_left Float.max samples.(0) samples in
  { count = n; mean = mu; variance; stddev = sqrt variance; minimum; maximum }

let stddev samples = (summarize samples).stddev

let quantile samples q =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Descriptive.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q outside [0,1]";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let position = q *. float_of_int (n - 1) in
  let lower = int_of_float (floor position) in
  let upper = min (n - 1) (lower + 1) in
  let weight = position -. float_of_int lower in
  ((1. -. weight) *. sorted.(lower)) +. (weight *. sorted.(upper))

module Online = struct
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.mean
  let variance t = if t.count = 0 then 0. else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)
end
