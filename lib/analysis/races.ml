(* Pool race detector.

   Roots are the [Pool.parallel_init] / [Pool.parallel_map] call sites; the
   [~f] task runs concurrently on worker domains, so everything reachable
   from it must stay within the determinism contract:

   - no writes to captured or module-level mutable state — the sanctioned
     exceptions are the per-task slot ([results.(i) <- ...] indexed by the
     task's own parameter) and the per-shard [Concilium_obs] collector;
   - randomness only from a split-derived generator owned by the task
     (a per-task [rngs.(i)], a generator parameter, or one created inside
     the task) — never a generator shared across tasks, because every draw
     mutates the generator;
   - no I/O, no raw domain primitives.

   Each finding carries the call-graph trail from the root to the line
   where the effect originates. *)

let pool_fns = [ "parallel_init"; "parallel_map"; "parallel_init_rng" ]

let is_pool_call (key : Callgraph.key) =
  key.Callgraph.k_lib = "concilium_util"
  && key.Callgraph.k_mod = "Pool"
  && List.mem key.Callgraph.k_fn pool_fns

type cls =
  | Task_owned  (* closure binder or closure-local value *)
  | Captured of string  (* enclosing-scope value caught in the closure *)
  | Global of string  (* module-level value binding *)
  | Fn
  | Unknown

(* Classify a name seen inside a task closure: closure scope first (with
   alias chasing that may escape to the enclosing scope), then binders,
   then the enclosing definition's scope. *)
let classify_in_closure ~closure_locals ~binders ~(outer : Effects.summary) name =
  let outer_cls name =
    match
      Effects.classify ~locals:outer.Effects.s_locals ~params:outer.Effects.s_params
        ~m:outer.Effects.s_module name
    with
    | Effects.Local_created | Effects.Local_opaque | Effects.Param _ -> Captured name
    | Effects.Global_value -> Global name
    | Effects.Global_fn -> Fn
    | Effects.Unresolved -> Unknown
  in
  let rec go depth name =
    if depth > 5 then Task_owned
    else
      match List.assoc_opt name closure_locals with
      | Some Source.Created | Some Source.Opaque -> Task_owned
      | Some (Source.Alias target) -> if target = name then Task_owned else go (depth + 1) target
      | Some (Source.Indexed (target, index)) ->
          (* [let x = arr.(i)] with a task binder index: the pre-split,
             per-task slot pattern *)
          if List.exists (fun ident -> List.mem ident binders) index then Task_owned
          else if target = name then Task_owned
          else go (depth + 1) target
      | None -> if List.mem name binders then Task_owned else outer_cls name
  in
  go 0 name

(* A captured array cell indexed by a task binder is the pre-split,
   per-task slot pattern ([shard_rngs.(i)], [results.(i) <- ...]). *)
let indexed_by_binder ~binders index_idents =
  List.exists (fun ident -> List.mem ident binders) index_idents

let finding ~(outer : Effects.summary) ~rule ~line ~message ~trail =
  {
    Finding.rule;
    file = outer.Effects.s_module.Source.m_path;
    line;
    message;
    trail;
  }

(* Effect flags of a callee reached from a task, as findings. *)
let callee_flag_findings effects ~outer ~root_step ~step ~line (g : Effects.summary) =
  let flagged rule flag what =
    if Effects.has g.Effects.s_mask flag then
      [
        finding ~outer ~rule ~line
          ~message:
            (Printf.sprintf "task reaches %s, which %s" (Callgraph.display g.Effects.s_key) what)
          ~trail:((root_step :: step) @ Effects.trail effects g flag);
      ]
    else []
  in
  flagged "pool-shared-write" Effects.Writes_global "writes module-level mutable state"
  @ flagged "pool-io" Effects.Io "performs I/O"
  @ flagged "pool-domain" Effects.Domain_primitive "uses a raw domain primitive"
  @ flagged "pool-unsplit-prng" Effects.Ambient_randomness "draws from ambient randomness"

(* Arguments a task passes into a callee: shared state flowing into a
   parameter the callee draws from or writes through. *)
let callee_arg_findings ~outer ~root_step ~step ~classify ~binders ~line
    (c : Callgraph.call) (g : Effects.summary) =
  if Effects.trusted g.Effects.s_key then []
  else
    List.concat_map
      (fun ((atom : Source.atom), names) ->
        match atom.Source.a_head with
        | Some head -> (
            match classify head with
            | (Captured shared | Global shared)
              when not (indexed_by_binder ~binders atom.Source.a_index_idents) ->
                let feeds field = List.exists (fun n -> List.mem n field) names in
                let hit rule what =
                  finding ~outer ~rule ~line
                    ~message:
                      (Printf.sprintf "task passes shared %s into %s, which %s it" shared
                         (Callgraph.display g.Effects.s_key) what)
                    ~trail:(root_step :: step)
                in
                (if feeds g.Effects.s_prng_params then [ hit "pool-unsplit-prng" "draws from" ]
                 else [])
                @
                if feeds g.Effects.s_write_params && not (Effects.sanctioned_sink g.Effects.s_key)
                then [ hit "pool-shared-write" "writes through" ]
                else []
            | _ -> [])
        | None -> [])
      (Effects.match_args c.Callgraph.c_atoms g.Effects.s_def.Source.d_params)

(* ---------- Task closure analysis ---------- *)

let closure_findings program effects ~(outer : Effects.summary) ~root_step ~pool_line closure_text =
  match Source.split_closure closure_text with
  | None -> []
  | Some (binders, body) ->
      let closure_locals = Source.local_bindings body in
      let classify = classify_in_closure ~closure_locals ~binders ~outer in
      (* the closure's first line, recovered by locating its text inside
         the enclosing definition's body *)
      let from_line =
        match Str.search_forward (Str.regexp_string body) outer.Effects.s_def.Source.d_body 0 with
        | exception Not_found -> pool_line
        | at ->
            Callgraph.line_of_pos outer.Effects.s_def.Source.d_body outer.Effects.s_def.Source.d_line
              at
      in
      let intrinsic = ref [] in
      (* direct writes to captured or global state *)
      List.iter
        (fun (w : Effects.write) ->
          match classify w.Effects.w_target with
          | (Captured shared | Global shared)
            when not (indexed_by_binder ~binders w.Effects.w_index) ->
              intrinsic :=
                finding ~outer ~rule:"pool-shared-write" ~line:w.Effects.w_line
                  ~message:
                    (Printf.sprintf "task writes shared %s (%s); route it through the per-shard \
                                     collector or a per-task slot"
                       shared w.Effects.w_note)
                  ~trail:[ root_step ]
                :: !intrinsic
          | _ -> ())
        (Effects.scan_writes ~from_line body);
      (match Effects.scan_first Effects.io_re ~from_line body with
      | Some (line, text) ->
          intrinsic :=
            finding ~outer ~rule:"pool-io" ~line
              ~message:(Printf.sprintf "task performs I/O via %s" text)
              ~trail:[ root_step ]
            :: !intrinsic
      | None -> ());
      (match Effects.scan_first Effects.domain_re ~from_line body with
      | Some (line, text) ->
          intrinsic :=
            finding ~outer ~rule:"pool-domain" ~line
              ~message:(Printf.sprintf "task uses raw domain primitive %s" text)
              ~trail:[ root_step ]
            :: !intrinsic
      | None -> ());
      (match Effects.scan_first Effects.ambient_re ~from_line body with
      | Some (line, _) ->
          intrinsic :=
            finding ~outer ~rule:"pool-unsplit-prng" ~line
              ~message:"task draws from process-global Stdlib.Random"
              ~trail:[ root_step ]
            :: !intrinsic
      | None -> ());
      (* calls out of the closure *)
      let shadows = binders @ List.map fst closure_locals in
      let calls, _ =
        Callgraph.scan_body program outer.Effects.s_module ~from_line ~locals:shadows body
      in
      let call_findings =
        List.concat_map
          (fun (c : Callgraph.call) ->
            if Effects.is_prng_draw c.Callgraph.c_callee then begin
              (* a draw inside the task: the generator must be task-owned *)
              match
                List.find_opt (fun (a : Source.atom) -> a.Source.a_label = None) c.Callgraph.c_atoms
              with
              | Some atom -> (
                  match atom.Source.a_head with
                  | Some head -> (
                      match classify head with
                      | (Captured shared | Global shared)
                        when not (indexed_by_binder ~binders atom.Source.a_index_idents) ->
                          [
                            finding ~outer ~rule:"pool-unsplit-prng" ~line:c.Callgraph.c_line
                              ~message:
                                (Printf.sprintf
                                   "task draws from shared generator %s (Prng.%s mutates it); \
                                    pre-split with Prng.split_n and pass a per-task generator"
                                   shared c.Callgraph.c_callee.Callgraph.k_fn)
                              ~trail:[ root_step ];
                          ]
                      | _ -> [])
                  | None -> [])
              | None -> []
            end
            else
              match Effects.find effects c.Callgraph.c_callee with
              | None -> []
              | Some g ->
                  let step =
                    [
                      Printf.sprintf "task calls %s at %s:%d" (Callgraph.display g.Effects.s_key)
                        outer.Effects.s_module.Source.m_path c.Callgraph.c_line;
                    ]
                  in
                  callee_flag_findings effects ~outer ~root_step ~step ~line:c.Callgraph.c_line g
                  @ callee_arg_findings ~outer ~root_step ~step ~classify ~binders
                      ~line:c.Callgraph.c_line c g)
          calls
      in
      List.rev !intrinsic @ call_findings

(* ---------- Direct function roots ---------- *)

let direct_findings effects ~outer ~root_step ~line (g : Effects.summary) =
  (* [~f:some_fn] — the pool feeds per-task values, so parameter-flow rules
     do not apply; only the callee's own effects can break the contract. *)
  callee_flag_findings effects ~outer ~root_step ~step:[] ~line g

let resolve_task_ref program (outer : Effects.summary) (atom : Source.atom) =
  match atom.Source.a_path with
  | [ name ] when name <> "" && Source.is_lower name.[0] ->
      Some
        {
          Callgraph.k_lib = outer.Effects.s_module.Source.m_library;
          Callgraph.k_mod = outer.Effects.s_module.Source.m_name;
          Callgraph.k_fn = name;
        }
  | path -> (
      match Callgraph.resolve program outer.Effects.s_module path with
      | Callgraph.Value key -> Some key
      | Callgraph.Module_ref _ | Callgraph.External -> None)

(* ---------- Entry point ---------- *)

let analyze program (effects : Effects.t) =
  List.concat_map
    (fun (s : Effects.summary) ->
      List.concat_map
        (fun (c : Callgraph.call) ->
          if not (is_pool_call c.Callgraph.c_callee) then []
          else begin
            let pool_fn = c.Callgraph.c_callee.Callgraph.k_fn in
            let root_step =
              Printf.sprintf "%s submits a task to Pool.%s at %s:%d"
                (Callgraph.display s.Effects.s_key) pool_fn s.Effects.s_module.Source.m_path
                c.Callgraph.c_line
            in
            match
              List.find_opt
                (fun (a : Source.atom) -> a.Source.a_label = Some "f")
                c.Callgraph.c_atoms
            with
            | None -> []
            | Some atom ->
                if Source.closure_atom atom then
                  closure_findings program effects ~outer:s ~root_step
                    ~pool_line:c.Callgraph.c_line atom.Source.a_text
                else (
                  match resolve_task_ref program s atom with
                  | None -> []
                  | Some key -> (
                      match Effects.find effects key with
                      | None -> []
                      | Some g ->
                          direct_findings effects ~outer:s ~root_step ~line:c.Callgraph.c_line g))
          end)
        s.Effects.s_calls)
    effects.Effects.e_order
