(* Canary mutations: small synthetic source files injected into the scanned
   tree by [--inject-bug] to prove the detectors catch real races.  Each
   canary carries the rule it must trip; CI runs every canary expecting a
   non-zero exit, so a detector regression turns the build red. *)

type canary = {
  c_name : string;
  c_path : string;  (* virtual path, placed to land in the right library *)
  c_rule : string;  (* the rule the canary must trigger *)
  c_source : string;
}

let canaries =
  [
    {
      c_name = "shard-table-write";
      c_path = "lib/experiments/canary_shard_table.ml";
      c_rule = "pool-shared-write";
      c_source =
        {|module Pool = Concilium_util.Pool

let shared_counts : (int, int) Hashtbl.t = Hashtbl.create 64

let run ?pool () =
  Pool.parallel_init ?pool 8 ~f:(fun shard ->
      let hits = shard * 3 in
      Hashtbl.replace shared_counts shard hits;
      hits)
|};
    };
    {
      c_name = "unsplit-prng";
      c_path = "lib/experiments/canary_unsplit_prng.ml";
      c_rule = "pool-unsplit-prng";
      c_source =
        {|module Pool = Concilium_util.Pool
module Prng = Concilium_util.Prng

let run ?pool () =
  let rng = Prng.of_seed 42L in
  Pool.parallel_init ?pool 8 ~f:(fun shard ->
      let jitter = Prng.float rng 1.0 in
      jitter +. float_of_int shard)
|};
    };
    {
      c_name = "task-io";
      c_path = "lib/experiments/canary_task_io.ml";
      c_rule = "pool-io";
      c_source =
        {|module Pool = Concilium_util.Pool

let run ?pool () =
  Pool.parallel_init ?pool 4 ~f:(fun shard ->
      Printf.printf "shard %d\n" shard;
      shard)
|};
    };
    {
      c_name = "layer-back-edge";
      c_path = "lib/util/canary_layer.ml";
      c_rule = "layer-back-edge";
      c_source =
        {|let upward_reference () = Concilium_core.Scenario.default
|};
    };
  ]

let names = List.map (fun c -> c.c_name) canaries
let find name = List.find_opt (fun c -> c.c_name = name) canaries
