(** Orchestration: gather sources, run the passes, filter suppressions,
    render reports. *)

type report = {
  r_findings : Finding.t list;  (** unsuppressed, sorted *)
  r_suppressed : int;
  r_metrics : Concilium_obs.Metrics.t;
  r_program : Callgraph.program;
  r_effects : Effects.t;
  r_edges : (Callgraph.key * Callgraph.key) list;  (** call edges, for dumps *)
}

val analyze_sources :
  layers_path:string ->
  layers_text:string ->
  dunes:(string * string) list ->
  files:(string * string) list ->
  report
(** Pure over in-memory sources; the tests drive this with fixtures. *)

val analyze_tree :
  layers_path:string ->
  inject:Inject.canary list ->
  paths:string list ->
  (report, string) result
(** Walk the given directories for [.ml] and [dune] files (skipping dot and
    underscore entries), append any injected canaries, and analyze. *)

val summary_line : report -> string
val render_text : report -> string
val render_json : report -> string
val callgraph_dot : report -> string
val callgraph_jsonl : report -> string
val effects_jsonl : report -> string
