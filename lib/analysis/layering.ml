(* Architecture layering checker.

   [analysis/layers.txt] lists the libraries bottom-up, one layer per line
   (several libraries may share a line).  An edge [from -> to] — a dune
   dependency or a resolved cross-library reference — is legal exactly when
   [to] sits on a strictly lower layer.  Same-library references are not
   edges, and libraries outside the file are reported once each rather than
   guessed at. *)

type spec = { s_layers : (string * int) list }  (* library -> layer index, bottom = 0 *)

(* Accept both short names ("util") and full library names
   ("concilium_util"); "bin" and "test" stay as-is. *)
let normalize word =
  if word = "bin" || word = "test" then word
  else if String.length word > 10 && String.sub word 0 10 = "concilium_" then word
  else "concilium_" ^ word

let parse text =
  let lines = String.split_on_char '\n' text in
  let layers = ref [] in
  let index = ref 0 in
  let error = ref None in
  List.iter
    (fun line ->
      let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
      let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line)) in
      if words <> [] then begin
        List.iter
          (fun word ->
            let lib = normalize word in
            if List.mem_assoc lib !layers && !error = None then
              error := Some (Printf.sprintf "library %s appears on two layers" lib)
            else layers := (lib, !index) :: !layers)
          words;
        incr index
      end)
    lines;
  match !error with
  | Some message -> Error message
  | None when !layers = [] -> Error "layers file lists no libraries"
  | None -> Ok { s_layers = List.rev !layers }

let layer_of spec lib = List.assoc_opt lib spec.s_layers

type edge = { e_from : string; e_to : string; e_file : string; e_line : int; e_what : string }

(* Check a set of edges against the spec; pure so the qcheck property can
   drive it with synthetic layerings. *)
let check spec edges =
  let unknown_reported = ref [] in
  let findings = ref [] in
  List.iter
    (fun e ->
      if e.e_from <> e.e_to then
        match (layer_of spec e.e_from, layer_of spec e.e_to) with
        | Some lf, Some lt ->
            if lt >= lf then
              findings :=
                {
                  Finding.rule = "layer-back-edge";
                  file = e.e_file;
                  line = e.e_line;
                  message =
                    Printf.sprintf
                      "%s (layer %d) must not depend on %s (layer %d): %s breaks the \
                       architecture DAG"
                      e.e_from lf e.e_to lt e.e_what;
                  trail = [];
                }
                :: !findings
        | missing_from, missing_to ->
            List.iter
              (fun (lib, layer) ->
                if layer = None && not (List.mem lib !unknown_reported) then begin
                  unknown_reported := lib :: !unknown_reported;
                  findings :=
                    {
                      Finding.rule = "layer-unknown";
                      file = e.e_file;
                      line = e.e_line;
                      message =
                        Printf.sprintf
                          "library %s is not listed in the layers file; add it to its layer"
                          lib;
                      trail = [];
                    }
                    :: !findings
                end)
              [ (e.e_from, missing_from); (e.e_to, missing_to) ])
    edges;
  List.rev !findings

(* ---------- Edge extraction from dune files ---------- *)

let dune_libraries_re = Str.regexp "(libraries\\([^)]*\\))"

(* Library-dependency edges declared by a dune file.  The owning library is
   taken from the path (lib/<dir>/dune), so executable stanzas in bin/ all
   collapse onto the "bin" pseudo-library. *)
let dune_edges ~path text =
  let from_lib = Source.library_of_path (Filename.concat (Filename.dirname path) "x.ml") in
  let edges = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match Str.search_forward dune_libraries_re text !pos with
    | exception Not_found -> continue := false
    | at ->
        let deps = Str.matched_group 1 text in
        pos := Str.match_end ();
        let line = 1 + List.length (String.split_on_char '\n' (String.sub text 0 at)) - 1 in
        List.iter
          (fun word ->
            if String.length word > 10 && String.sub word 0 10 = "concilium_" then
              edges :=
                {
                  e_from = from_lib;
                  e_to = word;
                  e_file = path;
                  e_line = line;
                  e_what = Printf.sprintf "dune (libraries %s)" word;
                }
                :: !edges)
          (List.filter (fun w -> w <> "")
             (String.split_on_char ' ' (String.map (fun c -> if c = '\n' then ' ' else c) deps)))
  done;
  List.rev !edges

let xref_edges xrefs =
  List.map
    (fun (x : Callgraph.xref) ->
      {
        e_from = x.Callgraph.x_from;
        e_to = x.Callgraph.x_to;
        e_file = x.Callgraph.x_file;
        e_line = x.Callgraph.x_line;
        e_what = Printf.sprintf "reference %s" x.Callgraph.x_token;
      })
    xrefs
