(* Orchestration: gather sources, run the passes, filter suppressions and
   render reports.  [analyze_sources] is pure over in-memory sources so the
   tests drive it with fixtures; [analyze_tree] walks the repository. *)

module Metrics = Concilium_obs.Metrics

type report = {
  r_findings : Finding.t list;  (* unsuppressed, sorted *)
  r_suppressed : int;
  r_metrics : Metrics.t;
  r_program : Callgraph.program;
  r_effects : Effects.t;
  r_edges : (Callgraph.key * Callgraph.key) list;  (* call edges, for dumps *)
}

let call_edges (effects : Effects.t) =
  List.concat_map
    (fun (s : Effects.summary) ->
      List.map (fun (c : Callgraph.call) -> (s.Effects.s_key, c.Callgraph.c_callee)) s.Effects.s_calls)
    effects.Effects.e_order

(* ---------- Core pipeline over in-memory sources ---------- *)

let analyze_sources ~layers_path ~layers_text ~dunes ~files =
  let modules =
    List.filter_map
      (fun (path, source) ->
        if Filename.check_suffix path ".ml" then Some (Source.parse ~path source) else None)
      files
  in
  let program = Callgraph.build modules in
  let effects = Effects.compute program in
  (* cross-library references: whole-file scans so module-level expressions
     and alias lines count, not just function bodies *)
  let xrefs =
    List.concat_map
      (fun (m : Source.module_info) ->
        let _, xrefs =
          Callgraph.scan_body program m ~from_line:1 ~locals:[]
            (String.concat "\n" (Array.to_list m.Source.m_code))
        in
        xrefs)
      program.Callgraph.p_modules
  in
  let layer_findings =
    match Layering.parse layers_text with
    | Error message ->
        [
          {
            Finding.rule = "layer-unknown";
            file = layers_path;
            line = 1;
            message = Printf.sprintf "cannot parse layers file: %s" message;
            trail = [];
          };
        ]
    | Ok spec ->
        let dune_edges =
          List.concat_map (fun (path, text) -> Layering.dune_edges ~path text) dunes
        in
        Layering.check spec (dune_edges @ Layering.xref_edges xrefs)
  in
  let race_findings = Races.analyze program effects in
  let raw = List.sort_uniq Finding.compare_finding (layer_findings @ race_findings) in
  (* suppression directives live in each module's comments *)
  let by_file = Hashtbl.create 64 in
  let invalid_directives = ref [] in
  List.iter
    (fun (m : Source.module_info) ->
      let suppressions, invalid =
        Finding.parse_suppressions ~file:m.Source.m_path m.Source.m_comments
      in
      Hashtbl.replace by_file m.Source.m_path suppressions;
      invalid_directives := !invalid_directives @ invalid)
    modules;
  let kept, suppressed =
    List.partition
      (fun (f : Finding.t) ->
        match Hashtbl.find_opt by_file f.Finding.file with
        | Some suppressions ->
            not (Finding.suppressed suppressions ~rule:f.Finding.rule ~line:f.Finding.line)
        | None -> true)
      raw
  in
  let findings = List.sort_uniq Finding.compare_finding (kept @ !invalid_directives) in
  let metrics = Metrics.create () in
  Metrics.incr metrics ~by:(List.length modules) "analysis:modules-scanned";
  Metrics.incr metrics
    ~by:(List.fold_left (fun acc (m : Source.module_info) -> acc + List.length m.Source.m_defs) 0 modules)
    "analysis:functions-resolved";
  Metrics.incr metrics ~by:effects.Effects.e_calls_resolved "analysis:calls-resolved";
  Metrics.incr metrics ~by:(List.length findings) "analysis:findings";
  Metrics.incr metrics ~by:(List.length suppressed) "analysis:findings-suppressed";
  {
    r_findings = findings;
    r_suppressed = List.length suppressed;
    r_metrics = metrics;
    r_program = program;
    r_effects = effects;
    r_edges = call_edges effects;
  }

(* ---------- Filesystem walking ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect path acc =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.filter (fun entry -> entry <> "" && entry.[0] <> '.' && entry.[0] <> '_')
    |> List.sort String.compare
    |> List.fold_left (fun acc entry -> collect (Filename.concat path entry) acc) acc
  else if Filename.check_suffix path ".ml" || Filename.basename path = "dune" then path :: acc
  else acc

let analyze_tree ~layers_path ~inject ~paths =
  match read_file layers_path with
  | exception Sys_error message -> Error (Printf.sprintf "cannot read layers file: %s" message)
  | layers_text ->
      let found = List.rev (List.fold_left (fun acc path -> collect path acc) [] paths) in
      let sources, dunes =
        List.fold_left
          (fun (sources, dunes) path ->
            let text = read_file path in
            if Filename.basename path = "dune" then (sources, (path, text) :: dunes)
            else ((path, text) :: sources, dunes))
          ([], []) found
      in
      let injected =
        List.map (fun (c : Inject.canary) -> (c.Inject.c_path, c.Inject.c_source)) inject
      in
      Ok
        (analyze_sources ~layers_path ~layers_text ~dunes:(List.rev dunes)
           ~files:(List.rev sources @ injected))

(* ---------- Rendering ---------- *)

let summary_line report =
  let counter = Metrics.counter report.r_metrics in
  Printf.sprintf
    "analysis: %d modules scanned, %d functions resolved, %d calls resolved; %d findings (%d \
     suppressed)"
    (counter "analysis:modules-scanned")
    (counter "analysis:functions-resolved")
    (counter "analysis:calls-resolved")
    (List.length report.r_findings) report.r_suppressed

let render_text report =
  let buffer = Buffer.create 1024 in
  Finding.render_text buffer report.r_findings;
  Buffer.add_string buffer (summary_line report);
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let render_json report =
  Printf.sprintf "{\"findings\": %s,\n\"metrics\": %s}\n"
    (Finding.to_json report.r_findings)
    (Metrics.snapshot_json report.r_metrics)

let callgraph_dot report = Callgraph.dot report.r_program ~edges:report.r_edges
let callgraph_jsonl report = Callgraph.jsonl ~edges:report.r_edges
let effects_jsonl report = Effects.jsonl report.r_effects
