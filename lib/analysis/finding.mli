(** Findings and suppression directives for the whole-program analysis. *)

type t = {
  rule : string;
  file : string;
  line : int;
  message : string;
  trail : string list;  (** call chain, task root first; [[]] when not a path rule *)
}

val compare_finding : t -> t -> int

(** A parsed [(* analysis: allow <rules> — <reason> *)] directive.  It
    covers its comment's lines plus the next line; [allow-file] covers the
    whole file.  The justification is mandatory. *)
type suppression = {
  rules : string list;
  first_line : int;
  last_line : int;
  whole_file : bool;
}

val parse_suppressions :
  file:string -> Concilium_lint.Lexer.comment list -> suppression list * t list
(** Directives from a module's comments; the second component reports
    directives without a justification (which suppress nothing). *)

val suppressed : suppression list -> rule:string -> line:int -> bool

val render_text : Buffer.t -> t list -> unit
val to_json : t list -> string
