(** Architecture layering checker over [analysis/layers.txt]: libraries are
    listed bottom-up, one layer per line, and every cross-library edge must
    point to a strictly lower layer. *)

type spec

val parse : string -> (spec, string) result
(** Parse a layers file.  Short names ("util") and full library names
    ("concilium_util") are both accepted; [#] starts a comment. *)

val layer_of : spec -> string -> int option

type edge = { e_from : string; e_to : string; e_file : string; e_line : int; e_what : string }

val check : spec -> edge list -> Finding.t list
(** [layer-back-edge] for every edge that does not point strictly downward,
    [layer-unknown] once per library missing from the spec.  Pure, so tests
    can drive it with synthetic layerings and edge sets. *)

val dune_edges : path:string -> string -> edge list
(** Library-dependency edges declared by a dune file's [(libraries ...)]. *)

val xref_edges : Callgraph.xref list -> edge list
