(** Canary mutations for [--inject-bug]: synthetic source files that must
    each trip a named rule, proving the detectors catch real races. *)

type canary = {
  c_name : string;
  c_path : string;  (** virtual path, placed to land in the right library *)
  c_rule : string;  (** the rule the canary must trigger *)
  c_source : string;
}

val canaries : canary list
val names : string list
val find : string -> canary option
