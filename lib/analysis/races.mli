(** Pool race detector: checks every [Pool.parallel_init]/[parallel_map]
    task against the determinism contract — no writes to shared mutable
    state outside the per-shard collector or per-task slot, randomness only
    from task-owned split-derived generators, no I/O, no raw domain
    primitives.  Findings carry the call-graph trail from the root. *)

val analyze : Callgraph.program -> Effects.t -> Finding.t list
