(** Inter-module reference resolution and call-graph construction. *)

type key = { k_lib : string; k_mod : string; k_fn : string }

val key_compare : key -> key -> int
val key_to_string : key -> string

val display : key -> string
(** ["Mod.fn"] — the short human-facing form. *)

type call = { c_callee : key; c_line : int; c_atoms : Source.atom list }

(** A cross-library module reference; raw material of the layering check. *)
type xref = { x_from : string; x_to : string; x_file : string; x_line : int; x_token : string }

type program = {
  p_modules : Source.module_info list;  (** sorted by path *)
  p_by_lib : (string, (string, Source.module_info) Hashtbl.t) Hashtbl.t;
  p_defs : (string, Source.def * Source.module_info) Hashtbl.t;
}

val build : Source.module_info list -> program
val find_def : program -> key -> (Source.def * Source.module_info) option

type resolution =
  | Value of key
  | Module_ref of string * string  (** library, module: no value component *)
  | External

val resolve : program -> Source.module_info -> string list -> resolution
(** Resolve a dotted path (head first) in a module's scope: aliases, then
    wrapped library roots, then same-library siblings. *)

val line_of_pos : string -> int -> int -> int
(** Line of a character position in a body whose first line is the given
    source line. *)

val scan_body :
  program ->
  Source.module_info ->
  from_line:int ->
  locals:string list ->
  string ->
  call list * xref list
(** All resolved calls and cross-library references in a scrubbed body;
    [locals] names identifiers that shadow module definitions. *)

val dot : program -> edges:(key * key) list -> string
val jsonl : edges:(key * key) list -> string
