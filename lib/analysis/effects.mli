(** Transitive effect inference over the call graph. *)

type flag =
  | Reads_mutable
  | Writes_arg  (** writes through caller-provided state *)
  | Writes_global  (** writes a module-level value binding *)
  | Io
  | Randomness
  | Ambient_randomness  (** draws from process-global or module-level randomness *)
  | Domain_primitive

val flag_name : flag -> string
val has : int -> flag -> bool
val flags_of_mask : int -> flag list

type origin =
  | Intrinsic of int * string  (** line, note *)
  | Via of Callgraph.key * int  (** callee the flag arrived through, call line *)

type summary = {
  s_key : Callgraph.key;
  s_def : Source.def;
  s_module : Source.module_info;
  s_calls : Callgraph.call list;
  s_locals : (string * Source.binding_kind) list;
  s_params : string list;
  mutable s_mask : int;
  mutable s_origins : (flag * origin) list;  (** first witness per flag *)
  mutable s_prng_params : string list;  (** parameters drawn from as PRNGs *)
  mutable s_write_params : string list;  (** parameters written through *)
}

type t = {
  e_table : (string, summary) Hashtbl.t;
  e_order : summary list;  (** sorted by key *)
  e_calls_resolved : int;
}

val find : t -> Callgraph.key -> summary option

val trusted : Callgraph.key -> bool
(** The deterministic runtime ([Concilium_util.Prng]/[Pool]): modelled at
    call sites, never propagated from. *)

val sanctioned_sink : Callgraph.key -> bool
(** [concilium_obs]: the one place a pooled task may write caller-visible
    state (the per-shard collector). *)

(** Classification of an identifier against a definition's scope. *)
type cls =
  | Local_created
  | Local_opaque
  | Param of string
  | Global_value
  | Global_fn
  | Unresolved

val classify :
  locals:(string * Source.binding_kind) list ->
  params:string list ->
  m:Source.module_info ->
  string ->
  cls

type write = { w_target : string; w_line : int; w_index : string list; w_note : string }

val scan_writes : from_line:int -> string -> write list
(** Textual writes in a scrubbed body: [:=]/[<-] assignments, [incr]/[decr]
    and stdlib mutator calls. *)

val io_re : Str.regexp
val domain_re : Str.regexp
val ambient_re : Str.regexp

val scan_first : Str.regexp -> from_line:int -> string -> (int * string) option
(** First match as (line, matched text), if any. *)

val is_prng_draw : Callgraph.key -> bool
(** A [Prng] call that mutates its generator (everything except creation
    from a seed). *)

val match_args : Source.atom list -> Source.param list -> (Source.atom * string list) list
(** Pair call-site atoms with the callee parameter names they feed:
    labelled atoms by label, positional atoms in order. *)

val compute : Callgraph.program -> t

val trail : t -> summary -> flag -> string list
(** The chain of calls along which the flag reached the summary, ending at
    the intrinsic witness line. *)

val jsonl : t -> string
