(* Inter-module reference resolution and call-graph construction.

   Qualified identifier paths are resolved through three scopes, in order:
   local [module X = Path] aliases, the wrapped library roots
   ([Concilium_util.Prng.int]), and sibling modules of the same library.
   Unqualified identifiers resolve only within their own module — an
   [open]ed module's values are not chased (the tree under analysis opens
   only external libraries such as Cmdliner).  Unresolvable heads are
   external by construction (Stdlib, Str, ...) and are handled by the
   effect scanner's intrinsic tables instead. *)

type key = { k_lib : string; k_mod : string; k_fn : string }

let key_compare a b =
  match String.compare a.k_lib b.k_lib with
  | 0 -> ( match String.compare a.k_mod b.k_mod with 0 -> String.compare a.k_fn b.k_fn | c -> c)
  | c -> c

let key_to_string k = Printf.sprintf "%s.%s.%s" k.k_lib k.k_mod k.k_fn
let display k = Printf.sprintf "%s.%s" k.k_mod k.k_fn

type call = { c_callee : key; c_line : int; c_atoms : Source.atom list }

(* A cross-library module reference; the raw material of the layering
   check. *)
type xref = { x_from : string; x_to : string; x_file : string; x_line : int; x_token : string }

type program = {
  p_modules : Source.module_info list;  (* sorted by path *)
  p_by_lib : (string, (string, Source.module_info) Hashtbl.t) Hashtbl.t;
  p_defs : (string, Source.def * Source.module_info) Hashtbl.t;  (* key_to_string *)
}

let find_module program ~lib ~modname =
  match Hashtbl.find_opt program.p_by_lib lib with
  | None -> None
  | Some mods -> Hashtbl.find_opt mods modname

let find_def program key = Hashtbl.find_opt program.p_defs (key_to_string key)

let build modules =
  let modules =
    List.sort (fun a b -> String.compare a.Source.m_path b.Source.m_path) modules
  in
  let by_lib = Hashtbl.create 16 in
  let defs = Hashtbl.create 512 in
  List.iter
    (fun (m : Source.module_info) ->
      let mods =
        match Hashtbl.find_opt by_lib m.Source.m_library with
        | Some mods -> mods
        | None ->
            let mods = Hashtbl.create 16 in
            Hashtbl.replace by_lib m.Source.m_library mods;
            mods
      in
      Hashtbl.replace mods m.Source.m_name m;
      List.iter
        (fun (d : Source.def) ->
          let key = { k_lib = m.Source.m_library; k_mod = m.Source.m_name; k_fn = d.Source.d_name } in
          Hashtbl.replace defs (key_to_string key) (d, m))
        m.Source.m_defs)
    modules;
  { p_modules = modules; p_by_lib = by_lib; p_defs = defs }

(* ---------- Path resolution ---------- *)

let wrapper_prefix = "Concilium_"

let lib_of_wrapper name =
  let n = String.length wrapper_prefix in
  if String.length name > n && String.sub name 0 n = wrapper_prefix then
    Some (String.lowercase_ascii name)
  else None

type resolution =
  | Value of key  (* a value path into a known module *)
  | Module_ref of string * string  (* library, module: no value component *)
  | External

(* [segments] is a dotted path, head first.  [m] provides aliases and the
   sibling scope. *)
let resolve program (m : Source.module_info) segments =
  let rec go depth segments =
    if depth > 4 then External
    else
      match segments with
      | [] -> External
      | head :: rest when Source.is_upper head.[0] -> (
          match List.assoc_opt head m.Source.m_aliases with
          | Some target -> go (depth + 1) (target @ rest)
          | None -> (
              match lib_of_wrapper head with
              | Some lib when Hashtbl.mem program.p_by_lib lib -> in_library lib rest
              | _ ->
                  (* sibling module of the same library (lib/ trees only:
                     bin modules are standalone executables) *)
                  if
                    m.Source.m_library <> "bin"
                    && find_module program ~lib:m.Source.m_library ~modname:head <> None
                  then in_library m.Source.m_library (head :: rest)
                  else External))
      | _ -> External
  and in_library lib = function
    | [] -> Module_ref (lib, "")
    | modname :: path when Source.is_upper modname.[0] ->
        if find_module program ~lib ~modname <> None then
          match path with
          | [] -> Module_ref (lib, modname)
          | _ -> Value { k_lib = lib; k_mod = modname; k_fn = String.concat "." path }
        else Module_ref (lib, modname)
    | _ -> External
  in
  go 0 segments

(* ---------- Reference scanning ---------- *)

let token_re =
  Str.regexp "[A-Za-z_][A-Za-z0-9_']*\\(\\.[A-Za-z_][A-Za-z0-9_']*\\)*"

let line_of_pos body from_line pos =
  let line = ref from_line in
  for i = 0 to min pos (String.length body) - 1 do
    if body.[i] = '\n' then incr line
  done;
  !line

(* All resolved calls and cross-library references in [body] (scrubbed text
   whose first line is [from_line]), resolved in module [m]'s scope.
   [locals] names identifiers that shadow module definitions. *)
let scan_body program (m : Source.module_info) ~from_line ~locals body =
  let calls = ref [] in
  let xrefs = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match Str.search_forward token_re body !pos with
    | exception Not_found -> continue := false
    | at ->
        let token = Str.matched_string body in
        let token_end = Str.match_end () in
        pos := token_end;
        let before_ok = at = 0 || (body.[at - 1] <> '~' && body.[at - 1] <> '?') in
        if before_ok then begin
          let segments = String.split_on_char '.' token in
          match segments with
          | head :: _ when Source.is_upper head.[0] -> (
              match resolve program m segments with
              | Value key ->
                  if key.k_lib <> m.Source.m_library then
                    xrefs :=
                      {
                        x_from = m.Source.m_library;
                        x_to = key.k_lib;
                        x_file = m.Source.m_path;
                        x_line = line_of_pos body from_line at;
                        x_token = token;
                      }
                      :: !xrefs;
                  if find_def program key <> None then
                    calls :=
                      {
                        c_callee = key;
                        c_line = line_of_pos body from_line at;
                        c_atoms = Source.parse_atoms body token_end;
                      }
                      :: !calls
              | Module_ref (lib, _) ->
                  if lib <> m.Source.m_library then
                    xrefs :=
                      {
                        x_from = m.Source.m_library;
                        x_to = lib;
                        x_file = m.Source.m_path;
                        x_line = line_of_pos body from_line at;
                        x_token = token;
                      }
                      :: !xrefs
              | External -> ())
          | [ name ] when not (List.mem name locals) ->
              (* unqualified: a sibling definition of the same module *)
              let key =
                { k_lib = m.Source.m_library; k_mod = m.Source.m_name; k_fn = name }
              in
              if find_def program key <> None then
                calls :=
                  {
                    c_callee = key;
                    c_line = line_of_pos body from_line at;
                    c_atoms = Source.parse_atoms body token_end;
                  }
                  :: !calls
          | _ -> ()
        end
  done;
  (List.rev !calls, List.rev !xrefs)

(* ---------- Dumps ---------- *)

let dot program ~edges =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  List.iter
    (fun (m : Source.module_info) ->
      List.iter
        (fun (d : Source.def) ->
          if not d.Source.d_is_value then
            Buffer.add_string buffer
              (Printf.sprintf "  \"%s.%s\";\n" m.Source.m_name d.Source.d_name))
        m.Source.m_defs)
    program.p_modules;
  List.iter
    (fun (caller, callee) ->
      Buffer.add_string buffer
        (Printf.sprintf "  \"%s\" -> \"%s\";\n" (display caller) (display callee)))
    edges;
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer

let jsonl ~edges =
  let buffer = Buffer.create 4096 in
  let grouped = Hashtbl.create 256 in
  List.iter
    (fun (caller, callee) ->
      let existing = match Hashtbl.find_opt grouped (key_to_string caller) with Some l -> l | None -> [] in
      Hashtbl.replace grouped (key_to_string caller) (callee :: existing))
    edges;
  let callers =
    List.sort_uniq String.compare (List.map (fun (c, _) -> key_to_string c) edges)
  in
  List.iter
    (fun caller ->
      let callees =
        match Hashtbl.find_opt grouped caller with
        | Some l -> List.sort_uniq String.compare (List.map key_to_string l)
        | None -> []
      in
      Buffer.add_string buffer
        (Printf.sprintf "{\"function\": \"%s\", \"calls\": [%s]}\n" caller
           (String.concat ", " (List.map (fun c -> Printf.sprintf "\"%s\"" c) callees))))
    callers;
  Buffer.contents buffer
