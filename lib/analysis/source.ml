(* Lightweight def/use extraction over OCaml source.

   This is not a parser for the language: it reuses the lint's comment- and
   string-aware lexer to blank out non-code, then recovers just enough
   structure for a whole-program analysis — top-level definitions with their
   parameter lists and body spans, [open]s, [module X = Path] aliases, and
   single-level [module X = struct ... end] groups.  Bodies stay as scrubbed
   text; call sites and argument atoms are recovered on demand by the
   scanners at the bottom of this file. *)

module Lexer = Concilium_lint.Lexer

(* ---------- Character classes and small scanners ---------- *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c || c = '\''

let keywords =
  [
    "let"; "in"; "if"; "then"; "else"; "match"; "with"; "fun"; "function"; "type"; "open";
    "begin"; "end"; "for"; "while"; "do"; "done"; "rec"; "and"; "or"; "not"; "mod"; "land";
    "lor"; "lxor"; "lsl"; "lsr"; "asr"; "try"; "when"; "as"; "of"; "module"; "struct"; "sig";
    "val"; "mutable"; "new"; "assert"; "lazy"; "true"; "false"; "downto"; "to"; "exception";
    "include"; "object"; "method"; "inherit"; "initializer"; "constraint"; "external";
  ]

let is_keyword s = List.mem s keywords

let read_ident s i =
  let n = String.length s in
  if i < n && is_ident_start s.[i] then begin
    let j = ref (i + 1) in
    while !j < n && is_ident_char s.[!j] do
      incr j
    done;
    Some (String.sub s i (!j - i), !j)
  end
  else None

let skip_ws s i =
  let n = String.length s in
  let j = ref i in
  while !j < n && (s.[!j] = ' ' || s.[!j] = '\n' || s.[!j] = '\r') do
    incr j
  done;
  !j

(* Position after the bracket that closes the one at [i]; nesting of (), []
   and {} is tracked jointly so an inner bracket of another kind cannot
   unbalance the scan.  [None] when the text ends first. *)
let balanced s i =
  let n = String.length s in
  let depth = ref 0 in
  let j = ref i in
  let result = ref None in
  while !result = None && !j < n do
    (match s.[!j] with
    | '(' | '[' | '{' -> incr depth
    | ')' | ']' | '}' ->
        decr depth;
        if !depth = 0 then result := Some (!j + 1)
    | _ -> ());
    incr j
  done;
  !result

let idents_of_text text =
  let out = ref [] in
  let i = ref 0 in
  let n = String.length text in
  while !i < n do
    match read_ident text !i with
    | Some (ident, j) ->
        if not (is_keyword ident) then out := ident :: !out;
        i := j
    | None -> incr i
  done;
  List.rev !out

(* ---------- Parameters ---------- *)

type param = {
  p_label : string option;
  p_optional : bool;
  p_names : string list;  (* identifiers bound by the parameter pattern *)
}

(* Identifiers bound by a pattern fragment: everything before a top-level
   [:] (after it lives a type, whose idents are not binders). *)
let pattern_binders text =
  let cut =
    let n = String.length text in
    let depth = ref 0 and stop = ref n in
    let i = ref 0 in
    while !i < n do
      (match text.[!i] with
      | '(' | '[' | '{' -> incr depth
      | ')' | ']' | '}' -> decr depth
      | ':' when !depth = 0 -> if !stop = n then stop := !i
      | _ -> ());
      incr i
    done;
    String.sub text 0 !stop
  in
  List.filter (fun s -> s <> "_") (idents_of_text cut)

(* ---------- Definitions and modules ---------- *)

type def = {
  d_name : string;  (* "run", or "Window.add" inside a nested module *)
  d_params : param list;
  d_body : string;  (* scrubbed item text with the binding header blanked *)
  d_line : int;  (* 1-based line of the [let] *)
  d_is_value : bool;  (* no parameters: a top-level value binding *)
}

type module_info = {
  m_path : string;
  m_library : string;  (* "concilium_util", "bin", ... *)
  m_name : string;  (* "Pool" *)
  m_opens : string list;
  m_aliases : (string * string list) list;  (* local name -> path segments *)
  m_defs : def list;
  m_comments : Lexer.comment list;
  m_code : string array;
}

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* lib/<dir>/x.ml -> concilium_<dir>; bin/x.ml -> bin; anything else keeps
   its first path segment so synthetic test paths still group sensibly. *)
let library_of_path path =
  let segments = List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path) in
  match segments with
  | "lib" :: dir :: _ -> "concilium_" ^ dir
  | "bin" :: _ -> "bin"
  | segment :: _ -> segment
  | [] -> "unknown"

(* ---------- Structure-item scanning ---------- *)

let indent_of line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && line.[!i] = ' ' do
    incr i
  done;
  if !i = n then None else Some !i

(* [Some (col, kw)] when the line's first token is a structure keyword; the
   column tells which nesting level it belongs to. *)
let item_at line =
  match indent_of line with
  | Some col -> (
      match read_ident line col with
      | Some (word, _)
        when List.mem word
               [ "let"; "and"; "module"; "open"; "type"; "exception"; "include"; "end" ] ->
          Some (col, word)
      | _ -> None)
  | None -> None

let alias_re =
  Str.regexp
    "^ *module +\\([A-Z][A-Za-z0-9_']*\\) *= *\\([A-Z][A-Za-z0-9_'.]*\\)\\( *(.*\\)? *$"

let struct_re = Str.regexp "^ *module +\\([A-Z][A-Za-z0-9_']*\\).*= *struct *$"
let open_re = Str.regexp "^ *open +\\([A-Z][A-Za-z0-9_'.]*\\)"

(* Parse one [let]/[and] item: name, params, body with the header blanked.
   The header runs to the first [=] at bracket depth 0 (an [=] inside
   [?(x = default)] is depth-guarded). *)
let parse_let item_text line prefix =
  let n = String.length item_text in
  (* skip the let/and keyword *)
  let i =
    match read_ident item_text (skip_ws item_text 0) with
    | Some (_, j) -> (
        let j = skip_ws item_text j in
        match read_ident item_text j with Some ("rec", k) -> skip_ws item_text k | _ -> j)
    | None -> 0
  in
  (* binding name: an identifier, a parenthesised operator, or a pattern *)
  let name, after_name =
    match read_ident item_text i with
    | Some (ident, j) -> (ident, j)
    | None ->
        if i < n && item_text.[i] = '(' then begin
          match balanced item_text i with
          | Some j -> (String.trim (String.sub item_text i (j - i)), j)
          | None -> ("_anon", i + 1)
        end
        else ("_anon", min n (i + 1))
  in
  (* scan the header for parameters until the top-level [=] *)
  let params = ref [] in
  let body_start = ref n in
  let j = ref after_name in
  let stop = ref false in
  while (not !stop) && !j < n do
    let k = skip_ws item_text !j in
    if k >= n then begin
      j := n;
      stop := true
    end
    else begin
      let c = item_text.[k] in
      if c = '=' then begin
        body_start := k + 1;
        stop := true
      end
      else if c = ':' then begin
        (* return-type constraint: skip to the top-level [=] *)
        let depth = ref 0 and m = ref (k + 1) in
        let found = ref false in
        while (not !found) && !m < n do
          (match item_text.[!m] with
          | '(' | '[' | '{' -> incr depth
          | ')' | ']' | '}' -> decr depth
          | '=' when !depth = 0 -> found := true
          | _ -> ());
          if not !found then incr m
        done;
        body_start := min n (!m + 1);
        stop := true
      end
      else if c = '~' || c = '?' then begin
        match read_ident item_text (k + 1) with
        | Some (label, m) ->
            let optional = c = '?' in
            if m < n && item_text.[m] = ':' then begin
              let m' = m + 1 in
              if m' < n && (item_text.[m'] = '(' || item_text.[m'] = '{') then begin
                match balanced item_text m' with
                | Some e ->
                    let inner = String.sub item_text (m' + 1) (e - m' - 2) in
                    params :=
                      { p_label = Some label; p_optional = optional; p_names = pattern_binders inner }
                      :: !params;
                    j := e
                | None ->
                    params := { p_label = Some label; p_optional = optional; p_names = [] } :: !params;
                    j := m' + 1
              end
              else begin
                match read_ident item_text m' with
                | Some (ident, e) ->
                    params :=
                      { p_label = Some label; p_optional = optional; p_names = [ ident ] } :: !params;
                    j := e
                | None ->
                    params := { p_label = Some label; p_optional = optional; p_names = [] } :: !params;
                    j := m'
              end
            end
            else begin
              params :=
                { p_label = Some label; p_optional = optional; p_names = [ label ] } :: !params;
              j := m
            end
        | None ->
            (* [?(x = default)] *)
            if k + 1 < n && item_text.[k + 1] = '(' then begin
              match balanced item_text (k + 1) with
              | Some e ->
                  let inner = String.sub item_text (k + 2) (e - k - 3) in
                  let name =
                    match read_ident inner (skip_ws inner 0) with Some (ident, _) -> ident | None -> "_"
                  in
                  params := { p_label = Some name; p_optional = true; p_names = [ name ] } :: !params;
                  j := e
              | None -> j := k + 2
            end
            else j := k + 1
      end
      else if c = '(' || c = '{' || c = '[' then begin
        match balanced item_text k with
        | Some e ->
            let inner = String.sub item_text (k + 1) (e - k - 2) in
            params := { p_label = None; p_optional = false; p_names = pattern_binders inner } :: !params;
            j := e
        | None ->
            body_start := k;
            stop := true
      end
      else begin
        match read_ident item_text k with
        | Some (ident, m) ->
            if is_keyword ident then begin
              (* [let f = function ...] — no more parameters *)
              body_start := k;
              stop := true
            end
            else begin
              if ident <> "_" then
                params := { p_label = None; p_optional = false; p_names = [ ident ] } :: !params;
              j := m
            end
        | None ->
            body_start := k;
            stop := true
      end
    end
  done;
  (* blank the header so body scans never see parameter or name tokens *)
  let body = Bytes.of_string item_text in
  for idx = 0 to min (n - 1) (!body_start - 1) do
    if Bytes.get body idx <> '\n' then Bytes.set body idx ' '
  done;
  {
    d_name = prefix ^ name;
    d_params = List.rev !params;
    d_body = Bytes.to_string body;
    d_line = line;
    d_is_value = !params = [];
  }

let parse_module ~path ~library source =
  let scrubbed = Lexer.scrub source in
  let lines = scrubbed.Lexer.code_lines in
  let count = Array.length lines in
  let defs = ref [] in
  let opens = ref [] in
  let aliases = ref [] in
  let item_text first last =
    String.concat "\n" (Array.to_list (Array.sub lines first (last - first + 1)))
  in
  (* Next structure item at column [indent] or lower, strictly after [i]:
     the end of the item starting at [i]. *)
  let next_item indent i =
    let j = ref (i + 1) in
    let stop = ref false in
    while (not !stop) && !j < count do
      match item_at lines.(!j) with
      | Some (col, _) when col <= indent -> stop := true
      | _ -> incr j
    done;
    !j
  in
  (* Walk the items at column [indent]; returns the first line belonging to
     an enclosing level (or [count]). *)
  let rec walk ~indent ~prefix i =
    if i >= count then count
    else
      match item_at lines.(i) with
      | Some (col, _) when col < indent -> i
      | Some (col, kw) when col = indent -> (
          match kw with
          | "end" -> i (* the enclosing [module _ = struct]'s terminator *)
          | "let" | "and" ->
              let stop = next_item indent i in
              defs := parse_let (item_text i (stop - 1)) (i + 1) prefix :: !defs;
              walk ~indent ~prefix stop
          | "open" ->
              (match Str.string_match open_re lines.(i) 0 with
              | true -> opens := Str.matched_group 1 lines.(i) :: !opens
              | false -> ());
              walk ~indent ~prefix (next_item indent i)
          | "module" ->
              if Str.string_match struct_re lines.(i) 0 then begin
                let name = Str.matched_group 1 lines.(i) in
                let after = walk ~indent:(indent + 2) ~prefix:(prefix ^ name ^ ".") (i + 1) in
                let after =
                  match if after < count then item_at lines.(after) else None with
                  | Some (col, "end") when col = indent -> after + 1
                  | _ -> after
                in
                walk ~indent ~prefix after
              end
              else if Str.string_match alias_re lines.(i) 0 then begin
                let name = Str.matched_group 1 lines.(i) in
                let target = String.split_on_char '.' (Str.matched_group 2 lines.(i)) in
                aliases := (name, target) :: !aliases;
                walk ~indent ~prefix (next_item indent i)
              end
              else walk ~indent ~prefix (next_item indent i)
          | _ -> walk ~indent ~prefix (next_item indent i))
      | _ -> walk ~indent ~prefix (i + 1)
  in
  ignore (walk ~indent:0 ~prefix:"" 0);
  {
    m_path = path;
    m_library = library;
    m_name = module_name_of_path path;
    m_opens = List.rev !opens;
    m_aliases = List.rev !aliases;
    m_defs = List.rev !defs;
    m_comments = scrubbed.Lexer.comments;
    m_code = lines;
  }

let parse ~path source = parse_module ~path ~library:(library_of_path path) source

(* ---------- Argument atoms ---------- *)

type atom = {
  a_label : string option;
  a_text : string;
  a_head : string option;  (* leading identifier of an ident-path atom *)
  a_path : string list;  (* dotted segments when the atom is an ident path *)
  a_index_idents : string list;  (* idents inside any .(...) index *)
}

let closure_atom atom =
  match read_ident atom.a_text (skip_ws atom.a_text 0) with
  | Some ("fun", _) | Some ("function", _) -> true
  | _ -> false

let rec parse_atom s i =
  let n = String.length s in
  let i = skip_ws s i in
  if i >= n then None
  else
    let c = s.[i] in
    if c = '~' || c = '?' then begin
      match read_ident s (i + 1) with
      | Some (label, j) ->
          if j < n && s.[j] = ':' then begin
            match parse_atom s (j + 1) with
            | Some (atom, k) -> Some ({ atom with a_label = Some label }, k)
            | None -> None
          end
          else
            Some
              ( { a_label = Some label; a_text = label; a_head = Some label; a_path = [ label ];
                  a_index_idents = [] },
                j )
      | None -> None
    end
    else if c = '(' || c = '[' || c = '{' then begin
      match balanced s i with
      | Some j ->
          let inner = String.trim (String.sub s (i + 1) (j - i - 2)) in
          let head, path =
            match read_ident inner 0 with
            | Some (ident, k) when k = String.length inner && not (is_keyword ident) ->
                (Some ident, [ ident ])
            | _ -> (None, [])
          in
          Some ({ a_label = None; a_text = inner; a_head = head; a_path = path; a_index_idents = [] }, j)
      | None -> None
    end
    else if is_digit c || (c = '-' && i + 1 < n && is_digit s.[i + 1]) then begin
      let j = ref (i + 1) in
      while
        !j < n
        && (is_digit s.[!j] || s.[!j] = '.' || s.[!j] = '_' || s.[!j] = 'x' || s.[!j] = 'e'
           || s.[!j] = 'L' || s.[!j] = 'n' || s.[!j] = 'l')
      do
        incr j
      done;
      Some
        ( { a_label = None; a_text = String.sub s i (!j - i); a_head = None; a_path = [];
            a_index_idents = [] },
          !j )
    end
    else if is_ident_start c then begin
      match read_ident s i with
      | Some (ident, j) when not (is_keyword ident) ->
          let segments = ref [ ident ] in
          let index_idents = ref [] in
          let k = ref j in
          let continue = ref true in
          while !continue do
            if !k + 1 < n && s.[!k] = '.' && is_ident_start s.[!k + 1] then begin
              match read_ident s (!k + 1) with
              | Some (segment, m) ->
                  segments := segment :: !segments;
                  k := m
              | None -> continue := false
            end
            else if !k + 1 < n && s.[!k] = '.' && s.[!k + 1] = '(' then begin
              match balanced s (!k + 1) with
              | Some m ->
                  index_idents :=
                    !index_idents @ idents_of_text (String.sub s (!k + 2) (m - !k - 3));
                  k := m
              | None -> continue := false
            end
            else continue := false
          done;
          let path = List.rev !segments in
          Some
            ( { a_label = None; a_text = String.sub s i (!k - i); a_head = Some ident;
                a_path = path; a_index_idents = !index_idents },
              !k )
      | _ -> None
    end
    else None

(* Up to [limit] argument atoms from position [i]; stops at the first token
   that cannot open an atom (an operator, a keyword, a closing bracket). *)
let parse_atoms ?(limit = 12) s i =
  let out = ref [] in
  let pos = ref i in
  let continue = ref true in
  while !continue && List.length !out < limit do
    match parse_atom s !pos with
    | Some (atom, j) ->
        out := atom :: !out;
        pos := j
    | None -> continue := false
  done;
  List.rev !out

(* ---------- Closures ---------- *)

(* Split a [fun p1 p2 -> body] (or [function ...]) atom into binder names
   and body text.  [function] has no binders before its arms. *)
let split_closure text =
  match read_ident text (skip_ws text 0) with
  | Some ("function", j) -> Some ([], String.sub text j (String.length text - j))
  | Some ("fun", j) -> (
      match Str.search_forward (Str.regexp_string "->") text j with
      | exception Not_found -> None
      | arrow ->
          let binders = pattern_binders (String.sub text j (arrow - j)) in
          let body = String.sub text (arrow + 2) (String.length text - arrow - 2) in
          Some (binders, body))
  | _ -> None

(* ---------- Local bindings ---------- *)

type binding_kind =
  | Created  (* let x = ref / Hashtbl.create / { ... } / Prng.split ... *)
  | Alias of string  (* let x = y... : chase [y]'s class *)
  | Indexed of string * string list  (* let x = y.(i): chase [y], but [i]
                                        may prove x a per-task slot *)
  | Opaque  (* let- or fun-bound with an unclassifiable right-hand side *)

let creation_re =
  Str.regexp
    ("^ *\\(ref\\b\\|{\\|\\[|\\|\\[\\]\\|Array\\.\\|Hashtbl\\.\\|Buffer\\.\\|Bytes\\.\\|"
   ^ "Queue\\.\\|Stack\\.\\|Atomic\\.\\|"
   ^ "[A-Z][A-Za-z0-9_'.]*\\.\\(create\\|make\\|make_exn\\|init\\|copy\\|empty\\|singleton\\|"
   ^ "split_n\\|split\\|of_[a-z_]+\\|shards\\)\\b\\)")

let local_let_re =
  Str.regexp "\\blet +\\(rec +\\)?\\([a-z_][A-Za-z0-9_']*\\)\\([^=\n]*\\)=\\(.*\\)$"

let fun_kw_re = Str.regexp "\\bfun\\b"

(* Scan a body for [let]-bound and [fun]-bound names with a coarse kind. *)
let local_bindings body =
  let out = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match Str.search_forward local_let_re body !pos with
    | exception Not_found -> continue := false
    | at ->
        let name = Str.matched_group 2 body in
        let rhs = Str.matched_group 4 body in
        let kind =
          if Str.string_match creation_re rhs 0 then Created
          else
            match parse_atom rhs 0 with
            | Some (atom, _) -> (
                match atom.a_head with
                | Some head when is_lower head.[0] && not (is_keyword head) -> (
                    match atom.a_index_idents with
                    | [] -> Alias head
                    | index -> Indexed (head, index))
                | _ -> Opaque)
            | None -> Opaque
        in
        out := (name, kind) :: !out;
        pos := at + 4
  done;
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match Str.search_forward fun_kw_re body !pos with
    | exception Not_found -> continue := false
    | at -> (
        match Str.search_forward (Str.regexp_string "->") body at with
        | exception Not_found -> continue := false
        | arrow ->
            List.iter
              (fun name -> out := (name, Opaque) :: !out)
              (pattern_binders (String.sub body (at + 3) (arrow - at - 3)));
            pos := at + 3)
  done;
  !out
