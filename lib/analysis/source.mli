(** Lightweight def/use extraction over OCaml source: top-level definitions
    with parameter lists and scrubbed body text, [open]s, module aliases,
    and on-demand argument/closure scanning.  Not a parser — just enough
    structure for the whole-program analysis. *)

val is_upper : char -> bool
val is_lower : char -> bool
val is_ident_char : char -> bool

val read_ident : string -> int -> (string * int) option
(** The identifier starting at the given position, with the position after
    it; [None] when none starts there. *)

val idents_of_text : string -> string list
(** All non-keyword identifiers in the text, in order. *)

type param = {
  p_label : string option;
  p_optional : bool;
  p_names : string list;  (** identifiers bound by the parameter pattern *)
}

val pattern_binders : string -> string list
(** Identifiers bound by a pattern fragment (idents after a top-level [:]
    belong to a type and are excluded). *)

type def = {
  d_name : string;  (** ["run"], or ["Window.add"] inside a nested module *)
  d_params : param list;
  d_body : string;  (** scrubbed item text with the binding header blanked *)
  d_line : int;  (** 1-based line of the [let] *)
  d_is_value : bool;  (** no parameters: a top-level value binding *)
}

type module_info = {
  m_path : string;
  m_library : string;  (** ["concilium_util"], ["bin"], ... *)
  m_name : string;  (** ["Pool"] *)
  m_opens : string list;
  m_aliases : (string * string list) list;  (** local name -> path segments *)
  m_defs : def list;
  m_comments : Concilium_lint.Lexer.comment list;
  m_code : string array;  (** scrubbed code lines *)
}

val library_of_path : string -> string
(** [lib/<dir>/x.ml -> concilium_<dir>]; [bin/x.ml -> bin]. *)

val parse : path:string -> string -> module_info

(** One argument at a call site: its label, raw text, leading identifier
    when it is an identifier path, and identifiers used in [.(...)]
    indexing. *)
type atom = {
  a_label : string option;
  a_text : string;
  a_head : string option;
  a_path : string list;
  a_index_idents : string list;
}

val closure_atom : atom -> bool
(** Whether the atom is a [fun]/[function] literal. *)

val parse_atoms : ?limit:int -> string -> int -> atom list
(** Up to [limit] argument atoms from the given position; stops at the
    first token that cannot open an atom. *)

val split_closure : string -> (string list * string) option
(** Binder names and body text of a [fun ... -> ...] atom. *)

type binding_kind =
  | Created  (** [let x = ref ... / Hashtbl.create ... / { ... }] *)
  | Alias of string  (** [let x = y...]: chase [y]'s class *)
  | Indexed of string * string list
      (** [let x = y.(i)]: chase [y], but [i] may prove [x] a per-task slot *)
  | Opaque  (** bound with an unclassifiable right-hand side *)

val local_bindings : string -> (string * binding_kind) list
(** [let]-bound and [fun]-bound names in a body, with a coarse kind. *)
