(* Transitive effect inference over the call graph.

   Each function gets a summary: a bitmask over a small effect lattice, a
   first-witness origin per flag (an intrinsic line or the callee the flag
   arrived through — enough to print a call-graph path), and two parameter
   fixpoints: which parameters are drawn from as PRNGs and which are written
   through.  Intrinsic effects come from textual scans of the scrubbed body
   (assignments, stdlib mutators, I/O and domain primitives, resolved
   [Prng] draws); transitive effects flow caller-ward over resolved calls
   until a fixed point.

   Two module families are sanctioned and masked during propagation: the
   deterministic runtime itself ([Concilium_util.Prng] / [Pool]), and
   [concilium_obs] writes-through-argument (the per-shard Collector sink is
   the one place a pooled task may write caller-visible state). *)

type flag =
  | Reads_mutable
  | Writes_arg
  | Writes_global
  | Io
  | Randomness
  | Ambient_randomness
  | Domain_primitive

let flag_bit = function
  | Reads_mutable -> 1
  | Writes_arg -> 2
  | Writes_global -> 4
  | Io -> 8
  | Randomness -> 16
  | Ambient_randomness -> 32
  | Domain_primitive -> 64

let all_flags =
  [ Reads_mutable; Writes_arg; Writes_global; Io; Randomness; Ambient_randomness; Domain_primitive ]

let flag_name = function
  | Reads_mutable -> "reads-mutable"
  | Writes_arg -> "writes-arg"
  | Writes_global -> "writes-global"
  | Io -> "io"
  | Randomness -> "randomness"
  | Ambient_randomness -> "ambient-randomness"
  | Domain_primitive -> "domain-primitive"

let has mask flag = mask land flag_bit flag <> 0
let flags_of_mask mask = List.filter (has mask) all_flags

type origin =
  | Intrinsic of int * string  (* line, note *)
  | Via of Callgraph.key * int  (* callee the flag arrived through, call line *)

type summary = {
  s_key : Callgraph.key;
  s_def : Source.def;
  s_module : Source.module_info;
  s_calls : Callgraph.call list;
  s_locals : (string * Source.binding_kind) list;
  s_params : string list;
  mutable s_mask : int;
  mutable s_origins : (flag * origin) list;  (* first witness per flag *)
  mutable s_prng_params : string list;
  mutable s_write_params : string list;
}

type t = {
  e_table : (string, summary) Hashtbl.t;  (* Callgraph.key_to_string *)
  e_order : summary list;  (* sorted by key *)
  e_calls_resolved : int;
}

let find t key = Hashtbl.find_opt t.e_table (Callgraph.key_to_string key)

(* The deterministic runtime: its internals use domains and mutate PRNG
   state by design, under contracts the analysis models at call sites
   instead (split-derivation, per-slot writes). *)
let trusted (key : Callgraph.key) =
  key.Callgraph.k_lib = "concilium_util"
  && (key.Callgraph.k_mod = "Prng" || key.Callgraph.k_mod = "Pool")

let sanctioned_sink (key : Callgraph.key) = key.Callgraph.k_lib = "concilium_obs"

(* ---------- Name classification ---------- *)

type cls =
  | Local_created
  | Local_opaque
  | Param of string
  | Global_value
  | Global_fn
  | Unresolved

(* Classify an identifier against a scope: local lets (one-level alias
   chasing), parameters, then the module's own top-level definitions. *)
let classify ~locals ~params ~(m : Source.module_info) name =
  let module_def name =
    List.find_opt (fun (d : Source.def) -> d.Source.d_name = name) m.Source.m_defs
  in
  let rec go depth name =
    if depth > 5 then Local_opaque
    else
      match List.assoc_opt name locals with
      | Some Source.Created -> Local_created
      | Some Source.Opaque -> Local_opaque
      | Some (Source.Alias target) | Some (Source.Indexed (target, _)) ->
          if target = name then Local_opaque else go (depth + 1) target
      | None -> (
          if List.mem name params then Param name
          else
            match module_def name with
            | Some d -> if d.Source.d_is_value then Global_value else Global_fn
            | None -> Unresolved)
  in
  go 0 name

(* ---------- Intrinsic scans ---------- *)

type write = { w_target : string; w_line : int; w_index : string list; w_note : string }

let assign_re = Str.regexp ":=\\|<-"
let incr_re = Str.regexp "\\b\\(incr\\|decr\\)[ \t]+\\([A-Za-z_][A-Za-z0-9_'.]*\\)"

let mutator_re =
  Str.regexp "\\b\\(Hashtbl\\|Buffer\\|Array\\|Bytes\\|Queue\\|Stack\\|Atomic\\)\\.\\([a-z_]+\\)"

(* (module, function) -> indices of the mutated positional arguments *)
let mutator_targets m fn =
  match (m, fn) with
  | "Hashtbl", ("replace" | "add" | "remove" | "reset" | "clear" | "filter_map_inplace") -> [ 0 ]
  | ( "Buffer",
      ( "add_char" | "add_string" | "add_bytes" | "add_buffer" | "add_substring" | "add_subbytes"
      | "add_utf_8_uchar" | "clear" | "reset" | "truncate" ) ) ->
      [ 0 ]
  | "Array", ("set" | "fill" | "unsafe_set") -> [ 0 ]
  | "Array", ("sort" | "stable_sort" | "fast_sort") -> [ 1 ]
  | "Array", "blit" -> [ 2 ]
  | "Bytes", ("set" | "fill" | "unsafe_set") -> [ 0 ]
  | "Bytes", ("blit" | "blit_string") -> [ 2 ]
  | "Queue", ("push" | "add" | "transfer") -> [ 1 ]
  | "Queue", ("pop" | "take" | "clear") -> [ 0 ]
  | "Stack", "push" -> [ 1 ]
  | "Stack", ("pop" | "clear") -> [ 0 ]
  | "Atomic", ("set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr" | "decr") -> [ 0 ]
  | _ -> []

(* The identifier path ending just before position [at] (the left-hand side
   of a [:=] or [<-]): walk back over identifier characters, dots and
   brackets, then take the leading identifier. *)
let lvalue_before body at =
  let j = ref (at - 1) in
  while !j >= 0 && (body.[!j] = ' ' || body.[!j] = '\n') do
    decr j
  done;
  let k = ref !j in
  let continue = ref true in
  while !continue && !k >= 0 do
    let c = body.[!k] in
    if Source.is_ident_char c || c = '.' || c = '(' || c = ')' || c = '!' then decr k
    else continue := false
  done;
  if !j < 0 || !j <= !k then None
  else
    let text = String.sub body (!k + 1) (!j - !k) in
    match Source.read_ident text 0 with
    | Some (head, _) ->
        let index =
          match Str.search_forward (Str.regexp_string ".(") text 0 with
          | exception Not_found -> []
          | dot ->
              Source.idents_of_text (String.sub text dot (String.length text - dot))
        in
        Some (head, text, index)
    | None -> None

let search_all pattern body handle =
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match Str.search_forward pattern body !pos with
    | exception Not_found -> continue := false
    | at ->
        let matched_end = Str.match_end () in
        handle at;
        pos := max matched_end (at + 1)
  done

(* All textual writes in a scrubbed body: [:=]/[<-] assignments,
   [incr]/[decr], and stdlib mutator calls.  [from_line] is the body's
   first source line. *)
let scan_writes ~from_line body =
  let writes = ref [] in
  search_all assign_re body (fun at ->
      match lvalue_before body at with
      | Some (head, text, index) when Source.is_lower head.[0] ->
          writes :=
            {
              w_target = head;
              w_line = Callgraph.line_of_pos body from_line at;
              w_index = index;
              w_note = Printf.sprintf "assignment to %s" text;
            }
            :: !writes
      | _ -> ());
  search_all incr_re body (fun at ->
      let target = Str.matched_group 2 body in
      match Source.read_ident target 0 with
      | Some (head, _) when Source.is_lower head.[0] ->
          writes :=
            {
              w_target = head;
              w_line = Callgraph.line_of_pos body from_line at;
              w_index = [];
              w_note = Printf.sprintf "incr/decr of %s" target;
            }
            :: !writes
      | _ -> ());
  search_all mutator_re body (fun at ->
      let m = Str.matched_group 1 body in
      let fn = Str.matched_group 2 body in
      let after = Str.match_end () in
      let indices = mutator_targets m fn in
      if indices <> [] then begin
        let atoms =
          List.filter (fun (a : Source.atom) -> a.Source.a_label = None) (Source.parse_atoms body after)
        in
        List.iter
          (fun index ->
            match List.nth_opt atoms index with
            | Some atom -> (
                match atom.Source.a_head with
                | Some head when Source.is_lower head.[0] ->
                    writes :=
                      {
                        w_target = head;
                        w_line = Callgraph.line_of_pos body from_line at;
                        w_index = atom.Source.a_index_idents;
                        w_note = Printf.sprintf "%s.%s on %s" m fn atom.Source.a_text;
                      }
                      :: !writes
                | _ -> ())
            | None -> ())
          indices
      end);
  List.rev !writes

let io_re =
  Str.regexp
    ("\\b\\(print_endline\\|print_string\\|print_newline\\|print_char\\|print_int\\|print_float\\|"
   ^ "prerr_endline\\|prerr_string\\|prerr_newline\\|output_string\\|output_char\\|output_bytes\\|"
   ^ "open_in\\|open_out\\|close_in\\|close_out\\|input_line\\|really_input\\|read_line\\|"
   ^ "Printf\\.printf\\|Printf\\.eprintf\\|Printf\\.fprintf\\|Format\\.printf\\|Format\\.eprintf\\|"
   ^ "Out_channel\\.\\|In_channel\\.\\|Sys\\.command\\|Sys\\.getenv\\|Sys\\.file_exists\\|"
   ^ "Sys\\.readdir\\|Sys\\.remove\\|Sys\\.rename\\|Sys\\.mkdir\\|Unix\\.\\|stdout\\b\\|stderr\\b\\)")

let domain_re = Str.regexp "\\b\\(Domain\\.\\|Mutex\\.\\|Condition\\.\\|Semaphore\\.\\|Atomic\\.\\)"
let ambient_re = Str.regexp "\\bRandom\\."
let reads_re = Str.regexp "![A-Za-z_]\\|\\.("

(* First match of [pattern] as (line, matched text), if any. *)
let scan_first pattern ~from_line body =
  match Str.search_forward pattern body 0 with
  | exception Not_found -> None
  | at -> Some (Callgraph.line_of_pos body from_line at, Str.matched_string body)

let prng_creation_fns = [ "of_seed"; "of_string_seed" ]

let is_prng_draw (key : Callgraph.key) =
  key.Callgraph.k_lib = "concilium_util"
  && key.Callgraph.k_mod = "Prng"
  && not (List.mem key.Callgraph.k_fn prng_creation_fns)

(* ---------- Argument-to-parameter matching ---------- *)

(* Pair call-site atoms with the callee parameter names they feed: labelled
   atoms by label, positional atoms in order against unlabelled parameter
   groups.  Optional parameters a call omits shift the positional map — an
   accepted imprecision for this analysis. *)
let match_args atoms (params : Source.param list) =
  let labelled =
    List.filter_map
      (fun (a : Source.atom) ->
        match a.Source.a_label with
        | Some label -> (
            match
              List.find_opt (fun (p : Source.param) -> p.Source.p_label = Some label) params
            with
            | Some p -> Some (a, p.Source.p_names)
            | None -> None)
        | None -> None)
      atoms
  in
  let positional_atoms = List.filter (fun (a : Source.atom) -> a.Source.a_label = None) atoms in
  let positional_params = List.filter (fun (p : Source.param) -> p.Source.p_label = None) params in
  let rec zip atoms params =
    match (atoms, params) with
    | a :: atoms, (p : Source.param) :: params -> (a, p.Source.p_names) :: zip atoms params
    | _, _ -> []
  in
  labelled @ zip positional_atoms positional_params

(* ---------- Summary construction ---------- *)

let add_flag s flag origin =
  if not (has s.s_mask flag) then begin
    s.s_mask <- s.s_mask lor flag_bit flag;
    s.s_origins <- s.s_origins @ [ (flag, origin) ]
  end

let add_param field s name =
  match field with
  | `Prng -> if not (List.mem name s.s_prng_params) then s.s_prng_params <- s.s_prng_params @ [ name ]
  | `Write ->
      if not (List.mem name s.s_write_params) then s.s_write_params <- s.s_write_params @ [ name ]

let intrinsic_pass s =
  let body = s.s_def.Source.d_body in
  let from_line = s.s_def.Source.d_line in
  let cls = classify ~locals:s.s_locals ~params:s.s_params ~m:s.s_module in
  List.iter
    (fun w ->
      let origin = Intrinsic (w.w_line, w.w_note) in
      match cls w.w_target with
      | Local_created -> ()
      | Param p ->
          add_flag s Writes_arg origin;
          add_param `Write s p
      | Global_value -> add_flag s Writes_global origin
      | Local_opaque | Global_fn | Unresolved -> add_flag s Writes_arg origin)
    (scan_writes ~from_line body);
  (match scan_first io_re ~from_line body with
  | Some (line, text) -> add_flag s Io (Intrinsic (line, Printf.sprintf "I/O via %s" text))
  | None -> ());
  (match scan_first domain_re ~from_line body with
  | Some (line, text) ->
      add_flag s Domain_primitive (Intrinsic (line, Printf.sprintf "domain primitive %s" text))
  | None -> ());
  (match scan_first ambient_re ~from_line body with
  | Some (line, _) ->
      add_flag s Randomness (Intrinsic (line, "Stdlib.Random draw"));
      add_flag s Ambient_randomness (Intrinsic (line, "Stdlib.Random is process-global"))
  | None -> ());
  (match scan_first reads_re ~from_line body with
  | Some (line, _) -> add_flag s Reads_mutable (Intrinsic (line, "mutable read"))
  | None -> ());
  (* Resolved Prng draws: a draw mutates the generator, so its provenance
     decides between sanctioned (split-derived, passed in) and ambient. *)
  List.iter
    (fun (c : Callgraph.call) ->
      if is_prng_draw c.Callgraph.c_callee then begin
        let fn = c.Callgraph.c_callee.Callgraph.k_fn in
        let target =
          List.find_opt (fun (a : Source.atom) -> a.Source.a_label = None) c.Callgraph.c_atoms
        in
        let note head =
          Printf.sprintf "Prng.%s draws from %s" fn head
        in
        let origin head = Intrinsic (c.Callgraph.c_line, note head) in
        match target with
        | Some atom -> (
            match atom.Source.a_head with
            | Some head -> (
                add_flag s Randomness (origin head);
                match cls head with
                | Param p -> add_param `Prng s p
                | Global_value ->
                    add_flag s Ambient_randomness
                      (Intrinsic (c.Callgraph.c_line, note head ^ ", a module-level generator"))
                | Local_created | Local_opaque | Global_fn | Unresolved -> ())
            | None -> add_flag s Randomness (origin atom.Source.a_text))
        | None -> add_flag s Randomness (origin "?")
      end)
    s.s_calls

(* Effects a caller inherits from this callee. *)
let propagation_mask (g : summary) =
  if trusted g.s_key then 0
  else if sanctioned_sink g.s_key then g.s_mask land lnot (flag_bit Writes_arg)
  else g.s_mask

let transitive_pass t =
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun s ->
        if not (trusted s.s_key) then
          List.iter
            (fun (c : Callgraph.call) ->
              match find t c.Callgraph.c_callee with
              | None -> ()
              | Some g ->
                  let incoming = propagation_mask g land lnot s.s_mask in
                  if incoming <> 0 then begin
                    changed := true;
                    List.iter
                      (fun flag ->
                        add_flag s flag (Via (g.s_key, c.Callgraph.c_line)))
                      (flags_of_mask incoming)
                  end;
                  if not (trusted g.s_key) then
                    List.iter
                      (fun ((atom : Source.atom), names) ->
                        match atom.Source.a_head with
                        | Some head -> (
                            match classify ~locals:s.s_locals ~params:s.s_params ~m:s.s_module head with
                            | Param p ->
                                let feeds field = List.exists (fun n -> List.mem n field) names in
                                if feeds g.s_prng_params && not (List.mem p s.s_prng_params) then begin
                                  add_param `Prng s p;
                                  changed := true
                                end;
                                if
                                  (not (sanctioned_sink g.s_key))
                                  && feeds g.s_write_params
                                  && not (List.mem p s.s_write_params)
                                then begin
                                  add_param `Write s p;
                                  changed := true
                                end
                            | _ -> ())
                        | None -> ())
                      (match_args c.Callgraph.c_atoms g.s_def.Source.d_params))
            s.s_calls)
      t.e_order
  done

let compute (program : Callgraph.program) =
  let table = Hashtbl.create 512 in
  let order = ref [] in
  let calls_resolved = ref 0 in
  List.iter
    (fun (m : Source.module_info) ->
      List.iter
        (fun (d : Source.def) ->
          let key =
            {
              Callgraph.k_lib = m.Source.m_library;
              Callgraph.k_mod = m.Source.m_name;
              Callgraph.k_fn = d.Source.d_name;
            }
          in
          let locals = Source.local_bindings d.Source.d_body in
          let params = List.concat_map (fun (p : Source.param) -> p.Source.p_names) d.Source.d_params in
          let calls =
            if trusted key then []
            else begin
              let shadows = List.map fst locals @ params in
              let calls, _ =
                Callgraph.scan_body program m ~from_line:d.Source.d_line ~locals:shadows
                  d.Source.d_body
              in
              (* drop self-recursion edges: they add no information and
                 would put a cycle in every witness trail *)
              List.filter (fun (c : Callgraph.call) -> c.Callgraph.c_callee <> key) calls
            end
          in
          calls_resolved := !calls_resolved + List.length calls;
          let s =
            {
              s_key = key;
              s_def = d;
              s_module = m;
              s_calls = calls;
              s_locals = locals;
              s_params = params;
              s_mask = 0;
              s_origins = [];
              s_prng_params = [];
              s_write_params = [];
            }
          in
          Hashtbl.replace table (Callgraph.key_to_string key) s;
          order := s :: !order)
        m.Source.m_defs)
    program.Callgraph.p_modules;
  let order =
    List.sort (fun a b -> Callgraph.key_compare a.s_key b.s_key) !order
  in
  let t = { e_table = table; e_order = order; e_calls_resolved = !calls_resolved } in
  List.iter (fun s -> if not (trusted s.s_key) then intrinsic_pass s) order;
  transitive_pass t;
  t

(* ---------- Witness trails ---------- *)

let step_string (s : summary) suffix =
  Printf.sprintf "%s (%s:%d)%s" (Callgraph.display s.s_key) s.s_module.Source.m_path
    s.s_def.Source.d_line suffix

(* The chain of calls along which [flag] reached [s], innermost last. *)
let trail t (s : summary) flag =
  let rec go depth s =
    if depth > 24 then [ step_string s " ... (trail truncated)" ]
    else
      match List.assoc_opt flag s.s_origins with
      | Some (Intrinsic (line, note)) ->
          [ Printf.sprintf "%s: %s at %s:%d" (Callgraph.display s.s_key) note s.s_module.Source.m_path line ]
      | Some (Via (callee, line)) -> (
          let step =
            Printf.sprintf "%s calls %s at %s:%d" (Callgraph.display s.s_key)
              (Callgraph.display callee) s.s_module.Source.m_path line
          in
          match find t callee with
          | Some g -> step :: go (depth + 1) g
          | None -> [ step ])
      | None -> [ step_string s "" ]
  in
  go 0 s

(* ---------- Dump ---------- *)

let jsonl t =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun s ->
      let flags =
        String.concat ", "
          (List.map (fun f -> Printf.sprintf "\"%s\"" (flag_name f)) (flags_of_mask s.s_mask))
      in
      let quote_all names = String.concat ", " (List.map (fun n -> Printf.sprintf "\"%s\"" n) names) in
      Buffer.add_string buffer
        (Printf.sprintf
           "{\"function\": \"%s\", \"file\": \"%s\", \"line\": %d, \"effects\": [%s], \
            \"prng_params\": [%s], \"write_params\": [%s]}\n"
           (Callgraph.key_to_string s.s_key)
           s.s_module.Source.m_path s.s_def.Source.d_line flags (quote_all s.s_prng_params)
           (quote_all s.s_write_params)))
    t.e_order;
  Buffer.contents buffer
