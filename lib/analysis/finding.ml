(* Findings and suppression directives for the whole-program analysis.

   A finding is like a lint diagnostic but carries a call trail: the chain
   of functions from a domain-pool task root down to the line where the
   offending effect originates, so a report reads as a path through the
   call graph rather than a bare line number. *)

type t = {
  rule : string;
  file : string;
  line : int;
  message : string;
  trail : string list;  (* call chain, task root first; [] when not a path rule *)
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> ( match String.compare a.rule b.rule with 0 -> String.compare a.message b.message | c -> c)
      | c -> c)
  | c -> c

(* ---------- Suppressions ---------- *)

(* [(* analysis: allow <rule ...> — <reason> *)] suppresses the named rules
   on the comment's lines and the line right after it; [allow-file] covers
   the whole file.  Unlike the lint's directives, a justification after an
   em-dash (or a double hyphen) is mandatory: an allow without a reason is
   itself reported. *)
type suppression = {
  rules : string list;
  first_line : int;
  last_line : int;
  whole_file : bool;
}

let directive_re =
  Str.regexp
    "analysis:[ \t]*\\(allow-file\\|allow\\)[ \t]+\\([a-z][a-z0-9-]*\\([ \t]+[a-z][a-z0-9-]*\\)*\\)"

let reason_re = Str.regexp "\\(\xe2\x80\x94\\|--\\)[ \t]*[^ \t*]"

let matches pattern text =
  match Str.search_forward pattern text 0 with exception Not_found -> false | _ -> true

(* Returns the suppressions plus a finding for every directive that lacks a
   justification (those directives do NOT suppress anything). *)
let parse_suppressions ~file comments =
  let suppressions = ref [] in
  let invalid = ref [] in
  List.iter
    (fun (c : Concilium_lint.Lexer.comment) ->
      match Str.search_forward directive_re c.text 0 with
      | exception Not_found -> ()
      | _ ->
          let kind = Str.matched_group 1 c.text in
          let rules =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' (Str.matched_group 2 c.text))
          in
          let end_of_rules = Str.match_end () in
          let rest = String.sub c.text end_of_rules (String.length c.text - end_of_rules) in
          if matches reason_re rest then
            suppressions :=
              {
                rules;
                first_line = c.start_line;
                last_line = c.end_line + 1;
                whole_file = kind = "allow-file";
              }
              :: !suppressions
          else
            invalid :=
              {
                rule = "suppression-missing-reason";
                file;
                line = c.start_line;
                message =
                  "analysis suppression lacks a justification; write (* analysis: allow <rule> \
                   \xe2\x80\x94 <reason> *)";
                trail = [];
              }
              :: !invalid)
    comments;
  (List.rev !suppressions, List.rev !invalid)

let suppressed suppressions ~rule ~line =
  List.exists
    (fun s ->
      (s.whole_file || (line >= s.first_line && line <= s.last_line))
      && (List.mem rule s.rules || List.mem "all" s.rules))
    suppressions

(* ---------- Rendering ---------- *)

let render_trail buffer trail =
  List.iteri
    (fun i step ->
      Buffer.add_string buffer (Printf.sprintf "    %s%s\n" (String.make (2 * i) ' ') step))
    trail

let render_text buffer findings =
  List.iter
    (fun f ->
      Buffer.add_string buffer (Printf.sprintf "%s:%d: error [%s] %s\n" f.file f.line f.rule f.message);
      render_trail buffer f.trail)
    findings

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer {|\"|}
      | '\\' -> Buffer.add_string buffer {|\\|}
      | '\n' -> Buffer.add_string buffer {|\n|}
      | '\t' -> Buffer.add_string buffer {|\t|}
      | '\r' -> Buffer.add_string buffer {|\r|}
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_json findings =
  let item f =
    let trail = String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) f.trail) in
    Printf.sprintf
      "  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\", \"trail\": [%s]}"
      (json_escape f.file) f.line (json_escape f.rule) (json_escape f.message) trail
  in
  "[\n" ^ String.concat ",\n" (List.map item findings) ^ "\n]"
