module Prng = Concilium_util.Prng

type public_key = string
type secret_key = { key_public : public_key; key_secret : string }
type signature = string

type certificate = {
  subject_address : string;
  subject_node_id : string;
  subject_key : public_key;
  authority_signature : signature;
}

type t = {
  rng : Prng.t;
  registry : (public_key, string) Hashtbl.t; (* public key -> signing secret *)
  authority_public : public_key;
  authority_secret : secret_key;
}

let random_token rng =
  let raw =
    String.concat ""
      (List.init 4 (fun _ -> Printf.sprintf "%016Lx" (Prng.int64 rng)))
  in
  Sha256.hex_digest raw

let generate_into registry rng =
  let secret = random_token rng in
  let public = Sha256.hex_digest secret in
  Hashtbl.replace registry public secret;
  (public, { key_public = public; key_secret = secret })

let create ~seed =
  let rng = Prng.of_seed seed in
  let registry = Hashtbl.create 1024 in
  let authority_public, authority_secret = generate_into registry rng in
  { rng; registry; authority_public; authority_secret }

let authority_key t = t.authority_public
let public_of_secret secret = secret.key_public

let sign secret message = Hmac.sha256_hex ~key:secret.key_secret message

let verify t public message signature =
  match Hashtbl.find_opt t.registry public with
  | None -> false
  | Some secret -> String.equal (Hmac.sha256_hex ~key:secret message) signature

let certificate_payload ~address ~node_id ~key =
  "cert|" ^ address ^ "|" ^ node_id ^ "|" ^ key

let issue t ~address ~node_id =
  let public, secret = generate_into t.registry t.rng in
  let payload = certificate_payload ~address ~node_id ~key:public in
  let authority_signature = sign t.authority_secret payload in
  ( { subject_address = address; subject_node_id = node_id; subject_key = public; authority_signature },
    secret )

let verify_certificate t certificate =
  let payload =
    certificate_payload ~address:certificate.subject_address
      ~node_id:certificate.subject_node_id ~key:certificate.subject_key
  in
  verify t t.authority_public payload certificate.authority_signature

let public_key_to_string pk = pk
let public_key_of_string s = s
let public_key_equal = String.equal
let signature_to_string s = s
let signature_of_string s = s

(* RSA-1024 signature is 128 bytes; PSS-R recovers part of the message, and
   the paper budgets 144 bytes for a 20-byte payload plus its signature. *)
let modeled_signature_bytes = 128
let modeled_public_key_bytes = 128
