(** Simulated public-key infrastructure.

    The paper assumes a central authority that binds each host's IP address
    to a public key and a randomly assigned overlay identifier (Castro et
    al.). Inside a single-process simulation, real asymmetric cryptography
    adds cost but no behavioural fidelity, so signatures here are HMACs over
    per-principal secrets and verification consults the authority's registry
    — the exact trust model of the paper, with the CA as the root. The
    modeled *wire sizes* (RSA-1024 PSS-R) are kept for the Section 4.4
    bandwidth accounting. This substitution is recorded in DESIGN.md. *)

type t
(** The authority (and, for the simulator, the universe of key bindings). *)

type public_key
type secret_key

type signature

type certificate = {
  subject_address : string;  (** IP address of the certified host *)
  subject_node_id : string;  (** serialized overlay identifier *)
  subject_key : public_key;
  authority_signature : signature;
}

val create : seed:int64 -> t
val authority_key : t -> public_key

val issue : t -> address:string -> node_id:string -> certificate * secret_key
(** Enroll a host: generate its keypair, register it, and return its
    certificate along with the secret only that host should hold. *)

val public_of_secret : secret_key -> public_key
(** The public half bound to a secret key at generation time. *)

val sign : secret_key -> string -> signature
val verify : t -> public_key -> string -> signature -> bool
(** [verify t pk msg s] checks that [s] was produced over [msg] by the
    holder of the secret matching [pk]. Unknown keys verify as [false]. *)

val verify_certificate : t -> certificate -> bool

val public_key_to_string : public_key -> string
val public_key_of_string : string -> public_key
val public_key_equal : public_key -> public_key -> bool
val signature_to_string : signature -> string

val signature_of_string : string -> signature
(** Rebuild a signature from its wire form (also handy for forging invalid
    signatures in attack scenarios). *)

val modeled_signature_bytes : int
(** Wire size of an RSA-1024 PSS-R signature (paper Section 4.4). *)

val modeled_public_key_bytes : int
