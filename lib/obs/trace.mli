(** Deterministic trace sink: typed instants and nested spans keyed to the
    simulated clock.

    A sink is either recording or the shared {!noop}; every operation on the
    noop sink costs one branch, so instrumented hot paths stay cheap when
    tracing is off. Records are appended in emission order (which for engine-
    driven instrumentation coincides with virtual-time order); the exporters
    carry the timestamp, so viewers that sort by time render compiled-ahead
    records (e.g. chaos fault plans) correctly.

    Instrumentation must never perturb the run it observes: recording draws
    no randomness and schedules no engine events, so a simulation produces
    identical results with tracing on or off, and per-shard sinks merged in
    shard order ({!merge}) produce byte-identical exports for any domain
    count. *)

type value = Int of int | Float of float | Bool of bool | String of string

type args = (string * value) list

type span
(** Handle to an open span. The noop sink hands out {!none}. *)

val none : span
(** The null span: valid as a parent ("no parent") and ignored by
    {!span_close}. *)

type t

val create : unit -> t
(** A fresh recording sink. *)

val noop : t
(** The shared no-op sink: all operations return immediately. *)

val enabled : t -> bool

val set_tap : t -> (string -> unit) -> unit
(** Stream every subsequent record to [f] as its JSONL line (no trailing
    newline) the moment it is pushed — the flight recorder's feed. The
    streamed lines are byte-identical to the unfiltered {!jsonl} lines.
    No-op on a disabled sink. *)

val instant : t -> time:float -> ?cat:string -> ?span:span -> ?args:args -> string -> unit
(** Record a point event. [span] attaches it to an open span (stage markers
    inside a diagnosis episode); default unattached. [cat] defaults to
    ["event"]. *)

val span_open : t -> time:float -> ?cat:string -> ?parent:span -> ?args:args -> string -> span
(** Open a span. [parent] nests it under an open span. [cat] defaults to
    ["span"]. *)

val span_close : t -> time:float -> ?args:args -> span -> unit
(** Close an open span, optionally attaching result arguments. Closing
    {!none} is a no-op. *)

val length : t -> int
(** Records emitted so far. *)

val merge : t array -> t
(** Concatenate per-shard sinks in index order, rebasing span identifiers so
    they stay unique. Merging the same shards in the same order always
    yields the same record sequence — the deterministic-aggregation
    contract. *)

val validate : t -> (unit, string) result
(** Well-formedness: every close names a span that is open (no orphan or
    double closes), spans close no earlier than they open, no span closes
    while a child is still open, parents are open at child-open time, and
    nothing is left open at the end. *)

val instants : t -> name:string -> (float * args) list
(** All instants with this name, in emission order. *)

val completed_spans : t -> (string * float * float) list
(** [(name, open_time, duration)] of every matched open/close pair, in close
    order. *)

val jsonl : ?filter:(string -> bool) -> t -> string
(** One JSON object per line, in emission order. [filter] keeps only records
    whose category satisfies it (closes follow their open's category). *)

val chrome : ?filter:(string -> bool) -> t -> string
(** Chrome [trace_event] JSON ({["traceEvents"]} array): spans as async
    begin/end pairs, instants as instant events, timestamps in microseconds
    of virtual time. Load in chrome://tracing or ui.perfetto.dev. *)
