(** Deterministic metrics registry: named counters, gauges and log-bucketed
    histograms, snapshotable to JSON at any simulated time.

    Like {!Trace}, a registry is either recording or the shared {!noop}
    whose operations cost one branch. Names are flat strings; a name is
    bound to one kind on first use and misuse raises [Invalid_argument].

    Histograms are log2-bucketed (bucket i counts observations in
    [2^i, 2^(i+1)), values below 2 clamp into bucket 0) and reuse
    {!Concilium_stats.Histogram} over log space, so bucket counts merge
    exactly. Bucketing goes through [Float.frexp], not libm's [log2], so
    an exact power of two 2^i always opens bucket i on every host.
    Snapshots list every section sorted by name — the output never
    depends on hash-table iteration order or insertion order. *)

type t

val create : unit -> t
val noop : t
val enabled : t -> bool

val incr : t -> ?by:int -> string -> unit
(** Add to a counter (default 1), creating it at zero on first use.
    Allocation-free once the counter exists — safe on hot paths. *)

val set : t -> string -> float -> unit
(** Set a gauge to the given value. *)

val observe : t -> string -> float -> unit
(** Record an observation into a log-bucketed histogram. *)

val counter : t -> string -> int
(** Current counter value; 0 when the name is unbound. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val copy : t -> t
(** Deep copy: counters, gauges and histogram buckets are duplicated so
    later mutation of [t] leaves the copy untouched. A disabled registry
    copies to a disabled registry. Used by {!Timeseries} to freeze
    epoch snapshots. *)

val merge : t array -> t
(** Fold per-shard registries in index order: counters and histogram
    buckets sum (order-independent), a gauge takes the value of the last
    shard that set it. Merging shards in shard order equals recording the
    same operations into a single registry in shard-concatenation order. *)

val snapshot_json : ?time:float -> t -> string
(** JSON snapshot: optional ["time"], then ["counters"], ["gauges"] and
    ["histograms"] objects with names sorted; histogram buckets are labelled
    by their lower bound ("2^i"). Byte-identical across runs for identical
    metric contents. *)

val snapshot_fields : t -> string
(** The same three sections as {!snapshot_json} rendered compactly on a
    single line without the enclosing braces —
    ["counters": {...}, "gauges": {...}, "histograms": {...}] — for
    embedding into a time-series JSONL record. *)
