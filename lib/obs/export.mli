(** File export for traces and metric snapshots — the shared tail of every
    binary's [--trace FILE] / [--metrics FILE] flags.

    Format follows the file extension: [.json] gets the Chrome
    [trace_event] document (load in chrome://tracing or ui.perfetto.dev),
    anything else gets JSONL. Output bytes depend only on the collector's
    contents, never on the path or the wall clock. *)

type format = Chrome | Jsonl

val format_of_path : string -> format
(** [Chrome] for paths ending in [.json], [Jsonl] otherwise. *)

val filter_of_spec : string option -> (string -> bool) option
(** Compile a [--trace-filter] spec — comma-separated category names, e.g.
    ["episode,chaos"] — into a category predicate. [None] or an empty spec
    means no filtering. *)

val trace_to_string : ?filter:(string -> bool) -> format:format -> Trace.t -> string

val write_trace : path:string -> ?filter:(string -> bool) -> Trace.t -> unit
(** Render the trace in the format {!format_of_path} picks and write it. *)

val write_metrics : path:string -> ?time:float -> Metrics.t -> unit
(** Write {!Metrics.snapshot_json} (plus a trailing newline) to the path. *)
