type value = Int of int | Float of float | Bool of bool | String of string

type args = (string * value) list

type span = int

let none : span = 0

(* Span identifiers start at 1 so 0 can mean "no span"; [next_id] is the
   next unassigned identifier, which doubles as the rebase offset source in
   [merge]. *)
type record =
  | Instant of { time : float; name : string; cat : string; span : int; args : args }
  | Open of { time : float; name : string; cat : string; id : int; parent : int; args : args }
  | Close of { time : float; id : int; args : args }

type t = {
  recording : bool;
  mutable records : record list; (* newest first *)
  mutable length : int;
  mutable next_id : int;
  mutable tap : (string -> unit) option;
}

let create () = { recording = true; records = []; length = 0; next_id = 1; tap = None }
let noop = { recording = false; records = []; length = 0; next_id = 1; tap = None }
let enabled t = t.recording

let set_tap t f = if t.recording then t.tap <- Some f

(* ---------- Per-record JSONL rendering ----------

   Shared by the batch [jsonl] export and the streaming tap, so a flight
   recorder's ring holds exactly the lines a full dump would contain. *)

let add_escaped buf s = Buffer.add_string buf (Printf.sprintf "%S" s)

let add_value buf value =
  match value with
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | String s -> add_escaped buf s

let add_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (key, value) ->
      if i > 0 then Buffer.add_string buf ", ";
      add_escaped buf key;
      Buffer.add_string buf ": ";
      add_value buf value)
    args;
  Buffer.add_char buf '}'

let add_record_line buf record =
  match record with
  | Instant { time; name; cat; span; args } ->
      Buffer.add_string buf (Printf.sprintf {|{"t": %.6f, "ph": "instant", "name": |} time);
      add_escaped buf name;
      Buffer.add_string buf {|, "cat": |};
      add_escaped buf cat;
      if span <> none then Buffer.add_string buf (Printf.sprintf {|, "span": %d|} span);
      if args <> [] then begin
        Buffer.add_string buf {|, "args": |};
        add_args buf args
      end;
      Buffer.add_char buf '}'
  | Open { time; name; cat; id; parent; args } ->
      Buffer.add_string buf
        (Printf.sprintf {|{"t": %.6f, "ph": "open", "id": %d, "name": |} time id);
      add_escaped buf name;
      Buffer.add_string buf {|, "cat": |};
      add_escaped buf cat;
      if parent <> none then Buffer.add_string buf (Printf.sprintf {|, "parent": %d|} parent);
      if args <> [] then begin
        Buffer.add_string buf {|, "args": |};
        add_args buf args
      end;
      Buffer.add_char buf '}'
  | Close { time; id; args } ->
      Buffer.add_string buf (Printf.sprintf {|{"t": %.6f, "ph": "close", "id": %d|} time id);
      if args <> [] then begin
        Buffer.add_string buf {|, "args": |};
        add_args buf args
      end;
      Buffer.add_char buf '}'

let push t record =
  t.records <- record :: t.records;
  t.length <- t.length + 1;
  match t.tap with
  | None -> ()
  | Some f ->
      let buf = Buffer.create 96 in
      add_record_line buf record;
      f (Buffer.contents buf)

let instant t ~time ?(cat = "event") ?(span = none) ?(args = []) name =
  if t.recording then push t (Instant { time; name; cat; span; args })

let span_open t ~time ?(cat = "span") ?(parent = none) ?(args = []) name =
  if not t.recording then none
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    push t (Open { time; name; cat; id; parent; args });
    id
  end

let span_close t ~time ?(args = []) span =
  if t.recording && span <> none then push t (Close { time; id = span; args })

let length t = t.length
let records t = List.rev t.records

let merge shards =
  let out = create () in
  Array.iter
    (fun shard ->
      let offset = out.next_id - 1 in
      let rebase id = if id = none then none else id + offset in
      List.iter
        (fun record ->
          push out
            (match record with
            | Instant { time; name; cat; span; args } ->
                Instant { time; name; cat; span = rebase span; args }
            | Open { time; name; cat; id; parent; args } ->
                Open { time; name; cat; id = rebase id; parent = rebase parent; args }
            | Close { time; id; args } -> Close { time; id = rebase id; args }))
        (records shard);
      out.next_id <- out.next_id + (shard.next_id - 1))
    shards;
  out

(* ---------- Well-formedness ---------- *)

type open_state = { parent : int; opened_at : float; open_children : int ref }

let validate t =
  let open_spans = Hashtbl.create 64 in
  let closed = Hashtbl.create 64 in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  List.iter
    (fun record ->
      match record with
      | Instant { span; name; _ } ->
          if span <> none && not (Hashtbl.mem open_spans span) then
            fail "instant %S attached to span %d which is not open" name span
      | Open { id; parent; time; name; _ } ->
          if Hashtbl.mem open_spans id || Hashtbl.mem closed id then
            fail "span %d (%S) opened twice" id name
          else begin
            (if parent <> none then begin
               match Hashtbl.find_opt open_spans parent with
               | Some state -> incr state.open_children
               | None -> fail "span %d (%S) opened under parent %d which is not open" id name parent
             end);
            Hashtbl.replace open_spans id { parent; opened_at = time; open_children = ref 0 }
          end
      | Close { id; time; _ } -> (
          match Hashtbl.find_opt open_spans id with
          | None ->
              if Hashtbl.mem closed id then fail "span %d closed twice" id
              else fail "orphan close of span %d" id
          | Some state ->
              if !(state.open_children) > 0 then
                fail "span %d closed while %d children are still open" id !(state.open_children);
              if time < state.opened_at then
                fail "span %d closes at %.6f before it opened at %.6f" id time state.opened_at;
              Hashtbl.remove open_spans id;
              Hashtbl.replace closed id ();
              if state.parent <> none then begin
                match Hashtbl.find_opt open_spans state.parent with
                | Some parent_state -> decr parent_state.open_children
                | None -> ()
              end))
    (records t);
  if !error = None && Hashtbl.length open_spans > 0 then
    fail "%d spans were never closed" (Hashtbl.length open_spans);
  match !error with None -> Ok () | Some message -> Error message

(* ---------- Queries ---------- *)

let instants t ~name =
  List.filter_map
    (fun record ->
      match record with
      | Instant { time; name = n; args; _ } when String.equal n name -> Some (time, args)
      | Instant _ | Open _ | Close _ -> None)
    (records t)

let completed_spans t =
  let open_spans = Hashtbl.create 64 in
  let spans = ref [] in
  List.iter
    (fun record ->
      match record with
      | Instant _ -> ()
      | Open { id; name; time; _ } -> Hashtbl.replace open_spans id (name, time)
      | Close { id; time; _ } -> (
          match Hashtbl.find_opt open_spans id with
          | Some (name, opened_at) ->
              Hashtbl.remove open_spans id;
              spans := (name, opened_at, time -. opened_at) :: !spans
          | None -> ()))
    (records t);
  List.rev !spans

(* ---------- Export ----------

   A close record carries no category of its own; it inherits its open's,
   so a category filter keeps open/close pairs together. *)
let cat_of_close t =
  let cats = Hashtbl.create 64 in
  List.iter
    (fun record ->
      match record with
      | Open { id; cat; name; _ } -> Hashtbl.replace cats id (cat, name)
      | Instant _ | Close _ -> ())
    (records t);
  fun id -> Hashtbl.find_opt cats id

let jsonl ?(filter = fun _ -> true) t =
  let buf = Buffer.create 4096 in
  let close_info = cat_of_close t in
  let keep record =
    match record with
    | Instant { cat; _ } | Open { cat; _ } -> filter cat
    | Close { id; _ } -> (
        match close_info id with Some (cat, _) -> filter cat | None -> true)
  in
  List.iter
    (fun record ->
      if keep record then begin
        add_record_line buf record;
        Buffer.add_char buf '\n'
      end)
    (records t);
  Buffer.contents buf

let chrome ?(filter = fun _ -> true) t =
  let buf = Buffer.create 4096 in
  let close_info = cat_of_close t in
  Buffer.add_string buf {|{"traceEvents": [|};
  let first = ref true in
  let emit ~name ~cat ~ph ~time ?id args =
    if !first then first := false else Buffer.add_string buf ",";
    Buffer.add_string buf "\n  {\"name\": ";
    add_escaped buf name;
    Buffer.add_string buf ", \"cat\": ";
    add_escaped buf cat;
    Buffer.add_string buf
      (Printf.sprintf {|, "ph": "%s", "ts": %.3f, "pid": 0, "tid": 0|} ph (time *. 1e6));
    (match id with None -> () | Some id -> Buffer.add_string buf (Printf.sprintf {|, "id": %d|} id));
    if ph = "i" then Buffer.add_string buf {|, "s": "t"|};
    if args <> [] then begin
      Buffer.add_string buf {|, "args": |};
      add_args buf args
    end;
    Buffer.add_string buf "}"
  in
  List.iter
    (fun record ->
      match record with
      | Instant { time; name; cat; span; args } ->
          if filter cat then
            if span <> none then emit ~name ~cat ~ph:"n" ~time ~id:span args
            else emit ~name ~cat ~ph:"i" ~time args
      | Open { time; name; cat; id; args; _ } ->
          if filter cat then emit ~name ~cat ~ph:"b" ~time ~id args
      | Close { time; id; args } -> (
          match close_info id with
          | Some (cat, name) -> if filter cat then emit ~name ~cat ~ph:"e" ~time ~id args
          | None -> ()))
    (records t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
