(** A trace sink paired with a metrics registry — the unit of observability
    handed to instrumented subsystems, and the unit of per-shard
    pre-allocation for deterministic parallel runs.

    Allocate one collector per shard with {!shards} {e before} fanning work
    out (alongside {!Concilium_util.Prng.split_n} streams), let each shard
    record into its own collector, then {!merge} in fixed shard order: the
    merged trace and metrics are byte-identical for any domain count. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  prov : Concilium_provenance.Graph.t;  (** causal evidence DAG behind verdicts *)
}

val create : unit -> t
(** A recording trace + metrics + provenance triple. *)

val noop : t
(** The no-op triple: instrumentation behind it costs one branch. *)

val enabled : t -> bool

val shards : int -> t array
(** [n] independent recording collectors, one per shard. *)

val merge : t array -> t
(** Merge per-shard collectors in index order ({!Trace.merge},
    {!Metrics.merge}, {!Concilium_provenance.Graph.merge}). *)
