(** Flight recorder: a bounded ring of the most recent observability
    events, dumped as a JSONL artifact when a soak invariant or lockstep
    conformance check fails — failures ship with their trailing context.

    Entries are pre-rendered JSONL lines fed by the {!Trace.set_tap} and
    {!Concilium_provenance.Graph.set_tap} streams (via {!attach}) or by
    {!note} directly. The ring is bounded: once full, each new line evicts
    the oldest and bumps the dropped count, so a week-long soak holds
    memory constant while the last [capacity] events before a failure
    survive.

    The recorder is passive — it never mutates what it observes — so
    attaching it cannot perturb a run. Its dump is a pure function of the
    lines recorded, hence deterministic whenever the feeding run is. *)

type t

val default_capacity : int
(** 4096 lines. *)

val create : ?capacity:int -> unit -> t

val capacity : t -> int
val length : t -> int
(** Lines currently held (≤ capacity). *)

val dropped : t -> int
(** Lines evicted since creation. *)

val recorded : t -> int
(** Total lines ever recorded (held + dropped). *)

val note : t -> string -> unit
(** Append one pre-rendered line (no trailing newline). *)

val attach : t -> Collector.t -> unit
(** Feed the collector's trace records and provenance deltas into the
    ring as they happen. No-op for disabled sinks. *)

val dump : reason:string -> t -> string
(** Header line [{"flight_recorder": {"reason", "entries", "dropped",
    "capacity"}}] followed by the held lines, oldest first, one per
    line. *)

val write : path:string -> reason:string -> t -> unit
(** {!dump} to a file. *)
