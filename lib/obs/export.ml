type format = Chrome | Jsonl

let format_of_path path =
  if Filename.check_suffix path ".json" then Chrome else Jsonl

let filter_of_spec = function
  | None -> None
  | Some spec -> (
      match String.split_on_char ',' spec |> List.filter (fun s -> s <> "") with
      | [] -> None
      | cats -> Some (fun cat -> List.mem cat cats))

let trace_to_string ?filter ~format trace =
  match format with
  | Chrome -> Trace.chrome ?filter trace
  | Jsonl -> Trace.jsonl ?filter trace

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_trace ~path ?filter trace =
  write_file ~path (trace_to_string ?filter ~format:(format_of_path path) trace)

let write_metrics ~path ?time metrics =
  write_file ~path (Metrics.snapshot_json ?time metrics ^ "\n")
