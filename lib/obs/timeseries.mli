(** Epoch-bucketed time series of metrics snapshots for long-horizon runs.

    A series is driven at a fixed cadence in {e virtual} time: the caller
    (an engine-scheduled sampler, never a wall clock) calls {!sample} with
    the current simulated time and the live registry; the snapshot is
    deep-copied into epoch [floor (time / cadence)].

    Determinism: per-shard series recorded at the same cadence merge by
    epoch, folding each epoch's snapshots with {!Metrics.merge} in shard
    order, and {!jsonl} renders epochs ascending with sorted metric
    names — byte-identical output for any [--domains N], the same
    contract as {!Collector.merge}. *)

type t

val create : cadence:float -> t
(** [cadence] is the epoch width in virtual seconds; must be positive. *)

val cadence : t -> float

val length : t -> int
(** Snapshots recorded so far. *)

val record : t -> epoch:int -> Metrics.t -> unit
(** Snapshot the registry (deep copy) into the given epoch. *)

val sample : t -> time:float -> Metrics.t -> unit
(** {!record} into epoch [floor (time / cadence)]. *)

val samples : t -> (int * Metrics.t) list
(** Snapshots in recording order. *)

val merge : t array -> t
(** Group every shard's snapshots by epoch and fold each group with
    {!Metrics.merge} in shard order (then recording order within a
    shard); the result holds one snapshot per epoch, ascending.
    @raise Invalid_argument on zero shards or mismatched cadences. *)

val jsonl : t -> string
(** One line per snapshot in {!samples} order:
    [{"epoch": k, "time": k*cadence, "counters": ..., "gauges": ...,
    "histograms": ...}]. *)
