module Graph = Concilium_provenance.Graph

type t = { trace : Trace.t; metrics : Metrics.t; prov : Graph.t }

let create () = { trace = Trace.create (); metrics = Metrics.create (); prov = Graph.create () }
let noop = { trace = Trace.noop; metrics = Metrics.noop; prov = Graph.noop }
let enabled t = Trace.enabled t.trace || Metrics.enabled t.metrics || Graph.enabled t.prov
(* Shard collectors are written concurrently by adjacent pool workers, and
   OCaml's bump-pointer minor allocator makes back-to-back allocations
   adjacent in memory — so without separation, two shards' mutable
   headers can land on one cache line and false-share under the fan-out.
   A dead 128-byte spacer between creations (two cache lines on common
   hardware, covering adjacent-line prefetchers) keeps each shard's hot
   fields on lines of their own. The spacers are garbage immediately;
   promotion scatters the shards further. *)
let shards n =
  Array.init n (fun _ ->
      let shard = create () in
      ignore (Sys.opaque_identity (Bytes.create 128));
      shard)

let merge shards =
  {
    trace = Trace.merge (Array.map (fun shard -> shard.trace) shards);
    metrics = Metrics.merge (Array.map (fun shard -> shard.metrics) shards);
    prov = Graph.merge (Array.map (fun shard -> shard.prov) shards);
  }
