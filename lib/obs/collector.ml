module Graph = Concilium_provenance.Graph

type t = { trace : Trace.t; metrics : Metrics.t; prov : Graph.t }

let create () = { trace = Trace.create (); metrics = Metrics.create (); prov = Graph.create () }
let noop = { trace = Trace.noop; metrics = Metrics.noop; prov = Graph.noop }
let enabled t = Trace.enabled t.trace || Metrics.enabled t.metrics || Graph.enabled t.prov
let shards n = Array.init n (fun _ -> create ())

let merge shards =
  {
    trace = Trace.merge (Array.map (fun shard -> shard.trace) shards);
    metrics = Metrics.merge (Array.map (fun shard -> shard.metrics) shards);
    prov = Graph.merge (Array.map (fun shard -> shard.prov) shards);
  }
