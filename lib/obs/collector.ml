type t = { trace : Trace.t; metrics : Metrics.t }

let create () = { trace = Trace.create (); metrics = Metrics.create () }
let noop = { trace = Trace.noop; metrics = Metrics.noop }
let enabled t = Trace.enabled t.trace || Metrics.enabled t.metrics
let shards n = Array.init n (fun _ -> create ())

let merge shards =
  {
    trace = Trace.merge (Array.map (fun shard -> shard.trace) shards);
    metrics = Metrics.merge (Array.map (fun shard -> shard.metrics) shards);
  }
