type t = {
  cadence : float;
  mutable samples : (int * Metrics.t) list; (* newest first *)
}

let create ~cadence =
  if not (cadence > 0.) then invalid_arg "Timeseries.create: cadence must be positive";
  { cadence; samples = [] }

let cadence t = t.cadence
let length t = List.length t.samples

let record t ~epoch metrics =
  (* Deep-copy so the live registry can keep mutating after the snapshot. *)
  t.samples <- (epoch, Metrics.copy metrics) :: t.samples

let sample t ~time metrics = record t ~epoch:(int_of_float (Float.floor (time /. t.cadence))) metrics

let samples t = List.rev t.samples

let merge shards =
  if Array.length shards = 0 then invalid_arg "Timeseries.merge: no shards";
  let cadence = shards.(0).cadence in
  Array.iter
    (fun shard ->
      if shard.cadence <> cadence then invalid_arg "Timeseries.merge: cadence mismatch")
    shards;
  let epochs = Hashtbl.create 64 in
  Array.iter
    (fun shard ->
      List.iter
        (fun (epoch, metrics) ->
          (* Per-epoch lists collect in shard order, then sample order
             within the shard, so the fold below is deterministic. *)
          let existing = try Hashtbl.find epochs epoch with Not_found -> [] in
          Hashtbl.replace epochs epoch (metrics :: existing))
        (samples shard))
    shards;
  let out = create ~cadence in
  Hashtbl.fold (fun epoch _ acc -> epoch :: acc) epochs []
  |> List.sort_uniq Int.compare
  |> List.iter (fun epoch ->
         let shards_at = Array.of_list (List.rev (Hashtbl.find epochs epoch)) in
         out.samples <- (epoch, Metrics.merge shards_at) :: out.samples);
  out

let jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (epoch, metrics) ->
      Printf.bprintf buf {|{"epoch": %d, "time": %.6f, %s}|} epoch
        (float_of_int epoch *. t.cadence)
        (Metrics.snapshot_fields metrics);
      Buffer.add_char buf '\n')
    (samples t);
  Buffer.contents buf
