module Histogram = Concilium_stats.Histogram

(* Log-bucketed histograms reuse the linear stats histogram over log2 space:
   bucket i counts observations in [2^i, 2^(i+1)). 64 bins cover the full
   non-negative int range; observations below 2 clamp into bucket 0. *)
let histogram_bins = 64

(* Bucket selection must not go through libm's log2: it is not required to
   be correctly rounded, so an exact power of two could land on either side
   of its bucket boundary depending on the host. frexp is exact — for
   v = m * 2^e with m in [0.5, 1), v in [2^i, 2^(i+1)) iff e = i + 1 — so
   2^i always opens bucket i, on every host. *)
let bucket_of_value value =
  if Float.is_nan value || value < 2. then 0
  else begin
    let _, e = Float.frexp value in
    min (histogram_bins - 1) (e - 1)
  end

let make_histogram () = Histogram.create ~lo:0. ~hi:(float_of_int histogram_bins) ~bins:histogram_bins

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histo of Histogram.t

type t = { recording : bool; table : (string, metric) Hashtbl.t }

let create () = { recording = true; table = Hashtbl.create 64 }
let noop = { recording = false; table = Hashtbl.create 1 }
let enabled t = t.recording

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histo _ -> "histogram"

let wrong_kind name metric want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, used as a %s" name (kind_name metric) want)

let gauge_ref t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge r) -> r
  | Some metric -> wrong_kind name metric "gauge"
  | None ->
      let r = ref 0. in
      Hashtbl.replace t.table name (Gauge r);
      r

let histogram_of t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histo h) -> h
  | Some metric -> wrong_kind name metric "histogram"
  | None ->
      let h = make_histogram () in
      Hashtbl.replace t.table name (Histo h);
      h

(* The steady-state path (counter exists) must not allocate: Hashtbl.find
   plus an exception match avoids the [Some] box that find_opt builds on
   every call. test_obs pins this with a minor-words regression. *)
let incr t ?(by = 1) name =
  if t.recording then begin
    match Hashtbl.find t.table name with
    | Counter r -> r := !r + by
    | (Gauge _ | Histo _) as metric -> wrong_kind name metric "counter"
    | exception Not_found -> Hashtbl.replace t.table name (Counter (ref by))
  end

let set t name value = if t.recording then gauge_ref t name := value

let observe t name value =
  if t.recording then
    Histogram.add (histogram_of t name) (float_of_int (bucket_of_value value) +. 0.5)

let counter t name =
  match Hashtbl.find_opt t.table name with Some (Counter r) -> !r | Some _ | None -> 0

let sorted_items t =
  Hashtbl.fold (fun name metric acc -> (name, metric) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  List.filter_map
    (fun (name, metric) -> match metric with Counter r -> Some (name, !r) | Gauge _ | Histo _ -> None)
    (sorted_items t)

let copy t =
  let out = { recording = t.recording; table = Hashtbl.create (Hashtbl.length t.table + 1) } in
  (* Keyed inserts into a fresh table: the result is the same whatever
     order the source is walked in. lint: allow hashtbl-order *)
  Hashtbl.iter
    (fun name metric ->
      let dup =
        match metric with
        | Counter r -> Counter (ref !r)
        | Gauge g -> Gauge (ref !g)
        | Histo h ->
            let fresh = make_histogram () in
            Histogram.merge_into ~into:fresh h;
            Histo fresh
      in
      Hashtbl.replace out.table name dup)
    t.table;
  out

let merge shards =
  let out = create () in
  Array.iter
    (fun shard ->
      List.iter
        (fun (name, metric) ->
          match metric with
          | Counter r -> incr out ~by:!r name
          | Gauge g -> set out name !g
          | Histo h -> Histogram.merge_into ~into:(histogram_of out name) h)
        (sorted_items shard))
    shards;
  out

(* ---------- JSON snapshot ---------- *)

let add_histogram buf h =
  Buffer.add_string buf (Printf.sprintf "{\"total\": %d, \"buckets\": {" (Histogram.total h));
  let counts = Histogram.counts h in
  let wrote = ref false in
  Array.iteri
    (fun exponent count ->
      if count > 0 then begin
        if !wrote then Buffer.add_string buf ", ";
        wrote := true;
        Buffer.add_string buf (Printf.sprintf "\"2^%d\": %d" exponent count)
      end)
    counts;
  Buffer.add_string buf "}}"

let picked t =
  let items = sorted_items t in
  let pick f = List.filter_map (fun (name, metric) -> Option.map (fun v -> (name, v)) (f metric)) items in
  let counters = pick (function Counter r -> Some !r | Gauge _ | Histo _ -> None) in
  let gauges = pick (function Gauge g -> Some !g | Counter _ | Histo _ -> None) in
  let histos = pick (function Histo h -> Some h | Counter _ | Gauge _ -> None) in
  (counters, gauges, histos)

(* Single-line rendering of the three metric sections, for embedding into
   one time-series JSONL record. *)
let snapshot_fields t =
  let counters, gauges, histos = picked t in
  let buf = Buffer.create 256 in
  let section label items add_item =
    Buffer.add_string buf (Printf.sprintf "%S: {" label);
    List.iteri
      (fun i (name, item) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%S: " name);
        add_item buf item)
      items;
    Buffer.add_char buf '}'
  in
  section "counters" counters (fun buf v -> Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ", ";
  section "gauges" gauges (fun buf v -> Buffer.add_string buf (Printf.sprintf "%.6f" v));
  Buffer.add_string buf ", ";
  section "histograms" histos add_histogram;
  Buffer.contents buf

let add_section buf ~label ~first items add_item =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  Buffer.add_string buf (Printf.sprintf "  %S: {" label);
  List.iteri
    (fun i (name, item) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    %S: " name);
      add_item buf item)
    items;
  if items <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_char buf '}'

let snapshot_json ?time t =
  let counters, gauges, histos = picked t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  let first = ref true in
  (match time with
  | Some time ->
      Buffer.add_string buf (Printf.sprintf "  \"time\": %.6f" time);
      first := false
  | None -> ());
  add_section buf ~label:"counters" ~first counters (fun buf v ->
      Buffer.add_string buf (string_of_int v));
  add_section buf ~label:"gauges" ~first gauges (fun buf v ->
      Buffer.add_string buf (Printf.sprintf "%.6f" v));
  add_section buf ~label:"histograms" ~first histos add_histogram;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
