module Ring_buffer = Concilium_util.Ring_buffer

(* Lines are pre-rendered at record time (the Trace/Graph taps hand us
   finished JSONL), so holding the ring costs only the strings themselves
   and dumping is a plain concatenation — cheap enough to keep attached
   for a whole soak and only pay on failure. *)
type t = { ring : string Ring_buffer.t; capacity : int; mutable dropped : int; mutable recorded : int }

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  { ring = Ring_buffer.create capacity; capacity; dropped = 0; recorded = 0 }

let capacity t = t.capacity
let length t = Ring_buffer.length t.ring
let dropped t = t.dropped
let recorded t = t.recorded

let note t line =
  t.recorded <- t.recorded + 1;
  match Ring_buffer.push t.ring line with
  | None -> ()
  | Some _evicted -> t.dropped <- t.dropped + 1

let attach t collector =
  Trace.set_tap collector.Collector.trace (fun line -> note t line);
  Concilium_provenance.Graph.set_tap collector.Collector.prov (fun line -> note t line)

let dump ~reason t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    {|{"flight_recorder": {"reason": %S, "entries": %d, "dropped": %d, "capacity": %d}}|}
    reason (length t) t.dropped t.capacity;
  Buffer.add_char buf '\n';
  Ring_buffer.fold
    (fun () line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    () t.ring;
  Buffer.contents buf

let write ~path ~reason t =
  let oc = open_out path in
  output_string oc (dump ~reason t);
  close_out oc
