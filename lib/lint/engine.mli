(** Applies the rule catalog to sources and directory trees.

    Suppression directives are honoured anywhere in a comment:
    - [(* lint: allow <rule> ... *)] suppresses the named rules on the
      comment's own lines and on the line immediately after it;
    - [(* lint: allow-file <rule> ... *)] suppresses them file-wide;
    - the rule list may be the keyword [all] to suppress everything. *)

val lint_ml : path:string -> string -> Rules.diagnostic list
(** Lint the contents of one [.ml]/[.mli] file.  [path] is used both for
    reporting and for path-scoped rules, so tests can pass synthetic paths
    such as ["lib/fake.ml"]. *)

val lint_dune : path:string -> string -> Rules.diagnostic list
(** Check a dune file for the hardened-flags stanza. *)

val lint_file : string -> Rules.diagnostic list
(** Dispatch on the file name: [.ml]/[.mli], [dune], else nothing. *)

val lint_paths : string list -> Rules.diagnostic list
(** Walk directories (skipping dot- and underscore-prefixed entries),
    lint every source and dune file, and check [.mli] coverage of [lib/]
    modules.  Results are sorted by file, line, and rule. *)

val errors : Rules.diagnostic list -> Rules.diagnostic list
(** The subset with severity [Error]. *)
