(** Rendering of lint diagnostics. *)

val print_text : out_channel -> Rules.diagnostic list -> unit
(** One [file:line: severity [rule] message] line per diagnostic, then a
    summary line. *)

val to_json : Rules.diagnostic list -> string
(** A JSON array of diagnostic objects (machine-readable output). *)

val print_json : out_channel -> Rules.diagnostic list -> unit

val print_catalog : out_channel -> unit
(** The rule catalog: id, family, description. *)
