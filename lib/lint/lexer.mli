(** Comment- and string-literal-aware scanner over OCaml source.

    The lint rules are textual; this module makes them sound by blanking out
    everything that is not code (comments, ["..."] strings, [{tag|...|tag}]
    quoted strings and character literals) while preserving the line/column
    structure, and by collecting comments so suppression directives such as
    [(* lint: allow rule *)] can be honoured. *)

type comment = {
  text : string;       (** comment body, including the [(*]/[*)] delimiters *)
  start_line : int;    (** 1-based line on which the comment opens *)
  end_line : int;      (** 1-based line on which the comment closes *)
}

type scrubbed = {
  code_lines : string array;  (** source with non-code blanked to spaces *)
  raw_lines : string array;   (** untouched source lines *)
  comments : comment list;    (** all comments, in source order *)
}

val scrub : string -> scrubbed
(** [scrub source] splits [source] into lines, blanking comments and
    literals.  Nested comments and strings inside comments follow OCaml's
    lexical conventions. *)
