(** The lint rule catalog: severities, families, and the textual patterns the
    engine applies.  See DESIGN.md, "Determinism policy & lint rules". *)

type severity = Error | Warning

type family = Determinism | Polymorphic_compare | Partiality | Hygiene

type diagnostic = {
  file : string;
  line : int;
  rule : string;
  severity : severity;
  message : string;
}

val severity_to_string : severity -> string
val family_to_string : family -> string

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Orders by file, then line, then rule id — a stable report order. *)

val in_lib : string -> bool
(** Does the path contain a [lib] component? *)

(** A rule applied line-by-line to scrubbed (or raw, for formatting rules)
    source. *)
type line_rule = {
  id : string;
  family : family;
  severity : severity;
  pattern : Str.regexp;
  message : string;
  applies : string -> bool;
}

val line_rules : line_rule list

val is_raw_rule : string -> bool
(** Formatting rules match raw source lines instead of scrubbed ones. *)

(** The windowed Hashtbl-iteration-order rule. *)

val hashtbl_order_id : string
val hashtbl_order_pattern : Str.regexp
val hashtbl_order_sort_pattern : Str.regexp
val hashtbl_order_window_before : int
val hashtbl_order_window_after : int
val hashtbl_order_message : string
val hashtbl_order_applies : string -> bool

(** Project-level rules. *)

val missing_mli_id : string
val missing_mli_message : string
val dune_flags_id : string
val dune_flags_message : string

val catalog : (string * family * string) list
(** Every rule id with its family and one-line description. *)
