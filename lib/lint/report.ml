let print_text out diagnostics =
  List.iter
    (fun (d : Rules.diagnostic) ->
      Printf.fprintf out "%s:%d: %s [%s] %s\n" d.Rules.file d.Rules.line
        (Rules.severity_to_string d.Rules.severity)
        d.Rules.rule d.Rules.message)
    diagnostics;
  let errors =
    List.length
      (List.filter (fun (d : Rules.diagnostic) -> d.Rules.severity = Rules.Error) diagnostics)
  in
  let warnings = List.length diagnostics - errors in
  if diagnostics = [] then Printf.fprintf out "lint: clean\n"
  else Printf.fprintf out "lint: %d error(s), %d warning(s)\n" errors warnings

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer {|\"|}
      | '\\' -> Buffer.add_string buffer {|\\|}
      | '\n' -> Buffer.add_string buffer {|\n|}
      | '\t' -> Buffer.add_string buffer {|\t|}
      | '\r' -> Buffer.add_string buffer {|\r|}
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_json diagnostics =
  let item (d : Rules.diagnostic) =
    Printf.sprintf
      "  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\"}"
      (json_escape d.Rules.file) d.Rules.line (json_escape d.Rules.rule)
      (Rules.severity_to_string d.Rules.severity)
      (json_escape d.Rules.message)
  in
  "[\n" ^ String.concat ",\n" (List.map item diagnostics) ^ "\n]"

let print_json out diagnostics = Printf.fprintf out "%s\n" (to_json diagnostics)

let print_catalog out =
  List.iter
    (fun (id, family, message) ->
      Printf.fprintf out "%-20s %-20s %s\n" id (Rules.family_to_string family) message)
    Rules.catalog
