(* Applies the rule catalog to sources and directory trees, honouring
   suppression comments. *)

(* ---------- Suppressions ---------- *)

(* A comment may carry [lint: allow rule ...] (suppresses the comment's own
   lines and the line right after it) or [lint: allow-file rule ...]
   (suppresses the whole file). *)
type suppression = { rules : string list; first_line : int; last_line : int; whole_file : bool }

(* The [\t]s must be real tab bytes, so no quoted-string literal here.  The
   rule-list class excludes [*] so the comment's closing delimiter is never
   mistaken for a wildcard; the wildcard is the keyword [all]. *)
let directive_re =
  Str.regexp "lint:[ \t]*\\(allow-file\\|allow\\)[ \t]+\\([a-zA-Z][a-zA-Z0-9_ -]*\\)"

let parse_suppressions comments =
  List.filter_map
    (fun (c : Lexer.comment) ->
      match Str.search_forward directive_re c.text 0 with
      | exception Not_found -> None
      | _ ->
          let kind = Str.matched_group 1 c.text in
          let rules =
            List.filter
              (fun s -> s <> "")
              (String.split_on_char ' ' (Str.matched_group 2 c.text))
          in
          Some
            {
              rules;
              first_line = c.start_line;
              last_line = c.end_line + 1;
              whole_file = kind = "allow-file";
            })
    comments

let suppressed suppressions ~rule ~line =
  List.exists
    (fun s ->
      (s.whole_file || (line >= s.first_line && line <= s.last_line))
      && (List.mem rule s.rules || List.mem "all" s.rules))
    suppressions

(* ---------- Single-file linting ---------- *)

let matches pattern line =
  match Str.search_forward pattern line 0 with exception Not_found -> false | _ -> true

let lint_ml ~path source =
  let scrubbed = Lexer.scrub source in
  let suppressions = parse_suppressions scrubbed.Lexer.comments in
  let out = ref [] in
  let push d = out := d :: !out in
  let line_count = Array.length scrubbed.Lexer.code_lines in
  for index = 0 to line_count - 1 do
    let line_number = index + 1 in
    let code = scrubbed.Lexer.code_lines.(index) in
    let raw = if index < Array.length scrubbed.Lexer.raw_lines then scrubbed.Lexer.raw_lines.(index) else "" in
    List.iter
      (fun (r : Rules.line_rule) ->
        let subject = if Rules.is_raw_rule r.Rules.id then raw else code in
        if
          r.Rules.applies path
          && matches r.Rules.pattern subject
          && not (suppressed suppressions ~rule:r.Rules.id ~line:line_number)
        then
          push
            {
              Rules.file = path;
              line = line_number;
              rule = r.Rules.id;
              severity = r.Rules.severity;
              message = r.Rules.message;
            })
      Rules.line_rules;
    (* Windowed determinism rule: a Hashtbl enumeration is fine only if a
       sort appears nearby (the enumeration feeds it) or it is suppressed. *)
    if
      Rules.hashtbl_order_applies path
      && matches Rules.hashtbl_order_pattern code
      && not (suppressed suppressions ~rule:Rules.hashtbl_order_id ~line:line_number)
    then begin
      let lo = max 0 (index - Rules.hashtbl_order_window_before) in
      let hi = min (line_count - 1) (index + Rules.hashtbl_order_window_after) in
      let sorted_nearby = ref false in
      for j = lo to hi do
        if matches Rules.hashtbl_order_sort_pattern scrubbed.Lexer.code_lines.(j) then
          sorted_nearby := true
      done;
      if not !sorted_nearby then
        push
          {
            Rules.file = path;
            line = line_number;
            rule = Rules.hashtbl_order_id;
            severity = Rules.Error;
            message = Rules.hashtbl_order_message;
          }
    end
  done;
  List.rev !out

let dune_stanza_re = Str.regexp {|(\(library\|executables?\|test\)\b|}
let dune_flags_re = Str.regexp_string "-warn-error"

let lint_dune ~path content =
  (* dune files use s-expressions with ;-comments; a plain textual check is
     enough here. *)
  let lines = String.split_on_char '\n' content in
  let stanza_line =
    let rec find n = function
      | [] -> None
      | l :: rest -> if matches dune_stanza_re l then Some n else find (n + 1) rest
    in
    find 1 lines
  in
  match stanza_line with
  | None -> []
  | Some line ->
      if matches dune_flags_re content then []
      else
        [
          {
            Rules.file = path;
            line;
            rule = Rules.dune_flags_id;
            severity = Rules.Error;
            message = Rules.dune_flags_message;
          };
        ]

(* ---------- Tree walking ---------- *)

let has_suffix suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let skip_entry name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'

let rec collect_files path acc =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if skip_entry entry then acc else collect_files (Filename.concat path entry) acc)
      acc entries
  end
  else path :: acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let missing_mli_diagnostics files =
  (* Every .ml under lib/ needs a sibling .mli. *)
  List.filter_map
    (fun path ->
      if has_suffix ".ml" path && Rules.in_lib path then begin
        let mli = path ^ "i" in
        if List.mem mli files || Sys.file_exists mli then None
        else
          Some
            {
              Rules.file = path;
              line = 1;
              rule = Rules.missing_mli_id;
              severity = Rules.Error;
              message = Rules.missing_mli_message;
            }
      end
      else None)
    files

let lint_file path =
  if has_suffix ".ml" path || has_suffix ".mli" path then lint_ml ~path (read_file path)
  else if Filename.basename path = "dune" then lint_dune ~path (read_file path)
  else []

let lint_paths paths =
  let files = List.fold_left (fun acc path -> collect_files path acc) [] paths in
  let files = List.sort String.compare files in
  let per_file = List.concat_map lint_file files in
  List.sort Rules.compare_diagnostic (per_file @ missing_mli_diagnostics files)

let errors diagnostics =
  List.filter (fun (d : Rules.diagnostic) -> d.Rules.severity = Rules.Error) diagnostics
