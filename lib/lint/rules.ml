type severity = Error | Warning

type family = Determinism | Polymorphic_compare | Partiality | Hygiene

type diagnostic = {
  file : string;
  line : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let family_to_string = function
  | Determinism -> "determinism"
  | Polymorphic_compare -> "polymorphic-compare"
  | Partiality -> "partiality"
  | Hygiene -> "hygiene"

let compare_diagnostic a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

(* ---------- Path scoping ---------- *)

let segments path =
  List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)

let in_tree name path = List.mem name (segments path)
let basename path = Filename.basename path

(* The deterministic PRNG implementation is the one module allowed to talk
   about randomness. *)
let is_prng_module path = basename path = "prng.ml" || basename path = "prng.mli"

(* The domain pool is the one module allowed to use raw parallelism
   primitives; everything else goes through its deterministic fan-out. *)
let is_pool_module path = basename path = "pool.ml" || basename path = "pool.mli"

let in_lib path = in_tree "lib" path

(* Libraries that are allowed to write to stdout: the lint driver reports
   through it, and the observability exporters own the output channel. *)
let in_quiet_lib path =
  in_lib path && (not (in_tree "lint" path)) && not (in_tree "obs" path)
let in_lib_or_bin path = in_lib path || in_tree "bin" path
let everywhere _ = true

(* ---------- Line rules ---------- *)

type line_rule = {
  id : string;
  family : family;
  severity : severity;
  pattern : Str.regexp;
  message : string;
  applies : string -> bool;
}

let re = Str.regexp

let line_rules =
  [
    {
      id = "random";
      family = Determinism;
      severity = Error;
      pattern = re {|\bRandom\.|};
      message =
        "Stdlib.Random is seed-process-global and not reproducible; use \
         Concilium_util.Prng";
      applies = (fun path -> not (is_prng_module path));
    };
    {
      id = "wall-clock";
      family = Determinism;
      severity = Error;
      pattern = re {|\b\(Sys\.time\|Unix\.gettimeofday\|Unix\.time\|Unix\.gmtime\|Unix\.localtime\)\b|};
      message =
        "wall-clock time breaks simulation reproducibility; use the \
         discrete-event engine clock";
      applies = everywhere;
    };
    {
      id = "hashtbl-hash";
      family = Determinism;
      severity = Error;
      pattern = re {|Hashtbl\.\(hash\b\|seeded_hash\|randomize\)\|~random:true|};
      message =
        "Hashtbl.hash / randomized hashtables vary across hash-seed runs; \
         derive hashes from Concilium_util.Prng or a fixed digest";
      applies = (fun path -> not (is_prng_module path));
    };
    {
      id = "poly-compare";
      family = Polymorphic_compare;
      severity = Error;
      pattern =
        (* [\t] below must be a real tab byte, so this pattern cannot use a
           quoted-string literal. *)
        re
          "\\b\\(Stdlib\\|Pervasives\\)\\.compare\\b\\|\\b\\(sort\\|stable_sort\\|sort_uniq\\|fast_sort\\)[ \t]+compare\\b\\|\\b\\(fold_left\\|fold_right\\)[ \t]+\\(min\\|max\\)\\b";
      message =
        "polymorphic compare/min/max in a higher-order position; use a typed \
         comparator (Int.compare, Float.compare, String.compare, Id.compare, ...)";
      applies = everywhere;
    };
    {
      id = "physical-equality";
      family = Polymorphic_compare;
      severity = Error;
      pattern = re {|==\|!=|};
      message =
        "physical equality (==/!=) is representation-dependent; use structural \
         or typed equality, or suppress where identity is the point";
      applies = in_lib_or_bin;
    };
    {
      id = "list-partial";
      family = Partiality;
      severity = Error;
      pattern = re {|\bList\.\(hd\|tl\|nth\)\b|};
      message =
        "List.hd/tl/nth raise on short lists; pattern-match or use a total \
         accessor";
      applies = in_lib_or_bin;
    };
    {
      id = "option-get";
      family = Partiality;
      severity = Error;
      pattern = re {|\bOption\.get\b|};
      message = "Option.get raises on None; pattern-match with an explicit error";
      applies = in_lib_or_bin;
    };
    {
      id = "array-get";
      family = Partiality;
      severity = Error;
      pattern = re {|\bArray\.get\b|};
      message =
        "explicit Array.get hides an unchecked index; bound-check or index \
         with a.(i) next to its guard";
      applies = in_lib_or_bin;
    };
    {
      id = "obj-magic";
      family = Partiality;
      severity = Error;
      pattern = re {|\bObj\.magic\b|};
      message = "Obj.magic defeats the type system";
      applies = everywhere;
    };
    {
      id = "assert-false";
      family = Partiality;
      severity = Error;
      pattern = re "\\bassert[ \t]+false\\b";
      message =
        "assert false marks a partial path; restructure, or suppress with a \
         comment arguing unreachability";
      applies = in_lib_or_bin;
    };
    {
      id = "raw-parallelism";
      family = Hygiene;
      severity = Error;
      pattern = re {|\b\(Domain\.spawn\|Mutex\.create\|Condition\.create\)\b|};
      message =
        "raw Domain/Mutex/Condition use outside the pool loses its \
         determinism contract; fan out via Concilium_util.Pool";
      applies = (fun path -> not (is_pool_module path));
    };
    {
      id = "stdout-printf";
      family = Hygiene;
      severity = Error;
      pattern = re {|\b\(Printf\.printf\|print_endline\|Format\.printf\)\b|};
      message =
        "library code must not write to stdout ad hoc; render into a Buffer \
         (or return a string) and let the binary emit it in one write";
      applies = in_quiet_lib;
    };
    {
      id = "tab-indent";
      family = Hygiene;
      severity = Error;
      pattern = re "\t";
      message = "tab character; indent with spaces";
      applies = everywhere;
    };
    {
      id = "trailing-whitespace";
      family = Hygiene;
      severity = Error;
      pattern = re "[ \t]+$";
      message = "trailing whitespace";
      applies = everywhere;
    };
  ]

(* [tab-indent] and [trailing-whitespace] are formatting rules: they must see
   the raw line (literals included), not the scrubbed one. *)
let is_raw_rule id = id = "tab-indent" || id = "trailing-whitespace"

(* ---------- Windowed rule: Hashtbl iteration order ---------- *)

(* Hashtbl.iter/fold/to_seq enumerate in hash order, which depends on the
   process hash seed.  A result that feeds ordered output must be sorted
   immediately; the window below is how far away we accept the sort. *)
let hashtbl_order_id = "hashtbl-order"
let hashtbl_order_pattern = re {|Hashtbl\.\(iter\b\|fold\b\|to_seq\)|}
let hashtbl_order_sort_pattern = re {|\bsort\|\bSorted\.|}
let hashtbl_order_window_before = 2
let hashtbl_order_window_after = 6

let hashtbl_order_message =
  "Hashtbl iteration order depends on the hash seed; sort the result within \
   a few lines (or suppress if provably order-independent)"

let hashtbl_order_applies = in_lib_or_bin

(* ---------- Project-level rules ---------- *)

let missing_mli_id = "missing-mli"

let missing_mli_message =
  "library module has no .mli; every lib/ module must declare its interface"

let dune_flags_id = "dune-flags"

let dune_flags_message =
  "dune stanza does not set the hardened warning flags \
   ((flags (:standard -w ... -warn-error +a)))"

(* ---------- Catalog (for --list-rules and the tests) ---------- *)

let catalog =
  List.map (fun r -> (r.id, r.family, r.message)) line_rules
  @ [
      (hashtbl_order_id, Determinism, hashtbl_order_message);
      (missing_mli_id, Hygiene, missing_mli_message);
      (dune_flags_id, Hygiene, dune_flags_message);
    ]
