(* A small OCaml surface lexer for the lint pass.  It does not parse the
   language; it only distinguishes code from comments, string literals and
   character literals, so that textual rules never fire on prose or data.
   Comments are collected verbatim (with their line span) because they carry
   lint suppression directives. *)

type comment = { text : string; start_line : int; end_line : int }

type scrubbed = {
  code_lines : string array;  (* source with comments/strings blanked out *)
  raw_lines : string array;   (* untouched source, for whitespace rules *)
  comments : comment list;    (* in source order *)
}

let split_lines source =
  (* [String.split_on_char '\n'] keeps a trailing empty line for sources
     ending in a newline; that is harmless for line-indexed rules. *)
  Array.of_list (String.split_on_char '\n' source)

let is_quoted_tag_char c = (c >= 'a' && c <= 'z') || c = '_'

(* States of the scan.  OCaml comments nest, and literals inside comments
   are themselves lexed (an unbalanced quote inside a comment is a syntax
   error in real OCaml), so the comment state tracks nesting depth, an
   in-string flag, and an open {tag|...|tag} quoted literal.  Character
   literals are consumed whole in both code and comments, so a ['"'] never
   opens a phantom string and a [{|*)|}] never closes the comment. *)
type state =
  | Code
  | Comment of { depth : int; in_string : bool; quoted : string option }
  | String_lit
  | Quoted_lit of string (* the {tag| ... |tag} delimiter tag *)

let scrub source =
  let raw_lines = split_lines source in
  let n = String.length source in
  let code = Buffer.create n in
  let comment_buf = Buffer.create 64 in
  let comments = ref [] in
  let comment_start = ref 0 in
  let line = ref 1 in
  let state = ref Code in
  let emit c = Buffer.add_char code c in
  let blank c = emit (if c = '\n' then '\n' else ' ') in
  let finish_comment () =
    comments :=
      { text = Buffer.contents comment_buf; start_line = !comment_start; end_line = !line }
      :: !comments;
    Buffer.clear comment_buf
  in
  (* Would source.[i] start a character literal?  A quote is only a literal
     when it closes after one (possibly escaped) character; otherwise it is a
     type variable or a prime in an identifier. *)
  let char_literal_length i =
    if i + 2 < n && source.[i + 1] <> '\\' && source.[i + 1] <> '\'' && source.[i + 2] = '\''
    then Some 3
    else if i + 1 < n && source.[i + 1] = '\\' then begin
      (* Escape sequences span at most 4 chars after the backslash. *)
      let rec close j =
        if j >= n || j > i + 7 then None
        else if source.[j] = '\'' then Some (j - i + 1)
        else close (j + 1)
      in
      close (i + 2)
    end
    else None
  in
  (* Does a quoted-string literal open at i?  Returns its tag. *)
  let quoted_open i =
    if source.[i] <> '{' then None
    else begin
      let rec tag j =
        if j < n && is_quoted_tag_char source.[j] then tag (j + 1)
        else if j < n && source.[j] = '|' then Some (String.sub source (i + 1) (j - i - 1))
        else None
      in
      tag (i + 1)
    end
  in
  let quoted_close tag i =
    (* matches |tag} at position i *)
    let len = String.length tag in
    if i + len + 1 < n && source.[i] = '|' && source.[i + len + 1] = '}' then
      String.sub source (i + 1) len = tag
    else false
  in
  let i = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then incr line;
    (match !state with
    | Code ->
        if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
          state := Comment { depth = 1; in_string = false; quoted = None };
          comment_start := !line;
          blank c; blank '*';
          incr i
        end
        else if c = '"' then begin
          state := String_lit;
          blank c
        end
        else begin
          match quoted_open !i with
          | Some tag ->
              state := Quoted_lit tag;
              (* blank the opening brace, tag and bar *)
              for _ = 0 to String.length tag + 1 do blank ' ' done;
              i := !i + String.length tag + 1
          | None -> (
              match if c = '\'' then char_literal_length !i else None with
              | Some len ->
                  for j = !i to !i + len - 1 do
                    if source.[j] = '\n' then incr line;
                    blank source.[j]
                  done;
                  i := !i + len - 1
              | None -> emit c)
        end
    | Comment { depth; in_string; quoted = Some tag } ->
        (* A {tag|...|tag} literal open inside the comment: nothing is
           special until the matching |tag}, not even a ( * or * ). *)
        if quoted_close tag !i then begin
          for j = !i to !i + String.length tag + 1 do
            Buffer.add_char comment_buf source.[j];
            blank source.[j]
          done;
          i := !i + String.length tag + 1;
          state := Comment { depth; in_string; quoted = None }
        end
        else begin
          Buffer.add_char comment_buf c;
          blank c
        end
    | Comment { depth; in_string; quoted = None } ->
        if in_string then begin
          Buffer.add_char comment_buf c;
          blank c;
          if c = '\\' && !i + 1 < n then begin
            let next = source.[!i + 1] in
            if next = '\n' then incr line;
            Buffer.add_char comment_buf next;
            blank next;
            incr i
          end
          else if c = '"' then state := Comment { depth; in_string = false; quoted = None }
        end
        else begin
          (* Character literals are consumed whole so '"' and '{' never leak
             into the string/quoted scanners below. *)
          match if c = '\'' then char_literal_length !i else None with
          | Some len ->
              for j = !i to !i + len - 1 do
                if j > !i && source.[j] = '\n' then incr line;
                Buffer.add_char comment_buf source.[j];
                blank source.[j]
              done;
              i := !i + len - 1
          | None -> (
              match quoted_open !i with
              | Some tag ->
                  for j = !i to !i + String.length tag + 1 do
                    Buffer.add_char comment_buf source.[j];
                    blank source.[j]
                  done;
                  i := !i + String.length tag + 1;
                  state := Comment { depth; in_string = false; quoted = Some tag }
              | None ->
                  Buffer.add_char comment_buf c;
                  blank c;
                  if c = '"' then state := Comment { depth; in_string = true; quoted = None }
                  else if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
                    Buffer.add_char comment_buf '*';
                    blank '*';
                    incr i;
                    state := Comment { depth = depth + 1; in_string = false; quoted = None }
                  end
                  else if c = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
                    Buffer.add_char comment_buf ')';
                    blank ')';
                    incr i;
                    if depth = 1 then begin
                      state := Code;
                      finish_comment ()
                    end
                    else state := Comment { depth = depth - 1; in_string = false; quoted = None }
                  end)
        end
    | String_lit ->
        if c = '\\' && !i + 1 < n then begin
          let next = source.[!i + 1] in
          if next = '\n' then incr line;
          blank c; blank next;
          incr i
        end
        else begin
          blank c;
          if c = '"' then state := Code
        end
    | Quoted_lit tag ->
        if quoted_close tag !i then begin
          for _ = 0 to String.length tag + 1 do blank ' ' done;
          i := !i + String.length tag + 1;
          state := Code
        end
        else blank c);
    incr i
  done;
  (* An unterminated comment at end of file still carries suppressions. *)
  (match !state with Comment _ -> finish_comment () | _ -> ());
  {
    code_lines = split_lines (Buffer.contents code);
    raw_lines;
    comments = List.rev !comments;
  }
