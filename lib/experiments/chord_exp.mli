(** Generalising the density test to Chord (paper Section 3.1: "the test
    can be extended to other overlays in a straightforward manner").

    The finger-interval occupancy of a Chord node is Poisson-binomial just
    like a Pastry jump table's slot occupancy, so the identical analytic
    machinery yields the model-vs-Monte-Carlo comparison (Figure 1's
    analogue) and the gamma-test error rates (Figure 2's analogue). *)

type point = {
  n : int;
  analytic_mean : float;
  monte_carlo_mean : float;
  route_length : float;  (** mean overlay hops, for the log N check *)
}

(** Overlay sizes fan out over the pool, one pre-split PRNG per size. *)
val run :
  ?pool:Concilium_util.Pool.t ->
  seed:int64 ->
  sizes:int array ->
  trials:int ->
  unit ->
  point list

val occupancy_table : point list -> Output.table

val error_rates_table :
  ?pool:Concilium_util.Pool.t ->
  n:int ->
  colluding_fractions:float array ->
  unit ->
  Output.table
(** Density-test FP/FN at the optimal gamma when an adversary advertises a
    finger table drawn from its colluders only. *)
