module Density_test = Concilium_overlay.Density_test
module Pool = Concilium_util.Pool

type sweep_row = { gamma : float; per_c : (float * Density_test.rates) list }
type optimal_row = { c : float; best_gamma : float; rates : Density_test.rates }
type result = { sweep : sweep_row list; optimal : optimal_row list }

let default_gammas = Array.init 21 (fun i -> 1.0 +. (0.05 *. float_of_int i))
let default_fractions = [| 0.05; 0.1; 0.15; 0.2; 0.25; 0.3 |]

let run ?pool ~n ~suppression ~gammas ~colluding_fractions () =
  let scenario c = { Density_test.n; colluding_fraction = c; suppression } in
  (* Pure numeric work: flatten the gamma x c grid so every cell is its own
     task; results are reassembled in index order, so parallelism cannot
     change the output. *)
  let fraction_count = Array.length colluding_fractions in
  let cells =
    Pool.parallel_init ?pool
      (Array.length gammas * fraction_count)
      ~f:(fun task ->
        let gamma = gammas.(task / fraction_count) in
        let c = colluding_fractions.(task mod fraction_count) in
        (c, Density_test.rates ~gamma (scenario c)))
  in
  let sweep =
    List.init (Array.length gammas) (fun i ->
        {
          gamma = gammas.(i);
          per_c = Array.to_list (Array.sub cells (i * fraction_count) fraction_count);
        })
  in
  (* A denser gamma grid for the optimum than for the printed sweep. *)
  let fine_gammas = Array.init 101 (fun i -> 1.0 +. (0.01 *. float_of_int i)) in
  let optimal =
    Array.to_list
      (Pool.parallel_map ?pool colluding_fractions ~f:(fun c ->
           let best_gamma, rates =
             Density_test.optimal_gamma ~gammas:fine_gammas (scenario c)
           in
           { c; best_gamma; rates }))
  in
  { sweep; optimal }

let tables ~figure result =
  let fractions =
    match result.sweep with
    | [] -> invalid_arg "Fig2_fig3.tables: empty gamma sweep"
    | first :: _ -> List.map fst first.per_c
  in
  let header = "gamma" :: List.map (fun c -> Printf.sprintf "c=%.0f%%" (100. *. c)) fractions in
  let rate_table ~title ~select =
    {
      Output.title;
      header;
      rows =
        List.map
          (fun row ->
            Printf.sprintf "%.2f" row.gamma
            :: List.map (fun (_, rates) -> Output.cell_pct (select rates)) row.per_c)
          result.sweep;
    }
  in
  [
    rate_table
      ~title:(figure ^ "(a): false positive probability")
      ~select:(fun r -> r.Density_test.false_positive);
    rate_table
      ~title:(figure ^ "(b): false negative probability")
      ~select:(fun r -> r.Density_test.false_negative);
    {
      Output.title = figure ^ "(c): error rates at the gamma minimising their sum";
      header = [ "c"; "best gamma"; "false positive"; "false negative"; "sum" ];
      rows =
        List.map
          (fun row ->
            [
              Printf.sprintf "%.0f%%" (100. *. row.c);
              Printf.sprintf "%.2f" row.best_gamma;
              Output.cell_pct row.rates.Density_test.false_positive;
              Output.cell_pct row.rates.Density_test.false_negative;
              Output.cell_pct
                (row.rates.Density_test.false_positive
                +. row.rates.Density_test.false_negative);
            ])
          result.optimal;
    };
  ]
