(** Figures 2 and 3: density-test error rates as a function of the slack
    factor gamma and the colluding fraction c — Figure 2 without identifier
    suppression, Figure 3 with it (the [suppression] flag selects). Panel
    (c) picks, per c, the gamma minimising the summed error. *)

type sweep_row = {
  gamma : float;
  per_c : (float * Concilium_overlay.Density_test.rates) list;  (** (c, rates) *)
}

type optimal_row = {
  c : float;
  best_gamma : float;
  rates : Concilium_overlay.Density_test.rates;
}

type result = { sweep : sweep_row list; optimal : optimal_row list }

(** The gamma x c grid fans out over the pool; the computation is pure, so
    parallelism cannot affect the result. *)
val run :
  ?pool:Concilium_util.Pool.t ->
  n:int ->
  suppression:bool ->
  gammas:float array ->
  colluding_fractions:float array ->
  unit ->
  result

val default_gammas : float array
val default_fractions : float array

val tables : figure:string -> result -> Output.table list
(** Three tables: false positives, false negatives, min-sum optimum. *)
