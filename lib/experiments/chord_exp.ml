module Chord = Concilium_overlay.Chord
module Id = Concilium_overlay.Id
module Density_test = Concilium_overlay.Density_test
module Prng = Concilium_util.Prng
module Descriptive = Concilium_stats.Descriptive
module Pool = Concilium_util.Pool

type point = {
  n : int;
  analytic_mean : float;
  monte_carlo_mean : float;
  route_length : float;
}

let run ?pool ~seed ~sizes ~trials () =
  let rng = Prng.of_seed seed in
  (* One pre-split stream per overlay size; inside a task the draws are
     strictly sequential on that stream, so fan-out order cannot matter. *)
  Array.to_list
    (Pool.parallel_init_rng ?pool (Array.length sizes) ~rng ~f:(fun index rng ->
         let n = sizes.(index) in
         let model = Chord.Model.occupancy_model ~n in
         let samples = Chord.Model.monte_carlo_occupancy ~rng ~n ~trials in
         let ids = Array.init n (fun _ -> Id.random rng) in
         let overlay = Chord.build ids in
         {
           n;
           analytic_mean =
             model.Concilium_stats.Poisson_binomial.mu_phi /. float_of_int Chord.finger_count;
           monte_carlo_mean = Descriptive.mean samples;
           route_length = Chord.mean_route_length overlay ~trials:100 ~rng;
         }))

let occupancy_table points =
  {
    Output.title =
      "Chord generalisation: finger-interval occupancy model vs Monte Carlo (and ~1/2 log2 N \
       routing)";
    header = [ "N"; "model mean"; "MC mean"; "mean hops"; "1/2 log2 N" ];
    rows =
      List.map
        (fun p ->
          [
            Output.cell_i p.n;
            Output.cell_f p.analytic_mean;
            Output.cell_f p.monte_carlo_mean;
            Printf.sprintf "%.2f" p.route_length;
            Printf.sprintf "%.2f" (0.5 *. (log (float_of_int p.n) /. log 2.));
          ])
        points;
  }

let error_rates_table ?pool ~n ~colluding_fractions () =
  let gammas = Array.init 101 (fun i -> 1.0 +. (0.01 *. float_of_int i)) in
  let honest = Chord.Model.occupancy_model ~n in
  let rows =
    Array.to_list
      (Pool.parallel_map ?pool colluding_fractions
         ~f:(fun c ->
           let malicious =
             Chord.Model.occupancy_model
               ~n:(max 2 (int_of_float (Float.round (float_of_int n *. c))))
           in
           (* Same min-sum gamma selection as the Pastry test. *)
           let best = ref (0., infinity, 0., 0.) in
           Array.iter
             (fun gamma ->
               let fp = Density_test.false_positive_rate ~gamma ~local:honest ~peer:honest in
               let fn =
                 Density_test.false_negative_rate ~gamma ~local:honest ~advertised:malicious
               in
               let _, best_sum, _, _ = !best in
               if fp +. fn < best_sum then best := (gamma, fp +. fn, fp, fn))
             gammas;
           let gamma, _, fp, fn = !best in
           [
             Printf.sprintf "%.0f%%" (100. *. c);
             Printf.sprintf "%.2f" gamma;
             Output.cell_pct fp;
             Output.cell_pct fn;
           ]))
  in
  {
    Output.title =
      Printf.sprintf "Chord density test: error rates at the min-sum gamma (N = %d)" n;
    header = [ "c"; "best gamma"; "false positive"; "false negative" ];
    rows;
  }
