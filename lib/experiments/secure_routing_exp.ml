module Pastry = Concilium_overlay.Pastry
module Secure_routing = Concilium_overlay.Secure_routing
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool

type point = { faulty_fraction : float; standard : float; redundant : float }

let default_fractions = [| 0.0; 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.35; 0.4 |]

let run ?pool ~seed ~overlay_size ~trials ~fractions () =
  let rng = Prng.of_seed seed in
  let ids = Array.init overlay_size (fun _ -> Id.random rng) in
  let overlay = Pastry.build ids in
  (* Two tasks per fraction (standard and redundant routing), each on its
     own pre-split stream; rates land back in a fixed (fraction, mode)
     layout. *)
  let fraction_count = Array.length fractions in
  let rates =
    Pool.parallel_init_rng ?pool (2 * fraction_count) ~rng ~f:(fun task rng ->
        let faulty_fraction = fractions.(task / 2) in
        let mode = if task mod 2 = 0 then `Standard else `Redundant in
        Secure_routing.delivery_probability overlay ~rng ~faulty_fraction ~trials ~mode)
  in
  List.init fraction_count (fun i ->
      {
        faulty_fraction = fractions.(i);
        standard = rates.(2 * i);
        redundant = rates.((2 * i) + 1);
      })

let table points =
  {
    Output.title =
      "Secure routing substrate: delivery probability vs faulty fraction (Castro: redundant \
       routing delivers w.h.p. while >= 75% of hosts are honest)";
    header = [ "faulty fraction"; "standard routing"; "secure (redundant)" ];
    rows =
      List.map
        (fun p ->
          [
            Printf.sprintf "%.0f%%" (100. *. p.faulty_fraction);
            Output.cell_pct p.standard;
            Output.cell_pct p.redundant;
          ])
        points;
  }
