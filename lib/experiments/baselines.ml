module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool

type row = {
  label : string;
  overall_accuracy : float;
  network_fault_accuracy : float;
  node_fault_accuracy : float;
}

type result = {
  rows : row list;
  network_fault_samples : int;
  node_fault_samples : int;
}

(* Like Blame_world.run, the rejection-sampled draws are split into shards
   with pre-split streams whose count depends only on the workload (a
   domain-count-derived split would change the byte stream and break
   `--domains N` identity): at least 64 samples per shard, capped at 256
   shards. The counters sum identically however the shards are
   scheduled. *)
let shard_count ~samples = min 256 (max 1 (samples / 64))

let run_shard blame_world ~rng ~quota =
  let config = Blame_world.config blame_world in
  (* Counters: (says-network when network, says-node when node). *)
  let network_total = ref 0 and node_total = ref 0 in
  let concilium_network = ref 0 and concilium_node = ref 0 in
  let collected = ref 0 and attempts = ref 0 in
  while !collected < quota && !attempts < 200 * quota do
    incr attempts;
    match Blame_world.sample_judgment blame_world ~rng with
    | None -> ()
    | Some judgment ->
        incr collected;
        let says_node =
          judgment.Blame_world.blame >= config.Blame_world.guilt_threshold
        in
        if judgment.Blame_world.path_actually_good then begin
          (* Ground truth: the forwarder dropped it. *)
          incr node_total;
          if says_node then incr concilium_node
        end
        else begin
          incr network_total;
          if not says_node then incr concilium_network
        end
  done;
  (!network_total, !node_total, !concilium_network, !concilium_node)

let run ?pool blame_world ~samples =
  let config = Blame_world.config blame_world in
  let rng = Prng.of_seed (Int64.add config.Blame_world.seed 0xBA5EL) in
  let shard_count = shard_count ~samples in
  let quota i = (samples / shard_count) + (if i < samples mod shard_count then 1 else 0) in
  let shards =
    Pool.parallel_init_rng ?pool shard_count ~rng ~f:(fun i rng ->
        run_shard blame_world ~rng ~quota:(quota i))
  in
  let network_total = ref 0 and node_total = ref 0 in
  let concilium_network = ref 0 and concilium_node = ref 0 in
  Array.iter
    (fun (network, node, c_network, c_node) ->
      network_total := !network_total + network;
      node_total := !node_total + node;
      concilium_network := !concilium_network + c_network;
      concilium_node := !concilium_node + c_node)
    shards;
  let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  let total = !network_total + !node_total in
  let overall_of ~network_correct ~node_correct =
    ratio (network_correct + node_correct) total
  in
  let concilium =
    {
      label = "Concilium (Eq. 2, 40% threshold)";
      overall_accuracy = overall_of ~network_correct:!concilium_network ~node_correct:!concilium_node;
      network_fault_accuracy = ratio !concilium_network !network_total;
      node_fault_accuracy = ratio !concilium_node !node_total;
    }
  in
  (* RON: every drop is the network's fault. *)
  let ron =
    {
      label = "RON-style (always blame network)";
      overall_accuracy = overall_of ~network_correct:!network_total ~node_correct:0;
      network_fault_accuracy = 1.;
      node_fault_accuracy = 0.;
    }
  in
  (* Naive: every drop convicts the next hop. *)
  let naive =
    {
      label = "Naive (always blame next hop)";
      overall_accuracy = overall_of ~network_correct:0 ~node_correct:!node_total;
      network_fault_accuracy = 0.;
      node_fault_accuracy = 1.;
    }
  in
  {
    rows = [ concilium; ron; naive ];
    network_fault_samples = !network_total;
    node_fault_samples = !node_total;
  }

let table result =
  {
    Output.title =
      Printf.sprintf
        "Baselines: per-drop diagnosis accuracy vs ground truth (%d network-fault, %d \
         node-fault drops)"
        result.network_fault_samples result.node_fault_samples;
    header = [ "diagnoser"; "overall"; "on network faults"; "on node faults" ];
    rows =
      List.map
        (fun row ->
          [
            row.label;
            Output.cell_pct row.overall_accuracy;
            Output.cell_pct row.network_fault_accuracy;
            Output.cell_pct row.node_fault_accuracy;
          ])
        result.rows;
  }
