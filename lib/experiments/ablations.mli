module World = Concilium_core.World

(** Ablations over Concilium's design choices (beyond the paper's own
    figures). Each returns a printable table:

    - {!self_exclusion}: Section 3.4 excludes the judged node's own probe
      results from Equation 3 so it cannot exculpate itself. Disabling the
      rule under collusion shows how many guilty verdicts the droppers
      would dodge.
    - {!delta_sensitivity}: the probe window half-width Delta trades
      evidence volume against staleness.
    - {!probe_rate_sensitivity}: slower lightweight probing
      (max_probe_time) thins the evidence inside the window.
    - {!visibility}: forest-limited snapshot dissemination (the protocol's
      reality) vs a hypothetical global gossip of all snapshots.
    - {!probe_consolidation}: Section 3.7's shared stub probing — the
      amortisation actually achieved by co-resident hosts in the simulated
      world. *)

val self_exclusion :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  samples:int ->
  seed:int64 ->
  unit ->
  Output.table

val delta_sensitivity :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  deltas:float array ->
  samples:int ->
  seed:int64 ->
  unit ->
  Output.table

val probe_rate_sensitivity :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  max_probe_times:float array ->
  samples:int ->
  seed:int64 ->
  unit ->
  Output.table

val visibility :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  samples:int ->
  seed:int64 ->
  unit ->
  Output.table

val probe_consolidation :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  group_sizes:int array ->
  seed:int64 ->
  unit ->
  Output.table

(** Variants fan out over the pool; each variant's own nested fan-out then
    runs inline, keeping results independent of the domain count. *)
val run_all :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  samples:int ->
  seed:int64 ->
  unit ->
  Output.table list
