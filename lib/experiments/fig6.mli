(** Figure 6: formal accusation error rates vs m (w = 100), driven by the
    per-drop verdict probabilities measured in Figure 5. *)

type input = { label : string; p_good : float; p_faulty : float }

type row = {
  m : int;
  false_positive : float;
  false_negative : float;
}

type result = {
  input : input;
  rows : row list;
  recommended_m : int option;  (** least m with both rates below 1% *)
}

val run : ?pool:Concilium_util.Pool.t -> w:int -> max_m:int -> input -> result
val table : w:int -> result -> Output.table
