module World = Concilium_core.World

(** Figure 4: trees sampled vs forest coverage.

    For a host H, the forest F_H unions H's probe tree with its routing
    peers' trees. Including the probe results of more peer trees covers
    more of F_H's physical links and raises the mean number of peers able
    to vouch for a link. x = 0 means H relies on its own tree alone. *)

type point = {
  trees_included : int;  (** peer trees beyond H's own *)
  mean_coverage : float;  (** fraction of F_H links covered, averaged over hosts *)
  mean_vouchers : float;  (** mean probing trees per covered F_H link *)
  hosts : int;  (** hosts contributing to this x (those with enough peers) *)
}

val run :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  rng:Concilium_util.Prng.t ->
  host_sample:int ->
  unit ->
  point list
(** Peer trees are included in random order; results average over
    [host_sample] uniformly chosen hosts (capped at the overlay size).
    Hosts fan out over the pool, one pre-split PRNG each, and the per-host
    curves are merged in sample order. *)

val table : ?max_rows:int -> point list -> Output.table
