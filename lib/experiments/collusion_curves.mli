(** Blame accuracy under collusion, swept over coalition size and
    corroboration rate — the degradation curves behind Figure 5(b).

    Every cell shares one seed: the failure process, probe schedules and
    probe noise are common to all of them, and because
    {!Concilium_util.Prng.sample_without_replacement} draws a prefix of
    one lazily-materialised permutation, the malicious sets are {e nested}
    as the colluding fraction grows. A bigger coalition is therefore the
    same world plus more liars — which is what makes the curves monotone
    rather than re-rolled — and the fraction-0 cells recompute the honest
    baseline through the very same code path, demonstrating that the
    corroboration knob is inert when nobody colludes. *)

module World = Concilium_core.World

val default_fractions : float array
(** [| 0.; 0.05; 0.1; 0.2; 0.3 |] *)

val default_corroborations : float array
(** [| 0.25; 0.5; 1.0 |] — 1.0 is the paper's always-invert colluder. *)

type point = {
  fraction : float;  (** colluding fraction of overlay nodes *)
  corroboration : float;  (** per-observation lie probability *)
  false_blame : float;  (** innocent suspects receiving a guilty verdict *)
  missed_blame : float;  (** colluding droppers escaping a guilty verdict *)
  innocent_samples : int;
  faulty_samples : int;
}

type result = {
  baseline : Blame_world.result;  (** honest run, same seed and samples *)
  points : point array;  (** corroboration-major, then fraction order *)
}

val run :
  ?pool:Concilium_util.Pool.t ->
  world:World.t ->
  samples:int ->
  bins:int ->
  seed:int64 ->
  ?fractions:float array ->
  ?corroborations:float array ->
  unit ->
  result

val zero_adversary_consistent : result -> bool
(** Every fraction-0 point carries exactly the baseline's verdict rates
    and sample counts — float-equal, not approximately. *)

val false_blame_monotone : result -> bool
(** Within each corroboration level, false blame never decreases as the
    colluding fraction grows. *)

val table : result -> Output.table
