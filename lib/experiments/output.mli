(** Row-oriented output helpers shared by the experiment drivers. Every
    experiment prints plain aligned columns so results can be diffed against
    EXPERIMENTS.md and piped into plotting tools. *)

type table = { title : string; header : string list; rows : string list list }

val to_string : table -> string
(** Render the table (title banner, aligned header, rule, rows) as one
    string ending in a newline. Library code renders; binaries print. *)

val print : table -> unit
(** [print_string (to_string table)] — a single stdout write. *)

val write_tsv : dir:string -> table -> string
(** Write the table as a TSV file (named from a slug of the title) under
    [dir], creating the directory if needed; returns the path written.
    Handy for feeding gnuplot/matplotlib when regenerating the figures. *)

val set_tsv_dir : string option -> unit
(** Direct {!emit} to also write TSV into the given directory. *)

val emit : table -> unit
(** Like {!print}, and additionally writes TSV when a directory was set
    via {!set_tsv_dir}. *)

val cell_f : float -> string
(** Fixed 4-decimal rendering. *)

val cell_pct : float -> string
(** A probability as a percentage with 2 decimals. *)

val cell_i : int -> string
