module Accusation_model = Concilium_core.Accusation_model
module Pool = Concilium_util.Pool

type input = { label : string; p_good : float; p_faulty : float }
type row = { m : int; false_positive : float; false_negative : float }
type result = { input : input; rows : row list; recommended_m : int option }

let run ?pool ~w ~max_m input =
  (* Pure binomial-tail evaluations, one per m; order restored by index. *)
  let rows =
    Array.to_list
      (Pool.parallel_init ?pool (min max_m w) ~f:(fun i ->
           let m = i + 1 in
           {
             m;
             false_positive = Accusation_model.false_positive ~w ~m ~p_good:input.p_good;
             false_negative =
               Accusation_model.false_negative ~w ~m ~p_faulty:input.p_faulty;
           }))
  in
  let recommended_m =
    Accusation_model.smallest_m_below ~w ~p_good:input.p_good ~p_faulty:input.p_faulty
      ~target:0.01
  in
  { input; rows; recommended_m }

let table ~w result =
  {
    Output.title =
      Printf.sprintf
        "Figure 6 (%s): accusation error vs m (w=%d, p_good=%.3f, p_faulty=%.3f)%s"
        result.input.label w result.input.p_good result.input.p_faulty
        (match result.recommended_m with
        | Some m -> Printf.sprintf " -- both rates < 1%% from m=%d" m
        | None -> " -- no m drives both rates below 1%");
    header = [ "m"; "Pr(false positive)"; "Pr(false negative)" ];
    rows =
      List.map
        (fun r ->
          [
            Output.cell_i r.m;
            Printf.sprintf "%.6f" r.false_positive;
            Printf.sprintf "%.6f" r.false_negative;
          ])
        result.rows;
  }
