type table = { title : string; header : string list; rows : string list list }

let cell_f x = Printf.sprintf "%.4f" x
let cell_pct x = Printf.sprintf "%.2f%%" (100. *. x)
let cell_i = string_of_int

let to_string table =
  let columns = List.length table.header in
  let widths = Array.make (max 1 columns) 0 in
  List.iter
    (fun row ->
      if List.length row = columns then
        List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    (table.header :: table.rows);
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let pad = if i < columns then widths.(i) - String.length cell else 0 in
           if i = 0 then cell ^ String.make (max 0 pad) ' '
           else String.make (max 0 pad) ' ' ^ cell)
         row)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "\n== %s ==\n" table.title);
  Buffer.add_string buf (render table.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (render table.header)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render row);
      Buffer.add_char buf '\n')
    table.rows;
  Buffer.contents buf

let print table = print_string (to_string table)

let slug title =
  let buffer = Buffer.create 48 in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char buffer c
      | 'A' .. 'Z' -> Buffer.add_char buffer (Char.lowercase_ascii c)
      | ' ' | '-' | '_' | ':' | '/' ->
          if Buffer.length buffer > 0 && Buffer.nth buffer (Buffer.length buffer - 1) <> '-'
          then Buffer.add_char buffer '-'
      | _ -> ())
    title;
  let s = Buffer.contents buffer in
  let s = if String.length s > 60 then String.sub s 0 60 else s in
  if s = "" then "table" else s

let rec mkdir_recursive dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_recursive parent;
    Sys.mkdir dir 0o755
  end

let write_tsv ~dir table =
  mkdir_recursive dir;
  let path = Filename.concat dir (slug table.title ^ ".tsv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc ("# " ^ table.title ^ "\n");
      output_string oc (String.concat "\t" table.header ^ "\n");
      List.iter (fun row -> output_string oc (String.concat "\t" row ^ "\n")) table.rows);
  path

let tsv_dir = ref None
let set_tsv_dir dir = tsv_dir := dir

let emit table =
  let trailer =
    match !tsv_dir with
    | Some dir ->
        let path = write_tsv ~dir table in
        Printf.sprintf "(written to %s)\n" path
    | None -> ""
  in
  print_string (to_string table ^ trailer)
