module World = Concilium_core.World
module Prng = Concilium_util.Prng
module Hashing = Concilium_util.Hashing
module Sorted = Concilium_util.Sorted
module Histogram = Concilium_stats.Histogram
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Failures = Concilium_netsim.Failures
module Link_history = Concilium_netsim.Link_history
module Pool = Concilium_util.Pool

type config = {
  duration : float;
  max_probe_time : float;
  accuracy : float;
  delta : float;
  guilt_threshold : float;
  colluding_fraction : float;
  corroboration : float;
  exclude_suspect_probes : bool;
  global_visibility : bool;
  seed : int64;
}

let paper_config ~colluding_fraction ~seed =
  {
    duration = 7200.;
    max_probe_time = 120.;
    accuracy = 0.9;
    delta = 60.;
    guilt_threshold = 0.4;
    colluding_fraction;
    corroboration = 1.;
    exclude_suspect_probes = true;
    global_visibility = false;
    seed;
  }

type t = {
  world : World.t;
  config : config;
  failures : Failures.t;
  schedules : float array array; (* per node: sorted probe times *)
  malicious : bool array;
  peer_sets : (int, unit) Hashtbl.t array; (* per node: routing-peer membership *)
}

let build_schedule rng ~duration ~max_probe_time =
  let times = ref [] in
  let clock = ref (Prng.float rng max_probe_time) in
  while !clock < duration do
    times := !clock :: !times;
    clock := !clock +. Prng.float rng max_probe_time
  done;
  Array.of_list (List.rev !times)

let create ~world config =
  let rng = Prng.of_seed config.seed in
  let failure_rng = Prng.split rng in
  let schedule_rng = Prng.split rng in
  let malice_rng = Prng.split rng in
  let graph = world.World.generated.World.Generate.graph in
  let routes = World.all_peer_paths world in
  let failures =
    Failures.generate ~rng:failure_rng ~config:Failures.paper_config
      ~link_count:(Graph.link_count graph) ~routes ~duration:config.duration
  in
  let node_count = World.node_count world in
  let schedules =
    Array.init node_count (fun _ ->
        build_schedule schedule_rng ~duration:config.duration
          ~max_probe_time:config.max_probe_time)
  in
  let malicious = Array.make node_count false in
  if config.colluding_fraction > 0. then begin
    let target = int_of_float (Float.round (config.colluding_fraction *. float_of_int node_count)) in
    Array.iter
      (fun v -> malicious.(v) <- true)
      (Prng.sample_without_replacement malice_rng (min target node_count) node_count)
  end;
  let peer_sets =
    Array.init node_count (fun v ->
        let set = Hashtbl.create 64 in
        Array.iter (fun peer -> Hashtbl.replace set peer ()) world.World.peers.(v);
        set)
  in
  { world; config; failures; schedules; malicious; peer_sets }

let world t = t.world
let config t = t.config
let is_malicious t v = t.malicious.(v)

let mean_bad_fraction t =
  Failures.mean_bad_fraction t.failures ~duration:t.config.duration ~samples:64

(* Deterministic probe noise: whether prober v misclassifies link l on its
   i-th probe. Any verifier recomputing the observation derives the same
   bit. *)
let misclassifies t ~prober ~link ~probe_index =
  let h = Hashing.fnv1a_int Hashing.offset (Int64.of_int prober) in
  let h = Hashing.fnv1a_int h (Int64.of_int link) in
  let h = Hashing.fnv1a_int h (Int64.of_int probe_index) in
  let h = Hashing.fnv1a_int h t.config.seed in
  let noise_rng = Prng.of_seed h in
  Prng.uniform noise_rng > t.config.accuracy

(* Whether a colluder actually lies on this observation. At corroboration
   1.0 (the paper's Figure 5(b) setting) the short-circuit keeps the
   computation — and thus every derived byte — identical to a world with
   no corroboration knob at all. Below 1.0 the decision is a deterministic
   hash of the same coordinates as probe noise, salted so the two bits are
   independent. *)
let colludes t ~prober ~link ~probe_index =
  t.config.corroboration >= 1.
  ||
  let h = Hashing.fnv1a_int Hashing.offset 0x636f6c6cL (* "coll" *) in
  let h = Hashing.fnv1a_int h (Int64.of_int prober) in
  let h = Hashing.fnv1a_int h (Int64.of_int link) in
  let h = Hashing.fnv1a_int h (Int64.of_int probe_index) in
  let h = Hashing.fnv1a_int h t.config.seed in
  Prng.uniform (Prng.of_seed h) < t.config.corroboration

type judgment = {
  judge : int;
  suspect : int;
  next_hop : int;
  time : float;
  path_actually_good : bool;
  blame : float;
  votes_used : int;
}

let judge t ~judge:a ~suspect:b ~next_hop:c ~time =
  match World.ip_path t.world ~from_node:b ~to_node:c with
  | None -> None
  | Some path ->
      let links = path.Routes.links in
      let lo = time -. t.config.delta and hi = time +. t.config.delta in
      let visible prober =
        t.config.global_visibility || prober = a || Hashtbl.mem t.peer_sets.(a) prober
      in
      let excluded prober = t.config.exclude_suspect_probes && prober = b in
      let votes_used = ref 0 in
      let worst = ref 0. in
      Array.iter
        (fun link ->
          let up_votes = ref 0 and down_votes = ref 0 in
          List.iter
            (fun prober ->
              if (not (excluded prober)) && visible prober then begin
                let schedule = t.schedules.(prober) in
                let first = Sorted.lower_bound compare schedule lo in
                let stop = Sorted.upper_bound compare schedule hi in
                for probe_index = first to stop - 1 do
                  let probe_time = schedule.(probe_index) in
                  let observed_up =
                    if
                      t.malicious.(prober)
                      && t.config.colluding_fraction > 0.
                      && colludes t ~prober ~link ~probe_index
                    then
                      (* Strategic inversion: claim "down" to shield a fellow
                         colluder, "up" to frame an innocent suspect. *)
                      not t.malicious.(b)
                    else begin
                      let truly_up =
                        not
                          (Link_history.is_bad_at t.failures.Failures.history ~link
                             ~time:probe_time)
                      in
                      if misclassifies t ~prober ~link ~probe_index then not truly_up
                      else truly_up
                    end
                  in
                  incr votes_used;
                  if observed_up then incr up_votes else incr down_votes
                done
              end)
            (World.vouchers t.world ~link);
          let total = !up_votes + !down_votes in
          if total > 0 then begin
            let confidence =
              ((float_of_int !up_votes *. (1. -. t.config.accuracy))
              +. (float_of_int !down_votes *. t.config.accuracy))
              /. float_of_int total
            in
            if confidence > !worst then worst := confidence
          end)
        links;
      let path_actually_good =
        Link_history.path_is_good_at t.failures.Failures.history ~links ~time
      in
      Some
        {
          judge = a;
          suspect = b;
          next_hop = c;
          time;
          path_actually_good;
          blame = 1. -. !worst;
          votes_used = !votes_used;
        }

let sample_judgment t ~rng =
  let node_count = World.node_count t.world in
  let a = Prng.int rng node_count in
  let peers_a = t.world.World.peers.(a) in
  if Array.length peers_a = 0 then None
  else begin
    let b = peers_a.(Prng.int rng (Array.length peers_a)) in
    let peers_b = t.world.World.peers.(b) in
    if Array.length peers_b = 0 then None
    else begin
      let c = peers_b.(Prng.int rng (Array.length peers_b)) in
      if c = a || c = b then None
      else begin
        let time =
          t.config.delta +. Prng.float rng (t.config.duration -. (2. *. t.config.delta))
        in
        judge t ~judge:a ~suspect:b ~next_hop:c ~time
      end
    end
  end

type result = {
  faulty_pdf : Histogram.t;
  nonfaulty_pdf : Histogram.t;
  p_good : float;
  p_faulty : float;
  faulty_samples : int;
  nonfaulty_samples : int;
}

(* The judgment draw is rejection sampling, so the work is split into
   shards — each with its own pre-split stream and sample quota — whose
   count is a pure function of the WORKLOAD, never of the domain count:
   the split changes the byte stream, so deriving it from the pool size
   would break `--domains N` byte-identity. Shard results merge in shard
   order, so output is identical however the shards are scheduled.

   Granularity: at least 64 samples per shard so per-shard dispatch cost
   vanishes against the judgment work (the old fixed 32 shards left
   single-digit quotas on small runs), capped at 256 shards so any
   realistic pool still load-balances large runs. *)
let shard_count ~samples = min 256 (max 1 (samples / 64))

(* Per-shard accumulation: accepted blame values (in draw order) and guilty
   counts for each population. *)
type shard = {
  mutable faulty : float list;  (* reversed draw order *)
  mutable faulty_guilty : int;
  mutable nonfaulty : float list;
  mutable nonfaulty_guilty : int;
  mutable accepted : int;
}

let run_shard t ~rng ~quota =
  let s = { faulty = []; faulty_guilty = 0; nonfaulty = []; nonfaulty_guilty = 0; accepted = 0 } in
  let collusion = t.config.colluding_fraction > 0. in
  let attempts = ref 0 in
  let max_attempts = 200 * quota in
  while s.accepted < quota && !attempts < max_attempts do
    incr attempts;
    match sample_judgment t ~rng with
    | None -> ()
    | Some j ->
        let guilty = j.blame >= t.config.guilt_threshold in
        if j.path_actually_good then begin
          (* The network is exonerated: a drop here means the suspect really
             ate the message. Under collusion the paper's droppers are the
             colluders, so only malicious suspects enter this population. *)
          if (not collusion) || t.malicious.(j.suspect) then begin
            s.faulty <- j.blame :: s.faulty;
            if guilty then s.faulty_guilty <- s.faulty_guilty + 1;
            s.accepted <- s.accepted + 1
          end
        end
        else begin
          if (not collusion) || not t.malicious.(j.suspect) then begin
            s.nonfaulty <- j.blame :: s.nonfaulty;
            if guilty then s.nonfaulty_guilty <- s.nonfaulty_guilty + 1;
            s.accepted <- s.accepted + 1
          end
        end
  done;
  s

let run ?pool t ~samples ~bins =
  let rng = Prng.of_seed (Int64.add t.config.seed 0x5151L) in
  let shard_count = shard_count ~samples in
  (* Spread [samples] over the shards, remainder to the first ones. *)
  let quota i = (samples / shard_count) + (if i < samples mod shard_count then 1 else 0) in
  let shards =
    Pool.parallel_init_rng ?pool shard_count ~rng ~f:(fun i rng ->
        run_shard t ~rng ~quota:(quota i))
  in
  let faulty_pdf = Histogram.create ~lo:0. ~hi:1. ~bins in
  let nonfaulty_pdf = Histogram.create ~lo:0. ~hi:1. ~bins in
  let faulty_guilty = ref 0 and nonfaulty_guilty = ref 0 in
  Array.iter
    (fun s ->
      List.iter (Histogram.add faulty_pdf) s.faulty;
      List.iter (Histogram.add nonfaulty_pdf) s.nonfaulty;
      faulty_guilty := !faulty_guilty + s.faulty_guilty;
      nonfaulty_guilty := !nonfaulty_guilty + s.nonfaulty_guilty)
    shards;
  let faulty_samples = Histogram.total faulty_pdf in
  let nonfaulty_samples = Histogram.total nonfaulty_pdf in
  {
    faulty_pdf;
    nonfaulty_pdf;
    p_good =
      (if nonfaulty_samples = 0 then 0.
       else float_of_int !nonfaulty_guilty /. float_of_int nonfaulty_samples);
    p_faulty =
      (if faulty_samples = 0 then 0.
       else float_of_int !faulty_guilty /. float_of_int faulty_samples);
    faulty_samples;
    nonfaulty_samples;
  }

let pdf_table ~title result =
  let centers = Histogram.bin_centers result.faulty_pdf in
  let faulty = Histogram.pdf result.faulty_pdf in
  let nonfaulty = Histogram.pdf result.nonfaulty_pdf in
  {
    Output.title;
    header = [ "blame"; "pdf(faulty)"; "pdf(non-faulty)" ];
    rows =
      List.init (Array.length centers) (fun i ->
          [
            Printf.sprintf "%.3f" centers.(i);
            Output.cell_f faulty.(i);
            Output.cell_f nonfaulty.(i);
          ]);
  }

let summary_table honest collusion =
  let row label r =
    [
      label;
      Output.cell_pct r.p_good;
      Output.cell_pct r.p_faulty;
      Output.cell_i r.nonfaulty_samples;
      Output.cell_i r.faulty_samples;
    ]
  in
  {
    Output.title =
      "Figure 5 summary: guilty-verdict rates at 40% blame threshold (paper: honest 1.8%/93.8%, \
       collusion 8.4%/71.3%)";
    header =
      [ "scenario"; "innocent guilty"; "faulty guilty"; "innocent n"; "faulty n" ];
    rows =
      (row "honest" honest
      :: (match collusion with Some c -> [ row "20% colluders" c ] | None -> []));
  }
