(** Secure-routing substrate check (paper Section 2).

    Concilium inherits Castro et al.'s guarantee that messages are
    "delivered with very high probability if the fraction of non-faulty
    hosts is at least 75%". This experiment measures the delivery rate of
    standard single-path Pastry routing against leaf-set-redundant secure
    routing as the faulty fraction grows, checking that the substrate
    Concilium's accusation traffic rides on actually holds up. *)

type point = {
  faulty_fraction : float;
  standard : float;
  redundant : float;
}

(** The (fraction, routing mode) pairs fan out over the pool, one pre-split
    PRNG per pair: output is identical for any domain count. *)
val run :
  ?pool:Concilium_util.Pool.t ->
  seed:int64 ->
  overlay_size:int ->
  trials:int ->
  fractions:float array ->
  unit ->
  point list

val default_fractions : float array
val table : point list -> Output.table
