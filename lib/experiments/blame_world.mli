module World = Concilium_core.World

(** The Figure 5/6 experiment world: the paper's 2-virtual-hour failure
    process plus the abstracted probe model of Section 4.3 ("hosts can
    identify whether a link was up or down with 90% accuracy").

    Each overlay node probes its tree on the paper's lightweight schedule
    (inter-arrival uniform in [0, max_probe_time]); a probe observes every
    link of the prober's tree, classifying it correctly with probability
    [accuracy]. A judgment (A, B, C, t) gathers the observations that A
    actually holds — those from A itself and A's routing peers (the trees
    of F_A), excluding B's own — within [t - Delta, t + Delta] over the
    B->C route, and evaluates Equations 2-3. Probe noise is a
    deterministic function of (prober, link, probe index), so any third
    party re-deriving a blame value gets the identical answer.

    Colluders (Figure 5(b)) strategically invert their contributions: they
    report "up" to frame an innocent suspect and "down" to shield a fellow
    colluder. *)

module Prng = Concilium_util.Prng
module Histogram = Concilium_stats.Histogram

type config = {
  duration : float;  (** virtual seconds (paper: 7200) *)
  max_probe_time : float;  (** paper: 120 s *)
  accuracy : float;  (** paper: 0.9 *)
  delta : float;  (** paper: 60 s *)
  guilt_threshold : float;  (** paper: 0.4 *)
  colluding_fraction : float;  (** 0 = all honest; paper also studies 0.2 *)
  corroboration : float;
      (** probability a colluder lies on any given observation (1.0 — the
          default, and the paper's Figure 5(b) setting — means every
          malicious vote is strategically inverted). The decision is a
          deterministic hash of (prober, link, probe index, seed), salted
          independently from probe noise, so at 1.0 the results are
          byte-identical to a build without the knob and at any value a
          verifier re-derives the same lie pattern. *)
  exclude_suspect_probes : bool;
      (** the paper's rule (Section 3.4): the judged node's own probe
          results never enter Equation 3. Settable to [false] only for the
          ablation that demonstrates why the rule exists. *)
  global_visibility : bool;
      (** [false] (the default): a judge sees only probes from its own
          forest F_A, i.e. itself and its routing peers. [true]: every
          snapshot reaches every judge — an upper bound on dissemination. *)
  seed : int64;
}

val paper_config : colluding_fraction:float -> seed:int64 -> config

type t

val create : world:World.t -> config -> t
(** Runs the failure process and lays out every node's probe schedule. *)

val world : t -> World.t
val config : t -> config
val is_malicious : t -> int -> bool
val mean_bad_fraction : t -> float
(** Time-averaged fraction of route-relevant links bad (target: 5%). *)

type judgment = {
  judge : int;  (** A *)
  suspect : int;  (** B *)
  next_hop : int;  (** C *)
  time : float;
  path_actually_good : bool;
  blame : float;
  votes_used : int;
}

val sample_judgment : t -> rng:Prng.t -> judgment option
(** One random (A, B, C, t) triple judged; [None] when the draw was
    degenerate (missing path). *)

type result = {
  faulty_pdf : Histogram.t;  (** blame given the suspect truly dropped it *)
  nonfaulty_pdf : Histogram.t;  (** blame given a bad link explains the drop *)
  p_good : float;  (** innocent suspects receiving a guilty verdict *)
  p_faulty : float;  (** faulty suspects receiving a guilty verdict *)
  faulty_samples : int;
  nonfaulty_samples : int;
}

val run : ?pool:Concilium_util.Pool.t -> t -> samples:int -> bins:int -> result
(** Draw judgments until [samples] of them landed in a population. In a
    collusion scenario the faulty population is restricted to malicious
    suspects (the paper's framing: colluders are the droppers). The draws
    are split over shards — the count a pure function of [samples], never
    of the pool size — each with a pre-split stream and sample quota, so
    the result is identical for any domain count. *)

val pdf_table : title:string -> result -> Output.table

val summary_table : result -> result option -> Output.table
(** Headline verdict rates, honest and (optionally) collusion scenario. *)
