(** Figure 1: the analytic jump-table occupancy model against Monte-Carlo
    simulation of actual secure-table construction, across overlay sizes. *)

type point = {
  n : int;
  analytic_mean : float;  (** occupancy fraction *)
  analytic_std : float;
  monte_carlo_mean : float;
  monte_carlo_std : float;
}

(** Monte Carlo trials fan out over the pool, one pre-split PRNG per
    (size, trial) pair: output is identical for any domain count. *)
val run :
  ?pool:Concilium_util.Pool.t ->
  seed:int64 ->
  sizes:int array ->
  trials:int ->
  unit ->
  point list
val default_sizes : int array
val table : point list -> Output.table
