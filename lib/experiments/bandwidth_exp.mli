(** Section 4.4: the bandwidth analysis, reproduced from the analytic model
    for the paper's 100,000-node overlay and a sweep of other sizes. *)

val run : ?pool:Concilium_util.Pool.t -> sizes:int array -> unit -> Output.table list
val default_sizes : int array
