module Bandwidth = Concilium_core.Bandwidth
module Pool = Concilium_util.Pool

let default_sizes = [| 1_000; 10_000; 100_000; 1_000_000 |]

let run ?pool ~sizes () =
  let paper =
    {
      Output.title =
        "Section 4.4: bandwidth model at paper parameters (expected: ~77 entries, ~11.5 KB \
         state, ~16.7 MiB probing)";
      header = [ "quantity"; "value"; "unit" ];
      rows =
        List.map
          (fun row ->
            [
              row.Bandwidth.label;
              Printf.sprintf "%.2f" row.Bandwidth.value;
              row.Bandwidth.unit_;
            ])
          (Bandwidth.report Bandwidth.paper_params);
    }
  in
  let sweep =
    {
      Output.title = "Section 4.4: overhead vs overlay size";
      header =
        [ "overlay size"; "routing entries"; "advertised state (KiB)"; "heavy probing (MiB)" ];
      rows =
        Array.to_list
          (Pool.parallel_map ?pool sizes ~f:(fun n ->
               let params = { Bandwidth.paper_params with Bandwidth.overlay_size = n } in
               [
                 Output.cell_i n;
                 Printf.sprintf "%.1f" (Bandwidth.expected_routing_entries params);
                 Printf.sprintf "%.2f" (Bandwidth.advertised_state_bytes params /. 1024.);
                 Printf.sprintf "%.2f"
                   (Bandwidth.heavyweight_probe_bytes params /. (1024. *. 1024.));
               ]));
    }
  in
  [ paper; sweep ]
