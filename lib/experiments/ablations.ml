module World = Concilium_core.World
module Bandwidth = Concilium_core.Bandwidth
module Tree = Concilium_tomography.Tree
module Probe_sharing = Concilium_tomography.Probe_sharing
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool

let short_duration = 3600.

let rates_row label (result : Blame_world.result) =
  [
    label;
    Output.cell_pct result.Blame_world.p_good;
    Output.cell_pct result.Blame_world.p_faulty;
    Output.cell_i result.Blame_world.nonfaulty_samples;
    Output.cell_i result.Blame_world.faulty_samples;
  ]

let rates_header = [ "variant"; "innocent guilty"; "faulty guilty"; "innocent n"; "faulty n" ]

(* Variants fan out over the pool at this level; the nested fan-out inside
   Blame_world.run then runs inline (Pool.parallel_init detects it is
   already inside a task), so each variant stays on one domain. *)
let run_variant ?pool ~world ~samples config =
  let bw = Blame_world.create ~world config in
  Blame_world.run ?pool bw ~samples ~bins:20

let run_variants ?pool ~world ~samples configs =
  Pool.parallel_map ?pool configs ~f:(fun config -> run_variant ?pool ~world ~samples config)

let self_exclusion ?pool ~world ~samples ~seed () =
  let base =
    {
      (Blame_world.paper_config ~colluding_fraction:0.2 ~seed) with
      Blame_world.duration = short_duration;
    }
  in
  let results =
    run_variants ?pool ~world ~samples
      [| base; { base with Blame_world.exclude_suspect_probes = false } |]
  in
  {
    Output.title =
      "Ablation: excluding the suspect's own probes (Section 3.4 rule), 20% colluders";
    header = rates_header;
    rows =
      [
        rates_row "rule ON (paper)" results.(0);
        rates_row "rule OFF" results.(1);
      ];
  }

let delta_sensitivity ?pool ~world ~deltas ~samples ~seed () =
  let configs =
    Array.map
      (fun delta ->
        {
          (Blame_world.paper_config ~colluding_fraction:0. ~seed) with
          Blame_world.duration = short_duration;
          delta;
        })
      deltas
  in
  let results = run_variants ?pool ~world ~samples configs in
  let rows =
    List.init (Array.length deltas) (fun i ->
        rates_row (Printf.sprintf "Delta = %.0f s" deltas.(i)) results.(i))
  in
  {
    Output.title = "Ablation: probe-window half-width Delta (honest probing)";
    header = rates_header;
    rows;
  }

let probe_rate_sensitivity ?pool ~world ~max_probe_times ~samples ~seed () =
  let configs =
    Array.map
      (fun max_probe_time ->
        {
          (Blame_world.paper_config ~colluding_fraction:0. ~seed) with
          Blame_world.duration = short_duration;
          max_probe_time;
        })
      max_probe_times
  in
  let results = run_variants ?pool ~world ~samples configs in
  let rows =
    List.init
      (Array.length max_probe_times)
      (fun i ->
        rates_row (Printf.sprintf "max_probe_time = %.0f s" max_probe_times.(i)) results.(i))
  in
  {
    Output.title = "Ablation: lightweight probing rate (honest probing)";
    header = rates_header;
    rows;
  }

let visibility ?pool ~world ~samples ~seed () =
  let base =
    {
      (Blame_world.paper_config ~colluding_fraction:0. ~seed) with
      Blame_world.duration = short_duration;
    }
  in
  let results =
    run_variants ?pool ~world ~samples
      [| base; { base with Blame_world.global_visibility = true } |]
  in
  {
    Output.title = "Ablation: snapshot visibility (forest F_A vs global gossip), honest probing";
    header = rates_header;
    rows =
      [ rates_row "forest (protocol)" results.(0); rates_row "global (upper bound)" results.(1) ];
  }

let probe_consolidation ?pool ~world ~group_sizes ~seed () =
  let rng = Prng.of_seed seed in
  let node_count = World.node_count world in
  let trees = Array.map Tree.physical_links world.World.trees in
  let per_tree_bytes = Bandwidth.heavyweight_probe_bytes Bandwidth.paper_params in
  (* One pre-split stream per group size (member sampling). *)
  let rows =
    Array.to_list
      (Pool.parallel_init_rng ?pool (Array.length group_sizes) ~rng ~f:(fun index rng ->
           let size = min group_sizes.(index) node_count in
           (* A stub's co-residents are modeled as a random member group;
              their trees share the transit core. *)
           let members = Prng.sample_without_replacement rng size node_count in
           let plan = Probe_sharing.plan ~trees ~members in
           [
             Output.cell_i size;
             Printf.sprintf "%.2f"
               (Probe_sharing.individual_bytes plan ~per_tree_bytes /. (1024. *. 1024.));
             Printf.sprintf "%.2f"
               (Probe_sharing.consolidated_bytes plan ~per_tree_bytes /. (1024. *. 1024.));
             Printf.sprintf "%.1f%%" (100. *. (1. -. plan.Probe_sharing.amortization));
           ]))
  in
  {
    Output.title =
      "Section 3.7: consolidated probing -- heavyweight cost with stub co-residents sharing";
    header = [ "group size"; "individual (MiB)"; "consolidated (MiB)"; "saving" ];
    rows;
  }

let run_all ?pool ~world ~samples ~seed () =
  [
    self_exclusion ?pool ~world ~samples ~seed ();
    delta_sensitivity ?pool ~world ~deltas:[| 15.; 30.; 60.; 120.; 240. |] ~samples ~seed ();
    probe_rate_sensitivity ?pool ~world ~max_probe_times:[| 60.; 120.; 300.; 600. |] ~samples
      ~seed ();
    visibility ?pool ~world ~samples ~seed ();
    probe_consolidation ?pool ~world ~group_sizes:[| 1; 2; 4; 8; 16 |] ~seed ();
  ]
