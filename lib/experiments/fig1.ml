module Jump_table_model = Concilium_overlay.Jump_table_model
module Routing_table = Concilium_overlay.Routing_table
module Poisson_binomial = Concilium_stats.Poisson_binomial
module Descriptive = Concilium_stats.Descriptive
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool

type point = {
  n : int;
  analytic_mean : float;
  analytic_std : float;
  monte_carlo_mean : float;
  monte_carlo_std : float;
}

let default_sizes = [| 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 |]

let run ?pool ~seed ~sizes ~trials () =
  let rng = Prng.of_seed seed in
  let slots = float_of_int (Routing_table.rows * Routing_table.columns) in
  let size_count = Array.length sizes in
  (* One independent stream per (size, trial), split before dispatch so each
     Monte Carlo overlay is identical for any domain count; flattening the
     pairs balances the load (large sizes dominate a per-size split). *)
  let samples =
    Pool.parallel_init_rng ?pool (size_count * trials) ~rng ~f:(fun task rng ->
        let n = sizes.(task / trials) in
        let occupancy = Jump_table_model.monte_carlo_occupancy ~rng ~n ~trials:1 in
        occupancy.(0))
  in
  let models = Pool.parallel_map ?pool sizes ~f:(fun n -> Jump_table_model.model ~n) in
  List.init size_count (fun index ->
      let model = models.(index) in
      let summary = Descriptive.summarize (Array.sub samples (index * trials) trials) in
      {
        n = sizes.(index);
        analytic_mean = model.Poisson_binomial.mu_phi /. slots;
        analytic_std = model.Poisson_binomial.sigma_phi /. slots;
        monte_carlo_mean = summary.Descriptive.mean;
        monte_carlo_std = summary.Descriptive.stddev;
      })

let table points =
  {
    Output.title = "Figure 1: jump-table occupancy, analytic model vs Monte Carlo";
    header = [ "N"; "model mean"; "model std"; "MC mean"; "MC std" ];
    rows =
      List.map
        (fun p ->
          [
            Output.cell_i p.n;
            Output.cell_f p.analytic_mean;
            Output.cell_f p.analytic_std;
            Output.cell_f p.monte_carlo_mean;
            Output.cell_f p.monte_carlo_std;
          ])
        points;
  }
