module World = Concilium_core.World
module Graph = Concilium_topology.Graph
module Tree = Concilium_tomography.Tree
module Bitset = Concilium_util.Bitset
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool

type point = {
  trees_included : int;
  mean_coverage : float;
  mean_vouchers : float;
  hosts : int;
}

(* Per-host measurement: coverage and voucher averages for every prefix of a
   randomly ordered peer-tree inclusion. Reads the world (and the
   pre-computed [forest] for this host), writes nothing shared; safe to run
   on any domain. *)
let host_curves world ~link_count ~forest ~rng host =
  let forest_size = float_of_int (Array.length forest) in
  if forest_size = 0. then None
  else begin
    let peer_count = Array.length world.World.peers.(host) in
    let coverage = Array.make (peer_count + 1) 0. in
    let vouchers = Array.make (peer_count + 1) 0. in
    let covered = Bitset.create link_count in
    let covered_count = ref 0 in
    let vouch_total = ref 0 in
    let include_tree index =
      Array.iter
        (fun link ->
          incr vouch_total;
          if not (Bitset.mem covered link) then begin
            Bitset.add covered link;
            incr covered_count
          end)
        (Tree.physical_links world.World.trees.(index))
    in
    let record k =
      coverage.(k) <- float_of_int !covered_count /. forest_size;
      (* Vouchers averaged over links covered so far. *)
      let denominator = max 1 !covered_count in
      vouchers.(k) <- float_of_int !vouch_total /. float_of_int denominator
    in
    include_tree host;
    record 0;
    let order = Array.copy world.World.peers.(host) in
    Prng.shuffle rng order;
    Array.iteri
      (fun i peer ->
        include_tree peer;
        record (i + 1))
      order;
    Some (coverage, vouchers)
  end

let run ?pool ~world ~rng ~host_sample () =
  let graph = world.World.generated.World.Generate.graph in
  let link_count = Graph.link_count graph in
  let node_count = World.node_count world in
  let sample_size = min host_sample node_count in
  let sampled = Prng.sample_without_replacement rng sample_size node_count in
  let max_peers =
    Array.fold_left
      (fun acc host -> max acc (Array.length world.World.peers.(host)))
      0 sampled
  in
  (* Pre-size the forest arrays before the fan-out: [World.forest_links]
     allocates a link bitset plus the result array per call, so computing
     them once up front keeps that churn out of the parallel tasks (and out
     of the measured region of the fig4 bench, whose fit it destabilised).
     The task only reads its host's array; bytes are unchanged. *)
  let forests = Array.map (fun host -> World.forest_links world host) sampled in
  (* One pre-split stream per sampled host (peer-inclusion order), then fan
     the hosts out; curves are merged in sample order afterwards, so the
     sums are identical for any domain count. *)
  let curves =
    Pool.parallel_init_rng ?pool sample_size ~rng ~f:(fun i rng ->
        host_curves world ~link_count ~forest:forests.(i) ~rng sampled.(i))
  in
  let coverage_sum = Array.make (max_peers + 1) 0. in
  let voucher_sum = Array.make (max_peers + 1) 0. in
  let host_count = Array.make (max_peers + 1) 0 in
  Array.iter
    (function
      | None -> ()
      | Some (coverage, vouchers) ->
          Array.iteri
            (fun k c ->
              coverage_sum.(k) <- coverage_sum.(k) +. c;
              voucher_sum.(k) <- voucher_sum.(k) +. vouchers.(k);
              host_count.(k) <- host_count.(k) + 1)
            coverage)
    curves;
  List.filter_map
    (fun k ->
      if host_count.(k) = 0 then None
      else
        Some
          {
            trees_included = k;
            mean_coverage = coverage_sum.(k) /. float_of_int host_count.(k);
            mean_vouchers = voucher_sum.(k) /. float_of_int host_count.(k);
            hosts = host_count.(k);
          })
    (List.init (max_peers + 1) (fun k -> k))

let table ?(max_rows = 30) points =
  let total = List.length points in
  let stride = max 1 (total / max_rows) in
  let rows =
    List.filteri
      (fun i _ -> i mod stride = 0 || i = total - 1)
      points
  in
  {
    Output.title = "Figure 4: peer trees sampled vs forest link coverage";
    header = [ "peer trees"; "coverage"; "mean vouchers/link"; "hosts" ];
    rows =
      List.map
        (fun p ->
          [
            Output.cell_i p.trees_included;
            Output.cell_pct p.mean_coverage;
            Printf.sprintf "%.2f" p.mean_vouchers;
            Output.cell_i p.hosts;
          ])
        rows;
  }
