(** Baseline comparators from the paper's related work (Section 5).

    - *RON-style*: resilient overlay networks always ascribe loss to the
      network; misbehaving overlay nodes must be found by human operators.
    - *Naive next-hop*: the opposite prior — every unacknowledged message
      convicts the forwarder (a reputation system with no tomography).
    - *Concilium*: Equation 2 blame with the 40% threshold.

    All three are judged against the simulator's ground truth over the same
    random drops, so the table quantifies exactly what collaborative
    tomography buys. *)

type row = {
  label : string;
  overall_accuracy : float;
  network_fault_accuracy : float;  (** drops truly caused by a bad link *)
  node_fault_accuracy : float;  (** drops truly caused by the forwarder *)
}

type result = {
  rows : row list;
  network_fault_samples : int;
  node_fault_samples : int;
}

(** Draws are sharded deterministically (shard count a pure function of
    [samples], pre-split streams): the result is identical for any domain
    count. *)
val run : ?pool:Concilium_util.Pool.t -> Blame_world.t -> samples:int -> result
val table : result -> Output.table
