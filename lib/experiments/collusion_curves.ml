module World = Concilium_core.World

let default_fractions = [| 0.; 0.05; 0.1; 0.2; 0.3 |]
let default_corroborations = [| 0.25; 0.5; 1.0 |]

type point = {
  fraction : float;
  corroboration : float;
  false_blame : float;
  missed_blame : float;
  innocent_samples : int;
  faulty_samples : int;
}

type result = {
  baseline : Blame_world.result;
  points : point array;
}

let point_of ~fraction ~corroboration (r : Blame_world.result) =
  {
    fraction;
    corroboration;
    false_blame = r.Blame_world.p_good;
    missed_blame = 1. -. r.Blame_world.p_faulty;
    innocent_samples = r.Blame_world.nonfaulty_samples;
    faulty_samples = r.Blame_world.faulty_samples;
  }

let run ?pool ~world ~samples ~bins ~seed ?(fractions = default_fractions)
    ?(corroborations = default_corroborations) () =
  (* One seed for the whole sweep: create's malice stream is identical in
     every cell, so coalitions are nested prefixes of one permutation. *)
  let cell ~fraction ~corroboration =
    let config =
      {
        (Blame_world.paper_config ~colluding_fraction:fraction ~seed) with
        Blame_world.corroboration;
      }
    in
    Blame_world.run ?pool (Blame_world.create ~world config) ~samples ~bins
  in
  let baseline = cell ~fraction:0. ~corroboration:1. in
  let points =
    Array.concat
      (Array.to_list
         (Array.map
            (fun corroboration ->
              Array.map
                (fun fraction ->
                  (* fraction-0 cells are recomputed, not aliased to the
                     baseline: their exact equality is the evidence that
                     the corroboration knob changes nothing without
                     colluders. *)
                  point_of ~fraction ~corroboration (cell ~fraction ~corroboration))
                fractions)
            corroborations))
  in
  { baseline; points }

let zero_adversary_consistent result =
  let base = point_of ~fraction:0. ~corroboration:1. result.baseline in
  Array.for_all
    (fun p ->
      p.fraction > 0.
      || (p.false_blame = base.false_blame
         && p.missed_blame = base.missed_blame
         && p.innocent_samples = base.innocent_samples
         && p.faulty_samples = base.faulty_samples))
    result.points

let false_blame_monotone result =
  (* points are corroboration-major with fractions ascending inside each
     group, so a violation is a same-corroboration neighbour that drops. *)
  let ok = ref true in
  Array.iteri
    (fun i p ->
      if i > 0 then begin
        let prev = result.points.(i - 1) in
        if prev.corroboration = p.corroboration && prev.false_blame > p.false_blame then
          ok := false
      end)
    result.points;
  !ok

let table result =
  {
    Output.title =
      "Blame accuracy under collusion: verdict error rates vs coalition size and corroboration \
       (fraction 0 rows recompute the honest baseline)";
    header =
      [ "fraction"; "corroboration"; "false blame"; "missed blame"; "innocent n"; "faulty n" ];
    rows =
      Array.to_list
        (Array.map
           (fun p ->
             [
               Printf.sprintf "%.2f" p.fraction;
               Printf.sprintf "%.2f" p.corroboration;
               Output.cell_pct p.false_blame;
               Output.cell_pct p.missed_blame;
               Output.cell_i p.innocent_samples;
               Output.cell_i p.faulty_samples;
             ])
           result.points);
  }
