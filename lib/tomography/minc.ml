type estimate = {
  logical : Logical_tree.t;
  rounds : int;
  gamma : float array;
  path_success : float array;
  link_success : float array;
}

(* Root of g(a) = (1 - gamma_k/a) - prod_j (1 - gamma_j/a) in (lo, 1].
   g(lo) <= 0 at lo = gamma_k and g is increasing towards 1 under the
   positive correlation the shared link induces; sampling noise can leave
   g(1) < 0, in which case the MLE clips to 1. *)
let solve_node ~gamma_k ~child_gammas =
  if gamma_k <= 0. then 0.
  else begin
    let g a =
      let product =
        Array.fold_left (fun acc gamma_j -> acc *. (1. -. (gamma_j /. a))) 1. child_gammas
      in
      1. -. (gamma_k /. a) -. product
    in
    if g 1. < 0. then 1.
    else begin
      (* Bisection with an early exit: the bracket starts at most 1 wide, so
         the tolerance is reached within ~40 halvings; the iteration cap only
         guards against pathological floating-point stalls. *)
      let lo = ref gamma_k and hi = ref 1. in
      let iterations = ref 0 in
      while !hi -. !lo > 1e-12 && !iterations < 60 do
        incr iterations;
        let mid = 0.5 *. (!lo +. !hi) in
        if g mid < 0. then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  end

let check_input logical ~acked =
  let rounds = Array.length acked in
  if rounds = 0 then invalid_arg "Minc.infer: no rounds";
  let leaf_count = Logical_tree.leaf_count logical in
  Array.iter
    (fun vector ->
      if Array.length vector <> leaf_count then
        invalid_arg "Minc.infer: ack vector width mismatch")
    acked

(* Shared tail: turn per-node subtree-ack counts into the MLE estimate. *)
let estimate_of_hits logical ~rounds hits =
  let count = Logical_tree.node_count logical in
  let gamma = Array.map (fun h -> float_of_int h /. float_of_int rounds) hits in
  let path_success = Array.make count 1. in
  for node = 0 to count - 1 do
    let children = Logical_tree.children logical node in
    if node = 0 then path_success.(0) <- 1.
    else if Array.length children = 0 then path_success.(node) <- gamma.(node)
    else begin
      let child_gammas = Array.map (fun child -> gamma.(child)) children in
      path_success.(node) <- solve_node ~gamma_k:gamma.(node) ~child_gammas
    end
  done;
  let link_success =
    Array.init count (fun node ->
        if node = 0 then 1.
        else begin
          let parent_success = path_success.(Logical_tree.parent logical node) in
          if parent_success <= 0. then 0.
          else min 1. (max 0. (path_success.(node) /. parent_success))
        end)
  in
  { logical; rounds; gamma; path_success; link_success }

(* gamma_k counts rounds in which some leaf below k acked. A single
   bottom-up sweep per round marks each acked leaf's logical node and
   propagates the mark to its parent: logical nodes are numbered in
   physical preorder (children carry larger indices than parents, see
   Logical_tree.of_tree), so one reverse pass reaches every ancestor.
   O(rounds * nodes), versus the reference's O(rounds * nodes * leaves). *)
let infer logical ~acked =
  check_input logical ~acked;
  let rounds = Array.length acked in
  let count = Logical_tree.node_count logical in
  let leaf_nodes = Logical_tree.leaves logical in
  let hits = Array.make count 0 in
  let reached = Array.make count false in
  Array.iter
    (fun vector ->
      Array.fill reached 0 count false;
      Array.iteri
        (fun leaf_index node -> if vector.(leaf_index) then reached.(node) <- true)
        leaf_nodes;
      for node = count - 1 downto 1 do
        if reached.(node) then begin
          hits.(node) <- hits.(node) + 1;
          reached.(Logical_tree.parent logical node) <- true
        end
      done;
      if reached.(0) then hits.(0) <- hits.(0) + 1)
    acked;
  estimate_of_hits logical ~rounds hits

(* The original quadratic-in-tree-size scan, kept verbatim as the oracle the
   tests and benchmarks compare [infer] against. *)
let infer_reference logical ~acked =
  check_input logical ~acked;
  let rounds = Array.length acked in
  let count = Logical_tree.node_count logical in
  let hits = Array.make count 0 in
  Array.iter
    (fun vector ->
      for node = 0 to count - 1 do
        if
          Array.exists
            (fun leaf_index -> vector.(leaf_index))
            (Logical_tree.descendant_leaves logical node)
        then hits.(node) <- hits.(node) + 1
      done)
    acked;
  estimate_of_hits logical ~rounds hits

let link_loss estimate node = 1. -. estimate.link_success.(node)

let suspect_physical_links estimate ~loss_threshold =
  let out = ref [] in
  for node = 1 to Logical_tree.node_count estimate.logical - 1 do
    if link_loss estimate node > loss_threshold then
      Array.iter (fun link -> out := link :: !out) (Logical_tree.chain estimate.logical node)
  done;
  List.sort_uniq Int.compare !out

let infer_from_rounds ?(trace = Concilium_obs.Trace.noop) ?parent ?(time = 0.) logical rounds =
  let module Trace = Concilium_obs.Trace in
  let span =
    Trace.span_open trace ~time ~cat:"tomography" ?parent
      ~args:
        [
          ("rounds", Trace.Int (Array.length rounds));
          ("nodes", Trace.Int (Logical_tree.node_count logical));
        ]
      "minc.solve"
  in
  let estimate = infer logical ~acked:(Probing.acked_matrix rounds) in
  Trace.span_close trace ~time
    ~args:[ ("root_gamma", Trace.Float estimate.gamma.(0)) ]
    span;
  estimate
