type estimate = {
  logical : Logical_tree.t;
  rounds : int;
  gamma : float array;
  path_success : float array;
  link_success : float array;
}

(* Root of g(a) = (1 - gamma_k/a) - prod_j (1 - gamma_j/a) in (lo, 1].
   g(lo) <= 0 at lo = gamma_k and g is increasing towards 1 under the
   positive correlation the shared link induces; sampling noise can leave
   g(1) < 0, in which case the MLE clips to 1. *)
let solve_node ~gamma_k ~child_gammas =
  if gamma_k <= 0. then 0.
  else begin
    let g a =
      let product =
        Array.fold_left (fun acc gamma_j -> acc *. (1. -. (gamma_j /. a))) 1. child_gammas
      in
      1. -. (gamma_k /. a) -. product
    in
    if g 1. < 0. then 1.
    else begin
      let lo = ref gamma_k and hi = ref 1. in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if g mid < 0. then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  end

let infer logical ~acked =
  let rounds = Array.length acked in
  if rounds = 0 then invalid_arg "Minc.infer: no rounds";
  let leaf_count = Logical_tree.leaf_count logical in
  Array.iter
    (fun vector ->
      if Array.length vector <> leaf_count then
        invalid_arg "Minc.infer: ack vector width mismatch")
    acked;
  let count = Logical_tree.node_count logical in
  (* gamma_k: fraction of rounds in which some leaf below k acked. *)
  let hits = Array.make count 0 in
  Array.iter
    (fun vector ->
      for node = 0 to count - 1 do
        if
          Array.exists
            (fun leaf_index -> vector.(leaf_index))
            (Logical_tree.descendant_leaves logical node)
        then hits.(node) <- hits.(node) + 1
      done)
    acked;
  let gamma = Array.map (fun h -> float_of_int h /. float_of_int rounds) hits in
  let path_success = Array.make count 1. in
  for node = 0 to count - 1 do
    let children = Logical_tree.children logical node in
    if node = 0 then path_success.(0) <- 1.
    else if Array.length children = 0 then path_success.(node) <- gamma.(node)
    else begin
      let child_gammas = Array.map (fun child -> gamma.(child)) children in
      path_success.(node) <- solve_node ~gamma_k:gamma.(node) ~child_gammas
    end
  done;
  let link_success =
    Array.init count (fun node ->
        if node = 0 then 1.
        else begin
          let parent_success = path_success.(Logical_tree.parent logical node) in
          if parent_success <= 0. then 0.
          else min 1. (max 0. (path_success.(node) /. parent_success))
        end)
  in
  { logical; rounds; gamma; path_success; link_success }

let link_loss estimate node = 1. -. estimate.link_success.(node)

let suspect_physical_links estimate ~loss_threshold =
  let out = ref [] in
  for node = 1 to Logical_tree.node_count estimate.logical - 1 do
    if link_loss estimate node > loss_threshold then
      Array.iter (fun link -> out := link :: !out) (Logical_tree.chain estimate.logical node)
  done;
  List.sort_uniq Int.compare !out

let infer_from_rounds logical rounds = infer logical ~acked:(Probing.acked_matrix rounds)
