type t = {
  physical : Tree.t;
  parents : int array;
  children : int array array;
  leaves : int array;
  chains : int array array;
  physical_nodes : int array;
  descendant_leaves : int array array;
}

let of_tree tree =
  let n = Tree.node_count tree in
  let physical_leaves = Tree.leaves tree in
  let is_leaf = Array.make n false in
  Array.iter (fun node -> is_leaf.(node) <- true) physical_leaves;
  (* Kept nodes: root, physical leaves, and branching points. *)
  let keep = Array.make n false in
  keep.(0) <- true;
  for node = 0 to n - 1 do
    if is_leaf.(node) || Array.length (Tree.children tree node) >= 2 then keep.(node) <- true
  done;
  let logical_of_physical = Array.make n (-1) in
  let kept = ref [] and kept_count = ref 0 in
  for node = 0 to n - 1 do
    if keep.(node) then begin
      logical_of_physical.(node) <- !kept_count;
      incr kept_count;
      kept := node :: !kept
    end
  done;
  let physical_nodes = Array.of_list (List.rev !kept) in
  let count = !kept_count in
  let parents = Array.make count (-1) in
  let chains = Array.make count [||] in
  for logical = 1 to count - 1 do
    let physical_node = physical_nodes.(logical) in
    (* Walk up through collapsed nodes to the nearest kept ancestor,
       collecting the physical chain top-down. *)
    let rec ascend node acc =
      let parent = Tree.parent tree node in
      let acc = Tree.parent_link tree node :: acc in
      if keep.(parent) then (parent, acc) else ascend parent acc
    in
    let ancestor, chain = ascend physical_node [] in
    parents.(logical) <- logical_of_physical.(ancestor);
    chains.(logical) <- Array.of_list chain
  done;
  let child_lists = Array.make count [] in
  for logical = count - 1 downto 1 do
    child_lists.(parents.(logical)) <- logical :: child_lists.(parents.(logical))
  done;
  let children = Array.map Array.of_list child_lists in
  let leaves = Array.map (fun node -> logical_of_physical.(node)) physical_leaves in
  (* Leaf index sets, computed bottom-up. *)
  let descendant_lists = Array.make count [] in
  Array.iteri
    (fun leaf_index logical ->
      descendant_lists.(logical) <- [ leaf_index ])
    leaves;
  (* Logical nodes are numbered in physical preorder, so children have
     larger indices than parents; a reverse sweep accumulates leaf sets. *)
  for logical = count - 1 downto 1 do
    let parent = parents.(logical) in
    descendant_lists.(parent) <- descendant_lists.(logical) @ descendant_lists.(parent)
  done;
  let descendant_leaves =
    Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) descendant_lists
  in
  { physical = tree; parents; children; leaves; chains; physical_nodes; descendant_leaves }

let physical t = t.physical
let node_count t = Array.length t.parents
let parent t node = t.parents.(node)
let children t node = t.children.(node)
let leaves t = Array.copy t.leaves
let chain t node = Array.copy t.chains.(node)
let physical_node t node = t.physical_nodes.(node)
let leaf_count t = Array.length t.leaves
let descendant_leaves t node = Array.copy t.descendant_leaves.(node)
