module Routes = Concilium_topology.Routes

type t = {
  root : int;
  routers : int array; (* tree node -> router id *)
  parents : int array;
  parent_links : int array;
  children : int array array;
  leaves : int array;
  by_router : (int, int) Hashtbl.t;
}

(* Growable parallel arrays during construction. *)
type building = {
  mutable b_routers : int array;
  mutable b_parents : int array;
  mutable b_links : int array;
  mutable b_count : int;
}

let push b ~router ~parent ~link =
  let capacity = Array.length b.b_routers in
  if b.b_count = capacity then begin
    let next = max 16 (2 * capacity) in
    let grow a = Array.append a (Array.make (next - capacity) (-1)) in
    b.b_routers <- grow b.b_routers;
    b.b_parents <- grow b.b_parents;
    b.b_links <- grow b.b_links
  end;
  b.b_routers.(b.b_count) <- router;
  b.b_parents.(b.b_count) <- parent;
  b.b_links.(b.b_count) <- link;
  b.b_count <- b.b_count + 1;
  b.b_count - 1

let of_paths ~root ~paths =
  let by_router = Hashtbl.create 256 in
  let b = { b_routers = [||]; b_parents = [||]; b_links = [||]; b_count = 0 } in
  ignore (push b ~router:root ~parent:(-1) ~link:(-1));
  Hashtbl.replace by_router root 0;
  let add_node router ~parent ~link =
    match Hashtbl.find_opt by_router router with
    | Some node ->
        if b.b_parents.(node) <> parent then
          invalid_arg "Tree.of_paths: paths do not form a tree";
        node
    | None ->
        let node = push b ~router ~parent ~link in
        Hashtbl.replace by_router router node;
        node
  in
  let leaf_set = Hashtbl.create 64 in
  let leaf_list = ref [] in
  Array.iter
    (fun path ->
      let nodes = path.Routes.nodes and links = path.Routes.links in
      if Array.length links > 0 then begin
        if nodes.(0) <> root then invalid_arg "Tree.of_paths: path does not start at root";
        let parent = ref 0 in
        for i = 1 to Array.length nodes - 1 do
          parent := add_node nodes.(i) ~parent:!parent ~link:links.(i - 1)
        done;
        if not (Hashtbl.mem leaf_set !parent) then begin
          Hashtbl.replace leaf_set !parent ();
          leaf_list := !parent :: !leaf_list
        end
      end)
    paths;
  let n = b.b_count in
  let routers = Array.sub b.b_routers 0 n in
  let parents = Array.sub b.b_parents 0 n in
  let parent_links = Array.sub b.b_links 0 n in
  let child_lists = Array.make n [] in
  for node = n - 1 downto 1 do
    child_lists.(parents.(node)) <- node :: child_lists.(parents.(node))
  done;
  let children = Array.map Array.of_list child_lists in
  {
    root;
    routers;
    parents;
    parent_links;
    children;
    leaves = Array.of_list (List.rev !leaf_list);
    by_router;
  }

let root t = t.root
let node_count t = Array.length t.routers
let router_of t node = t.routers.(node)
let parent t node = t.parents.(node)
let parent_link t node = t.parent_links.(node)
let children t node = t.children.(node)
let leaves t = Array.copy t.leaves

let leaf_of_router t router =
  match Hashtbl.find_opt t.by_router router with
  | Some node when Array.exists (( = ) node) t.leaves -> Some node
  | Some _ | None -> None

let physical_links t =
  let out = ref [] in
  for node = node_count t - 1 downto 1 do
    out := t.parent_links.(node) :: !out
  done;
  let array = Array.of_list !out in
  Array.sort Int.compare array;
  array

let path_links_to t node =
  let rec walk node acc =
    if node = 0 then acc else walk t.parents.(node) (t.parent_links.(node) :: acc)
  in
  Array.of_list (walk node [])
