(** Consolidated probing (paper Section 3.7).

    Hosts that trust each other and sit in the same stub network can take
    turns probing the multi-forest induced by their collective routing
    state, or delegate probing to a shared gateway. Links appearing in
    several members' trees are then probed once instead of once per member,
    amortising the heavyweight probing cost.

    The model here quantifies that saving: individual cost is proportional
    to the summed tree sizes, consolidated cost to the size of the union,
    with the per-link unit cost calibrated so a lone host's figure matches
    the Section 4.4 heavyweight budget. *)

type plan = {
  members : int array;  (** overlay nodes sharing the stub *)
  individual_links : int;  (** sum over members of their tree's link count *)
  consolidated_links : int;  (** distinct links in the multi-forest *)
  amortization : float;  (** consolidated / individual, in (0, 1] *)
}

val plan : trees:int array array -> members:int array -> plan
(** [trees.(v)] is the sorted physical-link array of node v's probe tree
    (as produced by {!Tree.physical_links}). *)

type report = { member : int; link : int; up : bool }
(** One member's claimed observation of one shared link. *)

type consensus = {
  link : int;
  up : bool;  (** majority verdict; exact ties resolve to down *)
  up_votes : int;
  down_votes : int;
  unanimous : bool;
}

val consolidate : ?prov:Concilium_provenance.Graph.t -> report list -> consensus list
(** Majority-vote consolidation of the collective's link reports, one
    consensus per reported link, sorted by link. When [prov] is a
    recording graph, each consensus is recorded as a consolidation node
    whose probe children are the counted votes (one per member, in
    counting order, at time 0 — shared reports carry no timestamp).

    Each member gets exactly one vote per link — duplicate reports from
    the same member collapse, latest winning — so a compromised member
    stuffing mutually-corroborating copies of a lie gains nothing over
    stating it once. With an honest majority among the reporters of a
    link, the consensus equals ground truth; in particular a single liar
    can never flip a link that two or more honest members reported. Exact
    ties resolve to down: a split collective treats the link as suspect
    and re-probes instead of vouching for it. *)

val individual_bytes : plan -> per_tree_bytes:float -> float
(** Total probing cost if every member probes alone: members *
    per_tree_bytes (the Section 4.4 figure). *)

val consolidated_bytes : plan -> per_tree_bytes:float -> float
(** Cost when the collective probes each distinct link once: the individual
    total scaled by the amortization factor. *)
