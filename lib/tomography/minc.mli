(** Maximum-likelihood link-loss inference on logical trees — the
    MINC/Duffield estimator the paper's heavyweight tomography uses.

    Given per-round ack vectors, compute for each logical node k the
    empirical probability gamma_k that some leaf below k acked a round.
    The MLE of A_k — the probability a probe reaches k — is the unique root
    in (gamma_k, 1] of

      1 - gamma_k / A = prod over children j of (1 - gamma_j / A),

    solved here by bisection; A is 1 at the root (the source) and gamma at
    the leaves. The success rate of the logical link above k is then
    A_k / A_parent(k). Inference granularity is the logical link: loss
    inside an unbranched physical chain cannot be localised further by any
    tomographic method. *)

type estimate = {
  logical : Logical_tree.t;
  rounds : int;
  gamma : float array;  (** per logical node: empirical subtree-ack rate *)
  path_success : float array;  (** A_k per logical node *)
  link_success : float array;  (** success of the logical link above each node; 1.0 at the root *)
}

val infer : Logical_tree.t -> acked:bool array array -> estimate
(** [acked] is round-major: [acked.(r).(leaf_index)]. Computes gamma with a
    single bottom-up ack-propagation sweep per round — O(rounds * nodes).
    @raise Invalid_argument if no rounds are given or a vector's width
    disagrees with the tree's leaf count. *)

val infer_reference : Logical_tree.t -> acked:bool array array -> estimate
(** The original O(rounds * nodes * leaves) implementation (a per-node
    [Array.exists] over descendant leaf sets), retained as the oracle that
    tests and benchmarks check {!infer} against. Produces identical
    estimates. *)

val link_loss : estimate -> int -> float
(** [1 - link_success] for a logical node. *)

val suspect_physical_links : estimate -> loss_threshold:float -> int list
(** Physical links lying in logical chains whose inferred loss exceeds the
    threshold — the links Concilium treats as "probed down". Sorted,
    deduplicated. *)

val infer_from_rounds :
  ?trace:Concilium_obs.Trace.t ->
  ?parent:Concilium_obs.Trace.span ->
  ?time:float ->
  Logical_tree.t ->
  Probing.round array ->
  estimate
(** Convenience: {!infer} over {!Probing.acked_matrix}. When [trace] is a
    recording sink the inference is wrapped in a ["minc.solve"] span
    (category ["tomography"]) stamped at [time] (default 0), nested under
    [parent] if given; with the default noop sink the wrapper costs one
    branch. *)
