module Graph = Concilium_provenance.Graph

type plan = {
  members : int array;
  individual_links : int;
  consolidated_links : int;
  amortization : float;
}

let plan ~trees ~members =
  if Array.length members = 0 then invalid_arg "Probe_sharing.plan: no members";
  let distinct = Hashtbl.create 1024 in
  let individual = ref 0 in
  Array.iter
    (fun member ->
      let links = trees.(member) in
      individual := !individual + Array.length links;
      Array.iter (fun link -> Hashtbl.replace distinct link ()) links)
    members;
  let consolidated = Hashtbl.length distinct in
  {
    members = Array.copy members;
    individual_links = !individual;
    consolidated_links = consolidated;
    amortization =
      (if !individual = 0 then 1. else float_of_int consolidated /. float_of_int !individual);
  }

type report = { member : int; link : int; up : bool }

type consensus = {
  link : int;
  up : bool;
  up_votes : int;
  down_votes : int;
  unanimous : bool;
}

let consolidate ?(prov = Graph.noop) reports =
  (* One vote per (member, link), latest report winning — so a member
     stuffing duplicate corroborating reports moves nothing. *)
  let votes = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = (r.member, r.link) in
      if not (Hashtbl.mem votes key) then order := key :: !order;
      Hashtbl.replace votes key r.up)
    reports;
  let by_link = Hashtbl.create 64 in
  List.iter
    (fun ((_, link) as key) ->
      let up = Hashtbl.find votes key in
      let ups, downs =
        match Hashtbl.find_opt by_link link with Some c -> c | None -> (0, 0)
      in
      Hashtbl.replace by_link link (if up then (ups + 1, downs) else (ups, downs + 1)))
    !order;
  let links =
    List.sort Int.compare (Hashtbl.fold (fun link _ acc -> link :: acc) by_link [])
  in
  List.map
    (fun link ->
      let up_votes, down_votes = Hashtbl.find by_link link in
      let consensus =
        {
          link;
          (* Ties resolve down: a split collective treats the link as
             suspect and re-probes rather than vouching for it. *)
          up = up_votes > down_votes;
          up_votes;
          down_votes;
          unanimous = up_votes = 0 || down_votes = 0;
        }
      in
      (* Each consensus joins the provenance DAG with the counted votes as
         probe children (in first-report member order — the counting
         order), so a verdict leaning on shared tomography can show which
         member claimed what. *)
      if Graph.enabled prov then begin
        let cnode =
          Graph.consolidation prov ~link ~up:consensus.up ~up_votes ~down_votes
        in
        List.iter
          (fun ((member, l) as key) ->
            if l = link then
              Graph.edge prov ~parent:cnode
                ~child:
                  (Graph.probe prov ~prober:member ~link ~time:0.
                     ~up:(Hashtbl.find votes key) ~tapped:false ~forged:false))
          (List.rev !order)
      end;
      consensus)
    links

let individual_bytes plan ~per_tree_bytes =
  float_of_int (Array.length plan.members) *. per_tree_bytes

let consolidated_bytes plan ~per_tree_bytes =
  individual_bytes plan ~per_tree_bytes *. plan.amortization
