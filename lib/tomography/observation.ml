type observation = { time : float; prober : int; link : int; up : bool }

(* Per-link lists, newest first; probes arrive in near-chronological order
   so queries reverse once. *)
type t = { table : (int, observation list ref) Hashtbl.t; mutable count : int }

let create () = { table = Hashtbl.create 1024; count = 0 }

let record t observation =
  (match Hashtbl.find_opt t.table observation.link with
  | Some cell -> cell := observation :: !cell
  | None -> Hashtbl.replace t.table observation.link (ref [ observation ]));
  t.count <- t.count + 1

let count t = t.count

let on_link t ~link ~lo ~hi =
  match Hashtbl.find_opt t.table link with
  | None -> []
  | Some cell ->
      List.rev
        (List.filter (fun obs -> obs.time >= lo && obs.time <= hi) !cell)

let latest_on_link t ~link =
  match Hashtbl.find_opt t.table link with
  | None | Some { contents = [] } -> None
  | Some { contents = newest :: _ } -> Some newest

let prune_before t horizon =
  (* Each cell is filtered independently; the visit order cannot change the
     outcome.  lint: allow hashtbl-order *)
  Hashtbl.iter
    (fun _ cell ->
      let kept = List.filter (fun obs -> obs.time >= horizon) !cell in
      t.count <- t.count - (List.length !cell - List.length kept);
      cell := kept)
    t.table
