(** Deterministic chaos injection: a composable, PRNG-seeded fault-plan DSL
    that compiles onto an {!Engine} and replays bit-identically.

    The paper's evaluation freezes membership and assumes a benign control
    plane (Section 4.2); this module supplies the missing adversity as pure
    data. A {!plan} is a list of timed faults — link flaps, burst loss,
    partitions between router sets, node crash/restart on top of {!Churn},
    DHT replica loss, and delay/duplication of control messages. Plans are
    sampled from a seeded {!Concilium_util.Prng} {e before} any parallel
    fan-out, so a scenario produces the same transcript for any domain
    count; compiling the same plan twice onto fresh engines yields the same
    event sequence.

    Layering: this module knows links, nodes and time. Protocol-level
    reactions (what a lost DHT replica or a delayed control message means)
    live with the callers, wired through {!compile}'s hooks and the pure
    query functions. *)

type fault =
  | Link_flap of { link : int; start : float; duration : float }
      (** the link is bad for [start, start + duration) *)
  | Burst_loss of { links : int array; start : float; duration : float }
      (** a correlated incident: every listed link goes bad at once *)
  | Partition of { cut : int array; start : float; duration : float }
      (** sever every link of a cut set, isolating one router set from
          another; build cuts with {!cut_of_paths} *)
  | Node_crash of { node : int; start : float; duration : float }
      (** the node is offline (crash then restart); composes with churn via
          {!node_online} *)
  | Replica_loss of { node : int; time : float }
      (** the node loses its durable store (e.g. its DHT replica contents)
          at [time]; delivered to the caller via [on_replica_loss] *)
  | Control_delay of { start : float; duration : float; extra : float }
      (** control-plane messages started in the window incur [extra]
          seconds of added latency *)
  | Control_duplication of { start : float; duration : float; copies : int }
      (** control-plane publications in the window are delivered [copies]
          times; receivers must be idempotent *)

type plan = fault list

type config = {
  link_flaps_per_hour : float;
  flap_mean_duration : float;
  bursts_per_hour : float;
  burst_width : int;  (** links per correlated burst *)
  burst_mean_duration : float;
  partitions_per_hour : float;
  partition_mean_duration : float;
  crashes_per_hour : float;
  crash_mean_duration : float;
  replica_losses_per_hour : float;
  delays_per_hour : float;
  delay_mean_duration : float;
  delay_extra : float;
  duplications_per_hour : float;
  duplication_mean_duration : float;
  duplication_copies : int;
}

val quiet : config
(** All rates zero: sampling yields the empty plan (the control scenario). *)

val default_config : config
(** Moderate adversity for soak runs: a few of each fault family per
    simulated hour, durations in the minutes range. *)

val paper_rates : config
(** Fault pressure calibrated to the paper's workload intensity (Section
    4.2 keeps 5%% of links bad with 15-minute downtimes): flaps matching
    that duty cycle, plus occasional crashes, replica losses and
    control-plane interference. *)

val sample :
  rng:Concilium_util.Prng.t ->
  config:config ->
  links:int array ->
  nodes:int ->
  cuts:int array array ->
  horizon:float ->
  plan
(** Draw a plan over [0, horizon): Poisson arrivals per fault family at the
    configured rates, exponential durations around the configured means,
    victims uniform over [links] / [nodes] / [cuts]. Families whose victim
    pool is empty are skipped. The result is sorted by start time (ties by
    construction order), so equal seeds give equal plans. *)

type adversary =
  | Collusion of {
      members : int array;
      drop_probability : float;
      corroboration : float;
      start : float;
      duration : float;
    }
      (** a forwarder coalition: members drop forwarded episodes with
          [drop_probability] while corroborating each other's probe reports
          (claiming a colluder's links healthy look bad, i.e. shielding the
          dropper) with probability [corroboration] per report *)
  | Lying_reporters of {
      reporters : int array;
      victim : int;
      corroboration : float;
      start : float;
      duration : float;
    }
      (** tomography liars: reporters bias their probe observations to frame
          [victim]'s links as bad, each lie drawn with probability
          [corroboration] *)
  | Eclipse of { attackers : int array; victim : int; start : float; duration : float }
      (** targeted joins: attackers wedge themselves into overlay routes
          adjacent to [victim] so they can intercept its traffic *)
  | Biased_sampling of {
      samplers : int array;
      favored : int;
      start : float;
      duration : float;
    }
      (** peer-sampling bias: samplers over-advertise [favored] (SecureCyclon's
          threat model), skewing who gets probed and judged *)

type adversary_plan = adversary list
(** Adversary clauses are pure data, like faults: chaos samples {e who} is
    compromised, {e when}, and with what intensity. The semantics — how a
    clause intercepts and forges protocol messages — are compiled above the
    core by [Concilium_adversary] into protocol tap functions, keeping this
    module below the protocol in the layering. *)

type adversary_config = {
  collusions_per_hour : float;
  collusion_size : int;
  collusion_drop_probability : float;
  collusion_corroboration : float;
  collusion_mean_duration : float;
  lying_per_hour : float;
  lying_size : int;
  lying_corroboration : float;
  lying_mean_duration : float;
  eclipses_per_hour : float;
  eclipse_size : int;
  eclipse_mean_duration : float;
  biased_per_hour : float;
  biased_size : int;
  biased_mean_duration : float;
}

val no_adversaries : adversary_config
(** All rates and sizes zero: sampling yields the empty plan. *)

val default_adversary_config : adversary_config
(** Moderate adversarial pressure for soak runs: roughly one coalition and
    one lying-reporter cell per simulated hour, occasional eclipse and
    sampling-bias campaigns, 15-minute mean campaign durations. *)

val sample_adversaries :
  rng:Concilium_util.Prng.t ->
  config:adversary_config ->
  nodes:int ->
  ?peers_of:(int -> int array) ->
  horizon:float ->
  unit ->
  adversary_plan
(** Draw adversary campaigns over [0, horizon) under the same discipline as
    {!sample}: Poisson arrivals per strategy family, exponential durations,
    members/victims uniform over [0, nodes). Lying reporters and biased
    samplers never include their own victim/favored node. Eclipse attackers
    are drawn from [peers_of victim] when provided (an eclipse needs nodes
    already adjacent to the victim's routing state) and fall back to
    arbitrary non-victim nodes otherwise. Fewer than two nodes yields the
    empty plan. Sorted by start time; equal seeds give equal plans. *)

val adversary_active : adversary -> time:float -> bool
(** Whether the campaign's [start, start + duration) window covers [time]. *)

val adversary_counts : adversary_plan -> (string * int) list
(** Strategy-family histogram in a fixed order ("collusion",
    "lying_reporters", "eclipse", "biased_sampling") — transcript-friendly. *)

val cut_of_paths : paths:(bool * bool * int array) list -> int array
(** Links that realise a partition: given each known path as (side of its
    source, side of its destination, traversed links), return the links
    used by some cross-side path but by no same-side path — severing them
    separates the sides without collateral damage to same-side routes.
    Sorted ascending. *)

type t
(** A compiled plan: engine events are scheduled, crash/control windows are
    queryable. *)

val compile :
  ?obs:Concilium_obs.Trace.t ->
  ?on_replica_loss:(node:int -> time:float -> unit) ->
  engine:Engine.t ->
  link_state:Link_state.t ->
  plan ->
  t
(** Schedule the plan's link events onto the engine. Overlapping link
    faults are reference-counted: a link returns to its pre-chaos status
    only when its last active fault ends, and a link already bad for other
    reasons (e.g. a replayed {!Failures} history) is not repaired by chaos.
    Faults whose start precedes the engine clock are clamped to fire
    immediately. [on_replica_loss] fires at each {!Replica_loss} time.

    [obs] (default noop) traces every fault under category ["chaos"]:
    link-family faults emit start/end instants from inside the already-
    scheduled engine actions (tracing adds no engine events, so it cannot
    perturb the run); window faults (crash, control delay/duplication) are
    interval queries rather than events and trace once at compile time with
    their plan start times. *)

val node_online : t -> time:float -> int -> bool
(** [false] while a {!Node_crash} interval covers [time]. Compose with
    churn: [fun ~time v -> Churn.is_online churn ~host:v ~time
    && Chaos.node_online chaos ~time v]. *)

val control_latency : t -> time:float -> float
(** Added control-plane latency at [time]: the sum of the [extra] of every
    active {!Control_delay} window (0 outside them). *)

val put_copies : t -> time:float -> int
(** Delivery multiplicity for control publications at [time]: the maximum
    [copies] over active {!Control_duplication} windows, 1 outside them. *)

val fault_counts : plan -> (string * int) list
(** Fault-family histogram in a fixed order ("link_flap", "burst_loss",
    "partition", "node_crash", "replica_loss", "control_delay",
    "control_duplication") — transcript-friendly. *)
