module Prng = Concilium_util.Prng
module Beta = Concilium_stats.Beta
module Routes = Concilium_topology.Routes

type config = {
  target_bad_fraction : float;
  mean_downtime : float;
  downtime_stddev : float;
  depth_alpha : float;
  depth_beta : float;
  min_downtime : float;
}

let paper_config =
  {
    target_bad_fraction = 0.05;
    mean_downtime = 900.;
    downtime_stddev = 450.;
    depth_alpha = 0.9;
    depth_beta = 0.6;
    min_downtime = 5.;
  }

type t = {
  history : Link_history.t;
  relevant_links : int array;
  failure_events : int;
}

let relevant_links_of_routes routes =
  (* A bitset over the link-id range instead of a hashtable: link ids are
     dense ints, and Bitset.iter yields them already sorted. *)
  let max_link = ref (-1) in
  Array.iter
    (fun path ->
      Array.iter (fun link -> if link > !max_link then max_link := link) path.Routes.links)
    routes;
  if !max_link < 0 then [||]
  else begin
    let seen = Concilium_util.Bitset.create (!max_link + 1) in
    Array.iter
      (fun path -> Array.iter (fun link -> Concilium_util.Bitset.add seen link) path.Routes.links)
      routes;
    let out = Array.make (Concilium_util.Bitset.cardinal seen) 0 in
    let next = ref 0 in
    Concilium_util.Bitset.iter
      (fun link ->
        out.(!next) <- link;
        incr next)
      seen;
    out
  end

let pick_victim rng config routes =
  (* A random overlay route, then a beta-distributed depth along it. The
     beta's mass near 0 and 1 lands failures on last-mile links at either
     end; the (lighter) middle lands in the core. *)
  let rec loop attempts =
    if attempts = 0 then None
    else begin
      let path = Prng.choose rng routes in
      let hops = Routes.hop_count path in
      if hops = 0 then loop (attempts - 1)
      else begin
        let depth = Beta.sample rng ~alpha:config.depth_alpha ~beta:config.depth_beta in
        let index = min (hops - 1) (int_of_float (depth *. float_of_int hops)) in
        Some path.Routes.links.(index)
      end
    end
  in
  loop 16

let sample_downtime rng config =
  max config.min_downtime
    (Prng.gaussian rng ~mu:config.mean_downtime ~sigma:config.downtime_stddev)

let generate ~rng ~config ~link_count ~routes ~duration =
  if Array.length routes = 0 then invalid_arg "Failures.generate: no routes";
  if duration <= 0. then invalid_arg "Failures.generate: non-positive duration";
  let relevant = relevant_links_of_routes routes in
  if Array.length relevant = 0 then invalid_arg "Failures.generate: routes have no links";
  let history = Link_history.create ~link_count in
  let events = ref 0 in
  let target_concurrent = config.target_bad_fraction *. float_of_int (Array.length relevant) in
  let fail ~start ~residual_fraction =
    match pick_victim rng config routes with
    | None -> ()
    | Some link ->
        if not (Link_history.is_bad_at history ~link ~time:start) then begin
          let downtime = sample_downtime rng config *. residual_fraction in
          Link_history.add_interval history ~link ~start ~finish:(start +. downtime);
          incr events
        end
  in
  (* Warm start: the target number of links are already mid-failure, each
     with a uniform residual fraction of its downtime remaining. *)
  let warm = int_of_float (Float.round target_concurrent) in
  for _ = 1 to warm do
    fail ~start:0. ~residual_fraction:(Prng.uniform rng)
  done;
  (* Steady state: Poisson failure arrivals at rate target / mean_downtime
     keep the expected concurrent-failure count at the target. *)
  let rate = target_concurrent /. config.mean_downtime in
  let clock = ref (Prng.exponential rng ~rate) in
  while !clock < duration do
    fail ~start:!clock ~residual_fraction:1.;
    clock := !clock +. Prng.exponential rng ~rate
  done;
  { history; relevant_links = relevant; failure_events = !events }

let mean_bad_fraction t ~duration ~samples =
  if samples <= 0 then invalid_arg "Failures.mean_bad_fraction: need samples";
  let acc = ref 0. in
  for i = 0 to samples - 1 do
    let time = duration *. (float_of_int i +. 0.5) /. float_of_int samples in
    acc := !acc +. Link_history.bad_fraction_at t.history ~time ~relevant:t.relevant_links
  done;
  !acc /. float_of_int samples
