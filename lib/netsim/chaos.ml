module Prng = Concilium_util.Prng
module Trace = Concilium_obs.Trace

type fault =
  | Link_flap of { link : int; start : float; duration : float }
  | Burst_loss of { links : int array; start : float; duration : float }
  | Partition of { cut : int array; start : float; duration : float }
  | Node_crash of { node : int; start : float; duration : float }
  | Replica_loss of { node : int; time : float }
  | Control_delay of { start : float; duration : float; extra : float }
  | Control_duplication of { start : float; duration : float; copies : int }

type plan = fault list

type config = {
  link_flaps_per_hour : float;
  flap_mean_duration : float;
  bursts_per_hour : float;
  burst_width : int;
  burst_mean_duration : float;
  partitions_per_hour : float;
  partition_mean_duration : float;
  crashes_per_hour : float;
  crash_mean_duration : float;
  replica_losses_per_hour : float;
  delays_per_hour : float;
  delay_mean_duration : float;
  delay_extra : float;
  duplications_per_hour : float;
  duplication_mean_duration : float;
  duplication_copies : int;
}

let quiet =
  {
    link_flaps_per_hour = 0.;
    flap_mean_duration = 0.;
    bursts_per_hour = 0.;
    burst_width = 0;
    burst_mean_duration = 0.;
    partitions_per_hour = 0.;
    partition_mean_duration = 0.;
    crashes_per_hour = 0.;
    crash_mean_duration = 0.;
    replica_losses_per_hour = 0.;
    delays_per_hour = 0.;
    delay_mean_duration = 0.;
    delay_extra = 0.;
    duplications_per_hour = 0.;
    duplication_mean_duration = 0.;
    duplication_copies = 1;
  }

let default_config =
  {
    link_flaps_per_hour = 6.;
    flap_mean_duration = 120.;
    bursts_per_hour = 2.;
    burst_width = 4;
    burst_mean_duration = 180.;
    partitions_per_hour = 1.;
    partition_mean_duration = 300.;
    crashes_per_hour = 3.;
    crash_mean_duration = 240.;
    replica_losses_per_hour = 1.;
    delays_per_hour = 2.;
    delay_mean_duration = 300.;
    delay_extra = 5.;
    duplications_per_hour = 2.;
    duplication_mean_duration = 300.;
    duplication_copies = 2;
  }

(* The paper keeps 5% of route-relevant links bad with 15-minute mean
   downtimes (Section 4.2). With per-hour flap arrivals f and mean duration
   d the expected concurrently-bad count is f*d/3600; the soak scenarios
   pick the flap rate per link pool at compile size, so here we encode the
   per-run intensity used by bin/chaos.exe's "paper" scenarios. *)
let paper_rates =
  {
    link_flaps_per_hour = 12.;
    flap_mean_duration = 900.;
    bursts_per_hour = 1.;
    burst_width = 3;
    burst_mean_duration = 900.;
    partitions_per_hour = 0.5;
    partition_mean_duration = 600.;
    crashes_per_hour = 2.;
    crash_mean_duration = 600.;
    replica_losses_per_hour = 0.5;
    delays_per_hour = 1.;
    delay_mean_duration = 600.;
    delay_extra = 10.;
    duplications_per_hour = 1.;
    duplication_mean_duration = 600.;
    duplication_copies = 2;
  }

let start_of = function
  | Link_flap { start; _ }
  | Burst_loss { start; _ }
  | Partition { start; _ }
  | Node_crash { start; _ }
  | Control_delay { start; _ }
  | Control_duplication { start; _ } ->
      start
  | Replica_loss { time; _ } -> time

(* Poisson arrivals over [0, horizon) at [per_hour], each arrival mapped
   through [make]. Arrival times come out increasing, so a stable sort on
   start keeps generation order within ties. *)
let arrivals ~rng ~per_hour ~horizon ~make acc =
  if per_hour <= 0. then acc
  else begin
    let rate = per_hour /. 3600. in
    let out = ref acc in
    let clock = ref (Prng.exponential rng ~rate) in
    while !clock < horizon do
      out := make !clock :: !out;
      clock := !clock +. Prng.exponential rng ~rate
    done;
    !out
  end

let duration_draw rng ~mean = if mean <= 0. then 0. else Prng.exponential rng ~rate:(1. /. mean)

let sample ~rng ~config ~links ~nodes ~cuts ~horizon =
  if horizon <= 0. then invalid_arg "Chaos.sample: non-positive horizon";
  let faults = ref [] in
  if Array.length links > 0 then begin
    faults :=
      arrivals ~rng ~per_hour:config.link_flaps_per_hour ~horizon
        ~make:(fun start ->
          Link_flap
            {
              link = Prng.choose rng links;
              start;
              duration = duration_draw rng ~mean:config.flap_mean_duration;
            })
        !faults;
    if config.burst_width > 0 then
      faults :=
        arrivals ~rng ~per_hour:config.bursts_per_hour ~horizon
          ~make:(fun start ->
            let width = min config.burst_width (Array.length links) in
            let picks = Prng.sample_without_replacement rng width (Array.length links) in
            Burst_loss
              {
                links = Array.map (fun i -> links.(i)) picks;
                start;
                duration = duration_draw rng ~mean:config.burst_mean_duration;
              })
          !faults
  end;
  if Array.length cuts > 0 then
    faults :=
      arrivals ~rng ~per_hour:config.partitions_per_hour ~horizon
        ~make:(fun start ->
          Partition
            {
              cut = Prng.choose rng cuts;
              start;
              duration = duration_draw rng ~mean:config.partition_mean_duration;
            })
        !faults;
  if nodes > 0 then begin
    faults :=
      arrivals ~rng ~per_hour:config.crashes_per_hour ~horizon
        ~make:(fun start ->
          Node_crash
            {
              node = Prng.int rng nodes;
              start;
              duration = duration_draw rng ~mean:config.crash_mean_duration;
            })
        !faults;
    faults :=
      arrivals ~rng ~per_hour:config.replica_losses_per_hour ~horizon
        ~make:(fun time -> Replica_loss { node = Prng.int rng nodes; time })
        !faults
  end;
  faults :=
    arrivals ~rng ~per_hour:config.delays_per_hour ~horizon
      ~make:(fun start ->
        Control_delay
          {
            start;
            duration = duration_draw rng ~mean:config.delay_mean_duration;
            extra = config.delay_extra;
          })
      !faults;
  faults :=
    arrivals ~rng ~per_hour:config.duplications_per_hour ~horizon
      ~make:(fun start ->
        Control_duplication
          {
            start;
            duration = duration_draw rng ~mean:config.duplication_mean_duration;
            copies = max 1 config.duplication_copies;
          })
      !faults;
  List.stable_sort (fun a b -> Float.compare (start_of a) (start_of b)) (List.rev !faults)

(* ---------- Adversary clauses ---------- *)

(* Adversary clauses are pure data: chaos samples *who* is compromised,
   *when*, and with what intensity, under the same seeded Poisson-arrival
   discipline as faults. The *semantics* — what a colluding forwarder or a
   lying reporter actually does with protocol messages — live above the
   core in [Concilium_adversary], which compiles these clauses into
   protocol tap functions. Keeping the clauses behaviour-free preserves
   the layering (netsim sits below core). *)

type adversary =
  | Collusion of {
      members : int array;
      drop_probability : float;
      corroboration : float;
      start : float;
      duration : float;
    }
  | Lying_reporters of {
      reporters : int array;
      victim : int;
      corroboration : float;
      start : float;
      duration : float;
    }
  | Eclipse of { attackers : int array; victim : int; start : float; duration : float }
  | Biased_sampling of {
      samplers : int array;
      favored : int;
      start : float;
      duration : float;
    }

type adversary_plan = adversary list

type adversary_config = {
  collusions_per_hour : float;
  collusion_size : int;
  collusion_drop_probability : float;
  collusion_corroboration : float;
  collusion_mean_duration : float;
  lying_per_hour : float;
  lying_size : int;
  lying_corroboration : float;
  lying_mean_duration : float;
  eclipses_per_hour : float;
  eclipse_size : int;
  eclipse_mean_duration : float;
  biased_per_hour : float;
  biased_size : int;
  biased_mean_duration : float;
}

let no_adversaries =
  {
    collusions_per_hour = 0.;
    collusion_size = 0;
    collusion_drop_probability = 0.;
    collusion_corroboration = 0.;
    collusion_mean_duration = 0.;
    lying_per_hour = 0.;
    lying_size = 0;
    lying_corroboration = 0.;
    lying_mean_duration = 0.;
    eclipses_per_hour = 0.;
    eclipse_size = 0;
    eclipse_mean_duration = 0.;
    biased_per_hour = 0.;
    biased_size = 0;
    biased_mean_duration = 0.;
  }

let default_adversary_config =
  {
    collusions_per_hour = 1.;
    collusion_size = 3;
    collusion_drop_probability = 0.8;
    collusion_corroboration = 1.;
    collusion_mean_duration = 900.;
    lying_per_hour = 1.;
    lying_size = 3;
    lying_corroboration = 1.;
    lying_mean_duration = 900.;
    eclipses_per_hour = 0.5;
    eclipse_size = 4;
    eclipse_mean_duration = 900.;
    biased_per_hour = 0.5;
    biased_size = 3;
    biased_mean_duration = 900.;
  }

let adversary_start_of = function
  | Collusion { start; _ }
  | Lying_reporters { start; _ }
  | Eclipse { start; _ }
  | Biased_sampling { start; _ } ->
      start

(* [k] distinct overlay nodes, ascending (sample_without_replacement
   returns sorted indices, which here are the node ids themselves). *)
let pick_nodes rng ~nodes k =
  let k = min k nodes in
  Prng.sample_without_replacement rng k nodes

(* [k] distinct nodes excluding [victim]: sample from an [nodes-1]-sized
   index space and shift indices at or above the victim up by one. *)
let pick_nodes_excluding rng ~nodes ~victim k =
  let k = min k (nodes - 1) in
  let picks = Prng.sample_without_replacement rng k (nodes - 1) in
  Array.map (fun i -> if i >= victim then i + 1 else i) picks

let sample_adversaries ~rng ~config ~nodes ?peers_of ~horizon () =
  if horizon <= 0. then invalid_arg "Chaos.sample_adversaries: non-positive horizon";
  if nodes < 2 then []
  else begin
    let advs = ref [] in
    if config.collusion_size > 0 then
      advs :=
        arrivals ~rng ~per_hour:config.collusions_per_hour ~horizon
          ~make:(fun start ->
            Collusion
              {
                members = pick_nodes rng ~nodes config.collusion_size;
                drop_probability = config.collusion_drop_probability;
                corroboration = config.collusion_corroboration;
                start;
                duration = duration_draw rng ~mean:config.collusion_mean_duration;
              })
          !advs;
    if config.lying_size > 0 then
      advs :=
        arrivals ~rng ~per_hour:config.lying_per_hour ~horizon
          ~make:(fun start ->
            let victim = Prng.int rng nodes in
            Lying_reporters
              {
                reporters = pick_nodes_excluding rng ~nodes ~victim config.lying_size;
                victim;
                corroboration = config.lying_corroboration;
                start;
                duration = duration_draw rng ~mean:config.lying_mean_duration;
              })
          !advs;
    if config.eclipse_size > 0 then
      advs :=
        arrivals ~rng ~per_hour:config.eclipses_per_hour ~horizon
          ~make:(fun start ->
            let victim = Prng.int rng nodes in
            (* An eclipse wants attackers already adjacent to the victim's
               routing state; fall back to arbitrary nodes when the caller
               gives no peer view. *)
            let attackers =
              match peers_of with
              | Some peers when Array.length (peers victim) > 0 ->
                  let peers = peers victim in
                  let k = min config.eclipse_size (Array.length peers) in
                  let picks = Prng.sample_without_replacement rng k (Array.length peers) in
                  Array.map (fun i -> peers.(i)) picks
              | _ -> pick_nodes_excluding rng ~nodes ~victim config.eclipse_size
            in
            Eclipse
              {
                attackers;
                victim;
                start;
                duration = duration_draw rng ~mean:config.eclipse_mean_duration;
              })
          !advs;
    if config.biased_size > 0 then
      advs :=
        arrivals ~rng ~per_hour:config.biased_per_hour ~horizon
          ~make:(fun start ->
            let favored = Prng.int rng nodes in
            Biased_sampling
              {
                samplers = pick_nodes_excluding rng ~nodes ~victim:favored config.biased_size;
                favored;
                start;
                duration = duration_draw rng ~mean:config.biased_mean_duration;
              })
          !advs;
    List.stable_sort
      (fun a b -> Float.compare (adversary_start_of a) (adversary_start_of b))
      (List.rev !advs)
  end

let adversary_active adversary ~time =
  match adversary with
  | Collusion { start; duration; _ }
  | Lying_reporters { start; duration; _ }
  | Eclipse { start; duration; _ }
  | Biased_sampling { start; duration; _ } ->
      time >= start && time < start +. duration

let adversary_counts plan =
  let collusion = ref 0 and lying = ref 0 and eclipse = ref 0 and biased = ref 0 in
  List.iter
    (fun adversary ->
      match adversary with
      | Collusion _ -> incr collusion
      | Lying_reporters _ -> incr lying
      | Eclipse _ -> incr eclipse
      | Biased_sampling _ -> incr biased)
    plan;
  [
    ("collusion", !collusion);
    ("lying_reporters", !lying);
    ("eclipse", !eclipse);
    ("biased_sampling", !biased);
  ]

let cut_of_paths ~paths =
  let crossing = Hashtbl.create 64 and same_side = Hashtbl.create 64 in
  List.iter
    (fun (side_a, side_b, links) ->
      let table = if side_a = side_b then same_side else crossing in
      Array.iter (fun link -> Hashtbl.replace table link ()) links)
    paths;
  let cut =
    Hashtbl.fold
      (fun link () acc -> if Hashtbl.mem same_side link then acc else link :: acc)
      crossing []
    |> Array.of_list
  in
  (* Fold order is hash-seed dependent; the sort restores determinism. *)
  Array.sort Int.compare cut;
  cut

(* ---------- Compilation ---------- *)

type t = {
  (* Active chaos faults claiming each link bad. A link flips bad on the
     0 -> 1 transition and is repaired on 1 -> 0 — unless it was already
     bad before chaos touched it (another fault source owns it). *)
  claims : (int, int * bool) Hashtbl.t;  (* link -> (count, bad_before_chaos) *)
  down : (float * float) array array;  (* per node: sorted crash intervals *)
  delays : (float * float * float) array;  (* start, finish, extra *)
  dups : (float * float * int) array;
}

let claim t link_state link =
  let count, prior =
    match Hashtbl.find_opt t.claims link with
    | Some (c, prior) -> (c, prior)
    | None -> (0, Link_state.is_bad link_state link)
  in
  if count = 0 then Link_state.set_bad link_state link;
  Hashtbl.replace t.claims link (count + 1, prior)

let release t link_state link =
  match Hashtbl.find_opt t.claims link with
  | None -> ()
  | Some (count, prior) ->
      if count <= 1 then begin
        Hashtbl.remove t.claims link;
        if not prior then Link_state.set_good link_state link
      end
      else Hashtbl.replace t.claims link (count - 1, prior)

let compile ?(obs = Trace.noop) ?(on_replica_loss = fun ~node:_ ~time:_ -> ()) ~engine
    ~link_state plan =
  let crash_intervals = Hashtbl.create 16 in
  let delays = ref [] and dups = ref [] in
  let max_node = ref (-1) in
  let t =
    { claims = Hashtbl.create 64; down = [||]; delays = [||]; dups = [||] }
  in
  let at time action =
    (* Faults scheduled before the engine clock (e.g. warm-start plans
       compiled mid-run) fire immediately rather than raising. *)
    Engine.schedule_at engine ~time:(Float.max time (Engine.now engine)) action
  in
  (* Link faults trace from inside the already-scheduled engine actions, so
     tracing adds no events and cannot perturb event ordering; window faults
     (crash, delay, duplication) compile to queryable intervals rather than
     events, so they trace here at compile time with their plan times. *)
  let claim_interval ~family links ~start ~duration =
    at start (fun engine ->
        Trace.instant obs ~time:(Engine.now engine) ~cat:"chaos"
          ~args:[ ("links", Trace.Int (Array.length links)) ]
          (family ^ ".start");
        Array.iter (fun link -> claim t link_state link) links);
    at (start +. duration) (fun engine ->
        Trace.instant obs ~time:(Engine.now engine) ~cat:"chaos"
          ~args:[ ("links", Trace.Int (Array.length links)) ]
          (family ^ ".end");
        Array.iter (fun link -> release t link_state link) links)
  in
  let window_fault ~family ~start ~duration args =
    Trace.instant obs ~time:start ~cat:"chaos"
      ~args:(("duration", Trace.Float duration) :: args)
      family
  in
  List.iter
    (fun fault ->
      match fault with
      | Link_flap { link; start; duration } ->
          claim_interval ~family:"chaos.link_flap" [| link |] ~start ~duration
      | Burst_loss { links; start; duration } ->
          claim_interval ~family:"chaos.burst_loss" links ~start ~duration
      | Partition { cut; start; duration } ->
          claim_interval ~family:"chaos.partition" cut ~start ~duration
      | Node_crash { node; start; duration } ->
          window_fault ~family:"chaos.node_crash" ~start ~duration
            [ ("node", Trace.Int node) ];
          max_node := max !max_node node;
          let existing =
            match Hashtbl.find_opt crash_intervals node with Some l -> l | None -> []
          in
          Hashtbl.replace crash_intervals node ((start, start +. duration) :: existing)
      | Replica_loss { node; time } ->
          at time (fun engine ->
              Trace.instant obs ~time:(Engine.now engine) ~cat:"chaos"
                ~args:[ ("node", Trace.Int node) ]
                "chaos.replica_loss";
              on_replica_loss ~node ~time:(Engine.now engine))
      | Control_delay { start; duration; extra } ->
          window_fault ~family:"chaos.control_delay" ~start ~duration
            [ ("extra", Trace.Float extra) ];
          delays := (start, start +. duration, extra) :: !delays
      | Control_duplication { start; duration; copies } ->
          window_fault ~family:"chaos.control_duplication" ~start ~duration
            [ ("copies", Trace.Int copies) ];
          dups := (start, start +. duration, copies) :: !dups)
    plan;
  let down =
    Array.init (!max_node + 1) (fun node ->
        let intervals =
          match Hashtbl.find_opt crash_intervals node with Some l -> l | None -> []
        in
        let arr = Array.of_list intervals in
        Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
        arr)
  in
  { t with down; delays = Array.of_list (List.rev !delays); dups = Array.of_list (List.rev !dups) }

let node_online t ~time node =
  node >= Array.length t.down
  || not
       (Array.exists
          (fun (start, finish) -> time >= start && time < finish)
          t.down.(node))

let control_latency t ~time =
  Array.fold_left
    (fun acc (start, finish, extra) ->
      if time >= start && time < finish then acc +. extra else acc)
    0. t.delays

let put_copies t ~time =
  Array.fold_left
    (fun acc (start, finish, copies) ->
      if time >= start && time < finish then max acc copies else acc)
    1 t.dups

let fault_counts plan =
  let flap = ref 0
  and burst = ref 0
  and partition = ref 0
  and crash = ref 0
  and replica = ref 0
  and delay = ref 0
  and dup = ref 0 in
  List.iter
    (fun fault ->
      match fault with
      | Link_flap _ -> incr flap
      | Burst_loss _ -> incr burst
      | Partition _ -> incr partition
      | Node_crash _ -> incr crash
      | Replica_loss _ -> incr replica
      | Control_delay _ -> incr delay
      | Control_duplication _ -> incr dup)
    plan;
  [
    ("link_flap", !flap);
    ("burst_loss", !burst);
    ("partition", !partition);
    ("node_crash", !crash);
    ("replica_loss", !replica);
    ("control_delay", !delay);
    ("control_duplication", !dup);
  ]
