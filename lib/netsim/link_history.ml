type t = { link_count : int; table : (int, (float * float) list ref) Hashtbl.t }

let create ~link_count =
  if link_count < 0 then invalid_arg "Link_history.create: negative link count";
  { link_count; table = Hashtbl.create 4096 }

let link_count t = t.link_count

let check t link =
  if link < 0 || link >= t.link_count then invalid_arg "Link_history: link out of range"

let add_interval t ~link ~start ~finish =
  check t link;
  if finish < start then invalid_arg "Link_history.add_interval: negative duration";
  match Hashtbl.find_opt t.table link with
  | Some cell -> cell := (start, finish) :: !cell
  | None -> Hashtbl.replace t.table link (ref [ (start, finish) ])

let intervals t ~link =
  check t link;
  match Hashtbl.find_opt t.table link with Some cell -> List.rev !cell | None -> []

let is_bad_at t ~link ~time =
  check t link;
  match Hashtbl.find_opt t.table link with
  | None -> false
  | Some cell -> List.exists (fun (start, finish) -> start <= time && time < finish) !cell

let path_is_good_at t ~links ~time =
  Array.for_all (fun link -> not (is_bad_at t ~link ~time)) links

let bad_links_at t ~time =
  Hashtbl.fold
    (fun link cell acc ->
      if List.exists (fun (start, finish) -> start <= time && time < finish) !cell then
        link :: acc
      else acc)
    t.table []
  |> List.sort Int.compare

let bad_fraction_at t ~time ~relevant =
  if Array.length relevant = 0 then 0.
  else begin
    let bad = Array.fold_left (fun acc link -> if is_bad_at t ~link ~time then acc + 1 else acc) 0 relevant in
    float_of_int bad /. float_of_int (Array.length relevant)
  end

let compare_interval (a_start, a_finish) (b_start, b_finish) =
  match Float.compare a_start b_start with
  | 0 -> Float.compare a_finish b_finish
  | order -> order

let merged_intervals t ~link ~horizon =
  let clipped =
    List.filter_map
      (fun (start, finish) ->
        let start = max 0. start and finish = min horizon finish in
        if finish > start then Some (start, finish) else None)
      (intervals t ~link)
  in
  let sorted = List.sort compare_interval clipped in
  let rec merge acc = function
    | [] -> List.rev acc
    | interval :: rest -> (
        match acc with
        | (start, finish) :: tail when fst interval <= finish ->
            merge ((start, max finish (snd interval)) :: tail) rest
        | _ -> merge (interval :: acc) rest)
  in
  merge [] sorted

let total_bad_time t ~link ~horizon =
  List.fold_left
    (fun acc (start, finish) -> acc +. (finish -. start))
    0.
    (merged_intervals t ~link ~horizon)

let replay t ~engine ~state ~horizon =
  (* Schedule links in sorted order: if the engine breaks time ties by
     insertion order, replay stays reproducible across hash seeds. *)
  let links = List.sort Int.compare (Hashtbl.fold (fun link _ acc -> link :: acc) t.table []) in
  List.iter
    (fun link ->
      List.iter
        (fun (start, finish) ->
          Engine.schedule_at engine ~time:start (fun _ -> Link_state.set_bad state link);
          Engine.schedule_at engine ~time:finish (fun _ -> Link_state.set_good state link))
        (merged_intervals t ~link ~horizon))
    links
