(* Epoch-bucketed bad-interval storage.

   The previous representation kept one unbounded [(start, finish) list ref]
   per link: every recorded failure stayed resident for the whole run and
   point queries scanned a link's entire history. Intervals are now clipped
   onto fixed-width epochs and stored per link as sorted, disjoint,
   non-touching pieces per epoch bucket. Overlapping or touching insertions
   merge eagerly, so a flapping link holds O(distinct bad spans) rather than
   O(recorded events); point queries scan one bucket; and [expire_before]
   drops whole epochs once a long run's window of interest has moved past
   them, which bounds resident memory. Pieces split at epoch boundaries are
   rejoined by the interval-returning queries, so observable behaviour
   matches the old list model (up to normalisation of the returned lists,
   which are now sorted and merged rather than in insertion order). *)

type bucket = { mutable spans : float array; mutable count : int }
(* spans.(2k) / spans.(2k+1) hold piece k's start / finish; pieces are
   sorted by start, pairwise disjoint and non-touching, and clipped to the
   bucket's epoch. *)

type timeline = {
  mutable base : int;  (* epoch index of buckets.(0) *)
  mutable buckets : bucket option array;
}

type t = {
  link_count : int;
  epoch_length : float;
  timelines : timeline option array;
  mutable resident : int;  (* live (start, finish) pieces across all links *)
}

let default_epoch_length = 3600.

let create_with ~epoch_length ~link_count =
  if link_count < 0 then invalid_arg "Link_history.create: negative link count";
  if not (Float.is_finite epoch_length) || epoch_length <= 0. then
    invalid_arg "Link_history.create: epoch length must be positive and finite";
  { link_count; epoch_length; timelines = Array.make link_count None; resident = 0 }

let create ~link_count = create_with ~epoch_length:default_epoch_length ~link_count

let link_count t = t.link_count
let epoch_length t = t.epoch_length
let resident_pieces t = t.resident

let check t link =
  if link < 0 || link >= t.link_count then invalid_arg "Link_history: link out of range"

let epoch_of t time = int_of_float (Float.floor (time /. t.epoch_length))

(* ---------- Bucket maintenance ---------- *)

let bucket_insert t bucket s f =
  let spans = bucket.spans and count = bucket.count in
  (* First piece touching-or-overlapping [s, f] from the left, and the last
     from the right; pieces strictly between them are swallowed. *)
  let lo = ref 0 in
  while !lo < count && spans.((2 * !lo) + 1) < s do incr lo done;
  let hi = ref (count - 1) in
  while !hi >= 0 && spans.(2 * !hi) > f do decr hi done;
  if !lo > !hi then begin
    (* Disjoint from everything: insert at position [lo]. *)
    let needed = 2 * (count + 1) in
    if Array.length spans < needed then begin
      let grown = Array.make (max 8 (2 * needed)) 0. in
      Array.blit spans 0 grown 0 (2 * count);
      bucket.spans <- grown
    end;
    let spans = bucket.spans in
    Array.blit spans (2 * !lo) spans (2 * (!lo + 1)) (2 * (count - !lo));
    spans.(2 * !lo) <- s;
    spans.((2 * !lo) + 1) <- f;
    bucket.count <- count + 1;
    t.resident <- t.resident + 1
  end
  else begin
    let merged_s = min s spans.(2 * !lo) in
    let merged_f = max f spans.((2 * !hi) + 1) in
    spans.(2 * !lo) <- merged_s;
    spans.((2 * !lo) + 1) <- merged_f;
    let swallowed = !hi - !lo in
    if swallowed > 0 then
      Array.blit spans (2 * (!hi + 1)) spans (2 * (!lo + 1)) (2 * (count - !hi - 1));
    bucket.count <- count - swallowed;
    t.resident <- t.resident - swallowed
  end

let timeline_for t link =
  match t.timelines.(link) with
  | Some timeline -> timeline
  | None ->
      let timeline = { base = 0; buckets = [||] } in
      t.timelines.(link) <- Some timeline;
      timeline

(* Bucket for absolute epoch [e], growing the window at either end. *)
let bucket_for timeline e =
  let len = Array.length timeline.buckets in
  if len = 0 then begin
    timeline.base <- e;
    timeline.buckets <- Array.make 1 None
  end
  else if e < timeline.base then begin
    let shift = timeline.base - e in
    let grown = Array.make (max (len + shift) (2 * len)) None in
    Array.blit timeline.buckets 0 grown shift len;
    timeline.buckets <- grown;
    timeline.base <- e
  end
  else if e - timeline.base >= len then begin
    let needed = e - timeline.base + 1 in
    let grown = Array.make (max needed (2 * len)) None in
    Array.blit timeline.buckets 0 grown 0 len;
    timeline.buckets <- grown
  end;
  let slot = e - timeline.base in
  match timeline.buckets.(slot) with
  | Some bucket -> bucket
  | None ->
      let bucket = { spans = [||]; count = 0 } in
      timeline.buckets.(slot) <- Some bucket;
      bucket

(* ---------- Recording ---------- *)

let add_interval t ~link ~start ~finish =
  check t link;
  if Float.is_nan start || Float.is_nan finish then
    invalid_arg "Link_history.add_interval: NaN bound";
  if finish < start then invalid_arg "Link_history.add_interval: negative duration";
  if finish > start then begin
    let timeline = timeline_for t link in
    let e = ref (epoch_of t start) in
    while float_of_int !e *. t.epoch_length < finish do
      let epoch_start = float_of_int !e *. t.epoch_length in
      let epoch_finish = float_of_int (!e + 1) *. t.epoch_length in
      let s = max start epoch_start and f = min finish epoch_finish in
      if f > s then bucket_insert t (bucket_for timeline !e) s f;
      incr e
    done
  end

(* ---------- Point queries ---------- *)

let is_bad_at t ~link ~time =
  check t link;
  match t.timelines.(link) with
  | None -> false
  | Some timeline ->
      let slot = epoch_of t time - timeline.base in
      if slot < 0 || slot >= Array.length timeline.buckets then false
      else begin
        match timeline.buckets.(slot) with
        | None -> false
        | Some bucket ->
            let rec linear k =
              if k >= bucket.count then false
              else if bucket.spans.(2 * k) > time then false
              else if time < bucket.spans.((2 * k) + 1) then true
              else linear (k + 1)
            in
            linear 0
      end

let path_is_good_at t ~links ~time =
  Array.for_all (fun link -> not (is_bad_at t ~link ~time)) links

let bad_links_at t ~time =
  let acc = ref [] in
  for link = t.link_count - 1 downto 0 do
    if is_bad_at t ~link ~time then acc := link :: !acc
  done;
  !acc

let bad_fraction_at t ~time ~relevant =
  if Array.length relevant = 0 then 0.
  else begin
    let bad =
      Array.fold_left (fun acc link -> if is_bad_at t ~link ~time then acc + 1 else acc) 0 relevant
    in
    float_of_int bad /. float_of_int (Array.length relevant)
  end

(* ---------- Interval queries ---------- *)

(* Walk a link's pieces in ascending order, rejoining pieces that touch
   (adjacent-epoch halves of one recorded interval, or distinct recordings
   that happen to abut). *)
let fold_pieces t link ~init ~f =
  match t.timelines.(link) with
  | None -> init
  | Some timeline ->
      let acc = ref init in
      Array.iter
        (fun slot ->
          match slot with
          | None -> ()
          | Some bucket ->
              for k = 0 to bucket.count - 1 do
                acc := f !acc bucket.spans.(2 * k) bucket.spans.((2 * k) + 1)
              done)
        timeline.buckets;
      !acc

let intervals t ~link =
  check t link;
  let joined =
    fold_pieces t link ~init:[] ~f:(fun acc s f ->
        match acc with
        | (prev_s, prev_f) :: tail when s <= prev_f -> (prev_s, max prev_f f) :: tail
        | _ -> (s, f) :: acc)
  in
  List.rev joined

let merged_intervals t ~link ~horizon =
  check t link;
  let clipped =
    fold_pieces t link ~init:[] ~f:(fun acc s f ->
        let s = max 0. s and f = min horizon f in
        if f <= s then acc
        else begin
          match acc with
          | (prev_s, prev_f) :: tail when s <= prev_f -> (prev_s, max prev_f f) :: tail
          | _ -> (s, f) :: acc
        end)
  in
  List.rev clipped

let total_bad_time t ~link ~horizon =
  List.fold_left
    (fun acc (start, finish) -> acc +. (finish -. start))
    0.
    (merged_intervals t ~link ~horizon)

(* ---------- Memory bounding ---------- *)

let expire_before t ~time =
  if Float.is_nan time then invalid_arg "Link_history.expire_before: NaN time";
  let cutoff = epoch_of t time in
  for link = 0 to t.link_count - 1 do
    match t.timelines.(link) with
    | None -> ()
    | Some timeline ->
        let len = Array.length timeline.buckets in
        if len > 0 && timeline.base < cutoff then begin
          let drop = min len (cutoff - timeline.base) in
          for i = 0 to drop - 1 do
            match timeline.buckets.(i) with
            | None -> ()
            | Some bucket -> t.resident <- t.resident - bucket.count
          done;
          if drop >= len then t.timelines.(link) <- None
          else begin
            let kept = Array.make (len - drop) None in
            Array.blit timeline.buckets drop kept 0 (len - drop);
            timeline.buckets <- kept;
            timeline.base <- timeline.base + drop
          end
        end
  done

(* ---------- Replay ---------- *)

let replay t ~engine ~state ~horizon =
  (* Links ascend, so if the engine breaks time ties by insertion order the
     replay stays reproducible. *)
  for link = 0 to t.link_count - 1 do
    List.iter
      (fun (start, finish) ->
        Engine.schedule_at engine ~time:start (fun _ -> Link_state.set_bad state link);
        Engine.schedule_at engine ~time:finish (fun _ -> Link_state.set_good state link))
      (merged_intervals t ~link ~horizon)
  done
