(* Events hold callbacks over [t] while [t] owns the event heap, so the two
   types are mutually recursive; a specialised inline heap avoids forcing
   that recursion through a functor. *)
type event = { time : float; seq : int; action : t -> unit }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable data : event array;
  mutable size : int;
  mutable on_push : (pending:int -> unit) option;
      (* observability hook: queue-depth sampling. One branch when unset. *)
}

let create ?(start = 0.) () =
  { clock = start; next_seq = 0; data = [||]; size = 0; on_push = None }

let set_on_push t f = t.on_push <- Some f

(* Placeholder stored in vacated slots: a popped event's action closure can
   capture large world state, and anything left reachable in [data] beyond
   [size] would never be collected. *)
let tombstone = { time = neg_infinity; seq = min_int; action = ignore }
let now t = t.clock
let pending t = t.size
let capacity t = Array.length t.data

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && earlier t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t event =
  if t.size = Array.length t.data then begin
    (* Fill with the tombstone, not [event]: padding slots must not pin the
       pushed event's closure once it has been popped. *)
    let grown = Array.make (max 16 (2 * t.size)) tombstone in
    Array.blit t.data 0 grown 0 t.size;
    t.data <- grown
  end;
  t.data.(t.size) <- event;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  match t.on_push with None -> () | Some f -> f ~pending:t.size

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* Clear the vacated slot so the popped event (and whatever its action
       closure captures) becomes collectable. *)
    t.data.(t.size) <- tombstone;
    (* Halve the backing array once occupancy drops below a quarter: a run
       whose queue peaked early must not pin its high-water storage for the
       rest of a long simulation. Amortised O(1) per pop. *)
    let cap = Array.length t.data in
    if cap >= 64 && t.size <= cap / 4 then begin
      let shrunk = Array.make (max 32 (cap / 2)) tombstone in
      Array.blit t.data 0 shrunk 0 t.size;
      t.data <- shrunk
    end;
    Some top
  end

(* NaN compares false against everything, so an unguarded NaN time would
   slip past the past-time check and then violate the heap invariant
   ([earlier] is not a total order over NaN), silently corrupting event
   order for every later event. *)
let schedule_at t ~time action =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time; seq; action }

let schedule t ~delay action =
  if Float.is_nan delay then invalid_arg "Engine.schedule: NaN delay";
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let step t =
  match pop t with
  | None -> false
  | Some event ->
      t.clock <- event.time;
      event.action t;
      true

let run t = while step t do () done

let run_until t horizon =
  if horizon < t.clock then invalid_arg "Engine.run_until: horizon is in the past";
  let continue = ref true in
  while !continue do
    if t.size > 0 && t.data.(0).time <= horizon then ignore (step t) else continue := false
  done;
  t.clock <- horizon
