(** Discrete-event simulation engine: a virtual clock and an event heap.
    Events scheduled for the same instant fire in scheduling order. *)

type t

val create : ?start:float -> unit -> t
val now : t -> float

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** @raise Invalid_argument if [time] is NaN or in the simulated past
    (either would corrupt the event-heap order). *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] = [schedule_at t ~time:(now t +. delay) f];
    [delay] must be non-negative and not NaN. *)

val pending : t -> int

val capacity : t -> int
(** Event-heap backing-array length. Popping shrinks it once occupancy
    falls below a quarter, so long runs keep memory proportional to the
    live queue rather than its high-water mark. *)

val set_on_push : t -> (pending:int -> unit) -> unit
(** Observability hook, called with the queue depth after every schedule.
    The hook must be passive (no scheduling, no randomness): it exists so a
    metrics sink can sample queue depth without perturbing the run. Unset
    by default, costing one branch per push. *)

val run : t -> unit
(** Process events until the heap is empty. *)

val run_until : t -> float -> unit
(** Process every event with time <= the horizon, then advance the clock to
    the horizon. Later events stay queued. *)

val step : t -> bool
(** Process one event; [false] if none remained. *)
