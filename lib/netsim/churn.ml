module Prng = Concilium_util.Prng

type config = {
  mean_uptime : float;
  mean_downtime : float;
  initial_online_fraction : float;
}

let default_config =
  { mean_uptime = 7200.; mean_downtime = 600.; initial_online_fraction = 0.95 }

(* CSR layout: host [h]'s sorted toggle times live in
   [times.(offsets.(h)) .. times.(offsets.(h + 1)) - 1]. A flat pair of
   arrays replaces the former array-of-arrays so a million-host timeline is
   two allocations rather than a million. State after an even number of
   toggles equals the initial state. *)
type t = { initial : bool array; offsets : int array; times : float array }

let generate ~rng ~config ~hosts ~duration =
  if hosts < 0 then invalid_arg "Churn.generate: negative host count";
  if config.mean_uptime <= 0. || config.mean_downtime <= 0. then
    invalid_arg "Churn.generate: mean periods must be positive";
  let initial = Array.init hosts (fun _ -> Prng.bernoulli rng config.initial_online_fraction) in
  let offsets = Array.make (hosts + 1) 0 in
  (* Growable buffer: draws are host-major, exactly the order of the old
     array-of-arrays representation, so timelines are bit-compatible. *)
  let buffer = ref (Array.make 1024 0.) in
  let filled = ref 0 in
  let push time =
    if !filled = Array.length !buffer then begin
      let grown = Array.make (2 * !filled) 0. in
      Array.blit !buffer 0 grown 0 !filled;
      buffer := grown
    end;
    !buffer.(!filled) <- time;
    incr filled
  in
  for host = 0 to hosts - 1 do
    let online = ref initial.(host) in
    let clock = ref 0. in
    let continue = ref true in
    while !continue do
      let mean = if !online then config.mean_uptime else config.mean_downtime in
      clock := !clock +. Prng.exponential rng ~rate:(1. /. mean);
      if !clock >= duration then continue := false
      else begin
        push !clock;
        online := not !online
      end
    done;
    offsets.(host + 1) <- !filled
  done;
  { initial; offsets; times = Array.sub !buffer 0 !filled }

let hosts t = Array.length t.initial
let toggle_count t = Array.length t.times
let initially_online t ~host = t.initial.(host)

let is_online t ~host ~time =
  let lo = t.offsets.(host) and hi = t.offsets.(host + 1) in
  (* Count toggles at or before [time] (binary search over the host's
     slice); parity flips the initial state. *)
  let a = ref lo and b = ref hi in
  while !a < !b do
    let mid = (!a + !b) / 2 in
    if t.times.(mid) <= time then a := mid + 1 else b := mid
  done;
  if (!a - lo) mod 2 = 0 then t.initial.(host) else not t.initial.(host)

let online_fraction t ~time =
  let hosts = Array.length t.initial in
  if hosts = 0 then 0.
  else begin
    let online = ref 0 in
    for host = 0 to hosts - 1 do
      if is_online t ~host ~time then incr online
    done;
    float_of_int !online /. float_of_int hosts
  end

let transitions t ~host =
  let online = ref t.initial.(host) in
  let out = ref [] in
  for i = t.offsets.(host) to t.offsets.(host + 1) - 1 do
    online := not !online;
    out := (t.times.(i), !online) :: !out
  done;
  List.rev !out

let mean_online_fraction t ~duration ~samples =
  if samples <= 0 then invalid_arg "Churn.mean_online_fraction: need samples";
  let acc = ref 0. in
  for i = 0 to samples - 1 do
    let time = duration *. (float_of_int i +. 0.5) /. float_of_int samples in
    acc := !acc +. online_fraction t ~time
  done;
  !acc /. float_of_int samples

(* Every toggle across all hosts as one chronological stream — the scale
   driver's churn feed. Each element is (time, host); ties break by host
   order, deterministically. *)
let events t =
  let total = Array.length t.times in
  let host_of = Array.make total 0 in
  let hosts = Array.length t.initial in
  for host = 0 to hosts - 1 do
    for i = t.offsets.(host) to t.offsets.(host + 1) - 1 do
      host_of.(i) <- host
    done
  done;
  let order = Array.init total (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare t.times.(a) t.times.(b) with
      | 0 -> Int.compare host_of.(a) host_of.(b)
      | c -> c)
    order;
  Array.map (fun i -> (t.times.(i), host_of.(i))) order
