(** Record of when each link was bad across a simulation run. The blame
    experiments need the *ground truth* state of arbitrary links at
    arbitrary instants ("was B->C actually good at time t?"), which this
    timeline answers without re-running the failure process.

    Storage is epoch-bucketed: intervals are clipped onto fixed-width
    epochs and kept as sorted, disjoint, eagerly-merged pieces per bucket,
    so resident memory tracks distinct bad spans (not recorded events) and
    whole epochs can be expired once a long run's window of interest has
    moved past them. *)

type t

val create : link_count:int -> t
(** One-hour epochs. *)

val create_with : epoch_length:float -> link_count:int -> t
(** [epoch_length] (seconds) sets the bucket width and the granularity of
    {!expire_before}. *)

val link_count : t -> int

val epoch_length : t -> float

val add_interval : t -> link:int -> start:float -> finish:float -> unit
(** Record that [link] was bad during [start, finish). Intervals may
    overlap; queries treat their union as bad time. Zero-length intervals
    are accepted and ignored (they contain no instant). *)

val is_bad_at : t -> link:int -> time:float -> bool

val path_is_good_at : t -> links:int array -> time:float -> bool

val intervals : t -> link:int -> (float * float) list
(** Recorded bad time for a link as sorted, disjoint maximal intervals
    (overlapping or touching recordings are merged). *)

val bad_links_at : t -> time:float -> int list

val bad_fraction_at : t -> time:float -> relevant:int array -> float
(** Fraction of [relevant] links bad at [time]. *)

val total_bad_time : t -> link:int -> horizon:float -> float
(** Lebesgue measure of the union of a link's bad intervals within
    [0, horizon]. *)

val replay :
  t -> engine:Engine.t -> state:Link_state.t -> horizon:float -> unit
(** Schedule set_bad/set_good events on the engine so that [state] tracks
    the timeline while the engine runs (intervals clipped to the horizon).
    Overlapping intervals are merged before scheduling. *)

val expire_before : t -> time:float -> unit
(** Drop every epoch bucket that ends at or before [time] (i.e. whole
    epochs strictly below [time]'s epoch). Queries about instants older
    than the last expiry point may subsequently report "good"; callers use
    this to bound memory once old history is no longer interesting. *)

val resident_pieces : t -> int
(** Number of (start, finish) pieces currently resident across all links —
    the quantity bounded by eager merging and {!expire_before}. *)
