(** Host availability churn.

    The paper's evaluation deliberately holds membership fixed ("we did not
    model fluctuating machine availability since we wanted to focus on the
    fundamental properties of our fault inference algorithm", Section 4.2).
    This module supplies the missing dimension as an extension: each host
    alternates exponentially-distributed online and offline periods, giving
    a timeline that answers "was H up at time t?". Downstream uses include
    stress-testing freshness stamps (a stale entry really does mean a
    departed peer) and measuring how natural churn inflates the density
    test's suppression-like skew. *)

type config = {
  mean_uptime : float;  (** seconds *)
  mean_downtime : float;
  initial_online_fraction : float;
}

val default_config : config
(** 2-hour mean sessions, 10-minute absences, 95% initially online. *)

type t

val generate :
  rng:Concilium_util.Prng.t -> config:config -> hosts:int -> duration:float -> t

val is_online : t -> host:int -> time:float -> bool
val online_fraction : t -> time:float -> float
val transitions : t -> host:int -> (float * bool) list
(** Chronological (time, became-online) events within the horizon. *)

val mean_online_fraction : t -> duration:float -> samples:int -> float

val hosts : t -> int

val toggle_count : t -> int
(** Total toggles across all hosts (the timeline's storage footprint). *)

val initially_online : t -> host:int -> bool

val events : t -> (float * int) array
(** Every toggle as one chronological (time, host) stream, ties broken by
    host index — the churn feed of the scale driver. *)
