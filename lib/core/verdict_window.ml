module Ring_buffer = Concilium_util.Ring_buffer

type 'evidence entry = {
  verdict : Blame.verdict;
  blame : float;
  drop_time : float;
  evidence : 'evidence;
}

type 'evidence t = 'evidence entry Ring_buffer.t

let create ~window_size = Ring_buffer.create window_size
let record t entry = ignore (Ring_buffer.push t entry)
let length = Ring_buffer.length

let guilty_count t =
  Ring_buffer.count (fun e -> match e.verdict with Blame.Guilty -> true | Blame.Innocent -> false) t

let entries = Ring_buffer.to_list

let expire t ~before =
  if Ring_buffer.length t > 0 then begin
    let kept = List.filter (fun e -> e.drop_time >= before) (Ring_buffer.to_list t) in
    if List.length kept < Ring_buffer.length t then begin
      Ring_buffer.clear t;
      List.iter (fun e -> ignore (Ring_buffer.push t e)) kept
    end
  end

let guilty_entries t =
  List.filter
    (fun e -> match e.verdict with Blame.Guilty -> true | Blame.Innocent -> false)
    (entries t)

let should_accuse t ~m = guilty_count t >= m
