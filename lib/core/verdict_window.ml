module Ring_buffer = Concilium_util.Ring_buffer

type 'evidence entry = {
  verdict : Blame.verdict;
  blame : float;
  drop_time : float;
  evidence : 'evidence;
}

type 'evidence t = 'evidence entry Ring_buffer.t

let create ~window_size = Ring_buffer.create window_size
let record t entry = ignore (Ring_buffer.push t entry)
let length = Ring_buffer.length

let guilty_count t =
  Ring_buffer.count (fun e -> match e.verdict with Blame.Guilty -> true | Blame.Innocent -> false) t

let entries = Ring_buffer.to_list

let expire t ~before =
  (* Inclusive keep: an entry sitting exactly on the horizon
     ([drop_time = before]) survives. One fold collects the survivors and
     their count; the buffer is rebuilt only when something actually
     expired, so expiry under churn costs a single pass. *)
  let kept_rev, kept_count =
    Ring_buffer.fold
      (fun (acc, n) e -> if e.drop_time >= before then (e :: acc, n + 1) else (acc, n))
      ([], 0) t
  in
  if kept_count < Ring_buffer.length t then begin
    Ring_buffer.clear t;
    List.iter (fun e -> ignore (Ring_buffer.push t e)) (List.rev kept_rev)
  end

let guilty_entries t =
  List.filter
    (fun e -> match e.verdict with Blame.Guilty -> true | Blame.Innocent -> false)
    (entries t)

let should_accuse t ~m = guilty_count t >= m
