module Observation = Concilium_tomography.Observation

type config = { accuracy : float; delta : float; guilt_threshold : float }

let paper_config = { accuracy = 0.9; delta = 60.; guilt_threshold = 0.4 }

let check_config config =
  if config.accuracy <= 0.5 || config.accuracy > 1. then
    invalid_arg "Blame: accuracy must lie in (0.5, 1]";
  if config.delta < 0. then invalid_arg "Blame: negative delta";
  if config.guilt_threshold < 0. || config.guilt_threshold > 1. then
    invalid_arg "Blame: threshold outside [0,1]"

let link_bad_confidence ~accuracy ~up_votes ~down_votes =
  let total = up_votes + down_votes in
  if total = 0 then 0.
  else begin
    let up = float_of_int up_votes and down = float_of_int down_votes in
    ((up *. (1. -. accuracy)) +. (down *. accuracy)) /. float_of_int total
  end

let confidence_of_votes config votes =
  (* votes: (prober, up) pairs for one link. *)
  let up_votes = List.length (List.filter snd votes) in
  let down_votes = List.length votes - up_votes in
  link_bad_confidence ~accuracy:config.accuracy ~up_votes ~down_votes

let dedup_votes votes =
  (* One vote per prober, the prober's latest in the list winning (votes
     arrive oldest-first from [Observation.on_link]). The in-place update
     keeps each prober at its first-occurrence position, so the result is
     independent of any hash order. *)
  let rec update acc prober up =
    match acc with
    | [] -> [ (prober, up) ]
    | (p, _) :: rest when p = prober -> (p, up) :: rest
    | pair :: rest -> pair :: update rest prober up
  in
  List.fold_left (fun acc (prober, up) -> update acc prober up) [] votes

let path_bad_confidence config ~observations ~links ~drop_time ~exclude_prober
    ?(visible = fun _ -> true) ?(one_vote_per_prober = false) () =
  check_config config;
  let lo = drop_time -. config.delta and hi = drop_time +. config.delta in
  Array.fold_left
    (fun best link ->
      let votes =
        List.filter_map
          (fun obs ->
            if obs.Observation.prober = exclude_prober || not (visible obs.Observation.prober)
            then None
            else Some (obs.Observation.prober, obs.Observation.up))
          (Observation.on_link observations ~link ~lo ~hi)
      in
      let votes = if one_vote_per_prober then dedup_votes votes else votes in
      if votes = [] then best else max best (confidence_of_votes config votes))
    0. links

let blame config ~observations ~links ~drop_time ~exclude_prober ?(visible = fun _ -> true)
    ?(one_vote_per_prober = false) () =
  1.
  -. path_bad_confidence config ~observations ~links ~drop_time ~exclude_prober ~visible
       ~one_vote_per_prober ()

let blame_of_observations config ~grouped =
  check_config config;
  let worst =
    Array.fold_left
      (fun best votes -> if votes = [] then best else max best (confidence_of_votes config votes))
      0. grouped
  in
  1. -. worst

type verdict = Guilty | Innocent

let verdict_of_blame config value =
  check_config config;
  if value >= config.guilt_threshold then Guilty else Innocent

let pp_verdict fmt = function
  | Guilty -> Format.pp_print_string fmt "guilty"
  | Innocent -> Format.pp_print_string fmt "innocent"
