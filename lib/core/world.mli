(** A fully assembled Concilium deployment in simulation: an Internet-like
    router graph, an overlay of certified end hosts, per-host IP routes and
    probe trees, and the PKI binding it together.

    Construction uses global knowledge, as any simulator must; the protocol
    layers on top only touch the per-node state a real host would hold. *)

module Generate = Concilium_topology.Generate
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Id = Concilium_overlay.Id
module Pastry = Concilium_overlay.Pastry
module Tree = Concilium_tomography.Tree
module Logical_tree = Concilium_tomography.Logical_tree
module Pki = Concilium_crypto.Pki

type config = {
  topology : Generate.params;
  overlay_fraction : float;  (** fraction of end hosts that join (paper: 3%) *)
  leaf_half_size : int;
  seed : int64;
}

val tiny_config : seed:int64 -> config
(** A few dozen overlay nodes; unit-test sized. *)

val small_config : seed:int64 -> config
(** A few hundred overlay nodes; the default experiment scale. *)

val paper_config : seed:int64 -> config
(** ~1,150 overlay nodes on a ~110k-router topology, matching Section 4.2. *)

type t = {
  config : config;
  generated : Generate.world;
  pastry : Pastry.t;
  host_router : int array;  (** overlay node index -> router id *)
  router_node : int array;
      (** inverse of [host_router]: router -> node, -1 when none *)
  peers : int array array;  (** overlay node -> its routing peers (overlay indices) *)
  peer_paths : Routes.path option array array;
      (** [peer_paths.(v).(i)] is the IP route from v to [peers.(v).(i)] *)
  trees : Tree.t array;  (** T_H per overlay node *)
  logical : Logical_tree.t array;
  pki : Pki.t;
  certificates : Pki.certificate array;
  secrets : Pki.secret_key array;
  voucher_offsets : int array;
  voucher_nodes : int array;
      (** CSR over physical links: the overlay nodes whose tree covers link
          [l] are [voucher_nodes.(voucher_offsets.(l))
          .. voucher_nodes.(voucher_offsets.(l+1) - 1)], ascending. *)
}

val build : config -> t

val node_count : t -> int
val id_of : t -> int -> Id.t
val public_key_of : t -> int -> Pki.public_key

val node_of_router : t -> int -> int option
(** Overlay node attached to a router, if any. *)

val ip_path : t -> from_node:int -> to_node:int -> Routes.path option
(** IP route between two overlay nodes, available when [to_node] is a
    routing peer of [from_node]. *)

val overlay_route : t -> from:int -> dest:Id.t -> int list
(** Overlay hops (node indices) from [from] to the root of [dest]. *)

val next_overlay_hop : t -> from:int -> dest:Id.t -> int option

val forest_links : t -> int -> int array
(** Distinct physical links of F_H: the union of H's tree and its routing
    peers' trees (paper Section 3.2). *)

val vouchers : t -> link:int -> int list
(** Overlay nodes whose probe tree covers the link. *)

val all_peer_paths : t -> Routes.path array
(** Every known (host, peer) IP route, flattened — the candidate set the
    failure injector draws from. *)
