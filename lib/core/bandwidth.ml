module Jump_table_model = Concilium_overlay.Jump_table_model

type params = {
  overlay_size : int;
  leaf_set_size : int;
  entry_bytes : int;
  path_summary_bytes : int;
  stripes_per_pair : int;
  packets_per_stripe : int;
  probe_packet_bytes : int;
}

(* Per-message wire sizes shared with the protocol's live byte accounting,
   so the analytic model and the simulator meter the same formats. *)
let probe_packet_bytes = 30
let advert_entry_bytes = 144 + 1 (* signed entry + path-loss summary *)
let advert_overhead_bytes = 20 + 128 (* header + PSS-R signature *)
let probe_stripe_bytes ~leaves = leaves * probe_packet_bytes
let advert_bytes ~entries = advert_overhead_bytes + (entries * advert_entry_bytes)
let heavy_burst_bytes ~rounds ~leaves = rounds * leaves * probe_packet_bytes

let paper_params =
  {
    overlay_size = 100_000;
    leaf_set_size = 16;
    entry_bytes = 144;
    path_summary_bytes = 1;
    stripes_per_pair = 100;
    packets_per_stripe = 2;
    probe_packet_bytes;
  }

let expected_routing_entries p =
  Jump_table_model.expected_routing_entries ~n:p.overlay_size ~leaf_set_size:p.leaf_set_size

let advertised_state_bytes p =
  expected_routing_entries p *. float_of_int (p.entry_bytes + p.path_summary_bytes)

let heavyweight_probe_bytes p =
  let leaves = expected_routing_entries p in
  let pairs = leaves *. (leaves -. 1.) /. 2. in
  pairs
  *. float_of_int p.stripes_per_pair
  *. float_of_int p.packets_per_stripe
  *. float_of_int p.probe_packet_bytes

let lightweight_extra_bytes _ = 0.

type report_row = { label : string; value : float; unit_ : string }

let report p =
  [
    { label = "expected routing entries"; value = expected_routing_entries p; unit_ = "entries" };
    {
      label = "advertised routing state";
      value = advertised_state_bytes p /. 1024.;
      unit_ = "KiB";
    };
    {
      label = "heavyweight probing (outgoing, per tree)";
      value = heavyweight_probe_bytes p /. (1024. *. 1024.);
      unit_ = "MiB";
    };
    { label = "lightweight probing (extra)"; value = lightweight_extra_bytes p; unit_ = "B" };
  ]
