module Generate = Concilium_topology.Generate
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Id = Concilium_overlay.Id
module Pastry = Concilium_overlay.Pastry
module Tree = Concilium_tomography.Tree
module Logical_tree = Concilium_tomography.Logical_tree
module Pki = Concilium_crypto.Pki
module Prng = Concilium_util.Prng

type config = {
  topology : Generate.params;
  overlay_fraction : float;
  leaf_half_size : int;
  seed : int64;
}

let tiny_config ~seed =
  {
    topology = Generate.tiny ~seed;
    overlay_fraction = 0.6;
    leaf_half_size = 4;
    seed;
  }

let small_config ~seed =
  {
    topology = Generate.small_scale ~seed;
    overlay_fraction = 0.06;
    leaf_half_size = 8;
    seed;
  }

let paper_config ~seed =
  {
    topology = Generate.paper_scale ~seed;
    overlay_fraction = 0.03;
    leaf_half_size = 8;
    seed;
  }

type t = {
  config : config;
  generated : Generate.world;
  pastry : Pastry.t;
  host_router : int array;
  router_node : int array;  (* router -> node, -1 when the router hosts none *)
  peers : int array array;
  peer_paths : Routes.path option array array;
  trees : Tree.t array;
  logical : Logical_tree.t array;
  pki : Pki.t;
  certificates : Pki.certificate array;
  secrets : Pki.secret_key array;
  (* CSR over links: vouchers for link l are
     voucher_nodes[voucher_offsets.(l) .. voucher_offsets.(l+1)), ascending. *)
  voucher_offsets : int array;
  voucher_nodes : int array;
}

let build config =
  let generated = Generate.generate config.topology in
  let graph = generated.Generate.graph in
  let rng = Prng.of_seed config.seed in
  let hosts = Graph.end_hosts graph in
  let member_count =
    max 2 (int_of_float (Float.round (config.overlay_fraction *. float_of_int (Array.length hosts))))
  in
  let chosen = Prng.sample_without_replacement rng member_count (Array.length hosts) in
  let host_router = Array.map (fun i -> hosts.(i)) chosen in
  (* The certificate authority assigns random identifiers; binding them to
     addresses derived from router ids keeps the simulation auditable. *)
  let pki = Pki.create ~seed:(Prng.int64 rng) in
  let ids = Array.init member_count (fun _ -> Id.random rng) in
  let enrolled =
    Array.init member_count (fun v ->
        Pki.issue pki
          ~address:(Printf.sprintf "10.%d.%d.%d" (host_router.(v) lsr 16)
                      ((host_router.(v) lsr 8) land 0xFF)
                      (host_router.(v) land 0xFF))
          ~node_id:(Id.to_hex ids.(v)))
  in
  let certificates = Array.map fst enrolled in
  let secrets = Array.map snd enrolled in
  let pastry = Pastry.build ~leaf_half_size:config.leaf_half_size ids in
  let peers = Array.init member_count (fun v -> Pastry.routing_peers pastry v) in
  let peer_paths =
    Array.init member_count (fun v ->
        let targets = Array.map (fun peer -> host_router.(peer)) peers.(v) in
        Routes.shortest_paths graph ~source:host_router.(v) ~targets)
  in
  let trees =
    Array.init member_count (fun v ->
        let paths =
          Array.of_list (List.filter_map (fun p -> p) (Array.to_list peer_paths.(v)))
        in
        Tree.of_paths ~root:host_router.(v) ~paths)
  in
  let logical = Array.map Logical_tree.of_tree trees in
  (* Two-pass CSR build: count vouchers per link, then fill node-major so
     each link's slice ends up in ascending node order. *)
  let link_count = Graph.link_count graph in
  let voucher_offsets = Array.make (link_count + 1) 0 in
  Array.iter
    (fun tree ->
      Array.iter
        (fun link -> voucher_offsets.(link + 1) <- voucher_offsets.(link + 1) + 1)
        (Tree.physical_links tree))
    trees;
  for link = 0 to link_count - 1 do
    voucher_offsets.(link + 1) <- voucher_offsets.(link + 1) + voucher_offsets.(link)
  done;
  let voucher_nodes = Array.make voucher_offsets.(link_count) 0 in
  let cursor = Array.copy voucher_offsets in
  Array.iteri
    (fun v tree ->
      Array.iter
        (fun link ->
          voucher_nodes.(cursor.(link)) <- v;
          cursor.(link) <- cursor.(link) + 1)
        (Tree.physical_links tree))
    trees;
  let router_node = Array.make (Graph.node_count graph) (-1) in
  Array.iteri (fun v router -> router_node.(router) <- v) host_router;
  {
    config;
    generated;
    pastry;
    host_router;
    router_node;
    peers;
    peer_paths;
    trees;
    logical;
    pki;
    certificates;
    secrets;
    voucher_offsets;
    voucher_nodes;
  }

let node_count t = Array.length t.host_router
let id_of t v = (Pastry.node t.pastry v).Pastry.id
let public_key_of t v = t.certificates.(v).Pki.subject_key

let node_of_router t router =
  if router < 0 || router >= Array.length t.router_node then None
  else begin
    let v = t.router_node.(router) in
    if v < 0 then None else Some v
  end

let ip_path t ~from_node ~to_node =
  let rec find i =
    if i >= Array.length t.peers.(from_node) then None
    else if t.peers.(from_node).(i) = to_node then t.peer_paths.(from_node).(i)
    else find (i + 1)
  in
  find 0

let overlay_route t ~from ~dest = Pastry.route t.pastry ~from ~dest
let next_overlay_hop t ~from ~dest = Pastry.next_hop t.pastry ~from ~dest

let forest_links t v =
  let seen = Concilium_util.Bitset.create (Graph.link_count t.generated.Generate.graph) in
  let add_tree index =
    Array.iter
      (fun link -> Concilium_util.Bitset.add seen link)
      (Tree.physical_links t.trees.(index))
  in
  add_tree v;
  Array.iter add_tree t.peers.(v);
  let out = Array.make (Concilium_util.Bitset.cardinal seen) 0 in
  let k = ref 0 in
  (* Bitset iteration is ascending: the output arrives sorted. *)
  Concilium_util.Bitset.iter
    (fun link ->
      out.(!k) <- link;
      incr k)
    seen;
  out

let vouchers t ~link =
  if link < 0 || link + 1 >= Array.length t.voucher_offsets then []
  else begin
    let acc = ref [] in
    for i = t.voucher_offsets.(link + 1) - 1 downto t.voucher_offsets.(link) do
      acc := t.voucher_nodes.(i) :: !acc
    done;
    !acc
  end

let all_peer_paths t =
  let out = ref [] in
  Array.iter
    (fun per_node -> Array.iter (function Some p -> out := p :: !out | None -> ()) per_node)
    t.peer_paths;
  Array.of_list !out
