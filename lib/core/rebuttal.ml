module Id = Concilium_overlay.Id
module Pki = Concilium_crypto.Pki
module Signed = Concilium_crypto.Signed
module Graph = Concilium_provenance.Graph

type archive = { mutable verdicts : Accusation.t list }

let create_archive () = { verdicts = [] }
let archive_size archive = List.length archive.verdicts

let record archive accusation = archive.verdicts <- accusation :: archive.verdicts

let drop_time accusation =
  (Signed.payload accusation).Accusation.evidence.Accusation.drop_time

let covers ~accusation candidate =
  let accusation_body = Signed.payload accusation in
  let candidate_body = Signed.payload candidate in
  (* The onward verdict must come from the accused itself, for (nearly) the
     same drop: stewards time their judgments off the same missing ack, so
     the two drop times differ by at most the probe window. *)
  Id.equal candidate_body.Accusation.accuser accusation_body.Accusation.accused
  && abs_float (drop_time candidate -. drop_time accusation)
     <= accusation_body.Accusation.config.Blame.delta

let defend archive ~against =
  List.find_opt (fun candidate -> covers ~accusation:against candidate) archive.verdicts

type outcome =
  | Accusation_stands
  | Blame_shifted of Id.t
  | Accusation_invalid of Accusation.rejection

let adjudicate ?(prov = Concilium_provenance.Graph.noop) ?(accuser = -1) ?(accused = -1) pki
    ~accusation ~rebuttal =
  let outcome =
    match Accusation.verify pki accusation with
    | Error rejection -> Accusation_invalid rejection
    | Ok () -> (
        match rebuttal with
        | None -> Accusation_stands
        | Some candidate ->
            if covers ~accusation candidate && Accusation.verify pki candidate = Ok () then
              Blame_shifted (Signed.payload candidate).Accusation.accused
            else Accusation_stands)
  in
  (* Adjudications join the provenance DAG as rebuttal nodes; the caller
     supplies dense node numbers when it knows them (the signed statements
     themselves carry only overlay identities). *)
  (if Graph.enabled prov then
     let kind =
       match outcome with
       | Accusation_stands -> Graph.Stands
       | Blame_shifted _ -> Graph.Shifted
       | Accusation_invalid _ -> Graph.Invalid
     in
     ignore (Graph.rebuttal prov ~accuser ~accused ~outcome:kind : Graph.node));
  outcome

let pp_outcome fmt = function
  | Accusation_stands -> Format.pp_print_string fmt "accusation stands"
  | Blame_shifted id -> Format.fprintf fmt "blame shifted to %a" Id.pp id
  | Accusation_invalid rejection ->
      Format.fprintf fmt "accusation invalid: %a" Accusation.pp_rejection rejection
