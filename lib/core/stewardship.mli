(** Recursive message stewardship and accusation revision (paper
    Section 3.5).

    Every hop along an overlay route treats a forwarded message as its own:
    it awaits the destination's acknowledgment and, when none arrives,
    judges its next hop. A missing ack therefore yields a *chain* of
    judgments. Revision walks the chain downstream from the sender: each
    judge's verdict is replaced by the verdict its suspect pushes upstream,
    provided that verdict's evidence survives independent verification.
    Blame settles on the first party that cannot shift it:

    - a hop whose suspect pushed no verdict (the suspect dropped the
      message, or refuses to incriminate anyone);
    - a hop that withheld its own verdict (refusing to push is
      self-incriminating — upstream never amends past it);
    - the network, when the last verdict in the walkable chain found a bad
      link rather than a bad forwarder;
    - no one, when the chain ends on a hop that availability probing shows
      offline ({!Offline}) — absence is not misbehaviour. *)

type target =
  | Next_hop of int  (** the judge blames this overlay node *)
  | Network  (** the judge's tomography shows a bad link: blame the IP network *)
  | Offline of int
      (** the judge's availability probes show this hop offline (churned
          out or crashed): nobody misbehaved, route around it. Terminates
          the revision chain — an absent node can push nothing upstream —
          and never charges a verdict window. *)

type judgment = {
  judge : int;
  target : target;
  blame : float;  (** Equation 2 value backing the verdict *)
  evidence_valid : bool;  (** whether third parties accept its evidence *)
  pushed : bool;  (** whether the judge pushes this verdict upstream *)
}

type resolution = {
  final : target option;
      (** [None] only when the first judge issued no judgment at all *)
  exonerated : int list;  (** suspects cleared by downstream revisions, upstream first *)
  judgments_used : int;
}

val resolve : first_judge:int -> judgment_of:(int -> judgment option) -> resolution
(** Walk the revision chain starting from the original sender's judgment.
    [judgment_of] returns a node's (pushed or retrievable) verdict for this
    message, if it issued one. Cycle-safe. *)

val chain_of_route :
  hops:int list -> faulty:(int -> bool) -> judge:(judge:int -> suspect:int -> judgment option) ->
  judgment list
(** Helper for simulations: given the overlay hops of a route (sender
    first) and the ground-truth drop point, produce the judgment each hop
    that actually *saw* the message would issue (hops after the drop point
    never saw it and judge nothing). *)
