type target = Next_hop of int | Network | Offline of int

type judgment = {
  judge : int;
  target : target;
  blame : float;
  evidence_valid : bool;
  pushed : bool;
}

type resolution = {
  final : target option;
  exonerated : int list;
  judgments_used : int;
}

let resolve ~first_judge ~judgment_of =
  let visited = Hashtbl.create 16 in
  let rec walk exonerated used ~own_verdict =
    match own_verdict with
    | None ->
        (* This judge issued nothing. If it is the first judge there is no
           diagnosis; otherwise the caller handles it. *)
        { final = None; exonerated = List.rev exonerated; judgments_used = used }
    | Some judgment -> (
        match judgment.target with
        | Network ->
            { final = Some Network; exonerated = List.rev exonerated; judgments_used = used + 1 }
        | Offline suspect ->
            (* An offline hop cannot push a verdict and carries no
               culpability; the chain terminates on it. *)
            {
              final = Some (Offline suspect);
              exonerated = List.rev exonerated;
              judgments_used = used + 1;
            }
        | Next_hop suspect -> (
            if Hashtbl.mem visited suspect then
              (* Malformed (cyclic) chain: stop at the current suspect. *)
              {
                final = Some (Next_hop suspect);
                exonerated = List.rev exonerated;
                judgments_used = used + 1;
              }
            else begin
              Hashtbl.replace visited suspect ();
              match judgment_of suspect with
              | Some pushed_verdict when pushed_verdict.pushed && pushed_verdict.evidence_valid
                ->
                  (* The suspect shifts blame downstream: exonerate it and
                     adopt its verdict. *)
                  walk (suspect :: exonerated) (used + 1) ~own_verdict:(Some pushed_verdict)
              | Some _ | None ->
                  (* No verdict, an unverifiable one, or a withheld one:
                     the suspect keeps the blame. *)
                  {
                    final = Some (Next_hop suspect);
                    exonerated = List.rev exonerated;
                    judgments_used = used + 1;
                  }
            end))
  in
  Hashtbl.replace visited first_judge ();
  walk [] 0 ~own_verdict:(judgment_of first_judge)

let chain_of_route ~hops ~faulty ~judge =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  let rec saw_message acc = function
    | [] -> List.rev acc
    | (a, b) :: rest ->
        (* Hop a saw the message; it judges b. If a is the faulty hop it
           dropped the message, so nobody downstream saw it. *)
        if faulty a then List.rev acc
        else begin
          match judge ~judge:a ~suspect:b with
          | Some j -> saw_message (j :: acc) rest
          | None -> saw_message acc rest
        end
  in
  saw_message [] (pairs hops)
