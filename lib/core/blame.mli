(** Fuzzy-logic blame attribution (paper Section 3.4, Equations 2 and 3).

    When A's message through B towards Z goes unacknowledged, A computes
    the probability that the IP path from B to its next hop C was bad, from
    the probe results covering the path's links in the window
    [t - Delta, t + Delta]:

      Pr(B->C bad) = max over links l of
        (sum over p in probes(l) of [p.up*(1-a) + (1-p.up)*a]) / |probes(l)|

    where a is probe accuracy and max is fuzzy-logic OR. Blame for B is the
    complement: Pr(B faulty) = 1 - Pr(B->C bad). B's own probe results are
    excluded so B cannot exculpate itself with fabricated data. *)

module Observation = Concilium_tomography.Observation

type config = {
  accuracy : float;  (** a: probability a probe classifies a link correctly *)
  delta : float;  (** window half-width in seconds (the paper uses 60 s) *)
  guilt_threshold : float;  (** blame above this yields a guilty verdict (the paper studies 0.4) *)
}

val paper_config : config
(** a = 0.9, Delta = 60 s, threshold = 0.4. *)

val link_bad_confidence : accuracy:float -> up_votes:int -> down_votes:int -> float
(** The inner average of Equation 3 for one link: each "up" probe
    contributes (1 - a), each "down" probe contributes a. *)

val dedup_votes : (int * bool) list -> (int * bool) list
(** One vote per prober: each prober keeps its latest vote in the list
    (votes are oldest-first as produced by [Observation.on_link]), at its
    first-occurrence position. This is the ballot-stuffing defense — a
    compromised prober that floods duplicate corroborating reports into a
    judgment window collapses back to a single voice. *)

val path_bad_confidence :
  config ->
  observations:Observation.t ->
  links:int array ->
  drop_time:float ->
  exclude_prober:int ->
  ?visible:(int -> bool) ->
  ?one_vote_per_prober:bool ->
  unit ->
  float
(** Equation 3 over a full path: the fuzzy OR (max) across links of the
    per-link confidence. Links with no probe results in the window are
    skipped; if no link has any result the confidence is 0 (nothing
    suggests the network failed, so the forwarder absorbs the blame).
    [visible] restricts the probers whose snapshots the judge actually
    holds (default: everyone); the judged node is excluded regardless.
    [one_vote_per_prober] (default false) applies {!dedup_votes} per link
    before averaging. *)

val blame :
  config ->
  observations:Observation.t ->
  links:int array ->
  drop_time:float ->
  exclude_prober:int ->
  ?visible:(int -> bool) ->
  ?one_vote_per_prober:bool ->
  unit ->
  float
(** Equation 2: 1 - {!path_bad_confidence}. *)

val blame_of_observations :
  config -> grouped:(int * bool) list array -> float
(** Pure form used by accusation verification: [grouped.(i)] lists
    (prober, up) votes for the i-th link; returns 1 - max-link confidence.
    The caller has already applied windowing and prober exclusion. *)

type verdict = Guilty | Innocent

val verdict_of_blame : config -> float -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
