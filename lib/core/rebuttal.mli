(** Fault rebuttals (paper Sections 3 and 3.5).

    Every Concilium accusation is provisional: the accused may prove that
    the message was actually dropped further downstream. A node therefore
    archives the onward verdicts it issued (as stewards do for every
    message they forward). When another host is about to sanction it, the
    node is shown the accusation and answers with the archived verdict for
    the same drop — a *rebuttal*. The adjudicator independently verifies
    both statements; a verified rebuttal shifts the blame to the rebuttal's
    own accused, exonerating the original target. *)

module Id = Concilium_overlay.Id
module Pki = Concilium_crypto.Pki

type archive
(** A node's archive of the onward verdicts it issued, indexed by drop
    time. *)

val create_archive : unit -> archive
val archive_size : archive -> int

val record : archive -> Accusation.t -> unit
(** Store an onward verdict (a signed accusation this node issued against
    its own next hop) for later defense. *)

val defend : archive -> against:Accusation.t -> Accusation.t option
(** The accused searches its archive for an onward verdict covering the
    same drop: issued by the accusation's accused, within the blame window
    around the accusation's drop time. *)

type outcome =
  | Accusation_stands  (** no valid rebuttal: the accused keeps the blame *)
  | Blame_shifted of Id.t  (** rebuttal verified: this node is the true culprit *)
  | Accusation_invalid of Accusation.rejection
      (** the original accusation itself fails verification *)

val adjudicate :
  ?prov:Concilium_provenance.Graph.t ->
  ?accuser:int ->
  ?accused:int ->
  Pki.t ->
  accusation:Accusation.t ->
  rebuttal:Accusation.t option ->
  outcome
(** What a third party concludes. A rebuttal counts only if (i) it
    verifies, (ii) its accuser is the accusation's accused, and (iii) its
    drop time falls within the accusation's probe window.

    When [prov] is a recording graph, the adjudication is recorded as a
    rebuttal node carrying the outcome; [accuser]/[accused] are the dense
    node numbers when the caller knows them (default -1: the signed
    statements only carry overlay identities). *)

val pp_outcome : Format.formatter -> outcome -> unit
