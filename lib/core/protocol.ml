module Id = Concilium_overlay.Id
module Pastry = Concilium_overlay.Pastry
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Routes = Concilium_topology.Routes
module Observation = Concilium_tomography.Observation
module Probing = Concilium_tomography.Probing
module Logical_tree = Concilium_tomography.Logical_tree
module Sha256 = Concilium_crypto.Sha256
module Prng = Concilium_util.Prng
module Obs = Concilium_obs.Collector
module Trace = Concilium_obs.Trace
module Metrics = Concilium_obs.Metrics
module Prov = Concilium_provenance.Graph

let log_source = Logs.Src.create "concilium.protocol" ~doc:"Concilium protocol runtime"

module Log = (val Logs.src_log log_source : Logs.LOG)

type behavior =
  | Honest
  | Message_dropper of float
  | Probe_flipper
  | Commitment_refuser
  | Silent_dropper
  | Sparse_advertiser of float

type config = {
  blame : Blame.config;
  window_size : int;
  accusation_m : int;
  max_probe_time : float;
  probe_backoff_cap : float;
  dht_replication : int;
  heavyweight_rounds : int;
  heavyweight_loss_threshold : float;
  min_heavyweight_rounds : int;
  retry_limit : int;
  retry_base_delay : float;
  retry_backoff : float;
  evidence_ttl : float;
  exclude_suspect_probes : bool;
  one_vote_per_prober : bool;
  validation_gamma_jump : float;
}

let default_config =
  {
    blame = Blame.paper_config;
    window_size = 100;
    accusation_m = 6;
    max_probe_time = 120.;
    probe_backoff_cap = 4.;
    dht_replication = 4;
    heavyweight_rounds = 50;
    heavyweight_loss_threshold = 0.3;
    min_heavyweight_rounds = 10;
    retry_limit = 2;
    retry_base_delay = 1.;
    retry_backoff = 2.;
    evidence_ttl = Float.infinity;
    exclude_suspect_probes = true;
    one_vote_per_prober = true;
    validation_gamma_jump = 1.3;
  }

(* ---------- Adversary tap points ----------

   Taps are the seams where a strategy layer (Concilium_adversary) lets
   compromised nodes intercept or forge protocol messages. Every tap is a
   pure function of its arguments plus whatever state the strategy carries;
   determinism rules: a tap may draw randomness only from its own pre-split
   PRNG, never from the runtime's. A firing tap may change how much of the
   runtime PRNG stream the overridden honest code would have consumed
   (e.g. a forced drop skips a Message_dropper's Bernoulli draw) — a
   scenario is reproducible per (seed, taps), not across tap configs. *)

type forward_decision = Tap_forward | Tap_drop

type taps = {
  tap_route : time:float -> from:int -> dest:Id.t -> int list -> int list option;
      (* eclipse joins: rewrite the overlay route before the first attempt;
         [None] leaves it untouched *)
  tap_forward : time:float -> node:int -> sender:int -> next:int -> forward_decision option;
      (* colluding forwarders: override [node]'s forwarding decision;
         [None] defers to its configured behavior *)
  tap_observation : time:float -> prober:int -> link:int -> up:bool -> bool;
      (* lying reporters: transform the up/down bit a compromised prober
         records (and later advertises/archives) for a link *)
  tap_advertised_peers : time:float -> node:int -> int array -> int array option;
      (* biased peer sampling: rewrite the peer set a node advertises in
         its routing-state snapshot *)
  tap_forged_reports : time:float -> prober:int -> (int * bool) list;
      (* ballot stuffing: extra (link, up) observations a compromised
         prober injects after each lightweight round, mutually
         corroborating its coalition's story *)
}

let no_taps =
  {
    tap_route = (fun ~time:_ ~from:_ ~dest:_ _ -> None);
    tap_forward = (fun ~time:_ ~node:_ ~sender:_ ~next:_ -> None);
    tap_observation = (fun ~time:_ ~prober:_ ~link:_ ~up -> up);
    tap_advertised_peers = (fun ~time:_ ~node:_ _ -> None);
    tap_forged_reports = (fun ~time:_ ~prober:_ -> []);
  }

type diagnosis =
  | Diagnosed of Stewardship.resolution
  | Insufficient_evidence of { judge : int; usable_rounds : int; required_rounds : int }

type outcome = {
  message_id : string;
  delivered : bool;
  attempts : int;
  route : int list;
  drop : drop option;
  diagnosis : diagnosis option;
  no_commitment_from : int option;
}

and drop =
  | Dropped_by_overlay of int
  | Dropped_on_ip_link of int
  | Ack_lost_on_link of int
  | Hop_offline of int  (** the next hop was churned out when the message arrived *)

type t = {
  world : World.t;
  engine : Engine.t;
  link_state : Link_state.t;
  rng : Prng.t;
  config : config;
  behavior : int -> behavior;
  taps : taps;
  availability : time:float -> int -> bool;
  control_latency : time:float -> float;
  put_copies : time:float -> int;
  observations : Observation.t;
  windows : (int * int, Accusation.evidence Verdict_window.t) Hashtbl.t;
  dht : Dht.t;
  control_bytes : int array;
  (* Previous advertised per-peer path status, for snapshot diffs. *)
  last_advertised : bool array option array;
  obs : Obs.t;
  (* Provenance indexes: recorded observations and issued verdicts keyed
     back to their arena nodes, so evidence edges can be drawn when a
     verdict (or a formal accusation citing past verdicts) is produced.
     Only populated when the collector's provenance graph is recording.
     Times are keyed by their IEEE bits — the exact double, no epsilon. *)
  prov_probes : (int * int * int64 * bool, Prov.node) Hashtbl.t;
  prov_verdicts : (int * int * int64, Prov.node) Hashtbl.t;
  mutable message_seq : int;
}

let create ~world ~engine ~link_state ~rng ?(availability = fun ~time:_ _ -> true)
    ?(control_latency = fun ~time:_ -> 0.) ?(put_copies = fun ~time:_ -> 1) ?(obs = Obs.noop)
    ?(taps = no_taps) config ~behavior =
  (* Queue-depth sampling rides the engine's passive push hook: installed
     only for a recording collector, so the uninstrumented engine keeps its
     single-branch cost. *)
  if Obs.enabled obs then
    Engine.set_on_push engine (fun ~pending ->
        Metrics.observe obs.Obs.metrics "engine.queue_depth" (float_of_int pending));
  (* Replay parameters ride with the provenance graph so explain.exe can
     re-run Blame over archived votes without the run's config files. *)
  if Prov.enabled obs.Obs.prov then begin
    Prov.set_param obs.Obs.prov "accuracy" config.blame.Blame.accuracy;
    Prov.set_param obs.Obs.prov "delta" config.blame.Blame.delta;
    Prov.set_param obs.Obs.prov "guilt_threshold" config.blame.Blame.guilt_threshold
  end;
  {
    world;
    engine;
    link_state;
    rng;
    config;
    behavior;
    taps;
    availability;
    control_latency;
    put_copies;
    observations = Observation.create ();
    windows = Hashtbl.create 256;
    dht = Dht.create ~pastry:world.World.pastry ~replication:config.dht_replication;
    control_bytes = Array.make (World.node_count world) 0;
    last_advertised = Array.make (World.node_count world) None;
    obs;
    prov_probes = Hashtbl.create (if Prov.enabled obs.Obs.prov then 1024 else 1);
    prov_verdicts = Hashtbl.create (if Prov.enabled obs.Obs.prov then 256 else 1);
    message_seq = 0;
  }

let observations t = t.observations
let dht t = t.dht
let world t = t.world
let obs t = t.obs

(* ---------- Provenance recording ---------- *)

(* Every archived observation gets an arena node so verdict evidence edges
   can point at the exact votes that were counted. Identical re-reports
   (same prober/link/time/polarity) collapse onto the latest node — their
   vote multisets are indistinguishable, so replay is unaffected. *)
let prov_record_probe t ~prober ~link ~time ~up ~tapped ~forged =
  let prov = t.obs.Obs.prov in
  if Prov.enabled prov then begin
    let node = Prov.probe prov ~prober ~link ~time ~up ~tapped ~forged in
    Hashtbl.replace t.prov_probes (prober, link, Int64.bits_of_float time, up) node
  end

let prov_probe_of t obs =
  Hashtbl.find_opt t.prov_probes
    ( obs.Observation.prober,
      obs.Observation.link,
      Int64.bits_of_float obs.Observation.time,
      obs.Observation.up )

(* ---------- Lightweight probing ---------- *)

let run_probe_round t v =
  let tree = t.world.World.trees.(v) in
  let logical = t.world.World.logical.(v) in
  let loss_of_link link = Link_state.loss_rate t.link_state link in
  let now = Engine.now t.engine in
  (* Offline routing peers cannot acknowledge (churn looks like total ack
     suppression from the prober's vantage). Leaf indices map to overlay
     nodes through the leaf's router. *)
  let leaves = Concilium_tomography.Tree.leaves tree in
  let behavior leaf_index =
    let router = Concilium_tomography.Tree.router_of tree leaves.(leaf_index) in
    match World.node_of_router t.world router with
    | Some peer when not (t.availability ~time:now peer) -> Probing.Suppress_acks 1.0
    | Some _ | None -> Probing.Honest
  in
  let round = Probing.probe_round ~rng:t.rng ~loss_of_link ~tree ~behavior () in
  let verdicts = Probing.classify_round logical round.Probing.acked in
  (* The paper's disambiguation rule (Section 3.2): silent peers get a few
     follow-up probes to distinguish "truly offline" from "behind a lossy
     link". A leaf confirmed offline yields no last-mile observation — its
     chain must not be probed "down" when the links are fine. *)
  let logical_leaves = Logical_tree.leaves logical in
  Array.iteri
    (fun leaf_index logical_node ->
      let router = Concilium_tomography.Tree.router_of tree leaves.(leaf_index) in
      match World.node_of_router t.world router with
      | Some peer when not (t.availability ~time:now peer) ->
          verdicts.(logical_node) <- Probing.Indeterminate
      | Some _ | None -> ())
    logical_leaves;
  let flip = match t.behavior v with Probe_flipper -> true | _ -> false in
  Array.iteri
    (fun node verdict ->
      let record up =
        let up = if flip then not up else up in
        Array.iter
          (fun link ->
            let reported = t.taps.tap_observation ~time:now ~prober:v ~link ~up in
            if reported <> up then Metrics.incr t.obs.Obs.metrics "adversary.lies";
            Observation.record t.observations
              { Observation.time = now; prober = v; link; up = reported };
            prov_record_probe t ~prober:v ~link ~time:now ~up:reported
              ~tapped:(reported <> up) ~forged:false)
          (Logical_tree.chain logical node)
      in
      match verdict with
      | Probing.Probed_up -> record true
      | Probing.Probed_down -> record false
      | Probing.Indeterminate -> ())
    verdicts;
  (* Forged corroboration rides the same round: a compromised prober may
     stuff extra reports into the window. Free for the attacker — forged
     votes are fabricated locally, not probed, so no bandwidth is charged. *)
  (match t.taps.tap_forged_reports ~time:now ~prober:v with
  | [] -> ()
  | forged ->
      Metrics.incr t.obs.Obs.metrics ~by:(List.length forged) "adversary.forged_reports";
      List.iter
        (fun (link, up) ->
          Observation.record t.observations { Observation.time = now; prober = v; link; up };
          prov_record_probe t ~prober:v ~link ~time:now ~up ~tapped:false ~forged:true)
        forged);
  (* Bandwidth accounting (Section 4.4): the probe stripe itself, plus the
     snapshot advertisement to every routing peer — the full table on first
     exchange, a diff of changed path summaries after. *)
  let leaf_count = Array.length leaves in
  let peer_count = Array.length t.world.World.peers.(v) in
  let advert_entries =
    match t.last_advertised.(v) with
    | None -> leaf_count
    | Some previous ->
        let changed = ref 0 in
        Array.iteri
          (fun i acked -> if acked <> previous.(i) then incr changed)
          round.Probing.acked;
        !changed
  in
  t.last_advertised.(v) <- Some (Array.copy round.Probing.acked);
  let stripe_bytes = Bandwidth.probe_stripe_bytes ~leaves:leaf_count in
  let advert_bytes = peer_count * Bandwidth.advert_bytes ~entries:advert_entries in
  t.control_bytes.(v) <- t.control_bytes.(v) + stripe_bytes + advert_bytes;
  Metrics.incr t.obs.Obs.metrics ~by:stripe_bytes "bytes.probe_stripe";
  Metrics.incr t.obs.Obs.metrics ~by:advert_bytes "bytes.advert_diff";
  Metrics.incr t.obs.Obs.metrics "probe.light_rounds";
  let any_ack = Array.exists Fun.id round.Probing.acked in
  let round_span =
    Trace.span_open t.obs.Obs.trace ~time:now ~cat:"probe"
      ~args:[ ("prober", Trace.Int v) ]
      "probe.round"
  in
  Trace.span_close t.obs.Obs.trace ~time:now
    ~args:[ ("any_ack", Trace.Bool any_ack) ]
    round_span;
  (* A totally silent round (every ack timed out) drives the caller's
     probe backoff; any ack resets it. *)
  any_ack

(* Heavyweight tomography (Section 3.2): fired when application messages go
   unacknowledged. Many striped rounds, MINC inference, and per-link
   up/down observations at the inferred-loss threshold.

   The burst notionally spans [now, now + rounds * spacing): a judge that
   crashes or churns out mid-burst loses the remaining rounds. Returns the
   number of usable rounds; when that falls below the configured floor, no
   observations are recorded at all — a starved estimate is worse than an
   honest abstention. Observations are stamped at [stamp] (the blame-window
   edge), so chaos-injected control delay cannot push the evidence outside
   the window it was gathered for. *)
let heavyweight_round_spacing = 1.0

let run_heavyweight_burst t v ~stamp ~parent =
  if t.config.heavyweight_rounds <= 0 then 0
  else begin
    let tree = t.world.World.trees.(v) in
    let logical = t.world.World.logical.(v) in
    let now = Engine.now t.engine in
    let trace = t.obs.Obs.trace in
    let burst_span =
      Trace.span_open trace ~time:now ~cat:"probe" ~parent
        ~args:[ ("judge", Trace.Int v) ]
        "probe.heavy_burst"
    in
    let loss_of_link link = Link_state.loss_rate t.link_state link in
    let leaves = Concilium_tomography.Tree.leaves tree in
    let behavior leaf_index =
      let router = Concilium_tomography.Tree.router_of tree leaves.(leaf_index) in
      match World.node_of_router t.world router with
      | Some peer when not (t.availability ~time:now peer) -> Probing.Suppress_acks 1.0
      | Some _ | None -> Probing.Honest
    in
    let rounds = ref [] in
    for r = 0 to t.config.heavyweight_rounds - 1 do
      let round_time = now +. (float_of_int r *. heavyweight_round_spacing) in
      if t.availability ~time:round_time v then
        rounds := Probing.probe_round ~rng:t.rng ~loss_of_link ~tree ~behavior () :: !rounds
    done;
    let usable = List.length !rounds in
    let burst_bytes =
      Bandwidth.heavy_burst_bytes ~rounds:usable ~leaves:(Array.length leaves)
    in
    t.control_bytes.(v) <- t.control_bytes.(v) + burst_bytes;
    Metrics.incr t.obs.Obs.metrics ~by:burst_bytes "bytes.heavy_probe";
    Metrics.incr t.obs.Obs.metrics "probe.heavy_bursts";
    let required = min t.config.min_heavyweight_rounds t.config.heavyweight_rounds in
    if usable >= required && usable > 0 then begin
      let rounds = Array.of_list (List.rev !rounds) in
      let estimate =
        Concilium_tomography.Minc.infer_from_rounds ~trace ~parent:burst_span ~time:now
          logical rounds
      in
      let flip = match t.behavior v with Probe_flipper -> true | _ -> false in
      (* Offline leaves' chains carry no information (Section 3.2's
         disambiguation): skip them. *)
      let skip = Array.make (Logical_tree.node_count logical) false in
      Array.iteri
        (fun leaf_index logical_node ->
          let router = Concilium_tomography.Tree.router_of tree leaves.(leaf_index) in
          match World.node_of_router t.world router with
          | Some peer when not (t.availability ~time:now peer) -> skip.(logical_node) <- true
          | Some _ | None -> ())
        (Logical_tree.leaves logical);
      for node = 1 to Logical_tree.node_count logical - 1 do
        (* Only chains the estimator actually saw data for. *)
        if
          (not skip.(node))
          && estimate.Concilium_tomography.Minc.gamma.(Logical_tree.parent logical node) > 0.
        then begin
          let up =
            Concilium_tomography.Minc.link_loss estimate node
            < t.config.heavyweight_loss_threshold
          in
          let up = if flip then not up else up in
          Array.iter
            (fun link ->
              let reported = t.taps.tap_observation ~time:stamp ~prober:v ~link ~up in
              if reported <> up then Metrics.incr t.obs.Obs.metrics "adversary.lies";
              Observation.record t.observations
                { Observation.time = stamp; prober = v; link; up = reported };
              prov_record_probe t ~prober:v ~link ~time:stamp ~up:reported
                ~tapped:(reported <> up) ~forged:false)
            (Logical_tree.chain logical node)
        end
      done
    end;
    Trace.span_close trace ~time:now
      ~args:[ ("usable_rounds", Trace.Int usable); ("required", Trace.Int required) ]
      burst_span;
    usable
  end

(* ---------- Routing-state advertisement and validation (Section 3.1) ---------- *)

type advertisement_report = {
  advertiser : int;
  validator : int;
  failures : Validation.failure list;
}

let build_advertisement t v =
  let now = Engine.now t.engine in
  let pastry_node = Pastry.node t.world.World.pastry v in
  let peers =
    match t.taps.tap_advertised_peers ~time:now ~node:v t.world.World.peers.(v) with
    | None -> t.world.World.peers.(v)
    | Some rewritten ->
        Metrics.incr t.obs.Obs.metrics "adversary.advert_rewrites";
        ignore (Prov.tap_firing t.obs.Obs.prov ~kind:Prov.Advert_rewrite ~node:v ~time:now : Prov.node);
        rewritten
  in
  let keep_fraction =
    match t.behavior v with Sparse_advertiser f -> f | _ -> 1.
  in
  let kept =
    Array.to_list peers
    |> List.filteri (fun i _ ->
           keep_fraction >= 1.
           || float_of_int i < keep_fraction *. float_of_int (Array.length peers))
  in
  (* Each referenced peer supplies a fresh signed stamp, as piggybacked on
     availability-probe responses. *)
  let summaries =
    List.map
      (fun peer ->
        let peer_id = World.id_of t.world peer in
        {
          Concilium_tomography.Snapshot.peer = peer_id;
          loss_level = 0;
          freshness =
            Concilium_overlay.Freshness.issue ~holder:peer_id
              ~secret:t.world.World.secrets.(peer)
              ~public:(World.public_key_of t.world peer)
              ~now;
        })
      kept
  in
  let snapshot =
    Concilium_tomography.Snapshot.make ~origin:pastry_node.Pastry.id
      ~secret:t.world.World.secrets.(v)
      ~public:(World.public_key_of t.world v)
      ~now ~summaries
  in
  let true_occupancy =
    Concilium_overlay.Routing_table.occupancy pastry_node.Pastry.table
  in
  let advertised_occupancy =
    int_of_float (Float.round (keep_fraction *. float_of_int true_occupancy))
  in
  {
    Validation.snapshot;
    jump_table_occupancy = min true_occupancy advertised_occupancy;
    leaf_set = pastry_node.Pastry.leaf_set;
  }

let exchange_advertisements t =
  let now = Engine.now t.engine in
  let reports = ref [] in
  for advertiser = 0 to World.node_count t.world - 1 do
    if t.availability ~time:now advertiser then begin
      let advertisement = build_advertisement t advertiser in
      let snapshot_bytes =
        Array.length t.world.World.peers.(advertiser)
        * Concilium_tomography.Snapshot.wire_bytes advertisement.Validation.snapshot
      in
      t.control_bytes.(advertiser) <- t.control_bytes.(advertiser) + snapshot_bytes;
      Metrics.incr t.obs.Obs.metrics ~by:snapshot_bytes "bytes.snapshot_exchange";
      Array.iter
        (fun validator ->
          if t.availability ~time:now validator then begin
            let validator_node = Pastry.node t.world.World.pastry validator in
            let local =
              {
                Validation.own_jump_occupancy =
                  Concilium_overlay.Routing_table.occupancy validator_node.Pastry.table;
                own_leaf_set = validator_node.Pastry.leaf_set;
              }
            in
            let failures =
              Validation.check t.world.World.pki ~now
                {
                  Validation.default_config with
                  Validation.gamma_jump = t.config.validation_gamma_jump;
                }
                ~local advertisement
            in
            if failures <> [] then
              reports := { advertiser; validator; failures } :: !reports
          end)
        t.world.World.peers.(advertiser)
    end
  done;
  List.rev !reports

let control_bytes_sent t v = t.control_bytes.(v)

let mean_control_bytes_per_second t ~horizon =
  if horizon <= 0. then 0.
  else begin
    let total = Array.fold_left ( + ) 0 t.control_bytes in
    float_of_int total /. float_of_int (World.node_count t.world) /. horizon
  end

let start_probing t ~horizon =
  for v = 0 to World.node_count t.world - 1 do
    (* Probe-timeout backoff: a tree that answers nothing (partition, mass
       churn) is re-probed at a multiplicatively backed-off cadence, capped
       so the prober still notices recovery. Any ack resets it. *)
    let backoff = ref 1. in
    let rec loop engine =
      if Engine.now engine < horizon then begin
        (* Offline hosts issue no probes this round but keep their timer. *)
        if t.availability ~time:(Engine.now engine) v then begin
          if run_probe_round t v then backoff := 1.
          else backoff := Float.min (!backoff *. 2.) (Float.max 1. t.config.probe_backoff_cap)
        end;
        let delay =
          !backoff *. Probing.schedule_jitter ~rng:t.rng ~max_probe_time:t.config.max_probe_time
        in
        if Engine.now engine +. delay < horizon then Engine.schedule engine ~delay loop
      end
    in
    let first = Probing.schedule_jitter ~rng:t.rng ~max_probe_time:t.config.max_probe_time in
    Engine.schedule t.engine ~delay:first loop
  done

(* ---------- Judgment machinery ---------- *)

let window_for t ~judge ~suspect =
  match Hashtbl.find_opt t.windows (judge, suspect) with
  | Some w -> w
  | None ->
      let w = Verdict_window.create ~window_size:t.config.window_size in
      Hashtbl.replace t.windows (judge, suspect) w;
      w

let visible_to t judge prober =
  prober = judge || Array.exists (( = ) prober) t.world.World.peers.(judge)

(* Mirror of [Blame.dedup_votes] over raw observations: one observation per
   prober, the prober's latest winning, first-occurrence positions
   preserved. The archived evidence must count exactly the votes the
   verdict counted, or [Accusation.make]'s recomputation would diverge
   from the judge's own arithmetic. *)
let dedup_observations obs_list =
  let rec update acc obs =
    match acc with
    | [] -> [ obs ]
    | o :: rest when o.Observation.prober = obs.Observation.prober -> obs :: rest
    | o :: rest -> o :: update rest obs
  in
  List.fold_left update [] obs_list

(* Provenance of one judgment's evidence: the arena nodes of the exact
   votes that were counted (post defense filtering, in vote order), and
   how many candidate votes each defense knob removed. *)
type prov_evidence = {
  probes : Prov.node list;
  excluded : int;  (** removed by [exclude_suspect_probes] *)
  deduped : int;  (** collapsed by [one_vote_per_prober] *)
}

(* Collect the signed per-link votes a judge can present as evidence: the
   window-relevant observations of its own forest, re-signed here as they
   would appear inside the provers' archived snapshots. Also returns the
   evidence's provenance so the verdict node can cite the exact votes. *)
let gather_evidence t ~judge ~suspect ~links ~drop_time ~commitment =
  let lo = drop_time -. t.config.blame.Blame.delta in
  let hi = drop_time +. t.config.blame.Blame.delta in
  let excluded = ref 0 in
  let deduped = ref 0 in
  let probes = ref [] in
  let link_votes =
    Array.to_list links
    |> List.filter_map (fun link ->
           let visible =
             List.filter
               (fun obs -> visible_to t judge obs.Observation.prober)
               (Observation.on_link t.observations ~link ~lo ~hi)
           in
           let kept =
             List.filter
               (fun obs ->
                 let keep =
                   not (t.config.exclude_suspect_probes && obs.Observation.prober = suspect)
                 in
                 if not keep then incr excluded;
                 keep)
               visible
           in
           let usable = if t.config.one_vote_per_prober then dedup_observations kept else kept in
           deduped := !deduped + (List.length kept - List.length usable);
           if Prov.enabled t.obs.Obs.prov then
             List.iter
               (fun obs ->
                 match prov_probe_of t obs with
                 | Some node -> probes := node :: !probes
                 | None -> ())
               usable;
           let votes =
             List.map
               (fun obs ->
                 let prober = obs.Observation.prober in
                 Accusation.make_vote ~prober:(World.id_of t.world prober)
                   ~secret:t.world.World.secrets.(prober)
                   ~public:(World.public_key_of t.world prober)
                   ~link ~time:obs.Observation.time ~up:obs.Observation.up)
               usable
           in
           if votes = [] then None else Some { Accusation.link; votes })
  in
  ( { Accusation.path_links = links; link_votes; drop_time; commitment },
    { probes = List.rev !probes; excluded = !excluded; deduped = !deduped } )

(* Phase A of a judgment: compute the verdict and archive-ready evidence
   without touching any window. Windows are only charged (phase B, below)
   after the revision chain has had its say, so a downstream exoneration
   reaches the judge's books instead of silently accruing guilt against an
   honest forwarder. *)
let evaluate_suspect t ~judge ~suspect ~links ~drop_time ~commitment =
  (* The Section 3.4 self-exculpation defense: the suspect's own probe
     reports never count towards its own judgment. [-1] never matches a
     real prober, so the defense-off soak canary can observe the attack. *)
  let exclude = if t.config.exclude_suspect_probes then suspect else -1 in
  let blame =
    Blame.blame t.config.blame ~observations:t.observations ~links ~drop_time
      ~exclude_prober:exclude ~visible:(visible_to t judge)
      ~one_vote_per_prober:t.config.one_vote_per_prober ()
  in
  let verdict = Blame.verdict_of_blame t.config.blame blame in
  Log.debug (fun m ->
      m "node %d judges %d: blame %.3f -> %a" judge suspect blame Blame.pp_verdict verdict);
  let evidence, prov_info = gather_evidence t ~judge ~suspect ~links ~drop_time ~commitment in
  (verdict, blame, evidence, prov_info)

(* Hang a verdict node's evidence under it: defense interventions first,
   then the counted votes in vote order, then episode-scoped events (tap
   firings, steward failover). The edge order is part of the byte-stable
   output contract. *)
let attach_verdict_evidence prov vnode ~judge ~suspect ~prov_info ~events =
  if prov_info.excluded > 0 then
    Prov.edge prov ~parent:vnode
      ~child:
        (Prov.defense prov ~kind:Prov.Exclude_suspect ~removed:prov_info.excluded ~judge ~suspect);
  if prov_info.deduped > 0 then
    Prov.edge prov ~parent:vnode
      ~child:(Prov.defense prov ~kind:Prov.Vote_dedup ~removed:prov_info.deduped ~judge ~suspect);
  List.iter (fun probe -> Prov.edge prov ~parent:vnode ~child:probe) prov_info.probes;
  List.iter (fun event -> Prov.edge prov ~parent:vnode ~child:event) events

(* Phase B: charge the verdict window and escalate to a formal accusation
   when it crosses m. Evidence past its re-verification TTL is expired
   first; publication fails over across the accused key's live DHT
   replicas. *)
let verdict_label = function Blame.Guilty -> "guilty" | Blame.Innocent -> "innocent"

let record_judgment t ~judge ~suspect ~verdict ~blame ~evidence ~drop_time ~episode ~vnode =
  let metrics = t.obs.Obs.metrics in
  let trace = t.obs.Obs.trace in
  let prov = t.obs.Obs.prov in
  if vnode <> Prov.none then
    Hashtbl.replace t.prov_verdicts (judge, suspect, Int64.bits_of_float drop_time) vnode;
  let window = window_for t ~judge ~suspect in
  Verdict_window.record window { Verdict_window.verdict; blame; drop_time; evidence };
  if Float.is_finite t.config.evidence_ttl then
    Verdict_window.expire window ~before:(drop_time -. t.config.evidence_ttl);
  Metrics.observe metrics "verdict_window.occupancy"
    (float_of_int (Verdict_window.length window));
  (match verdict with
  | Blame.Guilty -> Metrics.incr metrics "verdict.guilty"
  | Blame.Innocent -> Metrics.incr metrics "verdict.innocent");
  Trace.instant trace ~time:(Engine.now t.engine) ~cat:"episode" ~span:episode
    ~args:
      [
        ("judge", Trace.Int judge);
        ("suspect", Trace.Int suspect);
        ("verdict", Trace.String (verdict_label verdict));
      ]
    "episode.verdict";
  if
    (match verdict with Blame.Guilty -> true | Blame.Innocent -> false)
    && Verdict_window.should_accuse window ~m:t.config.accusation_m
  then begin
    (* The formal statement carries the archived evidence of every other
       guilty verdict in the window (the newest IS the primary evidence). *)
    let supporting =
      List.filter_map
        (fun entry ->
          (* Identity (not structural) comparison is the point: exclude the
             exact evidence value being filed.  lint: allow physical-equality *)
          if entry.Verdict_window.evidence == evidence then None
          else Some entry.Verdict_window.evidence)
        (Verdict_window.guilty_entries window)
    in
    match
      Accusation.make
        ~accuser:(World.id_of t.world judge)
        ~secret:t.world.World.secrets.(judge)
        ~public:(World.public_key_of t.world judge)
        ~accused:(World.id_of t.world suspect)
        ~config:t.config.blame ~evidence ~supporting ~now:drop_time
    with
    | accusation ->
        Log.info (fun m ->
            m "node %d files a formal accusation against %d (%d guilty in window)" judge
              suspect
              (Verdict_window.guilty_count window));
        let hops = ref 0 in
        let time = Engine.now t.engine in
        let report =
          Dht.put t.dht ~from:judge
            ~alive:(fun node -> t.availability ~time node)
            ~copies:(t.put_copies ~time)
            ~accused_key:(World.public_key_of t.world suspect)
            accusation ~hops
        in
        Metrics.incr metrics "dht.puts";
        Metrics.incr metrics ~by:report.Dht.replicas_written "dht.put_replicas";
        Trace.instant trace ~time ~cat:"episode" ~span:episode
          ~args:
            [
              ("judge", Trace.Int judge);
              ("suspect", Trace.Int suspect);
              ("replicas", Trace.Int report.Dht.replicas_written);
            ]
          "episode.accusation";
        if report.Dht.put_failed_over then begin
          Metrics.incr metrics "dht.put_failovers";
          (* The chaos transcript extracts these instants to report the
             engine time at which each DHT write failed over. *)
          Trace.instant trace ~time ~cat:"dht"
            ~args:[ ("judge", Trace.Int judge); ("suspect", Trace.Int suspect) ]
            "dht.put.failover"
        end;
        if Prov.enabled prov then begin
          (* The formal accusation cites the primary verdict plus every
             other guilty verdict in the window whose node is still known
             (a judgment can predate provenance recording), and any DHT
             failover its publication took. *)
          let anode = Prov.accusation prov ~accuser:judge ~accused:suspect ~blame ~time:drop_time in
          Prov.edge prov ~parent:anode ~child:vnode;
          List.iter
            (fun entry ->
              (* Skip the evidence value being filed, by identity, exactly
                 as the [supporting] filter above.  lint: allow physical-equality *)
              if not (entry.Verdict_window.evidence == evidence) then begin
                match
                  Hashtbl.find_opt t.prov_verdicts
                    (judge, suspect, Int64.bits_of_float entry.Verdict_window.drop_time)
                with
                | Some supporting_node -> Prov.edge prov ~parent:anode ~child:supporting_node
                | None -> ()
              end)
            (Verdict_window.guilty_entries window);
          if report.Dht.put_failed_over then
            Prov.edge prov ~parent:anode
              ~child:(Prov.failover prov ~kind:Prov.Dht_put ~node:judge ~time)
        end
    | exception Invalid_argument _ ->
        (* The archived evidence no longer clears the threshold (probe data
           may have aged out of the window); the accusation is not filed. *)
        ()
  end

let guilty_count t ~judge ~suspect =
  match Hashtbl.find_opt t.windows (judge, suspect) with
  | Some w -> Verdict_window.guilty_count w
  | None -> 0

let fetch_accusations t ~from ~accused =
  let hops = ref 0 in
  let time = Engine.now t.engine in
  let report =
    Dht.get t.dht ~from
      ~alive:(fun node -> t.availability ~time node)
      ~accused_key:(World.public_key_of t.world accused)
      ~hops ()
  in
  Metrics.incr t.obs.Obs.metrics "dht.gets";
  if report.Dht.get_failed_over then begin
    Metrics.incr t.obs.Obs.metrics "dht.get_failovers";
    Trace.instant t.obs.Obs.trace ~time ~cat:"dht"
      ~args:[ ("reader", Trace.Int from); ("accused", Trace.Int accused) ]
      "dht.get.failover";
    ignore (Prov.failover t.obs.Obs.prov ~kind:Prov.Dht_get ~node:from ~time : Prov.node)
  end;
  report.Dht.accusations

(* ---------- Message lifecycle ---------- *)

type hop_fate = {
  received : bool;
  committed : bool;  (** issued a forwarding commitment to its upstream *)
  forwarded : bool;
}

let fresh_message_id t ~from ~dest =
  t.message_seq <- t.message_seq + 1;
  Sha256.hex_digest
    (Printf.sprintf "msg|%d|%s|%d|%.6f" from (Id.to_hex dest) t.message_seq
       (Engine.now t.engine))

let transmit_over_path t path =
  (* Per-link Bernoulli loss using the instantaneous link state. *)
  let links = path.Routes.links in
  let rec walk i =
    if i >= Array.length links then Ok ()
    else if Prng.bernoulli t.rng (Link_state.loss_rate t.link_state links.(i)) then
      Error links.(i)
    else walk (i + 1)
  in
  walk 0

let drop_label = function
  | None -> "none"
  | Some (Dropped_by_overlay node) -> Printf.sprintf "overlay:%d" node
  | Some (Dropped_on_ip_link link) -> Printf.sprintf "ip_link:%d" link
  | Some (Ack_lost_on_link link) -> Printf.sprintf "ack_link:%d" link
  | Some (Hop_offline node) -> Printf.sprintf "offline:%d" node

let send_message t ~from ~dest ~payload ~on_outcome =
  ignore payload;
  let trace = t.obs.Obs.trace in
  let metrics = t.obs.Obs.metrics in
  let prov = t.obs.Obs.prov in
  (* Adversary tap firings and failovers on this message's path, newest
     first; they become evidence children of every verdict the episode's
     diagnosis produces. *)
  let prov_events = ref [] in
  let message_id = fresh_message_id t ~from ~dest in
  let route = World.overlay_route t.world ~from ~dest in
  let route =
    match t.taps.tap_route ~time:(Engine.now t.engine) ~from ~dest route with
    | None -> route
    | Some rewritten ->
        Metrics.incr metrics "adversary.route_rewrites";
        if Prov.enabled prov then
          prov_events :=
            Prov.tap_firing prov ~kind:Prov.Route_rewrite ~node:from ~time:(Engine.now t.engine)
            :: !prov_events;
        rewritten
  in
  let hops = Array.of_list route in
  let hop_count = Array.length hops in
  Metrics.incr metrics "msg.sent";
  let msg_span =
    Trace.span_open trace ~time:(Engine.now t.engine) ~cat:"protocol"
      ~args:
        [
          ("from", Trace.Int from);
          ("id", Trace.String message_id);
          ("route_hops", Trace.Int hop_count);
        ]
      "message"
  in
  let finish outcome =
    Metrics.observe metrics "msg.attempts" (float_of_int outcome.attempts);
    Metrics.incr metrics (if outcome.delivered then "msg.delivered" else "msg.dropped");
    Trace.span_close trace ~time:(Engine.now t.engine)
      ~args:
        [
          ("delivered", Trace.Bool outcome.delivered);
          ("attempts", Trace.Int outcome.attempts);
          ("drop", Trace.String (drop_label outcome.drop));
        ]
      msg_span;
    on_outcome outcome
  in
  (* One delivery attempt: walk the route, recording each hop's fate. The
     message id is stable across retransmits, so every attempt's
     commitments name the same message. *)
  let rec attempt n =
    let now = Engine.now t.engine in
    let fates =
      Array.map (fun _ -> { received = false; committed = false; forwarded = false }) hops
    in
    fates.(0) <- { received = true; committed = true; forwarded = true };
    let drop = ref None in
    let commitments = Hashtbl.create 8 in
    let index = ref 0 in
    while !drop = None && !index < hop_count - 1 do
      let i = !index in
      let a = hops.(i) and b = hops.(i + 1) in
      (* Does a (for i > 0, a forwarder) actually forward? *)
      let a_forwards =
        i = 0
        ||
        match t.taps.tap_forward ~time:now ~node:a ~sender:from ~next:b with
        | Some Tap_drop ->
            Metrics.incr metrics "adversary.forced_drops";
            if Prov.enabled prov then
              prov_events :=
                Prov.tap_firing prov ~kind:Prov.Forced_drop ~node:a ~time:now :: !prov_events;
            false
        | Some Tap_forward -> true
        | None -> (
            match t.behavior a with
            | Message_dropper p -> not (Prng.bernoulli t.rng p)
            | Silent_dropper -> false
            | Honest | Probe_flipper | Commitment_refuser | Sparse_advertiser _ -> true)
      in
      if not a_forwards then begin
        fates.(i) <- { (fates.(i)) with forwarded = false };
        drop := Some (Dropped_by_overlay a)
      end
      else begin
        fates.(i) <- { (fates.(i)) with forwarded = true };
        match World.ip_path t.world ~from_node:a ~to_node:b with
        | None -> drop := Some (Dropped_by_overlay a) (* should not happen *)
        | Some path -> (
            match transmit_over_path t path with
            | Error link -> drop := Some (Dropped_on_ip_link link)
            | Ok () when not (t.availability ~time:now b) -> drop := Some (Hop_offline b)
            | Ok () ->
                fates.(i + 1) <- { (fates.(i + 1)) with received = true };
                let refuses =
                  match t.behavior b with
                  | Commitment_refuser | Silent_dropper -> true
                  | Honest | Message_dropper _ | Probe_flipper | Sparse_advertiser _ -> false
                in
                if not refuses then begin
                  fates.(i + 1) <- { (fates.(i + 1)) with committed = true };
                  let commitment =
                    Commitment.issue
                      ~forwarder:(World.id_of t.world b)
                      ~secret:t.world.World.secrets.(b)
                      ~public:(World.public_key_of t.world b)
                      ~sender:(World.id_of t.world a) ~destination:dest ~message_id ~now
                  in
                  Hashtbl.replace commitments b commitment
                end;
                incr index)
      end
    done;
    (* Ack travels the reverse path when the destination received. *)
    let delivered_to_root = !drop = None in
    let ack_ok = ref delivered_to_root in
    if delivered_to_root then begin
      let rec ack_walk i =
        (* ack hop: hops.(i+1) -> hops.(i). Peer relations are asymmetric, so
           the known route is the forward one; the ack retraces its physical
           links in reverse (per-link loss is direction-agnostic here). *)
        if i < 0 then ()
        else begin
          match World.ip_path t.world ~from_node:hops.(i) ~to_node:hops.(i + 1) with
          | None -> ack_walk (i - 1)
          | Some path -> (
              match transmit_over_path t path with
              | Ok () -> ack_walk (i - 1)
              | Error link ->
                  ack_ok := false;
                  drop := Some (Ack_lost_on_link link))
        end
      in
      ack_walk (hop_count - 2)
    end;
    if !ack_ok then
      finish
        {
          message_id;
          delivered = true;
          attempts = n + 1;
          route;
          drop = None;
          diagnosis = None;
          no_commitment_from = None;
        }
    else if n < t.config.retry_limit then begin
      (* Ack timeout: retransmit after bounded exponential backoff. Any
         chaos-injected control latency stretches the timer too. *)
      let delay =
        (t.config.retry_base_delay *. (t.config.retry_backoff ** float_of_int n))
        +. t.control_latency ~time:now
      in
      Metrics.incr metrics "msg.retransmits";
      (* The backoff span closes inside the retransmit's own scheduled
         action — tracing piggybacks on the event the retry needs anyway,
         adding none of its own. *)
      let backoff_span =
        Trace.span_open trace ~time:now ~cat:"protocol" ~parent:msg_span
          ~args:[ ("attempt", Trace.Int (n + 1)); ("delay", Trace.Float delay) ]
          "retransmit.backoff"
      in
      Engine.schedule t.engine ~delay (fun engine ->
          Trace.span_close trace ~time:(Engine.now engine) backoff_span;
          attempt (n + 1))
    end
    else diagnose ~attempts:(n + 1) ~drop_time:now ~fates ~commitments ~drop:!drop
  and diagnose ~attempts ~drop_time ~fates ~commitments ~drop =
    (* Retries exhausted: every steward that saw the final attempt judges
       its next hop once the probe window closes. *)
    let episode =
      Trace.span_open trace ~time:drop_time ~cat:"episode" ~parent:msg_span
        ~args:[ ("id", Trace.String message_id); ("attempts", Trace.Int attempts) ]
        "episode"
    in
    Trace.instant trace ~time:drop_time ~cat:"episode" ~span:episode
      ~args:[ ("drop", Trace.String (drop_label drop)) ]
      "episode.detect";
    Metrics.incr metrics "episode.started";
    let judge_at =
      drop_time +. t.config.blame.Blame.delta +. t.control_latency ~time:drop_time
    in
    Engine.schedule_at t.engine ~time:judge_at (fun _ ->
        let jt = Engine.now t.engine in
        let stamp = drop_time +. t.config.blame.Blame.delta in
        let required = min t.config.min_heavyweight_rounds t.config.heavyweight_rounds in
        (* A missing ack triggers heavyweight tomography at every steward
           that saw the message (Section 3.2); chaos may starve a burst
           below the usable floor. *)
        let usable = Array.make hop_count t.config.heavyweight_rounds in
        for i = 0 to hop_count - 2 do
          if
            fates.(i).received && fates.(i).forwarded
            && t.availability ~time:jt hops.(i)
          then usable.(i) <- run_heavyweight_burst t hops.(i) ~stamp ~parent:episode
        done;
        let judgments = Hashtbl.create 8 in
        (* Window charges deferred until after the revision walk (phase B). *)
        let pending = ref [] in
        let no_commitment = ref None in
        let starved = ref None in
        for i = 0 to hop_count - 2 do
          let a_fate = fates.(i) in
          let b_fate = fates.(i + 1) in
          if a_fate.received && a_fate.forwarded && t.availability ~time:jt hops.(i) then begin
            let a = hops.(i) and b = hops.(i + 1) in
            let pushed =
              match t.behavior a with
              | Message_dropper _ | Silent_dropper ->
                  false (* culpable nodes sit on their verdicts *)
              | Honest | Probe_flipper | Commitment_refuser | Sparse_advertiser _ -> true
            in
            if not (t.availability ~time:jt b) then begin
              (* Availability probing shows the suspect offline (churned out
                 or crashed): absence is not misbehaviour. No verdict window
                 is charged -- the chain terminates and routing simply
                 avoids the hop. An uncommitted offline hop is still flagged
                 for the reputation system. *)
              if (not b_fate.committed) && !no_commitment = None then no_commitment := Some b;
              Hashtbl.replace judgments a
                {
                  Stewardship.judge = a;
                  target = Stewardship.Offline b;
                  blame = 0.;
                  evidence_valid = true;
                  pushed;
                }
            end
            else begin
              match Hashtbl.find_opt commitments b with
              | None ->
                  (* b never received it, or refuses commitments: a cannot
                     prove anything about b. If tomography shows the a->b
                     path bad, blame the network; otherwise fall back to the
                     reputation system (Section 3.6). *)
                  if not b_fate.committed then begin
                    let links =
                      match World.ip_path t.world ~from_node:a ~to_node:b with
                      | Some path -> path.Routes.links
                      | None -> [||]
                    in
                    let exclude = if t.config.exclude_suspect_probes then b else -1 in
                    let confidence =
                      Blame.path_bad_confidence t.config.blame ~observations:t.observations
                        ~links ~drop_time ~exclude_prober:exclude
                        ~visible:(visible_to t a)
                        ~one_vote_per_prober:t.config.one_vote_per_prober ()
                    in
                    if confidence >= 1. -. t.config.blame.Blame.guilt_threshold then
                      Hashtbl.replace judgments a
                        {
                          Stewardship.judge = a;
                          target = Stewardship.Network;
                          blame = 1. -. confidence;
                          evidence_valid = true;
                          pushed;
                        }
                    else if !no_commitment = None then no_commitment := Some b
                  end
              | Some commitment ->
                  (* a judges b over b's egress path (b to its next hop), or
                     over a->b when b is the final hop (its ack went missing). *)
                  let egress_links =
                    if i + 2 < hop_count then
                      match World.ip_path t.world ~from_node:b ~to_node:hops.(i + 2) with
                      | Some path -> path.Routes.links
                      | None -> [||]
                    else begin
                      match World.ip_path t.world ~from_node:a ~to_node:b with
                      | Some path -> path.Routes.links
                      | None -> [||]
                    end
                  in
                  let verdict, blame, evidence, prov_info =
                    let blame_span =
                      Trace.span_open trace ~time:jt ~cat:"blame" ~parent:episode
                        ~args:[ ("judge", Trace.Int a); ("suspect", Trace.Int b) ]
                        "blame.evaluate"
                    in
                    let ((verdict, blame, _, _) as result) =
                      evaluate_suspect t ~judge:a ~suspect:b ~links:egress_links
                        ~drop_time ~commitment
                    in
                    Trace.span_close trace ~time:jt
                      ~args:
                        [
                          ("blame", Trace.Float blame);
                          ("verdict", Trace.String (verdict_label verdict));
                        ]
                      blame_span;
                    result
                  in
                  if evidence.Accusation.link_votes = [] && usable.(i) < required then begin
                    (* The burst was starved (chaos) and no archived probes
                       cover the window. Zero evidence defaults blame onto
                       the forwarder, so abstaining beats judging: degrade
                       to an explicit Insufficient_evidence outcome. *)
                    if !starved = None then starved := Some (a, b, usable.(i), blame, prov_info)
                  end
                  else begin
                    let target =
                      match verdict with
                      | Blame.Guilty -> Stewardship.Next_hop b
                      | Blame.Innocent -> Stewardship.Network
                    in
                    Hashtbl.replace judgments a
                      { Stewardship.judge = a; target; blame; evidence_valid = true; pushed };
                    pending := (a, b, verdict, blame, evidence, prov_info, usable.(i)) :: !pending
                  end
            end
          end
        done;
        (* Steward failover: when the sender itself crashed or abstained,
           the revision walk anchors at the most upstream hop that holds a
           judgment, so surviving stewards still deliver a diagnosis. *)
        let anchor = ref None in
        for i = hop_count - 2 downto 0 do
          if Hashtbl.mem judgments hops.(i) then anchor := Some hops.(i)
        done;
        (* When the natural first judge (the sender) holds no judgment and
           a downstream steward anchors the walk, the diagnosis survived a
           steward failover — record it as episode evidence. *)
        (match !anchor with
        | Some first_judge when first_judge <> hops.(0) && Prov.enabled prov ->
            prov_events :=
              Prov.failover prov ~kind:Prov.Steward ~node:first_judge ~time:jt :: !prov_events
        | Some _ | None -> ());
        let resolve_with ~first_judge =
          let resolve_span =
            Trace.span_open trace ~time:jt ~cat:"stewardship" ~parent:episode
              ~args:[ ("first_judge", Trace.Int first_judge) ]
              "stewardship.resolve"
          in
          let resolution =
            Stewardship.resolve ~first_judge ~judgment_of:(Hashtbl.find_opt judgments)
          in
          Trace.span_close trace ~time:jt
            ~args:
              [ ("exonerated", Trace.Int (List.length resolution.Stewardship.exonerated)) ]
            resolve_span;
          resolution
        in
        let episode_events = List.rev !prov_events in
        let diagnosis =
          match !anchor with
          | Some first_judge -> Diagnosed (resolve_with ~first_judge)
          | None -> (
              match (!starved, !no_commitment) with
              | Some (judge, suspect, usable_rounds, starved_blame, prov_info), None ->
                  (* An abstention is still a verdict with provenance: its
                     chain shows what little evidence existed (often none,
                     or votes a defense knob removed) and why replaying it
                     through Blame would have been unsafe. *)
                  if Prov.enabled prov then begin
                    let vnode =
                      Prov.verdict prov ~judge ~suspect ~kind:Prov.Insufficient
                        ~exonerated:false ~usable_rounds ~blame:starved_blame ~drop_time
                    in
                    attach_verdict_evidence prov vnode ~judge ~suspect ~prov_info
                      ~events:episode_events
                  end;
                  Insufficient_evidence { judge; usable_rounds; required_rounds = required }
              | _ -> Diagnosed (resolve_with ~first_judge:hops.(0)))
        in
        (* Phase B: charge verdict windows, honoring exonerations from the
           revision walk -- an exonerated suspect's Guilty verdict is
           archived as Innocent so honest forwarders cannot accrue formal
           accusations from drops they demonstrably did not cause. *)
        let exonerated =
          match diagnosis with
          | Diagnosed resolution -> resolution.Stewardship.exonerated
          | Insufficient_evidence _ -> []
        in
        List.iter
          (fun (judge, suspect, verdict, blame, evidence, prov_info, usable_rounds) ->
            let was_exonerated =
              match verdict with
              | Blame.Guilty -> List.mem suspect exonerated
              | Blame.Innocent -> false
            in
            let verdict = if was_exonerated then Blame.Innocent else verdict in
            let vnode =
              if not (Prov.enabled prov) then Prov.none
              else begin
                let kind =
                  match verdict with
                  | Blame.Guilty -> Prov.Guilty
                  | Blame.Innocent -> Prov.Innocent
                in
                let vnode =
                  Prov.verdict prov ~judge ~suspect ~kind ~exonerated:was_exonerated
                    ~usable_rounds ~blame ~drop_time
                in
                attach_verdict_evidence prov vnode ~judge ~suspect ~prov_info
                  ~events:episode_events;
                vnode
              end
            in
            record_judgment t ~judge ~suspect ~verdict ~blame ~evidence ~drop_time ~episode
              ~vnode)
          (List.rev !pending);
        (* The blame.* family splits diagnosis outcomes so degraded episodes
           (insufficient evidence: nobody judged, nobody cleared) are never
           conflated with correct acquittals (the network or an offline hop
           took the blame after actual judgment). Collusion-accuracy curves
           need exactly this distinction. *)
        (match diagnosis with
        | Diagnosed resolution -> begin
            Metrics.incr metrics "episode.diagnosed";
            match resolution.Stewardship.final with
            | Some (Stewardship.Next_hop _) -> Metrics.incr metrics "blame.node_blamed"
            | Some Stewardship.Network -> Metrics.incr metrics "blame.network_attributed"
            | Some (Stewardship.Offline _) -> Metrics.incr metrics "blame.offline_suspect"
            | None -> Metrics.incr metrics "blame.no_target"
          end
        | Insufficient_evidence _ ->
            Metrics.incr metrics "episode.insufficient_evidence";
            Metrics.incr metrics "blame.insufficient_evidence");
        Trace.span_close trace ~time:jt
          ~args:
            [
              ( "diagnosed",
                Trace.Bool
                  (match diagnosis with Diagnosed _ -> true | Insufficient_evidence _ -> false)
              );
            ]
          episode;
        finish
          {
            message_id;
            delivered = false;
            attempts;
            route;
            drop;
            diagnosis = Some diagnosis;
            no_commitment_from = !no_commitment;
          })
  in
  attempt 0
