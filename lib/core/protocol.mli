(** The integrated Concilium protocol runtime: one object that runs
    lightweight probing, message forwarding with commitments and
    stewardship, blame attribution, verdict windows, formal accusations and
    DHT publication over a simulated deployment.

    This module drives small-to-medium worlds end to end (examples and
    integration tests); the paper-scale experiments use the dedicated
    drivers in [concilium_experiments], which exploit the same building
    blocks without paying full-protocol cost per judgment. *)

module Id = Concilium_overlay.Id
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Observation = Concilium_tomography.Observation
module Prng = Concilium_util.Prng

type behavior =
  | Honest
  | Message_dropper of float
      (** drops messages it should forward with this probability *)
  | Probe_flipper  (** publishes inverted probe results *)
  | Commitment_refuser  (** forwards but never issues commitments *)
  | Silent_dropper
      (** refuses commitments AND drops everything — the Section 3.6
          adversary that only the reputation system can address *)
  | Sparse_advertiser of float
      (** advertises only this fraction of its real routing state,
          suppressing knowledge of honest peers (the attack the Section 3.1
          density tests exist to catch) *)

type config = {
  blame : Blame.config;
  window_size : int;  (** w *)
  accusation_m : int;  (** guilty verdicts before a formal accusation *)
  max_probe_time : float;  (** lightweight probe inter-arrival bound *)
  probe_backoff_cap : float;
      (** max multiplier on the probe inter-arrival when a tree answers
          nothing (partition, mass churn); any ack resets the backoff *)
  dht_replication : int;
  heavyweight_rounds : int;
      (** striped rounds a judge fires at its tree when a drop triggers
          heavyweight tomography (Section 3.2); 0 disables *)
  heavyweight_loss_threshold : float;
      (** MINC-inferred loss above which a link is recorded as "down" *)
  min_heavyweight_rounds : int;
      (** usable-round floor below which a starved burst records nothing
          and the judge abstains ({!Insufficient_evidence}) rather than
          issue a zero-evidence verdict *)
  retry_limit : int;  (** retransmits after the first unacknowledged attempt *)
  retry_base_delay : float;  (** seconds before the first retransmit *)
  retry_backoff : float;  (** multiplier per further retransmit (bounded) *)
  evidence_ttl : float;
      (** window entries whose evidence is older than this are expired
          before accusation checks; [infinity] disables *)
  exclude_suspect_probes : bool;
      (** the Section 3.4 defense: a suspect's own probe reports never
          count towards its own judgment or evidence. Default [true];
          adversarial soaks disable it to demonstrate self-exculpation *)
  one_vote_per_prober : bool;
      (** the ballot-stuffing defense: per link, each prober's latest
          in-window observation is its only vote ({!Blame.dedup_votes}),
          applied identically to verdicts and archived evidence. Default
          [true]; disabling lets forged duplicate reports stack *)
  validation_gamma_jump : float;
      (** jump-table density slack used when validating routing-state
          advertisements (Section 3.1); [infinity] disables the density
          test, letting sparse or biased advertisers pass *)
}

val default_config : config
(** Paper parameters: a=0.9, Delta=60 s, threshold 0.4, w=100, m=6,
    max_probe_time=120 s, 4 replicas, 50 heavyweight rounds at a 30%%
    loss threshold; plus runtime hardening defaults: 2 retransmits at
    1 s/2x backoff, probe backoff capped at 4x, 10-round burst floor, no
    evidence TTL; all three anti-gaming defenses on
    ([exclude_suspect_probes], [one_vote_per_prober], gamma_jump 1.3). *)

type forward_decision = Tap_forward | Tap_drop

type taps = {
  tap_route : time:float -> from:int -> dest:Id.t -> int list -> int list option;
      (** called once per message with the overlay route the sender
          computed; [Some route'] substitutes it (eclipse-style joins wedge
          attackers in front of a victim). The rewritten route must keep
          consecutive hops IP-reachable or the message dies as an overlay
          drop at the unreachable hop. *)
  tap_forward : time:float -> node:int -> sender:int -> next:int -> forward_decision option;
      (** called at every forwarding decision of [node] (never the
          sender); [Some Tap_drop] eats the message, [Some Tap_forward]
          forces forwarding, [None] defers to [node]'s behavior *)
  tap_observation : time:float -> prober:int -> link:int -> up:bool -> bool;
      (** transforms the up/down bit [prober] records for [link] — both
          lightweight rounds and heavyweight-burst conclusions — before it
          enters the observation store (and hence snapshots and archived
          evidence) *)
  tap_advertised_peers : time:float -> node:int -> int array -> int array option;
      (** rewrites the peer set [node] advertises in its routing-state
          snapshot; biased peer-sampling injection over-represents a
          favored node *)
  tap_forged_reports : time:float -> prober:int -> (int * bool) list;
      (** extra (link, up) observations [prober] fabricates after each
          lightweight round — the ballot-stuffing vector the
          [one_vote_per_prober] defense collapses *)
}
(** Tap points where a strategy layer ([Concilium_adversary]) lets
    compromised nodes intercept or forge protocol messages. Determinism
    contract: a tap must be a pure function of its arguments and the
    strategy's own state, drawing randomness only from a PRNG pre-split
    from the scenario seed — never from the runtime's. Firing taps is
    observable in metrics (["adversary.route_rewrites"],
    ["adversary.forced_drops"], ["adversary.lies"],
    ["adversary.advert_rewrites"], ["adversary.forged_reports"]). *)

val no_taps : taps
(** Every tap is the identity; byte-identical behaviour to a tapless
    runtime. *)

type diagnosis =
  | Diagnosed of Stewardship.resolution
  | Insufficient_evidence of { judge : int; usable_rounds : int; required_rounds : int }
      (** every steward that could judge had its heavyweight burst starved
          below the usable floor (crash mid-burst, partition) and held no
          archived probes covering the blame window: the verdict is
          explicitly degraded — no window is charged, nobody is blamed *)

type outcome = {
  message_id : string;
  delivered : bool;  (** destination got the message AND the ack returned *)
  attempts : int;  (** delivery attempts made (1 = no retransmit needed) *)
  route : int list;  (** overlay hops, sender first *)
  drop : drop option;
  diagnosis : diagnosis option;  (** present when not delivered *)
  no_commitment_from : int option;
      (** a hop that never produced a forwarding commitment (it either never
          received the message, or refuses commitments); only the
          complementary reputation system can act on it *)
}

and drop =
  | Dropped_by_overlay of int  (** ground truth: this node ate the message *)
  | Dropped_on_ip_link of int  (** ground truth: this link lost it *)
  | Ack_lost_on_link of int
  | Hop_offline of int  (** the next hop was churned out when the message arrived *)

type t

val create :
  world:World.t ->
  engine:Engine.t ->
  link_state:Link_state.t ->
  rng:Prng.t ->
  ?availability:(time:float -> int -> bool) ->
  ?control_latency:(time:float -> float) ->
  ?put_copies:(time:float -> int) ->
  ?obs:Concilium_obs.Collector.t ->
  ?taps:taps ->
  config ->
  behavior:(int -> behavior) ->
  t
(** [availability] reports whether an overlay node is online at a virtual
    time (default: always). Offline nodes do not probe, do not acknowledge
    probes aimed at them, and silently lose messages routed through them —
    the churn dimension the paper's evaluation held fixed. Pair with
    {!Concilium_netsim.Churn}, composing with {!Concilium_netsim.Chaos}
    node crashes.

    [control_latency] (default 0) adds seconds of delay to control-plane
    timers — retransmit backoff and the judgment barrier — without
    corrupting evidence timestamps; wire it to
    {!Concilium_netsim.Chaos.control_latency}. [put_copies] (default 1)
    reports how many duplicate deliveries a DHT put suffers at a given
    time; wire it to {!Concilium_netsim.Chaos.put_copies} to check
    duplication-safety (puts are idempotent).

    [obs] (default {!Concilium_obs.Collector.noop}) receives the runtime's
    trace and metrics. Spans: ["message"] per send, with
    ["retransmit.backoff"] children and, when retries exhaust, an
    ["episode"] child covering the diagnosis (["probe.heavy_burst"] with a
    nested ["minc.solve"], ["blame.evaluate"], ["stewardship.resolve"];
    stage instants ["episode.detect"], ["episode.verdict"],
    ["episode.accusation"]); lightweight ["probe.round"] spans; DHT
    failover instants ["dht.put.failover"] / ["dht.get.failover"].
    Counters [bytes.probe_stripe + bytes.advert_diff +
    bytes.snapshot_exchange + bytes.heavy_probe] reconcile exactly with the
    {!control_bytes_sent} totals. A recording collector also installs an
    {!Concilium_netsim.Engine.set_on_push} hook sampling queue depth into
    the ["engine.queue_depth"] histogram. Instrumentation draws no
    randomness and schedules no events: results are identical with
    observability on or off. *)

val obs : t -> Concilium_obs.Collector.t

val start_probing : t -> horizon:float -> unit
(** Schedule every node's lightweight probe loop up to the horizon. *)

val send_message :
  t -> from:int -> dest:Id.t -> payload:string -> on_outcome:(outcome -> unit) -> unit
(** Route a message; on ack timeout retransmit up to [retry_limit] times
    with bounded exponential backoff, and only then run the full diagnosis
    (judgments at final drop time + Delta, heavyweight bursts, stewardship
    resolution with failover past dead stewards, accusations). A suspect
    that availability shows offline at judgment time yields an
    {!Stewardship.Offline} target and charges no verdict window — absence
    is not misbehaviour. [on_outcome] fires once the diagnosis completes
    (or immediately after the ack returns). *)

val observations : t -> Observation.t
val dht : t -> Dht.t
val world : t -> World.t

val guilty_count : t -> judge:int -> suspect:int -> int
(** Guilty verdicts currently in the judge's window for the suspect. *)

type advertisement_report = {
  advertiser : int;
  validator : int;
  failures : Validation.failure list;
}

val exchange_advertisements : t -> advertisement_report list
(** One full routing-state exchange (Section 3.1/3.2): every node builds a
    signed snapshot of its routing state — honest nodes faithfully,
    [Sparse_advertiser]s with entries suppressed — with fresh stamps from
    the referenced peers, and each of its routing peers validates it
    (signature, freshness, jump-table occupancy, leaf-set spacing).
    Returns every (advertiser, validator) pair that failed at least one
    check; bandwidth is charged to the advertisers. *)

val control_bytes_sent : t -> int -> int
(** Control-plane bytes a node has sent: lightweight probes, heavyweight
    probing bursts, and snapshot advertisements (full on first exchange,
    diffs after — the Section 4.4 optimisation). Compare with
    {!Bandwidth}'s analytic figures. *)

val mean_control_bytes_per_second : t -> horizon:float -> float

val fetch_accusations : t -> from:int -> accused:int -> Accusation.t list
(** What a prospective peer learns about [accused] from the DHT. *)
