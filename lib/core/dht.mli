(** Accusation repository: a replicated DHT atop the secure overlay
    (paper Section 3.4).

    Accusations are stored under the hash of the accused's public key at
    the key's root node and its closest leaf-set neighbors. Puts and gets
    route over the overlay (hop counts are reported so protocol overhead
    can be metered); in a deployment both would use Castro's secure
    routing primitives, which the simulator's route function stands in
    for. *)

module Id = Concilium_overlay.Id
module Pastry = Concilium_overlay.Pastry
module Pki = Concilium_crypto.Pki

type t

val create : pastry:Pastry.t -> replication:int -> t
(** [replication] total copies per record (root plus neighbors). *)

val key_of_public_key : Pki.public_key -> Id.t

val replica_nodes : t -> key:Id.t -> int list
(** The nodes responsible for a key: its root and the root's nearest
    leaf-set members, [replication] in total. *)

type put_report = {
  replicas_written : int;  (** live replicas the record landed on *)
  put_failed_over : bool;
      (** the key's root candidate was dead, so the write landed on
          next-closest live leaf-set members instead *)
}

type get_report = {
  accusations : Accusation.t list;
  replicas_read : int;  (** live replicas merged into the result *)
  get_failed_over : bool;  (** the read bypassed a dead root candidate *)
}

val put :
  t ->
  from:int ->
  ?alive:(int -> bool) ->
  ?copies:int ->
  accused_key:Pki.public_key ->
  Accusation.t ->
  hops:int ref ->
  put_report
(** Route the accusation from node [from] to every replica of the accused's
    key, storing it there; duplicate accusations (same accuser, accused,
    drop time) are idempotent. [hops] accumulates overlay hops consumed.

    [alive] (default: everyone) filters the replica set: dead candidates
    are skipped and the write fails over to the next-closest live leaf-set
    members, keeping [replication] surviving copies whenever enough of the
    leaf set is up. [copies] > 1 models control-plane duplication: the
    whole put is delivered that many times — hops are re-paid, stored state
    is unchanged (idempotence). The report says how many live replicas
    absorbed the write and whether it failed over past a dead root. *)

val get :
  t ->
  from:int ->
  ?alive:(int -> bool) ->
  accused_key:Pki.public_key ->
  hops:int ref ->
  unit ->
  get_report
(** Fetch accusations for a public key, merged across the live replicas
    ([alive] defaults to everyone): a replica that lost its store degrades
    the read only if every survivor lost the record too. Hops are metered
    to the closest live replica. *)

val drop_replica : t -> node:int -> unit
(** The node loses its entire store (disk loss, chaos injection). Later
    puts repopulate it; reads fail over to surviving replicas. *)

val stored_count : t -> node:int -> int
(** Number of records a node holds (for storage-balance checks). *)

val total_records : t -> int
