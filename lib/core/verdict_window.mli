(** Per-peer sliding verdict windows (paper Section 3.4).

    A judges each of B's dropped messages and keeps the last [w] verdicts,
    archiving the tomographic evidence behind each. When at least [m] of
    the windowed verdicts are guilty, A escalates to a formal accusation. *)

type 'evidence entry = {
  verdict : Blame.verdict;
  blame : float;
  drop_time : float;
  evidence : 'evidence;
}

type 'evidence t

val create : window_size:int -> 'evidence t
val record : 'evidence t -> 'evidence entry -> unit
val length : 'evidence t -> int
val guilty_count : 'evidence t -> int
val entries : 'evidence t -> 'evidence entry list
(** Oldest first. *)

val expire : 'evidence t -> before:float -> unit
(** Drop every entry whose [drop_time] is strictly below the horizon,
    preserving the order of the survivors. The boundary is inclusive-keep:
    an entry with [drop_time = before] is retained — callers computing the
    horizon as [now -. evidence_ttl] therefore keep a verdict that is
    exactly [evidence_ttl] old, and a judge re-checking at the same instant
    it recorded sees the verdict still counted. Verdicts backed by evidence
    strictly older than the horizon must not keep counting towards an
    accusation. Runs in one pass over the window; the buffer is rebuilt
    only when at least one entry actually expires. *)

val guilty_entries : 'evidence t -> 'evidence entry list

val should_accuse : 'evidence t -> m:int -> bool
(** At least [m] guilty verdicts currently in the window. *)
