(** Analytic bandwidth model (paper Section 4.4).

    Two overheads dominate: exchanging signed, timestamped routing state,
    and heavyweight striped probing. Routing state references mu_phi + 16
    peers; each entry is a 16-byte identifier plus a 4-byte freshness
    timestamp which, with a 1024-bit PSS-R signature, consumes 144 bytes,
    plus one byte of path-loss summary. Heavyweight probing of a tree
    costs (leaves choose 2) * stripes_per_pair * stripe_size * pkt_size
    outgoing bytes. *)

type params = {
  overlay_size : int;
  leaf_set_size : int;
  entry_bytes : int;  (** id + timestamp + signature *)
  path_summary_bytes : int;
  stripes_per_pair : int;
  packets_per_stripe : int;
  probe_packet_bytes : int;  (** IP + UDP headers + 16-bit nonce *)
}

val paper_params : params
(** 100,000 nodes, 16 leaves, 144 B entries, 1 B summaries, 100 stripes of
    2 x 30 B probes. *)

(** {2 Per-message wire sizes}

    Shared with the protocol's live byte accounting so the simulator and
    this analytic model meter identical formats — and so an observability
    layer can reconcile per-message-type counters against the protocol's
    control-byte totals. *)

val probe_packet_bytes : int
(** One probe packet: IP + UDP headers + 16-bit nonce (30 B). *)

val advert_entry_bytes : int
(** One advertised entry: signed id + timestamp (144 B) plus its 1-byte
    path-loss summary. *)

val advert_overhead_bytes : int
(** Fixed advertisement cost: 20 B header + 128 B PSS-R signature. *)

val probe_stripe_bytes : leaves:int -> int
(** Bytes for one lightweight probe round over a tree with [leaves]. *)

val advert_bytes : entries:int -> int
(** Bytes for one snapshot advertisement carrying [entries] entries. *)

val heavy_burst_bytes : rounds:int -> leaves:int -> int
(** Bytes for a heavyweight burst of [rounds] striped rounds. *)

val expected_routing_entries : params -> float
(** mu_phi + leaf-set size (~77 at paper scale). *)

val advertised_state_bytes : params -> float
(** Size of a full advertised routing table (~11.5 KB at paper scale). *)

val heavyweight_probe_bytes : params -> float
(** Outgoing bytes to probe one tree (~16.7 MiB at paper scale). *)

val lightweight_extra_bytes : params -> float
(** Additional bandwidth of lightweight probing beyond the availability
    probes the overlay already sends: zero, by construction. *)

type report_row = { label : string; value : float; unit_ : string }

val report : params -> report_row list
(** The Section 4.4 figures as printable rows. *)
