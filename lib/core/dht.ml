module Id = Concilium_overlay.Id
module Leaf_set = Concilium_overlay.Leaf_set
module Pastry = Concilium_overlay.Pastry
module Pki = Concilium_crypto.Pki
module Signed = Concilium_crypto.Signed

type record_key = string (* accuser|accused|drop_time: idempotence key *)

type t = {
  pastry : Pastry.t;
  replication : int;
  stores : (record_key, Id.t * Accusation.t) Hashtbl.t array; (* per node: dht key + record *)
}

let create ~pastry ~replication =
  if replication < 1 then invalid_arg "Dht.create: replication must be >= 1";
  {
    pastry;
    replication;
    stores = Array.init (Pastry.node_count pastry) (fun _ -> Hashtbl.create 8);
  }

let key_of_public_key public_key =
  Id.of_name ("accusation-key|" ^ Pki.public_key_to_string public_key)

let replica_nodes t ~key =
  let root = Pastry.numerically_closest t.pastry key in
  let root_node = Pastry.node t.pastry root in
  let neighbors =
    List.filter_map
      (fun id -> Pastry.index_of_id t.pastry id)
      (Leaf_set.members root_node.Pastry.leaf_set)
  in
  (* Root first, then leaf-set members by ring proximity to the key. *)
  let by_distance =
    List.sort
      (fun a b ->
        Id.compare
          (Id.ring_distance (Pastry.node t.pastry a).Pastry.id key)
          (Id.ring_distance (Pastry.node t.pastry b).Pastry.id key))
      (List.filter (fun n -> n <> root) neighbors)
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  root :: take (t.replication - 1) by_distance

let record_key accusation =
  let body = Signed.payload accusation in
  Printf.sprintf "%s|%s|%.6f" (Id.to_hex body.Accusation.accuser)
    (Id.to_hex body.Accusation.accused)
    body.Accusation.evidence.Accusation.drop_time

let route_hops t ~from ~target =
  let dest = (Pastry.node t.pastry target).Pastry.id in
  max 0 (List.length (Pastry.route t.pastry ~from ~dest) - 1)

let put t ~from ~accused_key accusation ~hops =
  let key = key_of_public_key accused_key in
  let record = record_key accusation in
  List.iter
    (fun replica ->
      hops := !hops + route_hops t ~from ~target:replica;
      Hashtbl.replace t.stores.(replica) record (key, accusation))
    (replica_nodes t ~key)

let get t ~from ~accused_key ~hops =
  let key = key_of_public_key accused_key in
  match replica_nodes t ~key with
  | [] -> []
  | replica :: _ ->
      hops := !hops + route_hops t ~from ~target:replica;
      (* The store is keyed by idempotence record; sort on it so callers see
         accusations in a hash-seed-independent order. *)
      Hashtbl.fold
        (fun record (stored_key, accusation) acc ->
          if Id.equal stored_key key then (record, accusation) :: acc else acc)
        t.stores.(replica) []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map snd

let stored_count t ~node = Hashtbl.length t.stores.(node)

let total_records t =
  Array.fold_left (fun acc store -> acc + Hashtbl.length store) 0 t.stores
