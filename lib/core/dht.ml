module Id = Concilium_overlay.Id
module Leaf_set = Concilium_overlay.Leaf_set
module Pastry = Concilium_overlay.Pastry
module Pki = Concilium_crypto.Pki
module Signed = Concilium_crypto.Signed

type record_key = string (* accuser|accused|drop_time: idempotence key *)

type t = {
  pastry : Pastry.t;
  replication : int;
  stores : (record_key, Id.t * Accusation.t) Hashtbl.t array; (* per node: dht key + record *)
}

let create ~pastry ~replication =
  if replication < 1 then invalid_arg "Dht.create: replication must be >= 1";
  {
    pastry;
    replication;
    stores = Array.init (Pastry.node_count pastry) (fun _ -> Hashtbl.create 8);
  }

let key_of_public_key public_key =
  Id.of_name ("accusation-key|" ^ Pki.public_key_to_string public_key)

(* Root first, then the root's leaf-set members by ring proximity to the
   key: the full candidate ordering that failover walks when replicas are
   down. *)
let replica_candidates t ~key =
  let root = Pastry.numerically_closest t.pastry key in
  let root_node = Pastry.node t.pastry root in
  let neighbors =
    List.filter_map
      (fun id -> Pastry.index_of_id t.pastry id)
      (Leaf_set.members root_node.Pastry.leaf_set)
  in
  let by_distance =
    List.sort
      (fun a b ->
        Id.compare
          (Id.ring_distance (Pastry.node t.pastry a).Pastry.id key)
          (Id.ring_distance (Pastry.node t.pastry b).Pastry.id key))
      (List.filter (fun n -> n <> root) neighbors)
  in
  root :: by_distance

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let replica_nodes t ~key = take t.replication (replica_candidates t ~key)

let live_replicas t ~key ~alive =
  take t.replication (List.filter alive (replica_candidates t ~key))

let record_key accusation =
  let body = Signed.payload accusation in
  Printf.sprintf "%s|%s|%.6f" (Id.to_hex body.Accusation.accuser)
    (Id.to_hex body.Accusation.accused)
    body.Accusation.evidence.Accusation.drop_time

let route_hops t ~from ~target =
  let dest = (Pastry.node t.pastry target).Pastry.id in
  max 0 (List.length (Pastry.route t.pastry ~from ~dest) - 1)

type put_report = { replicas_written : int; put_failed_over : bool }

type get_report = {
  accusations : Accusation.t list;
  replicas_read : int;
  get_failed_over : bool;
}

(* Failover happened iff the key's root candidate is dead yet some live
   candidate absorbed the operation: the root-first candidate order means
   any such operation landed strictly further from the key than intended. *)
let root_dead t ~key ~alive =
  match replica_candidates t ~key with [] -> false | root :: _ -> not (alive root)

let put t ~from ?(alive = fun _ -> true) ?(copies = 1) ~accused_key accusation ~hops =
  let key = key_of_public_key accused_key in
  let record = record_key accusation in
  (* Failover: when the root (or any closer replica) is dead, the write
     lands on the next-closest live candidates so [replication] surviving
     copies exist whenever enough of the leaf set is up. Each duplicated
     delivery re-pays routing hops but is absorbed by the idempotence
     key. *)
  let replicas = live_replicas t ~key ~alive in
  for _ = 1 to max 1 copies do
    List.iter
      (fun replica ->
        hops := !hops + route_hops t ~from ~target:replica;
        Hashtbl.replace t.stores.(replica) record (key, accusation))
      replicas
  done;
  {
    replicas_written = List.length replicas;
    put_failed_over = replicas <> [] && root_dead t ~key ~alive;
  }

let get t ~from ?(alive = fun _ -> true) ~accused_key ~hops () =
  let key = key_of_public_key accused_key in
  match live_replicas t ~key ~alive with
  | [] -> { accusations = []; replicas_read = 0; get_failed_over = false }
  | (first :: _) as replicas ->
      hops := !hops + route_hops t ~from ~target:first;
      (* Merge across the surviving replicas: a replica that lost its store
         (or missed a write while down) degrades the read only if every
         survivor lost the record. The store is keyed by idempotence
         record; sorting on it makes the result hash-seed-independent. *)
      let merged = Hashtbl.create 8 in
      let stash record (stored_key, accusation) =
        if Id.equal stored_key key then Hashtbl.replace merged record accusation
      in
      List.iter (fun replica -> Hashtbl.iter stash t.stores.(replica)) replicas;
      let accusations =
        Hashtbl.fold (fun record accusation acc -> (record, accusation) :: acc) merged []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map snd
      in
      {
        accusations;
        replicas_read = List.length replicas;
        get_failed_over = root_dead t ~key ~alive;
      }

let drop_replica t ~node = Hashtbl.reset t.stores.(node)

let stored_count t ~node = Hashtbl.length t.stores.(node)

let total_records t =
  Array.fold_left (fun acc store -> acc + Hashtbl.length store) 0 t.stores
