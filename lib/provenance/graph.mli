(** Causal-provenance arena for verdicts and their evidence.

    Every accusation, rebuttal, and verdict produced by the protocol can
    carry a DAG of the evidence that led to it: the probes (and whether
    an adversary tap touched them), shared-tomography consolidation
    outcomes, defense-knob interventions, adversary tap firings on the
    episode path, and steward/DHT failovers. Nodes live in a compact
    arena keyed by dense ids — flat arrays, one tag byte plus a few
    scalar operands per node — so recording provenance across a
    million-node soak costs megabytes, not a forest of heap records.

    Determinism contract: a graph is a pure function of the calls made
    into it. Recording draws no randomness, reads no clocks, and
    schedules nothing, so enabling provenance cannot perturb a run.
    Per-shard graphs merged with {!merge} in fixed shard order render
    byte-identical {!jsonl} for any [--domains N].

    Replay contract: a [verdict] node's [probe] children carry exactly
    the votes the protocol counted (post defense filtering), so grouping
    them by link and replaying through [Blame.blame_of_observations]
    must reproduce the recorded blame and verdict bit-for-bit.
    [bin/explain.exe --validate-all] enforces this; a divergence is a
    bug in either the recorder or the protocol. *)

type node = int
(** Dense 1-based node id within one graph. *)

val none : node
(** The absent node (id 0). Constructors on a disabled graph return
    [none]; {!edge} ignores endpoints equal to [none]. *)

type verdict_kind = Guilty | Innocent | Insufficient

type defense_kind =
  | Exclude_suspect  (** [exclude_suspect_probes] removed suspect-sourced votes *)
  | Vote_dedup  (** [one_vote_per_prober] collapsed duplicate votes *)

type tap_kind = Route_rewrite | Forced_drop | Advert_rewrite

type failover_kind = Dht_put | Dht_get | Steward

type rebuttal_outcome = Stands | Shifted | Invalid

type t

val create : unit -> t
(** A fresh recording graph. *)

val noop : t
(** The shared disabled graph: constructors return {!none}, [edge] and
    [set_param] are no-ops, queries see an empty graph. *)

val enabled : t -> bool
val node_count : t -> int
val edge_count : t -> int

val set_tap : t -> (string -> unit) -> unit
(** Stream every subsequent node/edge/param as its JSONL line the moment
    it is recorded — the flight recorder's feed. The tap sees node lines
    without the ["children"] field (edges arrive separately as
    [{"edge": [parent, child]}] lines). No-op on a disabled graph. *)

val set_param : t -> string -> float -> unit
(** Record a replay parameter (e.g. ["accuracy"], ["guilt_threshold"]).
    Last write wins. *)

val param : t -> string -> float option

(** {1 Node constructors}

    Each returns the new node's id, or {!none} when the graph is
    disabled. *)

val probe :
  t -> prober:int -> link:int -> time:float -> up:bool -> tapped:bool -> forged:bool -> node
(** One recorded link observation. [tapped] marks a lie injected by an
    adversary observation tap; [forged] marks a wholly fabricated
    report. *)

val verdict :
  t ->
  judge:int ->
  suspect:int ->
  kind:verdict_kind ->
  exonerated:bool ->
  usable_rounds:int ->
  blame:float ->
  drop_time:float ->
  node
(** [exonerated] marks a Guilty evaluation rewritten to Innocent by a
    later exoneration; replay then checks the pre-rewrite verdict. *)

val accusation : t -> accuser:int -> accused:int -> blame:float -> time:float -> node
val defense : t -> kind:defense_kind -> removed:int -> judge:int -> suspect:int -> node
val tap_firing : t -> kind:tap_kind -> node:int -> time:float -> node
val failover : t -> kind:failover_kind -> node:int -> time:float -> node
val consolidation : t -> link:int -> up:bool -> up_votes:int -> down_votes:int -> node
val rebuttal : t -> accuser:int -> accused:int -> outcome:rebuttal_outcome -> node

val edge : t -> parent:node -> child:node -> unit
(** Record that [child] is evidence for [parent]. Ignored if either end
    is {!none}. A child may have many parents (shared evidence). *)

(** {1 Queries} *)

val children : t -> node -> node list
(** Evidence of a node, in the order the edges were recorded. Out-of-range
    ids (including {!none}) yield []. *)

val kind_of : t -> node -> string
(** The node's kind name as rendered in JSONL ("probe", "verdict", ...).
    @raise Invalid_argument on an out-of-range id. *)

val verdicts : t -> node list
(** All verdict nodes, in id order. *)

(** {1 Merge and export} *)

val merge : t array -> t
(** Rebase shard node ids onto a fresh graph, in shard order; params are
    re-applied in shard order (last shard wins a conflict). Byte-stable:
    merging the same shards always yields the same {!jsonl}. *)

val jsonl : t -> string
(** Full dump: one line per param (sorted by name), then one line per
    node in id order, each carrying its ["children"] ids when any.
    Floats render with [%.17g] so doubles round-trip exactly. *)

val node_line : t -> int -> string
(** The JSONL object (no ["children"], no trailing newline) for the
    0-based arena index [i] — the same line the {!set_tap} stream emits. *)
