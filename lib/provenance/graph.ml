(* Causal-provenance arena: every node is a dense int id into parallel
   growable arrays (one tag byte, four int operands, two float operands),
   and every edge is a cell in head/next adjacency arrays. No per-node
   heap object exists, so a graph covering a million-node soak costs a
   handful of flat arrays rather than a forest of records.

   Like the obs sinks, a graph is either recording or the shared [noop]
   whose constructors cost one branch and hand back {!none}. Recording
   draws no randomness and schedules nothing: a run produces identical
   results with provenance on or off, and per-shard graphs merged in
   shard order render byte-identical JSONL for any domain count. *)

type node = int

let none : node = 0

type verdict_kind = Guilty | Innocent | Insufficient

type defense_kind = Exclude_suspect | Vote_dedup

type tap_kind = Route_rewrite | Forced_drop | Advert_rewrite

type failover_kind = Dht_put | Dht_get | Steward

type rebuttal_outcome = Stands | Shifted | Invalid

(* Node tags, stored one byte per node. *)
let tag_probe = 0
let tag_verdict = 1
let tag_accusation = 2
let tag_defense = 3
let tag_tap = 4
let tag_failover = 5
let tag_consolidation = 6
let tag_rebuttal = 7

type t = {
  recording : bool;
  mutable tags : Bytes.t;
  mutable ia : int array;  (* prober / judge / accuser / knob ... *)
  mutable ib : int array;  (* link / suspect / accused / removed ... *)
  mutable ic : int array;  (* packed flag bits *)
  mutable id_ : int array;  (* usable_rounds / vote counts *)
  mutable fa : float array;  (* time / blame *)
  mutable fb : float array;  (* drop_time *)
  mutable count : int;
  mutable head : int array;  (* per node: last edge cell, -1 = none *)
  mutable edge_to : int array;
  mutable edge_next : int array;
  mutable edge_count : int;
  mutable params : (string * float) list;  (* newest first *)
  mutable tap : (string -> unit) option;
}

let create () =
  {
    recording = true;
    tags = Bytes.create 256;
    ia = Array.make 256 0;
    ib = Array.make 256 0;
    ic = Array.make 256 0;
    id_ = Array.make 256 0;
    fa = Array.make 256 0.;
    fb = Array.make 256 0.;
    count = 0;
    head = Array.make 256 (-1);
    edge_to = Array.make 256 0;
    edge_next = Array.make 256 (-1);
    edge_count = 0;
    params = [];
    tap = None;
  }

let noop =
  {
    recording = false;
    tags = Bytes.create 0;
    ia = [||];
    ib = [||];
    ic = [||];
    id_ = [||];
    fa = [||];
    fb = [||];
    count = 0;
    head = [||];
    edge_to = [||];
    edge_next = [||];
    edge_count = 0;
    params = [];
    tap = None;
  }

let enabled t = t.recording
let node_count t = t.count
let edge_count t = t.edge_count

let set_tap t f = if t.recording then t.tap <- Some f

(* ---------- Growable-arena plumbing ---------- *)

let grow_int a n = Array.init n (fun i -> if i < Array.length a then a.(i) else 0)
let grow_float a n = Array.init n (fun i -> if i < Array.length a then a.(i) else 0.)

let ensure_node_capacity t =
  let cap = Array.length t.ia in
  if t.count >= cap then begin
    let n = max 256 (2 * cap) in
    let tags = Bytes.make n '\000' in
    Bytes.blit t.tags 0 tags 0 cap;
    t.tags <- tags;
    t.ia <- grow_int t.ia n;
    t.ib <- grow_int t.ib n;
    t.ic <- grow_int t.ic n;
    t.id_ <- grow_int t.id_ n;
    t.fa <- grow_float t.fa n;
    t.fb <- grow_float t.fb n;
    t.head <- Array.init n (fun i -> if i < cap then t.head.(i) else -1)
  end

let ensure_edge_capacity t =
  let cap = Array.length t.edge_to in
  if t.edge_count >= cap then begin
    let n = max 256 (2 * cap) in
    t.edge_to <- grow_int t.edge_to n;
    t.edge_next <- Array.init n (fun i -> if i < cap then t.edge_next.(i) else -1)
  end

(* ---------- JSONL rendering ---------- *)

let kind_name tag =
  if tag = tag_probe then "probe"
  else if tag = tag_verdict then "verdict"
  else if tag = tag_accusation then "accusation"
  else if tag = tag_defense then "defense"
  else if tag = tag_tap then "tap"
  else if tag = tag_failover then "failover"
  else if tag = tag_consolidation then "consolidation"
  else "rebuttal"

let verdict_name = function
  | Guilty -> "guilty"
  | Innocent -> "innocent"
  | Insufficient -> "insufficient"

let defense_name = function
  | Exclude_suspect -> "exclude-suspect"
  | Vote_dedup -> "vote-dedup"

let tap_name = function
  | Route_rewrite -> "route-rewrite"
  | Forced_drop -> "forced-drop"
  | Advert_rewrite -> "advert-rewrite"

let failover_name = function
  | Dht_put -> "dht-put"
  | Dht_get -> "dht-get"
  | Steward -> "steward"

let rebuttal_name = function
  | Stands -> "stands"
  | Shifted -> "shifted"
  | Invalid -> "invalid"

let verdict_of_bits bits =
  if bits land 3 = 0 then Guilty else if bits land 3 = 1 then Innocent else Insufficient

(* Floats render with %.17g so every recorded double (blame values,
   timestamps) survives the dump/parse round trip exactly — the replay
   validator compares them bit-for-bit. *)
let add_node_fields buf t i =
  let add fmt = Printf.bprintf buf fmt in
  let tag = Char.code (Bytes.get t.tags i) in
  add {|"id": %d, "kind": %S|} (i + 1) (kind_name tag);
  if tag = tag_probe then
    add {|, "prober": %d, "link": %d, "up": %b, "tapped": %b, "forged": %b, "time": %.17g|}
      t.ia.(i) t.ib.(i)
      (t.ic.(i) land 1 <> 0)
      (t.ic.(i) land 2 <> 0)
      (t.ic.(i) land 4 <> 0)
      t.fa.(i)
  else if tag = tag_verdict then
    add
      {|, "judge": %d, "suspect": %d, "verdict": %S, "exonerated": %b, "usable_rounds": %d, "blame": %.17g, "drop_time": %.17g|}
      t.ia.(i) t.ib.(i)
      (verdict_name (verdict_of_bits t.ic.(i)))
      (t.ic.(i) land 4 <> 0)
      t.id_.(i) t.fa.(i) t.fb.(i)
  else if tag = tag_accusation then
    add {|, "accuser": %d, "accused": %d, "blame": %.17g, "time": %.17g|} t.ia.(i) t.ib.(i)
      t.fa.(i) t.fb.(i)
  else if tag = tag_defense then
    add {|, "knob": %S, "removed": %d, "judge": %d, "suspect": %d|}
      (defense_name (if t.ia.(i) = 0 then Exclude_suspect else Vote_dedup))
      t.ib.(i) t.ic.(i) t.id_.(i)
  else if tag = tag_tap then
    add {|, "firing": %S, "node": %d, "time": %.17g|}
      (tap_name
         (if t.ia.(i) = 0 then Route_rewrite
          else if t.ia.(i) = 1 then Forced_drop
          else Advert_rewrite))
      t.ib.(i) t.fa.(i)
  else if tag = tag_failover then
    add {|, "path": %S, "node": %d, "time": %.17g|}
      (failover_name (if t.ia.(i) = 0 then Dht_put else if t.ia.(i) = 1 then Dht_get else Steward))
      t.ib.(i) t.fa.(i)
  else if tag = tag_consolidation then
    add {|, "link": %d, "up": %b, "up_votes": %d, "down_votes": %d|} t.ia.(i)
      (t.ic.(i) land 1 <> 0)
      t.ib.(i) t.id_.(i)
  else
    add {|, "accuser": %d, "accused": %d, "outcome": %S|} t.ia.(i) t.ib.(i)
      (rebuttal_name (if t.ic.(i) = 0 then Stands else if t.ic.(i) = 1 then Shifted else Invalid))

let node_line t i =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  add_node_fields buf t i;
  Buffer.add_char buf '}';
  Buffer.contents buf

let param_line name value = Printf.sprintf {|{"param": %S, "value": %.17g}|} name value

let edge_line ~parent ~child = Printf.sprintf {|{"edge": [%d, %d]}|} parent child

(* ---------- Construction ---------- *)

let emit_tap t line = match t.tap with None -> () | Some f -> f line

let add_node t ~tag ~ia ~ib ~ic ~id_ ~fa ~fb =
  if not t.recording then none
  else begin
    ensure_node_capacity t;
    let i = t.count in
    Bytes.set t.tags i (Char.chr tag);
    t.ia.(i) <- ia;
    t.ib.(i) <- ib;
    t.ic.(i) <- ic;
    t.id_.(i) <- id_;
    t.fa.(i) <- fa;
    t.fb.(i) <- fb;
    t.count <- i + 1;
    if t.tap <> None then emit_tap t (node_line t i);
    i + 1
  end

let edge t ~parent ~child =
  if t.recording && parent <> none && child <> none then begin
    ensure_edge_capacity t;
    let k = t.edge_count in
    t.edge_to.(k) <- child;
    t.edge_next.(k) <- t.head.(parent - 1);
    t.head.(parent - 1) <- k;
    t.edge_count <- k + 1;
    if t.tap <> None then emit_tap t (edge_line ~parent ~child)
  end

let set_param t name value =
  if t.recording then begin
    t.params <- (name, value) :: List.remove_assoc name t.params;
    if t.tap <> None then emit_tap t (param_line name value)
  end

let param t name = List.assoc_opt name t.params

let flags ~up ~tapped ~forged =
  (if up then 1 else 0) lor (if tapped then 2 else 0) lor if forged then 4 else 0

let probe t ~prober ~link ~time ~up ~tapped ~forged =
  add_node t ~tag:tag_probe ~ia:prober ~ib:link ~ic:(flags ~up ~tapped ~forged) ~id_:0 ~fa:time
    ~fb:0.

let verdict t ~judge ~suspect ~kind ~exonerated ~usable_rounds ~blame ~drop_time =
  let bits =
    (match kind with Guilty -> 0 | Innocent -> 1 | Insufficient -> 2)
    lor if exonerated then 4 else 0
  in
  add_node t ~tag:tag_verdict ~ia:judge ~ib:suspect ~ic:bits ~id_:usable_rounds ~fa:blame
    ~fb:drop_time

let accusation t ~accuser ~accused ~blame ~time =
  add_node t ~tag:tag_accusation ~ia:accuser ~ib:accused ~ic:0 ~id_:0 ~fa:blame ~fb:time

let defense t ~kind ~removed ~judge ~suspect =
  let knob = match kind with Exclude_suspect -> 0 | Vote_dedup -> 1 in
  add_node t ~tag:tag_defense ~ia:knob ~ib:removed ~ic:judge ~id_:suspect ~fa:0. ~fb:0.

let tap_firing t ~kind ~node ~time =
  let k = match kind with Route_rewrite -> 0 | Forced_drop -> 1 | Advert_rewrite -> 2 in
  add_node t ~tag:tag_tap ~ia:k ~ib:node ~ic:0 ~id_:0 ~fa:time ~fb:0.

let failover t ~kind ~node ~time =
  let k = match kind with Dht_put -> 0 | Dht_get -> 1 | Steward -> 2 in
  add_node t ~tag:tag_failover ~ia:k ~ib:node ~ic:0 ~id_:0 ~fa:time ~fb:0.

let consolidation t ~link ~up ~up_votes ~down_votes =
  add_node t ~tag:tag_consolidation ~ia:link ~ib:up_votes
    ~ic:(if up then 1 else 0)
    ~id_:down_votes ~fa:0. ~fb:0.

let rebuttal t ~accuser ~accused ~outcome =
  let k = match outcome with Stands -> 0 | Shifted -> 1 | Invalid -> 2 in
  add_node t ~tag:tag_rebuttal ~ia:accuser ~ib:accused ~ic:k ~id_:0 ~fa:0. ~fb:0.

(* ---------- Queries ---------- *)

let children t node =
  if node <= 0 || node > t.count then []
  else begin
    (* The adjacency list is newest-first; reverse into creation order so
       renders and replays see votes in the order they were attached. *)
    let rec walk k acc = if k < 0 then acc else walk t.edge_next.(k) (t.edge_to.(k) :: acc) in
    walk t.head.(node - 1) []
  end

let kind_of t node =
  if node <= 0 || node > t.count then invalid_arg "Provenance: node out of range"
  else kind_name (Char.code (Bytes.get t.tags (node - 1)))

let verdicts t =
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    if Char.code (Bytes.get t.tags i) = tag_verdict then out := (i + 1) :: !out
  done;
  !out

(* ---------- Merge and export ---------- *)

let merge shards =
  let out = create () in
  Array.iter
    (fun shard ->
      let offset = out.count in
      for i = 0 to shard.count - 1 do
        ensure_node_capacity out;
        let j = out.count in
        Bytes.set out.tags j (Bytes.get shard.tags i);
        out.ia.(j) <- shard.ia.(i);
        out.ib.(j) <- shard.ib.(i);
        out.ic.(j) <- shard.ic.(i);
        out.id_.(j) <- shard.id_.(i);
        out.fa.(j) <- shard.fa.(i);
        out.fb.(j) <- shard.fb.(i);
        out.count <- j + 1
      done;
      (* Re-attach edges node by node: walking head/next yields newest
         first, so the reversal restores within-shard creation order. *)
      for i = 0 to shard.count - 1 do
        let rec walk k acc =
          if k < 0 then acc else walk shard.edge_next.(k) (shard.edge_to.(k) :: acc)
        in
        List.iter
          (fun child -> edge out ~parent:(i + 1 + offset) ~child:(child + offset))
          (walk shard.head.(i) [])
      done;
      List.iter (fun (name, value) -> set_param out name value) (List.rev shard.params))
    shards;
  out

let jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf (param_line name value);
      Buffer.add_char buf '\n')
    (List.sort (fun (a, _) (b, _) -> String.compare a b) t.params);
  for i = 0 to t.count - 1 do
    Buffer.add_char buf '{';
    add_node_fields buf t i;
    let kids = children t (i + 1) in
    if kids <> [] then begin
      Buffer.add_string buf {|, "children": [|};
      List.iteri
        (fun j child ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (string_of_int child))
        kids;
      Buffer.add_char buf ']'
    end;
    Buffer.add_string buf "}\n"
  done;
  Buffer.contents buf
